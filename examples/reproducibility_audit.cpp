// Run the Appendix-A reproducibility audit on a training configuration:
// determinism under fixed seeds, per-source seed sensitivity, and bit-exact
// interrupt/resume — the checks the paper ran before trusting any variance
// measurement.
//
// Usage: reproducibility_audit [with_numerical_noise(0|1)]
#include <cstdio>
#include <cstdlib>

#include "src/varbench.h"

int main(int argc, char** argv) {
  using namespace varbench;
  const bool inject_noise = argc > 1 && std::atoi(argv[1]) != 0;

  ml::GaussianMixtureConfig gen;
  gen.num_classes = 3;
  gen.dim = 8;
  gen.n = 400;
  gen.class_sep = 2.0;
  rngx::Rng rng{1};
  const auto data = ml::make_gaussian_mixture(gen, rng);

  ml::TrainConfig cfg;
  cfg.model.hidden = {10};
  cfg.model.dropout = 0.2;
  cfg.augment.jitter_std = 0.1;
  cfg.opt.learning_rate = 0.05;
  cfg.opt.momentum = 0.9;
  cfg.epochs = 5;
  cfg.batch_size = 32;
  if (inject_noise) cfg.numerical_noise_std = 0.01;

  std::printf("auditing pipeline (dropout=0.2, augment=0.1%s)...\n",
              inject_noise ? ", numerical noise INJECTED" : "");
  const auto report = ml::audit_reproducibility(data, cfg);

  std::printf("\n  deterministic rerun : %s\n",
              report.deterministic ? "PASS" : "FAIL");
  std::printf("  bit-exact resume    : %s\n",
              report.resumable ? "PASS" : "FAIL (or skipped)");
  std::printf("  sensitive sources   :");
  for (const auto s : report.sensitive_sources) {
    std::printf(" %s", std::string(rngx::to_string(s)).c_str());
  }
  std::printf("\n");
  if (!report.failures.empty()) {
    std::printf("  findings:\n");
    for (const auto& f : report.failures) std::printf("    - %s\n", f.c_str());
  }
  std::printf("\noverall: %s\n", report.passed() ? "PASSED" : "FAILED");
  std::printf(
      "\nThe paper: \"all these tests uncovered many bugs and typical\n"
      "reproducibility issues in machine learning\" (Appendix A). Run this\n"
      "audit on a pipeline before running a variance study on it.\n");
  return report.passed() || inject_noise ? 0 : 1;
}

// Quickstart: compare two learning algorithms the way the paper recommends.
//
//   1. Randomize every source of variation (ξO) between runs.
//   2. Pair the runs: both algorithms see the same ξ in run i (App. C.2).
//   3. Plan the sample size with Noether's formula (App. C.3).
//   4. Decide with the probability-of-outperforming test: A beats B only if
//      the result is statistically significant AND meaningful (App. C.6).
//
// Usage: quickstart [case_study_id] [scale]
#include <cstdio>
#include <string>

#include "src/varbench.h"

int main(int argc, char** argv) {
  using namespace varbench;
  const std::string task = argc > 1 ? argv[1] : "cifar10_vgg11";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.25;

  std::printf("varbench quickstart — task %s, scale %.2f\n", task.c_str(),
              scale);
  const auto cs = casestudies::make_case_study(task, scale);

  // Algorithm A: the tuned defaults. Algorithm B: same pipeline with a
  // deliberately worse learning rate — the kind of difference a benchmark
  // should detect.
  const hpo::ParamPoint algo_a = cs.pipeline->default_params();
  hpo::ParamPoint algo_b = algo_a;
  algo_b["learning_rate"] = algo_a.at("learning_rate") * 0.05;

  // Step 3: how many paired runs do we need for γ=0.75?
  const std::size_t n = stats::noether_sample_size(0.75, 0.05, 0.2);
  std::printf("planned sample size (gamma=0.75, alpha=0.05, beta=0.2): %zu\n",
              n);

  // Steps 1+2: paired, fully-randomized measurements.
  rngx::Rng master{20260612};
  std::vector<double> perf_a;
  std::vector<double> perf_b;
  for (std::size_t i = 0; i < n; ++i) {
    const auto seeds = rngx::VariationSeeds::random(master);  // shared ξ
    perf_a.push_back(core::measure_with_params(*cs.pipeline, *cs.pool,
                                               *cs.splitter, algo_a, seeds));
    perf_b.push_back(core::measure_with_params(*cs.pipeline, *cs.pool,
                                               *cs.splitter, algo_b, seeds));
    std::printf("  run %2zu: A=%.4f  B=%.4f\n", i + 1, perf_a.back(),
                perf_b.back());
  }

  // Step 4: the recommended decision criterion.
  auto test_rng = master.split("pab-test");
  const auto result =
      stats::test_probability_of_outperforming(perf_a, perf_b, test_rng);
  std::printf("\nP(A>B) = %.3f,  95%% CI [%.3f, %.3f],  gamma = %.2f\n",
              result.p_a_greater_b, result.ci.lower, result.ci.upper,
              result.gamma);
  std::printf("conclusion: %s\n",
              std::string(stats::to_string(result.conclusion)).c_str());
  std::printf(
      "\n(mean A = %.4f, mean B = %.4f — note the decision used the full\n"
      "distributions, not just these averages)\n",
      stats::mean(perf_a), stats::mean(perf_b));
  return 0;
}

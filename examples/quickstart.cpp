// Quickstart: compare two learning algorithms the way the paper recommends,
// through the declarative study API (docs/study_api.md).
//
//   1. Describe the experiment as data: a StudySpec of kind "compare"
//      (every ξO source randomized between runs, runs paired — both
//      algorithms see the same ξ in run i, App. C.2).
//   2. Plan the sample size with Noether's formula (App. C.3).
//   3. run_study(spec) → a canonical ResultTable artifact of raw paired
//      measures, reproducible from the spec alone.
//   4. Decide with the probability-of-outperforming test: A beats B only if
//      the result is statistically significant AND meaningful (App. C.6).
//
// Usage: quickstart [case_study_id] [scale] [artifact_out.json]
#include <cstdio>
#include <string>

#include "src/varbench.h"

int main(int argc, char** argv) {
  using namespace varbench;
  const std::string task = argc > 1 ? argv[1] : "cifar10_vgg11";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.25;

  std::printf("varbench quickstart — task %s, scale %.2f\n", task.c_str(),
              scale);

  // Step 2: how many paired runs do we need for γ=0.75?
  const std::size_t n = stats::noether_sample_size(0.75, 0.05, 0.2);
  std::printf("planned sample size (gamma=0.75, alpha=0.05, beta=0.2): %zu\n",
              n);

  // Step 1: the experiment, as data. Algorithm A is the tuned defaults;
  // algorithm B the same pipeline with a deliberately worse learning rate
  // (defaults × 0.05) — the kind of difference a benchmark should detect.
  study::StudySpec spec;
  spec.kind = study::StudyKind::kCompare;
  spec.case_study = task;
  spec.scale = scale;
  spec.seed = 20260612;
  spec.repetitions = n;
  spec.compare.lr_mult = 0.05;
  std::printf("spec:\n%s", spec.to_json_text().c_str());

  // Step 3: run it. The table holds the raw paired measures — shard it
  // across processes with spec.shard and merge_result_tables() and you get
  // these exact rows back (see examples/sharded_study.cpp).
  const auto table = study::run_study(spec);
  const auto pa = table.column_values("perf_a");
  const auto pb = table.column_values("perf_b");
  for (std::size_t i = 0; i < pa.size(); ++i) {
    std::printf("  run %2zu: A=%.4f  B=%.4f\n", i + 1, pa[i], pb[i]);
  }

  // Step 4: the recommended decision criterion, derived from the artifact.
  std::printf("\n");
  study::print_summary(table, stdout);
  std::printf(
      "\n(the decision used the full distributions, not just the averages)\n");

  if (argc > 3) {
    io::write_file(argv[3], table.to_json_text());
    std::printf("wrote artifact %s\n", argv[3]);
  }
  return 0;
}

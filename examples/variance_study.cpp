// Variance study (the paper's §2.2 protocol) on one case study: probe each
// source of variation in isolation, and report each source's standard
// deviation as a fraction of the data-bootstrap std.
//
// Usage: variance_study [case_study_id] [repetitions] [scale]
#include <cstdio>
#include <string>

#include "src/varbench.h"

int main(int argc, char** argv) {
  using namespace varbench;
  const std::string task = argc > 1 ? argv[1] : "glue_rte_bert";
  const std::size_t reps = argc > 2 ? std::atoi(argv[2]) : 20;
  const double scale = argc > 3 ? std::atof(argv[3]) : 0.25;

  std::printf("variance study — task %s, %zu repetitions per source\n",
              task.c_str(), reps);
  const auto cs = casestudies::make_case_study(task, scale);

  core::VarianceStudyConfig cfg;
  cfg.repetitions = reps;
  cfg.hpo_algorithms = {"random_search"};
  cfg.hpo_repetitions = std::max<std::size_t>(3, reps / 4);
  cfg.hpo_budget = 10;
  rngx::Rng master{7};
  const auto study = core::run_variance_study(*cs.pipeline, *cs.pool,
                                              *cs.splitter, cfg, master);

  const double boot = study.bootstrap_std();
  std::printf("\n%-22s %10s %10s %16s\n", "source", "mean", "std",
              "fraction of boot");
  for (const auto& row : study.rows) {
    std::printf("%-22s %10.4f %10.4f %15.2f%%\n", row.label.c_str(), row.mean,
                row.stddev, boot > 0.0 ? 100.0 * row.stddev / boot : 0.0);
  }
  std::printf(
      "\nReading this table: any source with a sizable fraction adds real\n"
      "noise to single-run benchmark numbers. The paper's recommendation:\n"
      "randomize ALL of them and average over multiple data splits.\n");
  return 0;
}

// Plan the number of paired benchmark runs needed before launching an
// experiment, using Noether's sample-size formula for the P(A>B) test.
//
// Usage: sample_size_planner [gamma] [alpha] [beta]
#include <cstdio>
#include <cstdlib>

#include "src/varbench.h"

int main(int argc, char** argv) {
  using namespace varbench;
  const double gamma = argc > 1 ? std::atof(argv[1]) : 0.75;
  const double alpha = argc > 2 ? std::atof(argv[2]) : 0.05;
  const double beta = argc > 3 ? std::atof(argv[3]) : 0.05;

  const std::size_t n = stats::noether_sample_size(gamma, alpha, beta);
  std::printf(
      "To detect P(A>B) >= %.2f with false-positive rate %.0f%% and\n"
      "false-negative rate %.0f%%, run each algorithm N = %zu times\n"
      "(paired: same data splits and seeds for A and B in each run).\n",
      gamma, 100.0 * alpha, 100.0 * beta, n);

  std::printf("\nPower you would get at other run counts:\n");
  std::printf("  %-8s %10s\n", "N", "power");
  for (const std::size_t k : {5u, 10u, 15u, 20u, 29u, 40u, 60u, 100u}) {
    std::printf("  %-8zu %9.1f%%\n", k,
                100.0 * stats::noether_power(k, gamma, alpha));
  }

  std::printf("\nSample sizes at other thresholds (alpha=%.2f, beta=%.2f):\n",
              alpha, beta);
  std::printf("  %-8s %10s\n", "gamma", "N");
  for (const double g : {0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9}) {
    std::printf("  %-8.2f %10zu\n", g,
                stats::noether_sample_size(g, alpha, beta));
  }
  std::printf(
      "\nThe paper recommends gamma = 0.75: strong enough to be meaningful,\n"
      "cheap enough to verify (N = 29 at alpha = beta = 0.05).\n");
  return 0;
}

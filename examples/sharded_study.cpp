// Two-process fan-out of one case study, demonstrated in-process.
//
// The ROADMAP's scaling recipe: run each case study's variance study as
// separate OS processes, each seeded by derive_seed(master, case_study_id),
// each computing one shard i/N of the repetition range, and merge the shard
// artifacts into the exact unsharded result. This example executes both
// shard runs in one process (the runs share nothing but the spec, exactly
// like two `varbench run` processes would) and verifies byte-identity of
// the merged artifact against the unsharded run.
//
// The equivalent real two-process fan-out (see docs/study_api.md):
//
//   varbench study cifar10_vgg11 --seed <derived> --dump-spec spec.json
//   varbench run spec.json --shard 0/2 --out s0.json &
//   varbench run spec.json --shard 1/2 --out s1.json &
//   wait
//   varbench merge s0.json s1.json --out merged.json
//
// Usage: sharded_study [case_study_id] [scale]
#include <cstdio>
#include <string>

#include "src/varbench.h"

int main(int argc, char** argv) {
  using namespace varbench;
  const std::string task = argc > 1 ? argv[1] : "cifar10_vgg11";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.1;

  // One master seed for the whole campaign; each case study gets its own
  // independent stream, so adding/removing case studies never perturbs the
  // others (the determinism contract of docs/determinism.md).
  const std::uint64_t master = 20260727;
  study::StudySpec spec;
  spec.kind = study::StudyKind::kVariance;
  spec.case_study = task;
  spec.scale = scale;
  spec.seed = rngx::derive_seed(master, task);
  spec.repetitions = 8;
  spec.variance.hpo_budget = 4;

  std::printf("sharded_study — task %s, seed derive_seed(%llu, task) = %llu\n",
              task.c_str(), static_cast<unsigned long long>(master),
              static_cast<unsigned long long>(spec.seed));

  // "Process" 1 and 2: each computes its contiguous slice of every
  // repetition loop. Shard runs share no state — only the spec.
  std::vector<study::ResultTable> shards;
  for (std::size_t i = 0; i < 2; ++i) {
    study::StudySpec shard_spec = spec;
    shard_spec.shard = study::ShardSpec{i, 2};
    shards.push_back(study::run_study(shard_spec));
    std::printf("  shard %zu/2: %zu rows\n", i, shards.back().rows.size());
  }

  // The coordinator: merge and verify against the unsharded run.
  const auto merged = study::merge_result_tables(std::move(shards));
  const auto unsharded = study::run_study(spec);
  const bool identical =
      merged.canonical_text() == unsharded.canonical_text();
  std::printf("merged %zu rows; byte-identical to the unsharded run: %s\n",
              merged.rows.size(), identical ? "yes" : "NO");

  std::printf("\n");
  study::print_summary(merged, stdout);
  return identical ? 0 : 1;
}

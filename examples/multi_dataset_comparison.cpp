// Compare two algorithms across all five case studies (paper §6): run
// paired measurements per dataset, then apply Wilcoxon-across-datasets
// (Demšar) and per-dataset replicability counting (Dror et al.).
//
// Usage: multi_dataset_comparison [runs_per_dataset] [scale]
#include <cstdio>
#include <cstdlib>

#include "src/varbench.h"

int main(int argc, char** argv) {
  using namespace varbench;
  const std::size_t runs = argc > 1 ? std::atoi(argv[1]) : 12;
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.2;

  std::printf("two algorithms across 5 datasets, %zu paired runs each\n",
              runs);
  std::vector<double> mean_a;
  std::vector<double> mean_b;
  std::vector<double> pvals;

  for (const auto& id : casestudies::case_study_ids()) {
    const auto cs = casestudies::make_case_study(id, scale);
    auto params_a = cs.pipeline->default_params();
    auto params_b = params_a;
    if (params_b.count("learning_rate") != 0) {
      params_b["learning_rate"] *= 0.1;  // algorithm B: under-tuned lr
    } else {
      params_b["weight_decay"] = 0.5;
    }
    rngx::Rng master{rngx::derive_seed(0xE6, id)};
    std::vector<double> a;
    std::vector<double> b;
    for (std::size_t r = 0; r < runs; ++r) {
      const auto seeds = rngx::VariationSeeds::random(master);
      a.push_back(core::measure_with_params(*cs.pipeline, *cs.pool,
                                            *cs.splitter, params_a, seeds));
      b.push_back(core::measure_with_params(*cs.pipeline, *cs.pool,
                                            *cs.splitter, params_b, seeds));
    }
    mean_a.push_back(stats::mean(a));
    mean_b.push_back(stats::mean(b));
    pvals.push_back(stats::wilcoxon_signed_rank(a, b).p_value);
    std::printf("  %-18s A=%.4f  B=%.4f  wilcoxon p=%.4f\n", id.c_str(),
                mean_a.back(), mean_b.back(), pvals.back());
  }

  std::printf("\nDemsar: Wilcoxon signed-rank ACROSS datasets:\n");
  const auto across = stats::wilcoxon_across_datasets(mean_a, mean_b);
  std::printf("  W = %.1f, p = %.4f  (only %zu datasets: low power, as the\n"
              "  paper warns for typical 3-5 dataset studies)\n",
              across.statistic, across.p_value, mean_a.size());

  std::printf("\nDror et al.: per-dataset replicability counting:\n");
  const auto rep = stats::replicability_analysis(pvals, 0.05);
  std::printf("  significant on %zu/%zu datasets (Bonferroni-corrected); "
              "improves on all: %s\n",
              rep.significant_count, rep.dataset_count,
              rep.improves_on_all ? "YES" : "no");
  return 0;
}

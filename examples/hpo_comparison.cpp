// Compare the four hyperparameter-optimization algorithms on a case study:
// best validation risk, the chosen hyperparameters and the test performance
// of the final retrained model, plus each algorithm's ξH variance over a few
// seeds.
//
// Usage: hpo_comparison [case_study_id] [budget] [seeds] [scale]
#include <cstdio>
#include <string>

#include "src/varbench.h"

int main(int argc, char** argv) {
  using namespace varbench;
  const std::string task = argc > 1 ? argv[1] : "cifar10_vgg11";
  const std::size_t budget = argc > 2 ? std::atoi(argv[2]) : 16;
  const std::size_t n_seeds = argc > 3 ? std::atoi(argv[3]) : 3;
  const double scale = argc > 4 ? std::atof(argv[4]) : 0.25;

  const auto cs = casestudies::make_case_study(task, scale);
  std::printf("HPO comparison — %s, budget %zu trials, %zu xi_H seeds\n",
              task.c_str(), budget, n_seeds);

  for (const auto* name :
       {"random_search", "grid_search", "noisy_grid_search", "bayes_opt"}) {
    const auto algo = hpo::make_hpo_algorithm(name);
    core::HpoRunConfig cfg;
    cfg.algorithm = algo.get();
    cfg.budget = budget;
    std::vector<double> test_perf;
    hpo::ParamPoint last_best;
    rngx::Rng master{rngx::derive_seed(99, name)};
    for (std::size_t s = 0; s < n_seeds; ++s) {
      rngx::VariationSeeds seeds;  // ξO fixed; only ξH varies
      seeds.hpo = master.next_u64();
      core::FitCounter fits;
      const double perf = core::run_pipeline_once(*cs.pipeline, *cs.pool,
                                                  *cs.splitter, cfg, seeds,
                                                  &fits);
      test_perf.push_back(perf);
      auto split_rng = seeds.rng_for(rngx::VariationSource::kDataSplit);
      const auto split = cs.splitter->split(*cs.pool, split_rng);
      const auto [trainvalid, test] = core::materialize(*cs.pool, split);
      (void)test;
      last_best = core::run_hpo(*cs.pipeline, trainvalid, cfg, seeds);
    }
    std::printf("\n%-18s test %s = %.4f ± %.4f over %zu seeds\n", name,
                std::string(ml::to_string(cs.pipeline->metric())).c_str(),
                stats::mean(test_perf), stats::stddev(test_perf), n_seeds);
    std::printf("  last chosen lambda:");
    for (const auto& [k, v] : last_best) std::printf(" %s=%g", k.c_str(), v);
    std::printf("\n");
  }
  std::printf(
      "\nNote the ± across seeds: even at a fixed budget, HPO is itself a\n"
      "source of benchmark variance (the paper's xi_H).\n");
  return 0;
}

// Choose a performance-estimation strategy for a fixed compute budget:
// contrast IdealEst(k) with FixHOptEst(k, Init/Data/All) on a real case
// study, reporting fit counts and the spread of the resulting estimates.
//
// Usage: estimator_budget [case_study_id] [k] [hpo_budget] [scale]
#include <cstdio>
#include <string>

#include "src/varbench.h"

int main(int argc, char** argv) {
  using namespace varbench;
  const std::string task = argc > 1 ? argv[1] : "glue_sst2_bert";
  const std::size_t k = argc > 2 ? std::atoi(argv[2]) : 8;
  const std::size_t budget = argc > 3 ? std::atoi(argv[3]) : 10;
  const double scale = argc > 4 ? std::atof(argv[4]) : 0.25;

  const auto cs = casestudies::make_case_study(task, scale);
  const hpo::RandomSearch algo;
  core::HpoRunConfig cfg;
  cfg.algorithm = &algo;
  cfg.budget = budget;

  std::printf("estimator budget comparison — %s, k=%zu, T=%zu\n", task.c_str(),
              k, budget);
  std::printf("\n%-22s %8s %10s %10s\n", "estimator", "fits", "mean", "std");

  rngx::Rng master{123};
  const auto ideal =
      core::ideal_estimator(*cs.pipeline, *cs.pool, *cs.splitter, cfg, k,
                            master);
  std::printf("%-22s %8zu %10.4f %10.4f\n", "IdealEst", ideal.fits, ideal.mean,
              ideal.stddev);
  for (const auto subset :
       {core::RandomizeSubset::kInit, core::RandomizeSubset::kData,
        core::RandomizeSubset::kAll}) {
    const auto r = core::fix_hopt_estimator(*cs.pipeline, *cs.pool,
                                            *cs.splitter, cfg, k, subset,
                                            master);
    std::printf("FixHOptEst(%-4s)       %8zu %10.4f %10.4f\n",
                std::string(core::to_string(subset)).c_str(), r.fits, r.mean,
                r.stddev);
  }
  std::printf(
      "\nTakeaway (paper §3.3): if you cannot afford IdealEst's %zu fits,\n"
      "use FixHOptEst(k, All) — same cost as the common practice of\n"
      "re-seeding only the weights, but a markedly better estimator.\n",
      core::ideal_estimator_cost(k, budget));
  return 0;
}

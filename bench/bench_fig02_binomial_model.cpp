// Figure 2 — error due to data sampling: standard deviation predicted by a
// binomial model of the accuracy measure vs the standard deviation observed
// when bootstrapping the data.
// Thin spec-builder over the registered figure study kind: the numbers
// (and the VARBENCH_OUT artifact) are identical to
// `varbench run` on {"kind": "fig02_binomial_model"} — see bench/bench_util.h.
#include "bench/bench_util.h"

int main() {
  return varbench::benchutil::run_figure_bench(
      varbench::study::StudyKind::kFig02Binomial);
}

// Figure 2 — Error due to data sampling: standard deviation predicted by a
// binomial model of the accuracy measure vs the standard deviation observed
// when bootstrapping the data.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/varbench.h"

namespace {

using namespace varbench;

struct EmpiricalPoint {
  std::string task;
  double accuracy = 0.0;
  double empirical_std = 0.0;
  std::size_t test_size = 0;
};

EmpiricalPoint measure(const std::string& id, std::size_t reps) {
  const auto cs = casestudies::make_case_study(id, benchutil::scale());
  const auto defaults = cs.pipeline->default_params();
  rngx::Rng master{rngx::derive_seed(2, id)};
  const rngx::VariationSeeds base;
  std::vector<double> measures;
  std::size_t test_size = 0;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto seeds =
        base.with_randomized(rngx::VariationSource::kDataSplit, master);
    auto split_rng = seeds.rng_for(rngx::VariationSource::kDataSplit);
    const auto split = cs.splitter->split(*cs.pool, split_rng);
    test_size = split.test.size();
    const auto [train, test] = core::materialize(*cs.pool, split);
    measures.push_back(
        cs.pipeline->train_and_evaluate(train, test, defaults, seeds));
  }
  return {cs.paper_task, stats::mean(measures), stats::stddev(measures),
          test_size};
}

}  // namespace

int main() {
  benchutil::header(
      "Figure 2: binomial model of test-set sampling noise",
      "std of accuracy from bootstrap replicates matches sqrt(p(1-p)/n') — "
      "the test-set size limits the measurable precision");
  const std::size_t reps = benchutil::env_size(
      "VARBENCH_REPS", benchutil::env_flag("VARBENCH_FULL") ? 100 : 25);

  benchutil::section("theory: binomial std vs test-set size");
  std::printf("  %-10s", "n'");
  for (const double acc : {0.66, 0.91, 0.95}) std::printf("  Binom(n,%.2f)", acc);
  std::printf("\n");
  for (const double n : {1e2, 1e3, 1e4, 1e5, 1e6}) {
    std::printf("  %-10.0f", n);
    for (const double acc : {0.66, 0.91, 0.95}) {
      std::printf("  %11.4f%%", 100.0 * stats::binomial_accuracy_std(acc, n));
    }
    std::printf("\n");
  }

  benchutil::section("practice: bootstrap-measured std on the case studies");
  std::printf("  %-18s %6s %10s %16s %16s\n", "task", "n'", "accuracy",
              "empirical std", "binomial model");
  for (const auto* id : {"glue_rte_bert", "glue_sst2_bert", "cifar10_vgg11"}) {
    const auto p = measure(id, reps);
    const double model =
        stats::binomial_accuracy_std(p.accuracy,
                                     static_cast<double>(p.test_size));
    std::printf("  %-18s %6zu %9.2f%% %15.3f%% %15.3f%%\n", p.task.c_str(),
                p.test_size, 100.0 * p.accuracy, 100.0 * p.empirical_std,
                100.0 * model);
  }
  benchutil::section("paper reference points (test sizes of the original tasks)");
  for (const auto& c : casestudies::paper_calibrations()) {
    if (c.metric != "accuracy") continue;
    std::printf("  %-18s n'=%-6zu binomial std = %.3f%%\n",
                c.paper_task.c_str(), c.paper_test_size,
                100.0 * stats::binomial_accuracy_std(
                            c.mu, static_cast<double>(c.paper_test_size)));
  }
  std::printf(
      "\nShape check vs paper: empirical bootstrap std should be within ~2x\n"
      "of the binomial prediction for every task (Fig. 2's crosses on the\n"
      "dotted curves).\n");
  return 0;
}

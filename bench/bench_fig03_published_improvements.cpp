// Figure 3 — Published improvements compared to benchmark variance: the
// SOTA progression on cifar10/sst2 with the benchmark's σ band and the
// z-test significance threshold; each increment is classified as likely
// significant or not.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/varbench.h"

int main() {
  using namespace varbench;
  benchutil::header(
      "Figure 3: published SOTA increments vs benchmark variance",
      "many year-over-year 'SOTA' improvements fall inside the benchmark's "
      "noise band and are not statistically significant");

  // The paper's significance band: an improvement must exceed
  // z_0.05·sqrt(2)·σ to be distinguishable from benchmark noise at 95%.
  const double z = stats::normal_quantile(0.95);

  double sum_improvement = 0.0;
  double sum_sigma = 0.0;
  std::size_t n_improvements = 0;

  for (const auto& series : casestudies::sota_series()) {
    const double sigma = series.benchmark_sigma;
    const double threshold = z * std::sqrt(2.0) * sigma;
    benchutil::section(series.task.c_str());
    std::printf("  benchmark sigma = %.3f%%   significance threshold = %.3f%%\n",
                100.0 * sigma, 100.0 * threshold);
    std::printf("  %-6s %10s %12s %s\n", "year", "accuracy", "improvement",
                "verdict");
    for (std::size_t i = 0; i < series.points.size(); ++i) {
      const auto& pt = series.points[i];
      if (i == 0) {
        std::printf("  %-6d %9.2f%% %12s (baseline)\n", pt.year,
                    100.0 * pt.accuracy, "-");
        continue;
      }
      const double improvement =
          pt.accuracy - series.points[i - 1].accuracy;
      const bool significant = improvement > threshold;
      std::printf("  %-6d %9.2f%% %11.2f%% %s\n", pt.year,
                  100.0 * pt.accuracy, 100.0 * improvement,
                  significant ? "significant" : "NON-significant (x)");
      sum_improvement += improvement;
      sum_sigma += sigma;
      ++n_improvements;
    }
    std::printf("  mean increment = %.3f%% (%.2f sigma)\n",
                100.0 * casestudies::mean_improvement(series),
                casestudies::mean_improvement(series) / sigma);
  }

  benchutil::section("delta calibration (Section 4.2)");
  const double fitted = sum_improvement / sum_sigma;
  std::printf(
      "  mean improvement / sigma across both tasks = %.2f\n"
      "  paper's regression coefficient              = %.4f\n"
      "  (delta = 1.9952*sigma is the threshold used by the average-\n"
      "   comparison criterion in Figure 6)\n",
      fitted, compare::kPublishedImprovementCoeff);
  (void)n_improvements;
  return 0;
}

// Figure 3 — published improvements compared to benchmark variance: the
// SOTA progression on cifar10/sst2 with the benchmark's σ band and the
// z-test significance threshold.
// Thin spec-builder over the registered figure study kind: the numbers
// (and the VARBENCH_OUT artifact) are identical to
// `varbench run` on {"kind": "fig03_published_improvements"} — see bench/bench_util.h.
#include "bench/bench_util.h"

int main() {
  return varbench::benchutil::run_figure_bench(
      varbench::study::StudyKind::kFig03Sota);
}

// Figure G.3 — normality of performance distributions conditional on each
// variation source: Shapiro–Wilk p-values per source × case study.
// Thin spec-builder over the registered figure study kind: the numbers
// (and the VARBENCH_OUT artifact) are identical to
// `varbench run` on {"kind": "figG3_normality"} — see bench/bench_util.h.
#include "bench/bench_util.h"

int main() {
  return varbench::benchutil::run_figure_bench(
      varbench::study::StudyKind::kFigG3Normality);
}

// Figure G.3 — Normality of performance distributions conditional on each
// variation source: Shapiro–Wilk p-values per source × case study.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/varbench.h"

int main() {
  using namespace varbench;
  benchutil::header(
      "Figure G.3: Shapiro-Wilk normality of per-source performance "
      "distributions",
      "performance distributions are close to normal for most tasks/sources "
      "(SST2's tiny test set discretizes accuracies)");
  const std::size_t reps = benchutil::env_size(
      "VARBENCH_REPS", benchutil::env_flag("VARBENCH_FULL") ? 200 : 24);

  std::printf("  %-18s %-22s %8s %8s\n", "task", "source", "W", "p-value");
  for (const auto& id : casestudies::case_study_ids()) {
    const auto cs = casestudies::make_case_study(id, benchutil::scale());
    core::VarianceStudyConfig cfg;
    cfg.repetitions = reps;
    cfg.include_numerical_noise = false;
    rngx::Rng master{rngx::derive_seed(0x9E3, id)};
    const auto study = core::run_variance_study(*cs.pipeline, *cs.pool,
                                                *cs.splitter, cfg, master);
    // "Altogether": all ξO randomized jointly, as in the figure's last row.
    std::vector<double> altogether;
    const rngx::VariationSeeds base;
    for (std::size_t r = 0; r < reps; ++r) {
      const auto seeds =
          base.with_randomized_set(rngx::kLearningSources, master);
      altogether.push_back(core::measure_with_params(
          *cs.pipeline, *cs.pool, *cs.splitter,
          cs.pipeline->default_params(), seeds));
    }
    const auto is_constant = [](const std::vector<double>& v) {
      return stats::min_value(v) == stats::max_value(v);
    };
    for (const auto& row : study.rows) {
      if (is_constant(row.measures)) {
        std::printf("  %-18s %-22s %8s %8s (constant)\n", cs.id.c_str(),
                    row.label.c_str(), "-", "-");
        continue;
      }
      const auto sw = stats::shapiro_wilk(row.measures);
      std::printf("  %-18s %-22s %8.4f %8.4f%s\n", cs.id.c_str(),
                  row.label.c_str(), sw.w_statistic, sw.p_value,
                  sw.p_value < 0.05 ? "  *non-normal" : "");
    }
    if (!is_constant(altogether)) {
      const auto sw = stats::shapiro_wilk(altogether);
      std::printf("  %-18s %-22s %8.4f %8.4f%s\n", cs.id.c_str(), "Altogether",
                  sw.w_statistic, sw.p_value,
                  sw.p_value < 0.05 ? "  *non-normal" : "");
    }
  }
  std::printf(
      "\nShape check vs paper: most (task, source) cells accept normality at\n"
      "p>0.05; small-test-set tasks (RTE/SST2 analogues) may reject due to\n"
      "the discretized accuracy values, as in the paper.\n");
  return 0;
}

// Tables 2/3/5/6 (Appendix D) — search spaces and default hyperparameters
// for every case study, as encoded in the registry.
// Thin spec-builder over the registered figure study kind: the numbers
// (and the VARBENCH_OUT artifact) are identical to
// `varbench run` on {"kind": "tableD_search_spaces"} — see bench/bench_util.h.
#include "bench/bench_util.h"

int main() {
  return varbench::benchutil::run_figure_bench(
      varbench::study::StudyKind::kTableDSearchSpaces);
}

// Tables 2/3/5/6 (Appendix D) — Search spaces and default hyperparameters
// for every case study, as encoded in the registry.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/varbench.h"

int main() {
  using namespace varbench;
  benchutil::header(
      "Tables 2/3/5/6: hyperparameter search spaces and defaults",
      "search spaces cover the optimal values reported by the original "
      "studies while remaining wide enough to include suboptimal ones");
  for (const auto& id : casestudies::case_study_ids()) {
    const auto cs = casestudies::make_case_study(id, 0.1);
    std::printf("\n%s (%s)\n", cs.paper_task.c_str(), id.c_str());
    std::printf("  %-16s %-10s %12s %12s %10s\n", "hyperparameter", "scale",
                "low", "high", "default");
    const auto defaults = cs.pipeline->default_params();
    for (const auto& d : cs.pipeline->search_space().dims()) {
      const auto it = defaults.find(d.name);
      std::printf("  %-16s %-10s %12g %12g %10g%s\n", d.name.c_str(),
                  d.scale == hpo::ScaleKind::kLog ? "log" : "linear", d.lo,
                  d.hi, it != defaults.end() ? it->second : 0.0,
                  d.integer ? "  (integer)" : "");
    }
    std::printf("  metric=%s, paper test size n'=%zu\n",
                std::string(ml::to_string(cs.pipeline->metric())).c_str(),
                cs.paper_test_size);
  }
  return 0;
}

// Figure I.6 — robustness of the comparison methods: detection rates as a
// function of the sample size and of the threshold γ, at several true
// P(A>B) levels.
// Thin spec-builder over the registered figure study kind: the numbers
// (and the VARBENCH_OUT artifact) are identical to
// `varbench run` on {"kind": "figI6_robustness"} — see bench/bench_util.h.
#include "bench/bench_util.h"

int main() {
  return varbench::benchutil::run_figure_bench(
      varbench::study::StudyKind::kFigI6Robustness);
}

// Figure I.6 — Robustness of the comparison methods: detection rates as a
// function of the sample size and of the threshold γ, at several true
// P(A>B) levels.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/varbench.h"

namespace {

using namespace varbench;

double detection_rate(const compare::TaskVarianceProfile& profile,
                      const compare::ComparisonCriterion& criterion,
                      double p_true, std::size_t k, std::size_t sims,
                      rngx::Rng& rng) {
  const double offset =
      compare::mean_offset_for_probability(p_true, profile.sigma_ideal);
  std::size_t hits = 0;
  for (std::size_t s = 0; s < sims; ++s) {
    const auto a = compare::simulate_measures(
        profile, compare::EstimatorKind::kIdeal, offset, k, rng);
    const auto b = compare::simulate_measures(
        profile, compare::EstimatorKind::kIdeal, 0.0, k, rng);
    if (criterion.detects(a, b, rng)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(sims);
}

}  // namespace

int main() {
  benchutil::header(
      "Figure I.6: robustness of comparison methods vs sample size and gamma",
      "the P(A>B) test's detection rate converges with sample size and "
      "degrades gracefully as gamma moves; averages stay conservative");
  const std::size_t sims = benchutil::env_size(
      "VARBENCH_REPS", benchutil::env_flag("VARBENCH_FULL") ? 500 : 120);
  const auto& calib = casestudies::calibration_for("cifar10_vgg11");
  const auto profile = calib.ideal_profile();
  const double delta = compare::published_improvement_delta(calib.sigma_ideal);

  benchutil::section("detection rate vs sample size (gamma = 0.75)");
  std::printf("  %-8s %-10s", "P(A>B)", "k");
  std::printf(" %9s %9s %9s\n", "average", "prob_outp", "t-test");
  for (const double p : {0.5, 0.6, 0.7, 0.8}) {
    for (const std::size_t k : {10u, 29u, 50u, 100u}) {
      const compare::AverageComparison avg{delta};
      const compare::ProbOutperformCriterion pab{0.75, 100};
      rngx::Rng rng{rngx::derive_seed(0x16, std::to_string(k))};
      const double r_avg = detection_rate(profile, avg, p, k, sims, rng);
      const double r_pab = detection_rate(profile, pab, p, k, sims, rng);
      // t-test criterion: same as average but variance-scaled threshold —
      // implemented via the oracle with estimated sigma (paper's remark that
      // a t-test is an average with a variance-aware threshold).
      const compare::OracleComparison ttest{profile.sigma_ideal, 0.05};
      const double r_t = detection_rate(profile, ttest, p, k, sims, rng);
      std::printf("  %-8.2f %-10zu %8.0f%% %8.0f%% %8.0f%%\n", p, k,
                  100.0 * r_avg, 100.0 * r_pab, 100.0 * r_t);
    }
  }

  benchutil::section("detection rate vs gamma (k = 50)");
  std::printf("  %-8s %-10s %9s %9s\n", "P(A>B)", "gamma", "average",
              "prob_outp");
  for (const double p : {0.5, 0.7, 0.8}) {
    for (const double gamma : {0.6, 0.7, 0.75, 0.8, 0.9}) {
      // For the average, convert gamma into the equivalent performance
      // difference delta = sqrt(2)·sigma·Phi^-1(gamma) (Appendix I).
      const double delta_gamma =
          compare::mean_offset_for_probability(gamma, profile.sigma_ideal);
      const compare::AverageComparison avg{delta_gamma};
      const compare::ProbOutperformCriterion pab{gamma, 100};
      rngx::Rng rng{rngx::derive_seed(0x17, std::to_string(gamma))};
      std::printf("  %-8.2f %-10.2f %8.0f%% %8.0f%%\n", p, gamma,
                  100.0 * detection_rate(profile, avg, p, 50, sims, rng),
                  100.0 * detection_rate(profile, pab, p, 50, sims, rng));
    }
  }
  std::printf(
      "\nShape check vs paper: at P=0.5 all methods stay near/below ~5-10%%\n"
      "regardless of k; for P>=0.7 the P(A>B) test's rate grows with k while\n"
      "the fixed-delta average barely moves; raising gamma lowers detection\n"
      "rates for both methods.\n");
  return 0;
}

// The typed form of the bench/ environment-knob convention. Every
// VARBENCH_* knob is parsed exactly once — into a BenchSpec — instead of
// each bench binary re-reading getenv mid-run; `varbench bench` builds the
// same struct from CLI flags, so harnesses driven either way see one
// uniform configuration surface.
//
// Knobs (all optional; `std::nullopt` means "keep the spec's default"):
//   VARBENCH_SCALE    data-pool / epoch scale in (0, 1]
//   VARBENCH_REPS     repetitions (the shardable count)
//   VARBENCH_SEED     master seed, full u64 range (0 is a legal seed)
//   VARBENCH_THREADS  worker count (0 = all cores; bit-identical anyway)
//   VARBENCH_FULL=1   paper-faithful sizes (overrides SCALE)
//   VARBENCH_SHARD    "i/N" — run one slice
//   VARBENCH_OUT      artifact output directory
//   VARBENCH_METRICS  metric selection for instrumented runs
//                     ("all", a subsystem, or metric names — docs/metrics.md)
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>

#include "src/exec/exec_context.h"
#include "src/study/study_spec.h"

namespace varbench::benchutil {

struct BenchSpec {
  std::optional<double> scale;        // VARBENCH_SCALE
  std::optional<std::size_t> reps;    // VARBENCH_REPS
  std::optional<std::uint64_t> seed;  // VARBENCH_SEED
  std::size_t threads = 0;            // VARBENCH_THREADS
  bool full = false;                  // VARBENCH_FULL
  std::optional<study::ShardSpec> shard;  // VARBENCH_SHARD
  std::string out_dir;                // VARBENCH_OUT
  std::string metrics;                // VARBENCH_METRICS ("" = disabled)

  /// Parse the environment once. Malformed numeric values fall back to
  /// "unset" (the pre-BenchSpec behavior); a malformed VARBENCH_SHARD
  /// throws from ShardSpec::parse, same as before.
  [[nodiscard]] static BenchSpec from_env();

  /// The process-wide instance every bench entry point shares — the
  /// "parsed once" guarantee.
  [[nodiscard]] static const BenchSpec& env();

  /// Execution context of the harness's Monte-Carlo loops. Results are
  /// invariant to it (docs/determinism.md).
  [[nodiscard]] exec::ExecContext context() const {
    return exec::ExecContext{threads};
  }

  /// The scale a print-only harness should report: FULL wins, then SCALE
  /// (validated into (0, 1]), then `fallback`.
  [[nodiscard]] double effective_scale(double fallback) const {
    if (full) return 1.0;
    if (scale.has_value() && *scale > 0.0 && *scale <= 1.0) return *scale;
    return fallback;
  }
};

inline BenchSpec BenchSpec::from_env() {
  BenchSpec spec;
  const auto get = [](const char* name) -> const char* {
    const char* v = std::getenv(name);
    return (v != nullptr && *v != '\0') ? v : nullptr;
  };
  if (const char* v = get("VARBENCH_SCALE")) {
    const double parsed = std::atof(v);
    if (parsed > 0.0) spec.scale = parsed;
  }
  if (const char* v = get("VARBENCH_REPS")) {
    const long parsed = std::atol(v);
    if (parsed > 0) spec.reps = static_cast<std::size_t>(parsed);
  }
  if (const char* v = get("VARBENCH_SEED")) {
    char* end = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end != v && *end == '\0' && errno != ERANGE) spec.seed = parsed;
  }
  if (const char* v = get("VARBENCH_THREADS")) {
    const long parsed = std::atol(v);
    if (parsed > 0) spec.threads = static_cast<std::size_t>(parsed);
  }
  if (const char* v = get("VARBENCH_FULL")) {
    spec.full = std::string{v} != "0";
  }
  if (const char* v = get("VARBENCH_SHARD")) {
    spec.shard = study::ShardSpec::parse(v);
  }
  if (const char* v = get("VARBENCH_OUT")) spec.out_dir = v;
  if (const char* v = get("VARBENCH_METRICS")) spec.metrics = v;
  return spec;
}

inline const BenchSpec& BenchSpec::env() {
  static const BenchSpec spec = from_env();
  return spec;
}

}  // namespace varbench::benchutil

// §6 — comparisons across multiple datasets: Demšar's Friedman/Nemenyi and
// Wilcoxon recommendations vs Dror et al.'s replicability counting, applied
// to three algorithm variants across the five case studies.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/varbench.h"

int main() {
  using namespace varbench;
  benchutil::header(
      "Section 6: comparing algorithms across multiple datasets",
      "Friedman/Nemenyi have little power on the 3-5 datasets of typical ML "
      "papers; Dror et al.'s per-dataset counting works at small N");
  const double scale = benchutil::scale();
  const std::size_t runs = benchutil::env_size(
      "VARBENCH_REPS", benchutil::env_flag("VARBENCH_FULL") ? 30 : 10);

  // Three algorithm variants (defined by a learning-rate multiplier on each
  // task's defaults) across all five case studies.
  const std::vector<std::pair<std::string, double>> variants = {
      {"tuned", 1.0}, {"half-lr", 0.5}, {"tenth-lr", 0.1}};
  const auto ids = casestudies::case_study_ids();

  math::Matrix mean_scores{ids.size(), variants.size()};
  std::vector<double> pvals_tuned_vs_tenth;

  for (std::size_t d = 0; d < ids.size(); ++d) {
    const auto cs = casestudies::make_case_study(ids[d], scale);
    rngx::Rng master{rngx::derive_seed(0xD57, ids[d])};
    std::vector<std::vector<double>> per_variant(variants.size());
    for (std::size_t r = 0; r < runs; ++r) {
      const auto seeds = rngx::VariationSeeds::random(master);  // paired
      for (std::size_t v = 0; v < variants.size(); ++v) {
        auto params = cs.pipeline->default_params();
        if (params.count("learning_rate") != 0) {
          params["learning_rate"] *= variants[v].second;
        }
        per_variant[v].push_back(core::measure_with_params(
            *cs.pipeline, *cs.pool, *cs.splitter, params, seeds));
      }
    }
    for (std::size_t v = 0; v < variants.size(); ++v) {
      mean_scores(d, v) = stats::mean(per_variant[v]);
    }
    // Per-dataset significance of tuned vs tenth-lr (for Dror counting).
    pvals_tuned_vs_tenth.push_back(
        stats::wilcoxon_signed_rank(per_variant[0], per_variant[2]).p_value);
  }

  benchutil::section("mean score per (dataset, variant)");
  std::printf("  %-18s", "dataset");
  for (const auto& [name, mult] : variants) std::printf(" %10s", name.c_str());
  std::printf("\n");
  for (std::size_t d = 0; d < ids.size(); ++d) {
    std::printf("  %-18s", ids[d].c_str());
    for (std::size_t v = 0; v < variants.size(); ++v) {
      std::printf(" %10.4f", mean_scores(d, v));
    }
    std::printf("\n");
  }

  benchutil::section("Demsar: Friedman test + Nemenyi critical difference");
  const auto fr = stats::friedman_test(mean_scores);
  std::printf("  chi2_F = %.3f, p = %.4f (Iman-Davenport F = %.3f)\n",
              fr.chi_squared, fr.p_value, fr.iman_davenport_f);
  std::printf("  average ranks:");
  for (std::size_t v = 0; v < variants.size(); ++v) {
    std::printf(" %s=%.2f", variants[v].first.c_str(), fr.average_ranks[v]);
  }
  const double cd =
      stats::nemenyi_critical_difference(variants.size(), ids.size());
  std::printf("\n  Nemenyi CD (alpha=0.05) = %.2f ranks\n", cd);
  const auto group = stats::nemenyi_top_group(fr, ids.size());
  std::printf("  indistinguishable-from-best group:");
  for (const auto v : group) std::printf(" %s", variants[v].first.c_str());
  std::printf("\n");

  benchutil::section("Dror et al.: per-dataset replicability (tuned vs tenth-lr)");
  const auto rep = stats::replicability_analysis(pvals_tuned_vs_tenth, 0.05);
  for (std::size_t d = 0; d < ids.size(); ++d) {
    std::printf("  %-18s p = %.4f  %s\n", ids[d].c_str(),
                pvals_tuned_vs_tenth[d],
                rep.significant[d] ? "significant" : "-");
  }
  std::printf("  significant on %zu/%zu datasets; improves-on-all: %s\n",
              rep.significant_count, rep.dataset_count,
              rep.improves_on_all ? "YES" : "no");
  std::printf(
      "\nReading: with only 5 datasets the Friedman test's power is limited\n"
      "(the paper's point about Demsar's recommendation at small N), while\n"
      "the per-dataset counting verdict is direct and interpretable.\n");
  return 0;
}

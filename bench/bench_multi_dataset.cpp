// §6 — comparisons across multiple datasets: Demšar's Friedman/Nemenyi and
// Wilcoxon recommendations vs Dror et al.'s replicability counting.
// Thin spec-builder over the registered figure study kind: the numbers
// (and the VARBENCH_OUT artifact) are identical to
// `varbench run` on {"kind": "multi_dataset"} — see bench/bench_util.h.
#include "bench/bench_util.h"

int main() {
  return varbench::benchutil::run_figure_bench(
      varbench::study::StudyKind::kMultiDataset);
}

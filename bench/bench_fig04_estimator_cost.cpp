// Figure 4 / §3.3 — Estimator cost accounting: IdealEst requires O(k·T)
// fits, FixHOptEst O(k+T); the paper reports 1070 h vs 21 h (51×) for
// k=100, T=200. We derive the ratio from actual counted fits.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/varbench.h"

int main() {
  using namespace varbench;
  benchutil::header(
      "Figure 4 / Section 3.3: estimator compute cost (counted fits)",
      "IdealEst(k=100) costs ~51x more than FixHOptEst(k=100) at T=200");

  benchutil::section("analytic fit counts");
  std::printf("  %-8s %-8s %14s %16s %8s\n", "k", "T", "IdealEst fits",
              "FixHOptEst fits", "ratio");
  for (const std::size_t k : {10u, 50u, 100u}) {
    for (const std::size_t t : {50u, 100u, 200u}) {
      const auto ideal = core::ideal_estimator_cost(k, t);
      const auto biased = core::fix_hopt_estimator_cost(k, t);
      std::printf("  %-8zu %-8zu %14zu %16zu %7.1fx\n", k, t, ideal, biased,
                  static_cast<double>(ideal) / static_cast<double>(biased));
    }
  }
  std::printf(
      "\n  paper's wall-clock: IdealEst(k=100) = 1070 h, FixHOptEst = 21 h\n"
      "  => 51x. Our fit-count ratio at (k=100, T=200) = %.1fx; wall-clock\n"
      "  ratios are slightly below the fit ratio because HPO trials train on\n"
      "  the smaller inner split.\n",
      static_cast<double>(core::ideal_estimator_cost(100, 200)) /
          static_cast<double>(core::fix_hopt_estimator_cost(100, 200)));

  benchutil::section("empirical verification with counted fits (small k, T)");
  const auto cs = casestudies::make_case_study("glue_rte_bert",
                                               benchutil::scale() * 0.5);
  const hpo::RandomSearch algo;
  core::HpoRunConfig cfg;
  cfg.algorithm = &algo;
  cfg.budget = 8;
  rngx::Rng m1{1};
  rngx::Rng m2{1};
  const auto ideal =
      core::ideal_estimator(*cs.pipeline, *cs.pool, *cs.splitter, cfg, 5, m1);
  const auto biased = core::fix_hopt_estimator(
      *cs.pipeline, *cs.pool, *cs.splitter, cfg, 5,
      core::RandomizeSubset::kAll, m2);
  std::printf("  IdealEst(k=5, T=8):   fits=%zu  mean=%.4f  std=%.4f\n",
              ideal.fits, ideal.mean, ideal.stddev);
  std::printf("  FixHOptEst(k=5, T=8): fits=%zu  mean=%.4f  std=%.4f\n",
              biased.fits, biased.mean, biased.stddev);
  std::printf("  counted ratio = %.1fx (expected %.1fx)\n",
              static_cast<double>(ideal.fits) /
                  static_cast<double>(biased.fits),
              static_cast<double>(core::ideal_estimator_cost(5, 8)) /
                  static_cast<double>(core::fix_hopt_estimator_cost(5, 8)));
  return 0;
}

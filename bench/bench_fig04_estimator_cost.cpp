// Figure 4 / §3.3 — estimator cost accounting: IdealEst requires O(k·T)
// fits, FixHOptEst O(k+T); the paper reports 1070 h vs 21 h (51×) for
// k=100, T=200.
// Thin spec-builder over the registered figure study kind: the numbers
// (and the VARBENCH_OUT artifact) are identical to
// `varbench run` on {"kind": "fig04_estimator_cost"} — see bench/bench_util.h.
#include "bench/bench_util.h"

int main() {
  return varbench::benchutil::run_figure_bench(
      varbench::study::StudyKind::kFig04EstimatorCost);
}

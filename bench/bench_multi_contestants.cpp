// §6 — benchmarks and competitions with many contestants: pairwise P(A>B)
// matrix, the Bonferroni-adjusted top group, and bootstrap ranking
// stability.
// Thin spec-builder over the registered figure study kind: the numbers
// (and the VARBENCH_OUT artifact) are identical to
// `varbench run` on {"kind": "multi_contestants"} — see bench/bench_util.h.
#include "bench/bench_util.h"

int main() {
  return varbench::benchutil::run_figure_bench(
      varbench::study::StudyKind::kMultiContestants);
}

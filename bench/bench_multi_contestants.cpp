// §6 — benchmarks and competitions with many contestants: pairwise P(A>B)
// matrix, the Bonferroni-adjusted top group (the §5 recommendation to
// report every method within the significance bounds), and bootstrap
// ranking stability ("a different choice of test sets might have led to a
// slightly modified ranking").
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/varbench.h"

int main() {
  using namespace varbench;
  benchutil::header(
      "Section 6: competitions with many contestants",
      "with many contestants the winner carries arbitrariness: several "
      "methods are statistically indistinguishable and rankings flip under "
      "test-set resampling");
  const double scale = benchutil::scale();
  const std::size_t k = benchutil::env_size(
      "VARBENCH_REPS", benchutil::env_flag("VARBENCH_FULL") ? 50 : 16);

  // Six contestants on the cifar10 analogue: the default recipe plus
  // variations of decreasing quality (two nearly tied at the top).
  const auto cs = casestudies::make_case_study("cifar10_vgg11", scale);
  struct Contestant {
    std::string name;
    hpo::ParamPoint params;
  };
  std::vector<Contestant> entries;
  const auto defaults = cs.pipeline->default_params();
  auto tuned_a = defaults;
  tuned_a["weight_decay"] = 0.008;  // the best recipe at this scale...
  entries.push_back({"tuned-A", tuned_a});
  auto tuned_b = tuned_a;
  tuned_b["lr_gamma"] = 0.9705;  // ...and a statistically-tied twin
  entries.push_back({"tuned-B", tuned_b});
  entries.push_back({"default", defaults});
  auto slow = defaults;
  slow["learning_rate"] = 0.004;
  entries.push_back({"slow-lr", slow});
  auto fast = defaults;
  fast["learning_rate"] = 0.25;
  fast["momentum"] = 0.98;
  entries.push_back({"hot-lr", fast});
  auto crippled = defaults;
  crippled["learning_rate"] = 0.0012;
  entries.push_back({"crippled", crippled});

  // Paired measurements: every contestant sees the same k splits/seeds.
  rngx::Rng master{0xC0117E57};
  compare::ContestantScores scores(entries.size());
  for (std::size_t i = 0; i < k; ++i) {
    const auto seeds = rngx::VariationSeeds::random(master);
    for (std::size_t c = 0; c < entries.size(); ++c) {
      scores[c].push_back(core::measure_with_params(
          *cs.pipeline, *cs.pool, *cs.splitter, entries[c].params, seeds));
    }
  }

  benchutil::section("mean accuracy per contestant");
  for (std::size_t c = 0; c < entries.size(); ++c) {
    std::printf("  %-12s %.4f ± %.4f\n", entries[c].name.c_str(),
                stats::mean(scores[c]), stats::stddev(scores[c]));
  }

  benchutil::section("pairwise P(row > column)");
  std::printf("  %-12s", "");
  for (const auto& e : entries) std::printf(" %10s", e.name.substr(0, 10).c_str());
  std::printf("\n");
  const auto pab = compare::pairwise_pab_matrix(scores);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    std::printf("  %-12s", entries[i].name.c_str());
    for (std::size_t j = 0; j < entries.size(); ++j) {
      std::printf(" %10.2f", pab(i, j));
    }
    std::printf("\n");
  }

  benchutil::section("top group (best + all not significantly-and-meaningfully worse)");
  auto rng = master.split("top");
  const auto top = compare::significance_top_group(scores, rng);
  std::printf("  best by mean: %s (Bonferroni-adjusted alpha = %.4f)\n",
              entries[top.best].name.c_str(), top.adjusted_alpha);
  std::printf("  report together:");
  for (const auto idx : top.group) std::printf(" %s", entries[idx].name.c_str());
  std::printf("\n");

  benchutil::section("ranking stability under bootstrap of the splits");
  auto boot = master.split("rank");
  const auto stability = compare::ranking_stability(scores, boot, 2000);
  std::printf("  %-12s %12s %28s\n", "contestant", "P(rank 1)",
              "rank distribution (1..n)");
  for (std::size_t c = 0; c < entries.size(); ++c) {
    std::printf("  %-12s %11.1f%%    ", entries[c].name.c_str(),
                100.0 * stability.prob_first[c]);
    for (std::size_t r = 0; r < entries.size(); ++r) {
      std::printf(" %4.0f%%", 100.0 * stability.rank_probability(c, r));
    }
    std::printf("\n");
  }
  std::printf(
      "\nReading: the two tuned recipes should split P(rank 1) between them\n"
      "— declaring a single 'winner' between near-tied contestants is\n"
      "arbitrary, which is why the paper recommends reporting the whole\n"
      "significance group.\n");
  return 0;
}

// Resampling-kernel headline benchmark: 1000-resample BCa confidence
// interval of the mean over a 10^6-element column — the workload the
// fused index kernels (src/stats/resample_kernels.h) were built for.
//
// Two numbers are produced:
//
//   stats.bca_1e6x1000_kernel       measured end-to-end: the enum-path
//                                   bca_bootstrap_ci (fused gathers, O(n)
//                                   jackknife, reused scratch)
//   stats.bca_1e6x1000_legacy_est   the pre-kernel path, measured where
//                                   feasible and EXTRAPOLATED where not:
//                                   the resample phase (one materialized
//                                   vector + fold per replicate) runs in
//                                   full, but the legacy O(n^2) jackknife
//                                   (one n-1 copy + fold per index — 10^12
//                                   element touches at this n) is measured
//                                   on `VARBENCH_JACK_SAMPLE` indices and
//                                   scaled linearly to n. The printed row
//                                   says "extrapolated" so nobody mistakes
//                                   it for a full measurement.
//
// The acceptance bar for the kernel rewrite is >= 3x on this workload;
// in practice the legacy jackknife alone puts the ratio in the hundreds.
//
// Knobs:
//   VARBENCH_N            column length (default 1000000)
//   VARBENCH_RESAMPLES    bootstrap resamples (default 1000)
//   VARBENCH_REPS         timed repetitions, min reported (default 2 —
//                         each kernel rep is ~1s; raise for quieter mins)
//   VARBENCH_JACK_SAMPLE  legacy jackknife indices actually measured
//                         before extrapolating (default 2048)
//   VARBENCH_THREADS      fan-out width (default 0 = all cores; both
//                         paths parallelize identically)
//
// Prints a human summary plus ready-to-paste trajectory rows for
// bench/BENCH_stats.json (the `varbench bench` gate maintains the
// gate-scale stats.bca_ci_mean_* pair automatically; these 10^6 rows are
// recorded manually, like bench/BENCH_artifact_io.json).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/exec/exec_context.h"
#include "src/exec/parallel_for.h"
#include "src/exec/parallel_replicate.h"
#include "src/metrics/stopwatch.h"
#include "src/rngx/rng.h"
#include "src/stats/bootstrap.h"
#include "src/stats/descriptive.h"
#include "src/version.h"

namespace {

using namespace varbench;

/// Min wall-clock ns over `reps` runs of `fn()`.
template <typename Fn>
std::uint64_t min_ns_of(std::size_t reps, Fn&& fn) {
  std::uint64_t best = 0;
  for (std::size_t i = 0; i < reps; ++i) {
    const metrics::Stopwatch sw;
    fn();
    const std::uint64_t ns = sw.elapsed_ns();
    if (i == 0 || ns < best) best = ns;
  }
  return best;
}

void print_row(const char* bench, const char* unit, std::uint64_t min_ns,
               std::size_t reps) {
  std::printf("    {\n"
              "      \"bench\": \"%s\",\n"
              "      \"unit\": \"%s\",\n"
              "      \"min_ns\": %llu,\n"
              "      \"repeats\": %zu,\n"
              "      \"version\": \"%s\",\n"
              "      \"label\": \"manual\"\n"
              "    }\n",
              bench, unit, static_cast<unsigned long long>(min_ns), reps,
              std::string{kVersion}.c_str());
}

}  // namespace

int main() {
  const std::size_t n = benchutil::env_size("VARBENCH_N", 1'000'000);
  const std::size_t resamples =
      benchutil::env_size("VARBENCH_RESAMPLES", 1'000);
  const std::size_t reps = benchutil::env_size("VARBENCH_REPS", 2);
  const std::size_t jack_sample =
      std::min(n, benchutil::env_size("VARBENCH_JACK_SAMPLE", 2'048));
  const exec::ExecContext ctx{benchutil::env_size("VARBENCH_THREADS", 0)};

  std::printf("stats resample kernels — BCa(mean), n=%zu, resamples=%zu, "
              "threads=%zu (0=all), min of %zu\n",
              n, resamples, ctx.num_threads, reps);

  rngx::Rng data_rng{0xB00757A9};
  std::vector<double> x(n);
  for (double& v : x) v = data_rng.normal(1.0, 0.25);

  // ---- kernel path, measured end-to-end (warmup leases the scratch) ----
  double sink_value = 0.0;
  {
    rngx::Rng rng{1};
    sink_value += stats::bca_bootstrap_ci(ctx, x, stats::ResampleStat::kMean,
                                          rng, resamples)
                      .lower;
  }
  const std::uint64_t kernel_ns = min_ns_of(reps, [&] {
    rngx::Rng rng{1};
    const auto ci = stats::bca_bootstrap_ci(ctx, x,
                                            stats::ResampleStat::kMean, rng,
                                            resamples);
    sink_value += ci.lower + ci.upper;
  });

  // ---- legacy resample phase, measured in full ----
  const std::uint64_t legacy_resample_ns = min_ns_of(reps, [&] {
    rngx::Rng rng{1};
    const auto stats_vec = exec::parallel_replicate<double>(
        ctx, resamples, rng, "bootstrap", [&](std::uint64_t, rngx::Rng& r) {
          std::vector<double> resample(x.size());
          for (double& v : resample) v = x[r.uniform_index(x.size())];
          return stats::mean(resample);
        });
    sink_value += stats_vec.front();
  });

  // ---- legacy jackknife, measured on jack_sample indices ----
  std::vector<double> loo(jack_sample, 0.0);
  const std::uint64_t jack_sample_ns = min_ns_of(reps, [&] {
    exec::parallel_for(ctx, 0, jack_sample, [&](std::size_t i) {
      std::vector<double> rest(n - 1);
      for (std::size_t j = 0; j < i; ++j) rest[j] = x[j];
      for (std::size_t j = i + 1; j < n; ++j) rest[j - 1] = x[j];
      loo[i] = stats::mean(rest);
    });
    sink_value += loo.front();
  });
  const double jack_full_est_ns = static_cast<double>(jack_sample_ns) *
                                  (static_cast<double>(n) /
                                   static_cast<double>(jack_sample));
  const double legacy_est_ns =
      static_cast<double>(legacy_resample_ns) + jack_full_est_ns;

  const double speedup = legacy_est_ns / static_cast<double>(kernel_ns);
  std::printf("\n  kernel BCa (measured):            %12.3f ms\n",
              static_cast<double>(kernel_ns) / 1e6);
  std::printf("  legacy resample phase (measured): %12.3f ms\n",
              static_cast<double>(legacy_resample_ns) / 1e6);
  std::printf("  legacy jackknife (extrapolated):  %12.3f ms  "
              "(measured %zu of %zu indices)\n",
              jack_full_est_ns / 1e6, jack_sample, n);
  std::printf("  legacy total (extrapolated):      %12.3f ms\n",
              legacy_est_ns / 1e6);
  std::printf("  speedup vs pre-kernel path:       %12.1fx  (bar: >= 3x)\n",
              speedup);
  if (sink_value == 0.123456789) std::printf("improbable checksum\n");

  std::printf("\ntrajectory rows (paste into bench/BENCH_stats.json):\n");
  print_row("stats.bca_1e6x1000_kernel", "ns", kernel_ns, reps);
  print_row("stats.bca_1e6x1000_legacy_extrapolated", "ns",
            static_cast<std::uint64_t>(legacy_est_ns), reps);
  return speedup >= 3.0 ? 0 : 1;
}

// Serial-vs-parallel throughput of the exec engine on the three converted
// Monte-Carlo hot paths, plus a determinism audit: every path must produce
// bit-identical results at every thread count (docs/determinism.md).
//
//   VARBENCH_THREADS   max worker count to sweep up to (default: all cores)
//   VARBENCH_REPS      variance-study repetitions per source (default 24)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/metrics.h"
#include "src/varbench.h"

namespace {

using namespace varbench;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct PathResult {
  double seconds = 0.0;
  std::vector<double> signature;  // the raw numbers determinism is judged on
};

PathResult run_variance_study_path(const core::LearningPipeline& pipeline,
                                   const ml::Dataset& pool,
                                   const core::Splitter& splitter,
                                   std::size_t reps, std::size_t threads,
                                   metrics::Sink* sink = nullptr) {
  core::VarianceStudyConfig cfg;
  cfg.repetitions = reps;
  cfg.include_numerical_noise = false;
  cfg.exec = exec::ExecContext{threads};
  cfg.exec.metrics = sink;
  rngx::Rng master{42};
  const auto start = Clock::now();
  const auto study = core::run_variance_study(pipeline, pool, splitter, cfg,
                                              master);
  PathResult r;
  r.seconds = seconds_since(start);
  for (const auto& row : study.rows) {
    r.signature.insert(r.signature.end(), row.measures.begin(),
                       row.measures.end());
  }
  return r;
}

PathResult run_bootstrap_path(const std::vector<double>& x,
                              std::size_t resamples, std::size_t threads) {
  rngx::Rng rng{7};
  const auto start = Clock::now();
  const auto ci = stats::percentile_bootstrap_ci(
      exec::ExecContext{threads}, x,
      [](std::span<const double> s) {
        // A deliberately heavy statistic (median via partial sort).
        std::vector<double> copy(s.begin(), s.end());
        std::nth_element(copy.begin(), copy.begin() + copy.size() / 2,
                         copy.end());
        return copy[copy.size() / 2];
      },
      rng, resamples);
  PathResult r;
  r.seconds = seconds_since(start);
  r.signature = {ci.lower, ci.upper};
  return r;
}

PathResult run_error_rates_path(std::size_t simulations, std::size_t threads) {
  compare::TaskVarianceProfile profile;
  profile.task = "bench";
  profile.mu = 0.75;
  profile.sigma_ideal = 0.02;
  profile.sigma_bias = 0.01;
  profile.sigma_within = 0.01;
  std::vector<std::unique_ptr<compare::ComparisonCriterion>> criteria;
  criteria.push_back(std::make_unique<compare::AverageComparison>(0.01));
  criteria.push_back(
      std::make_unique<compare::ProbOutperformCriterion>(0.75, 100));
  compare::DetectionRateConfig cfg;
  cfg.k = 20;
  cfg.simulations = simulations;
  cfg.exec = exec::ExecContext{threads};
  rngx::Rng rng{11};
  const auto start = Clock::now();
  const auto curves = compare::characterize_detection_rates(
      profile, compare::EstimatorKind::kBiased, criteria, cfg, rng);
  PathResult r;
  r.seconds = seconds_since(start);
  for (const auto& [name, rates] : curves.rates) {
    (void)name;
    r.signature.insert(r.signature.end(), rates.begin(), rates.end());
  }
  return r;
}

int g_determinism_failures = 0;

template <typename Runner>
void sweep(const char* path_name, const std::vector<std::size_t>& counts,
           Runner&& run) {
  std::printf("\n%-18s %8s %10s %9s  %s\n", path_name, "threads", "seconds",
              "speedup", "bit-identical");
  PathResult serial;
  for (const std::size_t threads : counts) {
    const PathResult r = run(threads);
    bool identical = true;
    if (threads == 1) {
      serial = r;
    } else {
      identical = r.signature == serial.signature;
      if (!identical) ++g_determinism_failures;
    }
    std::printf("%-18s %8zu %10.3f %8.2fx  %s\n", "", threads, r.seconds,
                r.seconds > 0.0 ? serial.seconds / r.seconds : 0.0,
                threads == 1 ? "(reference)" : identical ? "yes" : "NO");
  }
}

}  // namespace

int main() {
  const benchutil::BenchSpec& knobs = benchutil::BenchSpec::env();
  const std::size_t hw = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  const std::size_t max_threads = knobs.threads != 0 ? knobs.threads : hw;
  std::vector<std::size_t> counts{1};
  for (std::size_t t = 2; t <= max_threads; t *= 2) counts.push_back(t);
  if (counts.back() != max_threads) counts.push_back(max_threads);

  benchutil::header(
      "exec scaling: serial vs parallel Monte-Carlo hot paths",
      "parallel runs are bit-identical to serial at every thread count");
  std::printf("hardware threads: %zu; sweeping up to %zu\n", hw, max_threads);

  // Variance-study repetitions: the paper's heaviest loop (Fig. 1).
  ml::GaussianMixtureConfig data_cfg;
  data_cfg.num_classes = 2;
  data_cfg.dim = 6;
  data_cfg.n = 300;
  data_cfg.class_sep = 1.2;
  data_cfg.label_noise = 0.1;
  rngx::Rng data_rng{1};
  const auto pool = ml::make_gaussian_mixture(data_cfg, data_rng);
  casestudies::MlpPipelineSpec spec;
  spec.name = "bench";
  spec.base.model.hidden = {12};
  spec.base.model.dropout = 0.2;
  spec.base.augment.jitter_std = 0.1;
  spec.base.epochs = 6;
  spec.base.batch_size = 32;
  spec.space.add({"learning_rate", 0.001, 0.5, hpo::ScaleKind::kLog});
  spec.defaults = {{"learning_rate", 0.1}};
  const casestudies::MlpPipeline pipeline{std::move(spec)};
  const core::OutOfBootstrapSplitter splitter{180, 80};
  const std::size_t reps = knobs.reps.value_or(24);
  sweep("variance_study", counts, [&](std::size_t threads) {
    return run_variance_study_path(pipeline, pool, splitter, reps, threads);
  });

  // Bootstrap resampling (Appendix C.5).
  std::vector<double> sample(4000);
  rngx::Rng sample_rng{5};
  for (double& v : sample) v = sample_rng.normal(0.0, 1.0);
  sweep("bootstrap_ci", counts, [&](std::size_t threads) {
    return run_bootstrap_path(sample, 4000, threads);
  });

  // §4.2 error-rate simulation sweep (Fig. 6).
  sweep("error_rates", counts, [&](std::size_t threads) {
    return run_error_rates_path(200, threads);
  });

  // Metrics overhead + invariance audit (docs/metrics.md): the identical
  // workload with every exec metric live must produce bit-identical
  // numbers, and the disabled path's cost is the acceptance budget
  // (<= 1% — a disabled metric is one predictable branch per record).
  benchutil::section("metrics overhead: exec metrics on vs off");
  {
    const auto best_of = [&](metrics::Sink* sink) {
      PathResult best;
      for (int i = 0; i < 3; ++i) {
        PathResult r = run_variance_study_path(pipeline, pool, splitter, reps,
                                               max_threads, sink);
        if (i == 0 || r.seconds < best.seconds) best = std::move(r);
      }
      return best;
    };
    const PathResult off = best_of(nullptr);
    metrics::Sink sink;
    metrics::enable_selection(sink, "exec");
    const PathResult on = best_of(&sink);
    const double overhead =
        off.seconds > 0.0 ? 100.0 * (on.seconds - off.seconds) / off.seconds
                          : 0.0;
    std::printf("  metrics off: %.4fs   metrics on: %.4fs   overhead: %+.2f%%\n",
                off.seconds, on.seconds, overhead);
    const metrics::Snapshot snap = sink.snapshot();
    const metrics::MetricSnapshot* chunks = snap.find(metrics::kExecChunks);
    std::printf("  recorded: %llu chunks across %llu regions\n",
                static_cast<unsigned long long>(
                    chunks != nullptr ? chunks->count : 0),
                static_cast<unsigned long long>(
                    snap.find(metrics::kExecRegions) != nullptr
                        ? snap.find(metrics::kExecRegions)->sum
                        : 0));
    if (on.signature != off.signature) {
      std::printf("  DETERMINISM FAILURE: enabling metrics changed bytes\n");
      ++g_determinism_failures;
    } else {
      std::printf("  metrics on/off results bit-identical\n");
    }
  }

  if (g_determinism_failures != 0) {
    std::printf("\nDETERMINISM FAILURES: %d\n", g_determinism_failures);
    return 1;
  }
  std::printf("\nall parallel results bit-identical to serial\n");
  return 0;
}

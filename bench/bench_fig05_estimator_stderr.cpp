// Figure 5 + Figure H.4 — standard error of biased and ideal estimators
// with k samples, for all five case studies (calibrated two-stage model:
// Eq. 7 analytically plus Monte-Carlo realizations as a cross-check).
// Thin spec-builder over the registered figure study kind: the numbers
// (and the VARBENCH_OUT artifact) are identical to
// `varbench run` on {"kind": "fig05_estimator_stderr"} — see bench/bench_util.h.
#include "bench/bench_util.h"

int main() {
  return varbench::benchutil::run_figure_bench(
      varbench::study::StudyKind::kFig05EstimatorStderr);
}

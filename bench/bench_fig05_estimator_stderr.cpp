// Figure 5 + Figure H.4 — Standard error of biased and ideal estimators
// with k samples, for all five case studies.
//
// Curves come from the calibrated two-stage model (Eq. 7 analytically, plus
// Monte-Carlo realizations of the simulator as a cross-check). With
// VARBENCH_EMPIRICAL=1 an additional small-k measurement on the real
// (scaled-down) pipeline is run for one task.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/varbench.h"

namespace {

using namespace varbench;

double simulated_std_of_mean(const compare::TaskVarianceProfile& profile,
                             std::size_t k, std::size_t realizations,
                             rngx::Rng& master) {
  // Each realization owns an RNG stream keyed by its index, so the figure
  // is bit-identical at every VARBENCH_THREADS setting.
  const auto means = exec::parallel_replicate<double>(
      benchutil::exec_context(), realizations, master, "fig05_realization",
      [&](std::size_t, rngx::Rng& rng) {
        return stats::mean(compare::simulate_measures(
            profile, compare::EstimatorKind::kBiased, 0.0, k, rng));
      });
  return stats::stddev(means);
}

}  // namespace

int main() {
  benchutil::header(
      "Figure 5 / H.4: standard error of estimators vs number of samples k",
      "FixHOptEst(k,All) approaches IdealEst(k) at no extra cost; "
      "FixHOptEst(k,Init) plateaus around the equivalent of IdealEst(k=2)");

  const std::size_t realizations = benchutil::env_size(
      "VARBENCH_REPS", benchutil::env_flag("VARBENCH_FULL") ? 200 : 60);
  const std::size_t ks[] = {1, 2, 5, 10, 20, 50, 100};

  auto table = benchutil::make_table(
      "fig05_estimator_stderr",
      {"seq", "task", "k", "estimator", "analytic", "simulated"}, 5);
  for (const auto& calib : casestudies::paper_calibrations()) {
    std::printf("\n%-18s (sigma_ideal=%.4f %s)\n", calib.paper_task.c_str(),
                calib.sigma_ideal, calib.metric.c_str());
    std::printf("  %-4s %12s %14s %14s %14s\n", "k", "IdealEst",
                "Fix(k,Init)", "Fix(k,Data)", "Fix(k,All)");
    rngx::Rng rng{rngx::derive_seed(5, calib.id)};
    for (const std::size_t k : ks) {
      const double ideal = calib.sigma_ideal / std::sqrt(static_cast<double>(k));
      std::printf("  %-4zu %12.5f", k, ideal);
      table.add_row({study::Cell{table.rows.size()}, study::Cell{calib.id},
                     study::Cell{k}, study::Cell{"ideal"}, study::Cell{ideal},
                     study::Cell{}});  // no MC cross-check for the ideal curve
      for (const auto subset :
           {core::RandomizeSubset::kInit, core::RandomizeSubset::kData,
            core::RandomizeSubset::kAll}) {
        const double analytic = std::sqrt(core::biased_estimator_variance(
            calib.sigma_ideal * calib.sigma_ideal, calib.rho_for(subset), k));
        const double sim = simulated_std_of_mean(calib.profile(subset), k,
                                                 realizations, rng);
        std::printf(" %7.5f/%.5f", analytic, sim);
        const char* label = subset == core::RandomizeSubset::kInit
                                ? "fix_init"
                                : subset == core::RandomizeSubset::kData
                                      ? "fix_data"
                                      : "fix_all";
        table.add_row({study::Cell{table.rows.size()}, study::Cell{calib.id},
                       study::Cell{k}, study::Cell{label},
                       study::Cell{analytic}, study::Cell{sim}});
      }
      std::printf("\n");
    }
    // Equivalent-ideal-k of the k→∞ plateau: Var -> ρσ² = σ²/k_eq.
    std::printf("  plateau equivalents: Init ~ IdealEst(k=%.1f), "
                "Data ~ IdealEst(k=%.1f), All ~ IdealEst(k=%.1f)\n",
                1.0 / calib.rho_init, 1.0 / calib.rho_data,
                1.0 / calib.rho_all);
  }

  benchutil::write_artifact(table);

  if (benchutil::env_flag("VARBENCH_EMPIRICAL")) {
    benchutil::section(
        "empirical (real pipeline, glue_rte_bert, small k, defaults-only HPO)");
    const auto cs =
        casestudies::make_case_study("glue_rte_bert", benchutil::scale());
    const core::HpoRunConfig cfg;  // defaults: isolates the ξO structure
    for (const auto subset :
         {core::RandomizeSubset::kInit, core::RandomizeSubset::kData,
          core::RandomizeSubset::kAll}) {
      std::vector<double> means;
      rngx::Rng master{7};
      for (int rep = 0; rep < 10; ++rep) {
        const auto r = core::fix_hopt_estimator(
            *cs.pipeline, *cs.pool, *cs.splitter, cfg, 10, subset, master);
        means.push_back(r.mean);
      }
      std::printf("  Fix(k=10,%-4s): std of estimator over 10 reps = %.5f\n",
                  std::string(core::to_string(subset)).c_str(),
                  stats::stddev(means));
    }
  }
  std::printf(
      "\nShape check vs paper: column order Ideal <= Fix(All) <= Fix(Data)\n"
      "<= Fix(Init) at every k>1, with Fix(Init) flattening earliest.\n"
      "(analytic/simulated pairs should agree within Monte-Carlo noise)\n");
  return 0;
}

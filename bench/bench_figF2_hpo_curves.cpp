// Figure F.2 — Optimization curves of the hyperparameter-optimization
// executions: mean ± std of the best-so-far validation and test objective
// across independent ξH seeds, for Bayesian optimization, noisy grid search
// and random search.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/varbench.h"

namespace {

using namespace varbench;

struct CurvePair {
  std::vector<std::vector<double>> valid;  // per seed: best-so-far valid risk
  std::vector<std::vector<double>> test;   // per seed: test risk at incumbent
};

struct SeedCurves {
  std::vector<double> valid;
  std::vector<double> test;
};

/// One independent ξH seed's best-so-far curves. Runs on its own RNG
/// stream, so the ξH fan-out below parallelizes without changing numbers.
SeedCurves run_one_seed(const casestudies::CaseStudy& cs,
                        const hpo::HpoAlgorithm& algo, std::size_t budget,
                        rngx::Rng& seed_rng) {
  const rngx::VariationSeeds base;  // ξO fixed: variance is ξH-only
  const auto seeds = base.with_randomized(rngx::VariationSource::kHpo,
                                          seed_rng);
  auto split_rng = seeds.rng_for(rngx::VariationSource::kDataSplit);
  const auto split = cs.splitter->split(*cs.pool, split_rng);
  const auto [trainvalid, test] = core::materialize(*cs.pool, split);
  // Inner split for the HPO objective.
  auto hpo_rng = seeds.rng_for(rngx::VariationSource::kHpo);
  std::vector<std::size_t> order(trainvalid.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  hpo_rng.shuffle(order);
  const std::size_t n_valid = order.size() / 4;
  const auto inner_valid = ml::subset(
      trainvalid, std::span<const std::size_t>{order.data(), n_valid});
  const auto inner_train = ml::subset(
      trainvalid, std::span<const std::size_t>{order.data() + n_valid,
                                               order.size() - n_valid});
  std::vector<double> valid_curve;
  std::vector<double> test_curve;
  double best_valid = 1e9;
  double test_at_best = 1e9;
  const hpo::Objective objective = [&](const hpo::ParamPoint& lambda) {
    const double valid_risk =
        1.0 - cs.pipeline->train_and_evaluate(inner_train, inner_valid,
                                              lambda, seeds);
    if (valid_risk < best_valid) {
      best_valid = valid_risk;
      test_at_best = 1.0 - cs.pipeline->train_and_evaluate(
                               trainvalid, test, lambda, seeds);
    }
    valid_curve.push_back(best_valid);
    test_curve.push_back(test_at_best);
    return valid_risk;
  };
  (void)algo.optimize(cs.pipeline->search_space(), objective, budget,
                      hpo_rng);
  return SeedCurves{std::move(valid_curve), std::move(test_curve)};
}

CurvePair run_hpo_curves(const casestudies::CaseStudy& cs,
                         const hpo::HpoAlgorithm& algo, std::size_t budget,
                         std::size_t seeds_n) {
  rngx::Rng master{rngx::derive_seed(0xF2, cs.id)};
  const auto per_seed = exec::parallel_replicate<SeedCurves>(
      benchutil::exec_context(), seeds_n, master, "figF2_seed",
      [&](std::size_t, rngx::Rng& seed_rng) {
        return run_one_seed(cs, algo, budget, seed_rng);
      });
  CurvePair out;
  for (const SeedCurves& curves : per_seed) {
    out.valid.push_back(curves.valid);
    out.test.push_back(curves.test);
  }
  return out;
}

void print_curve(const char* label,
                 const std::vector<std::vector<double>>& curves,
                 const std::vector<std::size_t>& checkpoints) {
  std::printf("  %-22s", label);
  for (const std::size_t t : checkpoints) {
    std::vector<double> at;
    for (const auto& c : curves) {
      if (t - 1 < c.size()) at.push_back(c[t - 1]);
    }
    if (at.empty()) {
      std::printf(" %13s", "-");
    } else {
      std::printf(" %6.3f±%.3f", stats::mean(at), stats::stddev(at));
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  benchutil::header(
      "Figure F.2: HPO optimization curves (best-so-far risk, mean±std over "
      "independent xi_H seeds)",
      "typical search spaces are well optimized by all three algorithms and "
      "the across-seed std stabilizes early (before ~25% of the budget)");
  const bool full = benchutil::env_flag("VARBENCH_FULL");
  const std::size_t budget = full ? 200 : 24;
  const std::size_t seeds_n = full ? 20 : 5;
  const std::vector<std::size_t> checkpoints =
      full ? std::vector<std::size_t>{1, 25, 50, 100, 200}
           : std::vector<std::size_t>{1, 6, 12, 18, 24};

  const char* algo_names[] = {"bayes_opt", "noisy_grid_search",
                              "random_search"};
  for (const auto* task : {"glue_rte_bert", "cifar10_vgg11"}) {
    const auto cs = casestudies::make_case_study(task, benchutil::scale());
    std::printf("\n%s (risk = 1 - %s)\n", cs.paper_task.c_str(),
                std::string(ml::to_string(cs.pipeline->metric())).c_str());
    std::printf("  %-22s", "algorithm");
    for (const std::size_t t : checkpoints) std::printf("      iter %3zu", t);
    std::printf("\n");
    for (const auto* name : algo_names) {
      const auto algo = hpo::make_hpo_algorithm(name);
      const auto curves = run_hpo_curves(cs, *algo, budget, seeds_n);
      print_curve((std::string(name) + " [valid]").c_str(), curves.valid,
                  checkpoints);
      print_curve((std::string(name) + " [test]").c_str(), curves.test,
                  checkpoints);
    }
  }
  std::printf(
      "\nShape check vs paper: all three algorithms reach similar final\n"
      "valid risk; the across-seed std (the ±) does not keep shrinking with\n"
      "more iterations — HPO variance would not vanish with larger budgets.\n");
  return 0;
}

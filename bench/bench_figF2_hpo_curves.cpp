// Figure F.2 — optimization curves of the hyperparameter-optimization
// executions: mean ± std of the best-so-far validation and test objective
// across independent ξH seeds.
// Thin spec-builder over the registered figure study kind: the numbers
// (and the VARBENCH_OUT artifact) are identical to
// `varbench run` on {"kind": "figF2_hpo_curves"} — see bench/bench_util.h.
#include "bench/bench_util.h"

int main() {
  return varbench::benchutil::run_figure_bench(
      varbench::study::StudyKind::kFigF2HpoCurves);
}

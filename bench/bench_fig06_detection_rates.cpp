// Figure 6 — Rate of detections of different comparison methods as the true
// P(A>B) varies from 0.4 to 1, with both the ideal and the 51×-cheaper
// biased estimator, averaged over the five case-study calibrations.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/varbench.h"

namespace {

using namespace varbench;

compare::DetectionCurves run(const casestudies::TaskCalibration& calib,
                             compare::EstimatorKind kind, std::size_t k,
                             std::size_t sims, rngx::Rng& rng) {
  const auto profile = kind == compare::EstimatorKind::kIdeal
                           ? calib.ideal_profile()
                           : calib.profile(core::RandomizeSubset::kAll);
  std::vector<std::unique_ptr<compare::ComparisonCriterion>> criteria;
  const double delta =
      compare::published_improvement_delta(calib.sigma_ideal);
  criteria.push_back(
      std::make_unique<compare::OracleComparison>(calib.sigma_ideal));
  criteria.push_back(
      std::make_unique<compare::SinglePointComparison>(delta));
  criteria.push_back(std::make_unique<compare::AverageComparison>(delta));
  criteria.push_back(
      std::make_unique<compare::ProbOutperformCriterion>(0.75, 100));
  compare::DetectionRateConfig cfg;
  cfg.k = k;
  cfg.simulations = sims;
  return compare::characterize_detection_rates(profile, kind, criteria, cfg,
                                               rng);
}

void print_curves(const compare::DetectionCurves& curves, double gamma) {
  std::printf("  %-6s %-14s %8s %13s %9s %11s\n", "P(A>B)", "region",
              "oracle", "single_point", "average", "prob_outp.");
  for (std::size_t i = 0; i < curves.p_grid.size(); ++i) {
    const double p = curves.p_grid[i];
    const auto region = compare::classify_region(p, gamma);
    const char* label = region == compare::TruthRegion::kH0 ? "H0"
                        : region == compare::TruthRegion::kH1 ? "H1"
                                                              : "H0H1";
    std::printf("  %-6.2f %-14s %7.0f%% %12.0f%% %8.0f%% %10.0f%%\n", p,
                label, 100.0 * curves.rates.at("oracle")[i],
                100.0 * curves.rates.at("single_point")[i],
                100.0 * curves.rates.at("average")[i],
                100.0 * curves.rates.at("prob_outperforming")[i]);
  }
}

compare::DetectionCurves average_over_tasks(compare::EstimatorKind kind,
                                            std::size_t k, std::size_t sims) {
  compare::DetectionCurves total;
  bool first = true;
  for (const auto& calib : casestudies::paper_calibrations()) {
    rngx::Rng rng{rngx::derive_seed(6, calib.id)};
    const auto curves = run(calib, kind, k, sims, rng);
    if (first) {
      total = curves;
      first = false;
      continue;
    }
    for (auto& [name, rates] : total.rates) {
      const auto& other = curves.rates.at(name);
      for (std::size_t i = 0; i < rates.size(); ++i) rates[i] += other[i];
    }
  }
  const auto n = static_cast<double>(casestudies::paper_calibrations().size());
  for (auto& [name, rates] : total.rates) {
    (void)name;
    for (double& r : rates) r /= n;
  }
  return total;
}

void record_curves(const compare::DetectionCurves& curves,
                   const char* estimator, study::ResultTable& table) {
  for (const auto& [criterion, rates] : curves.rates) {
    for (std::size_t i = 0; i < curves.p_grid.size(); ++i) {
      table.add_row({study::Cell{table.rows.size()}, study::Cell{estimator},
                     study::Cell{criterion}, study::Cell{curves.p_grid[i]},
                     study::Cell{rates[i]}});
    }
  }
}

}  // namespace

int main() {
  benchutil::header(
      "Figure 6: detection rates of comparison criteria vs true P(A>B)",
      "single-point: ~10% FP and ~75% FN; average: <5% FP but ~90% FN; "
      "P(A>B) test: ~5% FP and ~30% FN, close to the oracle");
  const std::size_t k = 50;  // the paper's budget
  const std::size_t sims = benchutil::env_size(
      "VARBENCH_REPS", benchutil::env_flag("VARBENCH_FULL") ? 500 : 100);

  auto table = benchutil::make_table(
      "fig06_detection_rates", {"seq", "estimator", "criterion", "p", "rate"},
      6);
  benchutil::section("ideal estimator (solid lines)");
  const auto ideal = average_over_tasks(compare::EstimatorKind::kIdeal, k,
                                        sims);
  print_curves(ideal, 0.75);
  record_curves(ideal, "ideal", table);
  benchutil::section("biased estimator FixHOptEst(k, All) (dashed lines)");
  const auto biased = average_over_tasks(compare::EstimatorKind::kBiased, k,
                                         sims);
  print_curves(biased, 0.75);
  record_curves(biased, "fix_all", table);
  benchutil::write_artifact(table);
  std::printf(
      "\nShape check vs paper: at P=0.5 single_point has the highest FP rate;\n"
      "in the H1 region (P>0.75) average has the highest FN rate and\n"
      "prob_outperforming tracks the oracle most closely; the biased\n"
      "estimator degrades prob_outperforming only mildly.\n");
  return 0;
}

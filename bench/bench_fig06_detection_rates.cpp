// Figure 6 — rate of detections of different comparison methods as the true
// P(A>B) varies, with both the ideal and the 51×-cheaper biased estimator,
// averaged over the five case-study calibrations.
// Thin spec-builder over the registered figure study kind: the numbers
// (and the VARBENCH_OUT artifact) are identical to
// `varbench run` on {"kind": "fig06_detection_rates"} — see bench/bench_util.h.
#include "bench/bench_util.h"

int main() {
  return varbench::benchutil::run_figure_bench(
      varbench::study::StudyKind::kFig06DetectionRates);
}

// Figure 1 — different sources of variation of the measured performance,
// as a fraction of the variance induced by bootstrapping the data.
// Thin spec-builder over the registered figure study kind: the numbers
// (and the VARBENCH_OUT artifact) are identical to
// `varbench run` on {"kind": "fig01_variance_sources"} — see bench/bench_util.h.
#include "bench/bench_util.h"

int main() {
  return varbench::benchutil::run_figure_bench(
      varbench::study::StudyKind::kFig01VarianceSources);
}

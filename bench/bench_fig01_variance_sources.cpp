// Figure 1 — Different sources of variation of the measured performance,
// as a fraction of the variance induced by bootstrapping the data.
//
// For each case study we randomize one ξ source at a time (200× in the
// paper, VARBENCH_REPS here) with defaults for λ, plus independent HOpt
// repetitions for the three tuning algorithms.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/varbench.h"

namespace {

using namespace varbench;

void run_task(const std::string& id, std::size_t reps, std::size_t hpo_reps,
              std::size_t hpo_budget, study::ResultTable& table) {
  const auto cs = casestudies::make_case_study(id, benchutil::scale());
  core::VarianceStudyConfig cfg;
  cfg.repetitions = reps;
  cfg.hpo_algorithms = {"noisy_grid_search", "random_search", "bayes_opt"};
  cfg.hpo_repetitions = hpo_reps;
  cfg.hpo_budget = hpo_budget;
  cfg.include_numerical_noise = true;
  rngx::Rng master{rngx::derive_seed(42, id)};
  const auto result =
      core::run_variance_study(*cs.pipeline, *cs.pool, *cs.splitter, cfg,
                               master);
  const double boot = result.bootstrap_std();
  std::printf("\n%-18s (%s, metric=%s)\n", cs.paper_task.c_str(), id.c_str(),
              std::string(ml::to_string(cs.pipeline->metric())).c_str());
  std::printf("  %-22s %10s %10s %14s\n", "source", "mean", "std",
              "std/bootstrap");
  for (const auto& row : result.rows) {
    std::printf("  %-22s %10.4f %10.4f %14.2f\n", row.label.c_str(), row.mean,
                row.stddev, boot > 0.0 ? row.stddev / boot : 0.0);
    for (std::size_t rep = 0; rep < row.measures.size(); ++rep) {
      table.add_row({study::Cell{table.rows.size()}, study::Cell{id},
                     study::Cell{row.label}, study::Cell{rep},
                     study::Cell{row.measures[rep]}});
    }
  }
}

}  // namespace

int main() {
  benchutil::header(
      "Figure 1: variance decomposition per source, all 5 case studies",
      "data bootstrap dominates; HPO variance is on par with weight init; "
      "numerical noise is negligible except for the VOC pipeline");
  const std::size_t reps =
      benchutil::env_size("VARBENCH_REPS",
                          benchutil::env_flag("VARBENCH_FULL") ? 200 : 30);
  const std::size_t hpo_reps = benchutil::env_flag("VARBENCH_FULL") ? 20 : 5;
  const std::size_t hpo_budget = benchutil::env_flag("VARBENCH_FULL") ? 200 : 12;
  auto table = benchutil::make_table(
      "fig01_variance_sources", {"seq", "task", "source", "rep", "measure"},
      42);
  for (const auto& id : casestudies::case_study_ids()) {
    run_task(id, reps, hpo_reps, hpo_budget, table);
  }
  benchutil::write_artifact(table);
  std::printf(
      "\nShape check vs paper: bootstrap row should have the largest std in\n"
      "most tasks, and the three HPO rows should be comparable to the\n"
      "weight-init row (Fig. 1's center-of-mass).\n");
  return 0;
}

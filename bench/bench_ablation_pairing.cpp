// Ablation (Appendix C.2) — pairing: running A and B under the SAME ξ per
// run marginalizes the shared variance components and detects smaller
// differences at the same sample size.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/varbench.h"

namespace {

using namespace varbench;

// Simulated paired measurements: both algorithms share a per-run split
// effect (the dominant ξO component); A has a true mean edge.
void simulate_pair(double edge, double shared_std, double indep_std,
                   std::size_t k, rngx::Rng& rng, std::vector<double>& a,
                   std::vector<double>& b, bool paired) {
  a.resize(k);
  b.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    const double shared_a = rng.normal(0.0, shared_std);
    const double shared_b = paired ? shared_a : rng.normal(0.0, shared_std);
    a[i] = 0.8 + edge + shared_a + rng.normal(0.0, indep_std);
    b[i] = 0.8 + shared_b + rng.normal(0.0, indep_std);
  }
}

}  // namespace

int main() {
  benchutil::header(
      "Ablation (App. C.2): paired vs unpaired comparisons",
      "pairing marginalizes shared variance: sigma(A-B) <= sigma_A+sigma_B, "
      "so smaller differences become detectable at the same N");
  const std::size_t sims = benchutil::env_size(
      "VARBENCH_REPS", benchutil::env_flag("VARBENCH_FULL") ? 500 : 150);
  constexpr double shared_std = 0.02;  // split-driven component
  constexpr double indep_std = 0.005;  // seed-driven component
  constexpr std::size_t k = 29;        // Noether's N at gamma=0.75

  std::printf("\n  %-12s %18s %18s\n", "true edge", "paired detection",
              "unpaired detection");
  rngx::Rng rng{0xBA1D};
  std::vector<double> a;
  std::vector<double> b;
  for (const double edge : {0.0, 0.005, 0.01, 0.02, 0.04}) {
    std::size_t paired_hits = 0;
    std::size_t unpaired_hits = 0;
    for (std::size_t s = 0; s < sims; ++s) {
      simulate_pair(edge, shared_std, indep_std, k, rng, a, b, true);
      auto r1 = stats::test_probability_of_outperforming(a, b, rng, 0.75, 200);
      if (r1.conclusion ==
          stats::ComparisonConclusion::kSignificantAndMeaningful) {
        ++paired_hits;
      }
      simulate_pair(edge, shared_std, indep_std, k, rng, a, b, false);
      auto r2 = stats::test_probability_of_outperforming(a, b, rng, 0.75, 200);
      if (r2.conclusion ==
          stats::ComparisonConclusion::kSignificantAndMeaningful) {
        ++unpaired_hits;
      }
    }
    std::printf("  %-12.3f %17.0f%% %17.0f%%\n", edge,
                100.0 * static_cast<double>(paired_hits) / sims,
                100.0 * static_cast<double>(unpaired_hits) / sims);
  }
  std::printf(
      "\nReading: at edge=0 both stay near the nominal false-positive rate;\n"
      "for small true edges (0.005-0.02, below the shared-noise scale) the\n"
      "paired design detects far more often — the variance of A-B drops\n"
      "from sqrt(2*(%.3f^2+%.3f^2)) to sqrt(2*%.3f^2) when pairing removes\n"
      "the shared split effect.\n",
      shared_std, indep_std, indep_std);
  return 0;
}

// Ablation (Appendix C.2) — pairing: running A and B under the SAME ξ per
// run marginalizes the shared variance components and detects smaller
// differences at the same sample size.
// Thin spec-builder over the registered figure study kind: the numbers
// (and the VARBENCH_OUT artifact) are identical to
// `varbench run` on {"kind": "ablation_pairing"} — see bench/bench_util.h.
#include "bench/bench_util.h"

int main() {
  return varbench::benchutil::run_figure_bench(
      varbench::study::StudyKind::kAblationPairing);
}

// Artifact I/O throughput: the JSON text artifact vs the VBT1 binary
// columnar artifact (src/io/columnar/, docs/artifacts.md) on the three
// paths reports and campaigns actually exercise — save, load, and
// multi-shard merge — at row counts where artifact I/O dominates
// (10⁵–10⁶ raw measures).
//
// Two "load" numbers are reported for the binary format because it has
// two consumer paths: `load` materializes the full ResultTable (what
// merge and report grouping use), while `open` is the zero-copy
// MappedTable path (what the stats kernels read spans from) — the latter
// never touches the per-cell data at all beyond validation scans.
//
// Knobs:
//   VARBENCH_ROWS    rows in the benchmark table (default 1000000)
//   VARBENCH_SHARDS  shard count for the merge path (default 4)
//   VARBENCH_REPS    timed repetitions per operation; min is reported
//                    (default 3)
//   VARBENCH_OUT     directory for scratch artifacts (default: a fresh
//                    directory under the system temp dir, removed on exit)
//
// Prints a human summary plus one trajectory-entry JSON object —
// bench/BENCH_artifact_io.json keeps one such entry per recorded run so
// the speedups are tracked across PRs.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/io/columnar/vbt.h"
#include "src/io/json.h"
#include "src/rngx/rng.h"
#include "src/study/result_table.h"

namespace {

using namespace varbench;
namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Min wall time of `reps` runs of `fn` — the usual noise floor estimate.
template <typename Fn>
double best_of(std::size_t reps, Fn&& fn) {
  double best = 0.0;
  for (std::size_t i = 0; i < reps; ++i) {
    const auto start = Clock::now();
    fn();
    const double s = seconds_since(start);
    if (i == 0 || s < best) best = s;
  }
  return best;
}

constexpr const char* kSources[] = {"init", "data_order", "dropout",
                                    "data_split", "numerical"};

/// A variance-study-shaped table: seq + source + four f64 measure columns.
study::ResultTable make_table(std::size_t rows, study::ShardSpec shard,
                              std::size_t seq_begin) {
  study::ResultTable t;
  t.name = "bench:artifact_io";
  t.seed = 42;
  t.shard = shard;
  t.columns = {"seq", "source", "accuracy", "loss", "wall_s", "epochs"};
  rngx::Rng rng{shard.index + 1};
  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t seq = seq_begin + i;
    t.add_row({study::Cell{std::uint64_t{seq}},
               study::Cell{std::string{kSources[seq % 5]}},
               study::Cell{rng.normal(0.87, 0.02)},
               study::Cell{rng.normal(0.4, 0.05)},
               study::Cell{rng.normal(120.0, 8.0)},
               study::Cell{std::uint64_t{10 + seq % 3}}});
  }
  return t;
}

struct PathTimes {
  double save_s = 0.0;
  double load_s = 0.0;
  double merge_s = 0.0;  // load all shards + merge_result_tables
  std::uintmax_t bytes = 0;
};

}  // namespace

int main() {
  // VARBENCH_ROWS / VARBENCH_SHARDS are bespoke to this harness; the
  // shared knobs come from the one BenchSpec parse (bench/bench_spec.h).
  const std::size_t rows = benchutil::env_size("VARBENCH_ROWS", 1'000'000);
  const std::size_t shards = benchutil::env_size("VARBENCH_SHARDS", 4);
  const std::size_t reps = benchutil::BenchSpec::env().reps.value_or(3);
  const char* out_env = std::getenv("VARBENCH_OUT");
  const fs::path dir =
      out_env != nullptr && *out_env != '\0'
          ? fs::path{out_env}
          : fs::temp_directory_path() / "varbench_bench_artifact_io";
  fs::create_directories(dir);

  std::printf("artifact I/O bench: %zu rows, %zu merge shards\n", rows,
              shards);
  const study::ResultTable table = make_table(rows, study::ShardSpec{}, 0);

  // Shards for the merge path (equal contiguous seq slices).
  std::vector<study::ResultTable> shard_tables;
  const std::size_t per = (rows + shards - 1) / shards;
  for (std::size_t i = 0; i < shards; ++i) {
    const std::size_t begin = i * per;
    const std::size_t count = begin < rows ? std::min(per, rows - begin) : 0;
    shard_tables.push_back(
        make_table(count, study::ShardSpec{i, shards}, begin));
  }

  PathTimes json, vbt;
  double vbt_open_s = 0.0;

  for (const bool binary : {false, true}) {
    PathTimes& t = binary ? vbt : json;
    const char* ext = binary ? ".vbt" : ".json";
    const auto fmt = binary ? study::ArtifactFormat::kBinary
                            : study::ArtifactFormat::kJson;
    const std::string whole = (dir / (std::string{"whole"} + ext)).string();

    t.save_s = best_of(reps, [&] { table.save(whole, fmt); });
    t.bytes = fs::file_size(whole);

    std::size_t loaded_rows = 0;
    t.load_s = best_of(reps, [&] {
      loaded_rows = study::ResultTable::load(whole).rows.size();
    });
    if (loaded_rows != rows) {
      std::fprintf(stderr, "FATAL: %s loaded %zu rows, want %zu\n", ext,
                   loaded_rows, rows);
      return 1;
    }

    if (binary) {
      // Zero-copy path: open + touch every f64 measure through the span.
      double sum = 0.0;
      vbt_open_s = best_of(reps, [&] {
        const auto mapped = io::columnar::MappedTable::open(whole);
        sum = 0.0;
        for (const double v : mapped->f64_column(2)) sum += v;
      });
      std::printf("  (zero-copy accuracy mean %.6f)\n",
                  sum / static_cast<double>(rows));
    }

    std::vector<std::string> shard_paths;
    for (std::size_t i = 0; i < shards; ++i) {
      const std::string p =
          (dir / ("shard" + std::to_string(i) + ext)).string();
      shard_tables[i].save(p, fmt);
      shard_paths.push_back(p);
    }
    std::size_t merged_rows = 0;
    t.merge_s = best_of(reps, [&] {
      std::vector<study::ResultTable> loaded_shards;
      for (const std::string& p : shard_paths) {
        loaded_shards.push_back(study::ResultTable::load(p));
      }
      merged_rows =
          study::merge_result_tables(std::move(loaded_shards)).rows.size();
    });
    if (merged_rows != rows) {
      std::fprintf(stderr, "FATAL: merge produced %zu rows, want %zu\n",
                   merged_rows, rows);
      return 1;
    }

    std::printf("  %-5s save %7.3fs  load %7.3fs  merge %7.3fs  %9.1f MiB\n",
                binary ? "vbt" : "json", t.save_s, t.load_s, t.merge_s,
                static_cast<double>(t.bytes) / (1024.0 * 1024.0));
  }

  std::printf("  vbt zero-copy open+scan: %.6fs\n", vbt_open_s);
  // "load" is each format's native analysis-load path: full parse for
  // JSON, mmap + span scan for the binary format (the reason it exists).
  // "load_materialized" decodes the binary artifact all the way to
  // io::Json cells — the merge/interchange path.
  std::printf("speedups (json/vbt): load %.0fx  materialized load %.1fx  "
              "merge %.1fx  save %.1fx\n",
              json.load_s / vbt_open_s, json.load_s / vbt.load_s,
              json.merge_s / vbt.merge_s, json.save_s / vbt.save_s);

  // Trajectory entry (paste into bench/BENCH_artifact_io.json).
  io::Json entry = io::Json::object();
  entry.set("rows", io::Json{std::uint64_t{rows}});
  entry.set("columns", io::Json{std::uint64_t{table.columns.size()}});
  entry.set("shards", io::Json{std::uint64_t{shards}});
  auto path_json = [](const PathTimes& t) {
    io::Json o = io::Json::object();
    o.set("save_s", io::Json{t.save_s});
    o.set("load_s", io::Json{t.load_s});
    o.set("merge_s", io::Json{t.merge_s});
    o.set("bytes", io::Json{std::uint64_t{t.bytes}});
    return o;
  };
  entry.set("json", path_json(json));
  io::Json v = path_json(vbt);
  v.set("open_scan_s", io::Json{vbt_open_s});
  entry.set("vbt", v);
  io::Json speedup = io::Json::object();
  speedup.set("load", io::Json{json.load_s / vbt_open_s});
  speedup.set("load_materialized", io::Json{json.load_s / vbt.load_s});
  speedup.set("merge", io::Json{json.merge_s / vbt.merge_s});
  speedup.set("save", io::Json{json.save_s / vbt.save_s});
  entry.set("speedup", speedup);
  std::printf("%s\n", entry.dump(2).c_str());

  if (out_env == nullptr || *out_env == '\0') {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
  return 0;
}

// Tables 8/9 — Comparison of models on the MHC binding-prediction task:
// the paper compares its single shallow MLP (MLP-MHC) against
// NetMHCpan4-style (single model, allele+peptide input) and MHCflurry-style
// (ensemble of shallow MLPs) designs, reporting AUC and PCC.
//
// We reproduce the *design* comparison on the synthetic binding task:
//   MLP-MHC        single shallow MLP, one-hot ("sparse") encoding
//   NetMHCpan4-a   single shallow MLP, smaller hidden layer (BLOSUM-like
//                  compressed encoding simulated by a fixed projection)
//   MHCflurry-a    ensemble of 8 shallow MLPs (averaged predictions)
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/varbench.h"

namespace {

using namespace varbench;

struct ModelScore {
  double auc = 0.0;
  double pcc = 0.0;
};

ModelScore evaluate_single(const ml::Dataset& train, const ml::Dataset& test,
                           std::size_t hidden, const rngx::VariationSeeds& s) {
  ml::TrainConfig cfg;
  cfg.model.hidden = {hidden};
  cfg.optimizer = ml::OptimizerKind::kAdam;
  cfg.loss = ml::LossKind::kMse;
  cfg.opt.learning_rate = 0.01;
  cfg.epochs = 15;
  cfg.batch_size = 64;
  const auto m = ml::train_mlp(train, cfg, s);
  return {ml::evaluate_model(m, test, ml::Metric::kAuc, 0.5),
          ml::evaluate_model(m, test, ml::Metric::kPearson)};
}

ModelScore evaluate_ensemble(const ml::Dataset& train, const ml::Dataset& test,
                             std::size_t members, std::size_t hidden,
                             rngx::Rng& master) {
  // MHCflurry-style: average the predictions of several independently
  // initialized shallow MLPs.
  std::vector<double> avg(test.size(), 0.0);
  for (std::size_t e = 0; e < members; ++e) {
    rngx::VariationSeeds s;
    s.weight_init = master.next_u64();
    s.data_order = master.next_u64();
    ml::TrainConfig cfg;
    cfg.model.hidden = {hidden};
    cfg.optimizer = ml::OptimizerKind::kAdam;
    cfg.loss = ml::LossKind::kMse;
    cfg.opt.learning_rate = 0.01;
    cfg.epochs = 15;
    cfg.batch_size = 64;
    const auto m = ml::train_mlp(train, cfg, s);
    const auto pred = m.forward(test.x);
    for (std::size_t i = 0; i < test.size(); ++i) avg[i] += pred(i, 0);
  }
  for (double& v : avg) v /= static_cast<double>(members);
  return {ml::roc_auc(avg, ml::binarize(test.y, 0.5)),
          stats::pearson(avg, test.y)};
}

}  // namespace

int main() {
  benchutil::header(
      "Tables 8/9: model-design comparison on the MHC binding task",
      "the three designs perform comparably (paper: AUC 0.85-0.96, "
      "PCC 0.62-0.67 on CV splits); ensembling helps modestly");
  const auto cs = casestudies::make_case_study("mhc_mlp",
                                               std::max(0.5, benchutil::scale()));
  const std::size_t reps = benchutil::env_size(
      "VARBENCH_REPS", benchutil::env_flag("VARBENCH_FULL") ? 20 : 5);

  struct Row {
    const char* name;
    std::vector<double> auc;
    std::vector<double> pcc;
  };
  std::vector<Row> rows{{"MLP-MHC (single, h=150)", {}, {}},
                        {"NetMHCpan4-analogue (single, h=60)", {}, {}},
                        {"MHCflurry-analogue (8-ensemble, h=60)", {}, {}}};

  rngx::Rng master{0x8008};
  for (std::size_t r = 0; r < reps; ++r) {
    const auto seeds = rngx::VariationSeeds::random(master);
    auto split_rng = seeds.rng_for(rngx::VariationSource::kDataSplit);
    const auto split = cs.splitter->split(*cs.pool, split_rng);
    const auto [train, test] = core::materialize(*cs.pool, split);

    const auto mlp_mhc = evaluate_single(train, test, 150, seeds);
    rows[0].auc.push_back(mlp_mhc.auc);
    rows[0].pcc.push_back(mlp_mhc.pcc);
    const auto netmhc = evaluate_single(train, test, 60, seeds);
    rows[1].auc.push_back(netmhc.auc);
    rows[1].pcc.push_back(netmhc.pcc);
    auto ens_rng = master.split("ensemble");
    const auto flurry = evaluate_ensemble(train, test, 8, 60, ens_rng);
    rows[2].auc.push_back(flurry.auc);
    rows[2].pcc.push_back(flurry.pcc);
  }

  std::printf("  %-40s %14s %14s\n", "model design", "AUC", "PCC");
  for (const auto& row : rows) {
    std::printf("  %-40s %7.3f±%.3f %7.3f±%.3f\n", row.name,
                stats::mean(row.auc), stats::stddev(row.auc),
                stats::mean(row.pcc), stats::stddev(row.pcc));
  }
  std::printf(
      "\n  paper (Table 8, NetMHC-CVsplits): NetMHCpan4 AUC .854 PCC .620;\n"
      "  MHCflurry .964*/.671* (leakage-inflated); MLP-MHC .861/.660.\n"
      "Shape check: designs within a few points of each other; the ensemble\n"
      "at least matches the equivalent single model.\n");
  return 0;
}

// Tables 8/9 — comparison of model designs on the MHC binding-prediction
// task: MLP-MHC vs NetMHCpan4-style vs MHCflurry-style (ensemble).
// Thin spec-builder over the registered figure study kind: the numbers
// (and the VARBENCH_OUT artifact) are identical to
// `varbench run` on {"kind": "table8_mhc_models"} — see bench/bench_util.h.
#include "bench/bench_util.h"

int main() {
  return varbench::benchutil::run_figure_bench(
      varbench::study::StudyKind::kTable8MhcModels);
}

// Ablation (Appendix B) — why out-of-bootstrap instead of cross-validation
// or a fixed held-out set? Synthetic pools make the TRUE expected
// performance measurable by fresh draws from the generating distribution.
// Thin spec-builder over the registered figure study kind: the numbers
// (and the VARBENCH_OUT artifact) are identical to
// `varbench run` on {"kind": "ablation_splitters"} — see bench/bench_util.h.
#include "bench/bench_util.h"

int main() {
  return varbench::benchutil::run_figure_bench(
      varbench::study::StudyKind::kAblationSplitters);
}

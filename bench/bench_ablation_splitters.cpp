// Ablation (Appendix B) — why out-of-bootstrap instead of cross-validation
// or a fixed held-out set?
//
// Because the data pools are synthetic, the TRUE expected performance is
// measurable by drawing fresh data from the generating distribution D. We
// compare splitting strategies on:
//   1. the spread of the k-split mean estimate around the fresh-data truth,
//   2. the correlation between fold measures (CV's folds share data),
//   3. flexibility: OOB supports any (train, test) size, CV does not.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/varbench.h"

namespace {

using namespace varbench;

struct StrategyStats {
  double mean = 0.0;
  double std_of_mean = 0.0;  // across repetitions of the whole procedure
  double avg_measure_corr = 0.0;
};

}  // namespace

int main() {
  benchutil::header(
      "Ablation (App. B): out-of-bootstrap vs cross-validation vs fixed split",
      "bootstrap-based splitting gives flexible sample sizes and avoids the "
      "correlation-driven variance underestimation of cross-validation");
  const double scale = benchutil::scale();
  const std::size_t reps = benchutil::env_size(
      "VARBENCH_REPS", benchutil::env_flag("VARBENCH_FULL") ? 50 : 12);
  constexpr std::size_t k = 5;  // folds / splits per procedure

  // A generator-backed task: fresh draws from D give the ground truth.
  ml::GaussianMixtureConfig gen;
  gen.num_classes = 4;
  gen.dim = 12;
  gen.n = static_cast<std::size_t>(1200 * scale) + 300;
  gen.class_sep = 2.2;
  gen.label_noise = 0.05;
  rngx::Rng pool_seed{0xB00};
  const auto pool = ml::make_gaussian_mixture(gen, pool_seed);

  ml::TrainConfig tcfg;
  tcfg.model.hidden = {12};
  tcfg.opt.learning_rate = 0.05;
  tcfg.opt.momentum = 0.9;
  tcfg.epochs = 8;
  tcfg.batch_size = 32;

  // Ground truth: train on the full pool, evaluate on a large fresh draw.
  rngx::Rng fresh_rng{0xF00D};
  auto fresh_cfg = gen;
  fresh_cfg.n = 20000;
  const auto fresh = ml::make_gaussian_mixture(fresh_cfg, fresh_rng);
  const rngx::VariationSeeds base_seeds;
  const auto truth_model = ml::train_mlp(pool, tcfg, base_seeds);
  const double truth =
      ml::evaluate_model(truth_model, fresh, ml::Metric::kAccuracy);
  std::printf("\nground truth (fresh draws from D): accuracy = %.4f\n", truth);

  auto run_strategy = [&](const char* name, auto&& make_measures) {
    std::vector<double> means;
    std::vector<double> corrs;
    rngx::Rng master{rngx::derive_seed(0xAB1, name)};
    for (std::size_t r = 0; r < reps; ++r) {
      const std::vector<double> m = make_measures(master);
      means.push_back(stats::mean(m));
      // Average pairwise sample correlation proxy: variance of the mean vs
      // the within-procedure variance (Eq. 7 inverted needs repetitions, so
      // report within-procedure std here and the spread across reps below).
      corrs.push_back(stats::stddev(m));
    }
    StrategyStats s;
    s.mean = stats::mean(means);
    s.std_of_mean = stats::stddev(means);
    s.avg_measure_corr = stats::mean(corrs);
    std::printf("  %-18s mean=%.4f  |mean-truth|=%.4f  std(mean)=%.4f  "
                "within-std=%.4f\n",
                name, s.mean, std::abs(s.mean - truth), s.std_of_mean,
                s.avg_measure_corr);
  };

  benchutil::section("k=5 measures per procedure, repeated");
  run_strategy("out_of_bootstrap", [&](rngx::Rng& master) {
    const core::OutOfBootstrapSplitter splitter;
    std::vector<double> out;
    for (std::size_t i = 0; i < k; ++i) {
      auto seeds = rngx::VariationSeeds::random(master);
      auto rng = seeds.rng_for(rngx::VariationSource::kDataSplit);
      const auto split = splitter.split(pool, rng);
      const auto [train, test] = core::materialize(pool, split);
      out.push_back(ml::evaluate_model(ml::train_mlp(train, tcfg, seeds), test,
                                       ml::Metric::kAccuracy));
    }
    return out;
  });
  run_strategy("cross_validation", [&](rngx::Rng& master) {
    auto fold_rng = master.split("cv");
    const auto folds = core::cross_validation_folds(pool, k, fold_rng);
    std::vector<double> out;
    for (const auto& fold : folds) {
      auto seeds = rngx::VariationSeeds::random(master);
      const auto [train, test] = core::materialize(pool, fold);
      out.push_back(ml::evaluate_model(ml::train_mlp(train, tcfg, seeds), test,
                                       ml::Metric::kAccuracy));
    }
    return out;
  });
  run_strategy("fixed_holdout", [&](rngx::Rng& master) {
    const core::FixedHoldoutSplitter splitter{0.8};
    std::vector<double> out;
    for (std::size_t i = 0; i < k; ++i) {
      auto seeds = rngx::VariationSeeds::random(master);
      auto rng = seeds.rng_for(rngx::VariationSource::kDataSplit);
      const auto split = splitter.split(pool, rng);  // same split every time
      const auto [train, test] = core::materialize(pool, split);
      out.push_back(ml::evaluate_model(ml::train_mlp(train, tcfg, seeds), test,
                                       ml::Metric::kAccuracy));
    }
    return out;
  });

  std::printf(
      "\nReading: the fixed held-out set has the smallest *within*-procedure\n"
      "spread (it never varies the test data) but its mean estimate carries\n"
      "the bias of that one arbitrary split — exactly the paper's argument\n"
      "for preferring multiple random splits (out-of-bootstrap) when the\n"
      "goal is the expected performance on D. CV's folds overlap in train\n"
      "data, correlating its measures; OOB supports any train/test sizes.\n");
  return 0;
}

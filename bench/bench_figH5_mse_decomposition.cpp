// Figure H.5 — Decomposition of the mean-squared-error of the estimators:
// bias, variance, inter-measurement correlation ρ, and total MSE for
// IdealEst(100), FixHOptEst(100, All/Data/Init) and IdealEst(1).
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/varbench.h"

namespace {

using namespace varbench;

struct Decomposition {
  double bias = 0.0;
  double variance = 0.0;
  double rho = 0.0;
  double mse = 0.0;
};

// Monte-Carlo decomposition of an estimator under the calibrated two-stage
// model: many realizations of µ̃(k) against the true µ.
Decomposition decompose(const compare::TaskVarianceProfile& profile,
                        compare::EstimatorKind kind, std::size_t k,
                        std::size_t realizations, rngx::Rng& master) {
  // Per-realization RNG streams: the decomposition is bit-identical at
  // every VARBENCH_THREADS setting.
  const auto draws = exec::parallel_replicate<std::vector<double>>(
      benchutil::exec_context(), realizations, master, "figH5_realization",
      [&](std::size_t, rngx::Rng& rng) {
        return compare::simulate_measures(profile, kind, 0.0, k, rng);
      });
  std::vector<double> means;
  std::vector<double> singles;  // for Var(R̂e), pooled
  means.reserve(realizations);
  singles.reserve(realizations * k);
  for (const auto& x : draws) {
    means.push_back(stats::mean(x));
    singles.insert(singles.end(), x.begin(), x.end());
  }
  Decomposition d;
  d.bias = std::abs(stats::mean(means) - profile.mu);
  d.variance = stats::variance(means);
  d.rho = stats::implied_correlation(d.variance, stats::variance(singles), k);
  double mse = 0.0;
  for (const double m : means) mse += (m - profile.mu) * (m - profile.mu);
  d.mse = mse / static_cast<double>(realizations);
  return d;
}

}  // namespace

int main() {
  benchutil::header(
      "Figure H.5: MSE decomposition of the estimators (bias, Var, rho, MSE)",
      "biased estimators share a similar bias; their MSE differences come "
      "from variance, which drops as more sources are randomized because "
      "the correlation rho drops");
  const std::size_t realizations = benchutil::env_size(
      "VARBENCH_REPS", benchutil::env_flag("VARBENCH_FULL") ? 1000 : 300);
  constexpr std::size_t k = 100;

  for (const auto& calib : casestudies::paper_calibrations()) {
    std::printf("\n%-18s (metric=%s)\n", calib.paper_task.c_str(),
                calib.metric.c_str());
    std::printf("  %-24s %10s %12s %8s %12s\n", "estimator", "bias",
                "Var(mu_k)", "rho", "MSE");
    rngx::Rng rng{rngx::derive_seed(0xA5, calib.id)};

    const auto ideal100 = decompose(calib.ideal_profile(),
                                    compare::EstimatorKind::kIdeal, k,
                                    realizations, rng);
    std::printf("  %-24s %10.5f %12.3e %8.3f %12.3e\n", "IdealEst(100)",
                ideal100.bias, ideal100.variance, ideal100.rho, ideal100.mse);
    for (const auto subset :
         {core::RandomizeSubset::kAll, core::RandomizeSubset::kData,
          core::RandomizeSubset::kInit}) {
      const auto d = decompose(calib.profile(subset),
                               compare::EstimatorKind::kBiased, k,
                               realizations, rng);
      std::printf("  FixHOptEst(100, %-5s)   %10.5f %12.3e %8.3f %12.3e\n",
                  std::string(core::to_string(subset)).c_str(), d.bias,
                  d.variance, d.rho, d.mse);
    }
    const auto ideal1 = decompose(calib.ideal_profile(),
                                  compare::EstimatorKind::kIdeal, 1,
                                  realizations, rng);
    std::printf("  %-24s %10.5f %12.3e %8.3f %12.3e\n", "IdealEst(1)",
                ideal1.bias, ideal1.variance, ideal1.rho, ideal1.mse);
  }
  std::printf(
      "\nShape check vs paper: IdealEst(100) has the smallest MSE by far;\n"
      "among the biased estimators MSE improves in the order Init -> Data ->\n"
      "All, driven by the drop in rho (third column), not by bias.\n");
  return 0;
}

// Figure H.5 — decomposition of the mean-squared-error of the estimators:
// bias, variance, inter-measurement correlation ρ, and total MSE for
// IdealEst(k), FixHOptEst(k, All/Data/Init) and IdealEst(1).
// Thin spec-builder over the registered figure study kind: the numbers
// (and the VARBENCH_OUT artifact) are identical to
// `varbench run` on {"kind": "figH5_mse_decomposition"} — see bench/bench_util.h.
#include "bench/bench_util.h"

int main() {
  return varbench::benchutil::run_figure_bench(
      varbench::study::StudyKind::kFigH5MseDecomposition);
}

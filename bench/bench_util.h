// Shared helpers for the figure/table reproduction harnesses.
//
// Since the bench/ → study-kind refactor, every figure/table binary is a
// thin spec-builder: run_figure_bench(kind) assembles the registered
// kind's default StudySpec, applies the environment knobs, executes it
// through the same run_study() path `varbench run` uses, prints the
// summary, and (when VARBENCH_OUT is set) writes the canonical ResultTable
// artifact. The same artifact — byte-identical — is produced by
//   varbench run - <<<'{"kind": "<name>"}'
// and by any sharded/campaigned execution of that spec.
//
// Scale knobs (environment variables):
//   VARBENCH_SCALE   data-pool / epoch scale in (0, 1]; default: the
//                    kind's spec default (0.25 for most kinds, 0.5 for
//                    table8), matching `varbench run` on the bare spec
//   VARBENCH_REPS    repetitions (the spec's shardable count)
//   VARBENCH_FULL=1  paper-faithful sizes (slow; hours)
//   VARBENCH_SEED    master seed, full u64 range (default: spec's 42)
//   VARBENCH_SHARD   "i/N" — run one slice of the figure
//   VARBENCH_OUT     directory for ResultTable artifacts (default: none)
//   VARBENCH_THREADS worker count for the Monte-Carlo loops (default 0 =
//                    all cores; results bit-identical at any setting)
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_spec.h"
#include "src/exec/exec_context.h"
#include "src/study/figures/figures.h"
#include "src/study/result_table.h"
#include "src/study/study_runner.h"

namespace varbench::benchutil {

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atof(v);
}

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long parsed = std::atol(v);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// Full-u64 env parse for seeds: 0 is a legal seed (env_size treats it as
/// unset) and derive_seed outputs use the whole range.
inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE) return fallback;
  return parsed;
}

inline bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && std::string(v) != "0" && std::string(v) != "";
}

/// Execution context of the harness's own Monte-Carlo loops. Defaults to
/// all hardware threads; the determinism contract (docs/determinism.md)
/// makes the printed numbers invariant to the setting.
inline exec::ExecContext exec_context() { return BenchSpec::env().context(); }

inline double scale() { return BenchSpec::env().effective_scale(0.3); }

inline void header(const char* experiment, const char* claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("  paper claim: %s\n", claim);
  std::printf("  (scale=%.2f; set VARBENCH_SCALE / VARBENCH_FULL=1 to change)\n",
              scale());
  std::printf("================================================================\n");
}

inline void section(const char* title) {
  std::printf("\n--- %s ---\n", title);
}

/// Write `<VARBENCH_OUT>/<table.name>.json` (+ .csv) when VARBENCH_OUT is
/// set (':' in artifact names becomes '-'); silently a no-op otherwise, so
/// default bench runs stay print-only. Best-effort: an unwritable
/// directory warns instead of killing a bench run whose printout already
/// happened.
inline void write_artifact(const study::ResultTable& table) {
  const std::string& dir_str = BenchSpec::env().out_dir;
  if (dir_str.empty()) return;
  const char* dir = dir_str.c_str();
  std::string name = table.name;
  for (char& c : name) {
    if (c == ':' || c == '/') c = '-';
  }
  const std::string base = std::string{dir} + "/" + name;
  try {
    io::write_file(base + ".json", table.to_json_text());
    io::write_file(base + ".csv", table.to_csv());
    std::printf("\n[artifact] %s.json (+.csv): %zu rows\n", base.c_str(),
                table.rows.size());
  } catch (const io::JsonError& e) {
    std::fprintf(stderr, "warning: VARBENCH_OUT artifact not written: %s\n",
                 e.what());
  }
}

/// The whole body of a figure/table bench binary: build the registered
/// kind's spec from the environment knobs, run it, print the paper-facing
/// summary, emit the artifact. Returns the process exit code.
inline int run_figure_bench(study::StudyKind kind) {
  const study::figures::FigureDef* def = study::figures::find_figure(kind);
  if (def == nullptr) {
    std::fprintf(stderr, "error: not a registered figure kind\n");
    return 1;
  }
  try {
    // All knobs come from the one BenchSpec parse (bench/bench_spec.h) —
    // bench binaries never re-read getenv mid-run, and `varbench bench`
    // can drive the same path from flags.
    const BenchSpec& knobs = BenchSpec::env();
    study::StudySpec spec = study::figures::default_figure_spec(kind);
    if (knobs.full) {
      if (def->full != nullptr) def->full(spec);
      spec.scale = 1.0;
    } else if (knobs.scale.has_value() && *knobs.scale > 0.0 &&
               *knobs.scale <= 1.0) {
      spec.scale = *knobs.scale;
    }
    if (!def->fixed_repetitions && knobs.reps.has_value()) {
      spec.repetitions = *knobs.reps;
    }
    if (knobs.seed.has_value()) spec.seed = *knobs.seed;
    spec.threads = knobs.threads;
    if (knobs.shard.has_value()) spec.shard = *knobs.shard;
    std::printf(
        "================================================================\n"
        "%s\n  paper claim: %s\n"
        "  (scale=%.2f; set VARBENCH_SCALE / VARBENCH_FULL=1 to change)\n"
        "  spec kind '%s' — `varbench list` shows every knob; the same\n"
        "  artifact ships via `varbench run/campaign` (docs/study_api.md)\n"
        "================================================================\n",
        std::string{def->title}.c_str(), std::string{def->claim}.c_str(),
        spec.scale, std::string{def->name}.c_str());
    const study::ResultTable table = study::run_study(spec);
    study::print_summary(table, stdout);
    write_artifact(table);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

}  // namespace varbench::benchutil

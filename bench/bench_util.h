// Shared helpers for the figure/table reproduction harnesses.
//
// Every bench binary prints the rows/series of one table or figure from
// "Accounting for Variance in Machine Learning Benchmarks" (MLSys 2021).
// Scale knobs (environment variables):
//   VARBENCH_SCALE   data-pool / epoch scale in (0, 1]   (default 0.3)
//   VARBENCH_REPS    repetitions per measurement          (bench-specific)
//   VARBENCH_FULL=1  paper-faithful sizes (slow; hours)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace varbench::benchutil {

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atof(v);
}

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long parsed = std::atol(v);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

inline bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && std::string(v) != "0" && std::string(v) != "";
}

inline double scale() {
  if (env_flag("VARBENCH_FULL")) return 1.0;
  const double s = env_double("VARBENCH_SCALE", 0.3);
  return s > 0.0 && s <= 1.0 ? s : 0.3;
}

inline void header(const char* experiment, const char* claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("  paper claim: %s\n", claim);
  std::printf("  (scale=%.2f; set VARBENCH_SCALE / VARBENCH_FULL=1 to change)\n",
              scale());
  std::printf("================================================================\n");
}

inline void section(const char* title) {
  std::printf("\n--- %s ---\n", title);
}

}  // namespace varbench::benchutil

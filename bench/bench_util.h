// Shared helpers for the figure/table reproduction harnesses.
//
// Every bench binary prints the rows/series of one table or figure from
// "Accounting for Variance in Machine Learning Benchmarks" (MLSys 2021),
// and (when VARBENCH_OUT is set) writes the underlying data as a canonical
// ResultTable artifact next to the printout.
// Scale knobs (environment variables):
//   VARBENCH_SCALE   data-pool / epoch scale in (0, 1]   (default 0.3)
//   VARBENCH_REPS    repetitions per measurement          (bench-specific)
//   VARBENCH_FULL=1  paper-faithful sizes (slow; hours)
//   VARBENCH_OUT     directory for ResultTable artifacts (default: none)
//   VARBENCH_THREADS worker count for the Monte-Carlo loops (default 0 =
//                    all cores; results bit-identical at any setting)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/exec/exec_context.h"
#include "src/study/result_table.h"

namespace varbench::benchutil {

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atof(v);
}

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long parsed = std::atol(v);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

inline bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && std::string(v) != "0" && std::string(v) != "";
}

/// Execution context of the harness's own Monte-Carlo loops. Defaults to
/// all hardware threads; the determinism contract (docs/determinism.md)
/// makes the printed numbers invariant to the setting.
inline exec::ExecContext exec_context() {
  return exec::ExecContext{env_size("VARBENCH_THREADS", 0)};
}

inline double scale() {
  if (env_flag("VARBENCH_FULL")) return 1.0;
  const double s = env_double("VARBENCH_SCALE", 0.3);
  return s > 0.0 && s <= 1.0 ? s : 0.3;
}

inline void header(const char* experiment, const char* claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("  paper claim: %s\n", claim);
  std::printf("  (scale=%.2f; set VARBENCH_SCALE / VARBENCH_FULL=1 to change)\n",
              scale());
  std::printf("================================================================\n");
}

inline void section(const char* title) {
  std::printf("\n--- %s ---\n", title);
}

/// Start a bench-owned ResultTable artifact. The first column should be
/// "seq" (the emission index) so bench tables share the canonical row-order
/// convention of spec-driven artifacts.
inline study::ResultTable make_table(std::string name,
                                     std::vector<std::string> columns,
                                     std::uint64_t seed) {
  study::ResultTable t;
  t.name = std::move(name);
  t.seed = seed;
  t.columns = std::move(columns);
  return t;
}

/// Write `<VARBENCH_OUT>/<table.name>.json` (+ .csv) when VARBENCH_OUT is
/// set; silently a no-op otherwise, so default bench runs stay print-only.
/// Best-effort: an unwritable directory warns instead of killing a bench
/// run whose printout already happened.
inline void write_artifact(const study::ResultTable& table) {
  const char* dir = std::getenv("VARBENCH_OUT");
  if (dir == nullptr || *dir == '\0') return;
  const std::string base = std::string{dir} + "/" + table.name;
  try {
    io::write_file(base + ".json", table.to_json_text());
    io::write_file(base + ".csv", table.to_csv());
    std::printf("\n[artifact] %s.json (+.csv): %zu rows\n", base.c_str(),
                table.rows.size());
  } catch (const io::JsonError& e) {
    std::fprintf(stderr, "warning: VARBENCH_OUT artifact not written: %s\n",
                 e.what());
  }
}

}  // namespace varbench::benchutil

// Figure C.1 — minimum sample size to reliably detect P(A>B) > γ, from
// Noether's formula, with the paper's recommended operating point
// (γ=0.75 → N=29) highlighted.
// Thin spec-builder over the registered figure study kind: the numbers
// (and the VARBENCH_OUT artifact) are identical to
// `varbench run` on {"kind": "figC1_sample_size"} — see bench/bench_util.h.
#include "bench/bench_util.h"

int main() {
  return varbench::benchutil::run_figure_bench(
      varbench::study::StudyKind::kFigC1SampleSize);
}

// Figure C.1 — Minimum sample size to reliably detect P(A>B) > γ, from
// Noether's formula, with the paper's recommended operating point
// (γ=0.75 → N=29) highlighted.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/varbench.h"

int main() {
  using namespace varbench;
  benchutil::header(
      "Figure C.1: Noether minimum sample size vs threshold gamma",
      "N=29 at the recommended gamma=0.75 (alpha=beta=0.05); detection below "
      "gamma=0.6 requires impractically many runs");

  std::printf("  %-8s %14s %14s %14s\n", "gamma", "N(beta=0.05)",
              "N(beta=0.10)", "N(beta=0.20)");
  for (const double gamma : {0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90,
                             0.95, 0.99}) {
    std::printf("  %-8.2f %14zu %14zu %14zu%s\n", gamma,
                stats::noether_sample_size(gamma, 0.05, 0.05),
                stats::noether_sample_size(gamma, 0.05, 0.10),
                stats::noether_sample_size(gamma, 0.05, 0.20),
                gamma == 0.75 ? "   <-- recommended (paper: N=29)" : "");
  }

  benchutil::section("power achieved at selected (N, gamma)");
  std::printf("  %-6s", "N");
  for (const double g : {0.6, 0.7, 0.75, 0.8, 0.9}) std::printf("  g=%.2f", g);
  std::printf("\n");
  for (const std::size_t n : {10u, 20u, 29u, 50u, 100u}) {
    std::printf("  %-6zu", n);
    for (const double g : {0.6, 0.7, 0.75, 0.8, 0.9}) {
      std::printf("  %5.1f%%", 100.0 * stats::noether_power(n, g, 0.05));
    }
    std::printf("\n");
  }
  std::printf("\nShape check vs paper: N(0.75, 0.05, 0.05) == 29 and the\n"
              "curve explodes below gamma ~ 0.6 (>150 runs).\n");
  return 0;
}

// Micro-benchmarks (google-benchmark) of the numerical kernels the
// experiment harnesses are built on: matmul, training steps, GP fit/predict,
// bootstrap CIs, Mann–Whitney, out-of-bootstrap splitting.
#include <benchmark/benchmark.h>

#include "src/varbench.h"

namespace {

using namespace varbench;

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  math::Matrix a{n, n};
  math::Matrix b{n, n};
  rngx::Rng rng{1};
  for (double& v : a.data()) v = rng.normal();
  for (double& v : b.data()) v = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_TrainEpoch(benchmark::State& state) {
  ml::GaussianMixtureConfig dcfg;
  dcfg.num_classes = 10;
  dcfg.dim = 32;
  dcfg.n = static_cast<std::size_t>(state.range(0));
  rngx::Rng rng{2};
  const auto data = ml::make_gaussian_mixture(dcfg, rng);
  ml::TrainConfig cfg;
  cfg.model.hidden = {24};
  cfg.epochs = 1;
  cfg.batch_size = 32;
  const rngx::VariationSeeds seeds;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::train_mlp(data, cfg, seeds));
  }
  state.SetItemsProcessed(state.iterations() * dcfg.n);
}
BENCHMARK(BM_TrainEpoch)->Arg(500)->Arg(2000);

void BM_GpFitPredict(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rngx::Rng rng{3};
  math::Matrix x{n, 4};
  std::vector<double> y(n);
  for (double& v : x.data()) v = rng.uniform();
  for (double& v : y) v = rng.normal();
  const std::vector<double> q{0.5, 0.5, 0.5, 0.5};
  for (auto _ : state) {
    hpo::GaussianProcess gp;
    gp.fit(x, y);
    benchmark::DoNotOptimize(gp.predict(q));
  }
}
BENCHMARK(BM_GpFitPredict)->Arg(25)->Arg(100)->Arg(200);

void BM_PercentileBootstrapCi(benchmark::State& state) {
  rngx::Rng data_rng{4};
  std::vector<double> x(static_cast<std::size_t>(state.range(0)));
  for (double& v : x) v = data_rng.normal();
  rngx::Rng rng{5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::percentile_bootstrap_ci(
        x, [](std::span<const double> s) { return stats::mean(s); }, rng,
        1000));
  }
}
BENCHMARK(BM_PercentileBootstrapCi)->Arg(30)->Arg(100);

void BM_MannWhitney(benchmark::State& state) {
  rngx::Rng rng{6};
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> a(n);
  std::vector<double> b(n);
  for (double& v : a) v = rng.normal(0.1, 1.0);
  for (double& v : b) v = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::mann_whitney_u(a, b));
  }
}
BENCHMARK(BM_MannWhitney)->Arg(50)->Arg(1000);

void BM_ProbOutperformTest(benchmark::State& state) {
  rngx::Rng data_rng{7};
  std::vector<double> a(50);
  std::vector<double> b(50);
  for (std::size_t i = 0; i < 50; ++i) {
    a[i] = data_rng.normal(0.5, 1.0);
    b[i] = data_rng.normal();
  }
  rngx::Rng rng{8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::test_probability_of_outperforming(a, b, rng, 0.75, 1000));
  }
}
BENCHMARK(BM_ProbOutperformTest);

void BM_OutOfBootstrapSplit(benchmark::State& state) {
  ml::GaussianMixtureConfig dcfg;
  dcfg.num_classes = 10;
  dcfg.dim = 8;
  dcfg.n = static_cast<std::size_t>(state.range(0));
  rngx::Rng gen{9};
  const auto pool = ml::make_gaussian_mixture(dcfg, gen);
  const core::OutOfBootstrapSplitter splitter{0, 0, true};
  rngx::Rng rng{10};
  for (auto _ : state) {
    benchmark::DoNotOptimize(splitter.split(pool, rng));
  }
}
BENCHMARK(BM_OutOfBootstrapSplit)->Arg(1000)->Arg(10000);

void BM_ShapiroWilk(benchmark::State& state) {
  rngx::Rng rng{11};
  std::vector<double> x(static_cast<std::size_t>(state.range(0)));
  for (double& v : x) v = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::shapiro_wilk(x));
  }
}
BENCHMARK(BM_ShapiroWilk)->Arg(50)->Arg(500);

}  // namespace

BENCHMARK_MAIN();

// The determinism contract of the exec engine, checked end-to-end on every
// converted hot path: results are bit-identical for num_threads ∈ {1, 2, 8}
// (see docs/determinism.md).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/casestudies/mlp_pipeline.h"
#include "src/compare/criteria.h"
#include "src/compare/error_rates.h"
#include "src/compare/multiple.h"
#include "src/core/estimators.h"
#include "src/core/variance_study.h"
#include "src/hpo/hpo.h"
#include "src/ml/synthetic.h"
#include "src/stats/bootstrap.h"
#include "src/stats/descriptive.h"
#include "src/stats/prob_outperform.h"
#include "src/stats/tests.h"

namespace varbench {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

ml::Dataset small_pool() {
  ml::GaussianMixtureConfig cfg;
  cfg.num_classes = 2;
  cfg.dim = 4;
  cfg.n = 160;
  cfg.class_sep = 1.3;
  cfg.label_noise = 0.1;
  rngx::Rng rng{1};
  return ml::make_gaussian_mixture(cfg, rng);
}

casestudies::MlpPipeline small_pipeline() {
  casestudies::MlpPipelineSpec spec;
  spec.name = "determinism";
  spec.base.model.hidden = {5};
  spec.base.model.dropout = 0.2;
  spec.base.augment.jitter_std = 0.1;
  spec.base.epochs = 2;
  spec.base.batch_size = 32;
  spec.space.add({"learning_rate", 0.001, 0.5, hpo::ScaleKind::kLog});
  spec.defaults = {{"learning_rate", 0.1}};
  return casestudies::MlpPipeline{std::move(spec)};
}

TEST(ExecDeterminism, VarianceStudyBitIdenticalAcrossThreadCounts) {
  const auto pool = small_pool();
  const auto pipeline = small_pipeline();
  const core::OutOfBootstrapSplitter splitter{90, 40};

  std::vector<core::VarianceStudyResult> results;
  for (const std::size_t threads : kThreadCounts) {
    core::VarianceStudyConfig cfg;
    cfg.repetitions = 4;
    cfg.hpo_algorithms = {"random_search"};
    cfg.hpo_repetitions = 2;
    cfg.hpo_budget = 2;
    cfg.exec = exec::ExecContext{threads};
    rngx::Rng master{42};
    results.push_back(
        core::run_variance_study(pipeline, pool, splitter, cfg, master));
  }
  const auto& reference = results.front();
  for (std::size_t t = 1; t < results.size(); ++t) {
    ASSERT_EQ(results[t].rows.size(), reference.rows.size());
    for (std::size_t r = 0; r < reference.rows.size(); ++r) {
      EXPECT_EQ(results[t].rows[r].label, reference.rows[r].label);
      EXPECT_EQ(results[t].rows[r].measures, reference.rows[r].measures)
          << "row " << reference.rows[r].label << " differs at "
          << kThreadCounts[t] << " threads";
      EXPECT_EQ(results[t].rows[r].mean, reference.rows[r].mean);
      EXPECT_EQ(results[t].rows[r].stddev, reference.rows[r].stddev);
    }
  }
}

TEST(ExecDeterminism, BootstrapCiBitIdenticalAcrossThreadCounts) {
  std::vector<double> x(300);
  rngx::Rng data_rng{7};
  for (double& v : x) v = data_rng.normal(2.0, 1.5);

  std::vector<stats::ConfidenceInterval> cis;
  for (const std::size_t threads : kThreadCounts) {
    rngx::Rng rng{9};
    cis.push_back(stats::percentile_bootstrap_ci(
        exec::ExecContext{threads}, x,
        [](std::span<const double> s) { return stats::mean(s); }, rng, 2000));
  }
  EXPECT_EQ(cis[0], cis[1]);
  EXPECT_EQ(cis[0], cis[2]);
  // The ctx-less overload is the same computation run serially.
  rngx::Rng rng{9};
  const auto legacy = stats::percentile_bootstrap_ci(
      x, [](std::span<const double> s) { return stats::mean(s); }, rng, 2000);
  EXPECT_EQ(cis[0], legacy);
}

TEST(ExecDeterminism, PairedBootstrapCiBitIdenticalAcrossThreadCounts) {
  std::vector<double> a(120);
  std::vector<double> b(120);
  rngx::Rng data_rng{8};
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = data_rng.normal(0.0, 1.0);
    b[i] = a[i] - data_rng.normal(0.3, 0.2);
  }
  const auto diff = [](std::span<const double> ra, std::span<const double> rb) {
    double d = 0.0;
    for (std::size_t i = 0; i < ra.size(); ++i) d += ra[i] - rb[i];
    return d / static_cast<double>(ra.size());
  };
  std::vector<stats::ConfidenceInterval> cis;
  for (const std::size_t threads : kThreadCounts) {
    rngx::Rng rng{10};
    cis.push_back(stats::paired_percentile_bootstrap_ci(
        exec::ExecContext{threads}, a, b, diff, rng, 1000));
  }
  EXPECT_EQ(cis[0], cis[1]);
  EXPECT_EQ(cis[0], cis[2]);
}

TEST(ExecDeterminism, DetectionRatesBitIdenticalAcrossThreadCounts) {
  compare::TaskVarianceProfile profile;
  profile.task = "synthetic";
  profile.mu = 0.8;
  profile.sigma_ideal = 0.02;
  profile.sigma_bias = 0.01;
  profile.sigma_within = 0.01;

  std::vector<compare::DetectionCurves> curves;
  for (const std::size_t threads : kThreadCounts) {
    std::vector<std::unique_ptr<compare::ComparisonCriterion>> criteria;
    criteria.push_back(std::make_unique<compare::AverageComparison>(0.01));
    criteria.push_back(
        std::make_unique<compare::ProbOutperformCriterion>(0.75, 50));
    compare::DetectionRateConfig cfg;
    cfg.k = 10;
    cfg.simulations = 20;
    cfg.p_grid = {0.4, 0.5, 0.6, 0.75, 0.9};
    cfg.exec = exec::ExecContext{threads};
    rngx::Rng rng{11};
    curves.push_back(compare::characterize_detection_rates(
        profile, compare::EstimatorKind::kBiased, criteria, cfg, rng));
  }
  EXPECT_EQ(curves[0].rates, curves[1].rates);
  EXPECT_EQ(curves[0].rates, curves[2].rates);
}

TEST(ExecDeterminism, RandomSearchParallelMatchesSerialBitwise) {
  hpo::SearchSpace space;
  space.add({"x", -2.0, 2.0, hpo::ScaleKind::kLinear});
  space.add({"y", 0.01, 10.0, hpo::ScaleKind::kLog});
  const hpo::Objective objective = [](const hpo::ParamPoint& p) {
    const double x = p.at("x");
    const double y = p.at("y");
    return x * x + (y - 1.0) * (y - 1.0);
  };
  const hpo::RandomSearch algo;
  rngx::Rng serial_rng{13};
  const auto serial = algo.optimize(space, objective, 40, serial_rng);
  const rngx::RngState post_serial_state = serial_rng.save_state();
  for (const std::size_t threads : {2u, 8u}) {
    rngx::Rng rng{13};
    const auto parallel =
        algo.optimize(exec::ExecContext{threads}, space, objective, 40, rng);
    ASSERT_EQ(parallel.trials.size(), serial.trials.size());
    EXPECT_EQ(parallel.best, serial.best);
    EXPECT_EQ(parallel.best_objective, serial.best_objective);
    for (std::size_t i = 0; i < serial.trials.size(); ++i) {
      EXPECT_EQ(parallel.trials[i].params, serial.trials[i].params);
      EXPECT_EQ(parallel.trials[i].objective, serial.trials[i].objective);
    }
    // The ξH stream must advance identically too.
    EXPECT_EQ(rng.save_state(), post_serial_state);
  }
}

TEST(ExecDeterminism, EstimatorsBitIdenticalAcrossThreadCounts) {
  const auto pool = small_pool();
  const auto pipeline = small_pipeline();
  const core::OutOfBootstrapSplitter splitter{90, 40};
  const hpo::RandomSearch algo;
  core::HpoRunConfig hpo_cfg;
  hpo_cfg.algorithm = &algo;
  hpo_cfg.budget = 2;

  std::vector<core::EstimatorResult> ideal;
  std::vector<core::EstimatorResult> biased;
  for (const std::size_t threads : kThreadCounts) {
    const exec::ExecContext ctx{threads};
    rngx::Rng m1{21};
    ideal.push_back(core::ideal_estimator(ctx, pipeline, pool, splitter,
                                          hpo_cfg, 4, m1));
    rngx::Rng m2{22};
    biased.push_back(core::fix_hopt_estimator(ctx, pipeline, pool, splitter,
                                              hpo_cfg, 4,
                                              core::RandomizeSubset::kAll,
                                              m2));
  }
  for (std::size_t t = 1; t < ideal.size(); ++t) {
    EXPECT_EQ(ideal[t].measures, ideal[0].measures)
        << "ideal_estimator differs at " << kThreadCounts[t] << " threads";
    EXPECT_EQ(ideal[t].fits, ideal[0].fits);
    EXPECT_EQ(biased[t].measures, biased[0].measures)
        << "fix_hopt_estimator differs at " << kThreadCounts[t] << " threads";
    EXPECT_EQ(biased[t].fits, biased[0].fits);
  }
  // The ctx-less overloads are the serial special case of the same
  // computation.
  rngx::Rng m1{21};
  EXPECT_EQ(
      core::ideal_estimator(pipeline, pool, splitter, hpo_cfg, 4, m1).measures,
      ideal[0].measures);
  rngx::Rng m2{22};
  EXPECT_EQ(core::fix_hopt_estimator(pipeline, pool, splitter, hpo_cfg, 4,
                                     core::RandomizeSubset::kAll, m2)
                .measures,
            biased[0].measures);
}

TEST(ExecDeterminism, EstimatorShardSlicesMatchFullRun) {
  const auto pool = small_pool();
  const auto pipeline = small_pipeline();
  const core::OutOfBootstrapSplitter splitter{90, 40};
  const core::HpoRunConfig hpo_cfg;  // defaults only: fast
  constexpr std::size_t k = 5;

  rngx::Rng full_rng{23};
  const auto full = core::ideal_estimator(exec::ExecContext::serial(),
                                          pipeline, pool, splitter, hpo_cfg, k,
                                          full_rng);
  std::vector<double> stitched;
  for (std::size_t shard = 0; shard < 2; ++shard) {
    rngx::Rng rng{23};
    const auto part = core::ideal_estimator(
        exec::ExecContext{2}, pipeline, pool, splitter, hpo_cfg, k,
        exec::shard_subrange(k, shard, 2), rng);
    stitched.insert(stitched.end(), part.measures.begin(),
                    part.measures.end());
  }
  EXPECT_EQ(stitched, full.measures);
}

TEST(ExecDeterminism, ProbOutperformTestBitIdenticalAcrossThreadCounts) {
  std::vector<double> a(40);
  std::vector<double> b(40);
  rngx::Rng data_rng{24};
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = data_rng.normal(0.75, 0.02);
    b[i] = a[i] - data_rng.normal(0.01, 0.01);
  }
  std::vector<stats::ProbOutperformResult> results;
  for (const std::size_t threads : kThreadCounts) {
    rngx::Rng rng{25};
    results.push_back(stats::test_probability_of_outperforming(
        exec::ExecContext{threads}, a, b, rng, 0.75, 500));
  }
  for (std::size_t t = 1; t < results.size(); ++t) {
    EXPECT_EQ(results[t].p_a_greater_b, results[0].p_a_greater_b);
    EXPECT_EQ(results[t].ci, results[0].ci);
    EXPECT_EQ(results[t].conclusion, results[0].conclusion);
  }
  rngx::Rng rng{25};
  const auto legacy =
      stats::test_probability_of_outperforming(a, b, rng, 0.75, 500);
  EXPECT_EQ(legacy.ci, results[0].ci);
}

TEST(ExecDeterminism, PermutationTestsBitIdenticalAcrossThreadCounts) {
  std::vector<double> a(35);
  std::vector<double> b(35);
  rngx::Rng data_rng{26};
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = data_rng.normal(0.72, 0.03);
    b[i] = data_rng.normal(0.70, 0.03);
  }
  std::vector<stats::TestResult> unpaired;
  std::vector<stats::TestResult> paired;
  for (const std::size_t threads : kThreadCounts) {
    rngx::Rng rng{27};
    unpaired.push_back(stats::permutation_test_mean_diff(
        exec::ExecContext{threads}, a, b, rng, 1500));
    rngx::Rng paired_rng{28};
    paired.push_back(stats::paired_permutation_test(
        exec::ExecContext{threads}, a, b, paired_rng, 1500));
  }
  for (std::size_t t = 1; t < unpaired.size(); ++t) {
    EXPECT_EQ(unpaired[t], unpaired[0])
        << "permutation_test_mean_diff differs at " << kThreadCounts[t]
        << " threads";
    EXPECT_EQ(paired[t], paired[0])
        << "paired_permutation_test differs at " << kThreadCounts[t]
        << " threads";
  }
  // The ctx-less overloads are the serial special case of the same
  // computation.
  rngx::Rng rng{27};
  EXPECT_EQ(stats::permutation_test_mean_diff(a, b, rng, 1500), unpaired[0]);
  rngx::Rng paired_rng{28};
  EXPECT_EQ(stats::paired_permutation_test(a, b, paired_rng, 1500), paired[0]);
}

TEST(ExecDeterminism, RankingStabilityBitIdenticalAcrossThreadCounts) {
  compare::ContestantScores scores(4, std::vector<double>(25));
  rngx::Rng data_rng{14};
  for (std::size_t a = 0; a < scores.size(); ++a) {
    for (auto& v : scores[a]) {
      v = data_rng.normal(0.7 + 0.01 * static_cast<double>(a), 0.05);
    }
  }
  std::vector<compare::RankingStability> results;
  std::vector<compare::TopGroupResult> groups;
  for (const std::size_t threads : kThreadCounts) {
    rngx::Rng rng{15};
    results.push_back(compare::ranking_stability(
        scores, rng, 400, exec::ExecContext{threads}));
    rngx::Rng group_rng{16};
    groups.push_back(compare::significance_top_group(
        scores, group_rng, 0.75, 0.05, 200, exec::ExecContext{threads}));
  }
  for (std::size_t t = 1; t < results.size(); ++t) {
    EXPECT_EQ(results[t].prob_first, results[0].prob_first);
    const auto reference = results[0].rank_probability.data();
    const auto probe = results[t].rank_probability.data();
    ASSERT_EQ(probe.size(), reference.size());
    EXPECT_TRUE(std::equal(probe.begin(), probe.end(), reference.begin()));
    EXPECT_EQ(groups[t].best, groups[0].best);
    EXPECT_EQ(groups[t].group, groups[0].group);
  }
}

}  // namespace
}  // namespace varbench

#include "src/rngx/variation.h"

#include <gtest/gtest.h>

namespace varbench::rngx {
namespace {

TEST(VariationSeeds, DefaultIsFixed) {
  const VariationSeeds a;
  const VariationSeeds b;
  EXPECT_EQ(a, b);
}

TEST(VariationSeeds, RandomDrawsAllSources) {
  Rng master{1};
  const auto s1 = VariationSeeds::random(master);
  const auto s2 = VariationSeeds::random(master);
  EXPECT_NE(s1, s2);
  EXPECT_NE(s1.data_split, s2.data_split);
  EXPECT_NE(s1.hpo, s2.hpo);
}

TEST(VariationSeeds, WithRandomizedChangesOnlyThatSource) {
  Rng master{2};
  const VariationSeeds base;
  const auto changed =
      base.with_randomized(VariationSource::kWeightInit, master);
  EXPECT_NE(changed.weight_init, base.weight_init);
  EXPECT_EQ(changed.data_split, base.data_split);
  EXPECT_EQ(changed.data_order, base.data_order);
  EXPECT_EQ(changed.data_augment, base.data_augment);
  EXPECT_EQ(changed.dropout, base.dropout);
  EXPECT_EQ(changed.hpo, base.hpo);
}

TEST(VariationSeeds, NumericalSourceHasNoSeed) {
  Rng master{3};
  const VariationSeeds base;
  const auto same = base.with_randomized(VariationSource::kNumerical, master);
  EXPECT_EQ(same, base);
}

TEST(VariationSeeds, WithRandomizedSetChangesAllListed) {
  Rng master{4};
  const VariationSeeds base;
  const auto changed = base.with_randomized_set(kLearningSources, master);
  EXPECT_NE(changed.data_split, base.data_split);
  EXPECT_NE(changed.data_order, base.data_order);
  EXPECT_NE(changed.data_augment, base.data_augment);
  EXPECT_NE(changed.weight_init, base.weight_init);
  EXPECT_NE(changed.dropout, base.dropout);
  EXPECT_EQ(changed.hpo, base.hpo);  // ξH not in the learning subset
}

TEST(VariationSeeds, SeedForSetSeedRoundTrip) {
  VariationSeeds s;
  for (const auto source : kLearningSources) {
    s.set_seed(source, 777);
    EXPECT_EQ(s.seed_for(source), 777u);
  }
  s.set_seed(VariationSource::kHpo, 888);
  EXPECT_EQ(s.seed_for(VariationSource::kHpo), 888u);
}

TEST(VariationSeeds, RngForIsDeterministicPerSource) {
  const VariationSeeds s;
  auto a = s.rng_for(VariationSource::kDataOrder);
  auto b = s.rng_for(VariationSource::kDataOrder);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(VariationSeeds, SameNumericSeedDifferentSourcesIndependent) {
  // Both sources seeded with the same value must still give different
  // streams (the source tag is mixed into the stream seed).
  VariationSeeds s;
  s.set_seed(VariationSource::kDataOrder, 123);
  s.set_seed(VariationSource::kDropout, 123);
  auto a = s.rng_for(VariationSource::kDataOrder);
  auto b = s.rng_for(VariationSource::kDropout);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(VariationSource, ToStringCoversAll) {
  for (const auto s : kAllVariationSources) {
    EXPECT_FALSE(to_string(s).empty());
    EXPECT_NE(to_string(s), "unknown");
  }
}

TEST(VariationSource, LearningSourcesExcludeHpoAndNumerical) {
  for (const auto s : kLearningSources) {
    EXPECT_NE(s, VariationSource::kHpo);
    EXPECT_NE(s, VariationSource::kNumerical);
  }
}

}  // namespace
}  // namespace varbench::rngx

// Campaign coordinator contract: shard tasks flow through the
// filesystem-backed work queue (atomic-rename claims, heartbeat staleness),
// failures retry up to the bound, and whatever the worker-failure history,
// the merged artifact is byte-identical to the unsharded run. Worker
// failures are injected through the WorkerLauncher abstraction, so every
// scheduling path runs in-process.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <string>

#include "src/campaign/campaign.h"
#include "src/campaign/subprocess.h"
#include "src/campaign/work_queue.h"
#include "src/io/json.h"
#include "src/study/result_table.h"
#include "src/study/study_runner.h"

namespace varbench::campaign {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

/// A fresh state directory per test, removed on scope exit.
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_{fs::temp_directory_path() /
              ("varbench_campaign_" + tag + "_" +
               std::to_string(current_process_id()))} {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

/// The fast study of test_study_shard, reused for the campaign path.
study::StudySpec tiny_compare_spec() {
  study::StudySpec spec;
  spec.kind = study::StudyKind::kCompare;
  spec.case_study = "cifar10_vgg11";
  spec.scale = 0.08;
  spec.seed = 20260727;
  spec.repetitions = 5;
  spec.compare.num_resamples = 50;
  return spec;
}

CampaignConfig quick_config(const std::string& dir) {
  CampaignConfig cfg;
  cfg.dir = dir;
  cfg.shards = 3;
  cfg.workers = 2;
  cfg.stale_after = 10min;  // never stale unless a test forces it
  cfg.poll_interval = 1ms;
  return cfg;
}

class FinishedHandle : public WorkerHandle {
 public:
  explicit FinishedHandle(int code) : code_{code} {}
  bool running() override { return false; }
  int exit_code() override { return code_; }

 private:
  int code_;
};

/// Wraps in_process_launcher with per-task launch counting and optional
/// injected failures for the first `failures_per_task` launches of a task.
struct SpyLauncher {
  std::map<std::string, std::size_t> launches;
  std::map<std::string, std::size_t> failures_per_task;
  int failure_exit_code = 1;
  bool fail_by_missing_artifact = false;  // exit 0 without writing anything

  WorkerLauncher launcher() {
    return [this](const CampaignTask& task, const std::string& spec_path,
                  const std::string& artifact_path,
                  const std::string& log_path)
               -> std::unique_ptr<WorkerHandle> {
      const std::size_t launch = ++launches[task.id];
      const auto it = failures_per_task.find(task.id);
      if (it != failures_per_task.end() && launch <= it->second) {
        io::write_file(log_path, "injected failure\n");
        return std::make_unique<FinishedHandle>(
            fail_by_missing_artifact ? 0 : failure_exit_code);
      }
      return in_process_launcher()(task, spec_path, artifact_path, log_path);
    };
  }
};

std::string merged_path_of(const CampaignReport& report) {
  EXPECT_EQ(report.merged_outputs.size(), 1u);
  return report.merged_outputs.empty() ? std::string{}
                                       : report.merged_outputs.front();
}

std::string unsharded_canonical(const study::StudySpec& spec) {
  return study::run_study(spec).canonical_text();
}

// ----------------------------------------------------------------- plan

TEST(CampaignPlan, ShardsEveryStudy) {
  const auto tasks = plan_tasks({tiny_compare_spec(), tiny_compare_spec()}, 3);
  ASSERT_EQ(tasks.size(), 6u);
  EXPECT_EQ(tasks[0].id, "s0-0of3");
  EXPECT_EQ(tasks[5].id, "s1-2of3");
  EXPECT_EQ(tasks[4].spec.shard, (study::ShardSpec{1, 3}));
  EXPECT_EQ(tasks[4].study_index, 1u);
}

TEST(CampaignPlan, HpoStudiesGetOneTask) {
  study::StudySpec hpo = tiny_compare_spec();
  hpo.kind = study::StudyKind::kHpo;
  hpo.repetitions = 1;
  const auto tasks = plan_tasks({tiny_compare_spec(), hpo}, 4);
  ASSERT_EQ(tasks.size(), 5u);
  EXPECT_EQ(tasks[4].id, "s1-0of1");
  EXPECT_TRUE(tasks[4].spec.shard.is_unsharded());
}

TEST(CampaignPlan, RejectsEmptyAndZeroShards) {
  EXPECT_THROW((void)plan_tasks({}, 2), std::invalid_argument);
  EXPECT_THROW((void)plan_tasks({tiny_compare_spec()}, 0),
               std::invalid_argument);
}

// ----------------------------------------------------------- work queue

TEST(WorkQueueTest, ClaimIsExclusiveAndRoundTrips) {
  const TempDir dir{"queue"};
  WorkQueue q{dir.str()};
  q.enqueue(Ticket{"t1", 2, ""});
  EXPECT_TRUE(q.is_queued("t1"));

  auto claim = q.try_claim("me");
  ASSERT_TRUE(claim.has_value());
  EXPECT_EQ(claim->task_id, "t1");
  EXPECT_EQ(claim->attempts, 2u);
  EXPECT_EQ(claim->owner, "me");
  EXPECT_FALSE(q.is_queued("t1"));
  EXPECT_TRUE(q.is_claimed("t1"));
  // The queue is empty now: a second claimant gets nothing.
  EXPECT_FALSE(q.try_claim("other").has_value());

  q.release_for_retry(*claim, 3);
  EXPECT_TRUE(q.is_queued("t1"));
  EXPECT_FALSE(q.is_claimed("t1"));
  auto reclaim = q.try_claim("other");
  ASSERT_TRUE(reclaim.has_value());
  EXPECT_EQ(reclaim->attempts, 3u);
  q.complete(*reclaim);
  EXPECT_FALSE(q.is_claimed("t1"));
}

TEST(WorkQueueTest, StaleClaimsAreRequeuedFresshOnesKept) {
  const TempDir dir{"stale"};
  WorkQueue q{dir.str()};
  q.enqueue(Ticket{"old", 0, ""});
  q.enqueue(Ticket{"fresh", 0, ""});
  auto old_claim = q.try_claim("ghost");   // "fresh" sorts after "old"
  auto fresh_claim = q.try_claim("me");
  ASSERT_TRUE(old_claim.has_value());
  ASSERT_TRUE(fresh_claim.has_value());
  ASSERT_EQ(old_claim->task_id, "fresh");  // lexicographic claim order
  ASSERT_EQ(fresh_claim->task_id, "old");

  // Age the ghost's claim far past any threshold; keep ours heartbeating.
  const fs::path ghost_claim = fs::path{dir.str()} / "claims" / "fresh.claim";
  // varlint: allow(no-wallclock) -- backdating a claim heartbeat to fake a
  // dead coordinator is the scenario under test.
  const auto long_ago = fs::file_time_type::clock::now() - 1h;
  fs::last_write_time(ghost_claim, long_ago);
  q.heartbeat(*fresh_claim);

  const auto reclaimed = q.requeue_stale_claims(1min, "me");
  ASSERT_EQ(reclaimed.size(), 1u);
  EXPECT_EQ(reclaimed[0], "fresh");
  EXPECT_TRUE(q.is_queued("fresh"));
  EXPECT_TRUE(q.is_claimed("old"));  // ours, heartbeaten, untouched
}

// ----------------------------------------------------------- happy path

TEST(Campaign, MergedArtifactMatchesUnshardedRunByteForByte) {
  const TempDir dir{"happy"};
  const auto spec = tiny_compare_spec();
  const auto report =
      run_campaign(quick_config(dir.str()), {spec}, in_process_launcher());
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.tasks, 3u);
  EXPECT_EQ(report.launched, 3u);
  EXPECT_EQ(report.reused, 0u);
  EXPECT_EQ(io::read_file(merged_path_of(report)), unsharded_canonical(spec));

  // The manifest records every task as done, with its wall-time provenance
  // (the data future autoscaling hints and `varbench report <dir>` read).
  const io::Json manifest =
      io::Json::parse(io::read_file(WorkQueue{dir.str()}.manifest_path()));
  for (const io::Json& task : manifest.at("tasks").as_array()) {
    EXPECT_EQ(task.at("status").as_string(), "done");
    EXPECT_GT(task.at("wall_time_ms").as_double(), 0.0);
  }
}

TEST(Campaign, MultiStudyCampaignMergesEachStudy) {
  const TempDir dir{"multi"};
  auto spec_a = tiny_compare_spec();
  auto spec_b = tiny_compare_spec();
  spec_b.seed = 7;
  auto cfg = quick_config(dir.str());
  cfg.shards = 2;
  const auto report =
      run_campaign(cfg, {spec_a, spec_b}, in_process_launcher());
  EXPECT_TRUE(report.ok());
  ASSERT_EQ(report.merged_outputs.size(), 2u);
  EXPECT_EQ(io::read_file(report.merged_outputs[0]),
            unsharded_canonical(spec_a));
  EXPECT_EQ(io::read_file(report.merged_outputs[1]),
            unsharded_canonical(spec_b));
}

// -------------------------------------------------------- failure paths

TEST(Campaign, NonzeroWorkerExitRetriesThenSucceeds) {
  const TempDir dir{"flaky"};
  SpyLauncher spy;
  spy.failures_per_task["s0-1of3"] = 2;  // first two launches exit nonzero
  auto cfg = quick_config(dir.str());
  cfg.max_retries = 2;
  const auto spec = tiny_compare_spec();
  const auto report = run_campaign(cfg, {spec}, spy.launcher());
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.retried, 2u);
  EXPECT_EQ(spy.launches["s0-1of3"], 3u);
  EXPECT_EQ(io::read_file(merged_path_of(report)), unsharded_canonical(spec));
}

TEST(Campaign, ExhaustedRetriesFailCleanlyWithActionableError) {
  const TempDir dir{"dead"};
  SpyLauncher spy;
  spy.failures_per_task["s0-0of3"] = 100;  // never succeeds
  auto cfg = quick_config(dir.str());
  cfg.max_retries = 1;
  const auto report =
      run_campaign(cfg, {tiny_compare_spec()}, spy.launcher());
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(spy.launches["s0-0of3"], 2u);  // first attempt + one retry
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_NE(report.failures[0].find("s0-0of3"), std::string::npos);
  EXPECT_NE(report.failures[0].find("exited with code 1"), std::string::npos);
  EXPECT_NE(report.failures[0].find("log:"), std::string::npos);
  // The healthy shards still completed and left reusable artifacts.
  EXPECT_EQ(report.completed, 2u);
  EXPECT_TRUE(report.merged_outputs.empty());
}

TEST(Campaign, SilentWorkerWithoutArtifactIsRetriedAndReported) {
  const TempDir dir{"silent"};
  SpyLauncher spy;
  spy.failures_per_task["s0-2of3"] = 100;
  spy.fail_by_missing_artifact = true;  // exit 0, never writes the artifact
  auto cfg = quick_config(dir.str());
  cfg.max_retries = 1;
  const auto report =
      run_campaign(cfg, {tiny_compare_spec()}, spy.launcher());
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_NE(report.failures[0].find("wrote no artifact"), std::string::npos);
}

TEST(Campaign, HungWorkerIsKilledAfterTaskTimeoutAndRetried) {
  // Reports running() forever until the coordinator kills it.
  class HungHandle : public WorkerHandle {
   public:
    bool running() override { return !killed_; }
    int exit_code() override { return 137; }
    void kill() override { killed_ = true; }

   private:
    bool killed_ = false;
  };
  const TempDir dir{"hung"};
  std::size_t hangs = 0;
  const WorkerLauncher launcher =
      [&](const CampaignTask& task, const std::string& spec_path,
          const std::string& artifact_path,
          const std::string& log_path) -> std::unique_ptr<WorkerHandle> {
    if (task.id == "s0-0of3" && hangs == 0) {
      ++hangs;
      return std::make_unique<HungHandle>();
    }
    return in_process_launcher()(task, spec_path, artifact_path, log_path);
  };
  auto cfg = quick_config(dir.str());
  cfg.task_timeout = 20ms;
  const auto spec = tiny_compare_spec();
  const auto report = run_campaign(cfg, {spec}, launcher);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(hangs, 1u);
  EXPECT_EQ(report.retried, 1u);
  EXPECT_EQ(io::read_file(merged_path_of(report)), unsharded_canonical(spec));
}

TEST(Campaign, StaleClaimFromCrashedWorkerIsReclaimed) {
  const TempDir dir{"crashed"};
  auto cfg = quick_config(dir.str());
  cfg.stale_after = 10ms;
  // A previous coordinator crashed mid-flight: its claim is still on disk
  // with a heartbeat that stopped long ago.
  WorkQueue q{dir.str()};
  q.enqueue(Ticket{"s0-0of3", 0, "ghost"});
  auto ghost = q.try_claim("ghost");
  ASSERT_TRUE(ghost.has_value());
  // varlint: allow(no-wallclock) -- backdating the ghost's heartbeat is the
  // crash scenario under test.
  const auto stopped_long_ago = fs::file_time_type::clock::now() - 1h;
  fs::last_write_time(fs::path{dir.str()} / "claims" / "s0-0of3.claim",
                      stopped_long_ago);

  const auto spec = tiny_compare_spec();
  const auto report =
      run_campaign(cfg, {spec}, in_process_launcher());
  EXPECT_TRUE(report.ok());
  EXPECT_GE(report.reclaimed_stale, 1u);
  EXPECT_EQ(report.launched, 3u);  // the reclaimed task ran here after all
  EXPECT_EQ(io::read_file(merged_path_of(report)), unsharded_canonical(spec));
}

TEST(Campaign, DuplicateShardArtifactIsDiscardedAndRerun) {
  const TempDir dir{"duplicate"};
  const auto spec = tiny_compare_spec();
  auto cfg = quick_config(dir.str());
  ASSERT_TRUE(run_campaign(cfg, {spec}, in_process_launcher()).ok());

  // Clobber shard 1's artifact with a copy of shard 0's — a "duplicate
  // shard" as merge would see it — and drop the merged output.
  WorkQueue q{dir.str()};
  fs::copy_file(q.artifact_path("s0-0of3"), q.artifact_path("s0-1of3"),
                fs::copy_options::overwrite_existing);
  fs::remove_all(q.merged_dir());

  SpyLauncher spy;
  cfg.resume = true;
  const auto report = run_campaign(cfg, {spec}, spy.launcher());
  EXPECT_TRUE(report.ok());
  // Only the clobbered shard re-ran; the other two artifacts were reused.
  EXPECT_EQ(report.launched, 1u);
  EXPECT_EQ(spy.launches.size(), 1u);
  EXPECT_EQ(spy.launches.count("s0-1of3"), 1u);
  EXPECT_EQ(report.reused, 2u);
  EXPECT_EQ(io::read_file(merged_path_of(report)), unsharded_canonical(spec));
}

// --------------------------------------------------------------- resume

TEST(Campaign, ResumeFillsOnlyTheGap) {
  const TempDir dir{"resume"};
  const auto spec = tiny_compare_spec();
  auto cfg = quick_config(dir.str());
  ASSERT_TRUE(run_campaign(cfg, {spec}, in_process_launcher()).ok());

  WorkQueue q{dir.str()};
  fs::remove(q.artifact_path("s0-2of3"));

  SpyLauncher spy;
  cfg.resume = true;
  const auto report = run_campaign(cfg, {spec}, spy.launcher());
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.launched, 1u);
  EXPECT_EQ(report.reused, 2u);
  EXPECT_EQ(spy.launches.count("s0-2of3"), 1u);
  EXPECT_EQ(io::read_file(merged_path_of(report)), unsharded_canonical(spec));
}

TEST(Campaign, FullyCompleteResumeLaunchesNothingAndRestoresMergedOutput) {
  const TempDir dir{"noop"};
  const auto spec = tiny_compare_spec();
  auto cfg = quick_config(dir.str());
  ASSERT_TRUE(run_campaign(cfg, {spec}, in_process_launcher()).ok());
  WorkQueue q{dir.str()};
  fs::remove_all(q.merged_dir());  // only the merged output is gone

  SpyLauncher spy;
  cfg.resume = true;
  const auto report = run_campaign(cfg, {spec}, spy.launcher());
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.launched, 0u);
  EXPECT_EQ(report.reused, 3u);
  EXPECT_EQ(io::read_file(merged_path_of(report)), unsharded_canonical(spec));
}

TEST(Campaign, InitializedDirRequiresResumeFlag) {
  const TempDir dir{"guard"};
  const auto spec = tiny_compare_spec();
  auto cfg = quick_config(dir.str());
  ASSERT_TRUE(run_campaign(cfg, {spec}, in_process_launcher()).ok());
  EXPECT_THROW((void)run_campaign(cfg, {spec}, in_process_launcher()),
               io::JsonError);
}

TEST(Campaign, ResumeRejectsMismatchedSpecOrShardCount) {
  const TempDir dir{"mismatch"};
  const auto spec = tiny_compare_spec();
  auto cfg = quick_config(dir.str());
  ASSERT_TRUE(run_campaign(cfg, {spec}, in_process_launcher()).ok());

  cfg.resume = true;
  auto other = spec;
  other.seed += 1;
  EXPECT_THROW((void)run_campaign(cfg, {other}, in_process_launcher()),
               io::JsonError);
  auto bad_shards = cfg;
  bad_shards.shards = 5;
  EXPECT_THROW((void)run_campaign(bad_shards, {spec}, in_process_launcher()),
               io::JsonError);
}

// ----------------------------------------------------------- subprocess

#ifndef _WIN32
TEST(SubprocessTest, CapturesExitCodeAndLog) {
  const TempDir dir{"subprocess"};
  const std::string log = dir.str() + "/out.log";
  auto ok = Subprocess::spawn({"/bin/sh", "-c", "echo hello-worker"}, log);
  EXPECT_EQ(ok.wait(), 0);
  EXPECT_NE(io::read_file(log).find("hello-worker"), std::string::npos);

  auto failing = Subprocess::spawn({"/bin/sh", "-c", "exit 3"}, log);
  while (failing.running()) {
  }
  EXPECT_EQ(failing.exit_code(), 3);

  auto missing = Subprocess::spawn({"/nonexistent-binary-xyz"}, log);
  EXPECT_EQ(missing.wait(), 127);
}
#endif

}  // namespace
}  // namespace varbench::campaign

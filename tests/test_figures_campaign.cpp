// The acceptance path of the figure refactor: a single campaign spec list
// covering figure kinds completes through the coordinator, resumes after a
// lost artifact, and its merged outputs are byte-identical to the
// unsharded runs AND render byte-identically through the report engine at
// any thread count (figures behave like every other ResultTable,
// including group_by over figure axes).
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "src/campaign/campaign.h"
#include "src/campaign/subprocess.h"
#include "src/io/json.h"
#include "src/report/artifact.h"
#include "src/report/render.h"
#include "src/report/summary.h"
#include "src/study/figures/figures.h"
#include "src/study/result_table.h"
#include "src/study/study_runner.h"

namespace varbench::campaign {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_{fs::temp_directory_path() /
              ("varbench_figcamp_" + tag + "_" +
               std::to_string(current_process_id()))} {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

study::StudySpec tiny_fig06() {
  auto spec = study::figures::default_figure_spec(
      study::StudyKind::kFig06DetectionRates);
  spec.seed = 20260727;
  spec.repetitions = 3;
  spec.figure.tasks = {"cifar10_vgg11"};
  spec.figure.k = 5;
  spec.figure.resamples = 10;
  spec.figure.p_grid = {0.5, 0.9};
  return spec;
}

std::vector<study::StudySpec> figure_campaign_specs() {
  return {tiny_fig06(),
          study::figures::default_figure_spec(
              study::StudyKind::kFigC1SampleSize)};
}

CampaignConfig figure_config(const std::string& dir) {
  CampaignConfig cfg;
  cfg.dir = dir;
  cfg.shards = 2;
  cfg.workers = 2;
  cfg.stale_after = 10min;
  cfg.poll_interval = 1ms;
  return cfg;
}

std::string render_markdown(const std::string& artifact_path,
                            std::size_t threads,
                            const std::string& group_by = "") {
  io::Json spec_doc = io::Json::object();
  if (!group_by.empty()) spec_doc.set("group_by", io::Json{group_by});
  const auto spec = report::ReportSpec::from_json(spec_doc);
  const exec::ExecContext ctx{threads};
  const auto report =
      report::summarize(ctx, report::load_artifact(artifact_path), spec);
  return report::render(report, report::Format::kMarkdown);
}

TEST(FiguresCampaign, CompletesResumesAndReportsByteIdentically) {
  TempDir dir{"e2e"};
  const auto specs = figure_campaign_specs();

  const auto report =
      run_campaign(figure_config(dir.str()), specs, in_process_launcher());
  ASSERT_TRUE(report.ok()) << (report.failures.empty()
                                   ? "incomplete"
                                   : report.failures.front());
  ASSERT_EQ(report.merged_outputs.size(), specs.size());

  // Every merged artifact is byte-identical to its unsharded run.
  std::vector<std::string> unsharded;
  for (std::size_t k = 0; k < specs.size(); ++k) {
    unsharded.push_back(study::run_study(specs[k]).canonical_text());
    EXPECT_EQ(io::read_file(report.merged_outputs[k]), unsharded[k])
        << report.merged_outputs[k];
  }

  // Resume fills exactly the gap left by a deleted shard artifact.
  fs::path gap;
  for (const auto& entry :
       fs::directory_iterator{fs::path{dir.str()} / "artifacts"}) {
    if (entry.path().filename().string().rfind("s0-", 0) == 0) {
      gap = entry.path();
      break;
    }
  }
  ASSERT_FALSE(gap.empty());
  fs::remove(gap);
  CampaignConfig resume_cfg = figure_config(dir.str());
  resume_cfg.resume = true;
  const auto resumed =
      run_campaign(resume_cfg, specs, in_process_launcher());
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed.launched, 1u);
  EXPECT_EQ(resumed.reused, 3u);
  for (std::size_t k = 0; k < specs.size(); ++k) {
    EXPECT_EQ(io::read_file(resumed.merged_outputs[k]), unsharded[k]);
  }

  // The figure artifact reports like any other ResultTable: markdown bytes
  // are invariant to thread count and to sharded-vs-unsharded input, and
  // group_by works over figure axes.
  TempDir scratch{"report"};
  const std::string direct = scratch.str() + "/direct.json";
  io::write_file(direct, unsharded[0]);
  const std::string merged_md = render_markdown(report.merged_outputs[0], 4);
  EXPECT_EQ(merged_md, render_markdown(direct, 1));
  const std::string grouped =
      render_markdown(report.merged_outputs[0], 3, "estimator");
  EXPECT_EQ(grouped, render_markdown(direct, 1, "estimator"));
  EXPECT_NE(grouped.find("ideal"), std::string::npos);
  EXPECT_NE(grouped.find("fix_all"), std::string::npos);

  // The whole state dir renders as one multi-report document with the
  // campaign's wall-time provenance attached.
  const auto dir_artifacts = report::load_artifact_dir(dir.str());
  EXPECT_EQ(dir_artifacts.studies.size(), specs.size());
  ASSERT_TRUE(dir_artifacts.provenance.has_value());
  EXPECT_EQ(dir_artifacts.provenance->tasks, 4u);
}

TEST(FiguresCampaign, PlanShardsFigureKinds) {
  const auto tasks = plan_tasks(figure_campaign_specs(), 3);
  ASSERT_EQ(tasks.size(), 6u);
  EXPECT_EQ(tasks[0].spec.kind, study::StudyKind::kFig06DetectionRates);
  EXPECT_EQ(tasks[5].spec.shard, (study::ShardSpec{2, 3}));
}

}  // namespace
}  // namespace varbench::campaign

// Empirical verification of the paper's analytic claims against the
// simulators — the equations are not just implemented, they are *checked*:
//   Eq. 6:  MSE(µ̂(k)) = σ²/k for the ideal estimator
//   Eq. 7:  Var(µ̃(k)|ξ) = V/k + (k−1)/k·ρ·V for the biased estimator
//   §3.1:   the z-test minimum detectable difference shrinks as 1/√k
//   App C:  P(A>B) ↔ mean-offset mapping under the normal model
#include <gtest/gtest.h>

#include <cmath>

#include "src/compare/simulation.h"
#include "src/stats/sample_size.h"
#include "src/core/estimators.h"
#include "src/stats/descriptive.h"
#include "src/stats/distributions.h"
#include "src/stats/tests.h"

namespace varbench {
namespace {

using compare::EstimatorKind;
using compare::TaskVarianceProfile;

TaskVarianceProfile profile_with_rho(double sigma, double rho) {
  TaskVarianceProfile p;
  p.task = "synthetic";
  p.mu = 0.5;
  p.sigma_ideal = sigma;
  p.sigma_bias = std::sqrt(rho) * sigma;
  p.sigma_within = std::sqrt(1.0 - rho) * sigma;
  return p;
}

class Equation7Sweep
    : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {};

TEST_P(Equation7Sweep, BiasedEstimatorVarianceMatchesFormula) {
  const double rho = std::get<0>(GetParam());
  const std::size_t k = std::get<1>(GetParam());
  const double sigma = 0.04;
  const auto p = profile_with_rho(sigma, rho);
  rngx::Rng rng{rngx::derive_seed(7, std::to_string(rho) + ":" +
                                         std::to_string(k))};
  constexpr std::size_t realizations = 4000;
  std::vector<double> means;
  means.reserve(realizations);
  for (std::size_t r = 0; r < realizations; ++r) {
    const auto x =
        compare::simulate_measures(p, EstimatorKind::kBiased, 0.0, k, rng);
    means.push_back(stats::mean(x));
  }
  const double predicted =
      core::biased_estimator_variance(sigma * sigma, rho, k);
  const double observed = stats::variance(means);
  EXPECT_NEAR(observed, predicted, predicted * 0.12)
      << "rho=" << rho << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    RhoAndK, Equation7Sweep,
    ::testing::Combine(::testing::Values(0.0, 0.05, 0.2, 0.5, 0.8),
                       ::testing::Values(2u, 5u, 20u, 100u)));

TEST(Equation6, IdealEstimatorMseIsSigmaSqOverK) {
  const double sigma = 0.03;
  const auto p = profile_with_rho(sigma, 0.0);
  rngx::Rng rng{11};
  for (const std::size_t k : {1u, 4u, 16u, 64u}) {
    std::vector<double> sq_err;
    for (int r = 0; r < 3000; ++r) {
      const auto x =
          compare::simulate_measures(p, EstimatorKind::kIdeal, 0.0, k, rng);
      const double e = stats::mean(x) - p.mu;
      sq_err.push_back(e * e);
    }
    const double mse = stats::mean(sq_err);
    EXPECT_NEAR(mse, sigma * sigma / static_cast<double>(k),
                sigma * sigma / static_cast<double>(k) * 0.12)
        << "k=" << k;
  }
}

TEST(Section31, MinimumDetectableShrinksAsSqrtK) {
  // δ_min(k) · √k must be constant.
  const double base =
      stats::z_test_minimum_detectable(0.02, 0.02, 1, 0.05);
  for (const std::size_t k : {4u, 9u, 25u, 100u}) {
    const double d = stats::z_test_minimum_detectable(0.02, 0.02, k, 0.05);
    EXPECT_NEAR(d * std::sqrt(static_cast<double>(k)), base, 1e-12);
  }
}

TEST(Section31, ZTestFalsePositiveRateAtDelta) {
  // If A == B, the probability that the observed mean difference exceeds
  // the §3.1 threshold is exactly alpha (one-sided).
  const double sigma = 0.05;
  constexpr std::size_t k = 10;
  const double threshold = stats::z_test_minimum_detectable(sigma, sigma, k,
                                                            0.05);
  rngx::Rng rng{13};
  int exceed = 0;
  constexpr int rounds = 20000;
  for (int r = 0; r < rounds; ++r) {
    double mean_a = 0.0;
    double mean_b = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      mean_a += rng.normal(0.0, sigma);
      mean_b += rng.normal(0.0, sigma);
    }
    if ((mean_a - mean_b) / k > threshold) ++exceed;
  }
  EXPECT_NEAR(static_cast<double>(exceed) / rounds, 0.05, 0.01);
}

TEST(AppendixC, PabOffsetMappingConsistentWithMannWhitney) {
  // Simulated data at target P(A>B) = γ: the Mann–Whitney effect size must
  // estimate γ.
  const auto p = profile_with_rho(0.03, 0.0);
  rngx::Rng rng{17};
  for (const double target : {0.6, 0.75, 0.9}) {
    const double offset =
        compare::mean_offset_for_probability(target, p.sigma_ideal);
    const auto a =
        compare::simulate_measures(p, EstimatorKind::kIdeal, offset, 20000,
                                   rng);
    const auto b =
        compare::simulate_measures(p, EstimatorKind::kIdeal, 0.0, 20000, rng);
    const auto mw = stats::mann_whitney_u(a, b);
    EXPECT_NEAR(mw.prob_a_greater, target, 0.01) << "target=" << target;
  }
}

TEST(AppendixC, NoetherNMatchesEmpiricalPowerOfSignTest) {
  // At N = Noether(γ, α, β) and true P(A>B) = γ, a one-sided sign-style
  // test at level α should have power ≈ 1−β. Monte-Carlo with the normal
  // model.
  const double gamma = 0.8;
  const std::size_t n = stats::noether_sample_size(gamma, 0.05, 0.2);
  const auto p = profile_with_rho(0.05, 0.0);
  const double offset =
      compare::mean_offset_for_probability(gamma, p.sigma_ideal);
  rngx::Rng rng{19};
  int detections = 0;
  constexpr int rounds = 1500;
  for (int r = 0; r < rounds; ++r) {
    const auto a =
        compare::simulate_measures(p, EstimatorKind::kIdeal, offset, n, rng);
    const auto b =
        compare::simulate_measures(p, EstimatorKind::kIdeal, 0.0, n, rng);
    const auto mw = stats::mann_whitney_u(a, b);
    // one-sided test of P(A>B) > 0.5 at alpha = 0.05
    if (mw.prob_a_greater > 0.5 && mw.p_value / 2.0 < 0.05) ++detections;
  }
  const double power = static_cast<double>(detections) / rounds;
  EXPECT_GT(power, 0.70);  // designed 0.8 minus Monte-Carlo/approx slack
}

TEST(Fig4, CostRatioFormula) {
  // ratio(k, T) = k(T+1)/(k+T); grows with both k and T.
  double prev = 0.0;
  for (const std::size_t k : {10u, 50u, 100u}) {
    const double ratio =
        static_cast<double>(core::ideal_estimator_cost(k, 200)) /
        static_cast<double>(core::fix_hopt_estimator_cost(k, 200));
    EXPECT_GT(ratio, prev);
    prev = ratio;
  }
}

}  // namespace
}  // namespace varbench

#include "src/stats/sample_size.h"

#include <gtest/gtest.h>

namespace varbench::stats {
namespace {

TEST(NoetherSampleSize, PaperRecommendedThresholdGives29) {
  // Appendix C.3: γ=0.75, α=0.05, β=0.05 → N = 29.
  EXPECT_EQ(noether_sample_size(0.75, 0.05, 0.05), 29u);
}

TEST(NoetherSampleSize, GrowsExplosivelyNearHalf) {
  // Fig. C.1: below γ=0.6 the required sample size becomes impractical.
  EXPECT_GT(noether_sample_size(0.55, 0.05, 0.05), 700u);
  EXPECT_GT(noether_sample_size(0.6, 0.05, 0.05), 150u);
  EXPECT_LT(noether_sample_size(0.9, 0.05, 0.05), 15u);
}

TEST(NoetherSampleSize, MonotoneDecreasingInGamma) {
  std::size_t prev = noether_sample_size(0.55);
  for (double g = 0.6; g < 0.99; g += 0.05) {
    const std::size_t n = noether_sample_size(g);
    EXPECT_LE(n, prev);
    prev = n;
  }
}

TEST(NoetherSampleSize, StricterBetaNeedsMoreSamples) {
  EXPECT_GE(noether_sample_size(0.75, 0.05, 0.01),
            noether_sample_size(0.75, 0.05, 0.20));
}

TEST(NoetherSampleSize, InvalidInputsThrow) {
  EXPECT_THROW((void)noether_sample_size(0.5), std::invalid_argument);
  EXPECT_THROW((void)noether_sample_size(1.0), std::invalid_argument);
  EXPECT_THROW((void)noether_sample_size(0.75, 0.0, 0.05),
               std::invalid_argument);
  EXPECT_THROW((void)noether_sample_size(0.75, 0.05, 1.0),
               std::invalid_argument);
}

TEST(NoetherPower, RoundTripsWithSampleSize) {
  // Power at the Noether-determined N must be >= the design 1−β.
  const std::size_t n = noether_sample_size(0.75, 0.05, 0.05);
  EXPECT_GE(noether_power(n, 0.75, 0.05), 0.95 - 1e-9);
  // One fewer sample should fall below it.
  EXPECT_LT(noether_power(n - 1, 0.75, 0.05), 0.95);
}

TEST(NoetherPower, IncreasesWithN) {
  double prev = 0.0;
  for (const std::size_t n : {5u, 10u, 20u, 40u, 80u}) {
    const double p = noether_power(n, 0.7);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(NoetherPower, InvalidInputsThrow) {
  EXPECT_THROW((void)noether_power(0, 0.75), std::invalid_argument);
  EXPECT_THROW((void)noether_power(10, 0.5), std::invalid_argument);
}

// Parameterized sweep: for every γ the formula must self-invert.
class NoetherSweep : public ::testing::TestWithParam<double> {};

TEST_P(NoetherSweep, PowerAtComputedNMeetsTarget) {
  const double gamma = GetParam();
  const std::size_t n = noether_sample_size(gamma, 0.05, 0.10);
  EXPECT_GE(noether_power(n, gamma, 0.05), 0.90 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Gammas, NoetherSweep,
                         ::testing::Values(0.6, 0.65, 0.7, 0.75, 0.8, 0.85,
                                           0.9, 0.95));

}  // namespace
}  // namespace varbench::stats

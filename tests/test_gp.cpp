#include "src/hpo/gp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/rngx/rng.h"

namespace varbench::hpo {
namespace {

TEST(Gp, InterpolatesTrainingPoints) {
  // With tiny noise, the posterior mean at a training point equals its target.
  math::Matrix x{{0.1}, {0.5}, {0.9}};
  const std::vector<double> y{1.0, -1.0, 2.0};
  GpConfig cfg;
  cfg.noise_variance = 1e-10;
  GaussianProcess gp{cfg};
  gp.fit(x, y);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto pred = gp.predict(x.row(i));
    EXPECT_NEAR(pred.mean, y[i], 1e-4);
    EXPECT_LT(pred.variance, 1e-4);
  }
}

TEST(Gp, UncertaintyGrowsAwayFromData) {
  math::Matrix x{{0.2}, {0.3}};
  const std::vector<double> y{0.0, 0.1};
  GaussianProcess gp;
  gp.fit(x, y);
  const std::vector<double> near_pt{0.25};
  const std::vector<double> far_pt{0.95};
  EXPECT_LT(gp.predict(near_pt).variance, gp.predict(far_pt).variance);
}

TEST(Gp, RecoverSmoothFunction) {
  // Fit y = sin(2πx) on a grid; check interpolation error between knots.
  constexpr std::size_t n = 20;
  math::Matrix x{n, 1};
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = static_cast<double>(i) / (n - 1);
    y[i] = std::sin(2.0 * M_PI * x(i, 0));
  }
  GpConfig cfg;
  cfg.length_scale = 0.15;
  cfg.noise_variance = 1e-8;
  GaussianProcess gp{cfg};
  gp.fit(x, y);
  for (double q = 0.05; q < 1.0; q += 0.1) {
    const std::vector<double> pt{q};
    EXPECT_NEAR(gp.predict(pt).mean, std::sin(2.0 * M_PI * q), 0.05);
  }
}

TEST(Gp, PredictBeforeFitThrows) {
  const GaussianProcess gp;
  EXPECT_THROW((void)gp.predict(std::vector<double>{0.5}), std::logic_error);
  EXPECT_THROW((void)gp.log_marginal_likelihood(), std::logic_error);
}

TEST(Gp, DimMismatchThrows) {
  math::Matrix x{{0.1, 0.2}};
  GaussianProcess gp;
  gp.fit(x, std::vector<double>{1.0});
  EXPECT_THROW((void)gp.predict(std::vector<double>{0.5}),
               std::invalid_argument);
}

TEST(Gp, DuplicatePointsHandledByJitter) {
  // Identical inputs make K singular without jitter escalation.
  math::Matrix x{{0.5}, {0.5}, {0.5}};
  const std::vector<double> y{1.0, 1.0, 1.0};
  GaussianProcess gp;
  EXPECT_NO_THROW(gp.fit(x, y));
  EXPECT_NEAR(gp.predict(std::vector<double>{0.5}).mean, 1.0, 0.05);
}

TEST(Gp, LogMarginalLikelihoodPrefersGoodLengthScale) {
  // For smooth data, a sane length scale should beat an absurdly small one.
  constexpr std::size_t n = 15;
  math::Matrix x{n, 1};
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = static_cast<double>(i) / (n - 1);
    y[i] = x(i, 0) * x(i, 0);
  }
  GpConfig good;
  good.length_scale = 0.3;
  GpConfig bad;
  bad.length_scale = 0.001;
  GaussianProcess gp_good{good};
  GaussianProcess gp_bad{bad};
  gp_good.fit(x, y);
  gp_bad.fit(x, y);
  EXPECT_GT(gp_good.log_marginal_likelihood(),
            gp_bad.log_marginal_likelihood());
}

TEST(Gp, BadConfigThrows) {
  GpConfig cfg;
  cfg.length_scale = 0.0;
  EXPECT_THROW((GaussianProcess{cfg}), std::invalid_argument);
}

TEST(Gp, BadFitInputsThrow) {
  GaussianProcess gp;
  const math::Matrix x{{0.1}};
  EXPECT_THROW(gp.fit(x, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace varbench::hpo

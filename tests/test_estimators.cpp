#include "src/core/estimators.h"

#include <gtest/gtest.h>

#include "src/casestudies/mlp_pipeline.h"
#include "src/ml/synthetic.h"
#include "src/stats/descriptive.h"

namespace varbench::core {
namespace {

using casestudies::MlpPipeline;
using casestudies::MlpPipelineSpec;

ml::Dataset tiny_pool() {
  ml::GaussianMixtureConfig cfg;
  cfg.num_classes = 2;
  cfg.dim = 4;
  cfg.n = 250;
  cfg.class_sep = 1.2;  // non-trivial task so measures fluctuate
  cfg.label_noise = 0.1;
  rngx::Rng rng{1};
  return ml::make_gaussian_mixture(cfg, rng);
}

MlpPipeline tiny_pipeline() {
  MlpPipelineSpec spec;
  spec.name = "tiny";
  spec.base.model.hidden = {6};
  spec.base.epochs = 4;
  spec.base.batch_size = 32;
  spec.space.add({"learning_rate", 0.001, 0.5, hpo::ScaleKind::kLog});
  spec.defaults = {{"learning_rate", 0.1}};
  return MlpPipeline{std::move(spec)};
}

TEST(CostModel, FitCountFormulas) {
  EXPECT_EQ(ideal_estimator_cost(100, 200), 100u * 201u);
  EXPECT_EQ(fix_hopt_estimator_cost(100, 200), 300u);
  // The paper's 51× claim: O(k·T)/O(k+T) with k=100, T=200 ≈ 67; with the
  // reported wall-clock (1070h vs 21h) ≈ 51. Our fit-count ratio must land
  // in that regime.
  const double ratio =
      static_cast<double>(ideal_estimator_cost(100, 200)) /
      static_cast<double>(fix_hopt_estimator_cost(100, 200));
  EXPECT_GT(ratio, 40.0);
  EXPECT_LT(ratio, 80.0);
}

TEST(Equation7, VarianceFormula) {
  // ρ=0 reduces to V/k; ρ=1 keeps variance at V regardless of k.
  EXPECT_NEAR(biased_estimator_variance(4.0, 0.0, 8), 0.5, 1e-12);
  EXPECT_NEAR(biased_estimator_variance(4.0, 1.0, 8), 4.0, 1e-12);
  // Intermediate ρ: plateau at ρ·V as k → ∞.
  EXPECT_NEAR(biased_estimator_variance(4.0, 0.25, 100000), 1.0, 1e-3);
}

TEST(Equation8, MseAddsSquaredBias) {
  EXPECT_NEAR(biased_estimator_mse(4.0, 0.0, 0.5, 8), 0.5 + 0.25, 1e-12);
}

TEST(Estimators, FitAccounting) {
  const auto pool = tiny_pool();
  const auto pipeline = tiny_pipeline();
  const OutOfBootstrapSplitter splitter{120, 60};
  const hpo::RandomSearch algo;
  HpoRunConfig hpo_cfg;
  hpo_cfg.algorithm = &algo;
  hpo_cfg.budget = 4;

  rngx::Rng master{2};
  const auto ideal =
      ideal_estimator(pipeline, pool, splitter, hpo_cfg, 3, master);
  EXPECT_EQ(ideal.k(), 3u);
  EXPECT_EQ(ideal.fits, 3u * 5u);  // k·(T+1)

  const auto biased = fix_hopt_estimator(pipeline, pool, splitter, hpo_cfg, 3,
                                         RandomizeSubset::kAll, master);
  EXPECT_EQ(biased.k(), 3u);
  EXPECT_EQ(biased.fits, 4u + 3u);  // T + k
}

TEST(Estimators, SummaryStatisticsConsistent) {
  const auto pool = tiny_pool();
  const auto pipeline = tiny_pipeline();
  const OutOfBootstrapSplitter splitter{120, 60};
  const HpoRunConfig hpo_cfg;  // defaults only: fast
  rngx::Rng master{3};
  const auto r =
      ideal_estimator(pipeline, pool, splitter, hpo_cfg, 8, master);
  EXPECT_NEAR(r.mean, stats::mean(r.measures), 1e-12);
  EXPECT_NEAR(r.stddev, stats::stddev(r.measures), 1e-12);
}

TEST(Estimators, FixInitHoldsDataSplitFixed) {
  // With only Init randomized, all k measures share one test set; with a
  // deterministic-enough pipeline, the spread should be much smaller than
  // when data splits vary too.
  const auto pool = tiny_pool();
  const auto pipeline = tiny_pipeline();
  const OutOfBootstrapSplitter splitter{120, 60};
  const HpoRunConfig hpo_cfg;
  rngx::Rng m1{4};
  rngx::Rng m2{4};
  const auto init_only = fix_hopt_estimator(pipeline, pool, splitter, hpo_cfg,
                                            10, RandomizeSubset::kInit, m1);
  const auto data_only = fix_hopt_estimator(pipeline, pool, splitter, hpo_cfg,
                                            10, RandomizeSubset::kData, m2);
  // Both are valid estimates of the same µ, so their means should be close
  // relative to the data-split spread.
  EXPECT_NEAR(init_only.mean, data_only.mean,
              5.0 * (data_only.stddev + init_only.stddev + 0.01));
}

TEST(Estimators, ZeroKThrows) {
  const auto pool = tiny_pool();
  const auto pipeline = tiny_pipeline();
  const OutOfBootstrapSplitter splitter{120, 60};
  const HpoRunConfig hpo_cfg;
  rngx::Rng master{5};
  EXPECT_THROW(
      (void)ideal_estimator(pipeline, pool, splitter, hpo_cfg, 0, master),
      std::invalid_argument);
  EXPECT_THROW((void)fix_hopt_estimator(pipeline, pool, splitter, hpo_cfg, 0,
                                        RandomizeSubset::kAll, master),
               std::invalid_argument);
}

TEST(RandomizeSubset, Labels) {
  EXPECT_EQ(to_string(RandomizeSubset::kInit), "Init");
  EXPECT_EQ(to_string(RandomizeSubset::kData), "Data");
  EXPECT_EQ(to_string(RandomizeSubset::kAll), "All");
}

}  // namespace
}  // namespace varbench::core

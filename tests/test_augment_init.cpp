#include <gtest/gtest.h>

#include <cmath>

#include "src/ml/augment.h"
#include "src/ml/init.h"
#include "src/stats/descriptive.h"

namespace varbench::ml {
namespace {

TEST(Augment, InactiveConfigIsIdentity) {
  const math::Matrix batch{{1.0, 2.0}, {3.0, 4.0}};
  rngx::Rng rng{1};
  const AugmentConfig none;
  EXPECT_FALSE(is_active(none));
  EXPECT_EQ(augment_batch(batch, none, rng), batch);
}

TEST(Augment, JitterPreservesMeanAndAddsVariance) {
  math::Matrix batch{200, 50, 1.0};
  rngx::Rng rng{2};
  AugmentConfig cfg;
  cfg.jitter_std = 0.3;
  EXPECT_TRUE(is_active(cfg));
  const auto out = augment_batch(batch, cfg, rng);
  std::vector<double> values(out.data().begin(), out.data().end());
  EXPECT_NEAR(stats::mean(values), 1.0, 0.01);
  EXPECT_NEAR(stats::stddev(values), 0.3, 0.01);
}

TEST(Augment, MaskZeroesExpectedFraction) {
  math::Matrix batch{100, 100, 1.0};
  rngx::Rng rng{3};
  AugmentConfig cfg;
  cfg.mask_prob = 0.25;
  const auto out = augment_batch(batch, cfg, rng);
  std::size_t zeros = 0;
  for (const double v : out.data()) {
    if (v == 0.0) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.25, 0.02);
}

TEST(Augment, SameSeedSameAugmentation) {
  const math::Matrix batch{5, 5, 2.0};
  AugmentConfig cfg;
  cfg.jitter_std = 0.2;
  cfg.mask_prob = 0.1;
  rngx::Rng r1{4};
  rngx::Rng r2{4};
  EXPECT_EQ(augment_batch(batch, cfg, r1), augment_batch(batch, cfg, r2));
}

TEST(Augment, BadConfigThrows) {
  const math::Matrix batch{1, 1};
  rngx::Rng rng{1};
  AugmentConfig bad;
  bad.jitter_std = -1.0;
  EXPECT_THROW((void)augment_batch(batch, bad, rng), std::invalid_argument);
  bad.jitter_std = 0.0;
  bad.mask_prob = 1.0;
  EXPECT_THROW((void)augment_batch(batch, bad, rng), std::invalid_argument);
}

TEST(Init, GlorotUniformRespectsLimit) {
  math::Matrix w{64, 32};
  rngx::Rng rng{5};
  initialize_weights(w, InitScheme::kGlorotUniform, rng);
  const double limit = std::sqrt(6.0 / (64.0 + 32.0));
  for (const double v : w.data()) {
    EXPECT_GE(v, -limit);
    EXPECT_LE(v, limit);
  }
  // Not degenerate: variance close to limit²/3.
  std::vector<double> values(w.data().begin(), w.data().end());
  EXPECT_NEAR(stats::variance(values), limit * limit / 3.0,
              limit * limit / 3.0 * 0.2);
}

TEST(Init, GlorotNormalVariance) {
  math::Matrix w{100, 60};
  rngx::Rng rng{6};
  initialize_weights(w, InitScheme::kGlorotNormal, rng);
  std::vector<double> values(w.data().begin(), w.data().end());
  EXPECT_NEAR(stats::variance(values), 2.0 / 160.0, 2.0 / 160.0 * 0.15);
  EXPECT_NEAR(stats::mean(values), 0.0, 0.005);
}

TEST(Init, HeNormalVariance) {
  math::Matrix w{100, 50};
  rngx::Rng rng{7};
  initialize_weights(w, InitScheme::kHeNormal, rng);
  std::vector<double> values(w.data().begin(), w.data().end());
  EXPECT_NEAR(stats::variance(values), 2.0 / 50.0, 2.0 / 50.0 * 0.15);
}

TEST(Init, NormalScaledUsesSigma) {
  math::Matrix w{80, 80};
  rngx::Rng rng{8};
  initialize_weights(w, InitScheme::kNormalScaled, rng, 0.05);
  std::vector<double> values(w.data().begin(), w.data().end());
  EXPECT_NEAR(stats::stddev(values), 0.05, 0.005);
}

TEST(Init, NormalScaledRejectsBadSigma) {
  math::Matrix w{2, 2};
  rngx::Rng rng{9};
  EXPECT_THROW(initialize_weights(w, InitScheme::kNormalScaled, rng, 0.0),
               std::invalid_argument);
}

TEST(Init, DeterministicPerSeed) {
  math::Matrix w1{8, 8};
  math::Matrix w2{8, 8};
  rngx::Rng r1{10};
  rngx::Rng r2{10};
  initialize_weights(w1, InitScheme::kGlorotUniform, r1);
  initialize_weights(w2, InitScheme::kGlorotUniform, r2);
  EXPECT_EQ(w1, w2);
}

}  // namespace
}  // namespace varbench::ml

#include "src/hpo/space.h"

#include <gtest/gtest.h>

#include <cmath>

namespace varbench::hpo {
namespace {

SearchSpace demo_space() {
  SearchSpace s;
  s.add({"lr", 1e-4, 1e-1, ScaleKind::kLog})
      .add({"momentum", 0.5, 0.99, ScaleKind::kLinear})
      .add({"hidden", 20.0, 400.0, ScaleKind::kLinear, true});
  return s;
}

TEST(SearchSpace, AddAndQuery) {
  const auto s = demo_space();
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.dim(0).name, "lr");
  EXPECT_TRUE(s.dim(2).integer);
}

TEST(SearchSpace, DuplicateDimensionThrows) {
  SearchSpace s;
  s.add({"lr", 0.0, 1.0});
  EXPECT_THROW(s.add({"lr", 0.0, 2.0}), std::invalid_argument);
}

TEST(SearchSpace, BadBoundsThrow) {
  SearchSpace s;
  EXPECT_THROW(s.add({"a", 1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(s.add({"b", 2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(s.add({"c", 0.0, 1.0, ScaleKind::kLog}), std::invalid_argument);
  EXPECT_THROW(s.add({"", 0.0, 1.0}), std::invalid_argument);
}

TEST(SearchSpace, SampleInBounds) {
  const auto s = demo_space();
  rngx::Rng rng{1};
  for (int i = 0; i < 200; ++i) {
    const auto p = s.sample(rng);
    EXPECT_TRUE(s.contains(p));
    EXPECT_DOUBLE_EQ(p.at("hidden"), std::round(p.at("hidden")));
  }
}

TEST(SearchSpace, LogDimSampledLogUniformly) {
  SearchSpace s;
  s.add({"lr", 1e-4, 1.0, ScaleKind::kLog});
  rngx::Rng rng{2};
  int below_mid = 0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (s.sample(rng).at("lr") < 1e-2) ++below_mid;  // geometric midpoint
  }
  EXPECT_NEAR(static_cast<double>(below_mid) / n, 0.5, 0.02);
}

TEST(SearchSpace, UnitCubeRoundTrip) {
  const auto s = demo_space();
  rngx::Rng rng{3};
  for (int i = 0; i < 50; ++i) {
    const auto p = s.sample(rng);
    const auto u = s.to_unit(p);
    for (const double v : u) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
    const auto back = s.from_unit(u);
    EXPECT_NEAR(back.at("lr"), p.at("lr"), p.at("lr") * 1e-9);
    EXPECT_NEAR(back.at("momentum"), p.at("momentum"), 1e-9);
    EXPECT_DOUBLE_EQ(back.at("hidden"), p.at("hidden"));
  }
}

TEST(SearchSpace, ToUnitMissingDimThrows) {
  const auto s = demo_space();
  EXPECT_THROW((void)s.to_unit({{"lr", 0.01}}), std::invalid_argument);
}

TEST(SearchSpace, FromUnitWrongSizeThrows) {
  const auto s = demo_space();
  EXPECT_THROW((void)s.from_unit(std::vector<double>{0.5}),
               std::invalid_argument);
}

TEST(SearchSpace, ClampBringsIntoRange) {
  const auto s = demo_space();
  const auto p = s.clamp({{"lr", 100.0}, {"momentum", 0.1}, {"hidden", 7.0}});
  EXPECT_DOUBLE_EQ(p.at("lr"), 0.1);
  EXPECT_DOUBLE_EQ(p.at("momentum"), 0.5);
  EXPECT_DOUBLE_EQ(p.at("hidden"), 20.0);
}

TEST(SearchSpace, ContainsDetectsMissingAndOutOfRange) {
  const auto s = demo_space();
  EXPECT_FALSE(s.contains({{"lr", 0.01}}));
  EXPECT_FALSE(
      s.contains({{"lr", 10.0}, {"momentum", 0.7}, {"hidden", 100.0}}));
  EXPECT_TRUE(
      s.contains({{"lr", 0.01}, {"momentum", 0.7}, {"hidden", 100.0}}));
}

TEST(ValueOr, FallbackBehaviour) {
  const ParamPoint p{{"a", 1.5}};
  EXPECT_DOUBLE_EQ(value_or(p, "a", 9.0), 1.5);
  EXPECT_DOUBLE_EQ(value_or(p, "b", 9.0), 9.0);
}

}  // namespace
}  // namespace varbench::hpo

// Cross-module integration tests: the paper's full workflows end-to-end on
// down-scaled case studies.
#include <gtest/gtest.h>

#include "src/varbench.h"

namespace varbench {
namespace {

TEST(Integration, CompareTwoPipelinesWithPabTest) {
  // A strong pipeline vs a crippled one on the same task; paired P(A>B)
  // must flag the strong one as significantly and meaningfully better.
  const auto cs = casestudies::make_case_study("cifar10_vgg11", 0.1);
  hpo::ParamPoint good = cs.pipeline->default_params();
  hpo::ParamPoint bad = good;
  bad["learning_rate"] = 0.0011;  // bottom of the range: barely learns
  bad["weight_decay"] = 0.009;

  rngx::Rng master{1};
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 12; ++i) {
    // Paired: same ξ for both algorithms (Appendix C.2).
    const auto seeds = rngx::VariationSeeds::random(master);
    a.push_back(core::measure_with_params(*cs.pipeline, *cs.pool, *cs.splitter,
                                          good, seeds));
    b.push_back(core::measure_with_params(*cs.pipeline, *cs.pool, *cs.splitter,
                                          bad, seeds));
  }
  auto rng = master.split("pab");
  const auto result = stats::test_probability_of_outperforming(a, b, rng);
  EXPECT_EQ(result.conclusion,
            stats::ComparisonConclusion::kSignificantAndMeaningful);
}

TEST(Integration, IdenticalPipelinesNotDetected) {
  const auto cs = casestudies::make_case_study("glue_rte_bert", 0.1);
  const auto params = cs.pipeline->default_params();
  rngx::Rng master{2};
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 10; ++i) {
    // UNPAIRED seeds: two independent runs of the same algorithm.
    const auto sa = rngx::VariationSeeds::random(master);
    const auto sb = rngx::VariationSeeds::random(master);
    a.push_back(core::measure_with_params(*cs.pipeline, *cs.pool, *cs.splitter,
                                          params, sa));
    b.push_back(core::measure_with_params(*cs.pipeline, *cs.pool, *cs.splitter,
                                          params, sb));
  }
  auto rng = master.split("pab");
  const auto result = stats::test_probability_of_outperforming(a, b, rng);
  EXPECT_NE(result.conclusion,
            stats::ComparisonConclusion::kSignificantAndMeaningful);
}

TEST(Integration, FullPipelineWithBayesOptHpo) {
  const auto cs = casestudies::make_case_study("mhc_mlp", 0.1);
  const hpo::BayesianOptimization algo;
  core::HpoRunConfig cfg;
  cfg.algorithm = &algo;
  cfg.budget = 6;
  core::FitCounter counter;
  const rngx::VariationSeeds seeds;
  const double perf = core::run_pipeline_once(*cs.pipeline, *cs.pool,
                                              *cs.splitter, cfg, seeds,
                                              &counter);
  EXPECT_GT(perf, 0.5);  // better than chance AUC
  EXPECT_EQ(counter.fits, 7u);
}

TEST(Integration, BiasedEstimatorCheaperThanIdeal) {
  const auto cs = casestudies::make_case_study("glue_sst2_bert", 0.1);
  const hpo::RandomSearch algo;
  core::HpoRunConfig cfg;
  cfg.algorithm = &algo;
  cfg.budget = 4;
  rngx::Rng m1{3};
  rngx::Rng m2{3};
  const auto ideal = core::ideal_estimator(*cs.pipeline, *cs.pool,
                                           *cs.splitter, cfg, 4, m1);
  const auto biased = core::fix_hopt_estimator(
      *cs.pipeline, *cs.pool, *cs.splitter, cfg, 4,
      core::RandomizeSubset::kAll, m2);
  EXPECT_GT(ideal.fits, biased.fits);
  // Both estimate the same µ; they should agree within a few σ.
  EXPECT_NEAR(ideal.mean, biased.mean,
              5.0 * (ideal.stddev + biased.stddev) + 0.05);
}

TEST(Integration, SimulatedDetectionPipelineMatchesCalibration) {
  // Wire calibration → profile → simulation → criterion, as the Fig. 6
  // bench does, and sanity-check both tails.
  const auto& calib = casestudies::calibration_for("pascalvoc_fcn");
  const auto profile = calib.profile(core::RandomizeSubset::kAll);
  rngx::Rng rng{4};
  const compare::ProbOutperformCriterion criterion{0.75, 200};
  int null_detections = 0;
  int strong_detections = 0;
  constexpr int rounds = 25;
  const double strong_offset = compare::mean_offset_for_probability(
      0.99, profile.sigma_biased_total());
  for (int i = 0; i < rounds; ++i) {
    const auto a0 = compare::simulate_measures(
        profile, compare::EstimatorKind::kBiased, 0.0, 30, rng);
    const auto b0 = compare::simulate_measures(
        profile, compare::EstimatorKind::kBiased, 0.0, 30, rng);
    if (criterion.detects(a0, b0, rng)) ++null_detections;
    const auto a1 = compare::simulate_measures(
        profile, compare::EstimatorKind::kBiased, strong_offset, 30, rng);
    const auto b1 = compare::simulate_measures(
        profile, compare::EstimatorKind::kBiased, 0.0, 30, rng);
    if (criterion.detects(a1, b1, rng)) ++strong_detections;
  }
  EXPECT_LE(null_detections, 4);
  EXPECT_GE(strong_detections, rounds / 2);
}

TEST(Integration, NoetherPlanningMatchesEmpiricalPower) {
  // Plan N for γ=0.75 via Noether, then verify the P(A>B) test detects a
  // true-γ effect at roughly the designed rate on simulated data.
  const std::size_t n = stats::noether_sample_size(0.75, 0.05, 0.2);
  compare::TaskVarianceProfile p;
  p.mu = 0.8;
  p.sigma_ideal = 0.02;
  p.sigma_within = 0.02;
  const double offset = compare::mean_offset_for_probability(0.9, 0.02);
  rngx::Rng rng{5};
  int detections = 0;
  constexpr int rounds = 40;
  for (int i = 0; i < rounds; ++i) {
    const auto a = compare::simulate_measures(
        p, compare::EstimatorKind::kIdeal, offset, n, rng);
    const auto b = compare::simulate_measures(
        p, compare::EstimatorKind::kIdeal, 0.0, n, rng);
    const auto r = stats::test_probability_of_outperforming(a, b, rng, 0.75,
                                                            200);
    if (r.conclusion ==
        stats::ComparisonConclusion::kSignificantAndMeaningful) {
      ++detections;
    }
  }
  // True effect (0.9) is above the design point (0.75): power should be high.
  EXPECT_GE(detections, rounds / 2);
}

TEST(Integration, VarianceStudyBootstrapDominatesInit) {
  // The paper's headline Fig. 1 finding, verified end-to-end at small scale:
  // data-split variance >= weight-init variance on a small-test-set task.
  const auto cs = casestudies::make_case_study("glue_rte_bert", 0.12);
  core::VarianceStudyConfig cfg;
  cfg.repetitions = 12;
  cfg.include_numerical_noise = false;
  rngx::Rng master{6};
  const auto result = core::run_variance_study(*cs.pipeline, *cs.pool,
                                               *cs.splitter, cfg, master);
  double init_std = 0.0;
  for (const auto& row : result.rows) {
    if (row.source == rngx::VariationSource::kWeightInit) {
      init_std = row.stddev;
    }
  }
  EXPECT_GT(result.bootstrap_std(), 0.0);
  // Bootstrap should be at least comparable to init (paper: roughly 2×).
  EXPECT_GT(result.bootstrap_std(), 0.4 * init_std);
}

}  // namespace
}  // namespace varbench

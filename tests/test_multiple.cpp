#include "src/compare/multiple.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace varbench::compare {
namespace {

ContestantScores three_contestants(std::size_t k, rngx::Rng& rng) {
  // 0: weak, 1: strong, 2: strong (tied with 1 within noise).
  ContestantScores s(3);
  for (std::size_t i = 0; i < k; ++i) {
    const double shared = rng.normal(0.0, 0.05);  // paired split effect
    s[0].push_back(0.70 + shared + rng.normal(0.0, 0.01));
    s[1].push_back(0.80 + shared + rng.normal(0.0, 0.01));
    s[2].push_back(0.801 + shared + rng.normal(0.0, 0.01));
  }
  return s;
}

TEST(PairwisePab, MatrixStructure) {
  rngx::Rng rng{1};
  const auto scores = three_contestants(40, rng);
  const auto m = pairwise_pab_matrix(scores);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(m(i, i), 0.5);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(m(i, j) + m(j, i), 1.0, 1e-12);  // antisymmetry
    }
  }
  EXPECT_GT(m(1, 0), 0.9);   // strong beats weak almost always
  EXPECT_LT(m(0, 2), 0.1);
  EXPECT_NEAR(m(1, 2), 0.5, 0.35);  // the two strong ones are close
}

TEST(PairwisePab, BadInputsThrow) {
  EXPECT_THROW((void)pairwise_pab_matrix({{1.0}}), std::invalid_argument);
  EXPECT_THROW((void)pairwise_pab_matrix({{1.0}, {1.0, 2.0}}),
               std::invalid_argument);
  EXPECT_THROW((void)pairwise_pab_matrix({{}, {}}), std::invalid_argument);
}

TEST(TopGroup, KeepsIndistinguishableContestants) {
  rngx::Rng rng{2};
  const auto scores = three_contestants(40, rng);
  auto test_rng = rng.split("test");
  const auto result = significance_top_group(scores, test_rng);
  // Best is 1 or 2; both must be in the group; 0 must not.
  EXPECT_TRUE(result.best == 1 || result.best == 2);
  EXPECT_TRUE(std::find(result.group.begin(), result.group.end(), 1u) !=
              result.group.end());
  EXPECT_TRUE(std::find(result.group.begin(), result.group.end(), 2u) !=
              result.group.end());
  EXPECT_TRUE(std::find(result.group.begin(), result.group.end(), 0u) ==
              result.group.end());
  EXPECT_NEAR(result.adjusted_alpha, 0.025, 1e-12);  // 0.05 / 2 comparisons
}

TEST(TopGroup, SingleDominantContestantAlone) {
  rngx::Rng rng{3};
  ContestantScores s(2);
  for (int i = 0; i < 40; ++i) {
    s[0].push_back(rng.normal(0.9, 0.01));
    s[1].push_back(rng.normal(0.5, 0.01));
  }
  auto test_rng = rng.split("test");
  const auto result = significance_top_group(s, test_rng);
  EXPECT_EQ(result.best, 0u);
  EXPECT_EQ(result.group, (std::vector<std::size_t>{0}));
}

TEST(RankingStability, ProbabilitiesAreDistributions) {
  rngx::Rng rng{4};
  const auto scores = three_contestants(30, rng);
  auto boot_rng = rng.split("boot");
  const auto r = ranking_stability(scores, boot_rng, 500);
  for (std::size_t a = 0; a < 3; ++a) {
    double row_sum = 0.0;
    for (std::size_t rank = 0; rank < 3; ++rank) {
      const double p = r.rank_probability(a, rank);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      row_sum += p;
    }
    EXPECT_NEAR(row_sum, 1.0, 1e-9);
  }
}

TEST(RankingStability, WeakContestantNeverFirst) {
  rngx::Rng rng{5};
  const auto scores = three_contestants(30, rng);
  auto boot_rng = rng.split("boot");
  const auto r = ranking_stability(scores, boot_rng, 500);
  EXPECT_LT(r.prob_first[0], 0.01);
  // The two strong contestants split the first place — the paper's point
  // that competition winners carry arbitrariness.
  EXPECT_GT(r.prob_first[1] + r.prob_first[2], 0.99);
  EXPECT_GT(std::min(r.prob_first[1], r.prob_first[2]), 0.02);
}

TEST(RankingStability, DeterministicScoresGiveDegenerateRanking) {
  ContestantScores s{{0.9, 0.9, 0.9}, {0.5, 0.5, 0.5}};
  rngx::Rng rng{6};
  const auto r = ranking_stability(s, rng, 200);
  EXPECT_DOUBLE_EQ(r.prob_first[0], 1.0);
  EXPECT_DOUBLE_EQ(r.prob_first[1], 0.0);
}

}  // namespace
}  // namespace varbench::compare

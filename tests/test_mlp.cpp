#include "src/ml/mlp.h"

#include <gtest/gtest.h>

#include <cmath>

namespace varbench::ml {
namespace {

MlpConfig small_config() {
  MlpConfig cfg;
  cfg.input_dim = 4;
  cfg.hidden = {6};
  cfg.output_dim = 3;
  return cfg;
}

TEST(Mlp, ShapesAndParameterCount) {
  rngx::Rng rng{1};
  const Mlp m{small_config(), rng};
  EXPECT_EQ(m.num_layers(), 2u);
  EXPECT_EQ(m.weights()[0].rows(), 6u);
  EXPECT_EQ(m.weights()[0].cols(), 4u);
  EXPECT_EQ(m.weights()[1].rows(), 3u);
  EXPECT_EQ(m.weights()[1].cols(), 6u);
  EXPECT_EQ(m.num_parameters(), 6u * 4u + 6u + 3u * 6u + 3u);
}

TEST(Mlp, SameSeedSameWeights) {
  rngx::Rng a{7};
  rngx::Rng b{7};
  const Mlp m1{small_config(), a};
  const Mlp m2{small_config(), b};
  EXPECT_EQ(m1.weights()[0], m2.weights()[0]);
  EXPECT_EQ(m1.weights()[1], m2.weights()[1]);
}

TEST(Mlp, DifferentSeedDifferentWeights) {
  rngx::Rng a{7};
  rngx::Rng b{8};
  const Mlp m1{small_config(), a};
  const Mlp m2{small_config(), b};
  EXPECT_NE(m1.weights()[0], m2.weights()[0]);
}

TEST(Mlp, FrozenFirstLayerIgnoresInitSeed) {
  auto cfg = small_config();
  cfg.freeze_first_layer = true;
  rngx::Rng a{7};
  rngx::Rng b{8};
  const Mlp m1{cfg, a};
  const Mlp m2{cfg, b};
  // The frozen "backbone" layer is the shared checkpoint...
  EXPECT_EQ(m1.weights()[0], m2.weights()[0]);
  // ...while the head still depends on the init seed.
  EXPECT_NE(m1.weights()[1], m2.weights()[1]);
  EXPECT_FALSE(m1.layer_trainable(0));
  EXPECT_TRUE(m1.layer_trainable(1));
}

TEST(Mlp, ForwardShape) {
  rngx::Rng rng{2};
  const Mlp m{small_config(), rng};
  const math::Matrix batch{5, 4, 0.5};
  const auto out = m.forward(batch);
  EXPECT_EQ(out.rows(), 5u);
  EXPECT_EQ(out.cols(), 3u);
}

TEST(Mlp, InvalidConfigThrows) {
  rngx::Rng rng{1};
  MlpConfig bad = small_config();
  bad.input_dim = 0;
  EXPECT_THROW((Mlp{bad, rng}), std::invalid_argument);
  bad = small_config();
  bad.dropout = 1.0;
  EXPECT_THROW((Mlp{bad, rng}), std::invalid_argument);
}

TEST(Mlp, GradientCheckCrossEntropy) {
  // Finite-difference verification of the analytic gradients.
  auto cfg = small_config();
  rngx::Rng rng{3};
  Mlp m{cfg, rng};
  const math::Matrix batch{{0.1, -0.2, 0.3, 0.4}, {0.5, 0.6, -0.7, 0.8}};
  const std::vector<double> labels{0.0, 2.0};

  rngx::Rng dropout_rng{4};
  ForwardCache cache;
  math::Matrix grad_logits;
  const auto logits = m.forward_train(batch, dropout_rng, cache);
  (void)softmax_cross_entropy(logits, labels, grad_logits);
  const Gradients g = m.backward(cache, grad_logits);

  auto loss_at = [&](Mlp& model) {
    const auto lg = model.forward(batch);
    math::Matrix unused;
    return softmax_cross_entropy(lg, labels, unused);
  };

  constexpr double kEps = 1e-6;
  for (std::size_t layer = 0; layer < m.num_layers(); ++layer) {
    auto w = m.weights()[layer].data();
    const auto gw = g.weights[layer].data();
    for (const std::size_t j : {std::size_t{0}, w.size() / 2, w.size() - 1}) {
      const double orig = w[j];
      w[j] = orig + kEps;
      const double lp = loss_at(m);
      w[j] = orig - kEps;
      const double lm = loss_at(m);
      w[j] = orig;
      EXPECT_NEAR(gw[j], (lp - lm) / (2.0 * kEps), 1e-5)
          << "layer " << layer << " weight " << j;
    }
    auto& b = m.biases()[layer];
    const auto& gb = g.biases[layer];
    for (const std::size_t j : {std::size_t{0}, b.size() - 1}) {
      const double orig = b[j];
      b[j] = orig + kEps;
      const double lp = loss_at(m);
      b[j] = orig - kEps;
      const double lm = loss_at(m);
      b[j] = orig;
      EXPECT_NEAR(gb[j], (lp - lm) / (2.0 * kEps), 1e-5)
          << "layer " << layer << " bias " << j;
    }
  }
}

TEST(Mlp, GradientCheckMse) {
  MlpConfig cfg;
  cfg.input_dim = 3;
  cfg.hidden = {5};
  cfg.output_dim = 1;
  rngx::Rng rng{5};
  Mlp m{cfg, rng};
  const math::Matrix batch{{0.2, 0.1, -0.3}, {0.4, -0.5, 0.6}};
  const std::vector<double> targets{0.7, -0.1};

  rngx::Rng dropout_rng{6};
  ForwardCache cache;
  math::Matrix grad;
  const auto pred = m.forward_train(batch, dropout_rng, cache);
  (void)mse_loss(pred, targets, grad);
  const Gradients g = m.backward(cache, grad);

  constexpr double kEps = 1e-6;
  auto w = m.weights()[0].data();
  const auto gw = g.weights[0].data();
  const std::size_t j = 2;
  const double orig = w[j];
  auto loss_at = [&]() {
    const auto p = m.forward(batch);
    math::Matrix unused;
    return mse_loss(p, targets, unused);
  };
  w[j] = orig + kEps;
  const double lp = loss_at();
  w[j] = orig - kEps;
  const double lm = loss_at();
  w[j] = orig;
  EXPECT_NEAR(gw[j], (lp - lm) / (2.0 * kEps), 1e-6);
}

TEST(Mlp, FrozenLayerGetsZeroGradient) {
  auto cfg = small_config();
  cfg.freeze_first_layer = true;
  rngx::Rng rng{7};
  Mlp m{cfg, rng};
  const math::Matrix batch{2, 4, 0.3};
  const std::vector<double> labels{0.0, 1.0};
  rngx::Rng dropout_rng{8};
  ForwardCache cache;
  math::Matrix grad_logits;
  const auto logits = m.forward_train(batch, dropout_rng, cache);
  (void)softmax_cross_entropy(logits, labels, grad_logits);
  const Gradients g = m.backward(cache, grad_logits);
  EXPECT_DOUBLE_EQ(g.weights[0].squared_norm(), 0.0);
  EXPECT_GT(g.weights[1].squared_norm(), 0.0);
}

TEST(Mlp, DropoutZerosActivationsInTraining) {
  auto cfg = small_config();
  cfg.dropout = 0.5;
  rngx::Rng rng{9};
  const Mlp m{cfg, rng};
  const math::Matrix batch{8, 4, 1.0};
  rngx::Rng d1{10};
  rngx::Rng d2{11};
  ForwardCache c1;
  ForwardCache c2;
  const auto o1 = m.forward_train(batch, d1, c1);
  const auto o2 = m.forward_train(batch, d2, c2);
  EXPECT_NE(o1, o2);  // different dropout masks → different outputs
  // Inference path is deterministic and mask-free.
  EXPECT_EQ(m.forward(batch), m.forward(batch));
}

TEST(Softmax, RowsSumToOne) {
  const math::Matrix logits{{1.0, 2.0, 3.0}, {-1.0, 0.0, 1.0}};
  const auto p = softmax(logits);
  for (std::size_t r = 0; r < p.rows(); ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < p.cols(); ++c) {
      sum += p(r, c);
      EXPECT_GT(p(r, c), 0.0);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  const math::Matrix logits{{1000.0, 1001.0}};
  const auto p = softmax(logits);
  EXPECT_NEAR(p(0, 0) + p(0, 1), 1.0, 1e-12);
  EXPECT_FALSE(std::isnan(p(0, 0)));
}

TEST(SoftmaxCrossEntropy, KnownValue) {
  // Uniform logits over 2 classes → loss = log 2.
  const math::Matrix logits{{0.0, 0.0}};
  math::Matrix grad;
  const double loss = softmax_cross_entropy(logits, std::vector<double>{0.0},
                                            grad);
  EXPECT_NEAR(loss, std::log(2.0), 1e-12);
  EXPECT_NEAR(grad(0, 0), -0.5, 1e-12);
  EXPECT_NEAR(grad(0, 1), 0.5, 1e-12);
}

TEST(MseLoss, KnownValue) {
  const math::Matrix pred{{1.0}, {2.0}};
  math::Matrix grad;
  const double loss = mse_loss(pred, std::vector<double>{0.0, 2.0}, grad);
  EXPECT_NEAR(loss, 0.5, 1e-12);  // (1 + 0)/2
  EXPECT_NEAR(grad(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(grad(1, 0), 0.0, 1e-12);
}

}  // namespace
}  // namespace varbench::ml

// Status-layer contract (docs/tracing.md): heartbeats may carry a live
// progress snapshot in the claim body without breaking anything that
// already reads claims — mtime stays the liveness signal, parse_ticket
// ignores the extra key so status-carrying claims still requeue and
// re-claim, and the takeover guard keeps a worker from stomping a claim it
// lost. `varbench status` assembles all of it strictly read-only.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>

#include "src/campaign/campaign.h"
#include "src/campaign/status.h"
#include "src/campaign/subprocess.h"
#include "src/campaign/work_queue.h"
#include "src/io/json.h"
#include "src/study/study_spec.h"

namespace varbench::campaign {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_{fs::temp_directory_path() /
              ("varbench_status_" + tag + "_" +
               std::to_string(current_process_id()))} {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

io::Json snapshot(double running_ms) {
  io::Json snap = io::Json::object();
  snap.set("running_ms", io::Json{running_ms});
  snap.set("tasks_done", io::Json{std::uint64_t{1}});
  return snap;
}

std::string claim_path(const WorkQueue& queue, const std::string& task_id) {
  return (fs::path{queue.dir()} / "claims" / (task_id + ".claim")).string();
}

// ---------------------------------------------------- status heartbeats

TEST(StatusHeartbeat, EmbedsSnapshotInClaimBody) {
  const TempDir dir{"embed"};
  WorkQueue queue{dir.str()};
  queue.enqueue(Ticket{"s0-0of2", 1, ""});
  const auto claimed = queue.try_claim("worker-a");
  ASSERT_TRUE(claimed.has_value());

  queue.heartbeat(*claimed, snapshot(1234.5));

  const io::Json claim =
      io::Json::parse(io::read_file(claim_path(queue, "s0-0of2")));
  EXPECT_EQ(claim.at("task").as_string(), "s0-0of2");
  EXPECT_EQ(claim.at("attempts").as_uint64(), 1u);
  EXPECT_EQ(claim.at("owner").as_string(), "worker-a");
  EXPECT_DOUBLE_EQ(claim.at("status").at("running_ms").as_double(), 1234.5);
  EXPECT_EQ(claim.at("status").at("tasks_done").as_uint64(), 1u);
}

TEST(StatusHeartbeat, TakeoverGuardLeavesForeignClaimAlone) {
  const TempDir dir{"guard"};
  WorkQueue queue{dir.str()};
  queue.enqueue(Ticket{"s0-0of2", 1, ""});
  const auto claimed = queue.try_claim("worker-a");
  ASSERT_TRUE(claimed.has_value());

  // A stale-claim takeover: the on-disk claim now belongs to worker-b.
  io::Json other = io::Json::object();
  other.set("task", io::Json{"s0-0of2"});
  other.set("attempts", io::Json{std::uint64_t{2}});
  other.set("owner", io::Json{"worker-b"});
  WorkQueue::atomic_write(claim_path(queue, "s0-0of2"), other.dump(2) + "\n");

  // worker-a's status heartbeat must not touch worker-b's claim.
  queue.heartbeat(*claimed, snapshot(7.0));
  const io::Json claim =
      io::Json::parse(io::read_file(claim_path(queue, "s0-0of2")));
  EXPECT_EQ(claim.at("owner").as_string(), "worker-b");
  EXPECT_EQ(claim.find("status"), nullptr);
}

TEST(StatusHeartbeat, StatusCarryingClaimStillRequeuesAndReclaims) {
  const TempDir dir{"requeue"};
  WorkQueue queue{dir.str()};
  queue.enqueue(Ticket{"s0-0of2", 2, ""});
  const auto claimed = queue.try_claim("worker-a");
  ASSERT_TRUE(claimed.has_value());
  queue.heartbeat(*claimed, snapshot(5.0));

  // Let the heartbeat age past a zero staleness threshold, then reclaim.
  std::this_thread::sleep_for(20ms);
  const auto reclaimed = queue.requeue_stale_claims(0ms, "someone-else");
  ASSERT_EQ(reclaimed.size(), 1u);
  EXPECT_EQ(reclaimed[0], "s0-0of2");
  EXPECT_TRUE(queue.is_queued("s0-0of2"));

  // parse_ticket ignores the embedded "status" key, so the recycled
  // ticket claims cleanly and keeps its attempt count.
  const auto again = queue.try_claim("worker-b");
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->task_id, "s0-0of2");
  EXPECT_EQ(again->attempts, 2u);
  EXPECT_EQ(again->owner, "worker-b");
}

// --------------------------------------------------------- read_status

TEST(ReadStatus, MissingManifestIsActionable) {
  const TempDir dir{"nomanifest"};
  try {
    (void)read_status(dir.str());
    FAIL() << "expected io::JsonError";
  } catch (const io::JsonError& e) {
    EXPECT_NE(std::string{e.what()}.find("manifest"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string{e.what()}.find(dir.str()), std::string::npos);
  }
}

TEST(ReadStatus, FinishedCampaignReportsAllDone) {
  const TempDir dir{"finished"};
  study::StudySpec spec;
  spec.kind = study::StudyKind::kCompare;
  spec.case_study = "cifar10_vgg11";
  spec.scale = 0.08;
  spec.seed = 20260809;
  spec.repetitions = 5;
  spec.compare.num_resamples = 50;
  CampaignConfig cfg;
  cfg.dir = dir.str();
  cfg.shards = 2;
  cfg.workers = 2;
  cfg.stale_after = 10min;
  cfg.poll_interval = 1ms;
  const auto report = run_campaign(cfg, {spec}, in_process_launcher());
  ASSERT_TRUE(report.ok());

  const CampaignStatus status = read_status(dir.str());
  EXPECT_EQ(status.tasks, 2u);
  EXPECT_EQ(status.done, 2u);
  EXPECT_EQ(status.failed, 0u);
  EXPECT_EQ(status.pending, 0u);
  EXPECT_EQ(status.queued, 0u);
  EXPECT_EQ(status.retries, 0u);
  EXPECT_TRUE(status.workers.empty());  // all claims completed away
  EXPECT_EQ(status.eta_ms, 0.0);        // nothing pending
}

TEST(ReadStatus, MidFlightDirReportsWorkersAndEta) {
  const TempDir dir{"midflight"};
  // Hand-build the three inputs read_status consumes: manifest, queue
  // listing, claim files — exactly what a live coordinator maintains.
  fs::create_directories(fs::path{dir.str()} / "queue");
  fs::create_directories(fs::path{dir.str()} / "claims");

  io::Json manifest = io::Json::object();
  io::Json tasks = io::Json::array();
  const auto task = [](const char* id, const char* status, double wall,
                       std::uint64_t attempts) {
    io::Json t = io::Json::object();
    t.set("id", io::Json{id});
    t.set("status", io::Json{status});
    t.set("attempts", io::Json{attempts});
    t.set("wall_time_ms", io::Json{wall});
    return t;
  };
  tasks.push_back(task("s0-0of4", "done", 80.0, 1));
  tasks.push_back(task("s0-1of4", "done", 120.0, 2));
  tasks.push_back(task("s0-2of4", "running", 0.0, 1));
  tasks.push_back(task("s0-3of4", "queued", 0.0, 1));
  manifest.set("tasks", std::move(tasks));
  io::write_file((fs::path{dir.str()} / "campaign.json").string(),
                 manifest.dump(2) + "\n");

  io::write_file((fs::path{dir.str()} / "queue" / "s0-3of4.todo").string(),
                 "{\"task\": \"s0-3of4\", \"attempts\": 1}\n");

  // One claim with an embedded snapshot, one without (a coordinator
  // predating the status heartbeat): both must surface.
  io::Json with_snap = io::Json::object();
  with_snap.set("task", io::Json{"s0-2of4"});
  with_snap.set("attempts", io::Json{std::uint64_t{1}});
  with_snap.set("owner", io::Json{"worker-a"});
  with_snap.set("status", snapshot(432.1));
  io::write_file((fs::path{dir.str()} / "claims" / "s0-2of4.claim").string(),
                 with_snap.dump(2) + "\n");
  io::Json bare = io::Json::object();
  bare.set("task", io::Json{"s0-1of4"});
  bare.set("attempts", io::Json{std::uint64_t{2}});
  bare.set("owner", io::Json{"worker-b"});
  io::write_file((fs::path{dir.str()} / "claims" / "s0-1of4.claim").string(),
                 bare.dump(2) + "\n");

  const CampaignStatus status = read_status(dir.str());
  EXPECT_EQ(status.tasks, 4u);
  EXPECT_EQ(status.done, 2u);
  EXPECT_EQ(status.failed, 0u);
  EXPECT_EQ(status.pending, 2u);
  EXPECT_EQ(status.queued, 1u);
  EXPECT_EQ(status.retries, 1u);  // one task on attempt 2
  EXPECT_DOUBLE_EQ(status.mean_task_wall_ms, 100.0);
  // 2 pending × 100 ms mean / 2 live claims.
  EXPECT_DOUBLE_EQ(status.eta_ms, 100.0);

  ASSERT_EQ(status.workers.size(), 2u);  // sorted by task id
  EXPECT_EQ(status.workers[0].task_id, "s0-1of4");
  EXPECT_EQ(status.workers[0].owner, "worker-b");
  EXPECT_EQ(status.workers[0].attempts, 2u);
  EXPECT_FALSE(status.workers[0].has_snapshot);
  EXPECT_GE(status.workers[0].heartbeat_age_ms, 0.0);
  EXPECT_EQ(status.workers[1].task_id, "s0-2of4");
  EXPECT_TRUE(status.workers[1].has_snapshot);
  EXPECT_DOUBLE_EQ(status.workers[1].running_ms, 432.1);

  // JSON projection carries the same numbers under stable keys.
  const io::Json doc = status_json(status);
  EXPECT_EQ(doc.at("tasks").at("total").as_uint64(), 4u);
  EXPECT_EQ(doc.at("tasks").at("pending").as_uint64(), 2u);
  EXPECT_EQ(doc.at("tasks").at("retries").as_uint64(), 1u);
  EXPECT_DOUBLE_EQ(doc.at("eta_ms").as_double(), 100.0);
  const auto& workers = doc.at("workers").as_array();
  ASSERT_EQ(workers.size(), 2u);
  EXPECT_EQ(workers[0].find("running_ms"), nullptr);  // no snapshot
  EXPECT_DOUBLE_EQ(workers[1].at("running_ms").as_double(), 432.1);

  // Text rendering names the workers and the ETA.
  const std::string text = render_status_text(status);
  EXPECT_NE(text.find("2/4 task(s) done"), std::string::npos) << text;
  EXPECT_NE(text.find("ETA"), std::string::npos);
  EXPECT_NE(text.find("worker-a"), std::string::npos);
  EXPECT_NE(text.find("worker-b"), std::string::npos);
}

}  // namespace
}  // namespace varbench::campaign

#include "src/stats/multi_dataset.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/rngx/rng.h"

namespace varbench::stats {
namespace {

TEST(Friedman, KnownRanksFromDominantAlgorithm) {
  // Algorithm 2 always best, 0 always worst → ranks 3/2/1 per dataset.
  const math::Matrix scores{{0.1, 0.5, 0.9},
                            {0.2, 0.6, 0.8},
                            {0.0, 0.4, 0.7},
                            {0.3, 0.5, 0.9}};
  const auto r = friedman_test(scores);
  EXPECT_DOUBLE_EQ(r.average_ranks[0], 3.0);
  EXPECT_DOUBLE_EQ(r.average_ranks[1], 2.0);
  EXPECT_DOUBLE_EQ(r.average_ranks[2], 1.0);
  // χ²_F = 12·4/(3·4)·(14 − 12) = 8 for perfectly consistent rankings.
  EXPECT_NEAR(r.chi_squared, 8.0, 1e-12);
  EXPECT_LT(r.p_value, 0.05);
}

TEST(Friedman, NoDifferenceGivesLargeP) {
  rngx::Rng rng{1};
  math::Matrix scores{12, 3};
  for (double& v : scores.data()) v = rng.normal();
  const auto r = friedman_test(scores);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(Friedman, DetectsConsistentSmallEdge) {
  rngx::Rng rng{2};
  math::Matrix scores{20, 3};
  for (std::size_t d = 0; d < 20; ++d) {
    const double base = rng.normal(0.0, 1.0);
    scores(d, 0) = base + rng.normal(0.0, 0.01);
    scores(d, 1) = base + 0.1 + rng.normal(0.0, 0.01);
    scores(d, 2) = base + 0.2 + rng.normal(0.0, 0.01);
  }
  EXPECT_LT(friedman_test(scores).p_value, 1e-4);
}

TEST(Friedman, BadShapesThrow) {
  EXPECT_THROW((void)friedman_test(math::Matrix{1, 3}), std::invalid_argument);
  EXPECT_THROW((void)friedman_test(math::Matrix{5, 1}), std::invalid_argument);
}

TEST(Friedman, TiesShareRanks) {
  const math::Matrix scores{{0.5, 0.5}, {0.5, 0.5}};
  const auto r = friedman_test(scores);
  EXPECT_DOUBLE_EQ(r.average_ranks[0], 1.5);
  EXPECT_DOUBLE_EQ(r.average_ranks[1], 1.5);
  EXPECT_NEAR(r.chi_squared, 0.0, 1e-12);
}

TEST(Nemenyi, CriticalDifferenceShrinsWithDatasets) {
  const double cd_small = nemenyi_critical_difference(4, 5);
  const double cd_large = nemenyi_critical_difference(4, 50);
  EXPECT_GT(cd_small, cd_large);
  // Demšar's example regime: k=4, N=10 → CD ≈ 1.41.
  EXPECT_NEAR(nemenyi_critical_difference(4, 14), 1.25, 0.15);
}

TEST(Nemenyi, InvalidArgsThrow) {
  EXPECT_THROW((void)nemenyi_critical_difference(1, 10),
               std::invalid_argument);
  EXPECT_THROW((void)nemenyi_critical_difference(11, 10),
               std::invalid_argument);
  EXPECT_THROW((void)nemenyi_critical_difference(3, 1), std::invalid_argument);
}

TEST(Nemenyi, TopGroupContainsBestAndCloseCompetitors) {
  // 3 algorithms, many datasets, algorithm 2 best, algorithm 1 close,
  // algorithm 0 far behind.
  rngx::Rng rng{3};
  math::Matrix scores{30, 3};
  for (std::size_t d = 0; d < 30; ++d) {
    scores(d, 0) = rng.normal(0.0, 0.05);
    scores(d, 1) = rng.normal(0.48, 0.05);
    scores(d, 2) = rng.normal(0.5, 0.05);
  }
  const auto fr = friedman_test(scores);
  const auto group = nemenyi_top_group(fr, 30);
  EXPECT_TRUE(std::find(group.begin(), group.end(), 2u) != group.end());
  EXPECT_TRUE(std::find(group.begin(), group.end(), 1u) != group.end());
  EXPECT_TRUE(std::find(group.begin(), group.end(), 0u) == group.end());
}

TEST(Replicability, CountsBonferroniSignificant) {
  // 4 datasets, alpha 0.05 → corrected 0.0125.
  const std::vector<double> p{0.001, 0.010, 0.030, 0.200};
  const auto r = replicability_analysis(p, 0.05);
  EXPECT_EQ(r.dataset_count, 4u);
  EXPECT_EQ(r.significant_count, 2u);
  EXPECT_FALSE(r.improves_on_all);
  EXPECT_TRUE(r.significant[0]);
  EXPECT_TRUE(r.significant[1]);
  EXPECT_FALSE(r.significant[2]);
  EXPECT_FALSE(r.significant[3]);
}

TEST(Replicability, AcceptsWhenAllSignificant) {
  const std::vector<double> p{0.001, 0.002, 0.003};
  EXPECT_TRUE(replicability_analysis(p, 0.05).improves_on_all);
}

TEST(Replicability, EmptyThrows) {
  const std::vector<double> none;
  EXPECT_THROW((void)replicability_analysis(none), std::invalid_argument);
}

TEST(WilcoxonAcrossDatasets, MatchesDirectWilcoxon) {
  const std::vector<double> a{0.9, 0.8, 0.85, 0.95, 0.7};
  const std::vector<double> b{0.85, 0.75, 0.8, 0.9, 0.72};
  const auto r1 = wilcoxon_across_datasets(a, b);
  const auto r2 = wilcoxon_signed_rank(a, b);
  EXPECT_DOUBLE_EQ(r1.statistic, r2.statistic);
  EXPECT_DOUBLE_EQ(r1.p_value, r2.p_value);
}

}  // namespace
}  // namespace varbench::stats

#include "src/ml/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/stats/descriptive.h"

namespace varbench::ml {
namespace {

TEST(GaussianMixture, ShapeAndLabels) {
  GaussianMixtureConfig cfg;
  cfg.num_classes = 3;
  cfg.dim = 5;
  cfg.n = 200;
  rngx::Rng rng{1};
  const auto d = make_gaussian_mixture(cfg, rng);
  EXPECT_EQ(d.size(), 200u);
  EXPECT_EQ(d.dim(), 5u);
  EXPECT_EQ(d.num_classes, 3u);
  EXPECT_NO_THROW(validate(d));
}

TEST(GaussianMixture, BalancedByDefault) {
  GaussianMixtureConfig cfg;
  cfg.num_classes = 4;
  cfg.n = 8000;
  rngx::Rng rng{2};
  const auto d = make_gaussian_mixture(cfg, rng);
  const auto by_class = indices_by_class(d);
  for (const auto& members : by_class) {
    EXPECT_NEAR(static_cast<double>(members.size()), 2000.0, 200.0);
  }
}

TEST(GaussianMixture, ImbalanceRespected) {
  GaussianMixtureConfig cfg;
  cfg.num_classes = 2;
  cfg.n = 5000;
  cfg.class_probs = {0.9, 0.1};
  rngx::Rng rng{3};
  const auto d = make_gaussian_mixture(cfg, rng);
  const auto by_class = indices_by_class(d);
  EXPECT_NEAR(static_cast<double>(by_class[0].size()) / 5000.0, 0.9, 0.02);
}

TEST(GaussianMixture, SeparationControlsOverlap) {
  // Larger class_sep → larger distance between class means in feature space.
  GaussianMixtureConfig near_cfg;
  near_cfg.num_classes = 2;
  near_cfg.dim = 3;
  near_cfg.n = 2000;
  near_cfg.class_sep = 0.5;
  auto far_cfg = near_cfg;
  far_cfg.class_sep = 5.0;
  rngx::Rng r1{4};
  rngx::Rng r2{4};
  const auto near_d = make_gaussian_mixture(near_cfg, r1);
  const auto far_d = make_gaussian_mixture(far_cfg, r2);
  auto mean_dist = [](const Dataset& d) {
    std::vector<double> m0(d.dim(), 0.0);
    std::vector<double> m1(d.dim(), 0.0);
    double n0 = 0.0;
    double n1 = 0.0;
    for (std::size_t i = 0; i < d.size(); ++i) {
      auto& m = d.y[i] == 0.0 ? m0 : m1;
      (d.y[i] == 0.0 ? n0 : n1) += 1.0;
      for (std::size_t j = 0; j < d.dim(); ++j) m[j] += d.x(i, j);
    }
    double dist = 0.0;
    for (std::size_t j = 0; j < d.dim(); ++j) {
      const double diff = m0[j] / n0 - m1[j] / n1;
      dist += diff * diff;
    }
    return std::sqrt(dist);
  };
  EXPECT_GT(mean_dist(far_d), mean_dist(near_d) + 2.0);
}

TEST(GaussianMixture, LabelNoiseFlipsLabels) {
  GaussianMixtureConfig cfg;
  cfg.num_classes = 2;
  cfg.dim = 2;
  cfg.n = 4000;
  cfg.class_sep = 100.0;   // geometric clusters are unambiguous...
  cfg.within_std = 0.1;    // ...and extremely tight
  cfg.label_noise = 0.2;
  rngx::Rng rng{5};
  const auto d = make_gaussian_mixture(cfg, rng);
  // Recover each sample's true class geometrically: samples belong to the
  // cluster of whichever reference point they are near. Use sample 0 as one
  // reference; anything farther than half the separation is the other class.
  auto dist2_to_first = [&](std::size_t i) {
    double s = 0.0;
    for (std::size_t j = 0; j < d.dim(); ++j) {
      const double diff = d.x(i, j) - d.x(0, j);
      s += diff * diff;
    }
    return s;
  };
  std::vector<int> cluster(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    cluster[i] = dist2_to_first(i) < 50.0 * 50.0 ? 0 : 1;
  }
  // Majority label per cluster is the true label (noise is only 20%).
  double votes[2][2] = {{0, 0}, {0, 0}};
  for (std::size_t i = 0; i < d.size(); ++i) {
    votes[cluster[i]][static_cast<int>(d.y[i])] += 1.0;
  }
  const int true_label[2] = {votes[0][1] > votes[0][0] ? 1 : 0,
                             votes[1][1] > votes[1][0] ? 1 : 0};
  std::size_t flips = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (static_cast<int>(d.y[i]) != true_label[cluster[i]]) ++flips;
  }
  EXPECT_NEAR(static_cast<double>(flips) / 4000.0, 0.2, 0.03);
}

TEST(GaussianMixture, InvalidConfigThrows) {
  GaussianMixtureConfig cfg;
  cfg.num_classes = 1;
  rngx::Rng rng{1};
  EXPECT_THROW((void)make_gaussian_mixture(cfg, rng), std::invalid_argument);
  cfg.num_classes = 3;
  cfg.class_probs = {0.5, 0.5};  // wrong length
  EXPECT_THROW((void)make_gaussian_mixture(cfg, rng), std::invalid_argument);
}

TEST(RegressionTeacher, TargetsInUnitInterval) {
  RegressionTeacherConfig cfg;
  cfg.n = 500;
  rngx::Rng rng{6};
  const auto d = make_regression_teacher(cfg, rng);
  EXPECT_EQ(d.kind, TaskKind::kRegression);
  for (const double y : d.y) {
    EXPECT_GT(y, 0.0);
    EXPECT_LT(y, 1.0);
  }
}

TEST(RegressionTeacher, SameTeacherSeedSameMechanism) {
  RegressionTeacherConfig cfg;
  cfg.n = 100;
  cfg.noise_std = 0.0;
  rngx::Rng r1{7};
  rngx::Rng r2{7};
  const auto d1 = make_regression_teacher(cfg, r1);
  const auto d2 = make_regression_teacher(cfg, r2);
  EXPECT_EQ(d1.y, d2.y);
}

TEST(RegressionTeacher, TargetsDependOnInputs) {
  RegressionTeacherConfig cfg;
  cfg.n = 1000;
  cfg.noise_std = 0.0;
  rngx::Rng rng{8};
  const auto d = make_regression_teacher(cfg, rng);
  EXPECT_GT(stats::stddev(d.y), 0.01);  // non-degenerate targets
}

TEST(SparseBinary, ShapeSparsityAndBalance) {
  SparseBinaryConfig cfg;
  cfg.n = 3000;
  cfg.dim = 40;
  cfg.density = 0.2;
  rngx::Rng rng{9};
  const auto d = make_sparse_binary(cfg, rng);
  EXPECT_NO_THROW(validate(d));
  std::size_t nonzero = 0;
  for (const double v : d.x.data()) {
    if (v != 0.0) ++nonzero;
  }
  const double density =
      static_cast<double>(nonzero) / static_cast<double>(d.x.size());
  EXPECT_NEAR(density, 0.2, 0.03);
  const auto by_class = indices_by_class(d);
  EXPECT_NEAR(static_cast<double>(by_class[0].size()) / 3000.0, 0.5, 0.05);
}

TEST(SparseBinary, FeaturesAreNonNegative) {
  SparseBinaryConfig cfg;
  cfg.n = 500;
  rngx::Rng rng{10};
  const auto d = make_sparse_binary(cfg, rng);
  for (const double v : d.x.data()) EXPECT_GE(v, 0.0);
}

TEST(SparseBinary, InformativeGreaterThanDimThrows) {
  SparseBinaryConfig cfg;
  cfg.dim = 4;
  cfg.informative = 8;
  rngx::Rng rng{1};
  EXPECT_THROW((void)make_sparse_binary(cfg, rng), std::invalid_argument);
}

}  // namespace
}  // namespace varbench::ml

#include "src/casestudies/registry.h"

#include <gtest/gtest.h>

#include "src/casestudies/calibration.h"
#include "src/core/pipeline.h"

namespace varbench::casestudies {
namespace {

TEST(Registry, AllIdsConstruct) {
  for (const auto& id : case_study_ids()) {
    const auto cs = make_case_study(id, 0.1);
    EXPECT_EQ(cs.id, id);
    EXPECT_FALSE(cs.pool->empty());
    EXPECT_NE(cs.splitter, nullptr);
    EXPECT_NE(cs.pipeline, nullptr);
    EXPECT_GT(cs.paper_test_size, 0u);
  }
}

TEST(Registry, UnknownIdThrows) {
  EXPECT_THROW((void)make_case_study("nope", 1.0), std::invalid_argument);
}

TEST(Registry, BadScaleThrows) {
  EXPECT_THROW((void)make_case_study("mhc_mlp", 0.0), std::invalid_argument);
  EXPECT_THROW((void)make_case_study("mhc_mlp", 1.5), std::invalid_argument);
}

TEST(Registry, PoolIsDeterministic) {
  const auto a = make_case_study("cifar10_vgg11", 0.1);
  const auto b = make_case_study("cifar10_vgg11", 0.1);
  EXPECT_EQ(a.pool->y, b.pool->y);
  EXPECT_EQ(a.pool->x, b.pool->x);
}

TEST(Registry, ScaleShrinksPool) {
  const auto small = make_case_study("cifar10_vgg11", 0.1);
  const auto large = make_case_study("cifar10_vgg11", 1.0);
  EXPECT_LT(small.pool->size(), large.pool->size());
}

TEST(Registry, DefaultsLieInSearchSpace) {
  for (const auto& id : case_study_ids()) {
    const auto cs = make_case_study(id, 0.1);
    EXPECT_TRUE(
        cs.pipeline->search_space().contains(cs.pipeline->default_params()))
        << id;
  }
}

TEST(Registry, MakeAllReturnsFive) {
  EXPECT_EQ(make_all_case_studies(0.1).size(), 5u);
}

// Every case study must run end-to-end with default hyperparameters and
// produce a sane metric value.
class CaseStudyEndToEnd : public ::testing::TestWithParam<std::string> {};

TEST_P(CaseStudyEndToEnd, DefaultRunInRange) {
  const auto cs = make_case_study(GetParam(), 0.15);
  const rngx::VariationSeeds seeds;
  const core::HpoRunConfig cfg;  // defaults
  const double perf = core::run_pipeline_once(*cs.pipeline, *cs.pool,
                                              *cs.splitter, cfg, seeds);
  EXPECT_GT(perf, 0.0) << GetParam();
  EXPECT_LE(perf, 1.0) << GetParam();
}

TEST_P(CaseStudyEndToEnd, BetterThanChance) {
  const auto cs = make_case_study(GetParam(), 0.15);
  const rngx::VariationSeeds seeds;
  const core::HpoRunConfig cfg;
  const double perf = core::run_pipeline_once(*cs.pipeline, *cs.pool,
                                              *cs.splitter, cfg, seeds);
  // Chance levels: accuracy 1/C, mIoU low, AUC 0.5.
  const double chance =
      cs.pipeline->metric() == ml::Metric::kAuc
          ? 0.5
          : 1.0 / static_cast<double>(std::max<std::size_t>(
                      cs.pool->num_classes, 2));
  EXPECT_GT(perf, chance + 0.05) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllCaseStudies, CaseStudyEndToEnd,
                         ::testing::ValuesIn(case_study_ids()));

TEST(MlpPipelineSpecifics, ResolveConfigAppliesParams) {
  const auto cs = make_case_study("cifar10_vgg11", 0.1);
  const auto cfg = cs.pipeline->resolve_config({{"learning_rate", 0.05},
                                                {"weight_decay", 0.01},
                                                {"momentum", 0.8},
                                                {"lr_gamma", 0.98}});
  EXPECT_DOUBLE_EQ(cfg.opt.learning_rate, 0.05);
  EXPECT_DOUBLE_EQ(cfg.opt.weight_decay, 0.01);
  EXPECT_DOUBLE_EQ(cfg.opt.momentum, 0.8);
  EXPECT_DOUBLE_EQ(cfg.opt.lr_gamma, 0.98);
}

TEST(MlpPipelineSpecifics, ResolveConfigHiddenAndUnknown) {
  const auto cs = make_case_study("mhc_mlp", 0.1);
  const auto cfg = cs.pipeline->resolve_config(
      {{"hidden", 37.0}, {"weight_decay", 0.1}});
  ASSERT_EQ(cfg.model.hidden.size(), 1u);
  EXPECT_EQ(cfg.model.hidden[0], 37u);
  EXPECT_THROW((void)cs.pipeline->resolve_config({{"bogus", 1.0}}),
               std::invalid_argument);
  EXPECT_THROW((void)cs.pipeline->resolve_config({{"learning_rate", -1.0}}),
               std::invalid_argument);
}

TEST(Calibration, AllRegistryIdsCovered) {
  for (const auto& id : case_study_ids()) {
    EXPECT_NO_THROW((void)calibration_for(id));
  }
  EXPECT_THROW((void)calibration_for("nope"), std::invalid_argument);
}

TEST(Calibration, RhoOrderingMatchesPaper) {
  // Fig. 5/H.4: randomizing more sources decorrelates measurements, so
  // ρ_all <= ρ_data <= ρ_init on every task.
  for (const auto& c : paper_calibrations()) {
    EXPECT_LE(c.rho_all, c.rho_data) << c.id;
    EXPECT_LE(c.rho_data, c.rho_init) << c.id;
    EXPECT_GT(c.sigma_ideal, 0.0) << c.id;
  }
}

TEST(Calibration, ProfileVariancesDecompose) {
  const auto& c = calibration_for("glue_rte_bert");
  const auto p = c.profile(core::RandomizeSubset::kAll);
  // σ_bias² + σ_within² = σ_ideal² by construction.
  EXPECT_NEAR(p.sigma_bias * p.sigma_bias + p.sigma_within * p.sigma_within,
              c.sigma_ideal * c.sigma_ideal, 1e-12);
  const auto ideal = c.ideal_profile();
  EXPECT_DOUBLE_EQ(ideal.sigma_bias, 0.0);
}

TEST(Sota, SeriesAreMonotoneAndPlausible) {
  for (const auto& s : sota_series()) {
    ASSERT_GE(s.points.size(), 2u) << s.task;
    for (std::size_t i = 1; i < s.points.size(); ++i) {
      EXPECT_GE(s.points[i].accuracy, s.points[i - 1].accuracy) << s.task;
      EXPECT_GE(s.points[i].year, s.points[i - 1].year) << s.task;
    }
    EXPECT_GT(s.benchmark_sigma, 0.0);
    EXPECT_GT(mean_improvement(s), 0.0);
  }
}

TEST(Sota, MeanImprovementMatchesHandComputation) {
  SotaSeries s;
  s.task = "demo";
  s.points = {{2000, 0.5}, {2001, 0.6}, {2002, 0.8}};
  EXPECT_NEAR(mean_improvement(s), 0.15, 1e-12);
}

}  // namespace
}  // namespace varbench::casestudies

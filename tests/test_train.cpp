#include "src/ml/train.h"

#include <gtest/gtest.h>

#include "src/ml/metrics.h"
#include "src/ml/synthetic.h"

namespace varbench::ml {
namespace {

Dataset easy_dataset(std::uint64_t seed = 1) {
  GaussianMixtureConfig cfg;
  cfg.num_classes = 2;
  cfg.dim = 4;
  cfg.n = 300;
  cfg.class_sep = 3.0;
  rngx::Rng rng{seed};
  return make_gaussian_mixture(cfg, rng);
}

TrainConfig quick_config() {
  TrainConfig cfg;
  cfg.model.hidden = {8};
  cfg.opt.learning_rate = 0.05;
  cfg.opt.momentum = 0.9;
  cfg.epochs = 20;
  cfg.batch_size = 16;
  return cfg;
}

TEST(Train, LearnsSeparableTask) {
  const auto data = easy_dataset();
  const rngx::VariationSeeds seeds;
  const Mlp m = train_mlp(data, quick_config(), seeds);
  EXPECT_GT(evaluate_model(m, data, Metric::kAccuracy), 0.9);
}

TEST(Train, ReproducibleWithSameSeeds) {
  const auto data = easy_dataset();
  const rngx::VariationSeeds seeds;
  const Mlp m1 = train_mlp(data, quick_config(), seeds);
  const Mlp m2 = train_mlp(data, quick_config(), seeds);
  EXPECT_EQ(m1.weights()[0], m2.weights()[0]);
  EXPECT_EQ(m1.weights()[1], m2.weights()[1]);
}

TEST(Train, WeightInitSeedChangesResult) {
  const auto data = easy_dataset();
  rngx::VariationSeeds a;
  rngx::VariationSeeds b;
  b.weight_init = 999;
  const Mlp m1 = train_mlp(data, quick_config(), a);
  const Mlp m2 = train_mlp(data, quick_config(), b);
  EXPECT_NE(m1.weights()[0], m2.weights()[0]);
}

TEST(Train, DataOrderSeedChangesResult) {
  const auto data = easy_dataset();
  rngx::VariationSeeds a;
  rngx::VariationSeeds b;
  b.data_order = 999;
  const Mlp m1 = train_mlp(data, quick_config(), a);
  const Mlp m2 = train_mlp(data, quick_config(), b);
  EXPECT_NE(m1.weights()[0], m2.weights()[0]);
}

TEST(Train, DropoutSeedChangesResultOnlyWhenDropoutActive) {
  const auto data = easy_dataset();
  rngx::VariationSeeds a;
  rngx::VariationSeeds b;
  b.dropout = 999;
  // No dropout configured → identical results.
  const Mlp m1 = train_mlp(data, quick_config(), a);
  const Mlp m2 = train_mlp(data, quick_config(), b);
  EXPECT_EQ(m1.weights()[0], m2.weights()[0]);
  // With dropout → different results.
  auto cfg = quick_config();
  cfg.model.dropout = 0.3;
  const Mlp m3 = train_mlp(data, cfg, a);
  const Mlp m4 = train_mlp(data, cfg, b);
  EXPECT_NE(m3.weights()[0], m4.weights()[0]);
}

TEST(Train, AugmentSeedChangesResultOnlyWhenAugmentActive) {
  const auto data = easy_dataset();
  rngx::VariationSeeds a;
  rngx::VariationSeeds b;
  b.data_augment = 999;
  const Mlp m1 = train_mlp(data, quick_config(), a);
  const Mlp m2 = train_mlp(data, quick_config(), b);
  EXPECT_EQ(m1.weights()[0], m2.weights()[0]);
  auto cfg = quick_config();
  cfg.augment.jitter_std = 0.2;
  const Mlp m3 = train_mlp(data, cfg, a);
  const Mlp m4 = train_mlp(data, cfg, b);
  EXPECT_NE(m3.weights()[0], m4.weights()[0]);
}

TEST(Train, NumericalNoiseBreaksReproducibility) {
  const auto data = easy_dataset();
  auto cfg = quick_config();
  cfg.numerical_noise_std = 0.01;
  const rngx::VariationSeeds seeds;
  const Mlp m1 = train_mlp(data, cfg, seeds);
  const Mlp m2 = train_mlp(data, cfg, seeds);
  // Identical seeds but non-identical results — the paper's Appendix A
  // irreproducible-pipeline case.
  EXPECT_NE(m1.weights()[0], m2.weights()[0]);
}

TEST(Train, RegressionPathLearnsTeacher) {
  RegressionTeacherConfig rcfg;
  rcfg.dim = 6;
  rcfg.n = 400;
  rcfg.noise_std = 0.01;
  rngx::Rng rng{3};
  const auto data = make_regression_teacher(rcfg, rng);
  TrainConfig cfg;
  cfg.model.hidden = {16};
  cfg.optimizer = OptimizerKind::kAdam;
  cfg.loss = LossKind::kMse;
  cfg.opt.learning_rate = 0.01;
  cfg.epochs = 30;
  cfg.batch_size = 32;
  const rngx::VariationSeeds seeds;
  const Mlp m = train_mlp(data, cfg, seeds);
  EXPECT_GT(evaluate_model(m, data, Metric::kPearson), 0.8);
}

TEST(Train, EmptyDatasetThrows) {
  const Dataset empty;
  EXPECT_THROW((void)train_mlp(empty, quick_config(), rngx::VariationSeeds{}),
               std::invalid_argument);
}

TEST(Train, CeLossOnRegressionThrows) {
  RegressionTeacherConfig rcfg;
  rcfg.n = 50;
  rngx::Rng rng{4};
  const auto data = make_regression_teacher(rcfg, rng);
  auto cfg = quick_config();
  cfg.loss = LossKind::kSoftmaxCrossEntropy;
  EXPECT_THROW((void)train_mlp(data, cfg, rngx::VariationSeeds{}),
               std::invalid_argument);
}

TEST(Train, MeanLossDecreasesWithTraining) {
  const auto data = easy_dataset();
  auto cfg = quick_config();
  cfg.epochs = 1;
  const rngx::VariationSeeds seeds;
  const Mlp short_train = train_mlp(data, cfg, seeds);
  cfg.epochs = 15;
  const Mlp long_train = train_mlp(data, cfg, seeds);
  EXPECT_LT(mean_loss(long_train, data, LossKind::kSoftmaxCrossEntropy),
            mean_loss(short_train, data, LossKind::kSoftmaxCrossEntropy));
}

}  // namespace
}  // namespace varbench::ml

// The io::Json layer: lossless round-trips (including full-64-bit seeds),
// deterministic rendering, and actionable parse errors.
#include "src/io/json.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace varbench::io {
namespace {

TEST(Json, ScalarRoundTrips) {
  EXPECT_EQ(Json::parse("null"), Json{});
  EXPECT_EQ(Json::parse("true"), Json{true});
  EXPECT_EQ(Json::parse("false"), Json{false});
  EXPECT_EQ(Json::parse("42").as_uint64(), 42u);
  EXPECT_EQ(Json::parse("-7").as_int64(), -7);
  EXPECT_DOUBLE_EQ(Json::parse("0.125").as_double(), 0.125);
  EXPECT_DOUBLE_EQ(Json::parse("-1e-3").as_double(), -1e-3);
  EXPECT_EQ(Json::parse("\"hi\\nthere\"").as_string(), "hi\nthere");
}

TEST(Json, FullRangeSeedsSurviveRoundTrip) {
  // derive_seed outputs use all 64 bits; doubles would lose the low bits.
  const std::uint64_t seed = 0xFFFFFFFFFFFFFFF5ULL;
  const Json v{seed};
  EXPECT_EQ(Json::parse(v.dump()).as_uint64(), seed);
}

TEST(Json, NumberKindPreservedInBytes) {
  // An integral double still reads back as a double, and vice versa.
  EXPECT_EQ(Json{1.0}.dump(), "1.0");
  EXPECT_EQ(Json{std::uint64_t{1}}.dump(), "1");
  EXPECT_TRUE(Json::parse("1.0").is_number());
  EXPECT_EQ(Json::parse("1.0").dump(), "1.0");
  EXPECT_EQ(Json::parse("1").dump(), "1");
}

TEST(Json, ShortestRoundTripDoubles) {
  for (const double d : {0.1, 1.0 / 3.0, 1e300, 5e-324, 0.30000000000000004}) {
    const std::string text = Json{d}.dump();
    EXPECT_DOUBLE_EQ(Json::parse(text).as_double(), d) << text;
  }
}

TEST(Json, ObjectPreservesInsertionOrderAndRejectsDuplicates) {
  Json obj = Json::object();
  obj.set("zebra", Json{1});
  obj.set("alpha", Json{2});
  obj.set("zebra", Json{3});  // replace keeps first-insertion position
  EXPECT_EQ(obj.dump(), "{\"zebra\":3,\"alpha\":2}");
  EXPECT_THROW((void)Json::parse("{\"a\":1,\"a\":2}"), JsonError);
}

TEST(Json, DumpParseDumpIsStable) {
  const char* text =
      "{\"spec\":{\"seed\":18446744073709551615,\"scale\":0.25},"
      "\"rows\":[[0,\"a\",0.5],[1,\"b\",-0.25]]}";
  const Json v = Json::parse(text);
  EXPECT_EQ(Json::parse(v.dump()).dump(), v.dump());
  EXPECT_EQ(Json::parse(v.dump(2)).dump(2), v.dump(2));
}

TEST(Json, ParseErrorsCarryPosition) {
  try {
    (void)Json::parse("{\n  \"a\": }");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string{e.what()}.find("2:"), std::string::npos) << e.what();
  }
  EXPECT_THROW((void)Json::parse(""), JsonError);
  EXPECT_THROW((void)Json::parse("[1,2"), JsonError);
  EXPECT_THROW((void)Json::parse("12 34"), JsonError);
  EXPECT_THROW((void)Json::parse("\"unterminated"), JsonError);
}

TEST(Json, MissingKeyErrorListsPresentKeys) {
  const Json obj = Json::parse("{\"kind\":\"variance\",\"seed\":1}");
  try {
    (void)obj.at("case_study");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("case_study"), std::string::npos);
    EXPECT_NE(what.find("'kind'"), std::string::npos);
  }
}

TEST(Json, TypeMismatchesThrow) {
  EXPECT_THROW((void)Json{"text"}.as_double(), JsonError);
  EXPECT_THROW((void)Json{1.5}.as_uint64(), JsonError);
  EXPECT_THROW((void)Json{-1}.as_uint64(), JsonError);
  EXPECT_THROW((void)Json{true}.as_array(), JsonError);
}

TEST(Json, PrettyPrintingKeepsScalarArraysInline) {
  const Json v = Json::parse("{\"columns\":[\"a\",\"b\"],\"rows\":[[1,2]]}");
  const std::string pretty = v.dump(2);
  EXPECT_NE(pretty.find("[\"a\", \"b\"]"), std::string::npos) << pretty;
  EXPECT_NE(pretty.find("[1, 2]"), std::string::npos) << pretty;
}

}  // namespace
}  // namespace varbench::io

#include "src/ml/optimizer.h"

#include <gtest/gtest.h>

namespace varbench::ml {
namespace {

MlpConfig tiny_config() {
  MlpConfig cfg;
  cfg.input_dim = 2;
  cfg.hidden = {};
  cfg.output_dim = 1;
  return cfg;
}

Gradients unit_gradients(const Mlp& m) {
  Gradients g;
  for (std::size_t i = 0; i < m.num_layers(); ++i) {
    g.weights.emplace_back(m.weights()[i].rows(), m.weights()[i].cols(), 1.0);
    g.biases.emplace_back(m.biases()[i].size(), 1.0);
  }
  return g;
}

TEST(Sgd, VanillaStepMatchesFormula) {
  rngx::Rng rng{1};
  Mlp m{tiny_config(), rng};
  const double w0 = m.weights()[0](0, 0);
  OptimizerConfig cfg;
  cfg.learning_rate = 0.1;
  SgdOptimizer opt{cfg};
  opt.step(m, unit_gradients(m));
  EXPECT_NEAR(m.weights()[0](0, 0), w0 - 0.1, 1e-12);
  EXPECT_NEAR(m.biases()[0][0], -0.1, 1e-12);
}

TEST(Sgd, MomentumAccumulates) {
  rngx::Rng rng{2};
  Mlp m{tiny_config(), rng};
  const double w0 = m.weights()[0](0, 0);
  OptimizerConfig cfg;
  cfg.learning_rate = 0.1;
  cfg.momentum = 0.9;
  SgdOptimizer opt{cfg};
  opt.step(m, unit_gradients(m));  // v=1, w -= 0.1
  opt.step(m, unit_gradients(m));  // v=1.9, w -= 0.19
  EXPECT_NEAR(m.weights()[0](0, 0), w0 - 0.1 - 0.19, 1e-12);
}

TEST(Sgd, WeightDecayPullsTowardZero) {
  rngx::Rng rng{3};
  Mlp m{tiny_config(), rng};
  m.weights()[0](0, 0) = 10.0;
  OptimizerConfig cfg;
  cfg.learning_rate = 0.1;
  cfg.weight_decay = 0.5;
  SgdOptimizer opt{cfg};
  Gradients g;
  g.weights.emplace_back(1, 2, 0.0);
  g.biases.emplace_back(1, 0.0);
  opt.step(m, g);
  // w -= lr·(0 + wd·w) = 10 − 0.1·5 = 9.5
  EXPECT_NEAR(m.weights()[0](0, 0), 9.5, 1e-12);
  // Weight decay must not touch biases.
  m.biases()[0][0] = 4.0;
  opt.step(m, g);
  EXPECT_NEAR(m.biases()[0][0], 4.0, 1e-12);
}

TEST(Sgd, ExponentialLrDecay) {
  rngx::Rng rng{4};
  Mlp m{tiny_config(), rng};
  OptimizerConfig cfg;
  cfg.learning_rate = 1.0;
  cfg.lr_gamma = 0.5;
  SgdOptimizer opt{cfg};
  EXPECT_DOUBLE_EQ(opt.current_lr(), 1.0);
  opt.end_epoch();
  EXPECT_DOUBLE_EQ(opt.current_lr(), 0.5);
  opt.end_epoch();
  EXPECT_DOUBLE_EQ(opt.current_lr(), 0.25);
}

TEST(Sgd, SkipsFrozenLayers) {
  MlpConfig cfg = tiny_config();
  cfg.hidden = {3};
  cfg.freeze_first_layer = true;
  rngx::Rng rng{5};
  Mlp m{cfg, rng};
  const auto frozen_before = m.weights()[0];
  OptimizerConfig ocfg;
  ocfg.learning_rate = 0.5;
  SgdOptimizer opt{ocfg};
  opt.step(m, unit_gradients(m));
  EXPECT_EQ(m.weights()[0], frozen_before);
  EXPECT_NE(m.weights()[1](0, 0), 0.0);
}

TEST(Adam, FirstStepHasUnitScale) {
  // With bias correction, the very first Adam step is ≈ lr·sign(grad).
  rngx::Rng rng{6};
  Mlp m{tiny_config(), rng};
  const double w0 = m.weights()[0](0, 0);
  OptimizerConfig cfg;
  cfg.learning_rate = 0.01;
  AdamOptimizer opt{cfg};
  opt.step(m, unit_gradients(m));
  EXPECT_NEAR(m.weights()[0](0, 0), w0 - 0.01, 1e-6);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize (w·x − y)² on a fixed batch; Adam should reach near-zero loss.
  MlpConfig mcfg = tiny_config();
  rngx::Rng rng{7};
  Mlp m{mcfg, rng};
  const math::Matrix x{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  const std::vector<double> y{1.0, 2.0, 3.0};
  OptimizerConfig cfg;
  cfg.learning_rate = 0.05;
  AdamOptimizer opt{cfg};
  rngx::Rng drop{8};
  for (int it = 0; it < 1500; ++it) {
    ForwardCache cache;
    math::Matrix grad;
    const auto pred = m.forward_train(x, drop, cache);
    (void)mse_loss(pred, y, grad);
    opt.step(m, m.backward(cache, grad));
  }
  math::Matrix unused;
  const auto pred = m.forward(x);
  EXPECT_NEAR(mse_loss(pred, y, unused), 0.0, 1e-3);
}

TEST(Sgd, ConvergesOnQuadratic) {
  MlpConfig mcfg = tiny_config();
  rngx::Rng rng{9};
  Mlp m{mcfg, rng};
  const math::Matrix x{{1.0, 0.0}, {0.0, 1.0}};
  const std::vector<double> y{0.5, -0.5};
  OptimizerConfig cfg;
  cfg.learning_rate = 0.2;
  cfg.momentum = 0.5;
  SgdOptimizer opt{cfg};
  rngx::Rng drop{10};
  for (int it = 0; it < 300; ++it) {
    ForwardCache cache;
    math::Matrix grad;
    const auto pred = m.forward_train(x, drop, cache);
    (void)mse_loss(pred, y, grad);
    opt.step(m, m.backward(cache, grad));
  }
  math::Matrix unused;
  EXPECT_NEAR(mse_loss(m.forward(x), y, unused), 0.0, 1e-4);
}

}  // namespace
}  // namespace varbench::ml

#include "src/stats/descriptive.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/rngx/rng.h"

namespace varbench::stats {
namespace {

TEST(Descriptive, MeanVarianceStddev) {
  const std::vector<double> x{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(x), 5.0);
  EXPECT_NEAR(variance(x), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(stddev(x), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Descriptive, EmptyThrows) {
  const std::vector<double> empty;
  EXPECT_THROW((void)mean(empty), std::invalid_argument);
  EXPECT_THROW((void)variance(empty), std::invalid_argument);
  EXPECT_THROW((void)quantile(empty, 0.5), std::invalid_argument);
}

TEST(Descriptive, SingleElementVarianceIsZero) {
  const std::vector<double> x{3.0};
  EXPECT_DOUBLE_EQ(variance(x), 0.0);
}

TEST(Descriptive, StandardError) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(standard_error(x), stddev(x) / 2.0, 1e-12);
}

TEST(Descriptive, MinMax) {
  const std::vector<double> x{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_value(x), -1.0);
  EXPECT_DOUBLE_EQ(max_value(x), 7.0);
}

TEST(Quantile, MedianAndInterpolation) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(median(x), 2.5);
  EXPECT_DOUBLE_EQ(quantile(x, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(x, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(x, 0.25), 1.75);  // numpy type-7 convention
}

TEST(Quantile, UnsortedInputHandled) {
  const std::vector<double> x{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(median(x), 5.0);
}

TEST(Quantile, OutOfRangeQThrows) {
  const std::vector<double> x{1.0, 2.0};
  EXPECT_THROW((void)quantile(x, -0.1), std::invalid_argument);
  EXPECT_THROW((void)quantile(x, 1.1), std::invalid_argument);
}

TEST(Covariance, KnownValue) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{2.0, 4.0, 6.0};
  EXPECT_NEAR(covariance(x, y), 2.0, 1e-12);  // cov = 2·var(x) = 2
}

TEST(Pearson, PerfectCorrelations) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{10.0, 20.0, 30.0, 40.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> neg_y{-10.0, -20.0, -30.0, -40.0};
  EXPECT_NEAR(pearson(x, neg_y), -1.0, 1e-12);
}

TEST(Pearson, ConstantInputGivesZero) {
  const std::vector<double> x{1.0, 1.0, 1.0};
  const std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(Pearson, IndependentSamplesNearZero) {
  rngx::Rng rng{5};
  std::vector<double> x(5000);
  std::vector<double> y(5000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    y[i] = rng.normal();
  }
  EXPECT_NEAR(pearson(x, y), 0.0, 0.05);
}

TEST(Ranks, NoTies) {
  const std::vector<double> x{30.0, 10.0, 20.0};
  const auto r = ranks(x);
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_DOUBLE_EQ(r[2], 2.0);
}

TEST(Ranks, TiesGetMidRank) {
  const std::vector<double> x{1.0, 2.0, 2.0, 3.0};
  const auto r = ranks(x);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Ranks, AllTied) {
  const std::vector<double> x{5.0, 5.0, 5.0};
  const auto r = ranks(x);
  for (const double v : r) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(Spearman, MonotoneNonlinearIsOne) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{1.0, 8.0, 27.0, 64.0};  // cubic: monotone
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(StddevOfStddev, Formula) {
  EXPECT_NEAR(stddev_of_stddev(2.0, 51), 2.0 / 10.0, 1e-12);
  EXPECT_DOUBLE_EQ(stddev_of_stddev(2.0, 1), 0.0);
}

TEST(ImpliedCorrelation, InvertsEquation7) {
  // Forward: Var(mean) = V/k + (k−1)/k·ρ·V with V=4, ρ=0.3, k=10.
  const double v = 4.0;
  const double rho = 0.3;
  const std::size_t k = 10;
  const double var_mean = v / k + (k - 1.0) / k * rho * v;
  EXPECT_NEAR(implied_correlation(var_mean, v, k), rho, 1e-12);
}

TEST(ImpliedCorrelation, IndependentGivesZero) {
  // Var(mean) = V/k exactly → ρ = 0.
  EXPECT_NEAR(implied_correlation(0.5, 5.0, 10), 0.0, 1e-12);
}

TEST(ImpliedCorrelation, ClampsToValidRange) {
  EXPECT_LE(implied_correlation(100.0, 1.0, 10), 1.0);
  EXPECT_GE(implied_correlation(0.0, 1.0, 10), -1.0);
}

TEST(Moments, BitIdenticalToSeparatePasses) {
  // The fused kernel feeds report summaries whose rendered output is
  // byte-diffed in CI, so it must match the separate passes exactly —
  // not just to a tolerance.
  rngx::Rng rng{0x5eed};
  std::vector<double> x;
  for (int i = 0; i < 1000; ++i) x.push_back(rng.normal(3.0, 7.0));
  const Moments m = moments(x);
  EXPECT_EQ(m.count, x.size());
  EXPECT_EQ(m.mean, mean(x));
  EXPECT_EQ(m.variance, variance(x));
  EXPECT_EQ(m.stddev, stddev(x));
  EXPECT_EQ(m.min, min_value(x));
  EXPECT_EQ(m.max, max_value(x));
}

TEST(Moments, SingleElementAndEmpty) {
  const std::vector<double> one{3.5};
  const Moments m = moments(one);
  EXPECT_DOUBLE_EQ(m.mean, 3.5);
  EXPECT_DOUBLE_EQ(m.variance, 0.0);
  EXPECT_DOUBLE_EQ(m.min, 3.5);
  EXPECT_DOUBLE_EQ(m.max, 3.5);
  EXPECT_THROW((void)moments(std::vector<double>{}), std::invalid_argument);
}

}  // namespace
}  // namespace varbench::stats

#include "src/core/pipeline.h"

#include <gtest/gtest.h>

#include "src/casestudies/mlp_pipeline.h"
#include "src/ml/synthetic.h"

namespace varbench::core {
namespace {

using casestudies::MlpPipeline;
using casestudies::MlpPipelineSpec;

ml::Dataset tiny_pool() {
  ml::GaussianMixtureConfig cfg;
  cfg.num_classes = 2;
  cfg.dim = 4;
  cfg.n = 250;
  cfg.class_sep = 2.5;
  rngx::Rng rng{1};
  return ml::make_gaussian_mixture(cfg, rng);
}

MlpPipeline tiny_pipeline() {
  MlpPipelineSpec spec;
  spec.name = "tiny";
  spec.base.model.hidden = {6};
  spec.base.epochs = 5;
  spec.base.batch_size = 32;
  spec.space.add({"learning_rate", 0.001, 0.5, hpo::ScaleKind::kLog});
  spec.defaults = {{"learning_rate", 0.1}};
  return MlpPipeline{std::move(spec)};
}

TEST(RunPipelineOnce, DefaultsPathCountsOneFit) {
  const auto pool = tiny_pool();
  const auto pipeline = tiny_pipeline();
  const OutOfBootstrapSplitter splitter{150, 60};
  FitCounter counter;
  const HpoRunConfig cfg;  // no HPO algorithm → defaults
  const rngx::VariationSeeds seeds;
  const double perf =
      run_pipeline_once(pipeline, pool, splitter, cfg, seeds, &counter);
  EXPECT_GT(perf, 0.5);
  EXPECT_LE(perf, 1.0);
  EXPECT_EQ(counter.fits, 1u);
}

TEST(RunPipelineOnce, HpoPathCountsBudgetPlusOne) {
  const auto pool = tiny_pool();
  const auto pipeline = tiny_pipeline();
  const OutOfBootstrapSplitter splitter{150, 60};
  const hpo::RandomSearch algo;
  HpoRunConfig cfg;
  cfg.algorithm = &algo;
  cfg.budget = 7;
  FitCounter counter;
  const rngx::VariationSeeds seeds;
  (void)run_pipeline_once(pipeline, pool, splitter, cfg, seeds, &counter);
  EXPECT_EQ(counter.fits, 8u);  // T trials + final retraining
}

TEST(RunPipelineOnce, ReproducibleWithSameSeeds) {
  const auto pool = tiny_pool();
  const auto pipeline = tiny_pipeline();
  const OutOfBootstrapSplitter splitter{150, 60};
  const HpoRunConfig cfg;
  const rngx::VariationSeeds seeds;
  const double p1 = run_pipeline_once(pipeline, pool, splitter, cfg, seeds);
  const double p2 = run_pipeline_once(pipeline, pool, splitter, cfg, seeds);
  EXPECT_DOUBLE_EQ(p1, p2);
}

TEST(RunPipelineOnce, DataSplitSeedChangesMeasure) {
  const auto pool = tiny_pool();
  const auto pipeline = tiny_pipeline();
  const OutOfBootstrapSplitter splitter{150, 60};
  const HpoRunConfig cfg;
  rngx::VariationSeeds a;
  rngx::VariationSeeds b;
  b.data_split = 777;
  const double pa = run_pipeline_once(pipeline, pool, splitter, cfg, a);
  const double pb = run_pipeline_once(pipeline, pool, splitter, cfg, b);
  // Different splits essentially always give different test sets; the
  // measures may rarely coincide, so compare the seeds' effect over 2 draws.
  rngx::VariationSeeds c;
  c.data_split = 778;
  const double pc = run_pipeline_once(pipeline, pool, splitter, cfg, c);
  EXPECT_TRUE(pa != pb || pa != pc);
}

TEST(RunHpo, ReturnsPointInSpace) {
  const auto pool = tiny_pool();
  const auto pipeline = tiny_pipeline();
  const hpo::RandomSearch algo;
  HpoRunConfig cfg;
  cfg.algorithm = &algo;
  cfg.budget = 5;
  const rngx::VariationSeeds seeds;
  const auto lambda = run_hpo(pipeline, pool, cfg, seeds);
  EXPECT_TRUE(pipeline.search_space().contains(lambda) ||
              lambda.count("learning_rate") == 1);
}

TEST(RunHpo, NullAlgorithmReturnsDefaults) {
  const auto pool = tiny_pool();
  const auto pipeline = tiny_pipeline();
  const HpoRunConfig cfg;
  const rngx::VariationSeeds seeds;
  EXPECT_EQ(run_hpo(pipeline, pool, cfg, seeds), pipeline.default_params());
}

TEST(RunHpo, HpoSeedChangesChosenParams) {
  const auto pool = tiny_pool();
  const auto pipeline = tiny_pipeline();
  const hpo::RandomSearch algo;
  HpoRunConfig cfg;
  cfg.algorithm = &algo;
  cfg.budget = 4;
  rngx::VariationSeeds a;
  rngx::VariationSeeds b;
  b.hpo = 999;
  const auto la = run_hpo(pipeline, pool, cfg, a);
  const auto lb = run_hpo(pipeline, pool, cfg, b);
  EXPECT_NE(la.at("learning_rate"), lb.at("learning_rate"));
}

TEST(RunHpo, BadValidationFractionThrows) {
  const auto pool = tiny_pool();
  const auto pipeline = tiny_pipeline();
  const hpo::RandomSearch algo;
  HpoRunConfig cfg;
  cfg.algorithm = &algo;
  cfg.validation_fraction = 1.5;
  EXPECT_THROW((void)run_hpo(pipeline, pool, cfg, rngx::VariationSeeds{}),
               std::invalid_argument);
}

TEST(MeasureWithParams, UsesProvidedLambda) {
  const auto pool = tiny_pool();
  const auto pipeline = tiny_pipeline();
  const OutOfBootstrapSplitter splitter{150, 60};
  FitCounter counter;
  const rngx::VariationSeeds seeds;
  const double perf = measure_with_params(
      pipeline, pool, splitter, {{"learning_rate", 0.05}}, seeds, &counter);
  EXPECT_GT(perf, 0.4);
  EXPECT_EQ(counter.fits, 1u);
}

}  // namespace
}  // namespace varbench::core

#include "src/compare/error_rates.h"

#include <gtest/gtest.h>

namespace varbench::compare {
namespace {

TaskVarianceProfile demo_profile() {
  TaskVarianceProfile p;
  p.task = "demo";
  p.mu = 0.8;
  p.sigma_ideal = 0.02;
  p.sigma_bias = 0.008;
  p.sigma_within = 0.018;
  return p;
}

std::vector<std::unique_ptr<ComparisonCriterion>> demo_criteria(
    const TaskVarianceProfile& p) {
  std::vector<std::unique_ptr<ComparisonCriterion>> out;
  const double delta = published_improvement_delta(p.sigma_ideal);
  out.push_back(std::make_unique<OracleComparison>(p.sigma_ideal));
  out.push_back(std::make_unique<SinglePointComparison>(delta));
  out.push_back(std::make_unique<AverageComparison>(delta));
  out.push_back(std::make_unique<ProbOutperformCriterion>(0.75, 100));
  return out;
}

TEST(DetectionRates, GridAndShape) {
  const auto p = demo_profile();
  const auto criteria = demo_criteria(p);
  DetectionRateConfig cfg;
  cfg.k = 20;
  cfg.simulations = 30;
  rngx::Rng rng{1};
  const auto curves = characterize_detection_rates(p, EstimatorKind::kIdeal,
                                                   criteria, cfg, rng);
  EXPECT_FALSE(curves.p_grid.empty());
  EXPECT_EQ(curves.rates.size(), 4u);
  for (const auto& [name, rates] : curves.rates) {
    EXPECT_EQ(rates.size(), curves.p_grid.size()) << name;
    for (const double r : rates) {
      EXPECT_GE(r, 0.0);
      EXPECT_LE(r, 1.0);
    }
  }
}

TEST(DetectionRates, OracleRisesWithTrueEffect) {
  const auto p = demo_profile();
  std::vector<std::unique_ptr<ComparisonCriterion>> criteria;
  criteria.push_back(std::make_unique<OracleComparison>(p.sigma_ideal));
  DetectionRateConfig cfg;
  cfg.k = 10;  // small k so power at P=0.75 is not yet saturated
  cfg.simulations = 80;
  cfg.p_grid = {0.5, 0.75, 0.99};
  rngx::Rng rng{2};
  const auto curves = characterize_detection_rates(p, EstimatorKind::kIdeal,
                                                   criteria, cfg, rng);
  const auto& r = curves.rates.at("oracle");
  EXPECT_LT(r[0], 0.2);   // ≈ α at the null
  EXPECT_GT(r[2], 0.95);  // near-perfect power for huge effects
  EXPECT_LT(r[0], r[1]);
  EXPECT_LE(r[1], r[2]);
}

TEST(DetectionRates, AverageIsConservative) {
  // Fig. 6: the δ-thresholded average has low FP at the null AND high FN in
  // the meaningful region (compared to the oracle).
  const auto p = demo_profile();
  std::vector<std::unique_ptr<ComparisonCriterion>> criteria;
  const double delta = published_improvement_delta(p.sigma_ideal);
  criteria.push_back(std::make_unique<AverageComparison>(delta));
  criteria.push_back(std::make_unique<OracleComparison>(p.sigma_ideal));
  DetectionRateConfig cfg;
  cfg.k = 50;
  cfg.simulations = 80;
  cfg.p_grid = {0.5, 0.85};
  rngx::Rng rng{3};
  const auto curves = characterize_detection_rates(p, EstimatorKind::kIdeal,
                                                   criteria, cfg, rng);
  EXPECT_LT(curves.rates.at("average")[0], 0.05 + 0.06);
  EXPECT_LT(curves.rates.at("average")[1], curves.rates.at("oracle")[1]);
}

TEST(DetectionRates, SinglePointNoisierThanAverage) {
  // Single-point comparison has strictly more false positives at the null.
  const auto p = demo_profile();
  std::vector<std::unique_ptr<ComparisonCriterion>> criteria;
  const double delta = published_improvement_delta(p.sigma_ideal);
  criteria.push_back(std::make_unique<SinglePointComparison>(delta));
  criteria.push_back(std::make_unique<AverageComparison>(delta));
  DetectionRateConfig cfg;
  cfg.k = 50;
  cfg.simulations = 300;
  cfg.p_grid = {0.5};
  rngx::Rng rng{4};
  const auto curves = characterize_detection_rates(p, EstimatorKind::kIdeal,
                                                   criteria, cfg, rng);
  EXPECT_GT(curves.rates.at("single_point")[0],
            curves.rates.at("average")[0]);
}

TEST(ClassifyRegion, ThreeZones) {
  EXPECT_EQ(classify_region(0.45, 0.75), TruthRegion::kH0);
  EXPECT_EQ(classify_region(0.5, 0.75), TruthRegion::kH0);
  EXPECT_EQ(classify_region(0.6, 0.75), TruthRegion::kIntermediate);
  EXPECT_EQ(classify_region(0.75, 0.75), TruthRegion::kIntermediate);
  EXPECT_EQ(classify_region(0.9, 0.75), TruthRegion::kH1);
}

TEST(PublishedImprovementDelta, PaperCoefficient) {
  EXPECT_NEAR(published_improvement_delta(0.01), 0.019952, 1e-9);
}

TEST(DetectionRates, NoCriteriaThrows) {
  const auto p = demo_profile();
  const std::vector<std::unique_ptr<ComparisonCriterion>> empty;
  DetectionRateConfig cfg;
  rngx::Rng rng{5};
  EXPECT_THROW((void)characterize_detection_rates(p, EstimatorKind::kIdeal,
                                                  empty, cfg, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace varbench::compare

#include "src/math/matrix.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace varbench::math {
namespace {

TEST(Matrix, DefaultConstructedIsEmpty) {
  const Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, FillConstructor) {
  const Matrix m{2, 3, 1.5};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
}

TEST(Matrix, InitializerListAndAccess) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, RaggedInitializerListThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, DataVectorSizeMismatchThrows) {
  EXPECT_THROW((Matrix{2, 2, std::vector<double>{1.0, 2.0, 3.0}}),
               std::invalid_argument);
}

TEST(Matrix, AdditionSubtraction) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{10.0, 20.0}, {30.0, 40.0}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(1, 1), 44.0);
  const Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(0, 0), 9.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a{2, 2};
  const Matrix b{2, 3};
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
}

TEST(Matrix, ScalarMultiply) {
  const Matrix a{{1.0, -2.0}};
  const Matrix twice = 2.0 * a;
  EXPECT_DOUBLE_EQ(twice(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(twice(0, 1), -4.0);
}

TEST(Matrix, Transposed) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
}

TEST(Matrix, TransposeTwiceIsIdentity) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  EXPECT_EQ(a.transposed().transposed(), a);
}

TEST(Matrix, Matmul) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatmulShapeMismatchThrows) {
  const Matrix a{2, 3};
  const Matrix b{2, 3};
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Matrix, MatmulWithIdentity) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(matmul(a, identity(2)), a);
  EXPECT_EQ(matmul(identity(2), a), a);
}

TEST(Matrix, MatmulNtMatchesExplicitTranspose) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix b{{7.0, 8.0, 9.0}, {1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  EXPECT_EQ(matmul_nt(a, b), matmul(a, b.transposed()));
}

TEST(Matrix, MatmulTnMatchesExplicitTranspose) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const Matrix b{{7.0, 8.0, 9.0}, {1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  EXPECT_EQ(matmul_tn(a, b), matmul(a.transposed(), b));
}

TEST(Matrix, Matvec) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<double> x{1.0, 1.0};
  const auto y = matvec(a, x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, SquaredNorm) {
  const Matrix a{{3.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.squared_norm(), 25.0);
}

TEST(Matrix, RowSpanWritesThrough) {
  Matrix a{2, 2};
  auto row = a.row(1);
  row[0] = 42.0;
  EXPECT_DOUBLE_EQ(a(1, 0), 42.0);
}

TEST(Matrix, Dot) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
}

}  // namespace
}  // namespace varbench::math

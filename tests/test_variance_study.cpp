#include "src/core/variance_study.h"

#include <gtest/gtest.h>

#include "src/casestudies/mlp_pipeline.h"
#include "src/ml/synthetic.h"

namespace varbench::core {
namespace {

using casestudies::MlpPipeline;
using casestudies::MlpPipelineSpec;

ml::Dataset study_pool() {
  ml::GaussianMixtureConfig cfg;
  cfg.num_classes = 2;
  cfg.dim = 4;
  cfg.n = 220;
  cfg.class_sep = 1.3;
  cfg.label_noise = 0.1;
  rngx::Rng rng{1};
  return ml::make_gaussian_mixture(cfg, rng);
}

MlpPipeline study_pipeline(double dropout = 0.2, double jitter = 0.1,
                           double numerical = 0.0) {
  MlpPipelineSpec spec;
  spec.name = "study";
  spec.base.model.hidden = {6};
  spec.base.model.dropout = dropout;
  spec.base.augment.jitter_std = jitter;
  spec.base.numerical_noise_std = numerical;
  spec.base.epochs = 4;
  spec.base.batch_size = 32;
  spec.space.add({"learning_rate", 0.001, 0.5, hpo::ScaleKind::kLog});
  spec.defaults = {{"learning_rate", 0.1}};
  return MlpPipeline{std::move(spec)};
}

TEST(VarianceStudy, ProducesAllLearningSourceRows) {
  const auto pool = study_pool();
  const auto pipeline = study_pipeline();
  const OutOfBootstrapSplitter splitter{120, 60};
  VarianceStudyConfig cfg;
  cfg.repetitions = 6;
  cfg.include_numerical_noise = true;
  rngx::Rng master{2};
  const auto result =
      run_variance_study(pipeline, pool, splitter, cfg, master);
  // 5 ξO rows + 1 numerical row, no HPO rows requested.
  EXPECT_EQ(result.rows.size(), 6u);
  for (const auto& row : result.rows) {
    EXPECT_EQ(row.measures.size(), 6u);
    EXPECT_GE(row.stddev, 0.0);
    EXPECT_FALSE(row.label.empty());
  }
}

TEST(VarianceStudy, NumericalNoiseZeroForDeterministicPipeline) {
  const auto pool = study_pool();
  const auto pipeline = study_pipeline(0.2, 0.1, /*numerical=*/0.0);
  const OutOfBootstrapSplitter splitter{120, 60};
  VarianceStudyConfig cfg;
  cfg.repetitions = 4;
  rngx::Rng master{3};
  const auto result =
      run_variance_study(pipeline, pool, splitter, cfg, master);
  for (const auto& row : result.rows) {
    if (row.source == rngx::VariationSource::kNumerical) {
      EXPECT_DOUBLE_EQ(row.stddev, 0.0);
    }
  }
}

TEST(VarianceStudy, NumericalNoiseNonZeroWhenInjected) {
  const auto pool = study_pool();
  const auto pipeline = study_pipeline(0.0, 0.0, /*numerical=*/0.05);
  const OutOfBootstrapSplitter splitter{120, 60};
  VarianceStudyConfig cfg;
  cfg.repetitions = 6;
  rngx::Rng master{4};
  const auto result =
      run_variance_study(pipeline, pool, splitter, cfg, master);
  for (const auto& row : result.rows) {
    if (row.source == rngx::VariationSource::kNumerical) {
      EXPECT_GT(row.stddev, 0.0);
    }
  }
}

TEST(VarianceStudy, BootstrapStdAccessible) {
  const auto pool = study_pool();
  const auto pipeline = study_pipeline();
  const OutOfBootstrapSplitter splitter{120, 60};
  VarianceStudyConfig cfg;
  cfg.repetitions = 8;
  rngx::Rng master{5};
  const auto result =
      run_variance_study(pipeline, pool, splitter, cfg, master);
  EXPECT_GT(result.bootstrap_std(), 0.0);
}

TEST(VarianceStudy, HpoRowsAppended) {
  const auto pool = study_pool();
  const auto pipeline = study_pipeline();
  const OutOfBootstrapSplitter splitter{120, 60};
  VarianceStudyConfig cfg;
  cfg.repetitions = 3;
  cfg.hpo_algorithms = {"random_search"};
  cfg.hpo_repetitions = 3;
  cfg.hpo_budget = 3;
  cfg.include_numerical_noise = false;
  rngx::Rng master{6};
  const auto result =
      run_variance_study(pipeline, pool, splitter, cfg, master);
  ASSERT_EQ(result.rows.size(), 6u);  // 5 ξO + 1 HPO algorithm
  const auto& hpo_row = result.rows.back();
  EXPECT_EQ(hpo_row.source, rngx::VariationSource::kHpo);
  EXPECT_EQ(hpo_row.label, "random_search");
  EXPECT_EQ(hpo_row.measures.size(), 3u);
}

TEST(VarianceStudy, TooFewRepetitionsThrows) {
  const auto pool = study_pool();
  const auto pipeline = study_pipeline();
  const OutOfBootstrapSplitter splitter{120, 60};
  VarianceStudyConfig cfg;
  cfg.repetitions = 1;
  rngx::Rng master{7};
  EXPECT_THROW(
      (void)run_variance_study(pipeline, pool, splitter, cfg, master),
      std::invalid_argument);
}

}  // namespace
}  // namespace varbench::core

// Schema evolution: readers accept both result_table/campaign v1 (the
// written format) and the reserved-forward v2, whose contract is strict
// tolerance — same layout, but any field this build does not know is
// rejected with a message naming the offending JSON path. Anything newer
// stays an "unsupported schema" error listing both readable versions.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "src/io/json.h"
#include "src/report/artifact.h"
#include "src/study/result_table.h"

namespace varbench::study {
namespace {

namespace fs = std::filesystem;

ResultTable tiny_table() {
  ResultTable t;
  t.name = "schema-evolution-probe";
  t.seed = 7;
  t.columns = {"seq", "measure"};
  t.add_row({Cell{std::size_t{0}}, Cell{0.25}});
  t.add_row({Cell{std::size_t{1}}, Cell{0.75}});
  return t;
}

io::Json as_v2(const ResultTable& t) {
  io::Json doc = t.to_json();
  doc.set("schema", io::Json{"varbench.result_table.v2"});
  return doc;
}

void expect_load_fails_mentioning(const io::Json& doc,
                                  const std::string& needle) {
  try {
    (void)ResultTable::from_json(doc);
    FAIL() << "accepted: " << doc.dump();
  } catch (const io::JsonError& e) {
    EXPECT_NE(std::string{e.what()}.find(needle), std::string::npos)
        << "error '" << e.what() << "' does not mention '" << needle << "'";
  }
}

TEST(SchemaV2, V2ArtifactsLoadLikeV1) {
  const ResultTable t = tiny_table();
  const ResultTable parsed = ResultTable::from_json(as_v2(t));
  EXPECT_EQ(parsed, t);
}

TEST(SchemaV2, UnknownFieldsAreRejectedWithTheirPath) {
  {
    io::Json doc = as_v2(tiny_table());
    doc.set("frobnicate", io::Json{1});
    expect_load_fails_mentioning(doc, "$.frobnicate");
  }
  {
    io::Json doc = as_v2(tiny_table());
    doc.find("meta")->set("future_field", io::Json{"x"});
    expect_load_fails_mentioning(doc, "$.meta.future_field");
  }
  {
    io::Json doc = as_v2(tiny_table());
    doc.find("provenance")->set("hostname", io::Json{"box"});
    expect_load_fails_mentioning(doc, "$.provenance.hostname");
  }
  // v1 keeps its historical leniency: the same extra field loads fine.
  {
    io::Json doc = tiny_table().to_json();
    doc.set("frobnicate", io::Json{1});
    EXPECT_EQ(ResultTable::from_json(doc), tiny_table());
  }
}

TEST(SchemaV2, NewerSchemasStayUnsupportedNamingBothReadableVersions) {
  io::Json doc = tiny_table().to_json();
  doc.set("schema", io::Json{"varbench.result_table.v3"});
  try {
    (void)ResultTable::from_json(doc);
    FAIL() << "accepted v3";
  } catch (const io::JsonError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("result_table.v1"), std::string::npos) << what;
    EXPECT_NE(what.find("result_table.v2"), std::string::npos) << what;
  }
}

// ------------------------------------------------- campaign manifest v2

class TempStateDir {
 public:
  TempStateDir() : path_{fs::temp_directory_path() / "varbench_schema_v2"} {
    fs::remove_all(path_);
    fs::create_directories(path_ / "merged");
  }
  ~TempStateDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

std::string manifest_text(const std::string& schema,
                          const std::string& extra_task_field) {
  return std::string{"{\"schema\": \""} + schema +
         "\", \"shards\": 1, \"max_retries\": 2, \"studies\": "
         "[{\"kind\": \"variance\", \"case_study\": \"cifar10_vgg11\"}], "
         "\"tasks\": [{\"id\": \"s0-0of1\", \"study\": 0, \"shard\": "
         "\"0/1\", \"status\": \"done\", \"attempts\": 1, \"wall_time_ms\": "
         "12.5" +
         extra_task_field + "}]}";
}

TEST(SchemaV2, CampaignManifestV2ReadsAndRejectsUnknownFieldsWithPath) {
  TempStateDir dir;
  io::write_file((dir.path() / "merged" / "probe.json").string(),
                 tiny_table().to_json_text());

  io::write_file((dir.path() / "campaign.json").string(),
                 manifest_text("varbench.campaign.v2", ""));
  const auto loaded = report::load_artifact_dir(dir.path().string());
  ASSERT_TRUE(loaded.provenance.has_value());
  EXPECT_EQ(loaded.provenance->tasks, 1u);

  io::write_file((dir.path() / "campaign.json").string(),
                 manifest_text("varbench.campaign.v2",
                               ", \"gpu_hours\": 3"));
  try {
    (void)report::load_artifact_dir(dir.path().string());
    FAIL() << "accepted unknown manifest field";
  } catch (const io::JsonError& e) {
    EXPECT_NE(std::string{e.what()}.find("$.tasks[].gpu_hours"),
              std::string::npos)
        << e.what();
  }

  io::write_file((dir.path() / "campaign.json").string(),
                 manifest_text("varbench.campaign.v3", ""));
  try {
    (void)report::load_artifact_dir(dir.path().string());
    FAIL() << "accepted v3 manifest";
  } catch (const io::JsonError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("campaign.v1"), std::string::npos) << what;
    EXPECT_NE(what.find("campaign.v2"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace varbench::study

// The fused resampling-kernel contract (src/stats/resample_kernels.h) and
// the streaming VBT writer (src/io/columnar/stream_writer.h):
//   - the ResampleStat/PairedResampleStat fast paths are bit-identical to
//     the std::function overloads evaluating the equivalent statistic;
//   - every rewired statistic is bit-identical at any thread count;
//   - the kernels are allocation-free in steady state (scratch reuse) and
//     account every replicate to stats.resamples;
//   - StreamWriter::finish() and stream_merge_vbt produce the exact bytes
//     of the one-shot encode_vbt path, at any chunk size, including
//     non-divisor tails and every cell encoding.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "src/exec/scratch.h"
#include "src/io/columnar/stream_writer.h"
#include "src/io/columnar/vbt.h"
#include "src/io/json.h"
#include "src/metrics/metrics.h"
#include "src/stats/bootstrap.h"
#include "src/stats/descriptive.h"
#include "src/stats/prob_outperform.h"
#include "src/stats/resample_kernels.h"
#include "src/stats/tests.h"
#include "src/study/result_table.h"

namespace varbench {
namespace {

namespace fs = std::filesystem;

std::vector<double> normal_data(std::size_t n, std::uint64_t seed,
                                double mu = 1.0, double sigma = 0.5) {
  rngx::Rng rng{seed};
  std::vector<double> x(n);
  for (double& v : x) v = rng.normal(mu, sigma);
  return x;
}

// -------------------------------------------- enum path == generic path

TEST(ResampleKernels, PercentileEnumMatchesGenericBitwise) {
  const auto x = normal_data(200, 11);
  rngx::Rng rng_enum{42};
  rngx::Rng rng_gen{42};
  const exec::ExecContext ctx{4};
  const auto via_enum = stats::percentile_bootstrap_ci(
      ctx, x, stats::ResampleStat::kMean, rng_enum, 500);
  const auto via_gen = stats::percentile_bootstrap_ci(
      ctx, x, [](std::span<const double> s) { return stats::mean(s); },
      rng_gen, 500);
  EXPECT_EQ(via_enum, via_gen);  // exact double equality via operator==
  // Both consumed exactly one master draw, so the streams stay in step.
  EXPECT_EQ(rng_enum.next_u64(), rng_gen.next_u64());
}

TEST(ResampleKernels, BcaEnumMatchesGenericBitwise) {
  // n far below kJackknifeLinearThreshold: the exact O(n^2) jackknife
  // regime, where the enum path promises bit-identity.
  const auto x = normal_data(150, 12);
  rngx::Rng rng_enum{43};
  rngx::Rng rng_gen{43};
  const exec::ExecContext ctx{4};
  const auto via_enum = stats::bca_bootstrap_ci(
      ctx, x, stats::ResampleStat::kMean, rng_enum, 400);
  const auto via_gen = stats::bca_bootstrap_ci(
      ctx, x, [](std::span<const double> s) { return stats::mean(s); },
      rng_gen, 400);
  EXPECT_EQ(via_enum, via_gen);
  EXPECT_EQ(rng_enum.next_u64(), rng_gen.next_u64());
}

TEST(ResampleKernels, PairedEnumMatchesGenericBitwise) {
  const auto a = normal_data(120, 13, 1.1);
  const auto b = normal_data(120, 14, 1.0);
  rngx::Rng rng_enum{44};
  rngx::Rng rng_gen{44};
  const exec::ExecContext ctx{4};
  const auto via_enum = stats::paired_percentile_bootstrap_ci(
      ctx, a, b, stats::PairedResampleStat::kWinRate, rng_enum, 300);
  const auto via_gen = stats::paired_percentile_bootstrap_ci(
      ctx, a, b,
      [](std::span<const double> ra, std::span<const double> rb) {
        return stats::probability_of_outperforming(ra, rb);
      },
      rng_gen, 300);
  EXPECT_EQ(via_enum, via_gen);
  EXPECT_EQ(rng_enum.next_u64(), rng_gen.next_u64());
}

TEST(ResampleKernels, BootstrapResampleStillDrawsTheSameIndices) {
  // The copy-returning overload now delegates to the index kernels — the
  // draws must be exactly what the pre-kernel loop produced: one
  // uniform_index(n) per element, in element order.
  const auto x = normal_data(37, 15);
  rngx::Rng rng_delegated{7};
  rngx::Rng rng_manual{7};
  const auto r = stats::bootstrap_resample(x, rng_delegated);
  ASSERT_EQ(r.size(), x.size());
  for (const double v : r) {
    EXPECT_EQ(v, x[rng_manual.uniform_index(x.size())]);
  }
}

TEST(ResampleKernels, FillBootstrapIndicesMatchesUniformIndex) {
  rngx::Rng rng_kernel{99};
  rngx::Rng rng_manual{99};
  std::vector<std::uint32_t> idx(1000);
  stats::kernels::fill_bootstrap_indices(
      rng_kernel, 10, std::span<std::uint32_t>{idx});
  for (const std::uint32_t i : idx) {
    EXPECT_EQ(i, rng_manual.uniform_index(10));
    EXPECT_LT(i, 10u);
  }
}

// ------------------------------------------------------ thread invariance

TEST(ResampleKernels, EveryRewiredStatisticIsThreadCountInvariant) {
  const auto a = normal_data(180, 21, 1.2);
  const auto b = normal_data(180, 22, 1.0);
  const exec::ExecContext serial{1};
  const exec::ExecContext parallel{4};

  {
    rngx::Rng r1{1}, r2{1};
    EXPECT_EQ(stats::percentile_bootstrap_ci(serial, a,
                                             stats::ResampleStat::kMean, r1,
                                             400),
              stats::percentile_bootstrap_ci(parallel, a,
                                             stats::ResampleStat::kMean, r2,
                                             400));
  }
  {
    rngx::Rng r1{2}, r2{2};
    EXPECT_EQ(
        stats::bca_bootstrap_ci(serial, a, stats::ResampleStat::kMean, r1,
                                400),
        stats::bca_bootstrap_ci(parallel, a, stats::ResampleStat::kMean, r2,
                                400));
  }
  {
    rngx::Rng r1{3}, r2{3};
    EXPECT_EQ(stats::paired_percentile_bootstrap_ci(
                  serial, a, b, stats::PairedResampleStat::kWinRate, r1, 400),
              stats::paired_percentile_bootstrap_ci(
                  parallel, a, b, stats::PairedResampleStat::kWinRate, r2,
                  400));
  }
  {
    rngx::Rng r1{4}, r2{4};
    EXPECT_EQ(stats::permutation_test_mean_diff(serial, a, b, r1, 500),
              stats::permutation_test_mean_diff(parallel, a, b, r2, 500));
  }
  {
    rngx::Rng r1{5}, r2{5};
    EXPECT_EQ(stats::paired_permutation_test(serial, a, b, r1, 500),
              stats::paired_permutation_test(parallel, a, b, r2, 500));
  }
  {
    rngx::Rng r1{6}, r2{6};
    const auto s = stats::test_probability_of_outperforming(serial, a, b, r1);
    const auto p =
        stats::test_probability_of_outperforming(parallel, a, b, r2);
    EXPECT_EQ(s.p_a_greater_b, p.p_a_greater_b);
    EXPECT_EQ(s.ci, p.ci);
    EXPECT_EQ(s.conclusion, p.conclusion);
  }
}

// ---------------------------------------------------- jackknife regimes

TEST(ResampleKernels, JackknifeExactRegimeMatchesNaiveLeaveOneOut) {
  const auto x = normal_data(33, 31);
  ASSERT_LT(x.size(), stats::kernels::kJackknifeLinearThreshold);
  std::vector<double> loo(x.size(), 0.0);
  stats::kernels::jackknife_mean_loo(exec::ExecContext{3}, x, loo);
  for (std::size_t i = 0; i < x.size(); ++i) {
    double sum = 0.0;  // the fold-left order mean(rest) uses
    for (std::size_t j = 0; j < x.size(); ++j) {
      if (j != i) sum += x[j];
    }
    EXPECT_EQ(loo[i], sum / static_cast<double>(x.size() - 1)) << i;
  }
}

TEST(ResampleKernels, JackknifeLinearRegimeIsDeterministicAndAccurate) {
  const std::size_t n = stats::kernels::kJackknifeLinearThreshold;
  const auto x = normal_data(n, 32);
  std::vector<double> serial(n, 0.0);
  std::vector<double> parallel(n, 0.0);
  stats::kernels::jackknife_mean_loo(exec::ExecContext{1}, x, serial);
  stats::kernels::jackknife_mean_loo(exec::ExecContext{4}, x, parallel);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << i;  // thread-invariant bits
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) sum += x[j];
    }
    // The prefix/suffix decomposition may differ from the fold in the
    // last ulps — that regime trades exact fold order for O(n).
    EXPECT_NEAR(serial[i], sum / static_cast<double>(n - 1), 1e-9) << i;
  }
}

// ------------------------------------------- scratch + metric accounting

TEST(ResampleKernels, ScratchReuseReachesSteadyState) {
  const auto x = normal_data(256, 41);
  const exec::ExecContext serial{1};  // inline: leases land on this thread
  rngx::Rng warm{50};
  (void)stats::percentile_bootstrap_ci(serial, x, stats::ResampleStat::kMean,
                                       warm, 200);
  const std::size_t idx_before = exec::scratch_allocations<std::uint32_t>();
  const std::size_t dbl_before = exec::scratch_allocations<double>();
  for (int round = 0; round < 3; ++round) {
    rngx::Rng rng{51};
    (void)stats::percentile_bootstrap_ci(serial, x,
                                         stats::ResampleStat::kMean, rng, 200);
  }
  EXPECT_EQ(exec::scratch_allocations<std::uint32_t>(), idx_before);
  EXPECT_EQ(exec::scratch_allocations<double>(), dbl_before);
}

TEST(ResampleKernels, StatsResamplesCountsEveryReplicate) {
  metrics::Sink sink;
  sink.enable(metrics::kStatsResamples);
  exec::ExecContext ctx{2};
  ctx.metrics = &sink;
  const auto a = normal_data(64, 42);
  const auto b = normal_data(64, 43);

  rngx::Rng rng{60};
  (void)stats::percentile_bootstrap_ci(ctx, a, stats::ResampleStat::kMean,
                                       rng, 257);
  auto snap = sink.snapshot();
  ASSERT_NE(snap.find(metrics::kStatsResamples), nullptr);
  EXPECT_EQ(snap.find(metrics::kStatsResamples)->count, 257u);

  sink.reset();
  (void)stats::permutation_test_mean_diff(ctx, a, b, rng, 123);
  snap = sink.snapshot();
  EXPECT_EQ(snap.find(metrics::kStatsResamples)->count, 123u);

  sink.reset();
  (void)stats::paired_permutation_test(ctx, a, b, rng, 77);
  snap = sink.snapshot();
  EXPECT_EQ(snap.find(metrics::kStatsResamples)->count, 77u);
}

// ------------------------------------------------- streaming VBT writer

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("varbench_stream_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  static inline int counter_ = 0;
  fs::path dir_;
};

/// Rows covering every encoding the writer elects: f64, i64 (negatives),
/// u64 (above INT64_MAX), string-dict, and mixed (nulls, bools, several
/// number kinds, strings).
study::ResultTable all_types_table(std::size_t rows) {
  study::ResultTable t;
  t.name = "stream:all_types";
  t.seed = 77;
  t.wall_time_ms = 12.5;
  t.columns = {"seq", "measure", "delta", "big", "label", "mixed"};
  for (std::size_t i = 0; i < rows; ++i) {
    study::Cell mixed;
    switch (i % 5) {
      case 0: mixed = study::Cell{}; break;
      case 1: mixed = study::Cell{i % 2 == 0}; break;
      case 2: mixed = study::Cell{0.25 * static_cast<double>(i)}; break;
      case 3: mixed = study::Cell{std::int64_t{-9} - std::int64_t(i)}; break;
      default:
        mixed = study::Cell{std::string{"mix-"} + std::to_string(i % 7)};
    }
    t.add_row({study::Cell{std::uint64_t{i}},
               study::Cell{0.5 + 0.125 * static_cast<double>(i)},
               study::Cell{std::int64_t{-3} * std::int64_t(i)},
               study::Cell{(std::uint64_t{1} << 63) + i},
               study::Cell{std::string{i % 3 == 0 ? "fizz" : "buzz"}},
               std::move(mixed)});
  }
  return t;
}

TEST(StreamWriter, ByteIdenticalToOneShotEncodeAtEveryChunkSize) {
  const TempDir tmp;
  const auto table = all_types_table(23);
  for (const bool provenance : {true, false}) {
    const std::string golden = io::columnar::encode_vbt(table, provenance);
    // 1 and 23 divide nothing interesting; 3, 7 leave tails (23 = 7*3+2);
    // 64 > rows keeps everything in memory (no spill at all).
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                    std::size_t{7}, std::size_t{23},
                                    std::size_t{64}}) {
      const std::string out = tmp.path(
          "t_" + std::to_string(chunk) + (provenance ? "_p" : "_c") + ".vbt");
      io::columnar::StreamWriter writer{out, table, provenance, chunk};
      for (const study::Row& row : table.rows) writer.append(row);
      writer.finish();
      EXPECT_EQ(io::read_file(out), golden)
          << "chunk " << chunk << " provenance " << provenance;
      EXPECT_FALSE(fs::exists(out + ".spill")) << chunk;
    }
  }
}

TEST(StreamWriter, EmptyTableMatchesOneShotEncode) {
  const TempDir tmp;
  study::ResultTable t;
  t.name = "stream:empty";
  t.seed = 3;
  t.columns = {"seq", "measure"};
  const std::string out = tmp.path("empty.vbt");
  io::columnar::StreamWriter writer{out, t, /*include_provenance=*/false};
  writer.finish();
  EXPECT_EQ(io::read_file(out), io::columnar::encode_vbt(t, false));
}

TEST(StreamWriter, CountsFlushedChunks) {
  const TempDir tmp;
  metrics::Sink& sink = metrics::global_sink();
  sink.enable(metrics::kIoStreamChunks);
  sink.reset();
  const auto table = all_types_table(10);
  io::columnar::StreamWriter writer{tmp.path("chunks.vbt"), table,
                                    /*include_provenance=*/false, 4};
  for (const study::Row& row : table.rows) writer.append(row);
  writer.finish();
  const auto snap = sink.snapshot();
  ASSERT_NE(snap.find(metrics::kIoStreamChunks), nullptr);
  // 10 rows at chunk 4: two spilled chunks plus the in-memory tail.
  EXPECT_EQ(snap.find(metrics::kIoStreamChunks)->count, 3u);
  sink.disable(metrics::kIoStreamChunks);
}

TEST(StreamWriter, AbortWithoutFinishLeavesNothingBehind) {
  const TempDir tmp;
  const auto table = all_types_table(6);
  const std::string out = tmp.path("aborted.vbt");
  {
    io::columnar::StreamWriter writer{out, table,
                                      /*include_provenance=*/true, 2};
    for (const study::Row& row : table.rows) writer.append(row);
    // no finish(): destructor must clean up the spill and partial output
  }
  EXPECT_FALSE(fs::exists(out));
  EXPECT_FALSE(fs::exists(out + ".spill"));
}

TEST(StreamWriter, RejectsWrongArityAndDoubleFinish) {
  const TempDir tmp;
  const auto table = all_types_table(2);
  io::columnar::StreamWriter writer{tmp.path("bad.vbt"), table};
  EXPECT_THROW(writer.append({study::Cell{std::uint64_t{0}}}), io::JsonError);
  writer.append(table.rows[0]);
  writer.finish();
  EXPECT_THROW(writer.finish(), io::JsonError);
  EXPECT_THROW(writer.append(table.rows[1]), io::JsonError);
}

// ------------------------------------------------------ streaming merge

/// Slice `full` into `count` seq-striped shards (row i goes to shard
/// i % count), each seq-sorted — the shape study runners emit.
std::vector<study::ResultTable> stripe_shards(const study::ResultTable& full,
                                              std::size_t count) {
  std::vector<study::ResultTable> shards(count);
  for (std::size_t s = 0; s < count; ++s) {
    shards[s].name = full.name;
    shards[s].seed = full.seed;
    shards[s].columns = full.columns;
    shards[s].shard = study::ShardSpec{s, count};
    shards[s].wall_time_ms = 1.5 * static_cast<double>(s + 1);
    shards[s].threads = s + 1;
  }
  for (std::size_t i = 0; i < full.rows.size(); ++i) {
    shards[i % count].rows.push_back(full.rows[i]);
  }
  return shards;
}

TEST(StreamMerge, ByteIdenticalToInMemoryMergePlusEncode) {
  const TempDir tmp;
  const auto full = all_types_table(29);
  auto shards = stripe_shards(full, 3);
  std::vector<std::string> paths;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    paths.push_back(tmp.path("shard" + std::to_string(s) + ".vbt"));
    io::columnar::write_vbt(paths.back(), shards[s]);
  }
  const auto merged = study::merge_result_tables(std::move(shards));
  for (const bool provenance : {false, true}) {
    const std::string out =
        tmp.path(provenance ? "merged_p.vbt" : "merged_c.vbt");
    // Chunk 5 leaves a 29 % 5 tail on the merged stream.
    io::columnar::stream_merge_vbt(paths, out, provenance, 5);
    EXPECT_EQ(io::read_file(out), io::columnar::encode_vbt(merged, provenance))
        << "provenance " << provenance;
  }
}

TEST(StreamMerge, UnsortedShardFallsBackToInMemoryPathSameBytes) {
  const TempDir tmp;
  const auto full = all_types_table(12);
  auto shards = stripe_shards(full, 2);
  // Reverse one shard's rows: seq now descends, forcing the sort path.
  std::reverse(shards[1].rows.begin(), shards[1].rows.end());
  std::vector<std::string> paths;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    paths.push_back(tmp.path("u" + std::to_string(s) + ".vbt"));
    io::columnar::write_vbt(paths.back(), shards[s]);
  }
  const auto merged = study::merge_result_tables(std::move(shards));
  const std::string out = tmp.path("merged_u.vbt");
  io::columnar::stream_merge_vbt(paths, out, /*include_provenance=*/false);
  EXPECT_EQ(io::read_file(out),
            io::columnar::encode_vbt(merged, /*include_provenance=*/false));
}

TEST(StreamMerge, RejectsIncompleteShardSets) {
  const TempDir tmp;
  const auto full = all_types_table(8);
  auto shards = stripe_shards(full, 2);
  const std::string p0 = tmp.path("only0.vbt");
  io::columnar::write_vbt(p0, shards[0]);
  try {
    io::columnar::stream_merge_vbt({p0}, tmp.path("nope.vbt"));
    FAIL() << "incomplete shard set must throw";
  } catch (const io::JsonError& e) {
    EXPECT_NE(std::string{e.what()}.find("merge: got 1 tables"),
              std::string::npos)
        << e.what();
  }
  EXPECT_FALSE(fs::exists(tmp.path("nope.vbt")));
}

}  // namespace
}  // namespace varbench

#include "src/compare/criteria.h"

#include <gtest/gtest.h>

namespace varbench::compare {
namespace {

std::vector<double> shifted(std::size_t n, double mu, double sigma,
                            rngx::Rng& rng) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.normal(mu, sigma);
  return v;
}

TEST(SinglePoint, UsesOnlyFirstElement) {
  rngx::Rng rng{1};
  const SinglePointComparison c{0.1};
  EXPECT_TRUE(c.detects(std::vector<double>{1.0, -99.0},
                        std::vector<double>{0.0, 99.0}, rng));
  EXPECT_FALSE(c.detects(std::vector<double>{0.05}, std::vector<double>{0.0},
                         rng));
}

TEST(Average, ThresholdRespected) {
  rngx::Rng rng{2};
  const AverageComparison c{0.5};
  const std::vector<double> a{1.0, 1.2, 0.8};
  const std::vector<double> b{0.2, 0.4, 0.3};
  EXPECT_TRUE(c.detects(a, b, rng));  // mean diff = 0.7 > 0.5
  const AverageComparison strict{0.8};
  EXPECT_FALSE(strict.detects(a, b, rng));
}

TEST(ProbOutperform, DetectsClearWinner) {
  rngx::Rng data{3};
  const auto a = shifted(50, 1.0, 0.2, data);
  const auto b = shifted(50, 0.0, 0.2, data);
  rngx::Rng rng{4};
  const ProbOutperformCriterion c;
  EXPECT_TRUE(c.detects(a, b, rng));
}

TEST(ProbOutperform, IgnoresTinyMeaninglessShift) {
  rngx::Rng data{5};
  const auto a = shifted(2000, 0.05, 1.0, data);
  const auto b = shifted(2000, 0.0, 1.0, data);
  rngx::Rng rng{6};
  const ProbOutperformCriterion c{0.75, 300};
  EXPECT_FALSE(c.detects(a, b, rng));  // significant maybe, meaningful no
}

TEST(Oracle, ControlsAlphaUnderNull) {
  rngx::Rng master{7};
  const OracleComparison oracle{1.0, 0.05};
  int detections = 0;
  constexpr int rounds = 1000;
  for (int i = 0; i < rounds; ++i) {
    const auto a = shifted(20, 0.0, 1.0, master);
    const auto b = shifted(20, 0.0, 1.0, master);
    if (oracle.detects(a, b, master)) ++detections;
  }
  EXPECT_NEAR(static_cast<double>(detections) / rounds, 0.05, 0.025);
}

TEST(Oracle, NearPerfectPowerForLargeShift) {
  rngx::Rng master{8};
  const OracleComparison oracle{1.0, 0.05};
  int detections = 0;
  constexpr int rounds = 200;
  for (int i = 0; i < rounds; ++i) {
    const auto a = shifted(20, 2.0, 1.0, master);
    const auto b = shifted(20, 0.0, 1.0, master);
    if (oracle.detects(a, b, master)) ++detections;
  }
  EXPECT_GT(static_cast<double>(detections) / rounds, 0.99);
}

TEST(Criteria, NamesAreStable) {
  EXPECT_EQ(SinglePointComparison{0.1}.name(), "single_point");
  EXPECT_EQ(AverageComparison{0.1}.name(), "average");
  EXPECT_EQ(ProbOutperformCriterion{}.name(), "prob_outperforming");
  EXPECT_EQ((OracleComparison{1.0}).name(), "oracle");
}

TEST(Criteria, EmptyInputsThrow) {
  rngx::Rng rng{9};
  const std::vector<double> empty;
  const std::vector<double> one{1.0};
  EXPECT_THROW((void)SinglePointComparison{0.0}.detects(empty, one, rng),
               std::invalid_argument);
  EXPECT_THROW((void)AverageComparison{0.0}.detects(empty, one, rng),
               std::invalid_argument);
  EXPECT_THROW((void)OracleComparison{1.0}.detects(one, empty, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace varbench::compare

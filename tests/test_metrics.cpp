// The metrics-layer contract (docs/metrics.md): dense stable ids with
// collision-rejecting registration, a disabled path that allocates
// nothing and calls nothing, integer log2 histogram goldens, shard merges
// that are bit-identical at any thread count, metrics-as-provenance
// (enabling metrics never changes study artifact bytes), the snapshot →
// ResultTable → report bridge, and the perf-trajectory gate's regression
// arithmetic.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/exec/exec_context.h"
#include "src/exec/parallel_for.h"
#include "src/io/json.h"
#include "src/metrics/metrics.h"
#include "src/metrics/stopwatch.h"
#include "src/metrics/table.h"
#include "src/metrics/trajectory.h"
#include "src/report/render.h"
#include "src/report/summary.h"
#include "src/rngx/rng.h"
#include "src/study/result_table.h"
#include "src/study/study_runner.h"
#include "src/study/study_spec.h"

namespace varbench::metrics {
namespace {

namespace fs = std::filesystem;

fs::path temp_dir(const std::string& leaf) {
  const fs::path dir = fs::temp_directory_path() / leaf;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ----------------------------------------------------------- registry

TEST(MetricsRegistry, BuiltinIdsAreIndices) {
  const auto& defs = metric_defs();
  ASSERT_GE(defs.size(), static_cast<std::size_t>(kNumBuiltinMetrics));
  EXPECT_EQ(metric_id("exec.parallel_regions"), kExecRegions);
  EXPECT_EQ(metric_id("exec.queue_wait_ns"), kExecQueueWaitNs);
  EXPECT_EQ(metric_id("campaign.claim_to_start_ns"), kCampaignClaimToStartNs);
  EXPECT_EQ(metric_id("io.vbt_materialize_ns"), kIoMaterializeNs);
  // Every def's name resolves back to its index — the id contract.
  for (std::size_t i = 0; i < defs.size(); ++i) {
    EXPECT_EQ(metric_id(defs[i].name), static_cast<MetricId>(i));
  }
  EXPECT_THROW((void)metric_id("exec.no_such_metric"), std::invalid_argument);
}

TEST(MetricsRegistry, RegisterMetricRejectsCollisions) {
  MetricDef def;
  def.name = "test.extension_metric";
  def.subsystem = "test";
  def.unit = "count";
  def.kind = MetricKind::kCounter;
  const MetricId id = register_metric(def);
  EXPECT_EQ(id, static_cast<MetricId>(num_metrics() - 1));
  EXPECT_EQ(metric_id("test.extension_metric"), id);
  // Same extension name again, and a builtin name: both ambiguous.
  EXPECT_THROW(register_metric(def), std::invalid_argument);
  MetricDef builtin_clash = def;
  builtin_clash.name = "exec.chunks";
  EXPECT_THROW(register_metric(builtin_clash), std::invalid_argument);
}

// ---------------------------------------------------- histogram geometry

TEST(MetricsBins, Log2BinGoldens) {
  // Bin 0 holds value 0; bin i>=1 holds [2^(i-1), 2^i).
  EXPECT_EQ(bin_index(0), 0u);
  EXPECT_EQ(bin_index(1), 1u);
  EXPECT_EQ(bin_index(2), 2u);
  EXPECT_EQ(bin_index(3), 2u);
  EXPECT_EQ(bin_index(4), 3u);
  EXPECT_EQ(bin_index(1023), 10u);
  EXPECT_EQ(bin_index(1024), 11u);
  EXPECT_EQ(bin_index(std::uint64_t{1} << 40), 41u);
  EXPECT_EQ(bin_index(~std::uint64_t{0}), kNumBins - 1);

  EXPECT_EQ(bin_upper(0), 0u);
  EXPECT_EQ(bin_upper(1), 1u);
  EXPECT_EQ(bin_upper(2), 3u);
  EXPECT_EQ(bin_upper(10), 1023u);
  EXPECT_EQ(bin_upper(kNumBins - 1), ~std::uint64_t{0});
}

TEST(MetricsBins, PercentileUpperGoldens) {
  Sink sink;
  sink.enable(kExecChunkSize);
  for (const std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1},
                                std::uint64_t{2}, std::uint64_t{3},
                                std::uint64_t{4}, std::uint64_t{1023},
                                std::uint64_t{1024}, std::uint64_t{1} << 40}) {
    sink.observe(kExecChunkSize, v);
  }
  const Snapshot snap = sink.snapshot();
  const MetricSnapshot* m = snap.find(kExecChunkSize);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 8u);
  EXPECT_EQ(m->sum, 2057u + (std::uint64_t{1} << 40));
  // Rank ceil(p * 8) walks the cumulative bins: 1,2,4,5,6,7,8.
  EXPECT_EQ(m->percentile_upper(0.0), 0u);
  EXPECT_EQ(m->percentile_upper(0.5), 3u);    // rank 4 → bin 2
  EXPECT_EQ(m->percentile_upper(0.75), 1023u);  // rank 6 → bin 10
  EXPECT_EQ(m->percentile_upper(0.9),
            (std::uint64_t{1} << 41) - 1);  // rank 8 → bin 41
}

// ------------------------------------------------------- disabled path

TEST(MetricsSink, DisabledPathAllocatesNothingAndDefersWork) {
  Sink sink;  // all metrics disabled
  bool lazy_called = false;
  for (int i = 0; i < 1000; ++i) {
    sink.add(kExecChunks);
    sink.observe(kExecChunkSize, 17);
    sink.observe_lazy(kExecQueueWaitNs, [&] {
      lazy_called = true;
      return std::uint64_t{1};
    });
    const ScopedTimer timer{sink, kExecChunkRunNs};
  }
  EXPECT_FALSE(lazy_called);
  EXPECT_EQ(sink.allocated_shards(), 0u);  // no shard was ever touched
  EXPECT_FALSE(sink.any_enabled());
  EXPECT_TRUE(sink.snapshot().empty());
}

TEST(MetricsSink, EnableSelectionBySubsystemNameAndAll) {
  Sink sink;
  enable_selection(sink, "exec");
  for (MetricId id = 0; id < kNumBuiltinMetrics; ++id) {
    EXPECT_EQ(sink.is_enabled(id), metric_defs()[id].subsystem == "exec");
  }
  enable_selection(sink, "none");
  EXPECT_FALSE(sink.any_enabled());
  enable_selection(sink, "io.vbt_bytes_mapped,campaign");
  EXPECT_TRUE(sink.is_enabled(kIoBytesMapped));
  EXPECT_FALSE(sink.is_enabled(kIoTablesMapped));
  EXPECT_TRUE(sink.is_enabled(kCampaignTaskRetries));
  enable_selection(sink, "all");
  EXPECT_TRUE(sink.is_enabled(kExecChunks));
  EXPECT_THROW(enable_selection(sink, "nonesuch"), std::invalid_argument);
}

TEST(MetricsSink, CounterTotalsAndZeroCountEnabledMetrics) {
  Sink sink;
  sink.enable(kExecRegions);
  sink.enable(kExecTasksSubmitted);  // enabled, never recorded
  sink.add(kExecRegions);
  sink.add(kExecRegions, 4);
  const Snapshot snap = sink.snapshot();
  ASSERT_EQ(snap.metrics.size(), 2u);
  // Fixed id order, zero-count entries included.
  EXPECT_EQ(snap.metrics[0].id, static_cast<MetricId>(kExecRegions));
  EXPECT_EQ(snap.metrics[0].count, 2u);
  EXPECT_EQ(snap.metrics[0].sum, 5u);
  EXPECT_EQ(snap.metrics[1].id, static_cast<MetricId>(kExecTasksSubmitted));
  EXPECT_EQ(snap.metrics[1].count, 0u);

  sink.reset();
  const Snapshot after = sink.snapshot();
  const MetricSnapshot* cleared = after.find(kExecRegions);
  ASSERT_NE(cleared, nullptr);
  EXPECT_EQ(cleared->count, 0u);
}

TEST(MetricsSink, ScopedTimerRecordsOnlyWhenEnabled) {
  Sink sink;
  sink.enable(kExecChunkRunNs);
  {
    const ScopedTimer timer{sink, kExecChunkRunNs};
    volatile double acc = 0.0;
    for (int i = 0; i < 10000; ++i) acc = acc + 1.0;
  }
  const Snapshot snap = sink.snapshot();
  const MetricSnapshot* m = snap.find(kExecChunkRunNs);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 1u);
  EXPECT_GT(m->sum, 0u);
}

// ------------------------------------------------- deterministic merge

TEST(MetricsSink, ShardMergeIsThreadCountInvariant) {
  // Record a fixed multiset of observations from a parallel_for region at
  // 1 / 2 / 8 threads. The merged snapshot must be bitwise identical:
  // integer accumulators commute, so interleaving cannot matter. The
  // recorded metric is one parallel_for does not itself touch, so only
  // the test's own observations land in it.
  constexpr std::size_t kN = 20'000;
  std::array<MetricSnapshot, 3> merged;
  const std::array<std::size_t, 3> thread_counts{1, 2, 8};
  for (std::size_t t = 0; t < thread_counts.size(); ++t) {
    Sink sink;
    sink.enable(kCampaignClaimToStartNs);
    exec::ExecContext ctx{thread_counts[t]};
    ctx.metrics = &sink;
    exec::parallel_for(ctx, 0, kN, [&](std::size_t i) {
      sink.observe(kCampaignClaimToStartNs, (i * i) % 4099);
    });
    const Snapshot snap = sink.snapshot();
    const MetricSnapshot* m = snap.find(kCampaignClaimToStartNs);
    ASSERT_NE(m, nullptr);
    merged[t] = *m;
  }
  for (std::size_t t = 1; t < merged.size(); ++t) {
    EXPECT_EQ(merged[t].count, merged[0].count);
    EXPECT_EQ(merged[t].sum, merged[0].sum);
    EXPECT_EQ(merged[t].bins, merged[0].bins);
  }
}

TEST(MetricsSink, ParallelForInstrumentationCoversAllIndices) {
  Sink sink;
  enable_selection(sink, "exec");
  exec::ExecContext ctx{4};
  ctx.metrics = &sink;
  constexpr std::size_t kN = 10'000;
  std::vector<std::uint8_t> hit(kN, 0);
  exec::parallel_for(ctx, 0, kN, [&](std::size_t i) { hit[i] = 1; });
  const Snapshot snap = sink.snapshot();
  const MetricSnapshot* chunks = snap.find(kExecChunks);
  const MetricSnapshot* sizes = snap.find(kExecChunkSize);
  ASSERT_NE(chunks, nullptr);
  ASSERT_NE(sizes, nullptr);
  EXPECT_GT(chunks->count, 0u);
  // Chunk sizes partition the index range exactly.
  EXPECT_EQ(sizes->sum, kN);
  for (const std::uint8_t h : hit) EXPECT_EQ(h, 1);
}

// -------------------------------------- metrics are provenance, not identity

TEST(MetricsDeterminism, EnablingMetricsNeverChangesArtifactBytes) {
  study::StudySpec spec;
  spec.kind = study::StudyKind::kVariance;
  spec.case_study = "cifar10_vgg11";
  spec.scale = 0.08;
  spec.seed = 20260808;
  spec.repetitions = 3;
  spec.variance.hpo_algorithms = {"random_search"};
  spec.variance.hpo_repetitions = 2;
  spec.variance.hpo_budget = 2;

  global_sink().disable_all();
  global_sink().reset();
  const std::string off = run_study(spec).canonical_text();

  global_sink().enable_all();
  const std::string on = run_study(spec).canonical_text();
  const Snapshot snap = global_sink().snapshot();
  const MetricSnapshot* regions = snap.find(kExecRegions);
  const bool recorded = regions != nullptr && regions->count > 0;
  global_sink().disable_all();
  global_sink().reset();

  EXPECT_TRUE(recorded);  // the instrumented hot paths actually fired
  EXPECT_EQ(off, on);     // ...and perturbed zero identity bytes
}

// ------------------------------------------- snapshot → ResultTable → report

TEST(MetricsTable, SnapshotRendersAsCanonicalResultTable) {
  Sink sink;
  sink.enable(kExecRegions);
  sink.enable(kExecChunkSize);
  sink.add(kExecRegions, 2);
  for (std::uint64_t v = 1; v <= 64; ++v) sink.observe(kExecChunkSize, v);

  const study::ResultTable table = to_result_table(sink.snapshot(), "metrics:test");
  const std::vector<std::string> want_columns{
      "seq",   "metric", "subsystem", "kind", "unit", "count",
      "sum",   "mean",   "p50",       "p90",  "p99"};
  EXPECT_EQ(table.columns, want_columns);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_TRUE(table.is_complete());

  const fs::path dir = temp_dir("varbench-test-metrics-table");
  const std::string path = (dir / "metrics.json").string();
  table.save(path);
  const study::ResultTable loaded = study::ResultTable::load(path);
  EXPECT_EQ(loaded.canonical_text(), table.canonical_text());

  // The stock report pipeline summarizes and renders it like any artifact.
  const report::LoadedArtifact artifact = report::load_artifact(path);
  report::ReportSpec rspec;
  const report::Report rep =
      report::summarize(exec::ExecContext{1}, artifact, rspec);
  EXPECT_FALSE(rep.columns.empty());
  const std::string text = report::render(rep, report::Format::kText);
  EXPECT_NE(text.find("count"), std::string::npos);
  fs::remove_all(dir);
}

// ------------------------------------------------------ trajectory + gate

TEST(MetricsTrajectory, LoadAppendSaveRoundtrip) {
  const fs::path dir = temp_dir("varbench-test-metrics-traj");
  const std::string path = (dir / "BENCH_test.json").string();

  Trajectory t = Trajectory::load(path);  // missing file = first run
  EXPECT_TRUE(t.rows().empty());
  EXPECT_EQ(t.best_ns("exec.parallel_for"), 0u);

  TrajectoryRow row;
  row.bench = "exec.parallel_for";
  row.unit = "ns";
  row.min_ns = 120'000;
  row.repeats = 5;
  row.version = "0.8.0";
  row.label = "test";
  t.append(row);
  row.min_ns = 90'000;
  t.append(row);
  t.save(path);

  const Trajectory back = Trajectory::load(path);
  ASSERT_EQ(back.rows().size(), 2u);
  EXPECT_EQ(back.rows()[0].min_ns, 120'000u);
  EXPECT_EQ(back.rows()[1].label, "test");
  EXPECT_EQ(back.best_ns("exec.parallel_for"), 90'000u);
  fs::remove_all(dir);
}

TEST(MetricsTrajectory, GateFlagsOnlyRealRegressions) {
  Trajectory prior;
  TrajectoryRow base;
  base.bench = "exec.parallel_for";
  base.unit = "ns";
  base.min_ns = 100'000;
  base.repeats = 5;
  prior.append(base);

  const auto check_one = [&](std::uint64_t fresh_ns) {
    TrajectoryRow fresh = base;
    fresh.min_ns = fresh_ns;
    const auto checks = gate_checks(prior, {fresh});
    EXPECT_EQ(checks.size(), 1u);
    return checks.at(0);
  };

  EXPECT_FALSE(check_one(100'000).regressed);  // flat
  EXPECT_FALSE(check_one(140'000).regressed);  // inside the 1.5x band
  EXPECT_TRUE(check_one(200'000).regressed);   // the injected-2x case
  EXPECT_DOUBLE_EQ(check_one(200'000).ratio, 2.0);

  // Over threshold but under the absolute-noise floor: jitter, not a
  // regression.
  Trajectory tiny_prior;
  TrajectoryRow tiny = base;
  tiny.bench = "campaign.heartbeat";
  tiny.min_ns = 2'000;
  tiny_prior.append(tiny);
  tiny.min_ns = 5'000;  // 2.5x, but only +3us
  EXPECT_FALSE(gate_checks(tiny_prior, {tiny}).at(0).regressed);

  // A brand-new bench has no history: recorded, never gated.
  TrajectoryRow fresh_bench = base;
  fresh_bench.bench = "exec.new_bench";
  const auto novel = gate_checks(prior, {fresh_bench});
  EXPECT_EQ(novel.at(0).best_ns, 0u);
  EXPECT_FALSE(novel.at(0).regressed);
}

TEST(MetricsTrajectory, EmptyHistoryFileIsAFirstRunNotACrash) {
  // A trajectory file that exists but is empty (interrupted first write,
  // `touch`ed by CI cache priming) must behave exactly like a missing one:
  // load empty, gate nothing, accept a fresh baseline.
  const fs::path dir = temp_dir("varbench-test-metrics-traj-empty");
  const std::string path = (dir / "BENCH_empty.json").string();

  io::write_file(path, "");
  EXPECT_TRUE(Trajectory::load(path).rows().empty());
  io::write_file(path, " \t\n\n");
  Trajectory t = Trajectory::load(path);
  EXPECT_TRUE(t.rows().empty());

  TrajectoryRow row;
  row.bench = "exec.parallel_for";
  row.unit = "ns";
  row.min_ns = 100'000;
  row.repeats = 3;
  const auto checks = gate_checks(t, {row});
  ASSERT_EQ(checks.size(), 1u);
  EXPECT_FALSE(checks.at(0).regressed);  // no history → recorded, not gated
  EXPECT_EQ(checks.at(0).best_ns, 0u);

  // First run records the baseline; the next load sees it.
  t.append(row);
  t.save(path);
  const Trajectory back = Trajectory::load(path);
  ASSERT_EQ(back.rows().size(), 1u);
  EXPECT_EQ(back.best_ns("exec.parallel_for"), 100'000u);
  fs::remove_all(dir);
}

// -------------------------------------------------------- rngx counters

TEST(MetricsRngx, StreamCountersAreThreadCountInvariant) {
  // rngx.streams_derived / rngx.draws count a multiset fixed by the
  // determinism contract — per-repetition streams keyed by identity, not
  // by scheduling — so the totals cannot vary with the thread count.
  constexpr std::size_t kReps = 64;
  constexpr int kDrawsPerRep = 5;
  const auto totals = [](std::size_t threads) {
    Sink& sink = global_sink();
    sink.disable_all();
    sink.reset();
    sink.enable(kRngxStreamsDerived);
    sink.enable(kRngxDraws);
    exec::ExecContext ctx{threads};
    std::vector<double> acc(kReps, 0.0);
    exec::parallel_for(ctx, 0, kReps, [&](std::size_t i) {
      rngx::Rng rng{rngx::derive_seed(20260809, "rep") + i};
      for (int d = 0; d < kDrawsPerRep; ++d) acc[i] += rng.uniform();
    });
    const Snapshot snap = sink.snapshot();
    const MetricSnapshot* derived = snap.find(kRngxStreamsDerived);
    const MetricSnapshot* draws = snap.find(kRngxDraws);
    sink.disable_all();
    sink.reset();
    EXPECT_NE(derived, nullptr);
    EXPECT_NE(draws, nullptr);
    const std::uint64_t derived_sum = derived != nullptr ? derived->sum : 0;
    const std::uint64_t draw_sum = draws != nullptr ? draws->sum : 0;
    EXPECT_GT(acc[kReps - 1], 0.0);  // the work actually ran
    return std::pair<std::uint64_t, std::uint64_t>{derived_sum, draw_sum};
  };

  const auto at1 = totals(1);
  const auto at4 = totals(4);
  const auto at8 = totals(8);
  EXPECT_EQ(at1.first, kReps);  // one reseed per repetition stream
  EXPECT_GE(at1.second, static_cast<std::uint64_t>(kReps) * kDrawsPerRep);
  EXPECT_EQ(at1, at4);
  EXPECT_EQ(at1, at8);
}

}  // namespace
}  // namespace varbench::metrics

#include "src/math/linalg.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/rngx/rng.h"

namespace varbench::math {
namespace {

Matrix random_spd(std::size_t n, rngx::Rng& rng) {
  Matrix a{n, n};
  for (double& v : a.data()) v = rng.normal();
  Matrix spd = matmul_nt(a, a);  // A·Aᵀ is PSD
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 1.0;  // make it PD
  return spd;
}

TEST(Cholesky, ReconstructsMatrix) {
  rngx::Rng rng{7};
  const Matrix a = random_spd(6, rng);
  const auto l = cholesky(a);
  ASSERT_TRUE(l.has_value());
  const Matrix recon = matmul_nt(*l, *l);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(recon(i, j), a(i, j), 1e-9);
    }
  }
}

TEST(Cholesky, FactorIsLowerTriangular) {
  rngx::Rng rng{8};
  const auto l = cholesky(random_spd(5, rng));
  ASSERT_TRUE(l.has_value());
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i + 1; j < 5; ++j) EXPECT_DOUBLE_EQ((*l)(i, j), 0.0);
  }
}

TEST(Cholesky, RejectsIndefinite) {
  const Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_FALSE(cholesky(a).has_value());
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(cholesky(Matrix{2, 3}), std::invalid_argument);
}

TEST(CholeskySolve, SolvesSystem) {
  rngx::Rng rng{9};
  const Matrix a = random_spd(8, rng);
  std::vector<double> x_true(8);
  for (double& v : x_true) v = rng.normal();
  const auto b = matvec(a, x_true);
  const auto l = cholesky(a);
  ASSERT_TRUE(l.has_value());
  const auto x = cholesky_solve(*l, b);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(CholeskyLogDet, MatchesKnownDeterminant) {
  // diag(4, 9) has det 36.
  const Matrix a{{4.0, 0.0}, {0.0, 9.0}};
  const auto l = cholesky(a);
  ASSERT_TRUE(l.has_value());
  EXPECT_NEAR(cholesky_log_det(*l), std::log(36.0), 1e-12);
}

TEST(SolveLower, ForwardSubstitution) {
  const Matrix l{{2.0, 0.0}, {1.0, 3.0}};
  const std::vector<double> b{4.0, 11.0};
  const auto y = solve_lower(l, b);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
}

TEST(SolveLowerTransposed, BackwardSubstitution) {
  const Matrix l{{2.0, 0.0}, {1.0, 3.0}};
  // Lᵀ = [[2,1],[0,3]]; Lᵀx = [5, 9] → x = [1.5, 3] → wait: x2=3, 2x1+3=5 → x1=1
  const std::vector<double> y{5.0, 9.0};
  const auto x = solve_lower_transposed(l, y);
  EXPECT_DOUBLE_EQ(x[1], 3.0);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
}

TEST(SolveLinear, GeneralSystem) {
  const Matrix a{{0.0, 2.0}, {3.0, 1.0}};  // needs pivoting
  const std::vector<double> b{4.0, 5.0};
  const auto x = solve_linear(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
}

TEST(SolveLinear, SingularReturnsNullopt) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_FALSE(solve_linear(a, {1.0, 2.0}).has_value());
}

TEST(SolveLinear, RandomRoundTrip) {
  rngx::Rng rng{11};
  for (int trial = 0; trial < 5; ++trial) {
    Matrix a{7, 7};
    for (double& v : a.data()) v = rng.normal();
    std::vector<double> x_true(7);
    for (double& v : x_true) v = rng.normal();
    const auto b = matvec(a, x_true);
    const auto x = solve_linear(a, b);
    ASSERT_TRUE(x.has_value());
    for (std::size_t i = 0; i < 7; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-8);
  }
}

}  // namespace
}  // namespace varbench::math

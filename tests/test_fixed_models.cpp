#include "src/compare/fixed_models.h"

#include <gtest/gtest.h>

namespace varbench::compare {
namespace {

std::vector<double> correctness(std::size_t n, double accuracy,
                                rngx::Rng& rng) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.bernoulli(accuracy) ? 1.0 : 0.0;
  return v;
}

TEST(FixedModels, ClearlyBetterModelDetected) {
  rngx::Rng rng{1};
  const auto a = correctness(2000, 0.9, rng);
  const auto b = correctness(2000, 0.7, rng);
  auto cmp_rng = rng.split("cmp");
  const auto r = compare_fixed_models(a, b, cmp_rng);
  EXPECT_EQ(r.conclusion,
            stats::ComparisonConclusion::kSignificantAndMeaningful);
  EXPECT_GT(r.p_a_greater_b, 0.99);
  EXPECT_GT(r.ci.lower, 0.0);
  EXPECT_NEAR(r.mean_a, 0.9, 0.03);
}

TEST(FixedModels, EqualModelsNotSignificant) {
  rngx::Rng rng{2};
  const auto a = correctness(500, 0.8, rng);
  const auto b = correctness(500, 0.8, rng);
  auto cmp_rng = rng.split("cmp");
  const auto r = compare_fixed_models(a, b, cmp_rng);
  EXPECT_NE(r.conclusion,
            stats::ComparisonConclusion::kSignificantAndMeaningful);
}

TEST(FixedModels, IdenticalPredictionsGiveHalf) {
  rngx::Rng rng{3};
  const auto a = correctness(300, 0.8, rng);
  auto cmp_rng = rng.split("cmp");
  const auto r = compare_fixed_models(a, a, cmp_rng);
  EXPECT_DOUBLE_EQ(r.p_a_greater_b, 0.5);
  EXPECT_EQ(r.conclusion, stats::ComparisonConclusion::kNotSignificant);
}

TEST(FixedModels, SmallTestSetHidesSmallDifference) {
  // The paper's Fig. 2 lesson at model level: on a tiny test set, a 2-point
  // accuracy edge is indistinguishable from noise.
  rngx::Rng rng{4};
  const auto a = correctness(100, 0.82, rng);
  const auto b = correctness(100, 0.80, rng);
  auto cmp_rng = rng.split("cmp");
  const auto r = compare_fixed_models(a, b, cmp_rng);
  EXPECT_NE(r.conclusion,
            stats::ComparisonConclusion::kSignificantAndMeaningful);
}

TEST(FixedModels, LargeTestSetRevealsSmallDifference) {
  rngx::Rng rng{5};
  const auto a = correctness(100000, 0.82, rng);
  const auto b = correctness(100000, 0.80, rng);
  auto cmp_rng = rng.split("cmp");
  const auto r = compare_fixed_models(a, b, cmp_rng, 0.75, 500);
  EXPECT_TRUE(r.ci.lower > 0.0);  // significant at n = 100k
}

TEST(FixedModels, CiBracketsMeanDifference) {
  rngx::Rng rng{6};
  const auto a = correctness(1000, 0.85, rng);
  const auto b = correctness(1000, 0.75, rng);
  auto cmp_rng = rng.split("cmp");
  const auto r = compare_fixed_models(a, b, cmp_rng);
  const double diff = r.mean_a - r.mean_b;
  EXPECT_LE(r.ci.lower, diff);
  EXPECT_GE(r.ci.upper, diff);
}

TEST(FixedModels, BadInputsThrow) {
  rngx::Rng rng{7};
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 0.0};
  EXPECT_THROW((void)compare_fixed_models(a, b, rng), std::invalid_argument);
  const std::vector<double> empty;
  EXPECT_THROW((void)compare_fixed_models(empty, empty, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace varbench::compare

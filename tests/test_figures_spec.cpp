// The figure-kind registry contract: every registered study kind
// serializes → parses → re-serializes to identical JSON (so new figure
// kinds cannot ship without strict round-trip), every kind has a runner,
// `varbench list` names them all, and figure specs keep the strict
// unknown-key rejection of the original kinds.
#include <gtest/gtest.h>

#include "src/study/figures/figures.h"
#include "src/study/study_runner.h"
#include "src/study/study_spec.h"

namespace varbench::study {
namespace {

void expect_roundtrip(const StudySpec& spec) {
  const std::string text = spec.to_json_text();
  const StudySpec parsed = StudySpec::from_json_text(text);
  EXPECT_EQ(parsed, spec) << text;
  // Serialization is deterministic: parse→serialize is a fixed point.
  EXPECT_EQ(parsed.to_json_text(), text);
}

TEST(FigureRegistry, EveryFigureKindRoundTripsStrictly) {
  ASSERT_GE(figures::all_figures().size(), 17u);
  for (const auto& def : figures::all_figures()) {
    expect_roundtrip(figures::default_figure_spec(def.kind));
  }
}

TEST(FigureRegistry, TweakedSpecsRoundTrip) {
  StudySpec fig06 = figures::default_figure_spec(
      StudyKind::kFig06DetectionRates);
  fig06.repetitions = 7;
  fig06.seed = 0xDEADBEEFCAFEF00DULL;
  fig06.figure.tasks = {"cifar10_vgg11", "mhc_mlp"};
  fig06.figure.k = 13;
  fig06.figure.p_grid = {0.4, 0.75, 0.99};
  fig06.shard = ShardSpec{1, 4};
  expect_roundtrip(fig06);

  StudySpec figC1 = figures::default_figure_spec(StudyKind::kFigC1SampleSize);
  figC1.figure.gamma_grid = {0.7, 0.8};
  figC1.figure.beta_grid = {0.5};
  expect_roundtrip(figC1);

  StudySpec pairing = figures::default_figure_spec(
      StudyKind::kAblationPairing);
  pairing.figure.edges = {0.0, 0.1};
  pairing.figure.resamples = 33;
  expect_roundtrip(pairing);
}

TEST(FigureRegistry, EveryRegisteredKindHasARunnerAndAUniqueName) {
  const auto kinds = registered_study_kinds();
  ASSERT_GE(kinds.size(), 22u);  // the original five + the figure registry
  for (const auto& info : kinds) {
    EXPECT_TRUE(has_study_runner(info.kind)) << info.name;
    // Name round-trip: the spec string resolves back to the same kind.
    EXPECT_EQ(study_kind_from_string(info.name), info.kind);
    EXPECT_EQ(to_string(info.kind), info.name);
  }
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    for (std::size_t j = i + 1; j < kinds.size(); ++j) {
      EXPECT_NE(kinds[i].name, kinds[j].name);
    }
  }
}

TEST(FigureRegistry, ListTextNamesEveryKindAndItsParams) {
  const std::string text = list_study_kinds_text();
  for (const auto& info : registered_study_kinds()) {
    EXPECT_NE(text.find(info.name), std::string::npos) << info.name;
    for (const auto& key : info.param_keys) {
      EXPECT_NE(text.find(key), std::string::npos)
          << info.name << " params key " << key;
    }
  }
  EXPECT_NE(text.find("not shardable"), std::string::npos);  // hpo
}

TEST(FigureSpec, CaseStudyAndRepetitionsDefaultPerKind) {
  const auto spec =
      StudySpec::from_json_text(R"({"kind": "figC1_sample_size"})");
  EXPECT_EQ(spec.case_study, "all");
  EXPECT_EQ(spec.repetitions, 1u);
  const auto i6 = StudySpec::from_json_text(R"({"kind": "figI6_robustness"})");
  EXPECT_EQ(i6.case_study, "cifar10_vgg11");
  // The original kinds still require case_study explicitly.
  EXPECT_THROW((void)StudySpec::from_json_text(R"({"kind": "variance"})"),
               io::JsonError);
}

TEST(FigureSpec, UnknownParamsKeysAreRejectedPerKind) {
  // 'budget' belongs to figF2, not fig01 — strictness is per kind even
  // though both draw from the shared FigureParams pool.
  try {
    (void)StudySpec::from_json_text(
        R"({"kind": "fig01_variance_sources", "params": {"budget": 9}})");
    FAIL() << "accepted an undeclared figure params key";
  } catch (const io::JsonError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("budget"), std::string::npos) << what;
    EXPECT_NE(what.find("hpo_algorithms"), std::string::npos) << what;
  }
  EXPECT_THROW((void)StudySpec::from_json_text(
                   R"({"kind": "figC1_sample_size", "params": {"tasks": []}})"),
               io::JsonError);
}

TEST(FigureSpec, UnknownKindErrorListsFigureKinds) {
  try {
    (void)StudySpec::from_json_text(R"({"kind": "fig99", "case_study": "x"})");
    FAIL() << "accepted unknown kind";
  } catch (const io::JsonError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("fig06_detection_rates"), std::string::npos) << what;
    EXPECT_NE(what.find("variance"), std::string::npos) << what;
  }
}

TEST(FigureSpec, ValidateStudySpecCatchesWorkerTimeFailures) {
  // The checks `varbench campaign --plan-only` runs so a plan-clean
  // campaign cannot fail them at worker time.
  StudySpec typo;
  typo.kind = StudyKind::kVariance;
  typo.case_study = "cifar10_vgg19";  // misspelled registry id
  EXPECT_THROW(validate_study_spec(typo), std::invalid_argument);

  StudySpec analytic = figures::default_figure_spec(StudyKind::kFig03Sota);
  analytic.repetitions = 5;
  EXPECT_THROW(validate_study_spec(analytic), std::invalid_argument);

  EXPECT_NO_THROW(validate_study_spec(
      figures::default_figure_spec(StudyKind::kFig06DetectionRates)));
}

TEST(FigureSpec, AnalyticKindsRejectRepetitionOverrides) {
  StudySpec spec = figures::default_figure_spec(StudyKind::kFig03Sota);
  spec.repetitions = 2;
  EXPECT_THROW((void)run_study(spec), std::invalid_argument);
  spec.repetitions = 1;
  const ResultTable t = run_study(spec);  // the grid itself still runs
  EXPECT_GT(t.rows.size(), 0u);
}

TEST(FigureSpec, CaseStudyNarrowsKindsWithDefaultTaskSubsets) {
  // fig02 pre-populates a three-task default in figure.tasks; an explicit
  // case_study must still narrow the figure to that one task.
  StudySpec spec = figures::default_figure_spec(StudyKind::kFig02Binomial);
  ASSERT_EQ(spec.figure.tasks.size(), 3u);
  spec.case_study = "cifar10_vgg11";
  spec.scale = 0.08;
  spec.repetitions = 2;
  const ResultTable t = run_study(spec);
  const std::size_t task_col = t.column_index("task");
  ASSERT_EQ(t.rows.size(), 2u);
  for (const Row& row : t.rows) {
    EXPECT_EQ(row[task_col].as_string(), "cifar10_vgg11");
  }
}

TEST(FigureSpec, DefaultSpecRejectsNonFigureKinds) {
  EXPECT_THROW((void)figures::default_figure_spec(StudyKind::kVariance),
               std::invalid_argument);
  EXPECT_FALSE(figures::is_figure_kind(StudyKind::kHpo));
  EXPECT_TRUE(figures::is_figure_kind(StudyKind::kTableDSearchSpaces));
}

}  // namespace
}  // namespace varbench::study

// Fixture: no-unordered-iter hits and misses.
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

double hits() {
  std::unordered_map<std::string, double> scores;
  std::unordered_set<int> seen;
  double total = 0.0;
  for (const auto& kv : scores) {       // HIT: range-for over unordered_map
    total += kv.second;
  }
  for (auto it = seen.begin(); it != seen.end(); ++it) {  // HIT: .begin()
    total += *it;
  }
  return total;
}

double misses() {
  std::map<std::string, double> ordered;
  std::unordered_map<std::string, double> lookup;
  double total = lookup.count("a") ? lookup.at("a") : 0.0;  // lookups fine
  for (const auto& kv : ordered) {  // ordered containers iterate freely
    total += kv.second;
  }
  return total;
}

// Fixture: header-hygiene hits — no #pragma once before the first token,
// and a using-directive at namespace scope.
#include <string>

using namespace std;  // HIT: pollutes every includer

inline string greeting() { return "hi"; }

// Fixture: no-raw-thread hits and misses.
// Linted under a synthetic path outside src/exec/.
#include <thread>

void hits() {
  std::thread worker([] {});        // HIT: raw thread spawn
  auto fut = std::async([] {});     // HIT: std::async
  worker.join();
  (void)fut;
}

#pragma omp parallel for
void omp_hit() {}  // the pragma above is the HIT line

void misses() {
  // hardware_concurrency is a query, not a spawn; this_thread is sleep
  // and yield, which cannot perturb per-index RNG streams.
  unsigned n = std::thread::hardware_concurrency();
  std::this_thread::yield();
  int async_depth = 2;  // plain identifier named 'async' is fine
  (void)n;
  (void)async_depth;
}

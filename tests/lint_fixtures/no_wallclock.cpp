// Fixture: no-wallclock hits, misses, and a suppression.
// Linted under a synthetic path outside src/campaign/ and bench/.
#include <chrono>
#include <ctime>

void hits() {
  auto t1 = std::chrono::steady_clock::now();            // HIT
  auto t2 = std::chrono::system_clock::now();            // HIT
  auto t3 = std::chrono::high_resolution_clock::now();   // HIT
  std::time_t t4 = time(nullptr);                        // HIT: C time()
  struct timespec ts;
  clock_gettime(0, &ts);                                 // HIT
  (void)t1;
  (void)t2;
  (void)t3;
  (void)t4;
}

void misses() {
  using namespace std::chrono_literals;
  auto heartbeat_interval = 60000ms;       // durations are not clock reads
  auto wall_time_ms = 12.5;                // 'time' inside a name is fine
  auto member = [](auto& obj) { return obj.time(); };  // member call exempt
  (void)heartbeat_interval;
  (void)wall_time_ms;
  (void)member;
}

void suppressed() {
  // varlint: allow(no-wallclock) -- fixture: standalone comment covers the
  // next line of code, across a wrapped reason.
  auto stamp = std::chrono::steady_clock::now();
  (void)stamp;
}

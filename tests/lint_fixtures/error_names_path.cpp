// Fixture: error-names-path hits and misses.
// Linted by test_lint.cpp under a synthetic path INSIDE src/io/ (the rule
// only applies there).
#include <stdexcept>
#include <string>

void hits(int value) {
  if (value == 0) {
    throw std::runtime_error("malformed artifact");  // HIT: no context
  }
  throw std::runtime_error("bad magic");             // HIT: no context
}

void misses(const std::string& path, std::size_t offset,
            const std::string& key) {
  if (path.empty()) {
    throw std::runtime_error("cannot open '" + path + "'");  // names a path
  }
  if (offset > 0) {
    throw std::runtime_error("truncated at offset " +
                             std::to_string(offset));  // names an offset
  }
  try {
    throw std::runtime_error("missing key '" + key + "'");  // names a key
  } catch (...) {
    throw;  // bare rethrow keeps the original error's context
  }
}

void suppressed() {
  // varlint: allow(error-names-path) -- fixture: capacity limit with no
  // input file to name.
  throw std::runtime_error("encoder capacity exceeded");
}

// Fixture: the suppression meta-rules.
#include <chrono>

void cases() {
  // A reason-less suppression is itself a finding AND does not suppress.
  auto a = std::chrono::steady_clock::now();  // varlint: allow(no-wallclock)

  // An unknown rule name is a finding.
  auto b = std::chrono::steady_clock::now();  // varlint: allow(no-wait-what) -- typo'd rule

  // A well-formed suppression whose rule never fires on the line is stale.
  int c = 1;  // varlint: allow(no-wallclock) -- nothing to suppress here

  // Prose ABOUT varlint is ignored: mention varlint: allow(no-wallclock)
  // mid-comment and nothing happens.
  auto d = a;
  (void)b;
  (void)c;
  (void)d;
}

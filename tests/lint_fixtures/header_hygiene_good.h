// Fixture: header-hygiene miss — a comment block before #pragma once is
// fine; qualified names and using-declarations inside functions are fine.
#pragma once

#include <string>

inline std::string greeting() {
  using std::string;  // using-declaration, not a using-directive
  return string{"hi"};
}

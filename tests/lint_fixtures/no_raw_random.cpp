// Fixture: no-raw-random hits, misses, and a suppression.
// Linted by test_lint.cpp under a synthetic path OUTSIDE src/rngx/.
#include <cstdlib>

void hits() {
  int a = rand();                         // HIT: C rand()
  std::srand(42);                         // HIT: C srand()
  std::mt19937 engine{123};               // HIT: std engine
  std::uniform_int_distribution<int> d;   // HIT: std distribution
  std::random_device rd;                  // HIT: nondeterministic seed source
  (void)a;
  (void)d;
  (void)rd;
}

void misses() {
  // Banned names in comments never fire: rand(), mt19937, random_device.
  const char* text = "rand() mt19937 random_device";   // nor in strings
  const char* raw = R"(srand(1); std::mt19937 gen;)";  // nor in raw strings
  int random_budget = 3;  // identifiers merely containing 'rand' are fine
  (void)text;
  (void)raw;
  (void)random_budget;
}

void suppressed() {
  std::mt19937 legacy;  // varlint: allow(no-raw-random) -- fixture: golden suppression case
  (void)legacy;
}

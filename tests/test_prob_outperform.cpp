#include "src/stats/prob_outperform.h"

#include <gtest/gtest.h>

namespace varbench::stats {
namespace {

TEST(ProbOutperform, CountsWinsAndTies) {
  const std::vector<double> a{2.0, 1.0, 3.0, 5.0};
  const std::vector<double> b{1.0, 1.0, 4.0, 4.0};
  // wins: 1 (2>1), tie 0.5, loss, win → 2.5/4
  EXPECT_DOUBLE_EQ(probability_of_outperforming(a, b), 0.625);
}

TEST(ProbOutperform, IdenticalSamplesGiveHalf) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(probability_of_outperforming(a, a), 0.5);
}

TEST(ProbOutperform, BadInputsThrow) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW((void)probability_of_outperforming(a, b),
               std::invalid_argument);
  const std::vector<double> empty;
  EXPECT_THROW((void)probability_of_outperforming(empty, empty),
               std::invalid_argument);
}

TEST(ProbOutperformTest, ClearWinnerIsSignificantAndMeaningful) {
  rngx::Rng rng{1};
  std::vector<double> a(40);
  std::vector<double> b(40);
  rngx::Rng data{2};
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = data.normal(1.0, 0.2);
    b[i] = data.normal(0.0, 0.2);
  }
  const auto r = test_probability_of_outperforming(a, b, rng);
  EXPECT_EQ(r.conclusion, ComparisonConclusion::kSignificantAndMeaningful);
  EXPECT_TRUE(r.significant());
  EXPECT_TRUE(r.meaningful());
  EXPECT_GT(r.p_a_greater_b, 0.9);
}

TEST(ProbOutperformTest, EqualAlgorithmsNotSignificant) {
  rngx::Rng rng{3};
  std::vector<double> a(40);
  std::vector<double> b(40);
  rngx::Rng data{4};
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = data.normal(0.0, 1.0);
    b[i] = data.normal(0.0, 1.0);
  }
  const auto r = test_probability_of_outperforming(a, b, rng);
  EXPECT_EQ(r.conclusion, ComparisonConclusion::kNotSignificant);
}

TEST(ProbOutperformTest, SmallRealDifferenceSignificantButNotMeaningful) {
  // Huge sample, tiny shift: significance without meaningfulness — the
  // paper's H0H1 middle zone.
  rngx::Rng rng{5};
  std::vector<double> a(4000);
  std::vector<double> b(4000);
  rngx::Rng data{6};
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = data.normal(0.15, 1.0);
    b[i] = data.normal(0.0, 1.0);
  }
  const auto r = test_probability_of_outperforming(a, b, rng, 0.75, 500);
  EXPECT_EQ(r.conclusion, ComparisonConclusion::kNotMeaningful);
  EXPECT_TRUE(r.significant());
  EXPECT_FALSE(r.meaningful());
}

TEST(ProbOutperformTest, CiBracketsPointEstimate) {
  rngx::Rng rng{7};
  std::vector<double> a(30);
  std::vector<double> b(30);
  rngx::Rng data{8};
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = data.normal(0.5, 1.0);
    b[i] = data.normal(0.0, 1.0);
  }
  const auto r = test_probability_of_outperforming(a, b, rng);
  EXPECT_LE(r.ci.lower, r.p_a_greater_b);
  EXPECT_GE(r.ci.upper, r.p_a_greater_b);
}

TEST(ProbOutperformTest, FalsePositiveRateControlled) {
  // Under H0, the rate of "significant and meaningful" must stay near α.
  rngx::Rng master{9};
  int detections = 0;
  constexpr int rounds = 150;
  for (int round = 0; round < rounds; ++round) {
    std::vector<double> a(30);
    std::vector<double> b(30);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = master.normal();
      b[i] = master.normal();
    }
    auto rng = master.split("test");
    const auto r = test_probability_of_outperforming(a, b, rng, 0.75, 300);
    if (r.conclusion == ComparisonConclusion::kSignificantAndMeaningful) {
      ++detections;
    }
  }
  EXPECT_LE(static_cast<double>(detections) / rounds, 0.08);
}

TEST(ConclusionToString, AllNamed) {
  EXPECT_EQ(to_string(ComparisonConclusion::kNotSignificant),
            "not significant");
  EXPECT_EQ(to_string(ComparisonConclusion::kNotMeaningful),
            "significant but not meaningful");
  EXPECT_EQ(to_string(ComparisonConclusion::kSignificantAndMeaningful),
            "significant and meaningful");
}

}  // namespace
}  // namespace varbench::stats

#include "src/ml/trainer.h"

#include <gtest/gtest.h>

#include "src/ml/repro_audit.h"
#include "src/ml/synthetic.h"

namespace varbench::ml {
namespace {

Dataset data(std::uint64_t seed = 1) {
  GaussianMixtureConfig cfg;
  cfg.num_classes = 2;
  cfg.dim = 4;
  cfg.n = 150;
  cfg.class_sep = 2.0;
  rngx::Rng rng{seed};
  return make_gaussian_mixture(cfg, rng);
}

TrainConfig config(double dropout = 0.0, double jitter = 0.0) {
  TrainConfig cfg;
  cfg.model.hidden = {6};
  cfg.model.dropout = dropout;
  cfg.augment.jitter_std = jitter;
  cfg.opt.learning_rate = 0.05;
  cfg.opt.momentum = 0.9;
  cfg.epochs = 6;
  cfg.batch_size = 16;
  return cfg;
}

TEST(Trainer, MatchesOneShotTrainMlp) {
  const auto d = data();
  const auto cfg = config(0.2, 0.1);
  const rngx::VariationSeeds seeds;
  Trainer t{d, cfg, seeds};
  t.run_to_completion();
  const Mlp one_shot = train_mlp(d, cfg, seeds);
  EXPECT_TRUE(models_identical(t.model(), one_shot));
}

TEST(Trainer, EpochCounting) {
  const auto d = data();
  Trainer t{d, config(), rngx::VariationSeeds{}};
  EXPECT_EQ(t.epoch(), 0u);
  EXPECT_FALSE(t.finished());
  t.run_epoch();
  EXPECT_EQ(t.epoch(), 1u);
  t.run_to_completion();
  EXPECT_TRUE(t.finished());
  EXPECT_THROW(t.run_epoch(), std::logic_error);
}

TEST(Trainer, CheckpointResumeIsBitExact) {
  const auto d = data();
  const auto cfg = config(0.3, 0.15);  // exercise dropout + augment streams
  const rngx::VariationSeeds seeds;
  Trainer straight{d, cfg, seeds};
  straight.run_to_completion();
  for (std::size_t stop = 1; stop < cfg.epochs; ++stop) {
    Trainer part{d, cfg, seeds};
    for (std::size_t e = 0; e < stop; ++e) part.run_epoch();
    const auto ckpt = part.checkpoint();
    Trainer resumed{d, cfg, seeds};
    resumed.restore(ckpt);
    resumed.run_to_completion();
    EXPECT_TRUE(models_identical(straight.model(), resumed.model()))
        << "stop at epoch " << stop;
  }
}

TEST(Trainer, AdamCheckpointResume) {
  const auto d = data();
  auto cfg = config();
  cfg.optimizer = OptimizerKind::kAdam;
  cfg.opt.learning_rate = 0.01;
  const rngx::VariationSeeds seeds;
  Trainer straight{d, cfg, seeds};
  straight.run_to_completion();
  Trainer part{d, cfg, seeds};
  part.run_epoch();
  part.run_epoch();
  const auto ckpt = part.checkpoint();
  Trainer resumed{d, cfg, seeds};
  resumed.restore(ckpt);
  resumed.run_to_completion();
  EXPECT_TRUE(models_identical(straight.model(), resumed.model()));
}

TEST(Trainer, RestoreRejectsLayerMismatch) {
  const auto d = data();
  Trainer a{d, config(), rngx::VariationSeeds{}};
  auto ckpt = a.checkpoint();
  ckpt.weights.pop_back();
  Trainer b{d, config(), rngx::VariationSeeds{}};
  EXPECT_THROW(b.restore(ckpt), std::invalid_argument);
}

TEST(Trainer, EmptyDatasetThrows) {
  const Dataset empty;
  EXPECT_THROW((Trainer{empty, config(), rngx::VariationSeeds{}}),
               std::invalid_argument);
}

TEST(ReproAudit, CleanPipelinePasses) {
  const auto d = data();
  ReproAuditConfig audit;
  audit.num_seeds = 2;
  audit.num_repeats = 2;
  const auto report = audit_reproducibility(d, config(0.2, 0.1), audit);
  EXPECT_TRUE(report.passed()) << (report.failures.empty()
                                       ? ""
                                       : report.failures.front());
  EXPECT_TRUE(report.deterministic);
  EXPECT_TRUE(report.resumable);
  // Active sources detected as sensitive: order, init, dropout, augment.
  EXPECT_EQ(report.sensitive_sources.size(), 4u);
}

TEST(ReproAudit, InactiveSourcesNotSensitive) {
  const auto d = data();
  ReproAuditConfig audit;
  audit.num_seeds = 2;
  audit.num_repeats = 2;
  const auto report = audit_reproducibility(d, config(0.0, 0.0), audit);
  EXPECT_TRUE(report.passed());
  EXPECT_EQ(report.sensitive_sources.size(), 2u);  // order + init only
}

TEST(ReproAudit, NumericalNoiseFlagsNonDeterminism) {
  const auto d = data();
  auto cfg = config();
  cfg.numerical_noise_std = 0.01;
  ReproAuditConfig audit;
  audit.num_seeds = 2;
  audit.num_repeats = 2;
  const auto report = audit_reproducibility(d, cfg, audit);
  EXPECT_FALSE(report.deterministic);
  EXPECT_FALSE(report.passed());
}

TEST(ModelsIdentical, DetectsDifferences) {
  const auto d = data();
  const rngx::VariationSeeds a;
  rngx::VariationSeeds b;
  b.weight_init = 99;
  const Mlp m1 = train_mlp(d, config(), a);
  const Mlp m2 = train_mlp(d, config(), a);
  const Mlp m3 = train_mlp(d, config(), b);
  EXPECT_TRUE(models_identical(m1, m2));
  EXPECT_FALSE(models_identical(m1, m3));
}

TEST(OptimizerState, SgdSaveLoadRoundTrip) {
  const auto d = data();
  const auto cfg = config();
  const rngx::VariationSeeds seeds;
  Trainer t{d, cfg, seeds};
  t.run_epoch();
  const auto ckpt = t.checkpoint();
  EXPECT_EQ(ckpt.epoch, 1u);
  EXPECT_FALSE(ckpt.optimizer.buffers.empty());
  EXPECT_LT(ckpt.optimizer.lr_scale, 1.0 + 1e-12);
}

}  // namespace
}  // namespace varbench::ml

#include "src/ml/dataset.h"

#include <gtest/gtest.h>

namespace varbench::ml {
namespace {

Dataset small_classification() {
  Dataset d;
  d.kind = TaskKind::kClassification;
  d.num_classes = 2;
  d.x = math::Matrix{{0.0, 1.0}, {2.0, 3.0}, {4.0, 5.0}};
  d.y = {0.0, 1.0, 0.0};
  return d;
}

TEST(Dataset, SizeAndDim) {
  const auto d = small_classification();
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.dim(), 2u);
  EXPECT_FALSE(d.empty());
}

TEST(Dataset, SubsetSelectsRows) {
  const auto d = small_classification();
  const std::vector<std::size_t> idx{2, 0};
  const auto s = subset(d, idx);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.x(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(s.x(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(s.y[0], 0.0);
  EXPECT_EQ(s.num_classes, 2u);
}

TEST(Dataset, SubsetAllowsDuplicates) {
  const auto d = small_classification();
  const std::vector<std::size_t> idx{1, 1, 1};
  const auto s = subset(d, idx);
  EXPECT_EQ(s.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(s.y[i], 1.0);
}

TEST(Dataset, SubsetOutOfRangeThrows) {
  const auto d = small_classification();
  const std::vector<std::size_t> idx{5};
  EXPECT_THROW((void)subset(d, idx), std::out_of_range);
}

TEST(Dataset, LabelOf) {
  const auto d = small_classification();
  EXPECT_EQ(label_of(d, 1), 1u);
  Dataset reg;
  reg.kind = TaskKind::kRegression;
  reg.x = math::Matrix{1, 1};
  reg.y = {0.5};
  EXPECT_THROW((void)label_of(reg, 0), std::invalid_argument);
}

TEST(Dataset, IndicesByClass) {
  const auto d = small_classification();
  const auto by_class = indices_by_class(d);
  ASSERT_EQ(by_class.size(), 2u);
  EXPECT_EQ(by_class[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(by_class[1], (std::vector<std::size_t>{1}));
}

TEST(Dataset, ValidateAcceptsGoodData) {
  EXPECT_NO_THROW(validate(small_classification()));
}

TEST(Dataset, ValidateRejectsShapeMismatch) {
  auto d = small_classification();
  d.y.pop_back();
  EXPECT_THROW(validate(d), std::invalid_argument);
}

TEST(Dataset, ValidateRejectsBadLabels) {
  auto d = small_classification();
  d.y[0] = 5.0;  // out of range
  EXPECT_THROW(validate(d), std::invalid_argument);
  d.y[0] = 0.5;  // not an integer
  EXPECT_THROW(validate(d), std::invalid_argument);
}

TEST(Dataset, ValidateRejectsRegressionWithClasses) {
  Dataset d;
  d.kind = TaskKind::kRegression;
  d.num_classes = 3;
  d.x = math::Matrix{1, 1};
  d.y = {0.5};
  EXPECT_THROW(validate(d), std::invalid_argument);
}

}  // namespace
}  // namespace varbench::ml

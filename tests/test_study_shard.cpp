// The shard/merge contract: for every shardable study kind, running the
// spec in N shards and merging the shard artifacts is BIT-identical to the
// unsharded run at the same seed — including across different thread
// counts per shard — because repetition RNG streams are keyed by the
// global repetition index (docs/study_api.md).
#include <gtest/gtest.h>

#include "src/study/result_table.h"
#include "src/study/study_runner.h"
#include "src/study/study_spec.h"

namespace varbench::study {
namespace {

StudySpec tiny_spec(StudyKind kind) {
  StudySpec spec;
  spec.kind = kind;
  spec.case_study = "cifar10_vgg11";
  spec.scale = 0.08;
  spec.seed = 20260727;
  switch (kind) {
    case StudyKind::kVariance:
      spec.repetitions = 5;
      spec.variance.hpo_algorithms = {"random_search"};
      spec.variance.hpo_repetitions = 3;
      spec.variance.hpo_budget = 2;
      break;
    case StudyKind::kCompare:
      spec.repetitions = 5;
      spec.compare.num_resamples = 50;
      break;
    case StudyKind::kEstimator:
      spec.repetitions = 4;
      spec.estimator.estimators = {"ideal", "fix_all"};
      spec.estimator.hpo_budget = 2;
      break;
    case StudyKind::kDetection:
      spec.repetitions = 4;
      spec.detection.k = 10;
      spec.detection.resamples = 20;
      spec.detection.p_grid = {0.5, 0.9};
      break;
    case StudyKind::kHpo:
      spec.repetitions = 1;
      spec.hpo.budget = 3;
      break;
    default:
      // Figure kinds carry their own defaults and are exercised by
      // tests/test_figures_shard.cpp; this helper only builds the five
      // original kinds.
      break;
  }
  return spec;
}

void expect_shards_merge_to_unsharded(StudyKind kind,
                                      std::size_t shard_count) {
  const StudySpec spec = tiny_spec(kind);
  const ResultTable unsharded = run_study(spec);
  ASSERT_TRUE(unsharded.is_complete());

  std::vector<ResultTable> shards;
  for (std::size_t i = 0; i < shard_count; ++i) {
    StudySpec shard_spec = spec;
    shard_spec.shard = ShardSpec{i, shard_count};
    // Vary the thread count per shard: results must not depend on it.
    shard_spec.threads = 1 + i;
    shards.push_back(run_study(shard_spec));
    EXPECT_FALSE(shards.back().is_complete());
  }
  const ResultTable merged = merge_result_tables(std::move(shards));
  EXPECT_EQ(merged.canonical_text(), unsharded.canonical_text())
      << to_string(kind) << " " << shard_count << "-shard merge diverged";
  EXPECT_EQ(merged.rows.size(), unsharded.rows.size());
}

TEST(StudyShard, VarianceTwoAndThreeShards) {
  expect_shards_merge_to_unsharded(StudyKind::kVariance, 2);
  expect_shards_merge_to_unsharded(StudyKind::kVariance, 3);
}

TEST(StudyShard, CompareTwoAndThreeShards) {
  expect_shards_merge_to_unsharded(StudyKind::kCompare, 2);
  expect_shards_merge_to_unsharded(StudyKind::kCompare, 3);
}

TEST(StudyShard, EstimatorTwoAndThreeShards) {
  expect_shards_merge_to_unsharded(StudyKind::kEstimator, 2);
  expect_shards_merge_to_unsharded(StudyKind::kEstimator, 3);
}

TEST(StudyShard, DetectionTwoAndThreeShards) {
  expect_shards_merge_to_unsharded(StudyKind::kDetection, 2);
  expect_shards_merge_to_unsharded(StudyKind::kDetection, 3);
}

TEST(StudyShard, ShardCountLargerThanRepetitions) {
  // More shards than repetitions: some slices are empty — including every
  // variance group and the estimator k-loops — and the merge is still
  // exact (empty slices must not crash the group statistics).
  expect_shards_merge_to_unsharded(StudyKind::kCompare, 7);
  expect_shards_merge_to_unsharded(StudyKind::kVariance, 7);
  expect_shards_merge_to_unsharded(StudyKind::kEstimator, 7);
}

TEST(StudyShard, ArtifactsSurviveSerialization) {
  // Merge after a JSON round-trip of each shard — the cross-process path.
  const StudySpec spec = tiny_spec(StudyKind::kCompare);
  const ResultTable unsharded = run_study(spec);
  std::vector<ResultTable> shards;
  for (std::size_t i = 0; i < 2; ++i) {
    StudySpec shard_spec = spec;
    shard_spec.shard = ShardSpec{i, 2};
    const ResultTable t = run_study(shard_spec);
    shards.push_back(ResultTable::from_json_text(t.to_json_text()));
    EXPECT_EQ(shards.back(), t);
  }
  const ResultTable merged = merge_result_tables(std::move(shards));
  EXPECT_EQ(merged.canonical_text(), unsharded.canonical_text());
}

TEST(StudyShard, HpoRejectsSharding) {
  StudySpec spec = tiny_spec(StudyKind::kHpo);
  spec.shard = ShardSpec{0, 2};
  EXPECT_THROW((void)run_study(spec), std::invalid_argument);
}

TEST(StudyShard, MergeRejectsBadShardSets) {
  const StudySpec spec = tiny_spec(StudyKind::kCompare);
  StudySpec s0 = spec;
  s0.shard = ShardSpec{0, 2};
  StudySpec s1 = spec;
  s1.shard = ShardSpec{1, 2};

  const ResultTable t0 = run_study(s0);
  const ResultTable t1 = run_study(s1);

  // Missing shard.
  EXPECT_THROW((void)merge_result_tables({t0}), io::JsonError);
  // Duplicated shard.
  EXPECT_THROW((void)merge_result_tables({t0, t0}), io::JsonError);
  // Mixed studies (different seed).
  StudySpec other = spec;
  other.seed += 1;
  other.shard = ShardSpec{1, 2};
  EXPECT_THROW((void)merge_result_tables({t0, run_study(other)}),
               io::JsonError);
}

TEST(StudyShard, MergeOfUnshardedTableIsIdentity) {
  const ResultTable t = run_study(tiny_spec(StudyKind::kCompare));
  const ResultTable merged = merge_result_tables({t});
  EXPECT_EQ(merged.canonical_text(), t.canonical_text());
}

}  // namespace
}  // namespace varbench::study

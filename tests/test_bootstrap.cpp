#include "src/stats/bootstrap.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/stats/descriptive.h"

namespace varbench::stats {
namespace {

TEST(BootstrapResample, SizeAndMembership) {
  rngx::Rng rng{1};
  const std::vector<double> x{1.0, 2.0, 3.0};
  const auto r = bootstrap_resample(x, rng);
  EXPECT_EQ(r.size(), 3u);
  for (const double v : r) {
    EXPECT_TRUE(v == 1.0 || v == 2.0 || v == 3.0);
  }
}

TEST(PercentileBootstrapCi, ContainsSampleMean) {
  rngx::Rng rng{2};
  std::vector<double> x(200);
  rngx::Rng data_rng{3};
  for (double& v : x) v = data_rng.normal(10.0, 2.0);
  const auto ci = percentile_bootstrap_ci(
      x, [](std::span<const double> s) { return mean(s); }, rng, 2000);
  EXPECT_LT(ci.lower, mean(x));
  EXPECT_GT(ci.upper, mean(x));
  EXPECT_DOUBLE_EQ(ci.level, 0.95);
}

TEST(PercentileBootstrapCi, WidthMatchesTheory) {
  // For the mean of n normal draws, the 95% CI width should be close to
  // 2·1.96·σ/√n.
  rngx::Rng rng{4};
  std::vector<double> x(400);
  rngx::Rng data_rng{5};
  for (double& v : x) v = data_rng.normal(0.0, 1.0);
  const auto ci = percentile_bootstrap_ci(
      x, [](std::span<const double> s) { return mean(s); }, rng, 4000);
  const double width = ci.upper - ci.lower;
  const double theory = 2.0 * 1.96 / 20.0;  // σ=1, √n=20
  EXPECT_NEAR(width, theory, theory * 0.25);
}

TEST(PercentileBootstrapCi, CoverageNearNominal) {
  // Property check: ~95% of CIs should contain the true mean.
  rngx::Rng master{6};
  int covered = 0;
  constexpr int rounds = 200;
  for (int r = 0; r < rounds; ++r) {
    std::vector<double> x(60);
    for (double& v : x) v = master.normal(3.0, 1.0);
    auto ci_rng = master.split("ci");
    const auto ci = percentile_bootstrap_ci(
        x, [](std::span<const double> s) { return mean(s); }, ci_rng, 500);
    if (ci.lower <= 3.0 && 3.0 <= ci.upper) ++covered;
  }
  const double coverage = static_cast<double>(covered) / rounds;
  EXPECT_GT(coverage, 0.88);
  EXPECT_LE(coverage, 1.0);
}

TEST(PercentileBootstrapCi, AlphaControlsWidth) {
  rngx::Rng rng1{7};
  rngx::Rng rng2{7};
  std::vector<double> x(100);
  rngx::Rng data_rng{8};
  for (double& v : x) v = data_rng.normal();
  const auto wide = percentile_bootstrap_ci(
      x, [](std::span<const double> s) { return mean(s); }, rng1, 2000, 0.01);
  const auto narrow = percentile_bootstrap_ci(
      x, [](std::span<const double> s) { return mean(s); }, rng2, 2000, 0.20);
  EXPECT_GT(wide.upper - wide.lower, narrow.upper - narrow.lower);
}

TEST(PercentileBootstrapCi, EmptyThrows) {
  rngx::Rng rng{1};
  const std::vector<double> empty;
  EXPECT_THROW((void)percentile_bootstrap_ci(
                   empty, [](std::span<const double>) { return 0.0; }, rng),
               std::invalid_argument);
}

TEST(BcaBootstrapCi, ContainsSampleMeanAndMatchesLevel) {
  rngx::Rng rng{11};
  std::vector<double> x(200);
  rngx::Rng data_rng{12};
  for (double& v : x) v = data_rng.normal(10.0, 2.0);
  const auto ci = bca_bootstrap_ci(
      x, [](std::span<const double> s) { return mean(s); }, rng, 2000);
  EXPECT_LT(ci.lower, mean(x));
  EXPECT_GT(ci.upper, mean(x));
  EXPECT_DOUBLE_EQ(ci.level, 0.95);
}

TEST(BcaBootstrapCi, NearPercentileForSymmetricStatistic) {
  // For the mean of symmetric data, z0 ~ 0 and a ~ 0 — the BCa interval
  // must land close to the percentile interval from the same resamples.
  rngx::Rng rng_p{13};
  rngx::Rng rng_b{13};
  std::vector<double> x(300);
  rngx::Rng data_rng{14};
  for (double& v : x) v = data_rng.normal(0.0, 1.0);
  const auto mean_stat = [](std::span<const double> s) { return mean(s); };
  const auto pct = percentile_bootstrap_ci(x, mean_stat, rng_p, 4000);
  const auto bca = bca_bootstrap_ci(x, mean_stat, rng_b, 4000);
  const double width = pct.upper - pct.lower;
  EXPECT_NEAR(bca.lower, pct.lower, 0.15 * width);
  EXPECT_NEAR(bca.upper, pct.upper, 0.15 * width);
}

TEST(BcaBootstrapCi, CoverageNearNominalForSkewedStatistic) {
  // The point of BCa: coverage holds up for a skewed statistic (variance
  // of lognormal-ish data) where the percentile interval is off-center.
  rngx::Rng master{15};
  int covered = 0;
  constexpr int rounds = 150;
  constexpr double true_mean = 1.0;  // of exp(Z)/E[exp(Z)] scaled below
  for (int r = 0; r < rounds; ++r) {
    std::vector<double> x(80);
    // exp(normal): mean e^{1/2}, normalized to true mean 1.
    for (double& v : x) {
      v = std::exp(master.normal(0.0, 1.0)) / std::exp(0.5);
    }
    auto ci_rng = master.split("ci");
    const auto ci = bca_bootstrap_ci(
        x, [](std::span<const double> s) { return mean(s); }, ci_rng, 600);
    if (ci.lower <= true_mean && true_mean <= ci.upper) ++covered;
  }
  const double coverage = static_cast<double>(covered) / rounds;
  EXPECT_GT(coverage, 0.82);  // percentile-only typically under-covers more
  EXPECT_LE(coverage, 1.0);
}

TEST(BcaBootstrapCi, ThreadCountInvariant) {
  std::vector<double> x(60);
  rngx::Rng data_rng{16};
  for (double& v : x) v = data_rng.normal(2.0, 0.5);
  const auto mean_stat = [](std::span<const double> s) { return mean(s); };
  rngx::Rng rng_serial{17};
  rngx::Rng rng_parallel{17};
  const auto serial = bca_bootstrap_ci(x, mean_stat, rng_serial, 800);
  const auto parallel = bca_bootstrap_ci(exec::ExecContext{4}, x, mean_stat,
                                         rng_parallel, 800);
  EXPECT_EQ(serial, parallel);
}

TEST(BcaBootstrapCi, EmptyThrows) {
  rngx::Rng rng{1};
  const std::vector<double> empty;
  EXPECT_THROW((void)bca_bootstrap_ci(
                   empty, [](std::span<const double>) { return 0.0; }, rng),
               std::invalid_argument);
}

TEST(PairedPercentileBootstrapCi, PreservesPairing) {
  // Statistic = mean difference. With perfectly paired data (b = a - 1),
  // the paired CI must be degenerate at exactly 1.0.
  rngx::Rng rng{9};
  std::vector<double> a(50);
  std::vector<double> b(50);
  rngx::Rng data_rng{10};
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = data_rng.normal(0.0, 5.0);
    b[i] = a[i] - 1.0;
  }
  const auto ci = paired_percentile_bootstrap_ci(
      a, b,
      [](std::span<const double> ra, std::span<const double> rb) {
        double d = 0.0;
        for (std::size_t i = 0; i < ra.size(); ++i) d += ra[i] - rb[i];
        return d / static_cast<double>(ra.size());
      },
      rng, 500);
  EXPECT_NEAR(ci.lower, 1.0, 1e-9);
  EXPECT_NEAR(ci.upper, 1.0, 1e-9);
}

TEST(PairedPercentileBootstrapCi, MismatchedSizesThrow) {
  rngx::Rng rng{1};
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0};
  EXPECT_THROW(
      (void)paired_percentile_bootstrap_ci(
          a, b,
          [](std::span<const double>, std::span<const double>) { return 0.0; },
          rng),
      std::invalid_argument);
}

}  // namespace
}  // namespace varbench::stats

#include "src/stats/bootstrap.h"

#include <gtest/gtest.h>

#include "src/stats/descriptive.h"

namespace varbench::stats {
namespace {

TEST(BootstrapResample, SizeAndMembership) {
  rngx::Rng rng{1};
  const std::vector<double> x{1.0, 2.0, 3.0};
  const auto r = bootstrap_resample(x, rng);
  EXPECT_EQ(r.size(), 3u);
  for (const double v : r) {
    EXPECT_TRUE(v == 1.0 || v == 2.0 || v == 3.0);
  }
}

TEST(PercentileBootstrapCi, ContainsSampleMean) {
  rngx::Rng rng{2};
  std::vector<double> x(200);
  rngx::Rng data_rng{3};
  for (double& v : x) v = data_rng.normal(10.0, 2.0);
  const auto ci = percentile_bootstrap_ci(
      x, [](std::span<const double> s) { return mean(s); }, rng, 2000);
  EXPECT_LT(ci.lower, mean(x));
  EXPECT_GT(ci.upper, mean(x));
  EXPECT_DOUBLE_EQ(ci.level, 0.95);
}

TEST(PercentileBootstrapCi, WidthMatchesTheory) {
  // For the mean of n normal draws, the 95% CI width should be close to
  // 2·1.96·σ/√n.
  rngx::Rng rng{4};
  std::vector<double> x(400);
  rngx::Rng data_rng{5};
  for (double& v : x) v = data_rng.normal(0.0, 1.0);
  const auto ci = percentile_bootstrap_ci(
      x, [](std::span<const double> s) { return mean(s); }, rng, 4000);
  const double width = ci.upper - ci.lower;
  const double theory = 2.0 * 1.96 / 20.0;  // σ=1, √n=20
  EXPECT_NEAR(width, theory, theory * 0.25);
}

TEST(PercentileBootstrapCi, CoverageNearNominal) {
  // Property check: ~95% of CIs should contain the true mean.
  rngx::Rng master{6};
  int covered = 0;
  constexpr int rounds = 200;
  for (int r = 0; r < rounds; ++r) {
    std::vector<double> x(60);
    for (double& v : x) v = master.normal(3.0, 1.0);
    auto ci_rng = master.split("ci");
    const auto ci = percentile_bootstrap_ci(
        x, [](std::span<const double> s) { return mean(s); }, ci_rng, 500);
    if (ci.lower <= 3.0 && 3.0 <= ci.upper) ++covered;
  }
  const double coverage = static_cast<double>(covered) / rounds;
  EXPECT_GT(coverage, 0.88);
  EXPECT_LE(coverage, 1.0);
}

TEST(PercentileBootstrapCi, AlphaControlsWidth) {
  rngx::Rng rng1{7};
  rngx::Rng rng2{7};
  std::vector<double> x(100);
  rngx::Rng data_rng{8};
  for (double& v : x) v = data_rng.normal();
  const auto wide = percentile_bootstrap_ci(
      x, [](std::span<const double> s) { return mean(s); }, rng1, 2000, 0.01);
  const auto narrow = percentile_bootstrap_ci(
      x, [](std::span<const double> s) { return mean(s); }, rng2, 2000, 0.20);
  EXPECT_GT(wide.upper - wide.lower, narrow.upper - narrow.lower);
}

TEST(PercentileBootstrapCi, EmptyThrows) {
  rngx::Rng rng{1};
  const std::vector<double> empty;
  EXPECT_THROW((void)percentile_bootstrap_ci(
                   empty, [](std::span<const double>) { return 0.0; }, rng),
               std::invalid_argument);
}

TEST(PairedPercentileBootstrapCi, PreservesPairing) {
  // Statistic = mean difference. With perfectly paired data (b = a - 1),
  // the paired CI must be degenerate at exactly 1.0.
  rngx::Rng rng{9};
  std::vector<double> a(50);
  std::vector<double> b(50);
  rngx::Rng data_rng{10};
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = data_rng.normal(0.0, 5.0);
    b[i] = a[i] - 1.0;
  }
  const auto ci = paired_percentile_bootstrap_ci(
      a, b,
      [](std::span<const double> ra, std::span<const double> rb) {
        double d = 0.0;
        for (std::size_t i = 0; i < ra.size(); ++i) d += ra[i] - rb[i];
        return d / static_cast<double>(ra.size());
      },
      rng, 500);
  EXPECT_NEAR(ci.lower, 1.0, 1e-9);
  EXPECT_NEAR(ci.upper, 1.0, 1e-9);
}

TEST(PairedPercentileBootstrapCi, MismatchedSizesThrow) {
  rngx::Rng rng{1};
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0};
  EXPECT_THROW(
      (void)paired_percentile_bootstrap_ci(
          a, b,
          [](std::span<const double>, std::span<const double>) { return 0.0; },
          rng),
      std::invalid_argument);
}

}  // namespace
}  // namespace varbench::stats

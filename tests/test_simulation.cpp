#include "src/compare/simulation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/stats/descriptive.h"
#include "src/stats/prob_outperform.h"

namespace varbench::compare {
namespace {

TaskVarianceProfile demo_profile() {
  TaskVarianceProfile p;
  p.task = "demo";
  p.mu = 0.8;
  p.sigma_ideal = 0.02;
  p.sigma_bias = 0.01;
  p.sigma_within = 0.015;
  return p;
}

TEST(Profile, TotalBiasedSigma) {
  const auto p = demo_profile();
  EXPECT_NEAR(p.sigma_biased_total(),
              std::sqrt(0.01 * 0.01 + 0.015 * 0.015), 1e-12);
}

TEST(Simulate, IdealMomentsMatch) {
  const auto p = demo_profile();
  rngx::Rng rng{1};
  const auto x = simulate_measures(p, EstimatorKind::kIdeal, 0.0, 20000, rng);
  EXPECT_NEAR(stats::mean(x), 0.8, 0.001);
  EXPECT_NEAR(stats::stddev(x), 0.02, 0.001);
}

TEST(Simulate, BiasedSharesOneBiasPerCall) {
  // Within one call, the bias is sampled once → the within-call std is
  // sigma_within, not the total.
  const auto p = demo_profile();
  rngx::Rng rng{2};
  const auto x = simulate_measures(p, EstimatorKind::kBiased, 0.0, 20000, rng);
  EXPECT_NEAR(stats::stddev(x), p.sigma_within, 0.002);
}

TEST(Simulate, BiasedMarginalStdAcrossCalls) {
  // Across many calls the total spread includes the bias term.
  const auto p = demo_profile();
  rngx::Rng rng{3};
  std::vector<double> singles;
  for (int i = 0; i < 20000; ++i) {
    singles.push_back(
        simulate_measures(p, EstimatorKind::kBiased, 0.0, 1, rng)[0]);
  }
  EXPECT_NEAR(stats::stddev(singles), p.sigma_biased_total(), 0.002);
}

TEST(Simulate, OffsetShiftsMean) {
  const auto p = demo_profile();
  rngx::Rng rng{4};
  const auto x = simulate_measures(p, EstimatorKind::kIdeal, 0.05, 5000, rng);
  EXPECT_NEAR(stats::mean(x), 0.85, 0.002);
}

TEST(MeanOffset, RoundTripsWithProbability) {
  for (const double p : {0.55, 0.6, 0.75, 0.9, 0.99}) {
    const double delta = mean_offset_for_probability(p, 0.02);
    EXPECT_NEAR(probability_for_mean_offset(delta, 0.02), p, 1e-10);
  }
}

TEST(MeanOffset, HalfGivesZero) {
  EXPECT_NEAR(mean_offset_for_probability(0.5, 1.0), 0.0, 1e-12);
}

TEST(MeanOffset, EmpiricalPabMatchesRequested) {
  // Simulate two algorithms at a target P(A>B) and verify the empirical
  // win rate converges to the target — the consistency check behind Fig. 6's
  // x-axis.
  const auto profile = demo_profile();
  const double target = 0.75;
  const double offset =
      mean_offset_for_probability(target, profile.sigma_ideal);
  rngx::Rng rng{5};
  const auto a =
      simulate_measures(profile, EstimatorKind::kIdeal, offset, 50000, rng);
  const auto b =
      simulate_measures(profile, EstimatorKind::kIdeal, 0.0, 50000, rng);
  EXPECT_NEAR(stats::probability_of_outperforming(a, b), target, 0.01);
}

TEST(Simulate, InvalidInputsThrow) {
  const auto p = demo_profile();
  rngx::Rng rng{6};
  EXPECT_THROW((void)simulate_measures(p, EstimatorKind::kIdeal, 0.0, 0, rng),
               std::invalid_argument);
  EXPECT_THROW((void)mean_offset_for_probability(0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)probability_for_mean_offset(0.1, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace varbench::compare

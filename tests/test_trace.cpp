// Trace-layer contract (docs/tracing.md): zero overhead while disabled
// (no allocation, no clock reads beyond one branch), identity-derived span
// idents so the same campaign traced at any worker split yields the same
// timestamp-free shape, deterministic serialization/stitching, and —
// the hard invariant — traces are provenance, never identity: enabling
// tracing changes no artifact bytes.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/campaign/campaign.h"
#include "src/campaign/subprocess.h"
#include "src/campaign/work_queue.h"
#include "src/exec/exec_context.h"
#include "src/exec/parallel_for.h"
#include "src/io/json.h"
#include "src/study/result_table.h"
#include "src/study/study_runner.h"
#include "src/study/study_spec.h"
#include "src/trace/file.h"
#include "src/trace/stitch.h"
#include "src/trace/stopwatch.h"
#include "src/trace/trace.h"

namespace varbench::trace {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_{fs::temp_directory_path() /
              ("varbench_trace_" + tag + "_" +
               std::to_string(campaign::current_process_id()))} {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

// ------------------------------------------------------------- registry

TEST(SpanRegistry, NamesAreUniqueAndRoundTrip) {
  const auto& defs = span_defs();
  ASSERT_EQ(defs.size(), static_cast<std::size_t>(kNumSpans));
  std::set<std::string_view> names;
  for (SpanId id = 0; id < kNumSpans; ++id) {
    EXPECT_TRUE(names.insert(defs[id].name).second) << defs[id].name;
    EXPECT_FALSE(defs[id].subsystem.empty());
    EXPECT_FALSE(defs[id].help.empty());
    EXPECT_EQ(span_id(defs[id].name), id);
  }
  EXPECT_EQ(span_id("exec.chunk"), static_cast<SpanId>(kExecChunk));
  EXPECT_EQ(defs[kCampaignTaskQueued].kind, SpanKind::kInstant);
  EXPECT_EQ(defs[kExecRegion].kind, SpanKind::kSpan);
}

TEST(SpanRegistry, UnknownNameThrows) {
  EXPECT_THROW((void)span_id("exec.nope"), std::invalid_argument);
}

// --------------------------------------------------------------- tracer

TEST(TracerTest, DisabledTracerRecordsAndAllocatesNothing) {
  Tracer t;
  EXPECT_FALSE(t.any_enabled());
  { const ScopedSpan s{t, kExecRegion, 7}; }
  instant(t, kCampaignTaskQueued, 9);
  span_end(t, kCampaignTaskRunning, 1, span_begin(t, kCampaignTaskRunning));
  t.emit(kStudyRun, 1, 2, 3);
  // The disabled path must not even allocate a buffer — that is the
  // "zero-overhead when off" half of the contract.
  EXPECT_EQ(t.allocated_buffers(), 0u);
  EXPECT_TRUE(t.take_events().empty());
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(TracerTest, EnableSelectionBySubsystemNameAndAll) {
  Tracer t;
  enable_selection(t, "exec");
  EXPECT_TRUE(t.is_enabled(kExecRegion));
  EXPECT_TRUE(t.is_enabled(kExecChunk));
  EXPECT_FALSE(t.is_enabled(kStudyRun));
  enable_selection(t, "study.run, campaign.task_running");
  EXPECT_TRUE(t.is_enabled(kStudyRun));
  EXPECT_TRUE(t.is_enabled(kCampaignTaskRunning));
  EXPECT_FALSE(t.is_enabled(kCampaignTaskQueued));
  enable_selection(t, "none");
  EXPECT_FALSE(t.any_enabled());
  enable_selection(t, "all");
  for (SpanId id = 0; id < kNumSpans; ++id) EXPECT_TRUE(t.is_enabled(id));
  EXPECT_THROW(enable_selection(t, "exec.bogus"), std::invalid_argument);
  EXPECT_THROW(enable_selection(t, "tracing"), std::invalid_argument);
}

TEST(TracerTest, TakeEventsSortsDeterministicallyAndResetsSequence) {
  Tracer t;
  t.enable(kExecRegion);
  t.emit(kExecRegion, 5, /*start_ns=*/200, /*dur_ns=*/10);
  t.emit(kExecRegion, 4, /*start_ns=*/100, /*dur_ns=*/10);
  t.emit(kExecRegion, 3, /*start_ns=*/100, /*dur_ns=*/5);
  EXPECT_EQ(t.next_sequence(), 0u);
  EXPECT_EQ(t.next_sequence(), 1u);
  const auto events = t.take_events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].ident, 3u);  // (100, region, 3) < (100, region, 4)
  EXPECT_EQ(events[1].ident, 4u);
  EXPECT_EQ(events[2].ident, 5u);
  // take_events resets the sequence so every flushed trace numbers from 0.
  EXPECT_EQ(t.next_sequence(), 0u);
}

TEST(TracerTest, ParallelForEmitsRegionAndChunkSpans) {
  Tracer t;
  enable_selection(t, "exec");
  exec::ExecContext ctx{2};
  ctx.tracer = &t;
  std::vector<double> out(64, 0.0);
  exec::parallel_for(ctx, 0, out.size(), [&](std::size_t i) {
    out[i] = static_cast<double>(i);
  });
  const auto events = t.take_events();
  std::size_t regions = 0;
  std::size_t chunks = 0;
  std::uint64_t region_ident = 0;
  for (const SpanEvent& e : events) {
    if (e.span == kExecRegion) {
      ++regions;
      region_ident = e.ident;
      EXPECT_GT(e.dur_ns, 0u);
    }
    if (e.span == kExecChunk) ++chunks;
  }
  EXPECT_EQ(regions, 1u);
  EXPECT_GE(chunks, 1u);
  // Chunk idents pack (region sequence << 32) | chunk index.
  for (const SpanEvent& e : events) {
    if (e.span == kExecChunk) {
      EXPECT_EQ(e.ident >> 32, region_ident);
    }
  }
  EXPECT_EQ(out[63], 63.0);
}

// ------------------------------------------------------------ trace file

TraceFile sample_file() {
  TraceFile f;
  f.process = "worker-s0-0of2";
  f.dropped = 2;
  f.spans = {SpanEvent{kExecRegion, 0, 0, 100, 50},
             SpanEvent{kExecChunk, 0, 1, 110, 20},
             SpanEvent{kCampaignTaskQueued, 77, 0, 90, 0}};
  std::sort(f.spans.begin(), f.spans.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              return a.start_ns < b.start_ns;
            });
  f.labels = {{77, "s0-0of2"}};
  return f;
}

TEST(TraceFileTest, JsonRoundTripIsLossless) {
  const TraceFile f = sample_file();
  const std::string text = to_json_text(f);
  EXPECT_NE(text.find("varbench.trace.v1"), std::string::npos);
  EXPECT_NE(text.find("campaign.task_queued"), std::string::npos);
  const TraceFile back = parse_trace_file(text, "mem");
  EXPECT_EQ(back, f);
}

TEST(TraceFileTest, ParseErrorsAreActionableAndNamePath) {
  const auto expect_error = [](const std::string& text,
                               const std::string& needle) {
    try {
      (void)parse_trace_file(text, "traces/x.trace.json");
      FAIL() << "expected io::JsonError";
    } catch (const io::JsonError& e) {
      EXPECT_NE(std::string{e.what()}.find("traces/x.trace.json"),
                std::string::npos)
          << e.what();
      EXPECT_NE(std::string{e.what()}.find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error("{", "x.trace.json");
  expect_error(R"({"schema": "other.v9"})", "schema");
  std::string text = to_json_text(sample_file());
  const std::string from = "exec.region";
  text.replace(text.find(from), from.size(), "exec.nopes");
  expect_error(text, "exec.nopes");
}

TEST(TraceFileTest, DrainEmptiesTheTracer) {
  Tracer t;
  t.enable(kStudyRun);
  t.emit(kStudyRun, 1, 10, 5);
  t.set_label(1, "variance:cifar10_vgg11");
  const TraceFile f = drain(t, "proc");
  EXPECT_EQ(f.process, "proc");
  ASSERT_EQ(f.spans.size(), 1u);
  ASSERT_EQ(f.labels.size(), 1u);
  EXPECT_EQ(f.labels[0].second, "variance:cifar10_vgg11");
  EXPECT_TRUE(t.take_events().empty());
  EXPECT_TRUE(t.take_labels().empty());
}

TEST(TraceFileTest, AppendMergesSortsAndDedupsLabels) {
  TraceFile a = sample_file();
  TraceFile b;
  b.process = a.process;
  b.dropped = 1;
  b.spans = {SpanEvent{kExecRegion, 9, 0, 10, 1}};
  b.labels = {{77, "s0-0of2"}, {5, "other"}};
  append(a, std::move(b));
  EXPECT_EQ(a.dropped, 3u);
  ASSERT_EQ(a.spans.size(), 4u);
  EXPECT_EQ(a.spans.front().ident, 9u);  // earliest start first
  ASSERT_EQ(a.labels.size(), 2u);
  EXPECT_EQ(a.labels[0].first, 5u);  // sorted, duplicate 77 dropped
  EXPECT_EQ(a.labels[1].first, 77u);
}

// --------------------------------------------------------------- stitch

TEST(StitchTest, MissingTracesAreActionable) {
  const TempDir dir{"nodir"};
  try {
    (void)stitch_state_dir(dir.str() + "/nope");
    FAIL() << "expected io::JsonError";
  } catch (const io::JsonError& e) {
    EXPECT_NE(std::string{e.what()}.find("--trace"), std::string::npos);
  }
  // traces/ exists but is empty: same actionable hint.
  fs::create_directories(fs::path{dir.str()} / "traces");
  EXPECT_THROW((void)stitch_state_dir(dir.str()), io::JsonError);
}

TEST(StitchTest, StitchesLexicographicallyAndExportsChrome) {
  const TempDir dir{"stitch"};
  fs::create_directories(fs::path{dir.str()} / "traces");
  TraceFile worker = sample_file();
  TraceFile coord;
  coord.process = "coordinator";
  coord.spans = {SpanEvent{kCampaignStudyMerged, 0, 0, 1'000, 300}};
  write_trace_file(dir.str() + "/traces/worker-s0-0of2.trace.json", worker);
  write_trace_file(dir.str() + "/traces/coordinator.trace.json", coord);

  const StitchedTrace stitched = stitch_state_dir(dir.str());
  ASSERT_EQ(stitched.processes.size(), 2u);
  // Lexicographic by file name: coordinator.trace.json sorts first.
  EXPECT_EQ(stitched.processes[0].process, "coordinator");
  EXPECT_EQ(stitched.processes[1].process, "worker-s0-0of2");
  EXPECT_EQ(stitched.total_spans(), 4u);

  const io::Json doc = chrome_trace_json(stitched);
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const auto& events = doc.at("traceEvents").as_array();
  // 2 process_name metadata rows + 4 span events.
  ASSERT_EQ(events.size(), 6u);
  std::size_t metas = 0;
  std::size_t durations = 0;
  std::size_t instants = 0;
  double min_ts = 1e300;
  for (const io::Json& e : events) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "M") {
      ++metas;
      EXPECT_EQ(e.at("name").as_string(), "process_name");
      continue;
    }
    EXPECT_GE(e.at("pid").as_uint64(), 1u);  // pid 0 is reserved
    min_ts = std::min(min_ts, e.at("ts").as_double());
    if (ph == "X") {
      ++durations;
      EXPECT_GE(e.at("dur").as_double(), 0.0);
    } else if (ph == "i") {
      ++instants;
      EXPECT_EQ(e.at("s").as_string(), "t");
    }
  }
  EXPECT_EQ(metas, 2u);
  EXPECT_EQ(durations, 3u);
  EXPECT_EQ(instants, 1u);
  // Each process timeline is normalized to its own earliest event.
  EXPECT_EQ(min_ts, 0.0);
  // The labeled ident surfaces as args.label on its events.
  bool labeled = false;
  for (const io::Json& e : events) {
    const io::Json* args = e.find("args");
    if (args == nullptr) continue;
    const io::Json* label = args->find("label");
    labeled = labeled || (label != nullptr && label->as_string() == "s0-0of2");
  }
  EXPECT_TRUE(labeled);
}

TEST(StitchTest, SummaryTableAggregatesPerSpan) {
  StitchedTrace stitched;
  stitched.processes.push_back(sample_file());
  const study::ResultTable table = summary_table(stitched);
  EXPECT_EQ(table.name, "trace:summary");
  const std::vector<std::string> want{"seq",   "span",     "subsystem",
                                      "kind",  "count",    "total_ms",
                                      "mean_ms", "max_ms"};
  EXPECT_EQ(table.columns, want);
  ASSERT_EQ(table.rows.size(), 3u);  // region, chunk, queued — id order
  EXPECT_EQ(table.rows[0][1].as_string(), "exec.region");
  EXPECT_EQ(table.rows[0][4].as_uint64(), 1u);
  EXPECT_DOUBLE_EQ(table.rows[0][5].as_double(), 50.0 / 1e6);  // 50 ns in ms
  EXPECT_EQ(table.rows[2][1].as_string(), "campaign.task_queued");
  EXPECT_EQ(table.rows[2][3].as_string(), "instant");
}

// ----------------------------------------------- campaign determinism

study::StudySpec tiny_compare_spec() {
  study::StudySpec spec;
  spec.kind = study::StudyKind::kCompare;
  spec.case_study = "cifar10_vgg11";
  spec.scale = 0.08;
  spec.seed = 20260809;
  spec.repetitions = 5;
  spec.compare.num_resamples = 50;
  return spec;
}

campaign::CampaignConfig traced_config(const std::string& dir,
                                       std::size_t workers) {
  campaign::CampaignConfig cfg;
  cfg.dir = dir;
  cfg.shards = 2;
  cfg.workers = workers;
  cfg.stale_after = std::chrono::minutes{10};
  cfg.poll_interval = std::chrono::milliseconds{1};
  cfg.trace = true;
  return cfg;
}

TEST(CampaignTrace, ShapeIsWorkerCountInvariantAndArtifactsUnchanged) {
  const auto spec = tiny_compare_spec();

  // Baseline: the same campaign with tracing off.
  const TempDir plain_dir{"plain"};
  std::string plain_merged;
  {
    auto cfg = traced_config(plain_dir.str(), 1);
    cfg.trace = false;
    const auto report = campaign::run_campaign(
        cfg, {spec}, campaign::in_process_launcher());
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(report.merged_outputs.size(), 1u);
    plain_merged = io::read_file(report.merged_outputs[0]);
  }
  ASSERT_FALSE(plain_merged.empty());

  const TempDir one_dir{"w1"};
  const TempDir four_dir{"w4"};
  std::vector<std::string> merged_texts;
  for (const auto& [dir, workers] :
       {std::pair<const TempDir*, std::size_t>{&one_dir, 1},
        std::pair<const TempDir*, std::size_t>{&four_dir, 4}}) {
    const auto report = campaign::run_campaign(
        traced_config(dir->str(), workers), {spec},
        campaign::in_process_launcher(/*trace=*/true));
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(report.merged_outputs.size(), 1u);
    merged_texts.push_back(io::read_file(report.merged_outputs[0]));
    // Every worker left its trace, and the coordinator left its own.
    EXPECT_TRUE(fs::exists(fs::path{dir->str()} / "traces" /
                           "worker-s0-0of2.trace.json"));
    EXPECT_TRUE(fs::exists(fs::path{dir->str()} / "traces" /
                           "coordinator.trace.json"));
  }
  // in_process_launcher(true) enabled the process-global tracer; put it
  // back so later tests in this binary see the all-disabled default.
  global_tracer().disable_all();
  global_tracer().reset();

  // Traces are provenance, never identity: tracing on (at any worker
  // count) changes no artifact bytes.
  EXPECT_EQ(merged_texts[0], plain_merged);
  EXPECT_EQ(merged_texts[1], plain_merged);

  const StitchedTrace one = stitch_state_dir(one_dir.str());
  const StitchedTrace four = stitch_state_dir(four_dir.str());
  // Identity-derived idents: after stripping timestamps, the 1-worker and
  // 4-worker runs recorded the same (span, ident) multiset.
  EXPECT_EQ(span_shape(one), span_shape(four));

  // The trace covers all three instrumented layers of this campaign:
  // campaign lifecycle, study runs, exec regions.
  std::set<std::string_view> subsystems;
  for (const TraceFile& file : one.processes) {
    for (const SpanEvent& e : file.spans) {
      subsystems.insert(span_defs()[e.span].subsystem);
    }
  }
  EXPECT_TRUE(subsystems.count("campaign"));
  EXPECT_TRUE(subsystems.count("study"));
  EXPECT_TRUE(subsystems.count("exec"));
  // Lifecycle completeness: each task was queued, claimed, run, promoted.
  const auto count = [&](SpanId id) {
    std::size_t n = 0;
    for (const TraceFile& f : one.processes) {
      for (const SpanEvent& e : f.spans) n += e.span == id ? 1 : 0;
    }
    return n;
  };
  EXPECT_EQ(count(kCampaignTaskQueued), 2u);
  EXPECT_EQ(count(kCampaignTaskClaimed), 2u);
  EXPECT_EQ(count(kCampaignTaskRunning), 2u);
  EXPECT_EQ(count(kCampaignTaskPromoted), 2u);
  EXPECT_EQ(count(kCampaignTaskRetried), 0u);
  EXPECT_EQ(count(kCampaignStudyMerged), 1u);
  EXPECT_EQ(count(kStudyRun), 2u);  // one per worker task
}

}  // namespace
}  // namespace varbench::trace

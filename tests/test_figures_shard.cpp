// Shard/merge byte-identity for the figure study kinds, mirroring
// tests/test_study_shard.cpp: running a figure spec in N shards — each
// shard at a DIFFERENT thread count — and merging the artifacts must be
// bit-identical to the unsharded run, because every repetition/grid unit
// runs on an RNG stream keyed by its global index (docs/study_api.md).
#include <gtest/gtest.h>

#include "src/study/figures/figures.h"
#include "src/study/result_table.h"
#include "src/study/study_runner.h"
#include "src/study/study_spec.h"

namespace varbench::study {
namespace {

StudySpec tiny_figure_spec(StudyKind kind) {
  StudySpec spec = figures::default_figure_spec(kind);
  spec.scale = 0.08;
  spec.seed = 20260727;
  switch (kind) {
    case StudyKind::kFig01VarianceSources:
      spec.repetitions = 4;
      spec.figure.tasks = {"cifar10_vgg11"};
      spec.figure.hpo_algorithms = {"random_search"};
      spec.figure.hpo_repetitions = 2;
      spec.figure.hpo_budget = 2;
      break;
    case StudyKind::kFig06DetectionRates:
      spec.repetitions = 3;
      spec.figure.tasks = {"cifar10_vgg11", "glue_rte_bert"};
      spec.figure.k = 5;
      spec.figure.resamples = 10;
      spec.figure.p_grid = {0.5, 0.9};
      break;
    case StudyKind::kFigH5MseDecomposition:
      spec.repetitions = 6;
      spec.figure.tasks = {"glue_rte_bert"};
      spec.figure.k = 5;
      break;
    case StudyKind::kFig05EstimatorStderr:
      spec.repetitions = 4;
      spec.figure.tasks = {"cifar10_vgg11"};
      spec.figure.k_grid = {1, 5};
      break;
    case StudyKind::kFigG3Normality:
      spec.repetitions = 4;
      spec.figure.tasks = {"cifar10_vgg11"};
      break;
    case StudyKind::kMultiDataset:
      spec.repetitions = 3;
      spec.figure.tasks = {"cifar10_vgg11"};
      break;
    default:
      break;  // analytic kinds run their defaults
  }
  return spec;
}

void expect_shards_merge_to_unsharded(StudyKind kind,
                                      std::size_t shard_count,
                                      const ResultTable& unsharded) {
  const StudySpec spec = tiny_figure_spec(kind);
  std::vector<ResultTable> shards;
  for (std::size_t i = 0; i < shard_count; ++i) {
    StudySpec shard_spec = spec;
    shard_spec.shard = ShardSpec{i, shard_count};
    // Vary the thread count per shard: results must not depend on it.
    shard_spec.threads = 1 + i;
    shards.push_back(run_study(shard_spec));
    EXPECT_FALSE(shards.back().is_complete());
  }
  const ResultTable merged = merge_result_tables(std::move(shards));
  EXPECT_EQ(merged.canonical_text(), unsharded.canonical_text())
      << to_string(kind) << " " << shard_count << "-shard merge diverged";
  EXPECT_EQ(merged.rows.size(), unsharded.rows.size());
}

void expect_kind_shards_exactly(StudyKind kind) {
  const ResultTable unsharded = run_study(tiny_figure_spec(kind));
  ASSERT_TRUE(unsharded.is_complete());
  ASSERT_GT(unsharded.rows.size(), 0u);
  expect_shards_merge_to_unsharded(kind, 2, unsharded);
  expect_shards_merge_to_unsharded(kind, 3, unsharded);
}

TEST(FigureShard, Fig01TwoAndThreeShards) {
  expect_kind_shards_exactly(StudyKind::kFig01VarianceSources);
}

TEST(FigureShard, Fig06TwoAndThreeShards) {
  expect_kind_shards_exactly(StudyKind::kFig06DetectionRates);
}

TEST(FigureShard, FigH5TwoAndThreeShards) {
  expect_kind_shards_exactly(StudyKind::kFigH5MseDecomposition);
}

TEST(FigureShard, Fig05TwoAndThreeShards) {
  expect_kind_shards_exactly(StudyKind::kFig05EstimatorStderr);
}

TEST(FigureShard, FigG3TwoAndThreeShards) {
  expect_kind_shards_exactly(StudyKind::kFigG3Normality);
}

TEST(FigureShard, MultiDatasetTwoAndThreeShards) {
  expect_kind_shards_exactly(StudyKind::kMultiDataset);
}

TEST(FigureShard, AnalyticGridsShard) {
  expect_kind_shards_exactly(StudyKind::kFigC1SampleSize);
  expect_kind_shards_exactly(StudyKind::kFig04EstimatorCost);
  expect_kind_shards_exactly(StudyKind::kFig03Sota);
}

TEST(FigureShard, MoreShardsThanUnits) {
  // Slices beyond the unit count are empty and must merge cleanly.
  const StudySpec spec = tiny_figure_spec(StudyKind::kFigH5MseDecomposition);
  const ResultTable unsharded = run_study(spec);
  std::vector<ResultTable> shards;
  for (std::size_t i = 0; i < 9; ++i) {
    StudySpec shard_spec = spec;
    shard_spec.shard = ShardSpec{i, 9};
    shards.push_back(run_study(shard_spec));
  }
  const ResultTable merged = merge_result_tables(std::move(shards));
  EXPECT_EQ(merged.canonical_text(), unsharded.canonical_text());
}

TEST(FigureShard, ArtifactsSurviveSerialization) {
  // Merge after a JSON round-trip of each shard — the cross-process path
  // campaign workers take.
  const StudySpec spec = tiny_figure_spec(StudyKind::kFig06DetectionRates);
  const ResultTable unsharded = run_study(spec);
  std::vector<ResultTable> shards;
  for (std::size_t i = 0; i < 2; ++i) {
    StudySpec shard_spec = spec;
    shard_spec.shard = ShardSpec{i, 2};
    const ResultTable t = run_study(shard_spec);
    shards.push_back(ResultTable::from_json_text(t.to_json_text()));
    EXPECT_EQ(shards.back(), t);
  }
  const ResultTable merged = merge_result_tables(std::move(shards));
  EXPECT_EQ(merged.canonical_text(), unsharded.canonical_text());
}

}  // namespace
}  // namespace varbench::study

#include "src/core/splitter.h"

#include <gtest/gtest.h>

#include <cmath>

#include <set>

#include "src/ml/synthetic.h"

namespace varbench::core {
namespace {

ml::Dataset pool_of(std::size_t n, std::size_t classes = 2) {
  ml::GaussianMixtureConfig cfg;
  cfg.num_classes = classes;
  cfg.dim = 3;
  cfg.n = n;
  rngx::Rng rng{1};
  return ml::make_gaussian_mixture(cfg, rng);
}

TEST(OutOfBootstrap, TrainAndTestDisjointSources) {
  const auto pool = pool_of(200);
  const OutOfBootstrapSplitter splitter;
  rngx::Rng rng{2};
  const auto s = splitter.split(pool, rng);
  const std::set<std::size_t> train_set(s.train.begin(), s.train.end());
  for (const auto t : s.test) {
    EXPECT_EQ(train_set.count(t), 0u)
        << "test row " << t << " leaked into the bootstrap train set";
  }
}

TEST(OutOfBootstrap, DefaultSizesMatchEfron) {
  // Bootstrap of size n leaves ≈ n·e⁻¹ ≈ 36.8% out-of-bag on average.
  const auto pool = pool_of(1000);
  const OutOfBootstrapSplitter splitter;
  rngx::Rng rng{3};
  double oob_total = 0.0;
  constexpr int rounds = 50;
  for (int i = 0; i < rounds; ++i) {
    const auto s = splitter.split(pool, rng);
    EXPECT_EQ(s.train.size(), 1000u);
    oob_total += static_cast<double>(s.test.size());
  }
  EXPECT_NEAR(oob_total / rounds / 1000.0, std::exp(-1.0), 0.02);
}

TEST(OutOfBootstrap, ExplicitSizesRespected) {
  const auto pool = pool_of(500);
  const OutOfBootstrapSplitter splitter{200, 100};
  rngx::Rng rng{4};
  const auto s = splitter.split(pool, rng);
  EXPECT_EQ(s.train.size(), 200u);
  EXPECT_EQ(s.test.size(), 100u);
}

TEST(OutOfBootstrap, StratifiedPreservesClassBalance) {
  const auto pool = pool_of(1000, 4);
  const OutOfBootstrapSplitter splitter{400, 0, /*stratified=*/true};
  rngx::Rng rng{5};
  const auto s = splitter.split(pool, rng);
  std::vector<std::size_t> counts(4, 0);
  for (const auto i : s.train) ++counts[ml::label_of(pool, i)];
  for (const auto c : counts) EXPECT_EQ(c, 100u);  // 400/4 per class
}

TEST(OutOfBootstrap, DifferentSeedsDifferentSplits) {
  const auto pool = pool_of(300);
  const OutOfBootstrapSplitter splitter{100, 50};
  rngx::Rng r1{6};
  rngx::Rng r2{7};
  EXPECT_NE(splitter.split(pool, r1).train, splitter.split(pool, r2).train);
}

TEST(OutOfBootstrap, SameSeedSameSplit) {
  const auto pool = pool_of(300);
  const OutOfBootstrapSplitter splitter{100, 50};
  rngx::Rng r1{8};
  rngx::Rng r2{8};
  const auto s1 = splitter.split(pool, r1);
  const auto s2 = splitter.split(pool, r2);
  EXPECT_EQ(s1.train, s2.train);
  EXPECT_EQ(s1.test, s2.test);
}

TEST(OutOfBootstrap, TrainSetHasDuplicates) {
  const auto pool = pool_of(300);
  const OutOfBootstrapSplitter splitter;
  rngx::Rng rng{9};
  const auto s = splitter.split(pool, rng);
  const std::set<std::size_t> unique(s.train.begin(), s.train.end());
  EXPECT_LT(unique.size(), s.train.size());
}

TEST(OutOfBootstrap, EmptyPoolThrows) {
  const ml::Dataset empty;
  const OutOfBootstrapSplitter splitter;
  rngx::Rng rng{1};
  EXPECT_THROW((void)splitter.split(empty, rng), std::invalid_argument);
}

TEST(FixedHoldout, DeterministicRegardlessOfSeed) {
  const auto pool = pool_of(100);
  const FixedHoldoutSplitter splitter{0.8};
  rngx::Rng r1{10};
  rngx::Rng r2{11};
  const auto s1 = splitter.split(pool, r1);
  const auto s2 = splitter.split(pool, r2);
  EXPECT_EQ(s1.train, s2.train);
  EXPECT_EQ(s1.test, s2.test);
  EXPECT_EQ(s1.train.size(), 80u);
  EXPECT_EQ(s1.test.size(), 20u);
}

TEST(FixedHoldout, BadRatioThrows) {
  EXPECT_THROW(FixedHoldoutSplitter{0.0}, std::invalid_argument);
  EXPECT_THROW(FixedHoldoutSplitter{1.0}, std::invalid_argument);
}

TEST(ShuffleSplit, PartitionWithoutReplacement) {
  const auto pool = pool_of(100);
  const ShuffleSplitter splitter{0.7};
  rngx::Rng rng{12};
  const auto s = splitter.split(pool, rng);
  EXPECT_EQ(s.train.size(), 70u);
  EXPECT_EQ(s.test.size(), 30u);
  std::set<std::size_t> all(s.train.begin(), s.train.end());
  all.insert(s.test.begin(), s.test.end());
  EXPECT_EQ(all.size(), 100u);  // exact partition, no duplicates
}

TEST(CrossValidation, FoldsPartitionData) {
  const auto pool = pool_of(100);
  rngx::Rng rng{13};
  const auto folds = cross_validation_folds(pool, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::set<std::size_t> all_test;
  for (const auto& f : folds) {
    EXPECT_EQ(f.train.size() + f.test.size(), 100u);
    all_test.insert(f.test.begin(), f.test.end());
  }
  EXPECT_EQ(all_test.size(), 100u);  // every row is a test row exactly once
}

TEST(CrossValidation, BadKThrows) {
  const auto pool = pool_of(10);
  rngx::Rng rng{1};
  EXPECT_THROW((void)cross_validation_folds(pool, 1, rng),
               std::invalid_argument);
  EXPECT_THROW((void)cross_validation_folds(pool, 11, rng),
               std::invalid_argument);
}

TEST(Materialize, ProducesCorrectDatasets) {
  const auto pool = pool_of(50);
  const ShuffleSplitter splitter{0.8};
  rngx::Rng rng{14};
  const auto s = splitter.split(pool, rng);
  const auto [train, test] = materialize(pool, s);
  EXPECT_EQ(train.size(), s.train.size());
  EXPECT_EQ(test.size(), s.test.size());
  EXPECT_EQ(train.num_classes, pool.num_classes);
  EXPECT_DOUBLE_EQ(train.y[0], pool.y[s.train[0]]);
}

}  // namespace
}  // namespace varbench::core

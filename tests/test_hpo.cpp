#include "src/hpo/hpo.h"

#include <gtest/gtest.h>

#include <cmath>

namespace varbench::hpo {
namespace {

// Smooth 2-d objective with a unique minimum at (lr=0.01, momentum=0.8).
double quadratic_objective(const ParamPoint& p) {
  const double a = std::log10(p.at("lr")) + 2.0;  // 0 at lr=0.01
  const double b = p.at("momentum") - 0.8;
  return a * a + 10.0 * b * b;
}

SearchSpace demo_space() {
  SearchSpace s;
  s.add({"lr", 1e-4, 1.0, ScaleKind::kLog})
      .add({"momentum", 0.5, 0.99, ScaleKind::kLinear});
  return s;
}

TEST(RandomSearch, FindsReasonableOptimum) {
  rngx::Rng rng{1};
  const RandomSearch algo;
  const auto r = algo.optimize(demo_space(), quadratic_objective, 100, rng);
  EXPECT_EQ(r.trials.size(), 100u);
  EXPECT_LT(r.best_objective, 0.3);
}

TEST(RandomSearch, BestMatchesTrials) {
  rngx::Rng rng{2};
  const RandomSearch algo;
  const auto r = algo.optimize(demo_space(), quadratic_objective, 50, rng);
  double min_obj = r.trials[0].objective;
  for (const auto& t : r.trials) min_obj = std::min(min_obj, t.objective);
  EXPECT_DOUBLE_EQ(r.best_objective, min_obj);
}

TEST(RandomSearch, SeedDeterminism) {
  rngx::Rng r1{3};
  rngx::Rng r2{3};
  const RandomSearch algo;
  const auto a = algo.optimize(demo_space(), quadratic_objective, 20, r1);
  const auto b = algo.optimize(demo_space(), quadratic_objective, 20, r2);
  EXPECT_DOUBLE_EQ(a.best_objective, b.best_objective);
}

TEST(RandomSearch, DifferentSeedsExploreDifferently) {
  rngx::Rng r1{4};
  rngx::Rng r2{5};
  const RandomSearch algo;
  const auto a = algo.optimize(demo_space(), quadratic_objective, 20, r1);
  const auto b = algo.optimize(demo_space(), quadratic_objective, 20, r2);
  EXPECT_NE(a.trials[0].params.at("lr"), b.trials[0].params.at("lr"));
}

TEST(GridSearch, IsDeterministicAndIgnoresSeed) {
  rngx::Rng r1{6};
  rngx::Rng r2{77};
  const GridSearch algo;
  const auto a = algo.optimize(demo_space(), quadratic_objective, 49, r1);
  const auto b = algo.optimize(demo_space(), quadratic_objective, 49, r2);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.trials[i].objective, b.trials[i].objective);
  }
}

TEST(GridSearch, CoversCorners) {
  const GridSearch algo;
  rngx::Rng rng{1};
  const auto r = algo.optimize(demo_space(), quadratic_objective, 9, rng);
  // 3×3 grid → 9 trials including all four corners.
  EXPECT_EQ(r.trials.size(), 9u);
  bool has_low_corner = false;
  for (const auto& t : r.trials) {
    if (std::abs(t.params.at("lr") - 1e-4) < 1e-12 &&
        std::abs(t.params.at("momentum") - 0.5) < 1e-12) {
      has_low_corner = true;
    }
  }
  EXPECT_TRUE(has_low_corner);
}

TEST(GridValues, LinearAndLogSpacing) {
  const Dimension lin{"x", 0.0, 10.0, ScaleKind::kLinear};
  const auto lv = grid_values(lin, 5);
  EXPECT_DOUBLE_EQ(lv[0], 0.0);
  EXPECT_DOUBLE_EQ(lv[2], 5.0);
  EXPECT_DOUBLE_EQ(lv[4], 10.0);
  const Dimension lg{"y", 1e-4, 1.0, ScaleKind::kLog};
  const auto gv = grid_values(lg, 5);
  EXPECT_NEAR(gv[1] / gv[0], 10.0, 1e-9);  // log-spaced decades
}

TEST(NoisyGridSearch, ExpectationCoversPlainGrid) {
  // Averaged over many seeds, the SORTED noisy grid values converge to the
  // plain grid (Appendix E.2's E[p̃ij] = pij); the evaluation order itself
  // is shuffled.
  const Dimension d{"x", 0.0, 10.0, ScaleKind::kLinear};
  SearchSpace space;
  space.add(d);
  const NoisyGridSearch algo;
  constexpr std::size_t budget = 5;
  std::vector<double> sums(budget, 0.0);
  constexpr int rounds = 3000;
  rngx::Rng rng{7};
  const Objective probe = [](const ParamPoint& p) { return p.at("x"); };
  for (int round = 0; round < rounds; ++round) {
    const auto r = algo.optimize(space, probe, budget, rng);
    std::vector<double> xs;
    for (const auto& t : r.trials) xs.push_back(t.params.at("x"));
    std::sort(xs.begin(), xs.end());
    for (std::size_t i = 0; i < budget; ++i) sums[i] += xs[i];
  }
  const auto plain = grid_values(d, budget);
  for (std::size_t i = 0; i < budget; ++i) {
    EXPECT_NEAR(sums[i] / rounds, plain[i], 0.1);
  }
}

TEST(NoisyGridSearch, IntegerDimensionStaysPositive) {
  // Bound jitter must never push an integer dimension below 1.
  SearchSpace space;
  space.add({"hidden", 1.0, 4.0, ScaleKind::kLinear, /*integer=*/true});
  const NoisyGridSearch algo;
  rngx::Rng rng{42};
  const Objective probe = [](const ParamPoint& p) {
    EXPECT_GE(p.at("hidden"), 1.0);
    return 0.0;
  };
  for (int round = 0; round < 50; ++round) {
    (void)algo.optimize(space, probe, 6, rng);
  }
}

TEST(RandomSearch, IntegerDimensionStaysPositiveWithEnlargedBounds) {
  SearchSpace space;
  space.add({"hidden", 1.0, 4.0, ScaleKind::kLinear, /*integer=*/true});
  const RandomSearch algo;
  rngx::Rng rng{43};
  const Objective probe = [](const ParamPoint& p) {
    EXPECT_GE(p.at("hidden"), 1.0);
    return 0.0;
  };
  (void)algo.optimize(space, probe, 200, rng);
}

TEST(NoisyGridSearch, VariesAcrossSeeds) {
  rngx::Rng r1{8};
  rngx::Rng r2{9};
  const NoisyGridSearch algo;
  const auto a = algo.optimize(demo_space(), quadratic_objective, 25, r1);
  const auto b = algo.optimize(demo_space(), quadratic_objective, 25, r2);
  EXPECT_NE(a.trials[0].params.at("lr"), b.trials[0].params.at("lr"));
}

TEST(HpoResult, BestSoFarIsMonotone) {
  rngx::Rng rng{10};
  const RandomSearch algo;
  const auto r = algo.optimize(demo_space(), quadratic_objective, 40, rng);
  const auto curve = r.best_so_far();
  ASSERT_EQ(curve.size(), 40u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i], curve[i - 1]);
  }
  EXPECT_DOUBLE_EQ(curve.back(), r.best_objective);
}

TEST(MakeHpoAlgorithm, FactoryNames) {
  EXPECT_EQ(make_hpo_algorithm("random_search")->name(), "random_search");
  EXPECT_EQ(make_hpo_algorithm("grid_search")->name(), "grid_search");
  EXPECT_EQ(make_hpo_algorithm("noisy_grid_search")->name(),
            "noisy_grid_search");
  EXPECT_EQ(make_hpo_algorithm("bayes_opt")->name(), "bayes_opt");
  EXPECT_THROW((void)make_hpo_algorithm("nope"), std::invalid_argument);
}

TEST(AllAlgorithms, ZeroBudgetThrows) {
  rngx::Rng rng{1};
  for (const auto* name :
       {"random_search", "grid_search", "noisy_grid_search", "bayes_opt"}) {
    const auto algo = make_hpo_algorithm(name);
    EXPECT_THROW(
        (void)algo->optimize(demo_space(), quadratic_objective, 0, rng),
        std::invalid_argument)
        << name;
  }
}

}  // namespace
}  // namespace varbench::hpo

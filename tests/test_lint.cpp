// The varlint suite: the lexer, every rule's hit/miss/suppression (via the
// golden fixtures in tests/lint_fixtures/), path scoping, the suppression
// meta-rules, and both renderers. Fixtures are linted under synthetic
// project-relative paths so one file can exercise a rule both inside and
// outside its scope.
#include "src/lint/lexer.h"
#include "src/lint/lint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/io/json.h"

namespace varbench::lint {
namespace {

namespace fs = std::filesystem;

std::string read_fixture(const std::string& name) {
  const fs::path path = fs::path{VARBENCH_LINT_FIXTURE_DIR} / name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<Finding> lint_fixture(const std::string& rel_path,
                                  const std::string& fixture) {
  return lint_source(rel_path, read_fixture(fixture));
}

/// Lines on which `rule` fired with the given suppression state, sorted.
std::vector<std::size_t> lines_of(const std::vector<Finding>& findings,
                                  const std::string& rule, bool suppressed) {
  std::vector<std::size_t> lines;
  for (const Finding& f : findings) {
    if (f.rule == rule && f.suppressed == suppressed) lines.push_back(f.line);
  }
  return lines;
}

using Lines = std::vector<std::size_t>;

// ------------------------------------------------------------------ lexer

TEST(LintLexer, CommentsAndStringsAreSingleTokens) {
  const auto toks = lex("a /* multi\nline */ \"str \\\" quote\" // tail\n");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].kind, Token::Kind::kIdent);
  EXPECT_EQ(toks[1].kind, Token::Kind::kComment);
  EXPECT_EQ(toks[2].kind, Token::Kind::kString);
  EXPECT_EQ(toks[2].text, "\"str \\\" quote\"");
  EXPECT_EQ(toks[2].line, 2u);
  EXPECT_EQ(toks[3].kind, Token::Kind::kComment);
}

TEST(LintLexer, RawStringsRespectDelimiters) {
  // The )" inside does not end a delimiter-tagged raw string.
  const auto toks = lex("auto s = R\"x(quote \" and )\" inside)x\";");
  std::size_t strings = 0;
  for (const Token& t : toks) {
    if (t.kind == Token::Kind::kString) {
      ++strings;
      EXPECT_EQ(t.text, "R\"x(quote \" and )\" inside)x\"");
    }
  }
  EXPECT_EQ(strings, 1u);
}

TEST(LintLexer, ScopeResolutionIsOneToken) {
  const auto toks = lex("std::chrono::now");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[1].text, "::");
  EXPECT_EQ(toks[3].text, "::");
  EXPECT_EQ(toks[1].kind, Token::Kind::kPunct);
}

TEST(LintLexer, NumbersWithSeparatorsAndSuffixes) {
  const auto toks = lex("1'000'000 0x1Fu 12.5e-3 60000ms");
  ASSERT_EQ(toks.size(), 4u);
  for (const Token& t : toks) {
    EXPECT_EQ(t.kind, Token::Kind::kNumber) << t.text;
  }
  EXPECT_EQ(toks[0].text, "1'000'000");
  EXPECT_EQ(toks[3].text, "60000ms");
}

TEST(LintLexer, CharLiteralsDoNotOpenStrings) {
  const auto toks = lex("char q = '\"'; int x = 1;");
  for (const Token& t : toks) {
    EXPECT_NE(t.kind, Token::Kind::kString) << t.text;
  }
}

TEST(LintLexer, MalformedInputDoesNotThrow) {
  EXPECT_NO_THROW((void)lex("\"unterminated"));
  EXPECT_NO_THROW((void)lex("/* unterminated"));
  EXPECT_NO_THROW((void)lex("R\"x(unterminated"));
}

// ---------------------------------------------------------------- registry

TEST(LintRegistry, AllRulesPresentWithUniqueNames) {
  const auto& reg = rule_registry();
  std::set<std::string> names;
  for (const RuleInfo& r : reg) {
    EXPECT_TRUE(names.insert(r.name).second) << "duplicate: " << r.name;
    EXPECT_FALSE(r.summary.empty()) << r.name;
  }
  for (const char* expected :
       {"no-raw-random", "no-wallclock", "no-raw-thread", "no-unordered-iter",
        "error-names-path", "header-hygiene", "suppression-syntax",
        "suppression-unused"}) {
    EXPECT_EQ(names.count(expected), 1u) << expected;
  }
}

// ------------------------------------------------------------- no-raw-random

TEST(LintRules, NoRawRandomHitsMissesAndSuppression) {
  const auto fs = lint_fixture("src/report/fx.cpp", "no_raw_random.cpp");
  EXPECT_EQ(lines_of(fs, "no-raw-random", false), (Lines{6, 7, 8, 9, 10}));
  EXPECT_EQ(lines_of(fs, "no-raw-random", true), (Lines{27}));
  EXPECT_EQ(count_unsuppressed(fs), 5u);
  for (const Finding& f : fs) {
    if (f.suppressed) {
      EXPECT_NE(f.suppress_reason.find("golden suppression"),
                std::string::npos);
    }
  }
}

TEST(LintRules, NoRawRandomExemptUnderRngx) {
  const auto fs = lint_fixture("src/rngx/fx.cpp", "no_raw_random.cpp");
  EXPECT_TRUE(lines_of(fs, "no-raw-random", false).empty());
  // With the rule out of scope, the fixture's suppression goes stale.
  EXPECT_EQ(lines_of(fs, "suppression-unused", false), (Lines{27}));
}

// -------------------------------------------------------------- no-wallclock

TEST(LintRules, NoWallclockHitsMissesAndSuppression) {
  const auto fs = lint_fixture("src/report/fx.cpp", "no_wallclock.cpp");
  EXPECT_EQ(lines_of(fs, "no-wallclock", false), (Lines{7, 8, 9, 10, 12}));
  // A standalone suppression comment with a wrapped reason covers the next
  // line holding code, not the comment's own continuation.
  EXPECT_EQ(lines_of(fs, "no-wallclock", true), (Lines{32}));
  EXPECT_TRUE(lines_of(fs, "suppression-unused", false).empty());
}

TEST(LintRules, NoWallclockExemptUnderCampaignAndBench) {
  for (const char* rel : {"src/campaign/fx.cpp", "bench/fx.cpp"}) {
    const auto fs = lint_fixture(rel, "no_wallclock.cpp");
    EXPECT_TRUE(lines_of(fs, "no-wallclock", false).empty()) << rel;
  }
}

// ------------------------------------------------------------- no-raw-thread

TEST(LintRules, NoRawThreadHitsAndMisses) {
  const auto fs = lint_fixture("src/report/fx.cpp", "no_raw_thread.cpp");
  EXPECT_EQ(lines_of(fs, "no-raw-thread", false), (Lines{6, 7, 12}));
}

TEST(LintRules, NoRawThreadExemptUnderExec) {
  const auto fs = lint_fixture("src/exec/fx.cpp", "no_raw_thread.cpp");
  EXPECT_TRUE(lines_of(fs, "no-raw-thread", false).empty());
}

// --------------------------------------------------------- no-unordered-iter

TEST(LintRules, NoUnorderedIterFlagsRangeForAndIterators) {
  const auto fs = lint_fixture("src/report/fx.cpp", "no_unordered_iter.cpp");
  EXPECT_EQ(lines_of(fs, "no-unordered-iter", false), (Lines{12, 15}));
}

// ---------------------------------------------------------- error-names-path

TEST(LintRules, ErrorNamesPathAppliesOnlyUnderIo) {
  const auto in_io = lint_fixture("src/io/fx.cpp", "error_names_path.cpp");
  EXPECT_EQ(lines_of(in_io, "error-names-path", false), (Lines{9, 11}));
  EXPECT_EQ(lines_of(in_io, "error-names-path", true), (Lines{33}));

  const auto outside = lint_fixture("src/report/fx.cpp",
                                    "error_names_path.cpp");
  EXPECT_TRUE(lines_of(outside, "error-names-path", false).empty());
}

// ------------------------------------------------------------ header-hygiene

TEST(LintRules, HeaderHygieneFlagsMissingPragmaAndUsingNamespace) {
  const auto fs = lint_fixture("src/util/fx.h", "header_hygiene_bad.h");
  EXPECT_EQ(lines_of(fs, "header-hygiene", false), (Lines{3, 5}));
}

TEST(LintRules, HeaderHygieneCleanHeaderAndNonHeaderExempt) {
  const auto good = lint_fixture("src/util/fx.h", "header_hygiene_good.h");
  EXPECT_TRUE(lines_of(good, "header-hygiene", false).empty());
  // The same bad content under a .cpp path is out of scope.
  const auto as_cpp = lint_fixture("src/util/fx.cpp", "header_hygiene_bad.h");
  EXPECT_TRUE(lines_of(as_cpp, "header-hygiene", false).empty());
}

// -------------------------------------------------------- suppression engine

TEST(LintSuppressions, MalformedStaleAndProseCases) {
  const auto fs = lint_fixture("src/report/fx.cpp", "suppressions.cpp");
  // Reason-less (line 6) and unknown-rule (line 9) suppressions are
  // malformed: they report AND fail to suppress the underlying finding.
  EXPECT_EQ(lines_of(fs, "suppression-syntax", false), (Lines{6, 9}));
  EXPECT_EQ(lines_of(fs, "no-wallclock", false), (Lines{6, 9}));
  // A well-formed suppression whose rule never fires is stale.
  EXPECT_EQ(lines_of(fs, "suppression-unused", false), (Lines{12}));
  // Prose mentioning the marker mid-comment (lines 14-15) is inert.
  for (const Finding& f : fs) {
    EXPECT_LT(f.line, 14u) << f.rule << " at line " << f.line;
  }
  EXPECT_EQ(count_unsuppressed(fs), 5u);
}

TEST(LintSuppressions, MetaRulesCannotBeSuppressed) {
  const std::string src =
      "int x = 1;  // varlint: allow(suppression-unused) -- nope\n";
  const auto fs = lint_source("src/report/fx.cpp", src);
  EXPECT_EQ(lines_of(fs, "suppression-syntax", false), (Lines{1}));
}

// ---------------------------------------------------------------- renderers

TEST(LintRender, TextFormatAndSummaryLine) {
  const auto fs = lint_source("tools/fx.cpp", "int r = rand();\n");
  const std::string text = render_text(fs, 1);
  EXPECT_NE(text.find("tools/fx.cpp:1: [no-raw-random]"), std::string::npos)
      << text;
  EXPECT_NE(text.find("1 unsuppressed finding(s), 0 suppressed, "
                      "1 file(s) scanned"),
            std::string::npos)
      << text;
}

TEST(LintRender, JsonIsParseableAndComplete) {
  const std::string src =
      "int r = rand();  // varlint: allow(no-raw-random) -- fixture\n"
      "int s = rand();\n";
  const auto fs = lint_source("tools/fx.cpp", src);
  const io::Json doc = io::Json::parse(render_json(fs, 1));
  EXPECT_EQ(doc.at("tool").as_string(), "varlint");
  EXPECT_EQ(doc.at("files_scanned").as_uint64(), 1u);
  EXPECT_EQ(doc.at("unsuppressed").as_uint64(), 1u);
  EXPECT_EQ(doc.at("suppressed").as_uint64(), 1u);
  const auto& findings = doc.at("findings").as_array();
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].at("line").as_uint64(), 1u);
  EXPECT_TRUE(findings[0].at("suppressed").as_bool());
  EXPECT_EQ(findings[0].at("reason").as_string(), "fixture");
  EXPECT_FALSE(findings[1].at("suppressed").as_bool());
}

}  // namespace
}  // namespace varbench::lint

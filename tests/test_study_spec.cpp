// StudySpec serialization: every kind round-trips losslessly through JSON,
// malformed specs are rejected with actionable messages, and --set
// overrides edit the raw document the way the CLI applies them.
#include "src/study/study_spec.h"

#include <gtest/gtest.h>

namespace varbench::study {
namespace {

void expect_roundtrip(const StudySpec& spec) {
  const std::string text = spec.to_json_text();
  const StudySpec parsed = StudySpec::from_json_text(text);
  EXPECT_EQ(parsed, spec) << text;
  // Serialization is deterministic: parse→serialize is a fixed point.
  EXPECT_EQ(parsed.to_json_text(), text);
}

void expect_rejected(const std::string& text, const std::string& hint) {
  try {
    (void)StudySpec::from_json_text(text);
    FAIL() << "accepted malformed spec: " << text;
  } catch (const io::JsonError& e) {
    EXPECT_NE(std::string{e.what()}.find(hint), std::string::npos)
        << "error '" << e.what() << "' does not mention '" << hint << "'";
  }
}

TEST(StudySpec, VarianceRoundTrip) {
  StudySpec spec;
  spec.kind = StudyKind::kVariance;
  spec.case_study = "cifar10_vgg11";
  spec.scale = 0.5;
  spec.seed = 0xDEADBEEFCAFEF00DULL;  // full 64-bit seeds must survive
  spec.repetitions = 200;
  spec.threads = 8;
  spec.variance.hpo_algorithms = {"random_search", "bayes_opt"};
  spec.variance.hpo_repetitions = 20;
  spec.variance.hpo_budget = 100;
  spec.variance.include_numerical_noise = false;
  expect_roundtrip(spec);
}

TEST(StudySpec, CompareRoundTrip) {
  StudySpec spec;
  spec.kind = StudyKind::kCompare;
  spec.case_study = "glue_rte_bert";
  spec.scale = 1.0;
  spec.repetitions = 33;
  spec.compare.lr_mult = -0.5;  // negative values are legal spec data
  spec.compare.gamma = 0.8;
  spec.compare.num_resamples = 500;
  expect_roundtrip(spec);
}

TEST(StudySpec, HpoRoundTrip) {
  StudySpec spec;
  spec.kind = StudyKind::kHpo;
  spec.case_study = "mhc_mlp";
  spec.repetitions = 1;
  spec.hpo.algo = "noisy_grid_search";
  spec.hpo.budget = 64;
  expect_roundtrip(spec);
}

TEST(StudySpec, EstimatorRoundTrip) {
  StudySpec spec;
  spec.kind = StudyKind::kEstimator;
  spec.case_study = "glue_sst2_bert";
  spec.repetitions = 100;
  spec.estimator.estimators = {"fix_all", "ideal"};
  spec.estimator.hpo_algo = "grid_search";
  spec.estimator.hpo_budget = 16;
  expect_roundtrip(spec);
}

TEST(StudySpec, DetectionRoundTrip) {
  StudySpec spec;
  spec.kind = StudyKind::kDetection;
  spec.case_study = "pascalvoc_fcn";
  spec.repetitions = 50;
  spec.detection.estimator = "ideal";
  spec.detection.k = 100;
  spec.detection.gamma = 0.65;
  spec.detection.resamples = 200;
  spec.detection.p_grid = {0.4, 0.5, 0.75, 0.99};
  expect_roundtrip(spec);
}

TEST(StudySpec, ShardedRoundTrip) {
  StudySpec spec;
  spec.kind = StudyKind::kCompare;
  spec.case_study = "cifar10_vgg11";
  spec.shard = ShardSpec{2, 5};
  expect_roundtrip(spec);
  // The unsharded normal form omits the shard block entirely.
  spec.shard = ShardSpec{};
  EXPECT_EQ(spec.to_json_text().find("shard"), std::string::npos);
  expect_roundtrip(spec);
}

TEST(StudySpec, RejectsMalformedSpecs) {
  expect_rejected("[]", "object");
  expect_rejected(R"({"case_study":"x"})", "kind");
  expect_rejected(R"({"kind":"frobnicate","case_study":"x"})", "variance");
  expect_rejected(R"({"kind":"variance"})", "case_study");
  expect_rejected(R"({"kind":"variance","case_study":""})", "case_study");
  expect_rejected(R"({"kind":"variance","case_study":"x","scale":0.0})",
                  "scale");
  expect_rejected(R"({"kind":"variance","case_study":"x","scale":1.5})",
                  "scale");
  expect_rejected(R"({"kind":"variance","case_study":"x","repetitions":0})",
                  "repetitions");
  expect_rejected(R"({"kind":"variance","case_study":"x","seed":-1})",
                  "negative");
  expect_rejected(
      R"({"kind":"variance","case_study":"x","shard":{"index":2,"count":2}})",
      "shard");
  expect_rejected(
      R"({"kind":"variance","case_study":"x","shard":{"index":0}})", "count");
  expect_rejected(R"({"kind":"variance","case_study":"x","typo":1})", "typo");
  expect_rejected(
      R"({"kind":"compare","case_study":"x","params":{"budget":9}})",
      "budget");
  expect_rejected(
      R"({"kind":"compare","case_study":"x","params":{"gamma":"high"}})",
      "gamma");
  expect_rejected(R"({"kind":"variance","case_study":"x","schema":"v999"})",
                  "schema");
}

TEST(StudySpec, UnknownKeyErrorListsExpectedKeys) {
  try {
    (void)StudySpec::from_json_text(
        R"({"kind":"hpo","case_study":"x","params":{"algorithm":"rs"}})");
    FAIL() << "expected rejection";
  } catch (const io::JsonError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'algo'"), std::string::npos) << what;
    EXPECT_NE(what.find("'budget'"), std::string::npos) << what;
  }
}

TEST(ShardSpecParse, AcceptsAndRejects) {
  EXPECT_EQ(ShardSpec::parse("0/2"), (ShardSpec{0, 2}));
  EXPECT_EQ(ShardSpec::parse("7/8"), (ShardSpec{7, 8}));
  EXPECT_THROW((void)ShardSpec::parse("2/2"), io::JsonError);
  EXPECT_THROW((void)ShardSpec::parse("0/0"), io::JsonError);
  EXPECT_THROW((void)ShardSpec::parse("1"), io::JsonError);
  EXPECT_THROW((void)ShardSpec::parse("a/b"), io::JsonError);
  EXPECT_THROW((void)ShardSpec::parse("-1/2"), io::JsonError);
}

TEST(ApplyOverride, EditsRawDocuments) {
  io::Json doc = io::Json::parse(
      R"({"kind":"compare","case_study":"a","params":{"gamma":0.75}})");
  apply_override(doc, "seed=99");
  apply_override(doc, "params.gamma=0.9");
  apply_override(doc, "case_study=mhc_mlp");
  apply_override(doc, "params.num_resamples=250");
  EXPECT_EQ(doc.at("seed").as_uint64(), 99u);
  EXPECT_DOUBLE_EQ(doc.at("params").at("gamma").as_double(), 0.9);
  EXPECT_EQ(doc.at("case_study").as_string(), "mhc_mlp");
  const StudySpec spec = StudySpec::from_json(doc);
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_DOUBLE_EQ(spec.compare.gamma, 0.9);
  EXPECT_EQ(spec.compare.num_resamples, 250u);
  EXPECT_THROW(apply_override(doc, "no-equals-sign"), io::JsonError);
}

}  // namespace
}  // namespace varbench::study

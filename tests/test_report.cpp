// The report subsystem contract: any complete ResultTable renders to the
// same bytes at every thread count and whether it was loaded whole or
// merged from shards; malformed artifacts are rejected with errors naming
// the file; ReportSpecs round-trip; the --compare path reproduces a known
// P(A>B).
#include <gtest/gtest.h>

#include <filesystem>

#include "src/io/json.h"
#include "src/report/artifact.h"
#include "src/report/render.h"
#include "src/report/report_spec.h"
#include "src/report/summary.h"
#include "src/stats/prob_outperform.h"

namespace varbench::report {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("varbench_report_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  [[nodiscard]] std::string dir() const { return dir_.string(); }

 private:
  static inline int counter_ = 0;
  fs::path dir_;
};

void write(const std::string& path, const std::string& content) {
  io::write_file(path, content);
}

/// A small deterministic two-column table: measure rises with seq, flag
/// alternates groups "a"/"b".
study::ResultTable make_table(std::size_t rows) {
  study::ResultTable t;
  t.name = "test:table";
  t.seed = 7;
  t.columns = {"seq", "group", "measure", "other"};
  for (std::size_t i = 0; i < rows; ++i) {
    t.add_row({study::Cell{i}, study::Cell{i % 2 == 0 ? "a" : "b"},
               study::Cell{0.5 + 0.01 * static_cast<double>(i)},
               study::Cell{1.0 - 0.02 * static_cast<double>(i)}});
  }
  return t;
}

LoadedArtifact artifact_of(study::ResultTable t) {
  return LoadedArtifact{"<memory>", std::move(t)};
}

// ------------------------------------------------------------ ReportSpec

TEST(ReportSpec, RoundTripsThroughJson) {
  ReportSpec spec;
  spec.columns = {"measure"};
  spec.group_by = "group";
  spec.estimators = {"mean", "ci"};
  spec.ci_method = "percentile";
  spec.confidence = 0.9;
  spec.resamples = 250;
  spec.permutations = 500;
  spec.gamma = 0.8;
  spec.seed = 99;
  spec.format = "csv";
  const auto round = ReportSpec::from_json_text(spec.to_json_text());
  EXPECT_EQ(round, spec);
}

TEST(ReportSpec, EmptyObjectIsAllDefaults) {
  const auto spec = ReportSpec::from_json_text("{}");
  EXPECT_EQ(spec, ReportSpec{});
}

TEST(ReportSpec, RejectsUnknownKeysAndBadValues) {
  EXPECT_THROW((void)ReportSpec::from_json_text(R"({"colums": ["x"]})"),
               io::JsonError);
  EXPECT_THROW((void)ReportSpec::from_json_text(R"({"ci_method": "magic"})"),
               io::JsonError);
  EXPECT_THROW((void)ReportSpec::from_json_text(R"({"confidence": 1.5})"),
               io::JsonError);
  EXPECT_THROW((void)ReportSpec::from_json_text(R"({"estimators": ["nope"]})"),
               io::JsonError);
  EXPECT_THROW((void)ReportSpec::from_json_text(R"({"format": "pdf"})"),
               io::JsonError);
  EXPECT_THROW(
      (void)ReportSpec::from_json_text(R"({"schema": "varbench.other.v9"})"),
      io::JsonError);
}

// ------------------------------------------------------- artifact loading

TEST(LoadArtifact, RejectsMalformedInputsNamingTheFile) {
  TempDir tmp;
  const std::string missing = tmp.path("missing.json");
  EXPECT_THROW((void)load_artifact(missing), io::JsonError);

  const std::string garbage = tmp.path("garbage.json");
  write(garbage, "not json at all");
  try {
    (void)load_artifact(garbage);
    FAIL() << "garbage artifact must throw";
  } catch (const io::JsonError& e) {
    EXPECT_NE(std::string{e.what()}.find("garbage.json"), std::string::npos);
  }

  const std::string unknown = tmp.path("unknown.json");
  write(unknown, R"({"schema": "varbench.result_table.v99", "name": "x",
                     "meta": {"seed": 1, "shard": {"index": 0, "count": 1}},
                     "columns": ["seq"], "rows": [[0]]})");
  try {
    (void)load_artifact(unknown);
    FAIL() << "unknown schema must throw";
  } catch (const io::JsonError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unsupported schema"), std::string::npos);
    EXPECT_NE(what.find("unknown.json"), std::string::npos);
  }

  const std::string ragged = tmp.path("ragged.json");
  write(ragged, R"({"schema": "varbench.result_table.v1", "name": "x",
                    "meta": {"seed": 1, "shard": {"index": 0, "count": 1}},
                    "columns": ["seq", "v"], "rows": [[0, 1.0], [1]]})");
  EXPECT_THROW((void)load_artifact(ragged), io::JsonError);
}

TEST(LoadArtifactDir, MergesShardsBackToTheUnshardedTable) {
  TempDir tmp;
  const auto full = make_table(10);
  // Split by row parity into two shard tables.
  for (std::size_t shard = 0; shard < 2; ++shard) {
    study::ResultTable part;
    part.name = full.name;
    part.seed = full.seed;
    part.columns = full.columns;
    part.shard = study::ShardSpec{shard, 2};
    for (std::size_t i = shard * 5; i < shard * 5 + 5; ++i) {
      part.rows.push_back(full.rows[i]);
    }
    write(tmp.path("shard" + std::to_string(shard) + ".json"),
          part.to_json_text());
  }
  const auto loaded = load_artifact_dir(tmp.dir());
  ASSERT_EQ(loaded.studies.size(), 1u);
  EXPECT_FALSE(loaded.provenance.has_value());
  EXPECT_EQ(loaded.studies[0].table.canonical_text(), full.canonical_text());
}

TEST(LoadArtifactDir, RejectsIncompleteShardSets) {
  TempDir tmp;
  auto part = make_table(4);
  part.shard = study::ShardSpec{0, 3};
  write(tmp.path("s0.json"), part.to_json_text());
  EXPECT_THROW((void)load_artifact_dir(tmp.dir()), io::JsonError);
}

TEST(LoadArtifactDir, EmptyDirectoryThrows) {
  TempDir tmp;
  EXPECT_THROW((void)load_artifact_dir(tmp.dir()), io::JsonError);
}

std::string campaign_manifest(const std::string& task_status) {
  return R"({"schema": "varbench.campaign.v1", "shards": 1, "max_retries": 2,
             "studies": [{"kind": "variance", "case_study": "demo"}],
             "tasks": [{"id": "s0-0of1", "study": 0, "shard": "0/1",
                        "status": ")" +
         task_status + R"(", "attempts": 1, "wall_time_ms": 12.5}]})";
}

TEST(LoadArtifactDir, ReadsCampaignWallTimeProvenance) {
  TempDir tmp;
  fs::create_directories(tmp.path("merged"));
  write(tmp.path("merged") + "/s0.json", make_table(4).to_json_text());
  write(tmp.path("campaign.json"), campaign_manifest("done"));
  const auto loaded = load_artifact_dir(tmp.dir());
  ASSERT_EQ(loaded.studies.size(), 1u);
  ASSERT_TRUE(loaded.provenance.has_value());
  EXPECT_EQ(loaded.provenance->tasks, 1u);
  EXPECT_EQ(loaded.provenance->tasks_with_wall_time, 1u);
  EXPECT_DOUBLE_EQ(loaded.provenance->total_wall_ms, 12.5);
  ASSERT_EQ(loaded.provenance->study_wall_ms.size(), 1u);
  EXPECT_EQ(loaded.provenance->study_wall_ms[0].first, "s0 variance:demo");
}

TEST(LoadArtifactDir, RefusesAnIncompleteCampaign) {
  // Only finished studies reach merged/ — a report over a half-failed
  // campaign must refuse rather than silently look complete.
  TempDir tmp;
  fs::create_directories(tmp.path("merged"));
  write(tmp.path("merged") + "/s0.json", make_table(4).to_json_text());
  write(tmp.path("campaign.json"), campaign_manifest("failed"));
  try {
    (void)load_artifact_dir(tmp.dir());
    FAIL() << "incomplete campaign must throw";
  } catch (const io::JsonError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("incomplete"), std::string::npos);
    EXPECT_NE(what.find("s0-0of1"), std::string::npos);
  }
}

// ------------------------------------------------------------- summaries

TEST(Summarize, MatchesDescriptiveStatistics) {
  ReportSpec spec;
  spec.columns = {"measure"};
  spec.estimators = {"mean", "std", "min", "max", "median"};
  const auto report =
      summarize(exec::ExecContext::serial(), artifact_of(make_table(5)), spec);
  ASSERT_EQ(report.columns.size(), 1u);
  const ColumnSummary& s = report.columns[0];
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 0.52);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 0.54);
  EXPECT_DOUBLE_EQ(s.median, 0.52);
  EXPECT_FALSE(s.ci_mean.has_value());    // not selected
  EXPECT_FALSE(s.normality.has_value());  // not selected
}

TEST(Summarize, DefaultColumnsSkipIndexAndGroupColumns) {
  ReportSpec spec;
  spec.group_by = "group";
  const auto report = summarize(exec::ExecContext::serial(),
                                artifact_of(make_table(8)), spec);
  // Two groups × {measure, other}; "seq" and the group key are excluded.
  ASSERT_EQ(report.columns.size(), 4u);
  EXPECT_EQ(report.columns[0].group, "a");
  EXPECT_EQ(report.columns[0].column, "measure");
  EXPECT_EQ(report.columns[3].group, "b");
  EXPECT_EQ(report.columns[3].column, "other");
  // Exactly two groups: every column gets the P(A>B) comparison.
  ASSERT_EQ(report.comparisons.size(), 2u);
  EXPECT_TRUE(report.comparisons[0].paired);  // 4 rows in each group
}

TEST(Summarize, RejectsShardArtifactsAndBadColumns) {
  auto shard = make_table(4);
  shard.shard = study::ShardSpec{1, 4};
  ReportSpec spec;
  EXPECT_THROW((void)summarize(exec::ExecContext::serial(),
                               artifact_of(shard), spec),
               std::invalid_argument);
  ReportSpec missing;
  missing.columns = {"nope"};
  EXPECT_THROW((void)summarize(exec::ExecContext::serial(),
                               artifact_of(make_table(4)), missing),
               io::JsonError);
  ReportSpec non_numeric;
  non_numeric.columns = {"group"};
  EXPECT_THROW((void)summarize(exec::ExecContext::serial(),
                               artifact_of(make_table(4)), non_numeric),
               io::JsonError);
}

TEST(Summarize, NullCellsCountAsMissing) {
  study::ResultTable t;
  t.name = "test:nulls";
  t.seed = 3;
  t.columns = {"seq", "v"};
  t.add_row({study::Cell{std::size_t{0}}, study::Cell{1.0}});
  t.add_row({study::Cell{std::size_t{1}}, study::Cell{}});  // null
  t.add_row({study::Cell{std::size_t{2}}, study::Cell{3.0}});
  ReportSpec spec;
  spec.estimators = {"mean"};
  const auto report =
      summarize(exec::ExecContext::serial(), artifact_of(std::move(t)), spec);
  ASSERT_EQ(report.columns.size(), 1u);
  EXPECT_EQ(report.columns[0].n, 2u);
  EXPECT_EQ(report.columns[0].missing, 1u);
  EXPECT_DOUBLE_EQ(report.columns[0].mean, 2.0);
}

// ----------------------------------------------- determinism + identity

TEST(Summarize, RenderIsThreadCountInvariant) {
  ReportSpec spec;  // defaults: bca CIs + normality + P(A>B) via group_by
  spec.group_by = "group";
  const auto table = make_table(12);
  const auto serial =
      summarize(exec::ExecContext::serial(), artifact_of(table), spec);
  const auto parallel =
      summarize(exec::ExecContext{4}, artifact_of(table), spec);
  for (const Format f :
       {Format::kText, Format::kMarkdown, Format::kCsv, Format::kJson}) {
    EXPECT_EQ(render(serial, f), render(parallel, f))
        << "format " << to_string(f);
  }
}

TEST(Summarize, ShardedAndUnshardedInputsRenderIdentically) {
  const auto full = make_table(10);
  std::vector<study::ResultTable> shards;
  for (std::size_t shard = 0; shard < 2; ++shard) {
    study::ResultTable part;
    part.name = full.name;
    part.seed = full.seed;
    part.columns = full.columns;
    part.shard = study::ShardSpec{shard, 2};
    for (std::size_t i = shard * 5; i < shard * 5 + 5; ++i) {
      part.rows.push_back(full.rows[i]);
    }
    shards.push_back(std::move(part));
  }
  const auto merged = study::merge_result_tables(std::move(shards));
  ReportSpec spec;
  spec.group_by = "group";
  const auto from_full =
      summarize(exec::ExecContext::serial(), artifact_of(full), spec);
  const auto from_merged =
      summarize(exec::ExecContext{3}, artifact_of(merged), spec);
  EXPECT_EQ(render(from_full, Format::kJson),
            render(from_merged, Format::kJson));
}

// ----------------------------------------------------------- comparisons

TEST(SummarizeCompare, ReproducesKnownProbOutperform) {
  // A beats B in 5 of 8 paired rows with one tie: P(A>B) = 5.5/8.
  study::ResultTable ta;
  ta.name = "algo_a";
  ta.seed = 11;
  ta.columns = {"seq", "perf"};
  study::ResultTable tb;
  tb.name = "algo_b";
  tb.seed = 11;
  tb.columns = {"seq", "perf"};
  const double a_vals[] = {0.9, 0.8, 0.7, 0.9, 0.85, 0.6, 0.95, 0.5};
  const double b_vals[] = {0.8, 0.7, 0.6, 0.8, 0.95, 0.7, 0.90, 0.5};
  for (std::size_t i = 0; i < 8; ++i) {
    ta.add_row({study::Cell{i}, study::Cell{a_vals[i]}});
    tb.add_row({study::Cell{i}, study::Cell{b_vals[i]}});
  }
  const double expected = stats::probability_of_outperforming(
      std::vector<double>{std::begin(a_vals), std::end(a_vals)},
      std::vector<double>{std::begin(b_vals), std::end(b_vals)});
  EXPECT_DOUBLE_EQ(expected, 5.5 / 8.0);

  ReportSpec spec;
  const auto report = summarize_compare(exec::ExecContext::serial(),
                                        artifact_of(std::move(ta)),
                                        artifact_of(std::move(tb)), spec);
  EXPECT_EQ(report.title, "algo_a vs algo_b");
  ASSERT_EQ(report.comparisons.size(), 1u);
  const ComparisonSummary& c = report.comparisons[0];
  EXPECT_EQ(c.column, "perf");
  EXPECT_TRUE(c.paired);
  EXPECT_DOUBLE_EQ(c.p_a_greater_b, expected);
  ASSERT_TRUE(c.ci.has_value());
  EXPECT_GE(c.ci->lower, 0.0);
  EXPECT_LE(c.ci->upper, 1.0);
  EXPECT_FALSE(c.conclusion.empty());
  EXPECT_GT(c.permutation_p, 0.0);
  EXPECT_LE(c.permutation_p, 1.0);
}

TEST(SummarizeCompare, UnequalSizesFallBackToUnpaired) {
  study::ResultTable ta = make_table(6);
  study::ResultTable tb = make_table(4);
  ReportSpec spec;
  spec.columns = {"measure"};
  const auto report = summarize_compare(exec::ExecContext::serial(),
                                        artifact_of(std::move(ta)),
                                        artifact_of(std::move(tb)), spec);
  ASSERT_EQ(report.comparisons.size(), 1u);
  EXPECT_FALSE(report.comparisons[0].paired);
  EXPECT_FALSE(report.comparisons[0].ci.has_value());
  EXPECT_TRUE(report.comparisons[0].conclusion.empty());
}

// -------------------------------------------------------- golden renders

/// One tiny report with a fixed estimator subset, rendered into every
/// format: the exact bytes are part of the subsystem's contract (CI diffs
/// rendered reports across machines and thread counts).
class GoldenRender : public ::testing::Test {
 protected:
  Report report() {
    study::ResultTable t;
    t.name = "golden:demo";
    t.seed = 5;
    t.columns = {"seq", "v"};
    t.add_row({study::Cell{std::size_t{0}}, study::Cell{1.0}});
    t.add_row({study::Cell{std::size_t{1}}, study::Cell{2.0}});
    t.add_row({study::Cell{std::size_t{2}}, study::Cell{6.0}});
    ReportSpec spec;
    spec.estimators = {"mean", "std", "median"};
    return summarize(exec::ExecContext::serial(), artifact_of(std::move(t)),
                     spec);
  }
};

TEST_F(GoldenRender, Text) {
  EXPECT_EQ(render(report(), Format::kText),
            "report: golden:demo\n"
            "  seed 5, 3 rows; ci = bca @ 95% (1000 resamples); "
            "permutations = 10000; gamma = 0.75\n"
            "\n"
            " column  n  mean      std  median\n"
            " v       3     3  2.64575       2\n");
}

TEST_F(GoldenRender, Markdown) {
  EXPECT_EQ(render(report(), Format::kMarkdown),
            "# report: golden:demo\n"
            "\n"
            "- seed 5, 3 rows\n"
            "- ci = bca @ 95% (1000 resamples); permutations = 10000; "
            "gamma = 0.75\n"
            "\n"
            "## summaries\n"
            "\n"
            "| column | n | mean | std | median |\n"
            "| --- | ---: | ---: | ---: | ---: |\n"
            "| v | 3 | 3 | 2.64575 | 2 |\n");
}

TEST_F(GoldenRender, Csv) {
  EXPECT_EQ(render(report(), Format::kCsv),
            "column,n,mean,std,median\n"
            "v,3,3,2.64575,2\n");
}

TEST_F(GoldenRender, Json) {
  const io::Json doc = io::Json::parse(render(report(), Format::kJson));
  EXPECT_EQ(doc.at("schema").as_string(), "varbench.report.v1");
  EXPECT_EQ(doc.at("title").as_string(), "golden:demo");
  EXPECT_EQ(doc.at("rows").as_uint64(), 3u);
  const auto& summaries = doc.at("summaries").as_array();
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].at("column").as_string(), "v");
  EXPECT_DOUBLE_EQ(summaries[0].at("mean").as_double(), 3.0);
}

}  // namespace
}  // namespace varbench::report

#include "src/stats/distributions.h"

#include <gtest/gtest.h>

#include <cmath>

namespace varbench::stats {
namespace {

TEST(NormalPdf, StandardValues) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072451914337, 1e-12);
  EXPECT_NEAR(normal_pdf(-1.0), normal_pdf(1.0), 1e-15);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(normal_cdf(-1.6448536269514722), 0.05, 1e-9);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-10);
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(normal_quantile(0.05), -1.6448536269514722, 1e-9);
  EXPECT_NEAR(normal_quantile(0.9999), 3.719016485455709, 1e-7);
}

TEST(NormalQuantile, ExtremePs) {
  EXPECT_TRUE(std::isinf(normal_quantile(0.0)));
  EXPECT_TRUE(std::isinf(normal_quantile(1.0)));
  EXPECT_LT(normal_quantile(0.0), 0.0);
  EXPECT_GT(normal_quantile(1.0), 0.0);
  EXPECT_THROW((void)normal_quantile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)normal_quantile(1.1), std::invalid_argument);
}

// Property: Φ(Φ⁻¹(p)) == p across the unit interval.
class QuantileRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(QuantileRoundTrip, CdfInvertsQuantile) {
  const double p = GetParam();
  EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuantileRoundTrip,
                         ::testing::Values(1e-6, 1e-4, 0.01, 0.02425, 0.1, 0.25,
                                           0.5, 0.75, 0.9, 0.97575, 0.99,
                                           0.9999, 1.0 - 1e-6));

TEST(LogGamma, MatchesFactorials) {
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(log_gamma(11.0), std::log(3628800.0), 1e-8);
}

TEST(LogGamma, HalfIntegerValue) {
  // Γ(1/2) = √π
  EXPECT_NEAR(log_gamma(0.5), 0.5 * std::log(M_PI), 1e-10);
}

TEST(IncompleteBeta, BoundaryValues) {
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, UniformSpecialCase) {
  // I_x(1, 1) = x.
  for (const double x : {0.1, 0.25, 0.5, 0.9}) {
    EXPECT_NEAR(incomplete_beta(1.0, 1.0, x), x, 1e-12);
  }
}

TEST(IncompleteBeta, SymmetryIdentity) {
  // I_x(a,b) = 1 − I_{1−x}(b,a)
  EXPECT_NEAR(incomplete_beta(2.5, 4.0, 0.3),
              1.0 - incomplete_beta(4.0, 2.5, 0.7), 1e-12);
}

TEST(StudentT, CdfKnownValues) {
  // t(ν=1) is the Cauchy distribution: F(1) = 3/4.
  EXPECT_NEAR(student_t_cdf(1.0, 1.0), 0.75, 1e-10);
  EXPECT_NEAR(student_t_cdf(0.0, 5.0), 0.5, 1e-12);
  // Large ν approaches the normal.
  EXPECT_NEAR(student_t_cdf(1.96, 1e6), normal_cdf(1.96), 1e-4);
}

TEST(StudentT, TwoSidedPValue) {
  // For ν=10, t=2.228 corresponds to p ≈ 0.05.
  EXPECT_NEAR(student_t_two_sided_p(2.228, 10.0), 0.05, 1e-3);
  EXPECT_NEAR(student_t_two_sided_p(0.0, 10.0), 1.0, 1e-12);
}

TEST(Binomial, PmfSumsToOne) {
  double sum = 0.0;
  for (std::int64_t k = 0; k <= 20; ++k) sum += binomial_pmf(k, 20, 0.3);
  EXPECT_NEAR(sum, 1.0, 1e-10);
}

TEST(Binomial, PmfKnownValue) {
  // P[X=2], n=4, p=0.5 → 6/16
  EXPECT_NEAR(binomial_pmf(2, 4, 0.5), 0.375, 1e-12);
}

TEST(Binomial, CdfMatchesPmfSum) {
  double sum = 0.0;
  for (std::int64_t k = 0; k <= 7; ++k) sum += binomial_pmf(k, 15, 0.4);
  EXPECT_NEAR(binomial_cdf(7, 15, 0.4), sum, 1e-10);
}

TEST(Binomial, DegeneratePs) {
  EXPECT_DOUBLE_EQ(binomial_pmf(0, 10, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 10, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(3, 10, 0.0), 0.0);
}

TEST(BinomialAccuracyStd, MatchesPaperFig2Examples) {
  // Fig. 2: Glue-RTE BERT, τ≈0.66, n'=277 → σ ≈ 2.8% accuracy.
  EXPECT_NEAR(binomial_accuracy_std(0.66, 277), 0.0285, 5e-4);
  // Glue-SST2 BERT: τ≈0.95, n'=872 → σ ≈ 0.74%.
  EXPECT_NEAR(binomial_accuracy_std(0.95, 872), 0.00738, 5e-5);
  // CIFAR10 VGG11: τ≈0.91, n'=10000 → σ ≈ 0.29%.
  EXPECT_NEAR(binomial_accuracy_std(0.91, 10000), 0.00286, 5e-5);
}

TEST(BinomialAccuracyStd, ShrinksWithTestSize) {
  EXPECT_GT(binomial_accuracy_std(0.8, 100), binomial_accuracy_std(0.8, 1000));
  EXPECT_THROW((void)binomial_accuracy_std(0.5, 0.0), std::invalid_argument);
  EXPECT_THROW((void)binomial_accuracy_std(1.5, 10.0), std::invalid_argument);
}

TEST(ChiSquared, KnownValues) {
  // χ²(k=2) is Exp(1/2): F(x) = 1 − e^{−x/2}.
  EXPECT_NEAR(chi_squared_cdf(2.0, 2.0), 1.0 - std::exp(-1.0), 1e-10);
  EXPECT_NEAR(chi_squared_cdf(0.0, 3.0), 0.0, 1e-15);
}

TEST(IncompleteGammaP, MonotoneInX) {
  double prev = 0.0;
  for (double x = 0.5; x < 10.0; x += 0.5) {
    const double v = incomplete_gamma_p(2.5, x);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_NEAR(prev, 1.0, 5e-3);
}

}  // namespace
}  // namespace varbench::stats

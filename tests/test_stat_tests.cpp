#include "src/stats/tests.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/rngx/rng.h"

namespace varbench::stats {
namespace {

TEST(OneSampleT, NullDataGivesLargeP) {
  rngx::Rng rng{1};
  std::vector<double> x(50);
  for (double& v : x) v = rng.normal(5.0, 1.0);
  const auto r = one_sample_t_test(x, 5.0);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(OneSampleT, ShiftedDataGivesSmallP) {
  rngx::Rng rng{2};
  std::vector<double> x(50);
  for (double& v : x) v = rng.normal(5.0, 1.0);
  const auto r = one_sample_t_test(x, 4.0);
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_GT(r.statistic, 0.0);
}

TEST(OneSampleT, KnownStatistic) {
  // x = {1,2,3,4,5}: mean 3, s = sqrt(2.5), se = sqrt(0.5).
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto r = one_sample_t_test(x, 2.0);
  EXPECT_NEAR(r.statistic, 1.0 / std::sqrt(0.5), 1e-12);
}

TEST(WelchT, EqualSamplesGiveP1) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const auto r = welch_t_test(x, x);
  EXPECT_NEAR(r.statistic, 0.0, 1e-12);
  EXPECT_NEAR(r.p_value, 1.0, 1e-9);
}

TEST(WelchT, DetectsLargeDifference) {
  rngx::Rng rng{3};
  std::vector<double> a(40);
  std::vector<double> b(40);
  for (double& v : a) v = rng.normal(0.0, 1.0);
  for (double& v : b) v = rng.normal(2.0, 1.5);
  const auto r = welch_t_test(a, b);
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_LT(r.statistic, 0.0);  // mean(a) < mean(b)
}

TEST(WelchT, FalsePositiveRateNearAlpha) {
  rngx::Rng rng{4};
  int rejections = 0;
  constexpr int rounds = 400;
  for (int i = 0; i < rounds; ++i) {
    std::vector<double> a(20);
    std::vector<double> b(20);
    for (double& v : a) v = rng.normal();
    for (double& v : b) v = rng.normal();
    if (welch_t_test(a, b).p_value < 0.05) ++rejections;
  }
  EXPECT_NEAR(static_cast<double>(rejections) / rounds, 0.05, 0.04);
}

TEST(PairedT, RemovesSharedVariance) {
  // Pairs share a large common component; paired test should detect the
  // small systematic difference where unpaired Welch cannot.
  rngx::Rng rng{5};
  std::vector<double> a(30);
  std::vector<double> b(30);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double shared = rng.normal(0.0, 10.0);
    a[i] = shared + 0.5 + rng.normal(0.0, 0.1);
    b[i] = shared + rng.normal(0.0, 0.1);
  }
  EXPECT_LT(paired_t_test(a, b).p_value, 1e-6);
  EXPECT_GT(welch_t_test(a, b).p_value, 0.05);
}

TEST(ZTest, KnownValue) {
  // mean diff 1, σA=σB=1, k=8 → se = sqrt(2/8) = 0.5 → z = 2.
  const auto r = z_test(1.0, 0.0, 1.0, 1.0, 8);
  EXPECT_NEAR(r.statistic, 2.0, 1e-12);
  EXPECT_NEAR(r.p_value, 0.0455, 1e-3);
}

TEST(ZTestMinimumDetectable, Section31Bound) {
  // δ_min = z_{0.95}·√((σA²+σB²)/k); doubles k → shrinks by √2.
  const double d1 = z_test_minimum_detectable(1.0, 1.0, 10, 0.05);
  const double d2 = z_test_minimum_detectable(1.0, 1.0, 20, 0.05);
  EXPECT_NEAR(d1 / d2, std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(d1, 1.6448536 * std::sqrt(0.2), 1e-6);
}

TEST(MannWhitney, KnownSmallExample) {
  // A = {1,2,3}, B = {4,5,6}: A always loses → U_A = 0.
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{4.0, 5.0, 6.0};
  const auto r = mann_whitney_u(a, b);
  EXPECT_DOUBLE_EQ(r.u_statistic, 0.0);
  EXPECT_DOUBLE_EQ(r.prob_a_greater, 0.0);
}

TEST(MannWhitney, SymmetricSamplesGiveHalf) {
  const std::vector<double> a{1.0, 3.0, 5.0};
  const std::vector<double> b{2.0, 4.0, 6.0};
  const auto r = mann_whitney_u(a, b);
  EXPECT_NEAR(r.prob_a_greater, 1.0 / 3.0, 1e-12);  // U_A = 3 of 9
}

TEST(MannWhitney, ProbAGreaterIsEffectSize) {
  // prob_a_greater must equal the fraction of (a, b) pairs with a > b
  // (ties counting half).
  const std::vector<double> a{5.0, 5.0, 9.0};
  const std::vector<double> b{5.0, 1.0, 9.0};
  const auto r = mann_whitney_u(a, b);
  double wins = 0.0;
  for (const double x : a) {
    for (const double y : b) {
      if (x > y) wins += 1.0;
      if (x == y) wins += 0.5;
    }
  }
  EXPECT_NEAR(r.prob_a_greater, wins / 9.0, 1e-12);
}

TEST(MannWhitney, DetectsShift) {
  rngx::Rng rng{6};
  std::vector<double> a(40);
  std::vector<double> b(40);
  for (double& v : a) v = rng.normal(1.0, 1.0);
  for (double& v : b) v = rng.normal(0.0, 1.0);
  const auto r = mann_whitney_u(a, b);
  EXPECT_LT(r.p_value, 0.01);
  EXPECT_GT(r.prob_a_greater, 0.6);
}

TEST(MannWhitney, NullFalsePositiveRate) {
  rngx::Rng rng{7};
  int rejections = 0;
  constexpr int rounds = 300;
  for (int i = 0; i < rounds; ++i) {
    std::vector<double> a(25);
    std::vector<double> b(25);
    for (double& v : a) v = rng.normal();
    for (double& v : b) v = rng.normal();
    if (mann_whitney_u(a, b).p_value < 0.05) ++rejections;
  }
  EXPECT_NEAR(static_cast<double>(rejections) / rounds, 0.05, 0.04);
}

TEST(Wilcoxon, AllZeroDifferencesGiveP1) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const auto r = wilcoxon_signed_rank(a, a);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(Wilcoxon, DetectsPairedShift) {
  rngx::Rng rng{8};
  std::vector<double> a(40);
  std::vector<double> b(40);
  for (std::size_t i = 0; i < a.size(); ++i) {
    b[i] = rng.normal(0.0, 1.0);
    a[i] = b[i] + 0.8 + rng.normal(0.0, 0.3);
  }
  EXPECT_LT(wilcoxon_signed_rank(a, b).p_value, 1e-4);
}

TEST(Wilcoxon, MismatchedSizesThrow) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW((void)wilcoxon_signed_rank(a, b), std::invalid_argument);
}

TEST(Bonferroni, DividesAlpha) {
  EXPECT_DOUBLE_EQ(bonferroni_alpha(0.05, 5), 0.01);
  EXPECT_THROW((void)bonferroni_alpha(0.05, 0), std::invalid_argument);
}

TEST(PermutationTest, NullDataGivesLargeP) {
  rngx::Rng data_rng{31};
  std::vector<double> a(40);
  std::vector<double> b(40);
  for (double& v : a) v = data_rng.normal(1.0, 0.5);
  for (double& v : b) v = data_rng.normal(1.0, 0.5);
  rngx::Rng rng{32};
  const auto r = permutation_test_mean_diff(a, b, rng, 2000);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(PermutationTest, SeparatedDataGivesSmallP) {
  rngx::Rng data_rng{33};
  std::vector<double> a(40);
  std::vector<double> b(40);
  for (double& v : a) v = data_rng.normal(1.0, 0.3);
  for (double& v : b) v = data_rng.normal(0.0, 0.3);
  rngx::Rng rng{34};
  const auto r = permutation_test_mean_diff(a, b, rng, 2000);
  // Add-one p-value floor: 1 / (1 + 2000).
  EXPECT_LT(r.p_value, 0.001);
  EXPECT_NEAR(r.statistic, 1.0, 0.3);
}

TEST(PermutationTest, AgreesWithWelchOnGaussianData) {
  rngx::Rng data_rng{35};
  std::vector<double> a(60);
  std::vector<double> b(60);
  for (double& v : a) v = data_rng.normal(0.1, 1.0);
  for (double& v : b) v = data_rng.normal(0.0, 1.0);
  rngx::Rng rng{36};
  const auto perm = permutation_test_mean_diff(a, b, rng, 5000);
  const auto welch = welch_t_test(a, b);
  EXPECT_NEAR(perm.p_value, welch.p_value, 0.05);
}

TEST(PermutationTest, RejectsBadInputs) {
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> empty;
  rngx::Rng rng{37};
  EXPECT_THROW((void)permutation_test_mean_diff(empty, x, rng),
               std::invalid_argument);
  EXPECT_THROW((void)permutation_test_mean_diff(x, x, rng, 0),
               std::invalid_argument);
}

TEST(PairedPermutationTest, DetectsPairedShift) {
  rngx::Rng data_rng{38};
  std::vector<double> a(30);
  std::vector<double> b(30);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = data_rng.normal(0.0, 1.0);
    b[i] = a[i] - 0.4 - data_rng.normal(0.0, 0.1);
  }
  rngx::Rng rng{39};
  const auto r = paired_permutation_test(a, b, rng, 2000);
  EXPECT_LT(r.p_value, 0.01);
  EXPECT_GT(r.statistic, 0.0);
}

TEST(PairedPermutationTest, NullPairsGiveLargeP) {
  rngx::Rng data_rng{40};
  std::vector<double> a(30);
  std::vector<double> b(30);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = data_rng.normal(0.0, 1.0);
    b[i] = a[i] + data_rng.normal(0.0, 0.2);  // noise, no shift
  }
  rngx::Rng rng{41};
  const auto r = paired_permutation_test(a, b, rng, 2000);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(PairedPermutationTest, RejectsBadInputs) {
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> y{1.0};
  rngx::Rng rng{42};
  EXPECT_THROW((void)paired_permutation_test(x, y, rng),
               std::invalid_argument);
  EXPECT_THROW((void)paired_permutation_test(y, y, rng, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace varbench::stats

#include "src/ml/metrics.h"

#include <gtest/gtest.h>

namespace varbench::ml {
namespace {

TEST(Metrics, PredictClasses) {
  const math::Matrix logits{{0.1, 0.9, 0.0}, {2.0, 1.0, 0.5}};
  const auto pred = predict_classes(logits);
  EXPECT_DOUBLE_EQ(pred[0], 1.0);
  EXPECT_DOUBLE_EQ(pred[1], 0.0);
}

TEST(Metrics, Accuracy) {
  const std::vector<double> pred{0.0, 1.0, 1.0, 0.0};
  const std::vector<double> labels{0.0, 1.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(accuracy(pred, labels), 0.75);
}

TEST(Metrics, AccuracyBadInputsThrow) {
  const std::vector<double> a{0.0};
  const std::vector<double> b{0.0, 1.0};
  EXPECT_THROW((void)accuracy(a, b), std::invalid_argument);
}

TEST(Metrics, MeanIouPerfect) {
  const std::vector<double> pred{0.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(mean_iou(pred, pred, 3), 1.0);
}

TEST(Metrics, MeanIouKnownValue) {
  // class 0: TP=1, FP=1 (pred 0, label 1), FN=0 → IoU 1/2.
  // class 1: TP=1, FP=0, FN=1 → IoU 1/2.
  const std::vector<double> pred{0.0, 0.0, 1.0};
  const std::vector<double> labels{0.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(mean_iou(pred, labels, 2), 0.5);
}

TEST(Metrics, MeanIouSkipsAbsentClasses) {
  // Class 2 never appears → averaged over classes 0, 1 only.
  const std::vector<double> pred{0.0, 1.0};
  const std::vector<double> labels{0.0, 1.0};
  EXPECT_DOUBLE_EQ(mean_iou(pred, labels, 3), 1.0);
}

TEST(Metrics, MeanIouOutOfRangeThrows) {
  const std::vector<double> pred{5.0};
  const std::vector<double> labels{0.0};
  EXPECT_THROW((void)mean_iou(pred, labels, 2), std::invalid_argument);
}

TEST(Metrics, RocAucPerfectSeparation) {
  const std::vector<double> scores{0.1, 0.2, 0.8, 0.9};
  const std::vector<double> targets{0.0, 0.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(roc_auc(scores, targets), 1.0);
}

TEST(Metrics, RocAucReversedIsZero) {
  const std::vector<double> scores{0.9, 0.8, 0.2, 0.1};
  const std::vector<double> targets{0.0, 0.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(roc_auc(scores, targets), 0.0);
}

TEST(Metrics, RocAucRandomIsHalf) {
  // Equal scores → ties everywhere → AUC = 0.5.
  const std::vector<double> scores{0.5, 0.5, 0.5, 0.5};
  const std::vector<double> targets{0.0, 1.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(roc_auc(scores, targets), 0.5);
}

TEST(Metrics, RocAucSingleClassIsHalf) {
  const std::vector<double> scores{0.1, 0.9};
  const std::vector<double> targets{1.0, 1.0};
  EXPECT_DOUBLE_EQ(roc_auc(scores, targets), 0.5);
}

TEST(Metrics, RocAucRejectsNonBinary) {
  const std::vector<double> scores{0.1, 0.9};
  const std::vector<double> targets{0.0, 2.0};
  EXPECT_THROW((void)roc_auc(scores, targets), std::invalid_argument);
}

TEST(Metrics, RocAucKnownMixedValue) {
  // scores: pos {3, 1}, neg {2}. Pairs: (3>2)=1, (1<2)=0 → AUC = 0.5.
  const std::vector<double> scores{3.0, 1.0, 2.0};
  const std::vector<double> targets{1.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(roc_auc(scores, targets), 0.5);
}

TEST(Metrics, Binarize) {
  const std::vector<double> v{0.2, 0.5, 0.7};
  const auto b = binarize(v, 0.5);
  EXPECT_EQ(b, (std::vector<double>{0.0, 0.0, 1.0}));
}

TEST(Metrics, ToStringCoversAll) {
  EXPECT_EQ(to_string(Metric::kAccuracy), "accuracy");
  EXPECT_EQ(to_string(Metric::kMeanIoU), "mean_iou");
  EXPECT_EQ(to_string(Metric::kAuc), "auc");
  EXPECT_EQ(to_string(Metric::kPearson), "pearson");
  EXPECT_EQ(to_string(Metric::kNegMse), "neg_mse");
}

TEST(EvaluateModel, AccuracyPath) {
  // A linear model that copies feature 0 vs feature 1 as logits.
  MlpConfig cfg;
  cfg.input_dim = 2;
  cfg.output_dim = 2;
  rngx::Rng rng{1};
  Mlp m{cfg, rng};
  m.weights()[0] = math::Matrix{{1.0, 0.0}, {0.0, 1.0}};
  m.biases()[0] = {0.0, 0.0};
  Dataset test;
  test.kind = TaskKind::kClassification;
  test.num_classes = 2;
  test.x = math::Matrix{{1.0, 0.0}, {0.0, 1.0}, {2.0, 1.0}};
  test.y = {0.0, 1.0, 1.0};  // last one is wrong for this model
  EXPECT_NEAR(evaluate_model(m, test, Metric::kAccuracy), 2.0 / 3.0, 1e-12);
}

TEST(EvaluateModel, NegMsePath) {
  MlpConfig cfg;
  cfg.input_dim = 1;
  cfg.output_dim = 1;
  rngx::Rng rng{2};
  Mlp m{cfg, rng};
  m.weights()[0] = math::Matrix{{1.0}};
  m.biases()[0] = {0.0};
  Dataset test;
  test.kind = TaskKind::kRegression;
  test.x = math::Matrix{{1.0}, {2.0}};
  test.y = {1.0, 1.0};
  // predictions {1, 2} vs targets {1, 1} → MSE = 0.5 → metric −0.5
  EXPECT_NEAR(evaluate_model(m, test, Metric::kNegMse), -0.5, 1e-12);
}

TEST(EvaluateModel, EmptyTestThrows) {
  MlpConfig cfg;
  cfg.input_dim = 1;
  cfg.output_dim = 1;
  rngx::Rng rng{3};
  const Mlp m{cfg, rng};
  const Dataset empty;
  EXPECT_THROW((void)evaluate_model(m, empty, Metric::kAccuracy),
               std::invalid_argument);
}

}  // namespace
}  // namespace varbench::ml

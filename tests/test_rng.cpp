#include "src/rngx/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace varbench::rngx {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a{7};
  const auto first = a.next_u64();
  (void)a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{3};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng{4};
  double sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng{5};
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(Rng, LogUniformRespectsBoundsAndScale) {
  Rng rng{6};
  int below_geometric_mean = 0;
  constexpr int n = 20000;
  const double geo_mid = std::sqrt(1e-4 * 1e-0);
  for (int i = 0; i < n; ++i) {
    const double v = rng.log_uniform(1e-4, 1.0);
    EXPECT_GE(v, 1e-4);
    EXPECT_LE(v, 1.0);
    if (v < geo_mid) ++below_geometric_mean;
  }
  // Log-uniform: half the mass below the geometric midpoint.
  EXPECT_NEAR(static_cast<double>(below_geometric_mean) / n, 0.5, 0.02);
}

TEST(Rng, LogUniformRejectsNonPositiveLo) {
  Rng rng{1};
  EXPECT_THROW((void)rng.log_uniform(0.0, 1.0), std::invalid_argument);
}

TEST(Rng, UniformIndexIsUnbiased) {
  Rng rng{8};
  constexpr std::uint64_t n_buckets = 7;
  std::vector<int> counts(n_buckets, 0);
  constexpr int draws = 70000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_index(n_buckets)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), draws / 7.0, 5.0 * std::sqrt(draws / 7.0));
  }
}

TEST(Rng, UniformIndexZeroThrows) {
  Rng rng{1};
  EXPECT_THROW((void)rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng{9};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.count(-2) == 1 && seen.count(2) == 1);
}

TEST(Rng, NormalMomentsMatchStandard) {
  Rng rng{10};
  constexpr int n = 200000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sumsq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sumsq / n, 1.0, 0.02);
}

TEST(Rng, NormalWithParams) {
  Rng rng{11};
  constexpr int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng{12};
  int hits = 0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng{13};
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SampleWithReplacementBounds) {
  Rng rng{14};
  const auto idx = rng.sample_with_replacement(10, 500);
  EXPECT_EQ(idx.size(), 500u);
  for (const auto i : idx) EXPECT_LT(i, 10u);
  // With replacement, duplicates are essentially guaranteed.
  const std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_LT(unique.size(), idx.size());
}

TEST(Rng, SplitGivesIndependentChild) {
  Rng parent{15};
  Rng child = parent.split("worker");
  // Child stream should not equal the parent's continuation.
  Rng parent_copy{15};
  (void)parent_copy.next_u64();  // advance like parent did in split()
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == parent_copy.next_u64()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(DeriveSeed, DistinctTagsDistinctSeeds) {
  const auto a = derive_seed(99, "data_split");
  const auto b = derive_seed(99, "weight_init");
  EXPECT_NE(a, b);
}

TEST(DeriveSeed, Deterministic) {
  EXPECT_EQ(derive_seed(1, "x"), derive_seed(1, "x"));
}

TEST(HashTag, IsStableAndDistinct) {
  EXPECT_EQ(hash_tag("abc"), hash_tag("abc"));
  EXPECT_NE(hash_tag("abc"), hash_tag("abd"));
}

}  // namespace
}  // namespace varbench::rngx

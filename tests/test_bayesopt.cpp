#include "src/hpo/bayesopt.h"

#include <gtest/gtest.h>

#include <cmath>

namespace varbench::hpo {
namespace {

double bowl(const ParamPoint& p) {
  const double a = p.at("x") - 0.3;
  const double b = p.at("y") - 0.7;
  return a * a + b * b;
}

SearchSpace unit_square() {
  SearchSpace s;
  s.add({"x", 0.0, 1.0}).add({"y", 0.0, 1.0});
  return s;
}

TEST(ExpectedImprovement, ZeroWhenCertainAndWorse) {
  EXPECT_DOUBLE_EQ(expected_improvement(1.0, 0.0, 0.5, 0.0), 0.0);
}

TEST(ExpectedImprovement, PositiveWhenCertainAndBetter) {
  EXPECT_DOUBLE_EQ(expected_improvement(0.2, 0.0, 0.5, 0.0), 0.3);
}

TEST(ExpectedImprovement, GrowsWithUncertainty) {
  const double low = expected_improvement(0.6, 0.01, 0.5, 0.0);
  const double high = expected_improvement(0.6, 1.0, 0.5, 0.0);
  EXPECT_GT(high, low);
}

TEST(ExpectedImprovement, AlwaysNonNegative) {
  for (double mean = -1.0; mean <= 1.0; mean += 0.25) {
    for (double var = 0.0; var <= 2.0; var += 0.5) {
      EXPECT_GE(expected_improvement(mean, var, 0.0, 0.01), 0.0);
    }
  }
}

TEST(BayesOpt, BeatsItsOwnInitialDesign) {
  rngx::Rng rng{1};
  BayesOptConfig cfg;
  cfg.initial_random = 5;
  const BayesianOptimization algo{cfg};
  const auto r = algo.optimize(unit_square(), bowl, 30, rng);
  ASSERT_EQ(r.trials.size(), 30u);
  double best_initial = r.trials[0].objective;
  for (std::size_t i = 1; i < cfg.initial_random; ++i) {
    best_initial = std::min(best_initial, r.trials[i].objective);
  }
  EXPECT_LT(r.best_objective, best_initial);
  EXPECT_LT(r.best_objective, 0.02);
}

TEST(BayesOpt, OutperformsRandomSearchOnSmoothBowl) {
  // Average best objective over seeds: BO should beat random search at
  // equal budget on this easy smooth problem.
  double bo_total = 0.0;
  double rs_total = 0.0;
  constexpr int rounds = 5;
  constexpr std::size_t budget = 25;
  const BayesianOptimization bo;
  const RandomSearch rs{/*enlarge_bounds=*/false};
  for (int i = 0; i < rounds; ++i) {
    rngx::Rng r1{100u + i};
    rngx::Rng r2{100u + i};
    bo_total += bo.optimize(unit_square(), bowl, budget, r1).best_objective;
    rs_total += rs.optimize(unit_square(), bowl, budget, r2).best_objective;
  }
  EXPECT_LT(bo_total, rs_total);
}

TEST(BayesOpt, SeedDeterminism) {
  const BayesianOptimization algo;
  rngx::Rng r1{7};
  rngx::Rng r2{7};
  const auto a = algo.optimize(unit_square(), bowl, 15, r1);
  const auto b = algo.optimize(unit_square(), bowl, 15, r2);
  EXPECT_DOUBLE_EQ(a.best_objective, b.best_objective);
}

TEST(BayesOpt, BudgetSmallerThanInitialDesign) {
  const BayesianOptimization algo;
  rngx::Rng rng{8};
  const auto r = algo.optimize(unit_square(), bowl, 3, rng);
  EXPECT_EQ(r.trials.size(), 3u);
}

}  // namespace
}  // namespace varbench::hpo

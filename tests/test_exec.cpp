#include "src/exec/exec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <latch>
#include <stdexcept>
#include <vector>

namespace varbench::exec {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool{3};
  EXPECT_EQ(pool.num_workers(), 3u);
  std::atomic<int> count{0};
  std::latch done{8};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      count.fetch_add(1);
      done.count_down();
    });
  }
  done.wait();
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, EnsureWorkersGrowsButNeverShrinks) {
  ThreadPool pool{1};
  pool.ensure_workers(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  pool.ensure_workers(2);
  EXPECT_EQ(pool.num_workers(), 4u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    std::vector<std::atomic<int>> visits(257);
    for (auto& v : visits) v.store(0);
    parallel_for(ExecContext{threads}, 0, visits.size(),
                 [&](std::size_t i) { visits[i].fetch_add(1); });
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  }
}

TEST(ParallelFor, EmptyAndReversedRangesAreNoOps) {
  int calls = 0;
  parallel_for(ExecContext{4}, 5, 5, [&](std::size_t) { ++calls; });
  parallel_for(ExecContext{4}, 7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, HonorsExplicitGrain) {
  std::atomic<int> count{0};
  parallel_for(
      ExecContext{4}, 0, 100, [&](std::size_t) { count.fetch_add(1); },
      /*grain=*/7);
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelFor, NestedRegionsRunInlineWithoutDeadlock) {
  // A nested non-serial region must not wait on pool workers that are all
  // busy with the outer region — it runs inline on the current thread.
  std::atomic<int> inner_total{0};
  parallel_for(ExecContext{4}, 0, 8, [&](std::size_t) {
    parallel_for(ExecContext{4}, 0, 16,
                 [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);
  // After the outer region, top-level calls parallelize again (flag reset).
  std::atomic<int> top_level{0};
  parallel_for(ExecContext{4}, 0, 32,
               [&](std::size_t) { top_level.fetch_add(1); });
  EXPECT_EQ(top_level.load(), 32);
}

TEST(ParallelFor, PropagatesFirstException) {
  for (const std::size_t threads : {1u, 4u}) {
    EXPECT_THROW(
        parallel_for(ExecContext{threads}, 0, 64,
                     [&](std::size_t i) {
                       if (i == 13) throw std::runtime_error("boom");
                     }),
        std::runtime_error);
  }
}

TEST(ExecContext, SerialAndResolution) {
  EXPECT_TRUE(ExecContext::serial().is_serial());
  EXPECT_EQ(ExecContext{5}.resolved_threads(), 5u);
  // 0 = hardware concurrency, which is always at least one thread.
  EXPECT_GE(ExecContext::hardware().resolved_threads(), 1u);
}

TEST(ReplicateSeed, DeterministicAndDistinctPerIndex) {
  EXPECT_EQ(replicate_seed(42, 7), replicate_seed(42, 7));
  std::vector<std::uint64_t> seeds(1000);
  for (std::size_t i = 0; i < seeds.size(); ++i) seeds[i] = replicate_seed(9, i);
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

TEST(ParallelReplicate, BitIdenticalAcrossThreadCounts) {
  auto run = [](std::size_t threads) {
    return parallel_replicate<double>(
        ExecContext{threads}, 100, /*master_seed=*/123, "replicate_test",
        [](std::size_t i, rngx::Rng& rng) {
          return rng.normal() + static_cast<double>(i) * rng.uniform();
        });
  };
  const auto serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

TEST(ParallelReplicate, MasterAdvancesOneDrawRegardlessOfThreads) {
  rngx::Rng m1{77};
  rngx::Rng m2{77};
  (void)parallel_replicate<double>(ExecContext{1}, 10, m1, "t",
                                   [](std::size_t, rngx::Rng& r) {
                                     return r.uniform();
                                   });
  (void)parallel_replicate<double>(ExecContext{8}, 1000, m2, "t",
                                   [](std::size_t, rngx::Rng& r) {
                                     return r.uniform();
                                   });
  EXPECT_EQ(m1.next_u64(), m2.next_u64());
}

TEST(ParallelReplicate, DistinctTagsGiveDistinctStreams) {
  const auto a = parallel_replicate<double>(
      ExecContext{2}, 50, /*master_seed=*/5, "stream_a",
      [](std::size_t, rngx::Rng& r) { return r.uniform(); });
  const auto b = parallel_replicate<double>(
      ExecContext{2}, 50, /*master_seed=*/5, "stream_b",
      [](std::size_t, rngx::Rng& r) { return r.uniform(); });
  EXPECT_NE(a, b);
}

// The Rng::split contract the whole engine rests on: same tag → identical
// stream, distinct tags → statistically independent streams.
TEST(RngSplit, SameTagSameStream) {
  rngx::Rng p1{11};
  rngx::Rng p2{11};
  auto c1 = p1.split("worker");
  auto c2 = p2.split("worker");
  for (int i = 0; i < 32; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

TEST(RngSplit, DistinctTagsIndependentStreams) {
  rngx::Rng parent{12};
  auto a = parent.split("alpha");
  auto b = parent.split("beta");
  // Empirical correlation of 4096 paired uniforms should be ~N(0, 1/64).
  const int n = 4096;
  double sum_ab = 0.0;
  double sum_a = 0.0;
  double sum_b = 0.0;
  for (int i = 0; i < n; ++i) {
    const double ua = a.uniform();
    const double ub = b.uniform();
    sum_ab += ua * ub;
    sum_a += ua;
    sum_b += ub;
  }
  const double corr =
      (sum_ab / n - (sum_a / n) * (sum_b / n)) / (1.0 / 12.0);
  EXPECT_LT(std::abs(corr), 0.1);
}

}  // namespace
}  // namespace varbench::exec

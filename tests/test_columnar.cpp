// VBT1 binary columnar artifact contract (src/io/columnar/,
// docs/artifacts.md): losslessness — JSON → VBT → JSON is byte-identical
// for every cell kind and every registered study kind; zero-copy —
// columnar-backed f64 columns surface as spans into the mapping; strict
// rejection — every corrupt input fails with an io::JsonError naming the
// path and byte offset; and interchange — report and campaign consume
// mixed .json/.vbt artifact sets transparently.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "src/campaign/campaign.h"
#include "src/campaign/subprocess.h"
#include "src/io/columnar/format.h"
#include "src/io/columnar/vbt.h"
#include "src/io/json.h"
#include "src/report/artifact.h"
#include "src/study/figures/figures.h"
#include "src/study/result_table.h"
#include "src/study/study_runner.h"
#include "src/study/study_spec.h"

namespace varbench::study {
namespace {

namespace fs = std::filesystem;
namespace columnar = io::columnar;
using namespace std::chrono_literals;

/// A fresh scratch directory per test, removed on scope exit.
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_{fs::temp_directory_path() /
              ("varbench_columnar_" + tag + "_" +
               std::to_string(campaign::current_process_id()))} {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  fs::path path_;
};

/// A table exercising every column encoding the writer can elect: f64,
/// i64 (negatives), u64 (above INT64_MAX), string-dict, and mixed
/// (nulls, bools, several number kinds, strings).
ResultTable all_types_table() {
  ResultTable t;
  t.name = "columnar:all_types";
  t.seed = 0xFFFFFFFFFFFFFFFFULL;  // full-range seed survives
  t.columns = {"seq", "measure", "delta", "big", "label", "mixed"};
  const std::vector<Cell> mixed{
      Cell{},                            // null
      Cell{true},                        //
      Cell{false},                       //
      Cell{0.5},                         //
      Cell{std::int64_t{-7}},            //
      Cell{std::uint64_t{1} << 63},      // wide unsigned
      Cell{std::string{"strings too"}},  //
      Cell{std::int64_t{42}},            // non-negative int stays unsigned
  };
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    t.add_row({Cell{std::uint64_t{i}}, Cell{0.25 * static_cast<double>(i)},
               Cell{std::int64_t{-3} * static_cast<std::int64_t>(i)},
               Cell{(std::uint64_t{1} << 63) + i},
               Cell{std::string{i % 2 == 0 ? "even" : "odd"}}, mixed[i]});
  }
  return t;
}

/// encode → disk → ResultTable::load, asserting byte-identity of both the
/// full (provenance-carrying) and canonical serializations.
void expect_vbt_roundtrip(const ResultTable& table, const std::string& path) {
  columnar::write_vbt(path, table, /*include_provenance=*/true);
  const ResultTable loaded = ResultTable::load(path);
  EXPECT_EQ(loaded.to_json_text(true), table.to_json_text(true)) << path;
  EXPECT_EQ(loaded.canonical_text(), table.canonical_text()) << path;
  EXPECT_TRUE(loaded == table) << path;
  ASSERT_NE(loaded.backing, nullptr) << path;
}

/// Cheap spec per study kind: the tiny shapes of test_study_shard /
/// test_figures_shard for the heavy kinds, scaled-down defaults for the
/// analytic ones.
StudySpec tiny_spec(StudyKind kind) {
  StudySpec spec;
  switch (kind) {
    case StudyKind::kVariance:
    case StudyKind::kCompare:
    case StudyKind::kHpo:
    case StudyKind::kEstimator:
    case StudyKind::kDetection:
      spec.kind = kind;
      spec.case_study = "cifar10_vgg11";
      break;
    default:
      spec = figures::default_figure_spec(kind);
      break;
  }
  spec.scale = 0.08;
  spec.seed = 20260727;
  switch (kind) {
    case StudyKind::kVariance:
      spec.repetitions = 4;
      spec.variance.hpo_algorithms = {"random_search"};
      spec.variance.hpo_repetitions = 2;
      spec.variance.hpo_budget = 2;
      break;
    case StudyKind::kCompare:
      spec.repetitions = 4;
      spec.compare.num_resamples = 20;
      break;
    case StudyKind::kEstimator:
      spec.repetitions = 3;
      spec.estimator.estimators = {"ideal", "fix_all"};
      spec.estimator.hpo_budget = 2;
      break;
    case StudyKind::kDetection:
      spec.repetitions = 3;
      spec.detection.k = 5;
      spec.detection.resamples = 10;
      spec.detection.p_grid = {0.5, 0.9};
      break;
    case StudyKind::kHpo:
      spec.repetitions = 1;
      spec.hpo.budget = 3;
      break;
    case StudyKind::kFig01VarianceSources:
      spec.repetitions = 3;
      spec.figure.tasks = {"cifar10_vgg11"};
      spec.figure.hpo_algorithms = {"random_search"};
      spec.figure.hpo_repetitions = 2;
      spec.figure.hpo_budget = 2;
      break;
    case StudyKind::kFig05EstimatorStderr:
      spec.repetitions = 3;
      spec.figure.tasks = {"cifar10_vgg11"};
      spec.figure.k_grid = {1, 5};
      break;
    case StudyKind::kFig06DetectionRates:
      spec.repetitions = 3;
      spec.figure.tasks = {"cifar10_vgg11"};
      spec.figure.k = 5;
      spec.figure.resamples = 10;
      spec.figure.p_grid = {0.5, 0.9};
      break;
    case StudyKind::kFigF2HpoCurves:
      spec.repetitions = 2;
      spec.figure.tasks = {"cifar10_vgg11"};
      spec.figure.hpo_algorithms = {"random_search"};
      spec.figure.budget = 3;
      break;
    case StudyKind::kFigG3Normality:
      spec.repetitions = 4;
      spec.figure.tasks = {"cifar10_vgg11"};
      break;
    case StudyKind::kFigH5MseDecomposition:
      spec.repetitions = 4;
      spec.figure.tasks = {"glue_rte_bert"};
      spec.figure.k = 5;
      break;
    case StudyKind::kFigI6Robustness:
      spec.repetitions = 4;
      break;
    case StudyKind::kAblationPairing:
      spec.repetitions = 4;
      spec.figure.resamples = 10;
      break;
    case StudyKind::kMultiContestants:
      spec.repetitions = 3;
      break;
    case StudyKind::kMultiDataset:
      spec.repetitions = 3;
      spec.figure.tasks = {"cifar10_vgg11"};
      break;
    default:
      break;  // analytic kinds run their defaults
  }
  return spec;
}

// ------------------------------------------------------------ round trip

TEST(ColumnarRoundTrip, AllCellKindsAreLossless) {
  TempDir dir{"all_types"};
  ResultTable t = all_types_table();
  t.threads = 3;
  t.wall_time_ms = 12.5;
  expect_vbt_roundtrip(t, dir.file("all_types.vbt"));

  // The writer elected the narrowest encoding per column.
  const auto mapped = columnar::MappedTable::open(dir.file("all_types.vbt"));
  using columnar::ColumnType;
  EXPECT_EQ(mapped->column_type(0), ColumnType::kI64);  // non-negative ints
  EXPECT_EQ(mapped->column_type(1), ColumnType::kF64);
  EXPECT_EQ(mapped->column_type(2), ColumnType::kI64);
  EXPECT_EQ(mapped->column_type(3), ColumnType::kU64);
  EXPECT_EQ(mapped->column_type(4), ColumnType::kStringDict);
  EXPECT_EQ(mapped->column_type(5), ColumnType::kMixed);
  // First-appearance dictionary order, shared across columns.
  ASSERT_GE(mapped->dictionary().size(), 3u);
  EXPECT_EQ(mapped->dictionary()[0], "even");
  EXPECT_EQ(mapped->dictionary()[1], "odd");
  EXPECT_EQ(mapped->dictionary()[2], "strings too");
}

TEST(ColumnarRoundTrip, ShardedTableKeepsItsShard) {
  TempDir dir{"shard"};
  StudySpec spec = tiny_spec(StudyKind::kCompare);
  spec.shard = ShardSpec{1, 2};
  const ResultTable shard = run_study(spec);
  ASSERT_FALSE(shard.is_complete());
  expect_vbt_roundtrip(shard, dir.file("shard.vbt"));
}

TEST(ColumnarRoundTrip, DeterministicBytes) {
  // One rendering per table: the byte-identity contract of the JSON
  // artifact carries over to the binary one.
  const ResultTable t = all_types_table();
  EXPECT_EQ(columnar::encode_vbt(t, false), columnar::encode_vbt(t, false));
  EXPECT_NE(columnar::encode_vbt(t, true), columnar::encode_vbt(t, false));
}

TEST(ColumnarRoundTrip, EveryRegisteredStudyKind) {
  TempDir dir{"kinds"};
  for (const StudyKindInfo& info : registered_study_kinds()) {
    const ResultTable table = run_study(tiny_spec(info.kind));
    ASSERT_GT(table.rows.size(), 0u) << info.name;
    expect_vbt_roundtrip(table, dir.file(info.name + ".vbt"));
  }
}

// ------------------------------------------------------------- zero copy

TEST(ColumnarZeroCopy, SpansAliasTheMapping) {
  TempDir dir{"span"};
  const std::string path = dir.file("t.vbt");
  columnar::write_vbt(path, all_types_table());
  const ResultTable loaded = ResultTable::load(path);
  ASSERT_NE(loaded.backing, nullptr);

  const auto span = loaded.column_span("measure");
  ASSERT_TRUE(span.has_value());
  ASSERT_EQ(span->size(), loaded.rows.size());
  // Zero-copy means *the same memory* as the mapping, not a copy of it.
  EXPECT_EQ(span->data(), loaded.backing->f64_column(1).data());
  EXPECT_DOUBLE_EQ((*span)[3], 0.75);
  // column_values rides the span for f64 columns.
  EXPECT_EQ(loaded.column_values("measure"),
            std::vector<double>(span->begin(), span->end()));

  // Non-f64 columns and value-mutated tables fall back to the cell path.
  EXPECT_FALSE(loaded.column_span("label").has_value());
  ResultTable shrunk = loaded;
  shrunk.rows.pop_back();
  EXPECT_FALSE(shrunk.column_span("measure").has_value());
}

TEST(ColumnarZeroCopy, JsonLoadedTablesHaveNoBacking) {
  TempDir dir{"nospan"};
  const std::string path = dir.file("t.json");
  all_types_table().save(path);
  const ResultTable loaded = ResultTable::load(path);
  EXPECT_EQ(loaded.backing, nullptr);
  EXPECT_FALSE(loaded.column_span("measure").has_value());
  // ...but the values decode identically either way.
  EXPECT_EQ(loaded.column_values("measure"),
            all_types_table().column_values("measure"));
}

// ------------------------------------------------------ corrupt rejection

using Mutation = std::function<void(std::string&)>;

/// Write a mutated encoding and assert load fails mentioning the path,
/// the byte-offset clause, and `needle`.
void expect_rejects(const TempDir& dir, const std::string& name,
                    const Mutation& mutate, const std::string& needle) {
  std::string bytes = columnar::encode_vbt(all_types_table());
  mutate(bytes);
  const std::string path = dir.file(name);
  io::write_file(path, bytes);
  try {
    (void)ResultTable::load(path);
    FAIL() << name << ": corrupt artifact loaded successfully";
  } catch (const io::JsonError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("byte offset"), std::string::npos) << what;
    EXPECT_NE(what.find(needle), std::string::npos) << what;
  }
}

std::uint64_t read_u64(const std::string& bytes, std::size_t off) {
  std::uint64_t v = 0;
  std::memcpy(&v, bytes.data() + off, 8);
  return v;
}

void write_u64(std::string& bytes, std::size_t off, std::uint64_t v) {
  std::memcpy(bytes.data() + off, &v, 8);
}

/// Byte offset of column `ci`'s directory entry (header field offsets per
/// src/io/columnar/format.h: coldir_offset is the u64 at byte 64).
std::size_t entry_off(const std::string& bytes, std::size_t ci) {
  return static_cast<std::size_t>(read_u64(bytes, 64)) +
         sizeof(columnar::ColumnEntry) * ci;
}

TEST(ColumnarCorrupt, BadMagic) {
  TempDir dir{"magic"};
  std::string bytes = columnar::encode_vbt(all_types_table());
  bytes[0] = 'X';
  const std::string path = dir.file("bad_magic.vbt");
  io::write_file(path, bytes);
  // The reader itself rejects the magic with the offset...
  try {
    (void)columnar::MappedTable::open(path);
    FAIL() << "opened a file without the VBT1 magic";
  } catch (const io::JsonError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("bad magic"), std::string::npos) << what;
    EXPECT_NE(what.find("byte offset 0"), std::string::npos) << what;
  }
  // ...while ResultTable::load never dispatches a magic-less file to the
  // columnar reader: it falls through to the JSON parser, whose error
  // also names the path.
  try {
    (void)ResultTable::load(path);
    FAIL() << "loaded a corrupt file";
  } catch (const io::JsonError& e) {
    EXPECT_NE(std::string{e.what()}.find(path), std::string::npos)
        << e.what();
  }
}

TEST(ColumnarCorrupt, UnsupportedVersion) {
  TempDir dir{"version"};
  expect_rejects(
      dir, "v9.vbt",
      [](std::string& b) {
        const std::uint32_t v = 9;
        std::memcpy(b.data() + 8, &v, 4);
      },
      "unsupported version 9");
}

TEST(ColumnarCorrupt, Truncation) {
  TempDir dir{"trunc"};
  // Below the fixed header: rejected before any field is read.
  expect_rejects(
      dir, "stub.vbt", [](std::string& b) { b.resize(40); }, "truncated");
  // One byte short: the header's file_bytes no longer matches.
  expect_rejects(
      dir, "chopped.vbt", [](std::string& b) { b.resize(b.size() - 1); },
      "truncated or oversized");
}

TEST(ColumnarCorrupt, MisalignedBlock) {
  TempDir dir{"align"};
  expect_rejects(
      dir, "misaligned.vbt",
      [](std::string& b) {
        const std::size_t e = entry_off(b, 1);
        write_u64(b, e + 8, read_u64(b, e + 8) + 8);  // data_offset += 8
      },
      "not 64-byte aligned");
}

TEST(ColumnarCorrupt, OverlappingBlocks) {
  TempDir dir{"overlap"};
  expect_rejects(
      dir, "overlap.vbt",
      [](std::string& b) {
        // Column 2's data block redirected on top of column 1's.
        write_u64(b, entry_off(b, 2) + 8, read_u64(b, entry_off(b, 1) + 8));
      },
      "overlaps");
}

TEST(ColumnarCorrupt, OutOfBoundsBlock) {
  TempDir dir{"bounds"};
  expect_rejects(
      dir, "oob.vbt",
      [](std::string& b) {
        write_u64(b, entry_off(b, 1) + 8, columnar::align_up(b.size()) + 64);
      },
      "out of bounds");
}

TEST(ColumnarCorrupt, DanglingDictIndex) {
  TempDir dir{"dict"};
  expect_rejects(
      dir, "dangling.vbt",
      [](std::string& b) {
        // First cell of the string column (index 4 in all_types_table).
        const std::uint64_t data = read_u64(b, entry_off(b, 4) + 8);
        const std::uint32_t idx = 0xFFFF;
        std::memcpy(b.data() + data, &idx, 4);
      },
      "string-dict index 65535 out of range");
}

TEST(ColumnarCorrupt, UnknownMixedTag) {
  TempDir dir{"tag"};
  expect_rejects(
      dir, "badtag.vbt",
      [](std::string& b) {
        // First tag of the mixed column (index 5): aux_offset is the u64
        // at entry offset +24.
        b[static_cast<std::size_t>(read_u64(b, entry_off(b, 5) + 24))] =
            static_cast<char>(9);
      },
      "unknown cell tag 9");
}

TEST(ColumnarCorrupt, MetadataMustBeAValidArtifactDocument) {
  TempDir dir{"meta"};
  expect_rejects(
      dir, "badmeta.vbt",
      [](std::string& b) {
        b[static_cast<std::size_t>(read_u64(b, 32))] = '!';  // meta_offset
      },
      "metadata block");
}

// ----------------------------------------------------------- interchange

TEST(ColumnarFormat, InferArtifactFormat) {
  EXPECT_EQ(infer_artifact_format("a/b.vbt"), ArtifactFormat::kBinary);
  EXPECT_EQ(infer_artifact_format("a/b.vbt.part"), ArtifactFormat::kBinary);
  EXPECT_EQ(infer_artifact_format("a/b.json"), ArtifactFormat::kJson);
  EXPECT_EQ(infer_artifact_format("a/b.json.part"), ArtifactFormat::kJson);
  EXPECT_EQ(infer_artifact_format("bare"), ArtifactFormat::kJson);
}

TEST(ColumnarFormat, SaveDispatchesOnExtension) {
  TempDir dir{"save"};
  const ResultTable t = all_types_table();
  t.save(dir.file("t.vbt"));
  t.save(dir.file("t.json"));
  const std::string binary = io::read_file(dir.file("t.vbt"));
  EXPECT_TRUE(columnar::has_vbt_magic(
      {reinterpret_cast<const unsigned char*>(binary.data()), binary.size()}));
  EXPECT_EQ(io::read_file(dir.file("t.json")), t.to_json_text(true));
  // Both load back to the same value.
  EXPECT_TRUE(ResultTable::load(dir.file("t.vbt")) ==
              ResultTable::load(dir.file("t.json")));
}

TEST(ColumnarInterchange, ReportMergesMixedFormatShardDir) {
  TempDir dir{"mixdir"};
  const StudySpec spec = tiny_spec(StudyKind::kCompare);
  const ResultTable unsharded = run_study(spec);
  for (std::size_t i = 0; i < 2; ++i) {
    StudySpec shard_spec = spec;
    shard_spec.shard = ShardSpec{i, 2};
    run_study(shard_spec).save(
        dir.file("s" + std::to_string(i) + (i == 0 ? ".json" : ".vbt")));
  }
  const report::DirArtifacts loaded = report::load_artifact_dir(dir.str());
  ASSERT_EQ(loaded.studies.size(), 1u);
  EXPECT_EQ(loaded.studies[0].table.canonical_text(),
            unsharded.canonical_text());
}

TEST(ColumnarInterchange, BinaryCampaignEndToEnd) {
  TempDir dir{"campaign"};
  const StudySpec spec = tiny_spec(StudyKind::kCompare);
  campaign::CampaignConfig cfg;
  cfg.dir = dir.str();
  cfg.shards = 2;
  cfg.workers = 2;
  cfg.stale_after = 10min;
  cfg.poll_interval = 1ms;
  cfg.format = ArtifactFormat::kBinary;
  const campaign::CampaignReport report =
      campaign::run_campaign(cfg, {spec}, campaign::in_process_launcher());
  ASSERT_TRUE(report.ok()) << (report.failures.empty()
                                   ? "incomplete"
                                   : report.failures.front());
  ASSERT_EQ(report.merged_outputs.size(), 1u);
  const std::string merged_path = report.merged_outputs.front();
  EXPECT_TRUE(merged_path.ends_with(".vbt")) << merged_path;
  // The merged binary artifact is the canonical table, bit for bit.
  EXPECT_EQ(ResultTable::load(merged_path).canonical_text(),
            run_study(spec).canonical_text());

  // Resuming in the other format reuses every binary shard: no relaunches,
  // and the re-merged output switches extension without leaving the stale
  // sibling behind.
  campaign::CampaignConfig resumed = cfg;
  resumed.resume = true;
  resumed.format = ArtifactFormat::kJson;
  const campaign::CampaignReport second =
      campaign::run_campaign(resumed, {spec}, campaign::in_process_launcher());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.reused, second.tasks);
  EXPECT_EQ(second.launched, 0u);
  ASSERT_EQ(second.merged_outputs.size(), 1u);
  const std::string json_merged = second.merged_outputs.front();
  EXPECT_TRUE(json_merged.ends_with(".json")) << json_merged;
  EXPECT_FALSE(fs::exists(merged_path)) << "stale .vbt merged output left";
  EXPECT_EQ(io::read_file(json_merged),
            ResultTable::load(json_merged).canonical_text());
}

}  // namespace
}  // namespace varbench::study

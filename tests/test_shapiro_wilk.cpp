#include "src/stats/shapiro_wilk.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/rngx/rng.h"

namespace varbench::stats {
namespace {

TEST(ShapiroWilk, NormalSampleNotRejected) {
  rngx::Rng rng{1};
  std::vector<double> x(100);
  for (double& v : x) v = rng.normal(3.0, 2.0);
  const auto r = shapiro_wilk(x);
  EXPECT_GT(r.w_statistic, 0.97);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(ShapiroWilk, UniformSampleRejected) {
  rngx::Rng rng{2};
  std::vector<double> x(500);
  for (double& v : x) v = rng.uniform();
  const auto r = shapiro_wilk(x);
  EXPECT_LT(r.p_value, 0.01);
}

TEST(ShapiroWilk, ExponentialSampleStronglyRejected) {
  rngx::Rng rng{3};
  std::vector<double> x(200);
  for (double& v : x) v = -std::log(1.0 - rng.uniform());
  const auto r = shapiro_wilk(x);
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_LT(r.w_statistic, 0.95);
}

TEST(ShapiroWilk, BimodalSampleRejected) {
  rngx::Rng rng{4};
  std::vector<double> x(300);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal(i % 2 == 0 ? -4.0 : 4.0, 1.0);
  }
  EXPECT_LT(shapiro_wilk(x).p_value, 1e-4);
}

TEST(ShapiroWilk, WStatisticInUnitInterval) {
  rngx::Rng rng{5};
  for (const std::size_t n : {4u, 7u, 11u, 12u, 35u, 200u}) {
    std::vector<double> x(n);
    for (double& v : x) v = rng.normal();
    const auto r = shapiro_wilk(x);
    EXPECT_GT(r.w_statistic, 0.0);
    EXPECT_LE(r.w_statistic, 1.0);
    EXPECT_GE(r.p_value, 0.0);
    EXPECT_LE(r.p_value, 1.0);
  }
}

TEST(ShapiroWilk, FalsePositiveRateNearAlpha) {
  // Under H0 (normal data), P(p < 0.05) should be ≈ 5%.
  rngx::Rng rng{6};
  int rejections = 0;
  constexpr int rounds = 400;
  for (int i = 0; i < rounds; ++i) {
    std::vector<double> x(30);
    for (double& v : x) v = rng.normal();
    if (shapiro_wilk(x).p_value < 0.05) ++rejections;
  }
  EXPECT_NEAR(static_cast<double>(rejections) / rounds, 0.05, 0.045);
}

TEST(ShapiroWilk, InvalidInputsThrow) {
  EXPECT_THROW((void)shapiro_wilk(std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW((void)shapiro_wilk(std::vector<double>{1.0, 1.0, 1.0}),
               std::invalid_argument);
  std::vector<double> too_big(5001, 0.0);
  for (std::size_t i = 0; i < too_big.size(); ++i) {
    too_big[i] = static_cast<double>(i);
  }
  EXPECT_THROW((void)shapiro_wilk(too_big), std::invalid_argument);
}

TEST(ShapiroWilk, ScaleAndShiftInvariant) {
  rngx::Rng rng{7};
  std::vector<double> x(80);
  for (double& v : x) v = rng.normal();
  std::vector<double> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = 100.0 + 7.0 * x[i];
  const auto rx = shapiro_wilk(x);
  const auto ry = shapiro_wilk(y);
  EXPECT_NEAR(rx.w_statistic, ry.w_statistic, 1e-10);
  EXPECT_NEAR(rx.p_value, ry.p_value, 1e-10);
}

// Parameterized: normality holds across many sample sizes for normal data.
class ShapiroWilkSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShapiroWilkSizes, NormalDataUsuallyAccepted) {
  rngx::Rng rng{100 + GetParam()};
  int accepted = 0;
  for (int round = 0; round < 20; ++round) {
    std::vector<double> x(GetParam());
    for (double& v : x) v = rng.normal();
    if (shapiro_wilk(x).p_value > 0.05) ++accepted;
  }
  EXPECT_GE(accepted, 15);  // expect ~19/20
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShapiroWilkSizes,
                         ::testing::Values(5, 10, 11, 12, 25, 50, 100, 500));

}  // namespace
}  // namespace varbench::stats

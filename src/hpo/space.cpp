#include "src/hpo/space.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace varbench::hpo {

namespace {

void check_dim(const Dimension& d) {
  if (d.name.empty()) throw std::invalid_argument("Dimension: empty name");
  if (!(d.lo < d.hi)) throw std::invalid_argument("Dimension: lo >= hi");
  if (d.scale == ScaleKind::kLog && !(d.lo > 0.0)) {
    throw std::invalid_argument("Dimension: log scale requires lo > 0");
  }
}

double round_if_integer(const Dimension& d, double v) {
  return d.integer ? std::round(v) : v;
}

}  // namespace

SearchSpace::SearchSpace(std::vector<Dimension> dims) : dims_{std::move(dims)} {
  for (const auto& d : dims_) check_dim(d);
}

SearchSpace& SearchSpace::add(Dimension dim) {
  check_dim(dim);
  for (const auto& d : dims_) {
    if (d.name == dim.name) {
      throw std::invalid_argument("SearchSpace: duplicate dimension " + dim.name);
    }
  }
  dims_.push_back(std::move(dim));
  return *this;
}

ParamPoint SearchSpace::sample(rngx::Rng& rng) const {
  ParamPoint p;
  for (const auto& d : dims_) {
    const double v = d.scale == ScaleKind::kLog ? rng.log_uniform(d.lo, d.hi)
                                                : rng.uniform(d.lo, d.hi);
    p[d.name] = round_if_integer(d, v);
  }
  return p;
}

std::vector<double> SearchSpace::to_unit(const ParamPoint& p) const {
  std::vector<double> u(dims_.size(), 0.0);
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    const auto& d = dims_[i];
    const auto it = p.find(d.name);
    if (it == p.end()) {
      throw std::invalid_argument("to_unit: missing dimension " + d.name);
    }
    double v = it->second;
    if (d.scale == ScaleKind::kLog) {
      u[i] = (std::log(v) - std::log(d.lo)) / (std::log(d.hi) - std::log(d.lo));
    } else {
      u[i] = (v - d.lo) / (d.hi - d.lo);
    }
    u[i] = std::clamp(u[i], 0.0, 1.0);
  }
  return u;
}

ParamPoint SearchSpace::from_unit(std::span<const double> u) const {
  if (u.size() != dims_.size()) {
    throw std::invalid_argument("from_unit: dimension count mismatch");
  }
  ParamPoint p;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    const auto& d = dims_[i];
    const double t = std::clamp(u[i], 0.0, 1.0);
    double v = 0.0;
    if (d.scale == ScaleKind::kLog) {
      v = std::exp(std::log(d.lo) + t * (std::log(d.hi) - std::log(d.lo)));
    } else {
      v = d.lo + t * (d.hi - d.lo);
    }
    p[d.name] = round_if_integer(d, v);
  }
  return p;
}

ParamPoint SearchSpace::clamp(ParamPoint p) const {
  for (const auto& d : dims_) {
    const auto it = p.find(d.name);
    if (it == p.end()) continue;
    it->second = round_if_integer(d, std::clamp(it->second, d.lo, d.hi));
  }
  return p;
}

bool SearchSpace::contains(const ParamPoint& p) const {
  for (const auto& d : dims_) {
    const auto it = p.find(d.name);
    if (it == p.end()) return false;
    if (it->second < d.lo || it->second > d.hi) return false;
  }
  return true;
}

double value_or(const ParamPoint& p, const std::string& name, double fallback) {
  const auto it = p.find(name);
  return it == p.end() ? fallback : it->second;
}

}  // namespace varbench::hpo

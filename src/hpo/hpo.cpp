#include "src/hpo/hpo.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "src/exec/parallel_for.h"
#include "src/hpo/bayesopt.h"

namespace varbench::hpo {

std::vector<double> HpoResult::best_so_far() const {
  std::vector<double> curve;
  curve.reserve(trials.size());
  double running_min = std::numeric_limits<double>::infinity();
  for (const auto& t : trials) {
    running_min = std::min(running_min, t.objective);
    curve.push_back(running_min);
  }
  return curve;
}

namespace {

void record(HpoResult& result, ParamPoint params, double obj) {
  if (result.trials.empty() || obj < result.best_objective) {
    result.best = params;
    result.best_objective = obj;
  }
  result.trials.push_back({std::move(params), obj});
}

/// Evaluate a pre-sampled trial list — possibly in parallel — and record the
/// trials in list order, so the result is identical for every thread count.
HpoResult evaluate_trials(const exec::ExecContext& ctx,
                          const Objective& objective,
                          std::vector<ParamPoint> points) {
  std::vector<double> objectives(points.size(), 0.0);
  exec::parallel_for(
      ctx, 0, points.size(),
      [&](std::size_t i) { objectives[i] = objective(points[i]); },
      /*grain=*/1);
  HpoResult result;
  result.trials.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    record(result, std::move(points[i]), objectives[i]);
  }
  return result;
}

/// Per-dimension grid step Δ in the dimension's working scale
/// (log space for log dims).
double grid_step(const Dimension& d, std::size_t n) {
  const double lo = d.scale == ScaleKind::kLog ? std::log(d.lo) : d.lo;
  const double hi = d.scale == ScaleKind::kLog ? std::log(d.hi) : d.hi;
  return n > 1 ? (hi - lo) / static_cast<double>(n - 1) : hi - lo;
}

std::vector<double> grid_values_shifted(const Dimension& d, std::size_t n,
                                        double lo_shift, double hi_shift) {
  const bool log_scale = d.scale == ScaleKind::kLog;
  const double lo = (log_scale ? std::log(d.lo) : d.lo) + lo_shift;
  const double hi = (log_scale ? std::log(d.hi) : d.hi) + hi_shift;
  std::vector<double> vals(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    const double t =
        n > 1 ? static_cast<double>(j) / static_cast<double>(n - 1) : 0.5;
    const double v = lo + t * (hi - lo);
    double out = log_scale ? std::exp(v) : v;
    // Integer dimensions (layer widths, counts) must stay physically valid
    // even when bounds are jittered below the nominal range.
    if (d.integer) out = std::max(std::round(out), 1.0);
    vals[j] = out;
  }
  return vals;
}

/// Full-factorial enumeration of `per_dim` values, capped at `budget` trials.
/// When `shuffle_rng` is non-null the enumeration order is randomized, so a
/// budget smaller than the full grid still samples every dimension.
HpoResult run_grid(const exec::ExecContext& ctx, const SearchSpace& space,
                   const Objective& objective, std::size_t budget,
                   const std::vector<std::vector<double>>& per_dim,
                   rngx::Rng* shuffle_rng = nullptr) {
  const std::size_t d = space.size();
  std::size_t total = 1;
  for (const auto& vals : per_dim) total *= vals.size();
  std::vector<std::size_t> order(total);
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (shuffle_rng != nullptr) shuffle_rng->shuffle(order);
  if (order.size() > budget) order.resize(budget);

  std::vector<ParamPoint> points;
  points.reserve(order.size());
  for (const std::size_t flat : order) {
    ParamPoint p;
    std::size_t rem = flat;
    for (std::size_t i = 0; i < d; ++i) {
      p[space.dim(i).name] = per_dim[i][rem % per_dim[i].size()];
      rem /= per_dim[i].size();
    }
    points.push_back(std::move(p));
  }
  return evaluate_trials(ctx, objective, std::move(points));
}

std::size_t grid_resolution(std::size_t budget, std::size_t num_dims) {
  return static_cast<std::size_t>(std::max(
      2.0, std::floor(std::pow(static_cast<double>(budget),
                               1.0 / static_cast<double>(num_dims)))));
}

}  // namespace

std::vector<double> grid_values(const Dimension& d, std::size_t n) {
  return grid_values_shifted(d, n, 0.0, 0.0);
}

HpoResult RandomSearch::optimize(const exec::ExecContext& ctx,
                                 const SearchSpace& space,
                                 const Objective& objective,
                                 std::size_t budget, rngx::Rng& rng) const {
  if (space.empty() || budget == 0) {
    throw std::invalid_argument("RandomSearch: empty space or zero budget");
  }
  // Enlarged bounds (Appendix E.3): ±Δ/2 where Δ is the step of the grid an
  // equal budget would use, so random search covers the noisy grid's support.
  // All candidates are sampled from `rng` up front — the draw sequence is
  // exactly the serial one — and only the evaluations fan out.
  const std::size_t n_per_dim = grid_resolution(budget, space.size());
  std::vector<ParamPoint> points;
  points.reserve(budget);
  for (std::size_t t = 0; t < budget; ++t) {
    ParamPoint p;
    for (const auto& d : space.dims()) {
      const bool log_scale = d.scale == ScaleKind::kLog;
      double lo = log_scale ? std::log(d.lo) : d.lo;
      double hi = log_scale ? std::log(d.hi) : d.hi;
      if (enlarge_bounds_) {
        const double half = grid_step(d, n_per_dim) / 2.0;
        lo -= half;
        hi += half;
      }
      double v = rng.uniform(lo, hi);
      if (log_scale) v = std::exp(v);
      if (d.integer) v = std::max(std::round(v), 1.0);
      p[d.name] = v;
    }
    points.push_back(std::move(p));
  }
  return evaluate_trials(ctx, objective, std::move(points));
}

HpoResult GridSearch::optimize(const exec::ExecContext& ctx,
                               const SearchSpace& space,
                               const Objective& objective, std::size_t budget,
                               rngx::Rng& rng) const {
  (void)rng;  // fully deterministic
  if (space.empty() || budget == 0) {
    throw std::invalid_argument("GridSearch: empty space or zero budget");
  }
  const std::size_t n = grid_resolution(budget, space.size());
  std::vector<std::vector<double>> per_dim;
  per_dim.reserve(space.size());
  for (const auto& d : space.dims()) per_dim.push_back(grid_values(d, n));
  return run_grid(ctx, space, objective, budget, per_dim);
}

HpoResult NoisyGridSearch::optimize(const exec::ExecContext& ctx,
                                    const SearchSpace& space,
                                    const Objective& objective,
                                    std::size_t budget, rngx::Rng& rng) const {
  if (space.empty() || budget == 0) {
    throw std::invalid_argument("NoisyGridSearch: empty space or zero budget");
  }
  // At least 3 values per dimension: with a 2-point grid the bound jitter
  // would span half the search range, which no sane experimenter's grid
  // does. Budgets smaller than the full grid visit a shuffled subset.
  const std::size_t n =
      std::max<std::size_t>(3, grid_resolution(budget, space.size()));
  std::vector<std::vector<double>> per_dim;
  per_dim.reserve(space.size());
  for (const auto& d : space.dims()) {
    // ãᵢ ~ U(aᵢ ± Δᵢ/2), b̃ᵢ ~ U(bᵢ ± Δᵢ/2) in the working scale (E.2).
    const double half = grid_step(d, n) / 2.0;
    const double lo_shift = rng.uniform(-half, half);
    const double hi_shift = rng.uniform(-half, half);
    per_dim.push_back(grid_values_shifted(d, n, lo_shift, hi_shift));
  }
  return run_grid(ctx, space, objective, budget, per_dim, &rng);
}

std::unique_ptr<HpoAlgorithm> make_hpo_algorithm(std::string_view name) {
  if (name == "random_search") return std::make_unique<RandomSearch>();
  if (name == "grid_search") return std::make_unique<GridSearch>();
  if (name == "noisy_grid_search") return std::make_unique<NoisyGridSearch>();
  if (name == "bayes_opt") return std::make_unique<BayesianOptimization>();
  throw std::invalid_argument("make_hpo_algorithm: unknown algorithm " +
                              std::string(name));
}

}  // namespace varbench::hpo

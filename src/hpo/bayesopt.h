// Bayesian optimization: GP surrogate + expected-improvement acquisition,
// maximized over a random candidate pool. All stochasticity (initial design,
// candidate pool) is drawn from the ξH stream passed to optimize().
#pragma once

#include "src/hpo/gp.h"
#include "src/hpo/hpo.h"

namespace varbench::hpo {

struct BayesOptConfig {
  std::size_t initial_random = 5;    // random trials before the GP kicks in
  std::size_t candidate_pool = 256;  // EI is maximized over this many samples
  GpConfig gp;
  double exploration = 0.01;  // EI xi: larger explores more
};

class BayesianOptimization final : public HpoAlgorithm {
 public:
  explicit BayesianOptimization(BayesOptConfig config = {})
      : config_{config} {}

  using HpoAlgorithm::optimize;
  // The trial loop is inherently sequential (each trial conditions on the
  // previous posterior), but the per-trial acquisition is batched q-EI
  // style: candidate coordinates are drawn serially from `rng`, then the
  // GP posterior + EI for the whole pool is scored under `ctx` with
  // parallel_for and the argmax taken serially — so --threads accelerates
  // the candidate scan while the trial trajectory stays bit-identical to
  // the serial run (ROADMAP item 4).
  [[nodiscard]] HpoResult optimize(const exec::ExecContext& ctx,
                                   const SearchSpace& space,
                                   const Objective& objective,
                                   std::size_t budget,
                                   rngx::Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override { return "bayes_opt"; }

  [[nodiscard]] const BayesOptConfig& config() const noexcept {
    return config_;
  }

 private:
  BayesOptConfig config_;
};

/// Expected improvement of a (minimization) objective at posterior
/// (mean, variance) given the current best value.
[[nodiscard]] double expected_improvement(double mean, double variance,
                                          double best, double xi);

}  // namespace varbench::hpo

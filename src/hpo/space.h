// Hyperparameter search spaces: named dimensions with linear or logarithmic
// scale (paper Appendix D, Tables 2/3/5/6).
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "src/rngx/rng.h"

namespace varbench::hpo {

/// A concrete hyperparameter assignment λ.
using ParamPoint = std::map<std::string, double>;

enum class ScaleKind : int { kLinear, kLog };

struct Dimension {
  std::string name;
  double lo = 0.0;
  double hi = 1.0;
  ScaleKind scale = ScaleKind::kLinear;
  bool integer = false;  // round to nearest integer (e.g. hidden layer size)
};

class SearchSpace {
 public:
  SearchSpace() = default;
  explicit SearchSpace(std::vector<Dimension> dims);

  SearchSpace& add(Dimension dim);

  [[nodiscard]] std::size_t size() const noexcept { return dims_.size(); }
  [[nodiscard]] bool empty() const noexcept { return dims_.empty(); }
  [[nodiscard]] const std::vector<Dimension>& dims() const noexcept {
    return dims_;
  }
  [[nodiscard]] const Dimension& dim(std::size_t i) const {
    return dims_.at(i);
  }

  /// Uniform sample (log-uniform on log dimensions).
  [[nodiscard]] ParamPoint sample(rngx::Rng& rng) const;

  /// Map a point to the unit cube [0,1]^d (log dims mapped in log space) —
  /// the GP surrogate's input representation.
  [[nodiscard]] std::vector<double> to_unit(const ParamPoint& p) const;

  /// Inverse of to_unit (integer dims rounded).
  [[nodiscard]] ParamPoint from_unit(std::span<const double> u) const;

  /// Clamp every coordinate into its dimension's range.
  [[nodiscard]] ParamPoint clamp(ParamPoint p) const;

  /// True when every dimension is present and within range.
  [[nodiscard]] bool contains(const ParamPoint& p) const;

 private:
  std::vector<Dimension> dims_;
};

/// Value of dimension `name`, or `fallback` when absent.
[[nodiscard]] double value_or(const ParamPoint& p, const std::string& name,
                              double fallback);

}  // namespace varbench::hpo

// Hyperparameter-optimization algorithms HOpt(S_tv; ξH): the paper studies
// grid search, a noisy grid search (Appendix E.2) that models the arbitrary
// choice of grid bounds, random search, and Bayesian optimization.
// All minimize a validation objective r(λ).
#pragma once

#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "src/exec/exec_context.h"
#include "src/hpo/space.h"
#include "src/rngx/rng.h"

namespace varbench::hpo {

/// Validation objective r(λ): lower is better (a risk / error rate).
using Objective = std::function<double(const ParamPoint&)>;

struct Trial {
  ParamPoint params;
  double objective = 0.0;
};

struct HpoResult {
  std::vector<Trial> trials;  // in evaluation order
  ParamPoint best;
  double best_objective = 0.0;

  /// Running minimum of the objective — the optimization curve of Fig. F.2.
  [[nodiscard]] std::vector<double> best_so_far() const;
};

class HpoAlgorithm {
 public:
  virtual ~HpoAlgorithm() = default;
  HpoAlgorithm() = default;
  HpoAlgorithm(const HpoAlgorithm&) = delete;
  HpoAlgorithm& operator=(const HpoAlgorithm&) = delete;

  /// Run up to `budget` objective evaluations. `rng` carries ξH — all of the
  /// algorithm's stochasticity must come from it. Trial *parameters* are
  /// always drawn from `rng` in serial order; objective evaluations may fan
  /// out over `ctx` (requires a thread-safe objective), and the result
  /// (trials, best) is bit-identical for every thread count. Algorithms that
  /// are inherently sequential (Bayesian optimization conditions each trial
  /// on the previous posterior) ignore `ctx` and run serially.
  [[nodiscard]] virtual HpoResult optimize(const exec::ExecContext& ctx,
                                           const SearchSpace& space,
                                           const Objective& objective,
                                           std::size_t budget,
                                           rngx::Rng& rng) const = 0;

  /// Serial convenience — the same computation with no fan-out.
  [[nodiscard]] HpoResult optimize(const SearchSpace& space,
                                   const Objective& objective,
                                   std::size_t budget, rngx::Rng& rng) const {
    return optimize(exec::ExecContext::serial(), space, objective, budget,
                    rng);
  }

  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// Uniform (log-uniform on log dims) random sampling, over the slightly
/// enlarged space of Appendix E.3 (±Δ/2 beyond each bound) so it covers the
/// same volume as the noisy grid.
class RandomSearch final : public HpoAlgorithm {
 public:
  explicit RandomSearch(bool enlarge_bounds = true)
      : enlarge_bounds_{enlarge_bounds} {}
  using HpoAlgorithm::optimize;
  [[nodiscard]] HpoResult optimize(const exec::ExecContext& ctx,
                                   const SearchSpace& space,
                                   const Objective& objective,
                                   std::size_t budget,
                                   rngx::Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override {
    return "random_search";
  }

 private:
  bool enlarge_bounds_;
};

/// Deterministic full-factorial grid with n = floor(budget^(1/d)) values per
/// dimension (Appendix E.1). Ignores ξH entirely.
class GridSearch final : public HpoAlgorithm {
 public:
  using HpoAlgorithm::optimize;
  [[nodiscard]] HpoResult optimize(const exec::ExecContext& ctx,
                                   const SearchSpace& space,
                                   const Objective& objective,
                                   std::size_t budget,
                                   rngx::Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override { return "grid_search"; }
};

/// Grid search whose per-dimension bounds are jittered by U(±Δ/2)
/// (Appendix E.2): models the arbitrary choice of grid placement, giving
/// grid search a variance to compare against stochastic HPO algorithms.
/// E[noisy grid] = plain grid.
class NoisyGridSearch final : public HpoAlgorithm {
 public:
  using HpoAlgorithm::optimize;
  [[nodiscard]] HpoResult optimize(const exec::ExecContext& ctx,
                                   const SearchSpace& space,
                                   const Objective& objective,
                                   std::size_t budget,
                                   rngx::Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override {
    return "noisy_grid_search";
  }
};

/// Factory by name ("random_search" | "grid_search" | "noisy_grid_search" |
/// "bayes_opt"); throws std::invalid_argument on unknown names.
[[nodiscard]] std::unique_ptr<HpoAlgorithm> make_hpo_algorithm(
    std::string_view name);

/// The grid coordinates used by GridSearch: n evenly spaced values over
/// [lo, hi] (log-spaced for log dims). Exposed for tests and for the noisy
/// variant.
[[nodiscard]] std::vector<double> grid_values(const Dimension& d,
                                              std::size_t n);

}  // namespace varbench::hpo

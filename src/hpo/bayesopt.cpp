#include "src/hpo/bayesopt.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>

#include "src/exec/parallel_for.h"
#include "src/stats/distributions.h"

namespace varbench::hpo {

double expected_improvement(double mean, double variance, double best,
                            double xi) {
  const double sigma = std::sqrt(std::max(variance, 0.0));
  if (sigma <= 1e-12) return std::max(best - mean - xi, 0.0);
  const double z = (best - mean - xi) / sigma;
  return (best - mean - xi) * stats::normal_cdf(z) +
         sigma * stats::normal_pdf(z);
}

HpoResult BayesianOptimization::optimize(const exec::ExecContext& ctx,
                                         const SearchSpace& space,
                                         const Objective& objective,
                                         std::size_t budget,
                                         rngx::Rng& rng) const {
  if (space.empty() || budget == 0) {
    throw std::invalid_argument("BayesianOptimization: bad inputs");
  }
  HpoResult result;
  auto record = [&](ParamPoint p) {
    const double obj = objective(p);
    if (result.trials.empty() || obj < result.best_objective) {
      result.best = p;
      result.best_objective = obj;
    }
    result.trials.push_back({std::move(p), obj});
  };

  const std::size_t n_init = std::min(config_.initial_random, budget);
  for (std::size_t t = 0; t < n_init; ++t) record(space.sample(rng));

  const std::size_t d = space.size();
  while (result.trials.size() < budget) {
    // Fit the surrogate on everything seen so far (unit-cube inputs).
    const std::size_t n = result.trials.size();
    math::Matrix x{n, d};
    std::vector<double> y(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto u = space.to_unit(result.trials[i].params);
      auto row = x.row(i);
      std::copy(u.begin(), u.end(), row.begin());
      y[i] = result.trials[i].objective;
    }
    GaussianProcess gp{config_.gp};
    gp.fit(x, y);

    // Maximize EI over a random candidate pool, q-EI style: all candidate
    // coordinates come off the serial trial stream first (candidate-major,
    // dimension-minor — the exact draw order of the old one-at-a-time
    // loop), then the GP posterior and EI for every candidate are scored
    // with parallel_for. The argmax stays a serial first-wins scan over
    // the same EI values in the same order, so the chosen candidate — and
    // therefore the whole trial trajectory — is bit-identical at any
    // --threads (docs/determinism.md).
    const std::size_t pool = config_.candidate_pool;
    if (pool == 0) {
      record(space.from_unit(std::vector<double>(d, 0.5)));
      continue;
    }
    std::vector<double> cand(pool * d, 0.0);
    for (double& v : cand) v = rng.uniform();
    std::vector<double> ei(pool, 0.0);
    exec::parallel_for(ctx, 0, pool, [&](std::size_t c) {
      const auto pred =
          gp.predict(std::span<const double>{cand.data() + c * d, d});
      ei[c] = expected_improvement(pred.mean, pred.variance,
                                   result.best_objective,
                                   config_.exploration);
    });
    double best_ei = -1.0;
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < pool; ++c) {
      if (ei[c] > best_ei) {
        best_ei = ei[c];
        best_c = c;
      }
    }
    const std::vector<double> best_u{cand.begin() + best_c * d,
                                     cand.begin() + (best_c + 1) * d};
    record(space.from_unit(best_u));
  }
  return result;
}

}  // namespace varbench::hpo

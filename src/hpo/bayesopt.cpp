#include "src/hpo/bayesopt.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/stats/distributions.h"

namespace varbench::hpo {

double expected_improvement(double mean, double variance, double best,
                            double xi) {
  const double sigma = std::sqrt(std::max(variance, 0.0));
  if (sigma <= 1e-12) return std::max(best - mean - xi, 0.0);
  const double z = (best - mean - xi) / sigma;
  return (best - mean - xi) * stats::normal_cdf(z) +
         sigma * stats::normal_pdf(z);
}

HpoResult BayesianOptimization::optimize(const exec::ExecContext& ctx,
                                         const SearchSpace& space,
                                         const Objective& objective,
                                         std::size_t budget,
                                         rngx::Rng& rng) const {
  (void)ctx;  // sequential by nature; see header
  if (space.empty() || budget == 0) {
    throw std::invalid_argument("BayesianOptimization: bad inputs");
  }
  HpoResult result;
  auto record = [&](ParamPoint p) {
    const double obj = objective(p);
    if (result.trials.empty() || obj < result.best_objective) {
      result.best = p;
      result.best_objective = obj;
    }
    result.trials.push_back({std::move(p), obj});
  };

  const std::size_t n_init = std::min(config_.initial_random, budget);
  for (std::size_t t = 0; t < n_init; ++t) record(space.sample(rng));

  const std::size_t d = space.size();
  while (result.trials.size() < budget) {
    // Fit the surrogate on everything seen so far (unit-cube inputs).
    const std::size_t n = result.trials.size();
    math::Matrix x{n, d};
    std::vector<double> y(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto u = space.to_unit(result.trials[i].params);
      auto row = x.row(i);
      std::copy(u.begin(), u.end(), row.begin());
      y[i] = result.trials[i].objective;
    }
    GaussianProcess gp{config_.gp};
    gp.fit(x, y);

    // Maximize EI over a random candidate pool.
    double best_ei = -1.0;
    std::vector<double> best_u(d, 0.5);
    std::vector<double> u(d, 0.0);
    for (std::size_t c = 0; c < config_.candidate_pool; ++c) {
      for (double& v : u) v = rng.uniform();
      const auto pred = gp.predict(u);
      const double ei = expected_improvement(pred.mean, pred.variance,
                                             result.best_objective,
                                             config_.exploration);
      if (ei > best_ei) {
        best_ei = ei;
        best_u = u;
      }
    }
    record(space.from_unit(best_u));
  }
  return result;
}

}  // namespace varbench::hpo

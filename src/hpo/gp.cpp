#include "src/hpo/gp.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "src/math/linalg.h"
#include "src/stats/descriptive.h"

namespace varbench::hpo {

GaussianProcess::GaussianProcess(GpConfig config) : config_{config} {
  if (!(config_.length_scale > 0.0 && config_.signal_variance > 0.0 &&
        config_.noise_variance >= 0.0)) {
    throw std::invalid_argument("GaussianProcess: bad config");
  }
}

double GaussianProcess::kernel(std::span<const double> a,
                               std::span<const double> b) const {
  double sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sq += d * d;
  }
  return config_.signal_variance *
         std::exp(-0.5 * sq / (config_.length_scale * config_.length_scale));
}

void GaussianProcess::fit(const math::Matrix& x, std::span<const double> y) {
  if (x.rows() != y.size() || x.rows() == 0) {
    throw std::invalid_argument("GaussianProcess::fit: bad inputs");
  }
  x_ = x;
  y_mean_ = stats::mean(y);
  y_scale_ = x.rows() > 1 ? stats::stddev(y) : 1.0;
  if (y_scale_ <= 0.0) y_scale_ = 1.0;
  y_norm_.resize(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    y_norm_[i] = (y[i] - y_mean_) / y_scale_;
  }

  const std::size_t n = x.rows();
  math::Matrix k{n, n};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = kernel(x.row(i), x.row(j));
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  // Escalate jitter until the factorization succeeds.
  double jitter = std::max(config_.noise_variance, 1e-10);
  for (int attempt = 0; attempt < 8; ++attempt) {
    math::Matrix kj = k;
    for (std::size_t i = 0; i < n; ++i) kj(i, i) += jitter;
    if (auto chol = math::cholesky(kj)) {
      chol_ = std::move(*chol);
      alpha_ = math::cholesky_solve(chol_, y_norm_);
      return;
    }
    jitter *= 10.0;
  }
  throw std::runtime_error("GaussianProcess::fit: kernel matrix not PD");
}

GpPrediction GaussianProcess::predict(std::span<const double> x) const {
  if (!fitted()) throw std::logic_error("GaussianProcess::predict: not fitted");
  if (x.size() != x_.cols()) {
    throw std::invalid_argument("GaussianProcess::predict: dim mismatch");
  }
  const std::size_t n = x_.rows();
  std::vector<double> kstar(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) kstar[i] = kernel(x, x_.row(i));
  const double mean_norm = math::dot(kstar, alpha_);
  const auto v = math::solve_lower(chol_, kstar);
  const double var_norm =
      std::max(0.0, kernel(x, x) - math::dot(v, v));
  return {mean_norm * y_scale_ + y_mean_, var_norm * y_scale_ * y_scale_};
}

double GaussianProcess::log_marginal_likelihood() const {
  if (!fitted()) {
    throw std::logic_error("GaussianProcess::log_marginal_likelihood: not fitted");
  }
  const auto n = static_cast<double>(x_.rows());
  const double data_fit = -0.5 * math::dot(y_norm_, alpha_);
  const double complexity = -0.5 * math::cholesky_log_det(chol_);
  const double norm_const = -0.5 * n * std::log(2.0 * std::numbers::pi);
  return data_fit + complexity + norm_const;
}

}  // namespace varbench::hpo

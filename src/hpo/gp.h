// Gaussian-process regression with an RBF kernel — the surrogate model for
// Bayesian optimization (the paper used RoBO; we implement GP+EI directly).
#pragma once

#include <span>
#include <vector>

#include "src/math/matrix.h"

namespace varbench::hpo {

struct GpConfig {
  double length_scale = 0.2;  // RBF length scale on the unit cube
  double signal_variance = 1.0;
  double noise_variance = 1e-6;  // jitter added to the diagonal
};

struct GpPrediction {
  double mean = 0.0;
  double variance = 0.0;
};

class GaussianProcess {
 public:
  explicit GaussianProcess(GpConfig config = {});

  /// Fit on inputs X (n×d, unit cube) and targets y. Targets are centered
  /// and scaled internally. Increases the diagonal jitter automatically if
  /// the kernel matrix is not positive definite.
  void fit(const math::Matrix& x, std::span<const double> y);

  [[nodiscard]] bool fitted() const noexcept { return !alpha_.empty(); }
  [[nodiscard]] std::size_t num_points() const noexcept { return x_.rows(); }
  [[nodiscard]] const GpConfig& config() const noexcept { return config_; }

  /// Posterior mean and variance at a single query point (in original target
  /// units).
  [[nodiscard]] GpPrediction predict(std::span<const double> x) const;

  /// Log marginal likelihood of the fitted data (model-selection diagnostic).
  [[nodiscard]] double log_marginal_likelihood() const;

 private:
  [[nodiscard]] double kernel(std::span<const double> a,
                              std::span<const double> b) const;

  GpConfig config_;
  math::Matrix x_;             // training inputs
  std::vector<double> y_norm_; // centered/scaled targets
  double y_mean_ = 0.0;
  double y_scale_ = 1.0;
  math::Matrix chol_;          // Cholesky factor of K + σ²I
  std::vector<double> alpha_;  // (K + σ²I)⁻¹ y_norm
};

}  // namespace varbench::hpo

#include "src/trace/file.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/io/json.h"

namespace varbench::trace {

namespace {

constexpr std::string_view kSchema = "varbench.trace.v1";

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw io::JsonError{"trace file '" + path + "': " + what};
}

}  // namespace

TraceFile drain(Tracer& tracer, std::string process) {
  TraceFile out;
  out.process = std::move(process);
  out.spans = tracer.take_events();
  out.labels = tracer.take_labels();
  out.dropped = tracer.dropped();
  return out;
}

void append(TraceFile& into, TraceFile&& extra) {
  into.dropped += extra.dropped;
  into.spans.insert(into.spans.end(), extra.spans.begin(), extra.spans.end());
  // Same deterministic order as Tracer::take_events.
  std::sort(into.spans.begin(), into.spans.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.span != b.span) return a.span < b.span;
              if (a.ident != b.ident) return a.ident < b.ident;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.dur_ns < b.dur_ns;
            });
  for (auto& [ident, label] : extra.labels) {
    bool known = false;
    for (const auto& [have, unused] : into.labels) known |= have == ident;
    if (!known) into.labels.emplace_back(ident, std::move(label));
  }
  std::sort(into.labels.begin(), into.labels.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

std::string to_json_text(const TraceFile& file) {
  const auto& defs = span_defs();
  io::Json doc = io::Json::object();
  doc.set("schema", io::Json{std::string{kSchema}});
  doc.set("process", io::Json{file.process});
  doc.set("dropped", io::Json{file.dropped});
  io::Json spans = io::Json::array();
  for (const SpanEvent& e : file.spans) {
    io::Json row = io::Json::object();
    row.set("span", io::Json{defs[e.span].name});
    row.set("ident", io::Json{e.ident});
    row.set("tid", io::Json{e.tid});
    row.set("start_ns", io::Json{e.start_ns});
    row.set("dur_ns", io::Json{e.dur_ns});
    spans.push_back(std::move(row));
  }
  doc.set("spans", std::move(spans));
  io::Json labels = io::Json::array();
  for (const auto& [ident, label] : file.labels) {
    io::Json row = io::Json::object();
    row.set("ident", io::Json{ident});
    row.set("label", io::Json{label});
    labels.push_back(std::move(row));
  }
  doc.set("labels", std::move(labels));
  return doc.dump(2) + "\n";
}

TraceFile parse_trace_file(const std::string& text, const std::string& path) {
  io::Json doc;
  try {
    doc = io::Json::parse(text);
  } catch (const io::JsonError& e) {
    fail(path, e.what());
  }
  if (!doc.is_object()) fail(path, "top level is not an object");
  const io::Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kSchema) {
    fail(path, "missing or unsupported schema (want '" + std::string{kSchema} +
                   "')");
  }
  TraceFile out;
  out.process = doc.at("process").as_string();
  if (const io::Json* dropped = doc.find("dropped"); dropped != nullptr) {
    out.dropped = dropped->as_uint64();
  }
  for (const io::Json& row : doc.at("spans").as_array()) {
    SpanEvent e;
    const std::string& name = row.at("span").as_string();
    try {
      e.span = span_id(name);
    } catch (const std::invalid_argument&) {
      fail(path, "unknown span name '" + name + "'");
    }
    e.ident = row.at("ident").as_uint64();
    e.tid = row.at("tid").as_uint64();
    e.start_ns = row.at("start_ns").as_uint64();
    e.dur_ns = row.at("dur_ns").as_uint64();
    out.spans.push_back(e);
  }
  for (const io::Json& row : doc.at("labels").as_array()) {
    out.labels.emplace_back(row.at("ident").as_uint64(),
                            row.at("label").as_string());
  }
  return out;
}

void write_trace_file(const std::string& path, const TraceFile& file) {
  io::write_file(path, to_json_text(file));
}

TraceFile read_trace_file(const std::string& path) {
  return parse_trace_file(io::read_file(path), path);
}

std::string worker_trace_name(const std::string& task_id) {
  return "worker-" + task_id + ".trace.json";
}

}  // namespace varbench::trace

#include "src/trace/trace.h"

#include <algorithm>
#include <stdexcept>

namespace varbench::trace {

std::string_view kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kSpan:
      return "span";
    case SpanKind::kInstant:
      return "instant";
  }
  return "span";
}

const std::array<SpanDef, kNumSpans>& span_defs() {
  static const std::array<SpanDef, kNumSpans> defs = {
#define VARBENCH_SPAN_DEF(sym, name, subsystem, kind, help) \
  SpanDef{name, subsystem, SpanKind::kind, help},
      VARBENCH_BUILTIN_SPANS(VARBENCH_SPAN_DEF)
#undef VARBENCH_SPAN_DEF
  };
  return defs;
}

SpanId span_id(std::string_view name) {
  const auto& defs = span_defs();
  for (std::size_t i = 0; i < defs.size(); ++i) {
    if (defs[i].name == name) return static_cast<SpanId>(i);
  }
  throw std::invalid_argument{"trace: unknown span name '" +
                              std::string{name} + "'"};
}

Tracer::Tracer() : enabled_(static_cast<std::size_t>(kNumSpans), 0) {}

Tracer::~Tracer() {
  for (auto& slot : buffers_) {
    delete slot.load(std::memory_order_acquire);
  }
}

void Tracer::enable(SpanId id) {
  if (id >= enabled_.size()) {
    throw std::invalid_argument{"trace: enable() span id out of range"};
  }
  if (enabled_[id] == 0) {
    enabled_[id] = 1;
    ++num_enabled_;
  }
}

void Tracer::disable(SpanId id) {
  if (id < enabled_.size() && enabled_[id] != 0) {
    enabled_[id] = 0;
    --num_enabled_;
  }
}

void Tracer::enable_all() {
  for (SpanId id = 0; id < enabled_.size(); ++id) enable(id);
}

void Tracer::disable_all() {
  std::fill(enabled_.begin(), enabled_.end(), std::uint8_t{0});
  num_enabled_ = 0;
}

namespace {

/// Stable per-thread buffer slot: threads round-robin onto slots in the
/// order they first record (same scheme as metrics::Sink shards). The slot
/// doubles as the event's `tid` ordinal — presentation only.
std::size_t this_thread_slot(std::size_t num_slots) {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot % num_slots;
}

}  // namespace

std::pair<Tracer::Buffer&, std::size_t> Tracer::buffer_for_this_thread() {
  const std::size_t index = this_thread_slot(kBufferSlots);
  std::atomic<Buffer*>& slot = buffers_[index];
  Buffer* existing = slot.load(std::memory_order_acquire);
  if (existing != nullptr) return {*existing, index};
  auto fresh = std::make_unique<Buffer>();
  Buffer* expected = nullptr;
  if (slot.compare_exchange_strong(expected, fresh.get(),
                                   std::memory_order_acq_rel)) {
    return {*fresh.release(), index};
  }
  return {*expected, index};  // another thread on this slot won the race
}

void Tracer::record(SpanId id, std::uint64_t ident, std::uint64_t start_ns,
                    std::uint64_t dur_ns) {
  auto [buffer, slot] = buffer_for_this_thread();
  const std::lock_guard<std::mutex> lock{buffer.mu};
  if (buffer.events.size() >= kMaxEventsPerBuffer) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer.events.push_back(SpanEvent{id, ident, slot, start_ns, dur_ns});
}

void Tracer::set_label(std::uint64_t ident, std::string label) {
  const std::lock_guard<std::mutex> lock{labels_mu_};
  for (auto& [known, text] : labels_) {
    if (known == ident) {
      text = std::move(label);
      return;
    }
  }
  labels_.emplace_back(ident, std::move(label));
}

std::vector<SpanEvent> Tracer::take_events() {
  std::vector<SpanEvent> out;
  for (auto& slot : buffers_) {
    Buffer* buffer = slot.load(std::memory_order_acquire);
    if (buffer == nullptr) continue;
    const std::lock_guard<std::mutex> lock{buffer->mu};
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
    buffer->events.clear();
  }
  // Deterministic order for a given multiset of events, independent of
  // which slot each thread landed on.
  std::sort(out.begin(), out.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.span != b.span) return a.span < b.span;
              if (a.ident != b.ident) return a.ident < b.ident;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.dur_ns < b.dur_ns;
            });
  sequence_.store(0, std::memory_order_relaxed);
  return out;
}

std::vector<std::pair<std::uint64_t, std::string>> Tracer::take_labels() {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  {
    const std::lock_guard<std::mutex> lock{labels_mu_};
    out.swap(labels_);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void Tracer::reset() {
  (void)take_events();
  (void)take_labels();
  dropped_.store(0, std::memory_order_relaxed);
}

std::size_t Tracer::allocated_buffers() const {
  std::size_t n = 0;
  for (const auto& slot : buffers_) {
    if (slot.load(std::memory_order_acquire) != nullptr) ++n;
  }
  return n;
}

Tracer& global_tracer() {
  static Tracer tracer;
  return tracer;
}

void enable_selection(Tracer& tracer, std::string_view selection) {
  std::size_t pos = 0;
  while (pos <= selection.size()) {
    std::size_t comma = selection.find(',', pos);
    if (comma == std::string_view::npos) comma = selection.size();
    std::string_view token = selection.substr(pos, comma - pos);
    pos = comma + 1;
    while (!token.empty() && token.front() == ' ') token.remove_prefix(1);
    while (!token.empty() && token.back() == ' ') token.remove_suffix(1);
    if (token.empty()) continue;
    if (token == "all") {
      tracer.enable_all();
      continue;
    }
    if (token == "none") {
      tracer.disable_all();
      continue;
    }
    const auto& defs = span_defs();
    bool matched = false;
    for (std::size_t i = 0; i < defs.size(); ++i) {
      if (defs[i].name == token || defs[i].subsystem == token) {
        tracer.enable(static_cast<SpanId>(i));
        matched = true;
      }
    }
    if (!matched) {
      throw std::invalid_argument{
          "trace: selection '" + std::string{token} +
          "' matches no span name or subsystem (docs/tracing.md lists them)"};
    }
  }
}

}  // namespace varbench::trace

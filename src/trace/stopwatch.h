// Monotonic-clock helpers for the trace layer. This header is the ONE
// place span-instrumented subsystems get time from: varlint's no-wallclock
// rule whitelists exactly this file inside src/trace/
// (docs/static_analysis.md), so everything else in the tracing layer —
// tracer, serialization, stitcher — is statically clock-free, and the
// enabled check happens BEFORE any clock read, keeping the disabled path
// free of syscalls.
//
// Timestamps are provenance, never identity: nothing here may flow into
// canonical_text() bytes (docs/determinism.md).
#pragma once

#include <chrono>
#include <cstdint>

#include "src/trace/trace.h"

namespace varbench::trace {

/// Nanoseconds on the monotonic clock. Only meaningful as a difference
/// within one process — the stitcher normalizes per-process timelines.
[[nodiscard]] inline std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Records the scope as one duration span — but reads the clock only when
/// the span is enabled, so a disabled span costs one branch in the
/// constructor and one in the destructor.
class ScopedSpan {
 public:
  ScopedSpan(Tracer& tracer, SpanId id, std::uint64_t ident)
      : tracer_(tracer.is_enabled(id) ? &tracer : nullptr),
        id_(id),
        ident_(ident),
        start_ns_(tracer_ != nullptr ? monotonic_ns() : 0) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->emit(id_, ident_, start_ns_, monotonic_ns() - start_ns_);
    }
  }

 private:
  Tracer* tracer_;
  SpanId id_;
  std::uint64_t ident_;
  std::uint64_t start_ns_;
};

/// Record a point event. One branch when disabled.
inline void instant(Tracer& tracer, SpanId id, std::uint64_t ident) {
  if (!tracer.is_enabled(id)) return;
  tracer.emit(id, ident, monotonic_ns(), 0);
}

/// Manual begin/end pair for spans that cannot use RAII scoping (the
/// campaign coordinator opens a task's span at launch and closes it at
/// reap, across loop iterations). span_begin returns 0 when the span is
/// disabled; span_end is then a no-op.
[[nodiscard]] inline std::uint64_t span_begin(Tracer& tracer, SpanId id) {
  return tracer.is_enabled(id) ? monotonic_ns() : 0;
}

inline void span_end(Tracer& tracer, SpanId id, std::uint64_t ident,
                     std::uint64_t begin_ns) {
  if (begin_ns == 0 || !tracer.is_enabled(id)) return;
  tracer.emit(id, ident, begin_ns, monotonic_ns() - begin_ns);
}

}  // namespace varbench::trace

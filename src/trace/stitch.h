// Merging per-process trace files into one timeline, and exporting it.
//
// A campaign run leaves one trace file per producing process under
// `<state-dir>/traces/` (src/trace/file.h). The stitcher reads them in
// lexicographic file-name order — a deterministic function of the on-disk
// set, independent of scan order — and assigns each file a stable Chrome
// pid (index + 1). Timestamps are process-local monotonic clocks, so the
// exporter normalizes each process's timeline to start at 0 rather than
// pretending the clocks are comparable across processes.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/io/json.h"
#include "src/study/result_table.h"
#include "src/trace/file.h"

namespace varbench::trace {

struct StitchedTrace {
  /// One entry per trace file, lexicographic by file name; Chrome pid is
  /// index + 1 (pid 0 is reserved by the trace-event format).
  std::vector<TraceFile> processes;

  [[nodiscard]] std::size_t total_spans() const;
};

/// Read every `<dir>/traces/*.trace.json`. Throws io::JsonError when the
/// traces/ directory is missing/empty (the actionable "did you pass
/// --trace?" case) or any file is malformed.
[[nodiscard]] StitchedTrace stitch_state_dir(const std::string& state_dir);

/// Chrome trace-event JSON (chrome://tracing, Perfetto): "X" duration
/// events for kSpan, "i" instants for kInstant, plus "M" process_name
/// metadata rows. ts/dur are microseconds, each process normalized to its
/// own earliest event. Ident hashes render as hex strings in args (JSON
/// doubles cannot hold them); labels recorded via Tracer::set_label are
/// joined in as args.label.
[[nodiscard]] io::Json chrome_trace_json(const StitchedTrace& stitched);

/// Per-span aggregate across all processes, id order: count, total/mean/max
/// duration. A spec-less ResultTable so the report machinery renders it.
[[nodiscard]] study::ResultTable summary_table(const StitchedTrace& stitched);

/// The timestamp-free shape of a trace: every (span, ident) pair across all
/// processes, sorted. Two runs of the same campaign — at any worker or
/// thread split — must produce equal shapes (pinned by tests).
[[nodiscard]] std::vector<std::pair<SpanId, std::uint64_t>> span_shape(
    const StitchedTrace& stitched);

}  // namespace varbench::trace

#include "src/trace/stitch.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <utility>

namespace varbench::trace {

namespace {

std::string hex_ident(std::uint64_t ident) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(ident));
  return std::string{buf};
}

const std::string* find_label(const TraceFile& file, std::uint64_t ident) {
  for (const auto& [known, label] : file.labels) {
    if (known == ident) return &label;
  }
  return nullptr;
}

}  // namespace

std::size_t StitchedTrace::total_spans() const {
  std::size_t n = 0;
  for (const TraceFile& file : processes) n += file.spans.size();
  return n;
}

StitchedTrace stitch_state_dir(const std::string& state_dir) {
  namespace fs = std::filesystem;
  const fs::path traces_dir = fs::path{state_dir} / "traces";
  if (!fs::is_directory(traces_dir)) {
    throw io::JsonError{"trace: no traces/ directory under '" + state_dir +
                        "' — was the campaign run with --trace?"};
  }
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator{traces_dir}) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    constexpr std::string_view kSuffix = ".trace.json";
    if (name.size() > kSuffix.size() &&
        name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) ==
            0) {
      paths.push_back(entry.path().string());
    }
  }
  if (paths.empty()) {
    throw io::JsonError{"trace: '" + traces_dir.string() +
                        "' contains no *.trace.json files — was the campaign "
                        "run with --trace?"};
  }
  std::sort(paths.begin(), paths.end());
  StitchedTrace out;
  out.processes.reserve(paths.size());
  for (const std::string& path : paths) {
    out.processes.push_back(read_trace_file(path));
  }
  return out;
}

io::Json chrome_trace_json(const StitchedTrace& stitched) {
  const auto& defs = span_defs();
  io::Json events = io::Json::array();
  for (std::size_t i = 0; i < stitched.processes.size(); ++i) {
    const TraceFile& file = stitched.processes[i];
    const std::uint64_t pid = static_cast<std::uint64_t>(i) + 1;
    {
      io::Json meta = io::Json::object();
      meta.set("name", io::Json{"process_name"});
      meta.set("ph", io::Json{"M"});
      meta.set("pid", io::Json{pid});
      meta.set("tid", io::Json{std::uint64_t{0}});
      io::Json args = io::Json::object();
      args.set("name", io::Json{file.process});
      meta.set("args", std::move(args));
      events.push_back(std::move(meta));
    }
    // Each process gets its own t=0: monotonic clocks are process-local,
    // so cross-process offsets would be noise presented as signal.
    std::uint64_t base = std::numeric_limits<std::uint64_t>::max();
    for (const SpanEvent& e : file.spans) base = std::min(base, e.start_ns);
    for (const SpanEvent& e : file.spans) {
      const SpanDef& def = defs[e.span];
      io::Json row = io::Json::object();
      row.set("name", io::Json{def.name});
      row.set("cat", io::Json{def.subsystem});
      if (def.kind == SpanKind::kSpan) {
        row.set("ph", io::Json{"X"});
      } else {
        row.set("ph", io::Json{"i"});
        row.set("s", io::Json{"t"});  // instant scope: thread
      }
      row.set("ts", io::Json{static_cast<double>(e.start_ns - base) / 1e3});
      if (def.kind == SpanKind::kSpan) {
        row.set("dur", io::Json{static_cast<double>(e.dur_ns) / 1e3});
      }
      row.set("pid", io::Json{pid});
      row.set("tid", io::Json{e.tid});
      io::Json args = io::Json::object();
      args.set("ident", io::Json{hex_ident(e.ident)});
      if (const std::string* label = find_label(file, e.ident);
          label != nullptr) {
        args.set("label", io::Json{*label});
      }
      row.set("args", std::move(args));
      events.push_back(std::move(row));
    }
  }
  io::Json doc = io::Json::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", io::Json{"ms"});
  return doc;
}

study::ResultTable summary_table(const StitchedTrace& stitched) {
  const auto& defs = span_defs();
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
  };
  std::array<Agg, kNumSpans> aggs{};
  for (const TraceFile& file : stitched.processes) {
    for (const SpanEvent& e : file.spans) {
      Agg& a = aggs[e.span];
      ++a.count;
      a.total_ns += e.dur_ns;
      a.max_ns = std::max(a.max_ns, e.dur_ns);
    }
  }
  study::ResultTable table;
  table.name = "trace:summary";
  table.columns = {"seq",   "span",     "subsystem", "kind",
                   "count", "total_ms", "mean_ms",   "max_ms"};
  std::uint64_t seq = 0;
  for (SpanId id = 0; id < kNumSpans; ++id) {
    const Agg& a = aggs[id];
    if (a.count == 0) continue;
    const SpanDef& def = defs[id];
    study::Row row;
    row.reserve(table.columns.size());
    row.push_back(io::Json{seq++});
    row.push_back(io::Json{def.name});
    row.push_back(io::Json{def.subsystem});
    row.push_back(io::Json{std::string{kind_name(def.kind)}});
    row.push_back(io::Json{a.count});
    row.push_back(io::Json{static_cast<double>(a.total_ns) / 1e6});
    row.push_back(io::Json{static_cast<double>(a.total_ns) / 1e6 /
                           static_cast<double>(a.count)});
    row.push_back(io::Json{static_cast<double>(a.max_ns) / 1e6});
    table.add_row(std::move(row));
  }
  return table;
}

std::vector<std::pair<SpanId, std::uint64_t>> span_shape(
    const StitchedTrace& stitched) {
  std::vector<std::pair<SpanId, std::uint64_t>> out;
  out.reserve(stitched.total_spans());
  for (const TraceFile& file : stitched.processes) {
    for (const SpanEvent& e : file.spans) {
      out.emplace_back(e.span, e.ident);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace varbench::trace

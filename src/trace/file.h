// On-disk form of one process's trace: the `traces/*.trace.json` files a
// campaign state directory accumulates (docs/tracing.md). One file per
// producing process — worker or coordinator — so flushing never needs
// cross-process coordination; the stitcher (src/trace/stitch.h) merges
// them deterministically afterwards.
//
// Schema "varbench.trace.v1":
//   {
//     "schema": "varbench.trace.v1",
//     "process": "worker-s0-0of2",
//     "dropped": 0,
//     "spans": [{"span": "exec.chunk", "ident": ..., "tid": ...,
//                "start_ns": ..., "dur_ns": ...}, ...],
//     "labels": [{"ident": ..., "label": "s0-0of2"}, ...]
//   }
// Timestamps are process-local monotonic nanoseconds (only differences are
// meaningful); span names — not raw ids — are serialized, so files stay
// readable across builds as the registry grows.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/trace/trace.h"

namespace varbench::trace {

struct TraceFile {
  std::string process;  // producing-process label, e.g. "worker-s0-0of2"
  std::uint64_t dropped = 0;  // events lost to the per-buffer cap
  std::vector<SpanEvent> spans;
  std::vector<std::pair<std::uint64_t, std::string>> labels;

  friend bool operator==(const TraceFile&, const TraceFile&) = default;
};

/// Drain `tracer` (events and labels, emptying both buffers; the dropped
/// count is copied) into a TraceFile labeled `process`.
[[nodiscard]] TraceFile drain(Tracer& tracer, std::string process);

/// Fold `extra`'s spans, labels, and dropped count into `into` (same
/// process), restoring the deterministic event order.
void append(TraceFile& into, TraceFile&& extra);

[[nodiscard]] std::string to_json_text(const TraceFile& file);

/// Parse one trace file document. Throws io::JsonError naming `path` on
/// malformed JSON, a wrong schema, or unknown span names.
[[nodiscard]] TraceFile parse_trace_file(const std::string& text,
                                         const std::string& path);

/// write = serialize + io::write_file; read = io::read_file + parse.
void write_trace_file(const std::string& path, const TraceFile& file);
[[nodiscard]] TraceFile read_trace_file(const std::string& path);

/// The per-worker trace file name inside a state dir's traces/ directory:
/// "worker-<task_id>.trace.json".
[[nodiscard]] std::string worker_trace_name(const std::string& task_id);

}  // namespace varbench::trace

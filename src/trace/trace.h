// Zero-overhead span tracing (ROADMAP item 3 follow-up, docs/tracing.md) —
// the timeline-shaped sibling of the metrics layer (src/metrics/).
//
// Design contract, in the metrics mold:
//   - Spans are registered at compile time in VARBENCH_BUILTIN_SPANS; a
//     span's id is its index in that list (append-only, so ids are small,
//     dense, and stable across builds).
//   - `Tracer::is_enabled(id)` is an inlined lookup into a flat byte
//     vector: a disabled span costs ~one predictable branch, no locks, no
//     clock reads, no allocation. Clock reads live exclusively in
//     src/trace/stopwatch.h (varlint whitelists that one file), behind the
//     enabled check.
//   - Recording appends POD SpanEvents to per-thread-slot buffers; buffers
//     are allocated on first use, so a tracer that never records allocates
//     nothing (pinned by tests/test_trace.cpp).
//   - Every event carries an *identity-derived* ident (a task-id hash, a
//     region sequence number, a chunk index) — never a pointer, tid, or
//     clock value — so the same campaign traced at any worker or thread
//     split yields the same (span, ident) multiset once timestamps are
//     normalized away. Traces are provenance, never identity: nothing a
//     tracer records may flow into canonical_text() bytes
//     (docs/determinism.md).
//
// This header is io-free and exec-free so that ExecContext can include it;
// serialization lives in src/trace/file.h and stitching/export in
// src/trace/stitch.h.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace varbench::trace {

using SpanId = std::uint32_t;

enum class SpanKind : std::uint8_t {
  kSpan,     // a duration: start + dur (Chrome "ph":"X")
  kInstant,  // a point event: start only, dur = 0 (Chrome "ph":"i")
};

[[nodiscard]] std::string_view kind_name(SpanKind kind);

struct SpanDef {
  std::string_view name;       // "exec.chunk" — "<subsystem>.<span>"
  std::string_view subsystem;  // "exec" | "campaign" | "io" | "study"
  SpanKind kind = SpanKind::kSpan;
  std::string_view help;
};

// The compile-time span list. Ids are indices into this list; append only —
// never reorder or remove — so ids stay stable across versions.
// X(symbol, name, subsystem, kind, help)
#define VARBENCH_BUILTIN_SPANS(X)                                             \
  X(StudyRun, "study.run", "study", kSpan,                                    \
    "one run_study() execution; ident = hash of '<kind>:<case_study>'")       \
  X(ExecRegion, "exec.region", "exec", kSpan,                                 \
    "one parallel_for region; ident = per-tracer region sequence number")     \
  X(ExecChunk, "exec.chunk", "exec", kSpan,                                   \
    "one self-scheduled chunk; ident = (region sequence << 32) | chunk")      \
  X(IoVbtMap, "io.vbt_map", "io", kSpan,                                      \
    "MappedTable::open of one VBT1 artifact; ident = hash of the file name")  \
  X(IoVbtMaterialize, "io.vbt_materialize", "io", kSpan,                      \
    "full VBT1-to-ResultTable materialization; ident = hash of the file "     \
    "name")                                                                   \
  X(CampaignTaskQueued, "campaign.task_queued", "campaign", kInstant,         \
    "task ticket entered the work queue; ident = hash of the task id")        \
  X(CampaignTaskClaimed, "campaign.task_claimed", "campaign", kInstant,       \
    "coordinator claimed the ticket; ident = hash of the task id")            \
  X(CampaignTaskRunning, "campaign.task_running", "campaign", kSpan,          \
    "worker launch to reap for one attempt; ident = hash of the task id")     \
  X(CampaignTaskPromoted, "campaign.task_promoted", "campaign", kInstant,     \
    "validated artifact promoted to artifacts/; ident = hash of the task "    \
    "id")                                                                     \
  X(CampaignTaskRetried, "campaign.task_retried", "campaign", kInstant,       \
    "failed attempt requeued for retry; ident = hash of the task id")         \
  X(CampaignStudyMerged, "campaign.study_merged", "campaign", kSpan,          \
    "per-study incremental merge of all landed shards; ident = study index")

enum : SpanId {
#define VARBENCH_SPAN_ENUM(sym, name, subsystem, kind, help) k##sym,
  VARBENCH_BUILTIN_SPANS(VARBENCH_SPAN_ENUM)
#undef VARBENCH_SPAN_ENUM
      kNumSpans
};

/// All registered spans, id order. The list is compile-time-only (no
/// runtime extension): stitching must be able to name every id it reads.
[[nodiscard]] const std::array<SpanDef, kNumSpans>& span_defs();

/// Id for `name`; throws std::invalid_argument for unknown names.
[[nodiscard]] SpanId span_id(std::string_view name);

/// One recorded event. POD on purpose: the hot path copies 40 bytes into a
/// per-thread buffer and nothing else. `thread` is the recording thread's
/// buffer-slot ordinal — presentation only (Chrome "tid"), never identity.
struct SpanEvent {
  SpanId span = 0;
  std::uint64_t ident = 0;     // identity-derived (see the span's help text)
  std::uint64_t tid = 0;       // buffer slot of the recording thread
  std::uint64_t start_ns = 0;  // monotonic, process-local
  std::uint64_t dur_ns = 0;    // 0 for kInstant events

  friend bool operator==(const SpanEvent&, const SpanEvent&) = default;
};

/// A span tracer: the object instrumented code records into. Default state
/// is all-disabled, in which every record call is a branch on a byte load.
///
/// Thread model: emit/next_sequence/set_label are safe from any thread;
/// enable/disable/take/reset are coordinator-side operations and must not
/// race with recorders.
class Tracer {
 public:
  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Hot-path gate. Inlined: bounds check + byte load.
  [[nodiscard]] bool is_enabled(SpanId id) const {
    return id < enabled_.size() && enabled_[id] != 0;
  }

  [[nodiscard]] bool any_enabled() const { return num_enabled_ > 0; }

  void enable(SpanId id);
  void disable(SpanId id);
  void enable_all();
  void disable_all();

  /// Append one event (timestamps already taken by the caller — see
  /// src/trace/stopwatch.h, the only clock site). No-op when the span is
  /// disabled; `tid` is filled in from the recording thread's slot.
  /// Buffers are bounded (kMaxEventsPerBuffer); overflow increments
  /// dropped() instead of growing without limit.
  void emit(SpanId id, std::uint64_t ident, std::uint64_t start_ns,
            std::uint64_t dur_ns) {
    if (!is_enabled(id)) return;
    record(id, ident, start_ns, dur_ns);
  }

  /// Next value of the tracer-wide sequence counter — the identity source
  /// for ordered-by-construction idents (exec region numbers). Reset by
  /// take_events()/reset(), so every flushed trace numbers from 0.
  [[nodiscard]] std::uint64_t next_sequence() {
    return sequence_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Attach a human-readable label to an ident (e.g. the task id behind
  /// its hash) for the exported trace. Cold path; last writer wins.
  void set_label(std::uint64_t ident, std::string label);

  /// Drain every buffer into one deterministic-ordered vector (sorted by
  /// (start_ns, span, ident, tid, dur_ns)) and reset the sequence
  /// counter — the flush-to-file primitive.
  [[nodiscard]] std::vector<SpanEvent> take_events();

  /// Drain the ident → label table, sorted by ident.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::string>>
  take_labels();

  /// Discard all buffered events and labels (enabled set is kept).
  void reset();

  /// Events discarded because a buffer hit kMaxEventsPerBuffer.
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Buffers allocated so far — 0 until the first enabled-span emit from
  /// some thread slot. Exposed so tests can pin the disabled path's
  /// zero-allocation guarantee.
  [[nodiscard]] std::size_t allocated_buffers() const;

  /// Backstop against runaway span volume per thread slot (~40 MB/slot).
  static constexpr std::size_t kMaxEventsPerBuffer = std::size_t{1} << 20;

 private:
  // Threads hash onto kBufferSlots slots; two threads sharing a slot is
  // correct (the slot mutex serializes appends), just contended.
  static constexpr std::size_t kBufferSlots = 16;

  struct Buffer {
    std::mutex mu;
    std::vector<SpanEvent> events;
  };

  void record(SpanId id, std::uint64_t ident, std::uint64_t start_ns,
              std::uint64_t dur_ns);
  [[nodiscard]] std::pair<Buffer&, std::size_t> buffer_for_this_thread();

  std::vector<std::uint8_t> enabled_;
  std::size_t num_enabled_ = 0;
  std::atomic<std::uint64_t> sequence_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::array<std::atomic<Buffer*>, kBufferSlots> buffers_{};
  std::mutex labels_mu_;
  std::vector<std::pair<std::uint64_t, std::string>> labels_;
};

/// The process-wide default tracer (all spans disabled until a CLI flag or
/// test enables them). ExecContext falls back to it when no explicit
/// tracer is attached; `varbench run --trace-out` flushes it.
[[nodiscard]] Tracer& global_tracer();

/// Enable a comma-separated selection on `tracer`: "all", "none", a
/// subsystem ("exec"), or a full span name ("campaign.task_running").
/// Throws std::invalid_argument for selectors matching nothing.
void enable_selection(Tracer& tracer, std::string_view selection);

}  // namespace varbench::trace

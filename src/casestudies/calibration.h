// Calibration constants: the paper's measured variance statistics per case
// study (digitized from Figures 1, 2, 5, H.4) and the published-SOTA series
// used by Fig. 3. These drive the §4.2 surrogate simulations so that the
// decision-criteria experiments run in CPU-minutes, exactly as the paper
// itself simulated them from measured (µ, σ, ρ).
#pragma once

#include <string>
#include <vector>

#include "src/compare/simulation.h"
#include "src/core/estimators.h"

namespace varbench::casestudies {

/// Per-task variance calibration. Standard deviations are in metric units
/// (fractions, not percent). Correlations ρ are the average pairwise
/// correlation among biased-estimator measurements (Eq. 7) when the given
/// subset of ξO is randomized.
struct TaskCalibration {
  std::string id;          // matches registry ids
  std::string paper_task;  // display label
  std::string metric;      // "accuracy" | "mean_iou" | "auc"
  double mu = 0.0;          // typical performance level
  double sigma_ideal = 0.0; // std of R̂e under the ideal estimator
  double rho_init = 0.0;    // ρ when randomizing weight init only
  double rho_data = 0.0;    // ρ when randomizing data splits only
  double rho_all = 0.0;     // ρ when randomizing all ξO sources
  std::size_t paper_test_size = 0;

  [[nodiscard]] double rho_for(core::RandomizeSubset subset) const;

  /// Two-stage simulation profile for a given randomization subset:
  /// σ_bias = √ρ·σ, σ_within = √(1−ρ)·σ (so single-measure variance matches
  /// the ideal estimator and the pairwise correlation matches ρ).
  [[nodiscard]] compare::TaskVarianceProfile profile(
      core::RandomizeSubset subset) const;

  /// Ideal-estimator profile (no bias term).
  [[nodiscard]] compare::TaskVarianceProfile ideal_profile() const;
};

/// Calibrations for the five case studies, digitized from the paper.
[[nodiscard]] const std::vector<TaskCalibration>& paper_calibrations();

[[nodiscard]] const TaskCalibration& calibration_for(const std::string& id);

/// One published state-of-the-art result (Fig. 3's dots).
struct SotaPoint {
  int year = 0;
  double accuracy = 0.0;  // fraction in [0, 1]
};

struct SotaSeries {
  std::string task;               // "cifar10" | "sst2"
  std::vector<SotaPoint> points;  // chronological
  double benchmark_sigma = 0.0;   // the paper's measured benchmark σ
};

/// Digitized paperswithcode.com SOTA progressions used in Fig. 3.
[[nodiscard]] const std::vector<SotaSeries>& sota_series();

/// Mean of the year-over-year SOTA increments of a series — the quantity the
/// paper regresses δ = 1.9952·σ against.
[[nodiscard]] double mean_improvement(const SotaSeries& series);

}  // namespace varbench::casestudies

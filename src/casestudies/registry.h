// The five case-study analogues (see DESIGN.md §2 for the substitution map):
//   cifar10_vgg11  — 10-class Gaussian mixture + SGD MLP     (accuracy)
//   glue_sst2_bert — sparse binary task, frozen encoder head (accuracy, n'=872)
//   glue_rte_bert  — same family, tiny data                  (accuracy, n'=277)
//   pascalvoc_fcn  — imbalanced dense labeling, mIoU, injected numerical noise
//   mhc_mlp        — teacher-network binding-affinity regression (AUC)
// Each bundles a data pool, a splitter, and a pipeline, reproducing the
// protocols of the paper's Appendix D at CPU scale.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/casestudies/mlp_pipeline.h"
#include "src/core/splitter.h"

namespace varbench::casestudies {

struct CaseStudy {
  std::string id;          // stable identifier, e.g. "cifar10_vgg11"
  std::string paper_task;  // the paper's label, e.g. "CIFAR10 VGG11"
  std::shared_ptr<const ml::Dataset> pool;
  std::shared_ptr<const core::Splitter> splitter;
  std::shared_ptr<const MlpPipeline> pipeline;
  std::size_t paper_test_size = 0;  // n' of the original study (Fig. 2)
};

/// All registered case-study ids, in the paper's presentation order.
[[nodiscard]] std::vector<std::string> case_study_ids();

/// Build one case study. `scale` in (0, 1] shrinks data-pool sizes and
/// training epochs proportionally — tests use small scales, benches ~1.
[[nodiscard]] CaseStudy make_case_study(const std::string& id,
                                        double scale = 1.0);

[[nodiscard]] std::vector<CaseStudy> make_all_case_studies(double scale = 1.0);

}  // namespace varbench::casestudies

#include "src/casestudies/registry.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/ml/synthetic.h"

namespace varbench::casestudies {

namespace {

using hpo::Dimension;
using hpo::ScaleKind;

std::size_t scaled(std::size_t n, double scale, std::size_t min_n) {
  const auto v = static_cast<std::size_t>(
      std::lround(static_cast<double>(n) * scale));
  return std::max(v, min_n);
}

void check_scale(double scale) {
  if (!(scale > 0.0 && scale <= 1.0)) {
    throw std::invalid_argument("make_case_study: scale outside (0, 1]");
  }
}

// Every pool is drawn from a fixed generator seed: like CIFAR10 itself, the
// finite dataset S is frozen; only its *splits* vary between runs.
rngx::Rng pool_rng(const std::string& id) {
  return rngx::Rng{rngx::derive_seed(0xDA7A5E7ULL, id)};
}

CaseStudy make_cifar10(double scale) {
  CaseStudy cs;
  cs.id = "cifar10_vgg11";
  cs.paper_task = "CIFAR10 VGG11";
  cs.paper_test_size = 10000;

  ml::GaussianMixtureConfig data;
  data.num_classes = 10;
  data.dim = 32;
  data.n = scaled(6000, scale, 400);
  // class_sep calibrated so the default pipeline lands near the paper's
  // ~91% CIFAR10-VGG11 accuracy (10 classes on signed axes: pairwise mean
  // distance class_sep·√2).
  data.class_sep = 3.6;
  data.within_std = 1.0;
  data.label_noise = 0.02;
  auto rng = pool_rng(cs.id);
  cs.pool = std::make_shared<const ml::Dataset>(
      ml::make_gaussian_mixture(data, rng));

  // Stratified bootstrap, as in Appendix D.1.
  cs.splitter = std::make_shared<const core::OutOfBootstrapSplitter>(
      scaled(2000, scale, 100), scaled(1000, scale, 50), /*stratified=*/true);

  MlpPipelineSpec spec;
  spec.name = cs.id;
  spec.metric = ml::Metric::kAccuracy;
  spec.base.model.hidden = {24};
  spec.base.model.init = ml::InitScheme::kGlorotUniform;
  spec.base.optimizer = ml::OptimizerKind::kSgd;
  spec.base.loss = ml::LossKind::kSoftmaxCrossEntropy;
  spec.base.epochs = std::max<std::size_t>(3, scaled(15, scale, 3));
  spec.base.batch_size = 32;
  spec.base.augment.jitter_std = 0.15;  // crop/flip analogue
  // Search space shaped after Table 2 (ranges adapted to this substrate).
  spec.space.add({"learning_rate", 0.001, 0.3, ScaleKind::kLog})
      .add({"weight_decay", 1e-6, 1e-2, ScaleKind::kLog})
      .add({"momentum", 0.5, 0.99, ScaleKind::kLinear})
      .add({"lr_gamma", 0.96, 0.999, ScaleKind::kLinear});
  spec.defaults = {{"learning_rate", 0.03},
                   {"weight_decay", 0.002},
                   {"momentum", 0.9},
                   {"lr_gamma", 0.97}};
  cs.pipeline = std::make_shared<const MlpPipeline>(std::move(spec));
  return cs;
}

CaseStudy make_glue(const std::string& id, double scale) {
  const bool is_rte = id == "glue_rte_bert";
  CaseStudy cs;
  cs.id = id;
  cs.paper_task = is_rte ? "Glue-RTE BERT" : "Glue-SST2 BERT";
  cs.paper_test_size = is_rte ? 277 : 872;

  ml::SparseBinaryConfig data;
  data.dim = 64;
  if (is_rte) {
    // RTE: 2.5k examples, weak signal → accuracies around 0.66.
    data.n = scaled(2800, scale, 400);
    data.informative = 6;
    data.signal = 0.65;
    data.density = 0.3;
    data.label_noise = 0.15;
  } else {
    // SST2: larger data, clean dense signal → accuracies around 0.93.
    data.n = scaled(4500, scale, 400);
    data.informative = 12;
    data.signal = 1.5;
    data.density = 0.4;
    data.label_noise = 0.025;
  }
  auto rng = pool_rng(cs.id);
  cs.pool =
      std::make_shared<const ml::Dataset>(ml::make_sparse_binary(data, rng));

  // Plain (non-stratified) out-of-bootstrap, test size = paper's n'
  // (Appendix D.2/D.3) — scaled along with everything else.
  const std::size_t test_n = scaled(cs.paper_test_size, scale, 40);
  const std::size_t train_n =
      is_rte ? scaled(2200, scale, 200) : scaled(3200, scale, 250);
  cs.splitter = std::make_shared<const core::OutOfBootstrapSplitter>(
      train_n, test_n, /*stratified=*/false);

  MlpPipelineSpec spec;
  spec.name = cs.id;
  spec.metric = ml::Metric::kAccuracy;
  // Frozen random encoder + trained head = fine-tuning a pretrained backbone.
  spec.base.model.hidden = {32};
  spec.base.model.freeze_first_layer = true;
  spec.base.model.init = ml::InitScheme::kNormalScaled;
  spec.base.model.init_sigma = 0.2;
  spec.base.model.dropout = 0.1;  // fixed, as in Table 3
  spec.base.optimizer = ml::OptimizerKind::kAdam;
  spec.base.loss = ml::LossKind::kSoftmaxCrossEntropy;
  spec.base.epochs = std::max<std::size_t>(2, scaled(6, scale, 2));
  spec.base.batch_size = 32;
  // Table 3's dimensions: learning rate, weight decay, head-init std.
  spec.space.add({"learning_rate", 1e-3, 1e-1, ScaleKind::kLog})
      .add({"weight_decay", 1e-4, 2e-3, ScaleKind::kLog})
      .add({"init_sigma", 0.01, 0.5, ScaleKind::kLog});
  spec.defaults = {{"learning_rate", 0.01},
                   {"weight_decay", 2e-4},
                   {"init_sigma", 0.2}};
  cs.pipeline = std::make_shared<const MlpPipeline>(std::move(spec));
  return cs;
}

CaseStudy make_pascalvoc(double scale) {
  CaseStudy cs;
  cs.id = "pascalvoc_fcn";
  cs.paper_task = "PascalVOC ResNet";
  cs.paper_test_size = 729;

  // Imbalanced dense labeling: background class dominates, like pixels in
  // segmentation masks.
  ml::GaussianMixtureConfig data;
  data.num_classes = 8;
  data.dim = 24;
  data.n = scaled(3500, scale, 400);
  data.class_sep = 2.4;  // tuned for mIoU near the paper's ~0.53
  data.within_std = 1.0;
  data.label_noise = 0.02;
  data.class_probs = {0.44, 0.08, 0.08, 0.08, 0.08, 0.08, 0.08, 0.08};
  auto rng = pool_rng(cs.id);
  cs.pool = std::make_shared<const ml::Dataset>(
      ml::make_gaussian_mixture(data, rng));

  cs.splitter = std::make_shared<const core::OutOfBootstrapSplitter>(
      scaled(2200, scale, 150), scaled(729, scale, 50), /*stratified=*/false);

  MlpPipelineSpec spec;
  spec.name = cs.id;
  spec.metric = ml::Metric::kMeanIoU;
  spec.base.model.hidden = {24};
  spec.base.model.init = ml::InitScheme::kHeNormal;
  spec.base.optimizer = ml::OptimizerKind::kSgd;
  spec.base.loss = ml::LossKind::kSoftmaxCrossEntropy;
  spec.base.epochs = std::max<std::size_t>(3, scaled(12, scale, 3));
  spec.base.batch_size = 16;  // Table 5
  // The paper could not make this pipeline bit-reproducible (Appendix A);
  // we inject the equivalent unseeded perturbation.
  spec.base.numerical_noise_std = 0.01;
  // Table 5's dimensions.
  spec.space.add({"learning_rate", 1e-3, 1e-1, ScaleKind::kLog})
      .add({"momentum", 0.5, 0.99, ScaleKind::kLinear})
      .add({"weight_decay", 1e-8, 1e-1, ScaleKind::kLog});
  spec.defaults = {{"learning_rate", 0.02},
                   {"momentum", 0.9},
                   {"weight_decay", 1e-6}};
  cs.pipeline = std::make_shared<const MlpPipeline>(std::move(spec));
  return cs;
}

CaseStudy make_mhc(double scale) {
  CaseStudy cs;
  cs.id = "mhc_mlp";
  cs.paper_task = "MHC MLP";
  cs.paper_test_size = 1000;

  ml::RegressionTeacherConfig data;
  data.dim = 24;
  data.n = scaled(4000, scale, 400);
  data.teacher_hidden = 16;
  data.noise_std = 0.08;
  auto rng = pool_rng(cs.id);
  cs.pool = std::make_shared<const ml::Dataset>(
      ml::make_regression_teacher(data, rng));

  cs.splitter = std::make_shared<const core::OutOfBootstrapSplitter>(
      scaled(2500, scale, 200), scaled(1000, scale, 60), /*stratified=*/false);

  MlpPipelineSpec spec;
  spec.name = cs.id;
  spec.metric = ml::Metric::kAuc;
  spec.auc_threshold = 0.5;  // normalized-affinity binder cutoff
  spec.base.model.hidden = {150};  // Table 7 default
  spec.base.model.init = ml::InitScheme::kGlorotUniform;
  spec.base.optimizer = ml::OptimizerKind::kAdam;
  spec.base.opt.learning_rate = 0.01;  // fixed; not part of the search
  spec.base.loss = ml::LossKind::kMse;
  // Regression needs more passes than the classifiers; keep a higher floor
  // so small-scale test runs still learn the teacher signal.
  spec.base.epochs = std::max<std::size_t>(10, scaled(15, scale, 10));
  spec.base.batch_size = 64;
  // Table 6's dimensions: hidden layer size and L2 weight decay.
  spec.space
      .add({"hidden", 20.0, 400.0, ScaleKind::kLinear, /*integer=*/true})
      .add({"weight_decay", 1e-6, 1.0, ScaleKind::kLog});
  spec.defaults = {{"hidden", 150.0}, {"weight_decay", 0.001}};
  cs.pipeline = std::make_shared<const MlpPipeline>(std::move(spec));
  return cs;
}

}  // namespace

std::vector<std::string> case_study_ids() {
  return {"glue_rte_bert", "glue_sst2_bert", "mhc_mlp", "pascalvoc_fcn",
          "cifar10_vgg11"};
}

CaseStudy make_case_study(const std::string& id, double scale) {
  check_scale(scale);
  if (id == "cifar10_vgg11") return make_cifar10(scale);
  if (id == "glue_sst2_bert" || id == "glue_rte_bert") return make_glue(id, scale);
  if (id == "pascalvoc_fcn") return make_pascalvoc(scale);
  if (id == "mhc_mlp") return make_mhc(scale);
  throw std::invalid_argument("make_case_study: unknown id " + id);
}

std::vector<CaseStudy> make_all_case_studies(double scale) {
  std::vector<CaseStudy> all;
  for (const auto& id : case_study_ids()) {
    all.push_back(make_case_study(id, scale));
  }
  return all;
}

}  // namespace varbench::casestudies

// Concrete LearningPipeline backed by the MLP substrate. Hyperparameters
// from the search space are mapped onto the training configuration by name
// (learning_rate, weight_decay, momentum, lr_gamma, hidden, init_sigma,
// dropout) — the same dimensions as the paper's Tables 2/3/5/6.
#pragma once

#include <string>

#include "src/core/pipeline.h"
#include "src/ml/train.h"

namespace varbench::casestudies {

struct MlpPipelineSpec {
  std::string name;
  ml::TrainConfig base;      // architecture, optimizer kind, epochs, augment
  ml::Metric metric = ml::Metric::kAccuracy;
  hpo::SearchSpace space;
  hpo::ParamPoint defaults;  // Appendix D default hyperparameters
  double auc_threshold = 0.5;  // binarization threshold for Metric::kAuc
};

class MlpPipeline final : public core::LearningPipeline {
 public:
  explicit MlpPipeline(MlpPipelineSpec spec);

  [[nodiscard]] double train_and_evaluate(
      const ml::Dataset& train, const ml::Dataset& test,
      const hpo::ParamPoint& lambda,
      const rngx::VariationSeeds& seeds) const override;

  [[nodiscard]] const hpo::SearchSpace& search_space() const override {
    return spec_.space;
  }
  [[nodiscard]] hpo::ParamPoint default_params() const override {
    return spec_.defaults;
  }
  [[nodiscard]] std::string_view name() const override { return spec_.name; }
  [[nodiscard]] ml::Metric metric() const override { return spec_.metric; }

  /// The training configuration that a given λ resolves to (exposed for
  /// tests and diagnostics).
  [[nodiscard]] ml::TrainConfig resolve_config(
      const hpo::ParamPoint& lambda) const;

 private:
  MlpPipelineSpec spec_;
};

}  // namespace varbench::casestudies

#include "src/casestudies/calibration.h"

#include <cmath>
#include <stdexcept>

namespace varbench::casestudies {

double TaskCalibration::rho_for(core::RandomizeSubset subset) const {
  switch (subset) {
    case core::RandomizeSubset::kInit:
      return rho_init;
    case core::RandomizeSubset::kData:
      return rho_data;
    case core::RandomizeSubset::kAll:
      return rho_all;
  }
  throw std::invalid_argument("rho_for: unknown subset");
}

compare::TaskVarianceProfile TaskCalibration::profile(
    core::RandomizeSubset subset) const {
  const double rho = rho_for(subset);
  compare::TaskVarianceProfile p;
  p.task = id;
  p.mu = mu;
  p.sigma_ideal = sigma_ideal;
  p.sigma_bias = std::sqrt(rho) * sigma_ideal;
  p.sigma_within = std::sqrt(1.0 - rho) * sigma_ideal;
  return p;
}

compare::TaskVarianceProfile TaskCalibration::ideal_profile() const {
  compare::TaskVarianceProfile p;
  p.task = id;
  p.mu = mu;
  p.sigma_ideal = sigma_ideal;
  p.sigma_bias = 0.0;
  p.sigma_within = sigma_ideal;
  return p;
}

const std::vector<TaskCalibration>& paper_calibrations() {
  // σ values digitized from Fig. 1 / Fig. H.4 (k=1 intercepts); ρ values
  // from the convergence plateaus of Fig. 5/H.4: FixHOptEst(k, Init)
  // plateaus at ≈ µ̂(k=2) (ρ≈0.5), Data at ≈ µ̂(2..10), All at ≈ µ̂(2..100).
  static const std::vector<TaskCalibration> kTable = {
      {"glue_rte_bert", "Glue-RTE BERT", "accuracy", 0.66, 0.028, 0.50, 0.20,
       0.05, 277},
      {"glue_sst2_bert", "Glue-SST2 BERT", "accuracy", 0.95, 0.008, 0.50, 0.20,
       0.05, 872},
      {"mhc_mlp", "MHC MLP", "auc", 0.91, 0.028, 0.50, 0.15, 0.01, 1000},
      {"pascalvoc_fcn", "PascalVOC ResNet", "mean_iou", 0.53, 0.012, 0.50,
       0.30, 0.10, 729},
      {"cifar10_vgg11", "CIFAR10 VGG11", "accuracy", 0.91, 0.003, 0.50, 0.25,
       0.08, 10000},
  };
  return kTable;
}

const TaskCalibration& calibration_for(const std::string& id) {
  for (const auto& c : paper_calibrations()) {
    if (c.id == id) return c;
  }
  throw std::invalid_argument("calibration_for: unknown id " + id);
}

const std::vector<SotaSeries>& sota_series() {
  // Digitized from paperswithcode.com leaderboards as rendered in Fig. 3
  // (approximate to ~0.2%; only increments and the σ bands matter).
  static const std::vector<SotaSeries> kSeries = {
      {"cifar10",
       {{2013, 0.9065},   // Maxout
        {2013, 0.9120},   // Network in Network
        {2014, 0.9203},   // Deeply-Supervised Nets
        {2015, 0.9359},   // All-CNN / APL era
        {2016, 0.9611},   // Wide ResNet
        {2017, 0.9714},   // Shake-Shake
        {2018, 0.9852},   // AutoAugment
        {2019, 0.9900},   // EfficientNet-class
        {2020, 0.9950}},  // ViT-class
       0.0029},           // the paper's measured benchmark σ (Fig. 2/3)
      {"sst2",
       {{2013, 0.8540},   // RNTN
        {2014, 0.8810},   // CNN (Kim)
        {2015, 0.8880},
        {2017, 0.9030},
        {2018, 0.9180},   // ELMo era
        {2018, 0.9350},   // BERT
        {2019, 0.9680},   // XLNet/RoBERTa
        {2019, 0.9740},   // T5
        {2020, 0.9750}},
       0.0074},
  };
  return kSeries;
}

double mean_improvement(const SotaSeries& series) {
  if (series.points.size() < 2) {
    throw std::invalid_argument("mean_improvement: need >= 2 points");
  }
  double sum = 0.0;
  for (std::size_t i = 1; i < series.points.size(); ++i) {
    sum += series.points[i].accuracy - series.points[i - 1].accuracy;
  }
  return sum / static_cast<double>(series.points.size() - 1);
}

}  // namespace varbench::casestudies

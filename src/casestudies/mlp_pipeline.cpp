#include "src/casestudies/mlp_pipeline.h"

#include <cmath>
#include <stdexcept>

#include "src/ml/metrics.h"

namespace varbench::casestudies {

MlpPipeline::MlpPipeline(MlpPipelineSpec spec) : spec_{std::move(spec)} {
  if (spec_.name.empty()) {
    throw std::invalid_argument("MlpPipeline: empty name");
  }
}

ml::TrainConfig MlpPipeline::resolve_config(
    const hpo::ParamPoint& lambda) const {
  ml::TrainConfig cfg = spec_.base;
  for (const auto& [key, value] : lambda) {
    if (key == "learning_rate") {
      cfg.opt.learning_rate = value;
    } else if (key == "weight_decay") {
      cfg.opt.weight_decay = value;
    } else if (key == "momentum") {
      cfg.opt.momentum = value;
    } else if (key == "lr_gamma") {
      cfg.opt.lr_gamma = value;
    } else if (key == "hidden") {
      if (!(value >= 1.0)) {
        throw std::invalid_argument("resolve_config: hidden < 1");
      }
      cfg.model.hidden.assign(1, static_cast<std::size_t>(std::lround(value)));
    } else if (key == "init_sigma") {
      cfg.model.init_sigma = value;
    } else if (key == "dropout") {
      cfg.model.dropout = value;
    } else {
      throw std::invalid_argument("resolve_config: unknown hyperparameter " +
                                  key);
    }
  }
  if (cfg.opt.learning_rate <= 0.0) {
    throw std::invalid_argument("resolve_config: learning rate <= 0");
  }
  return cfg;
}

double MlpPipeline::train_and_evaluate(const ml::Dataset& train,
                                       const ml::Dataset& test,
                                       const hpo::ParamPoint& lambda,
                                       const rngx::VariationSeeds& seeds) const {
  const ml::TrainConfig cfg = resolve_config(lambda);
  const ml::Mlp model = ml::train_mlp(train, cfg, seeds);
  return ml::evaluate_model(model, test, spec_.metric, spec_.auc_threshold);
}

}  // namespace varbench::casestudies

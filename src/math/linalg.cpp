#include "src/math/linalg.h"

#include <cmath>
#include <stdexcept>

namespace varbench::math {

std::optional<Matrix> cholesky(const Matrix& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("cholesky: not square");
  const std::size_t n = a.rows();
  Matrix l{n, n};
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) return std::nullopt;
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / l(j, j);
    }
  }
  return l;
}

std::vector<double> solve_lower(const Matrix& l, std::span<const double> b) {
  const std::size_t n = l.rows();
  if (b.size() != n) throw std::invalid_argument("solve_lower: size mismatch");
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  return y;
}

std::vector<double> solve_lower_transposed(const Matrix& l,
                                           std::span<const double> y) {
  const std::size_t n = l.rows();
  if (y.size() != n) {
    throw std::invalid_argument("solve_lower_transposed: size mismatch");
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

std::vector<double> cholesky_solve(const Matrix& l, std::span<const double> b) {
  return solve_lower_transposed(l, solve_lower(l, b));
}

double cholesky_log_det(const Matrix& l) {
  double s = 0.0;
  for (std::size_t i = 0; i < l.rows(); ++i) s += std::log(l(i, i));
  return 2.0 * s;
}

std::optional<std::vector<double>> solve_linear(Matrix a,
                                                std::vector<double> b) {
  if (a.rows() != a.cols() || b.size() != a.rows()) {
    throw std::invalid_argument("solve_linear: shape mismatch");
  }
  const std::size_t n = a.rows();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > std::abs(a(pivot, col))) pivot = r;
    }
    if (std::abs(a(pivot, col)) < 1e-300) return std::nullopt;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) / a(col, col);
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= f * a(col, c);
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t c = ii + 1; c < n; ++c) s -= a(ii, c) * x[c];
    x[ii] = s / a(ii, ii);
  }
  return x;
}

}  // namespace varbench::math

// Dense row-major matrix of double, the numeric workhorse for the ML and GP
// substrates. Deliberately minimal: varbench needs matmul, transpose,
// elementwise ops and views — not a full BLAS.
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace varbench::math {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_{rows}, cols_{cols}, data_(rows * cols, fill) {}
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> row(std::size_t r) {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::span<double> data() noexcept { return data_; }
  [[nodiscard]] std::span<const double> data() const noexcept { return data_; }

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  [[nodiscard]] Matrix transposed() const;

  /// Frobenius norm squared: sum of squared entries.
  [[nodiscard]] double squared_norm() const noexcept;

  void fill(double value) noexcept;

  friend bool operator==(const Matrix& a, const Matrix& b) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

[[nodiscard]] Matrix operator+(Matrix a, const Matrix& b);
[[nodiscard]] Matrix operator-(Matrix a, const Matrix& b);
[[nodiscard]] Matrix operator*(Matrix a, double s);
[[nodiscard]] Matrix operator*(double s, Matrix a);

/// a(m×k) * b(k×n) → (m×n).
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);

/// a(m×k) * bᵀ where b is (n×k) → (m×n). Avoids materializing transposes in
/// the MLP backward pass.
[[nodiscard]] Matrix matmul_nt(const Matrix& a, const Matrix& b);

/// aᵀ * b where a is (k×m), b is (k×n) → (m×n).
[[nodiscard]] Matrix matmul_tn(const Matrix& a, const Matrix& b);

/// Matrix–vector product: a(m×n) * x(n) → (m).
[[nodiscard]] std::vector<double> matvec(const Matrix& a,
                                         std::span<const double> x);

[[nodiscard]] Matrix identity(std::size_t n);

[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);

}  // namespace varbench::math

#include "src/math/matrix.h"

#include <stdexcept>
#include <utility>

namespace varbench::math {

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_{rows}, cols_{cols}, data_{std::move(data)} {
  if (data_.size() != rows_ * cols_) {
    throw std::invalid_argument("Matrix: data size does not match dimensions");
  }
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix& Matrix::operator+=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix+=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix-=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix Matrix::transposed() const {
  Matrix t{cols_, rows_};
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

double Matrix::squared_norm() const noexcept {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

void Matrix::fill(double value) noexcept {
  for (double& v : data_) v = value;
}

Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
Matrix operator*(Matrix a, double s) { return a *= s; }
Matrix operator*(double s, Matrix a) { return a *= s; }

Matrix matmul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("matmul: shape mismatch");
  Matrix out{a.rows(), b.cols()};
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const auto brow = b.row(k);
      auto orow = out.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("matmul_nt: shape mismatch");
  }
  Matrix out{a.rows(), b.rows()};
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto arow = a.row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      out(i, j) = dot(arow, b.row(j));
    }
  }
  return out;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("matmul_tn: shape mismatch");
  }
  Matrix out{a.cols(), b.cols()};
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const auto arow = a.row(k);
    const auto brow = b.row(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      auto orow = out.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += aki * brow[j];
    }
  }
  return out;
}

std::vector<double> matvec(const Matrix& a, std::span<const double> x) {
  if (a.cols() != x.size()) throw std::invalid_argument("matvec: shape mismatch");
  std::vector<double> out(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) out[i] = dot(a.row(i), x);
  return out;
}

Matrix identity(std::size_t n) {
  Matrix m{n, n};
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double dot(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace varbench::math

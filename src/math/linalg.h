// Direct solvers needed by the Gaussian-process substrate: Cholesky
// factorization of SPD matrices and triangular solves.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "src/math/matrix.h"

namespace varbench::math {

/// Lower-triangular Cholesky factor L with A = L·Lᵀ.
/// Returns std::nullopt if A is not (numerically) positive definite.
[[nodiscard]] std::optional<Matrix> cholesky(const Matrix& a);

/// Solve L·y = b for lower-triangular L (forward substitution).
[[nodiscard]] std::vector<double> solve_lower(const Matrix& l,
                                              std::span<const double> b);

/// Solve Lᵀ·x = y for lower-triangular L (backward substitution).
[[nodiscard]] std::vector<double> solve_lower_transposed(
    const Matrix& l, std::span<const double> y);

/// Solve A·x = b given the Cholesky factor L of A.
[[nodiscard]] std::vector<double> cholesky_solve(const Matrix& l,
                                                 std::span<const double> b);

/// log|A| from its Cholesky factor: 2·Σ log L(i,i).
[[nodiscard]] double cholesky_log_det(const Matrix& l);

/// Solve the general square system A·x = b by Gaussian elimination with
/// partial pivoting. Returns std::nullopt when A is singular.
[[nodiscard]] std::optional<std::vector<double>> solve_linear(
    Matrix a, std::vector<double> b);

}  // namespace varbench::math

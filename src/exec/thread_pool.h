// A lazily grown, process-wide worker pool. Parallel regions submit
// self-scheduling tasks (each pops chunk indices off a shared atomic
// counter), so the pool itself needs no notion of loops or determinism —
// that lives in parallel_for / parallel_replicate.
#pragma once

#include <cstddef>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace varbench::exec {

class ThreadPool {
 public:
  /// The shared pool used by parallel_for. Created on first use; grows to
  /// the largest worker count any ExecContext has asked for, never shrinks.
  [[nodiscard]] static ThreadPool& global();

  explicit ThreadPool(std::size_t num_workers = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Grow to at least `n` workers (no-op when already large enough).
  void ensure_workers(std::size_t n);

  [[nodiscard]] std::size_t num_workers() const;

  /// Enqueue one task. Tasks must not block waiting on other queued tasks
  /// (the pool has no work stealing); parallel_for's tasks never do.
  void submit(std::function<void()> task);

  /// Enqueue a batch under ONE lock acquisition, moving every task in,
  /// and wake up to `tasks.size()` workers. parallel_for uses this for
  /// its helper fan-out: the per-task lock/notify cost of repeated
  /// submit() was the dominant term in the exec.queue_wait_ns histogram
  /// under contention (see bench/BENCH_exec.json, exec.pool_submit vs
  /// exec.pool_submit_batched).
  void submit_many(std::vector<std::function<void()>> tasks);

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace varbench::exec

// Per-thread reusable scratch buffers for allocation-free hot loops.
//
// The resampling kernels (src/stats/resample_kernels.h) draw index blocks
// and gather samples thousands of times per confidence interval; giving
// each replicate a fresh std::vector would put an allocator round-trip on
// the hot path. A ScratchBuffer instead leases storage from a thread-local
// free list: the first lease of a given magnitude on a thread allocates,
// every later lease reuses that capacity — zero allocation in steady
// state. Leases nest (RAII), so re-entrant users (a bootstrap statistic
// that itself bootstraps) simply hold two buffers from the pool instead of
// clobbering each other.
//
// Thread model: the pool is thread_local, so leases are private to the
// leasing thread — exactly right for parallel_for bodies, which never
// migrate mid-call. Buffers returned on one thread stay on that thread.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace varbench::exec {

namespace detail {

template <typename T>
struct ScratchPool {
  std::vector<std::vector<T>> free_list;
  std::size_t allocations = 0;  // leases served without a pooled buffer

  static ScratchPool& local() {
    thread_local ScratchPool pool;
    return pool;
  }
};

}  // namespace detail

/// RAII lease of `n` default-initialized Ts from this thread's scratch
/// pool. Not copyable or movable: the span must not outlive the lease.
template <typename T>
class ScratchBuffer {
 public:
  explicit ScratchBuffer(std::size_t n) {
    auto& pool = detail::ScratchPool<T>::local();
    if (pool.free_list.empty()) {
      ++pool.allocations;
    } else {
      storage_ = std::move(pool.free_list.back());
      pool.free_list.pop_back();
    }
    storage_.resize(n);
  }

  ~ScratchBuffer() {
    auto& pool = detail::ScratchPool<T>::local();
    pool.free_list.push_back(std::move(storage_));
  }

  ScratchBuffer(const ScratchBuffer&) = delete;
  ScratchBuffer& operator=(const ScratchBuffer&) = delete;

  [[nodiscard]] std::span<T> span() { return storage_; }
  [[nodiscard]] std::span<const T> span() const { return storage_; }
  [[nodiscard]] T* data() { return storage_.data(); }
  [[nodiscard]] std::size_t size() const { return storage_.size(); }

 private:
  std::vector<T> storage_;
};

/// Times this thread's pool for T served a lease by allocating instead of
/// reusing — a test hook pinning the zero-allocation steady state; capacity
/// growth inside a reused vector is not counted (it only happens when a
/// larger lease arrives, after which that capacity is sticky too).
template <typename T>
[[nodiscard]] inline std::size_t scratch_allocations() {
  return detail::ScratchPool<T>::local().allocations;
}

}  // namespace varbench::exec

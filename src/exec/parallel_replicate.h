// parallel_replicate: the deterministic Monte-Carlo fan-out primitive.
//
// Every task index derives its own RNG stream from (master seed, tag, index),
// so replication results are bit-identical for every thread count — 1 thread,
// N threads, and the serial fallback all produce the same vector. This is the
// repo-wide replacement for "loop r times drawing from one shared Rng&",
// which is inherently order-dependent and therefore unparallelizable.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/exec/exec_context.h"
#include "src/exec/parallel_for.h"
#include "src/rngx/rng.h"

namespace varbench::exec {

/// The seed of replicate index `index` within the (master, tag) stream:
/// the index-th output of the SplitMix64 sequence started at the derived
/// stream seed. Adjacent indices give statistically independent streams.
[[nodiscard]] constexpr std::uint64_t replicate_seed(std::uint64_t stream_seed,
                                                     std::uint64_t index) {
  std::uint64_t state =
      stream_seed + index * 0x9E3779B97F4A7C15ULL;  // jump to element `index`
  return rngx::splitmix64(state);
}

/// Run `fn(index, rng)` for index in [0, n), each with an independent child
/// Rng derived from (master_seed, tag, index), and collect the results in
/// index order. T must be default-constructible and movable.
template <typename T, typename Fn>
[[nodiscard]] std::vector<T> parallel_replicate(const ExecContext& ctx,
                                                std::size_t n,
                                                std::uint64_t master_seed,
                                                std::string_view tag, Fn&& fn) {
  const std::uint64_t stream_seed = rngx::derive_seed(master_seed, tag);
  std::vector<T> out(n);
  parallel_for(ctx, 0, n, [&](std::size_t i) {
    rngx::Rng rng{replicate_seed(stream_seed, i)};
    out[i] = fn(i, rng);
  });
  return out;
}

/// As above, but the master seed is drawn from `master` — exactly one draw,
/// independent of n and of the thread count, so the parent stream advances
/// identically in serial and parallel runs.
template <typename T, typename Fn>
[[nodiscard]] std::vector<T> parallel_replicate(const ExecContext& ctx,
                                                std::size_t n,
                                                rngx::Rng& master,
                                                std::string_view tag, Fn&& fn) {
  return parallel_replicate<T>(ctx, n, master.next_u64(), tag,
                               std::forward<Fn>(fn));
}

}  // namespace varbench::exec

// parallel_replicate: the deterministic Monte-Carlo fan-out primitive.
//
// Every task index derives its own RNG stream from (master seed, tag, index),
// so replication results are bit-identical for every thread count — 1 thread,
// N threads, and the serial fallback all produce the same vector. This is the
// repo-wide replacement for "loop r times drawing from one shared Rng&",
// which is inherently order-dependent and therefore unparallelizable.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/exec/exec_context.h"
#include "src/exec/parallel_for.h"
#include "src/rngx/rng.h"

namespace varbench::exec {

/// The seed of replicate index `index` within the (master, tag) stream:
/// the index-th output of the SplitMix64 sequence started at the derived
/// stream seed. Adjacent indices give statistically independent streams.
[[nodiscard]] constexpr std::uint64_t replicate_seed(std::uint64_t stream_seed,
                                                     std::uint64_t index) {
  std::uint64_t state =
      stream_seed + index * 0x9E3779B97F4A7C15ULL;  // jump to element `index`
  return rngx::splitmix64(state);
}

/// A contiguous slice [begin, end) of a replicate index space — the unit of
/// process-level sharding. Per-index RNG streams are keyed by the *global*
/// index, so computing any subrange yields exactly the values the full run
/// would produce at those indices (docs/study_api.md).
struct IndexRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] constexpr std::size_t size() const { return end - begin; }
  friend constexpr bool operator==(const IndexRange&,
                                   const IndexRange&) = default;
};

/// The balanced contiguous partition of [0, n) into `shard_count` slices:
/// slice i gets floor/ceil(n / count) items, earlier slices the larger share.
/// shard_subrange(n, 0, 1) == {0, n}; slices for i = 0..count-1 tile [0, n).
[[nodiscard]] constexpr IndexRange shard_subrange(std::size_t n,
                                                  std::size_t shard_index,
                                                  std::size_t shard_count) {
  const std::size_t base = n / shard_count;
  const std::size_t extra = n % shard_count;
  const std::size_t begin =
      shard_index * base + (shard_index < extra ? shard_index : extra);
  const std::size_t len = base + (shard_index < extra ? 1 : 0);
  return IndexRange{begin, begin + len};
}

/// Run `fn(global_index, rng)` for every global index in `range`, each with
/// an independent child Rng derived from (master_seed, tag, global_index),
/// and collect the results in index order (out[j] is global index
/// range.begin + j). T must be default-constructible and movable.
template <typename T, typename Fn>
[[nodiscard]] std::vector<T> parallel_replicate_range(
    const ExecContext& ctx, IndexRange range, std::uint64_t master_seed,
    std::string_view tag, Fn&& fn) {
  const std::uint64_t stream_seed = rngx::derive_seed(master_seed, tag);
  std::vector<T> out(range.size());
  parallel_for(ctx, 0, range.size(), [&](std::size_t j) {
    const std::size_t i = range.begin + j;
    rngx::Rng rng{replicate_seed(stream_seed, i)};
    out[j] = fn(i, rng);
  });
  return out;
}

/// As above with the master seed drawn from `master` — exactly one draw,
/// independent of the range, the total n, and the thread count, so shard
/// runs advance the parent stream identically to the unsharded run.
template <typename T, typename Fn>
[[nodiscard]] std::vector<T> parallel_replicate_range(const ExecContext& ctx,
                                                      IndexRange range,
                                                      rngx::Rng& master,
                                                      std::string_view tag,
                                                      Fn&& fn) {
  return parallel_replicate_range<T>(ctx, range, master.next_u64(), tag,
                                     std::forward<Fn>(fn));
}

/// Run `fn(index, rng)` for index in [0, n), each with an independent child
/// Rng derived from (master_seed, tag, index), and collect the results in
/// index order. T must be default-constructible and movable.
template <typename T, typename Fn>
[[nodiscard]] std::vector<T> parallel_replicate(const ExecContext& ctx,
                                                std::size_t n,
                                                std::uint64_t master_seed,
                                                std::string_view tag, Fn&& fn) {
  return parallel_replicate_range<T>(ctx, IndexRange{0, n}, master_seed, tag,
                                     std::forward<Fn>(fn));
}

/// As above, but the master seed is drawn from `master` — exactly one draw,
/// independent of n and of the thread count, so the parent stream advances
/// identically in serial and parallel runs.
template <typename T, typename Fn>
[[nodiscard]] std::vector<T> parallel_replicate(const ExecContext& ctx,
                                                std::size_t n,
                                                rngx::Rng& master,
                                                std::string_view tag, Fn&& fn) {
  return parallel_replicate<T>(ctx, n, master.next_u64(), tag,
                               std::forward<Fn>(fn));
}

}  // namespace varbench::exec

// parallel_for: chunked, self-scheduling index loop on the global pool.
//
// Scheduling is dynamic (an atomic chunk cursor), so thread assignment is
// nondeterministic — which is exactly why bodies must depend only on their
// index, never on which thread runs them or in what order. Determinism of
// every randomized caller comes from parallel_replicate's per-index streams.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <latch>
#include <mutex>
#include <vector>

#include "src/exec/exec_context.h"
#include "src/exec/thread_pool.h"
#include "src/metrics/metrics.h"
#include "src/metrics/stopwatch.h"
#include "src/trace/stopwatch.h"
#include "src/trace/trace.h"

namespace varbench::exec {

namespace detail {
/// True while the current thread is inside a parallel_for region. Nested
/// regions run inline: helper tasks waiting on a nested region would
/// otherwise occupy every pool worker while the nested region's own tasks
/// sit queued behind them — a permanent deadlock.
inline thread_local bool t_in_parallel_region = false;
}  // namespace detail

/// Invoke `body(i)` for every i in [begin, end). Blocks until done.
///
/// `grain` is the number of consecutive indices a worker claims at a time
/// (0 → automatic: ~8 chunks per worker, the classic balance between
/// scheduling overhead and tail latency). The first exception thrown by any
/// body cancels remaining chunks and is rethrown on the calling thread.
/// Nested calls (from inside a body) always run inline.
template <typename Body>
void parallel_for(const ExecContext& ctx, std::size_t begin, std::size_t end,
                  Body&& body, std::size_t grain = 0) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  std::size_t threads = ctx.resolved_threads();
  if (threads > n) threads = n;
  if (detail::t_in_parallel_region) threads = 1;

  // Instrumentation (docs/metrics.md): every call below is a no-op branch
  // unless the metric was enabled on this context's sink, and nothing
  // recorded here can reach artifact bytes — metrics are provenance only.
  metrics::Sink& sink = ctx.sink();
  sink.add(metrics::kExecRegions);
  sink.observe(metrics::kExecRegionThreads, threads);

  // Span idents are identity-derived (docs/tracing.md): a tracer-wide
  // region sequence number, with chunk idents packed as (region << 32) |
  // chunk index — never a pointer, tid, or clock value, so the same work
  // traced at any thread count yields the same (span, ident) multiset.
  trace::Tracer& tracer = ctx.spans();
  const bool trace_chunks = tracer.is_enabled(trace::kExecChunk);
  const std::uint64_t region_ident =
      (tracer.is_enabled(trace::kExecRegion) || trace_chunks)
          ? tracer.next_sequence()
          : 0;
  const trace::ScopedSpan region_span{tracer, trace::kExecRegion,
                                      region_ident};

  if (threads <= 1) {
    // An inline region is one chunk spanning the whole range.
    sink.add(metrics::kExecChunks);
    sink.observe(metrics::kExecChunkSize, n);
    const metrics::ScopedTimer chunk_timer{sink, metrics::kExecChunkRunNs};
    const trace::ScopedSpan chunk_span{tracer, trace::kExecChunk,
                                       region_ident << 32};
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  if (grain == 0) grain = std::max<std::size_t>(1, n / (threads * 8));
  const std::size_t num_chunks = (n + grain - 1) / grain;

  std::atomic<std::size_t> next_chunk{0};
  std::atomic<bool> cancelled{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto drain = [&] {
    const bool was_in_region = detail::t_in_parallel_region;
    detail::t_in_parallel_region = true;
    while (!cancelled.load(std::memory_order_relaxed)) {
      const std::size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) break;
      const std::size_t lo = begin + c * grain;
      const std::size_t hi = std::min(end, lo + grain);
      sink.add(metrics::kExecChunks);
      sink.observe(metrics::kExecChunkSize, hi - lo);
      try {
        const metrics::ScopedTimer chunk_timer{sink, metrics::kExecChunkRunNs};
        const trace::ScopedSpan chunk_span{
            tracer, trace::kExecChunk,
            (region_ident << 32) | static_cast<std::uint64_t>(c)};
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock{error_mu};
          if (!first_error) first_error = std::current_exception();
        }
        cancelled.store(true, std::memory_order_relaxed);
      }
    }
    detail::t_in_parallel_region = was_in_region;
  };

  const std::size_t helpers = threads - 1;  // the caller participates too
  ThreadPool& pool = ThreadPool::global();
  pool.ensure_workers(helpers);
  sink.add(metrics::kExecTasksSubmitted, helpers);
  std::latch done{static_cast<std::ptrdiff_t>(helpers)};
  // One batched enqueue: a single lock acquisition + wakeup for the whole
  // helper fan-out (see ThreadPool::submit_many). Queue-wait timestamps
  // are captured at submit time only when the metric is live.
  const bool time_queue_wait = sink.is_enabled(metrics::kExecQueueWaitNs);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(helpers);
  for (std::size_t t = 0; t < helpers; ++t) {
    if (time_queue_wait) {
      const std::uint64_t submitted_ns = metrics::monotonic_ns();
      tasks.push_back([&, submitted_ns] {
        sink.observe(metrics::kExecQueueWaitNs,
                     metrics::monotonic_ns() - submitted_ns);
        drain();
        done.count_down();
      });
    } else {
      tasks.push_back([&] {
        drain();
        done.count_down();
      });
    }
  }
  pool.submit_many(std::move(tasks));
  drain();
  done.wait();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace varbench::exec

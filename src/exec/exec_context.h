// Execution context threaded through every Monte-Carlo hot path.
//
// varbench's parallelism contract (see docs/determinism.md): results are
// bit-identical regardless of `num_threads`, because randomized work items
// never share an RNG stream — each task index derives its own child stream
// from a (master seed, tag, index) triple. The ExecContext only decides how
// the index space is scheduled onto threads, never what each index computes.
#pragma once

#include <cstddef>
#include <thread>

#include "src/metrics/metrics.h"
#include "src/trace/trace.h"

namespace varbench::exec {

struct ExecContext {
  /// 0 → use std::thread::hardware_concurrency(); 1 → run inline (serial);
  /// N → up to N OS threads per parallel region.
  std::size_t num_threads = 1;

  /// Optional metrics sink (docs/metrics.md). nullptr — the default, so
  /// every existing `ExecContext{n}` call site is source-compatible —
  /// resolves to the process-wide metrics::global_sink(), which is all-
  /// disabled unless a CLI flag or test enabled it. Metrics are pure
  /// provenance: enabling them never changes result bytes
  /// (docs/determinism.md).
  metrics::Sink* metrics = nullptr;

  /// The sink instrumented code records into (never null).
  [[nodiscard]] metrics::Sink& sink() const {
    return metrics != nullptr ? *metrics : metrics::global_sink();
  }

  /// Optional span tracer (docs/tracing.md), same contract as `metrics`:
  /// nullptr resolves to the all-disabled-by-default process tracer, and
  /// traces are pure provenance — enabling them never changes result bytes.
  trace::Tracer* tracer = nullptr;

  /// The tracer instrumented code emits spans into (never null).
  [[nodiscard]] trace::Tracer& spans() const {
    return tracer != nullptr ? *tracer : trace::global_tracer();
  }

  /// The actual worker count to schedule with (never 0).
  [[nodiscard]] std::size_t resolved_threads() const {
    if (num_threads != 0) return num_threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
  }

  [[nodiscard]] bool is_serial() const { return resolved_threads() <= 1; }

  /// Inline execution — what nested regions use when an outer region already
  /// owns the hardware (avoids oversubscription).
  [[nodiscard]] static ExecContext serial() { return ExecContext{1}; }

  /// All hardware threads.
  [[nodiscard]] static ExecContext hardware() { return ExecContext{0}; }

  friend bool operator==(const ExecContext&, const ExecContext&) = default;
};

}  // namespace varbench::exec

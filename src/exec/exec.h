// varbench::exec — deterministic parallel execution engine.
//
// The three layers, bottom-up:
//   ThreadPool          process-wide workers, grow-on-demand   (thread_pool.h)
//   parallel_for        chunked self-scheduling index loops    (parallel_for.h)
//   parallel_replicate  per-index RNG streams → bit-identical
//                       Monte-Carlo results at any thread count
//                                                         (parallel_replicate.h)
//
// Consumers receive an ExecContext (exec_context.h) through their config
// structs; ExecContext::serial() is both the default and what nested regions
// use when an outer loop already owns the hardware.
#pragma once

#include "src/exec/exec_context.h"        // IWYU pragma: export
#include "src/exec/parallel_for.h"        // IWYU pragma: export
#include "src/exec/parallel_replicate.h"  // IWYU pragma: export
#include "src/exec/thread_pool.h"         // IWYU pragma: export

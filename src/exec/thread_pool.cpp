#include "src/exec/thread_pool.h"

#include <utility>

namespace varbench::exec {

ThreadPool& ThreadPool::global() {
  static ThreadPool pool{0};
  return pool;
}

ThreadPool::ThreadPool(std::size_t num_workers) { ensure_workers(num_workers); }

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock{mu_};
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::ensure_workers(std::size_t n) {
  const std::lock_guard<std::mutex> lock{mu_};
  while (workers_.size() < n) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

std::size_t ThreadPool::num_workers() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return workers_.size();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock{mu_};
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::submit_many(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  const std::size_t n = tasks.size();
  {
    const std::lock_guard<std::mutex> lock{mu_};
    for (auto& task : tasks) {
      queue_.push_back(std::move(task));
    }
  }
  if (n == 1) {
    cv_.notify_one();
  } else {
    cv_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock{mu_};
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace varbench::exec

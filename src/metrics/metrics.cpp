#include "src/metrics/metrics.h"

#include <algorithm>
#include <mutex>
#include <stdexcept>

namespace varbench::metrics {

namespace {

std::vector<MetricDef> builtin_defs() {
  std::vector<MetricDef> defs;
  defs.reserve(static_cast<std::size_t>(kNumBuiltinMetrics));
#define VARBENCH_METRIC_DEF(sym, name, subsystem, unit, kind, help) \
  defs.push_back(MetricDef{name, subsystem, unit, MetricKind::kind, help});
  VARBENCH_BUILTIN_METRICS(VARBENCH_METRIC_DEF)
#undef VARBENCH_METRIC_DEF
  return defs;
}

struct Registry {
  std::vector<MetricDef> defs = builtin_defs();
  std::mutex mu;  // guards registration; id-indexed reads never resize away
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

std::string_view kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kTimer:
      return "timer";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "counter";
}

const std::vector<MetricDef>& metric_defs() { return registry().defs; }

std::size_t num_metrics() { return registry().defs.size(); }

MetricId metric_id(std::string_view name) {
  const auto& defs = registry().defs;
  for (std::size_t i = 0; i < defs.size(); ++i) {
    if (defs[i].name == name) return static_cast<MetricId>(i);
  }
  throw std::invalid_argument{"metrics: unknown metric name '" +
                              std::string{name} + "'"};
}

MetricId register_metric(MetricDef def) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock{r.mu};
  for (const MetricDef& existing : r.defs) {
    if (existing.name == def.name) {
      throw std::invalid_argument{"metrics: metric name '" + def.name +
                                  "' is already registered"};
    }
  }
  r.defs.push_back(std::move(def));
  return static_cast<MetricId>(r.defs.size() - 1);
}

std::uint64_t MetricSnapshot::percentile_upper(double p) const {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Smallest rank whose cumulative bin count reaches ceil(p * count).
  const auto target = static_cast<std::uint64_t>(
      p * static_cast<double>(count) + 0.999999999999);
  const std::uint64_t rank = std::max<std::uint64_t>(1, target);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kNumBins; ++i) {
    cumulative += bins[i];
    if (cumulative >= rank) return bin_upper(i);
  }
  return bin_upper(kNumBins - 1);
}

const MetricSnapshot* Snapshot::find(MetricId id) const {
  for (const MetricSnapshot& m : metrics) {
    if (m.id == id) return &m;
  }
  return nullptr;
}

Sink::Sink() : enabled_(num_metrics(), 0) {}

Sink::~Sink() {
  for (auto& slot : shards_) {
    delete slot.load(std::memory_order_acquire);
  }
}

void Sink::enable(MetricId id) {
  if (id >= enabled_.size()) {
    throw std::invalid_argument{
        "metrics: enable() id out of range (metric registered after this "
        "Sink was constructed?)"};
  }
  if (enabled_[id] == 0) {
    enabled_[id] = 1;
    ++num_enabled_;
  }
}

void Sink::disable(MetricId id) {
  if (id < enabled_.size() && enabled_[id] != 0) {
    enabled_[id] = 0;
    --num_enabled_;
  }
}

void Sink::enable_all() {
  for (MetricId id = 0; id < enabled_.size(); ++id) enable(id);
}

void Sink::disable_all() {
  std::fill(enabled_.begin(), enabled_.end(), std::uint8_t{0});
  num_enabled_ = 0;
}

namespace {

/// Stable per-thread shard slot: threads round-robin onto slots in the
/// order they first record. (Slot choice only affects contention, never
/// snapshot values — integer adds commute across shards.)
std::size_t this_thread_slot(std::size_t num_slots) {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot % num_slots;
}

}  // namespace

Sink::Shard& Sink::shard_for_this_thread() {
  std::atomic<Shard*>& slot = shards_[this_thread_slot(kShardSlots)];
  Shard* existing = slot.load(std::memory_order_acquire);
  if (existing != nullptr) return *existing;
  auto fresh = std::make_unique<Shard>(enabled_.size() * kCellsPerMetric);
  Shard* expected = nullptr;
  if (slot.compare_exchange_strong(expected, fresh.get(),
                                   std::memory_order_acq_rel)) {
    return *fresh.release();
  }
  return *expected;  // another thread on this slot won the race
}

void Sink::record(MetricId id, std::uint64_t value) {
  Shard& shard = shard_for_this_thread();
  std::atomic<std::uint64_t>* cells = shard.cells.get() + id * kCellsPerMetric;
  cells[0].fetch_add(1, std::memory_order_relaxed);
  cells[1].fetch_add(value, std::memory_order_relaxed);
  const MetricKind kind = metric_defs()[id].kind;
  if (kind != MetricKind::kCounter) {
    cells[2 + bin_index(value)].fetch_add(1, std::memory_order_relaxed);
  }
}

Snapshot Sink::snapshot() const {
  Snapshot snap;
  snap.metrics.reserve(num_enabled_);
  for (MetricId id = 0; id < enabled_.size(); ++id) {
    if (enabled_[id] == 0) continue;
    MetricSnapshot m;
    m.id = id;
    for (const auto& slot : shards_) {
      const Shard* shard = slot.load(std::memory_order_acquire);
      if (shard == nullptr) continue;
      const std::atomic<std::uint64_t>* cells =
          shard->cells.get() + id * kCellsPerMetric;
      m.count += cells[0].load(std::memory_order_relaxed);
      m.sum += cells[1].load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kNumBins; ++b) {
        m.bins[b] += cells[2 + b].load(std::memory_order_relaxed);
      }
    }
    snap.metrics.push_back(m);
  }
  return snap;
}

void Sink::reset() {
  for (auto& slot : shards_) {
    Shard* shard = slot.load(std::memory_order_acquire);
    if (shard == nullptr) continue;
    const std::size_t n = enabled_.size() * kCellsPerMetric;
    for (std::size_t i = 0; i < n; ++i) {
      shard->cells[i].store(0, std::memory_order_relaxed);
    }
  }
}

std::size_t Sink::allocated_shards() const {
  std::size_t n = 0;
  for (const auto& slot : shards_) {
    if (slot.load(std::memory_order_acquire) != nullptr) ++n;
  }
  return n;
}

Sink& global_sink() {
  static Sink sink;
  return sink;
}

void enable_selection(Sink& sink, std::string_view selection) {
  std::size_t pos = 0;
  while (pos <= selection.size()) {
    std::size_t comma = selection.find(',', pos);
    if (comma == std::string_view::npos) comma = selection.size();
    std::string_view token = selection.substr(pos, comma - pos);
    pos = comma + 1;
    while (!token.empty() && token.front() == ' ') token.remove_prefix(1);
    while (!token.empty() && token.back() == ' ') token.remove_suffix(1);
    if (token.empty()) continue;
    if (token == "all") {
      sink.enable_all();
      continue;
    }
    if (token == "none") {
      sink.disable_all();
      continue;
    }
    const auto& defs = metric_defs();
    bool matched = false;
    for (std::size_t i = 0; i < defs.size(); ++i) {
      if (defs[i].name == token || defs[i].subsystem == token) {
        sink.enable(static_cast<MetricId>(i));
        matched = true;
      }
    }
    if (!matched) {
      throw std::invalid_argument{
          "metrics: selection '" + std::string{token} +
          "' matches no metric name or subsystem (try `varbench metrics "
          "--list`)"};
    }
  }
}

}  // namespace varbench::metrics

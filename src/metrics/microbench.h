// The instrumented microbench suite behind `varbench bench` and
// tools/bench_gate: short, deterministic workloads over the hot layers
// (exec fan-out, pool submit, campaign work-queue ops) timed min-of-N —
// the minimum over repeats strips scheduler noise, which is what the
// perf-trajectory gate (src/metrics/trajectory.h) compares across runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace varbench::metrics {

struct MicrobenchOptions {
  std::size_t repeats = 5;  // min-of-N
  double scale = 1.0;       // work multiplier in (0, ...]
  std::size_t threads = 0;  // exec fan-out width; 0 = all hardware threads
};

struct MicrobenchResult {
  std::string bench;  // trajectory row name, e.g. "exec.parallel_for"
  std::string unit;   // what min_ns measures ("ns", "ns/task", ...)
  std::uint64_t min_ns = 0;
  std::uint64_t repeats = 0;
};

/// exec.parallel_for (metrics off), exec.parallel_for_metrics (same
/// workload, exec metrics enabled on a local sink — the pair is the
/// overhead model of docs/metrics.md), exec.pool_submit,
/// exec.pool_submit_batched.
[[nodiscard]] std::vector<MicrobenchResult> run_exec_microbenches(
    const MicrobenchOptions& opts);

/// campaign.ticket_cycle (enqueue → claim → complete per ticket) and
/// campaign.heartbeat, on a throwaway work-queue directory under
/// `scratch_dir` (removed afterwards).
[[nodiscard]] std::vector<MicrobenchResult> run_campaign_microbenches(
    const MicrobenchOptions& opts, const std::string& scratch_dir);

/// stats.bca_ci_mean_kernel (fused index-kernel BCa,
/// stats::ResampleStat::kMean) vs stats.bca_ci_mean_legacy (the
/// pre-kernel path re-enacted: one materialized resample vector per
/// replicate plus one materialized leave-one-out vector per jackknife
/// index) over the same column, resample count, and thread fan-out — the
/// pair is the speedup record of the resampling-kernel rewrite
/// (src/stats/resample_kernels.h). Both paths draw identical RNG streams,
/// so they compute bit-identical intervals; only the memory traffic
/// differs.
[[nodiscard]] std::vector<MicrobenchResult> run_stats_microbenches(
    const MicrobenchOptions& opts);

/// Percent overhead of enabled exec metrics on the parallel_for workload:
/// 100 * (t_on - t_off) / t_off, computed from fresh min-of-N runs. The
/// acceptance budget is <= 1% with metrics DISABLED being the comparison
/// default (a disabled metric is one predictable branch).
[[nodiscard]] double exec_metrics_overhead_percent(
    const std::vector<MicrobenchResult>& results);

}  // namespace varbench::metrics

// The shared driver behind `varbench bench [--gate]` and tools/bench_gate:
// run the instrumented microbench suites, print a markdown trajectory
// table (terminal-readable, and exactly what CI pipes into its step
// summary), append min-of-N rows to bench/BENCH_exec.json /
// bench/BENCH_campaign.json / bench/BENCH_stats.json, and — in gate
// mode — fail on regressions beyond the noise band
// (src/metrics/trajectory.h).
#pragma once

#include <cstdio>
#include <string>

namespace varbench::metrics {

struct GateOptions {
  std::string bench_dir = "bench";  // holds the BENCH_*.json trajectories
  double threshold = 1.5;           // regression band vs historical best
  std::size_t repeats = 5;          // min-of-N
  double scale = 1.0;
  std::size_t threads = 0;          // exec fan-out; 0 = hardware
  bool gate = false;                // nonzero exit on regression
  bool append = true;               // record fresh rows into the trajectory
  std::string label;                // trajectory row context ("ci", "local")
  /// Multiply fresh timings before the gate compare — CI's self-test
  /// injects 2.0 here and asserts the gate fails (VARBENCH_BENCH_INJECT).
  double inject_slowdown = 1.0;
  std::string scratch_dir;          // work-queue scratch; "" = system temp
};

/// Returns the process exit code: 0, or 1 when gate mode found a
/// regression (or a trajectory file was unreadable).
int run_bench_gate(const GateOptions& opts, std::FILE* out);

}  // namespace varbench::metrics

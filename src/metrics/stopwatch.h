// Monotonic-clock helpers for the metrics layer. This header is the ONE
// place instrumented subsystems get wall time from: varlint's
// no-wallclock rule whitelists src/metrics/ (docs/static_analysis.md), so
// callers elsewhere use ScopedTimer/Stopwatch instead of reading clocks —
// and the enabled check happens BEFORE any clock read, keeping the
// disabled path free of syscalls.
//
// Timings are provenance, never identity: nothing here may flow into
// canonical_text() bytes (docs/determinism.md).
#pragma once

#include <chrono>
#include <cstdint>

#include "src/metrics/metrics.h"

namespace varbench::metrics {

/// Nanoseconds on the monotonic clock. Only meaningful as a difference.
[[nodiscard]] inline std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Manual start/stop timer for code that can't use RAII scoping.
class Stopwatch {
 public:
  Stopwatch() : start_ns_(monotonic_ns()) {}

  [[nodiscard]] std::uint64_t elapsed_ns() const {
    return monotonic_ns() - start_ns_;
  }

  void restart() { start_ns_ = monotonic_ns(); }

 private:
  std::uint64_t start_ns_;
};

/// Records the scope's wall time into `sink` under `id` — but reads the
/// clock only when the metric is enabled, so a disabled timer costs one
/// branch in the constructor and one in the destructor.
class ScopedTimer {
 public:
  ScopedTimer(Sink& sink, MetricId id)
      : sink_(sink.is_enabled(id) ? &sink : nullptr),
        id_(id),
        start_ns_(sink_ != nullptr ? monotonic_ns() : 0) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (sink_ != nullptr) sink_->observe(id_, monotonic_ns() - start_ns_);
  }

 private:
  Sink* sink_;
  MetricId id_;
  std::uint64_t start_ns_;
};

}  // namespace varbench::metrics

#include "src/metrics/gate.h"

#include <cmath>
#include <exception>
#include <filesystem>
#include <vector>

#include "src/metrics/microbench.h"
#include "src/metrics/trajectory.h"
#include "src/version.h"

namespace varbench::metrics {

namespace fs = std::filesystem;

namespace {

TrajectoryRow to_row(const MicrobenchResult& r, const GateOptions& opts) {
  TrajectoryRow row;
  row.bench = r.bench;
  row.unit = r.unit;
  row.min_ns = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(r.min_ns) * opts.inject_slowdown));
  row.repeats = r.repeats;
  row.version = std::string{kVersion};
  row.label = opts.label;
  return row;
}

/// Gate + append one trajectory file. Returns true when any row regressed.
bool process_file(const std::string& path,
                  const std::vector<MicrobenchResult>& results,
                  const GateOptions& opts, std::FILE* out) {
  std::vector<TrajectoryRow> fresh;
  fresh.reserve(results.size());
  for (const MicrobenchResult& r : results) fresh.push_back(to_row(r, opts));

  Trajectory trajectory = Trajectory::load(path);
  const std::vector<GateCheck> checks =
      gate_checks(trajectory, fresh, opts.threshold);

  bool regressed = false;
  for (const GateCheck& c : checks) {
    const char* status = c.regressed ? "REGRESSED" : (c.best_ns == 0 ? "new" : "ok");
    regressed = regressed || c.regressed;
    std::fprintf(out, "| %s | %s | %llu | %llu | %.2f | %s |\n",
                 c.row.bench.c_str(), c.row.unit.c_str(),
                 static_cast<unsigned long long>(c.row.min_ns),
                 static_cast<unsigned long long>(c.best_ns), c.ratio, status);
  }

  if (opts.append) {
    for (const TrajectoryRow& row : fresh) trajectory.append(row);
    trajectory.save(path);
    std::fprintf(out, "\nrecorded %zu row(s) in %s\n\n", fresh.size(),
                 path.c_str());
  }
  return regressed;
}

}  // namespace

int run_bench_gate(const GateOptions& opts, std::FILE* out) {
  MicrobenchOptions mopts;
  mopts.repeats = opts.repeats;
  mopts.scale = opts.scale;
  mopts.threads = opts.threads;
  const std::string scratch = opts.scratch_dir.empty()
                                  ? fs::temp_directory_path().string()
                                  : opts.scratch_dir;

  std::fprintf(out,
               "## varbench bench — perf trajectory (min of %zu, threshold "
               "%.2fx vs best)\n\n",
               opts.repeats, opts.threshold);
  if (opts.inject_slowdown != 1.0) {
    std::fprintf(out, "injected slowdown: %.2fx (gate self-test)\n\n",
                 opts.inject_slowdown);
  }
  std::fprintf(out, "| bench | unit | min_ns | best_ns | ratio | status |\n");
  std::fprintf(out, "|---|---|---|---|---|---|\n");

  bool regressed = false;
  try {
    if (opts.append) fs::create_directories(opts.bench_dir);
    const std::vector<MicrobenchResult> exec_results =
        run_exec_microbenches(mopts);
    const std::vector<MicrobenchResult> campaign_results =
        run_campaign_microbenches(mopts, scratch);
    const std::vector<MicrobenchResult> stats_results =
        run_stats_microbenches(mopts);
    regressed |= process_file(
        (fs::path{opts.bench_dir} / "BENCH_exec.json").string(), exec_results,
        opts, out);
    regressed |= process_file(
        (fs::path{opts.bench_dir} / "BENCH_campaign.json").string(),
        campaign_results, opts, out);
    regressed |= process_file(
        (fs::path{opts.bench_dir} / "BENCH_stats.json").string(),
        stats_results, opts, out);
    std::fprintf(out, "exec metrics overhead: %+.2f%% (budget: <= 1%% with "
                      "metrics disabled; the pair above is metrics on vs off)\n",
                 exec_metrics_overhead_percent(exec_results));
  } catch (const std::exception& e) {
    std::fprintf(out, "\nbench gate error: %s\n", e.what());
    return 1;
  }

  if (regressed) {
    std::fprintf(out,
                 "\nGATE: regression beyond %.2fx noise band — investigate or "
                 "re-record the trajectory\n",
                 opts.threshold);
    return opts.gate ? 1 : 0;
  }
  std::fprintf(out, "gate: all benches within the noise band\n");
  return 0;
}

}  // namespace varbench::metrics

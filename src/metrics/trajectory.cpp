#include "src/metrics/trajectory.h"

#include <filesystem>
#include <utility>

#include "src/io/json.h"

namespace varbench::metrics {

namespace {

constexpr std::string_view kSchema = "varbench.bench_trajectory.v1";

std::uint64_t field_u64(const io::Json& row, const char* key,
                        const std::string& path) {
  const io::Json* v = row.find(key);
  if (v == nullptr) {
    throw io::JsonError{path + ": trajectory row missing '" +
                        std::string{key} + "'"};
  }
  return v->as_uint64();
}

std::string field_str(const io::Json& row, const char* key,
                      const std::string& path) {
  const io::Json* v = row.find(key);
  if (v == nullptr) {
    throw io::JsonError{path + ": trajectory row missing '" +
                        std::string{key} + "'"};
  }
  return v->as_string();
}

}  // namespace

Trajectory Trajectory::load(const std::string& path) {
  Trajectory traj;
  if (!std::filesystem::exists(path)) return traj;
  const std::string text = io::read_file(path);
  // An empty (or whitespace-only) file is the same first-run state as a
  // missing one — `touch`ed by a wrapper script, or left by an interrupted
  // write. The gate records a baseline instead of failing to parse.
  if (text.find_first_not_of(" \t\r\n") == std::string::npos) return traj;
  const io::Json doc = io::Json::parse(text);
  const io::Json* schema = doc.find("schema");
  if (schema == nullptr || schema->as_string() != kSchema) {
    throw io::JsonError{path + ": not a " + std::string{kSchema} +
                        " trajectory file"};
  }
  const io::Json* rows = doc.find("rows");
  if (rows == nullptr || !rows->is_array()) {
    throw io::JsonError{path + ": trajectory file has no \"rows\" array"};
  }
  for (const io::Json& r : rows->as_array()) {
    TrajectoryRow row;
    row.bench = field_str(r, "bench", path);
    row.unit = field_str(r, "unit", path);
    row.min_ns = field_u64(r, "min_ns", path);
    row.repeats = field_u64(r, "repeats", path);
    row.version = field_str(r, "version", path);
    if (const io::Json* label = r.find("label")) row.label = label->as_string();
    traj.rows_.push_back(std::move(row));
  }
  return traj;
}

std::string Trajectory::to_json_text() const {
  io::Json doc = io::Json::object();
  doc.set("schema", std::string{kSchema});
  io::Json rows = io::Json::array();
  for (const TrajectoryRow& row : rows_) {
    io::Json r = io::Json::object();
    r.set("bench", row.bench);
    r.set("unit", row.unit);
    r.set("min_ns", row.min_ns);
    r.set("repeats", row.repeats);
    r.set("version", row.version);
    r.set("label", row.label);
    rows.push_back(std::move(r));
  }
  doc.set("rows", std::move(rows));
  return doc.dump(2) + "\n";
}

void Trajectory::save(const std::string& path) const {
  io::write_file(path, to_json_text());
}

std::uint64_t Trajectory::best_ns(const std::string& bench) const {
  std::uint64_t best = 0;
  for (const TrajectoryRow& row : rows_) {
    if (row.bench != bench) continue;
    if (best == 0 || row.min_ns < best) best = row.min_ns;
  }
  return best;
}

std::vector<GateCheck> gate_checks(const Trajectory& prior,
                                   const std::vector<TrajectoryRow>& fresh,
                                   double threshold,
                                   std::uint64_t min_abs_ns) {
  std::vector<GateCheck> checks;
  checks.reserve(fresh.size());
  for (const TrajectoryRow& row : fresh) {
    GateCheck check;
    check.row = row;
    check.best_ns = prior.best_ns(row.bench);
    if (check.best_ns > 0) {
      check.ratio =
          static_cast<double>(row.min_ns) / static_cast<double>(check.best_ns);
      check.regressed =
          check.ratio > threshold && row.min_ns > check.best_ns + min_abs_ns;
    }
    checks.push_back(std::move(check));
  }
  return checks;
}

}  // namespace varbench::metrics

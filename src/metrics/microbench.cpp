#include "src/metrics/microbench.h"

#include <atomic>
#include <cmath>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include "src/campaign/subprocess.h"
#include "src/campaign/work_queue.h"
#include "src/exec/parallel_for.h"
#include "src/exec/parallel_replicate.h"
#include "src/exec/thread_pool.h"
#include "src/metrics/metrics.h"
#include "src/metrics/stopwatch.h"
#include "src/rngx/rng.h"
#include "src/stats/bootstrap.h"
#include "src/stats/descriptive.h"
#include "src/trace/trace.h"

namespace varbench::metrics {

namespace fs = std::filesystem;

namespace {

std::size_t scaled(double scale, std::size_t base) {
  if (scale <= 0.0) {
    throw std::invalid_argument{"microbench: scale must be > 0"};
  }
  const auto n = static_cast<std::size_t>(std::llround(scale * static_cast<double>(base)));
  return n > 0 ? n : 1;
}

/// min-of-N wrapper: run `body()` `repeats` times, keep the fastest.
template <typename Body>
MicrobenchResult min_of(const std::string& bench, const std::string& unit,
                        std::size_t repeats, Body&& body) {
  MicrobenchResult r;
  r.bench = bench;
  r.unit = unit;
  r.repeats = repeats > 0 ? repeats : 1;
  for (std::uint64_t i = 0; i < r.repeats; ++i) {
    const std::uint64_t ns = body();
    if (i == 0 || ns < r.min_ns) r.min_ns = ns;
  }
  return r;
}

/// The parallel_for workload: a cheap but unelidable per-index transform.
/// Writing into `out` keeps the loop honest under -O2 without making the
/// bench memory-bound.
std::uint64_t time_parallel_for(const exec::ExecContext& ctx, std::size_t n,
                                std::vector<double>& out) {
  const Stopwatch sw;
  exec::parallel_for(ctx, 0, n, [&](std::size_t i) {
    const double x = static_cast<double>(i % 1024) * 1e-3;
    out[i] = x * x + 0.5 * x + 1.0;
  });
  return sw.elapsed_ns();
}

}  // namespace

std::vector<MicrobenchResult> run_exec_microbenches(
    const MicrobenchOptions& opts) {
  std::vector<MicrobenchResult> results;
  const std::size_t n = scaled(opts.scale, 200'000);
  const exec::ExecContext plain{opts.threads};
  std::vector<double> out(n, 0.0);

  // Untimed warmup: spin the global pool up and fault `out` in, so the
  // first timed row does not absorb one-time costs the later rows skip.
  (void)time_parallel_for(plain, n, out);

  results.push_back(min_of("exec.parallel_for", "ns", opts.repeats, [&] {
    return time_parallel_for(plain, n, out);
  }));

  // Same workload with every exec metric live on a local sink: the
  // difference against the row above is the measured overhead model.
  Sink sink;
  enable_selection(sink, "exec");
  exec::ExecContext instrumented{opts.threads};
  instrumented.metrics = &sink;
  results.push_back(
      min_of("exec.parallel_for_metrics", "ns", opts.repeats, [&] {
        return time_parallel_for(instrumented, n, out);
      }));

  // And with exec spans live on a local tracer: the tracing analogue of
  // the row above (region + per-chunk spans, two clock reads per chunk).
  trace::Tracer tracer;
  trace::enable_selection(tracer, "exec");
  exec::ExecContext traced{opts.threads};
  traced.tracer = &tracer;
  results.push_back(
      min_of("exec.parallel_for_trace", "ns", opts.repeats, [&] {
        tracer.reset();
        return time_parallel_for(traced, n, out);
      }));

  // Pool submit path, one task at a time vs one batched enqueue. A local
  // two-worker pool keeps the global pool's size untouched.
  const std::size_t tasks = scaled(opts.scale, 2'000);
  results.push_back(
      min_of("exec.pool_submit", "ns/task", opts.repeats, [&] {
        exec::ThreadPool pool{2};
        std::atomic<std::size_t> done{0};
        const Stopwatch sw;
        for (std::size_t i = 0; i < tasks; ++i) {
          pool.submit([&done] {
            done.fetch_add(1, std::memory_order_relaxed);
          });
        }
        while (done.load(std::memory_order_relaxed) < tasks) {
          std::this_thread::yield();
        }
        return sw.elapsed_ns() / tasks;
      }));

  results.push_back(
      min_of("exec.pool_submit_batched", "ns/task", opts.repeats, [&] {
        exec::ThreadPool pool{2};
        std::atomic<std::size_t> done{0};
        std::vector<std::function<void()>> batch;
        batch.reserve(tasks);
        for (std::size_t i = 0; i < tasks; ++i) {
          batch.push_back(
              [&done] { done.fetch_add(1, std::memory_order_relaxed); });
        }
        const Stopwatch sw;
        pool.submit_many(std::move(batch));
        while (done.load(std::memory_order_relaxed) < tasks) {
          std::this_thread::yield();
        }
        return sw.elapsed_ns() / tasks;
      }));

  return results;
}

std::vector<MicrobenchResult> run_campaign_microbenches(
    const MicrobenchOptions& opts, const std::string& scratch_dir) {
  std::vector<MicrobenchResult> results;
  const std::size_t tickets = scaled(opts.scale, 64);
  const fs::path dir =
      fs::path{scratch_dir} /
      ("varbench-bench-q" + std::to_string(campaign::current_process_id()));

  results.push_back(
      min_of("campaign.ticket_cycle", "ns/ticket", opts.repeats, [&] {
        fs::remove_all(dir);
        campaign::WorkQueue queue{dir.string()};
        const Stopwatch sw;
        for (std::size_t i = 0; i < tickets; ++i) {
          queue.enqueue(campaign::Ticket{"t" + std::to_string(i), 0, ""});
        }
        for (std::size_t i = 0; i < tickets; ++i) {
          auto ticket = queue.try_claim("bench");
          if (!ticket.has_value()) {
            throw std::runtime_error{"microbench: work queue lost a ticket"};
          }
          queue.complete(*ticket);
        }
        return sw.elapsed_ns() / tickets;
      }));

  results.push_back(
      min_of("campaign.heartbeat", "ns/beat", opts.repeats, [&] {
        fs::remove_all(dir);
        campaign::WorkQueue queue{dir.string()};
        queue.enqueue(campaign::Ticket{"hb", 0, ""});
        auto ticket = queue.try_claim("bench");
        if (!ticket.has_value()) {
          throw std::runtime_error{"microbench: work queue lost a ticket"};
        }
        const std::size_t beats = tickets * 4;  // mtime touches are fast —
                                                // average more of them
        const Stopwatch sw;
        for (std::size_t i = 0; i < beats; ++i) queue.heartbeat(*ticket);
        const std::uint64_t ns = sw.elapsed_ns() / beats;
        queue.complete(*ticket);
        return ns;
      }));

  fs::remove_all(dir);
  return results;
}

std::vector<MicrobenchResult> run_stats_microbenches(
    const MicrobenchOptions& opts) {
  std::vector<MicrobenchResult> results;
  const std::size_t n = scaled(opts.scale, 10'000);
  const std::size_t resamples = scaled(opts.scale, 200);
  const exec::ExecContext ctx{opts.threads};

  rngx::Rng data_rng{0x57A7B3};
  std::vector<double> x(n);
  for (double& v : x) v = data_rng.normal(1.0, 0.25);

  double sink_value = 0.0;  // keeps the interval computations unelidable

  // Untimed warmup: spin the pool up and lease the scratch buffers, so
  // the first timed repeat runs steady-state (zero-allocation) like the
  // rest.
  {
    rngx::Rng rng{1};
    sink_value += stats::bca_bootstrap_ci(ctx, x, stats::ResampleStat::kMean,
                                          rng, resamples)
                      .lower;
  }

  results.push_back(
      min_of("stats.bca_ci_mean_kernel", "ns", opts.repeats, [&] {
        rngx::Rng rng{1};
        const Stopwatch sw;
        const auto ci = stats::bca_bootstrap_ci(
            ctx, x, stats::ResampleStat::kMean, rng, resamples);
        const std::uint64_t ns = sw.elapsed_ns();
        sink_value += ci.lower + ci.upper;
        return ns;
      }));

  // The pre-kernel BCa hot loops, re-enacted: same streams, same fan-out,
  // same bits out — but every replicate materializes its resample and
  // every jackknife index materializes its leave-one-out copy, the
  // allocation and copy traffic the fused kernels deleted.
  std::vector<double> loo(n, 0.0);
  results.push_back(
      min_of("stats.bca_ci_mean_legacy", "ns", opts.repeats, [&] {
        rngx::Rng rng{1};
        const Stopwatch sw;
        const std::vector<double> statistics =
            exec::parallel_replicate<double>(
                ctx, resamples, rng, "bootstrap",
                [&](std::uint64_t, rngx::Rng& r) {
                  std::vector<double> resample(x.size());
                  for (double& v : resample) {
                    v = x[r.uniform_index(x.size())];
                  }
                  return stats::mean(resample);
                });
        exec::parallel_for(ctx, 0, n, [&](std::size_t i) {
          std::vector<double> rest(n - 1);
          for (std::size_t j = 0; j < i; ++j) rest[j] = x[j];
          for (std::size_t j = i + 1; j < n; ++j) rest[j - 1] = x[j];
          loo[i] = stats::mean(rest);
        });
        const std::uint64_t ns = sw.elapsed_ns();
        sink_value += statistics.front() + loo.front();
        return ns;
      }));

  if (sink_value == 0.123456789) {  // never true for this data; anchors sink_value
    std::fprintf(stderr, "microbench: improbable checksum\n");
  }
  return results;
}

double exec_metrics_overhead_percent(
    const std::vector<MicrobenchResult>& results) {
  const MicrobenchResult* off = nullptr;
  const MicrobenchResult* on = nullptr;
  for (const MicrobenchResult& r : results) {
    if (r.bench == "exec.parallel_for") off = &r;
    if (r.bench == "exec.parallel_for_metrics") on = &r;
  }
  if (off == nullptr || on == nullptr || off->min_ns == 0) return 0.0;
  return 100.0 *
         (static_cast<double>(on->min_ns) - static_cast<double>(off->min_ns)) /
         static_cast<double>(off->min_ns);
}

}  // namespace varbench::metrics

#include "src/metrics/microbench.h"

#include <atomic>
#include <cmath>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include "src/campaign/subprocess.h"
#include "src/campaign/work_queue.h"
#include "src/exec/parallel_for.h"
#include "src/exec/thread_pool.h"
#include "src/metrics/metrics.h"
#include "src/metrics/stopwatch.h"
#include "src/trace/trace.h"

namespace varbench::metrics {

namespace fs = std::filesystem;

namespace {

std::size_t scaled(double scale, std::size_t base) {
  if (scale <= 0.0) {
    throw std::invalid_argument{"microbench: scale must be > 0"};
  }
  const auto n = static_cast<std::size_t>(std::llround(scale * static_cast<double>(base)));
  return n > 0 ? n : 1;
}

/// min-of-N wrapper: run `body()` `repeats` times, keep the fastest.
template <typename Body>
MicrobenchResult min_of(const std::string& bench, const std::string& unit,
                        std::size_t repeats, Body&& body) {
  MicrobenchResult r;
  r.bench = bench;
  r.unit = unit;
  r.repeats = repeats > 0 ? repeats : 1;
  for (std::uint64_t i = 0; i < r.repeats; ++i) {
    const std::uint64_t ns = body();
    if (i == 0 || ns < r.min_ns) r.min_ns = ns;
  }
  return r;
}

/// The parallel_for workload: a cheap but unelidable per-index transform.
/// Writing into `out` keeps the loop honest under -O2 without making the
/// bench memory-bound.
std::uint64_t time_parallel_for(const exec::ExecContext& ctx, std::size_t n,
                                std::vector<double>& out) {
  const Stopwatch sw;
  exec::parallel_for(ctx, 0, n, [&](std::size_t i) {
    const double x = static_cast<double>(i % 1024) * 1e-3;
    out[i] = x * x + 0.5 * x + 1.0;
  });
  return sw.elapsed_ns();
}

}  // namespace

std::vector<MicrobenchResult> run_exec_microbenches(
    const MicrobenchOptions& opts) {
  std::vector<MicrobenchResult> results;
  const std::size_t n = scaled(opts.scale, 200'000);
  const exec::ExecContext plain{opts.threads};
  std::vector<double> out(n, 0.0);

  // Untimed warmup: spin the global pool up and fault `out` in, so the
  // first timed row does not absorb one-time costs the later rows skip.
  (void)time_parallel_for(plain, n, out);

  results.push_back(min_of("exec.parallel_for", "ns", opts.repeats, [&] {
    return time_parallel_for(plain, n, out);
  }));

  // Same workload with every exec metric live on a local sink: the
  // difference against the row above is the measured overhead model.
  Sink sink;
  enable_selection(sink, "exec");
  exec::ExecContext instrumented{opts.threads};
  instrumented.metrics = &sink;
  results.push_back(
      min_of("exec.parallel_for_metrics", "ns", opts.repeats, [&] {
        return time_parallel_for(instrumented, n, out);
      }));

  // And with exec spans live on a local tracer: the tracing analogue of
  // the row above (region + per-chunk spans, two clock reads per chunk).
  trace::Tracer tracer;
  trace::enable_selection(tracer, "exec");
  exec::ExecContext traced{opts.threads};
  traced.tracer = &tracer;
  results.push_back(
      min_of("exec.parallel_for_trace", "ns", opts.repeats, [&] {
        tracer.reset();
        return time_parallel_for(traced, n, out);
      }));

  // Pool submit path, one task at a time vs one batched enqueue. A local
  // two-worker pool keeps the global pool's size untouched.
  const std::size_t tasks = scaled(opts.scale, 2'000);
  results.push_back(
      min_of("exec.pool_submit", "ns/task", opts.repeats, [&] {
        exec::ThreadPool pool{2};
        std::atomic<std::size_t> done{0};
        const Stopwatch sw;
        for (std::size_t i = 0; i < tasks; ++i) {
          pool.submit([&done] {
            done.fetch_add(1, std::memory_order_relaxed);
          });
        }
        while (done.load(std::memory_order_relaxed) < tasks) {
          std::this_thread::yield();
        }
        return sw.elapsed_ns() / tasks;
      }));

  results.push_back(
      min_of("exec.pool_submit_batched", "ns/task", opts.repeats, [&] {
        exec::ThreadPool pool{2};
        std::atomic<std::size_t> done{0};
        std::vector<std::function<void()>> batch;
        batch.reserve(tasks);
        for (std::size_t i = 0; i < tasks; ++i) {
          batch.push_back(
              [&done] { done.fetch_add(1, std::memory_order_relaxed); });
        }
        const Stopwatch sw;
        pool.submit_many(std::move(batch));
        while (done.load(std::memory_order_relaxed) < tasks) {
          std::this_thread::yield();
        }
        return sw.elapsed_ns() / tasks;
      }));

  return results;
}

std::vector<MicrobenchResult> run_campaign_microbenches(
    const MicrobenchOptions& opts, const std::string& scratch_dir) {
  std::vector<MicrobenchResult> results;
  const std::size_t tickets = scaled(opts.scale, 64);
  const fs::path dir =
      fs::path{scratch_dir} /
      ("varbench-bench-q" + std::to_string(campaign::current_process_id()));

  results.push_back(
      min_of("campaign.ticket_cycle", "ns/ticket", opts.repeats, [&] {
        fs::remove_all(dir);
        campaign::WorkQueue queue{dir.string()};
        const Stopwatch sw;
        for (std::size_t i = 0; i < tickets; ++i) {
          queue.enqueue(campaign::Ticket{"t" + std::to_string(i), 0, ""});
        }
        for (std::size_t i = 0; i < tickets; ++i) {
          auto ticket = queue.try_claim("bench");
          if (!ticket.has_value()) {
            throw std::runtime_error{"microbench: work queue lost a ticket"};
          }
          queue.complete(*ticket);
        }
        return sw.elapsed_ns() / tickets;
      }));

  results.push_back(
      min_of("campaign.heartbeat", "ns/beat", opts.repeats, [&] {
        fs::remove_all(dir);
        campaign::WorkQueue queue{dir.string()};
        queue.enqueue(campaign::Ticket{"hb", 0, ""});
        auto ticket = queue.try_claim("bench");
        if (!ticket.has_value()) {
          throw std::runtime_error{"microbench: work queue lost a ticket"};
        }
        const std::size_t beats = tickets * 4;  // mtime touches are fast —
                                                // average more of them
        const Stopwatch sw;
        for (std::size_t i = 0; i < beats; ++i) queue.heartbeat(*ticket);
        const std::uint64_t ns = sw.elapsed_ns() / beats;
        queue.complete(*ticket);
        return ns;
      }));

  fs::remove_all(dir);
  return results;
}

double exec_metrics_overhead_percent(
    const std::vector<MicrobenchResult>& results) {
  const MicrobenchResult* off = nullptr;
  const MicrobenchResult* on = nullptr;
  for (const MicrobenchResult& r : results) {
    if (r.bench == "exec.parallel_for") off = &r;
    if (r.bench == "exec.parallel_for_metrics") on = &r;
  }
  if (off == nullptr || on == nullptr || off->min_ns == 0) return 0.0;
  return 100.0 *
         (static_cast<double>(on->min_ns) - static_cast<double>(off->min_ns)) /
         static_cast<double>(off->min_ns);
}

}  // namespace varbench::metrics

// Metrics-as-data: export a Sink snapshot as a canonical study::ResultTable
// so `varbench report` renders metrics with the exact estimator/CI
// machinery used for study artifacts (one row per metric, "seq" first so
// merge/report treat it like any other table), plus the registry
// introspection payload behind `varbench metrics --list --json`.
#pragma once

#include <string>

#include "src/io/json.h"
#include "src/metrics/metrics.h"
#include "src/study/result_table.h"

namespace varbench::metrics {

/// One row per snapshot entry, id order. Columns: seq, metric, subsystem,
/// kind, unit, count, sum, mean, p50, p90, p99 (percentiles are integer
/// log2-bin upper bounds; 0 for counters). The table is spec-less (bench
/// provenance, not a study) but schema-valid: it saves, loads, merges and
/// reports like any artifact.
[[nodiscard]] study::ResultTable to_result_table(const Snapshot& snapshot,
                                                 std::string name = "metrics");

/// The registry as a JSON array (id order): one object per metric with
/// {"id", "name", "subsystem", "kind", "unit", "help"}. Callers wrap it in
/// the CLI's {"tool", "version", ...} envelope.
[[nodiscard]] io::Json registry_json();

/// Human-readable registry table (the `varbench metrics --list` body).
[[nodiscard]] std::string registry_text();

}  // namespace varbench::metrics

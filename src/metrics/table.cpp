#include "src/metrics/table.h"

#include <cstdio>
#include <utility>

namespace varbench::metrics {

study::ResultTable to_result_table(const Snapshot& snapshot,
                                   std::string name) {
  study::ResultTable table;
  table.name = std::move(name);
  table.columns = {"seq",  "metric", "subsystem", "kind", "unit", "count",
                   "sum",  "mean",   "p50",       "p90",  "p99"};
  const auto& defs = metric_defs();
  std::uint64_t seq = 0;
  for (const MetricSnapshot& m : snapshot.metrics) {
    const MetricDef& def = defs[m.id];
    const bool binned = def.kind != MetricKind::kCounter;
    study::Row row;
    row.reserve(table.columns.size());
    row.push_back(io::Json{seq++});
    row.push_back(io::Json{def.name});
    row.push_back(io::Json{def.subsystem});
    row.push_back(io::Json{std::string{kind_name(def.kind)}});
    row.push_back(io::Json{def.unit});
    row.push_back(io::Json{m.count});
    row.push_back(io::Json{m.sum});
    row.push_back(io::Json{m.mean()});
    row.push_back(io::Json{binned ? m.percentile_upper(0.50) : 0});
    row.push_back(io::Json{binned ? m.percentile_upper(0.90) : 0});
    row.push_back(io::Json{binned ? m.percentile_upper(0.99) : 0});
    table.add_row(std::move(row));
  }
  return table;
}

io::Json registry_json() {
  io::Json items = io::Json::array();
  const auto& defs = metric_defs();
  for (std::size_t i = 0; i < defs.size(); ++i) {
    io::Json item = io::Json::object();
    item.set("id", static_cast<std::uint64_t>(i));
    item.set("name", defs[i].name);
    item.set("subsystem", defs[i].subsystem);
    item.set("kind", std::string{kind_name(defs[i].kind)});
    item.set("unit", defs[i].unit);
    item.set("help", defs[i].help);
    items.push_back(std::move(item));
  }
  return items;
}

std::string registry_text() {
  std::string out = "registered metrics (id order is stable; append-only):\n";
  const auto& defs = metric_defs();
  for (std::size_t i = 0; i < defs.size(); ++i) {
    char line[256];
    std::snprintf(line, sizeof(line), "  %3zu  %-28s %-9s %-9s %s\n", i,
                  defs[i].name.c_str(), kind_name(defs[i].kind).data(),
                  defs[i].unit.c_str(), defs[i].help.c_str());
    out += line;
  }
  return out;
}

}  // namespace varbench::metrics

// Perf trajectory files + the CI regression gate (ROADMAP item 3: make
// "makes a hot path measurably faster" enforceable, not anecdotal).
//
// A trajectory file (bench/BENCH_exec.json, bench/BENCH_campaign.json) is
// an append-only log of min-of-N microbench timings:
//   {"schema": "varbench.bench_trajectory.v1",
//    "rows": [{"bench", "unit", "min_ns", "repeats", "version", "label"}]}
// Each `tools/bench_gate` (or `varbench bench`) run appends one row per
// microbench. The gate compares the fresh min-of-N against the BEST prior
// min for the same bench name: min-of-N already strips scheduler noise,
// and comparing against the historical best means a slow machine can only
// add new (higher) rows, never loosen the baseline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace varbench::metrics {

struct TrajectoryRow {
  std::string bench;   // "exec.parallel_for", "campaign.ticket_cycle", ...
  std::string unit;    // what min_ns measures, e.g. "ns/task"
  std::uint64_t min_ns = 0;   // min over `repeats` runs
  std::uint64_t repeats = 0;
  std::string version;  // kVersion at record time
  std::string label;    // free-form context ("ci", "local", scale=...)
};

class Trajectory {
 public:
  /// Parse `path`; a missing file is an empty trajectory (first run), any
  /// other failure (malformed JSON, wrong schema) is an io::JsonError
  /// naming the path.
  [[nodiscard]] static Trajectory load(const std::string& path);

  void append(const TrajectoryRow& row) { rows_.push_back(row); }

  /// Canonical serialization (schema + rows, insertion order).
  [[nodiscard]] std::string to_json_text() const;
  void save(const std::string& path) const;

  [[nodiscard]] const std::vector<TrajectoryRow>& rows() const {
    return rows_;
  }

  /// Best (minimum) prior min_ns for `bench`; 0 when the bench has no
  /// history yet (first runs always pass the gate).
  [[nodiscard]] std::uint64_t best_ns(const std::string& bench) const;

 private:
  std::vector<TrajectoryRow> rows_;
};

/// One gate verdict per fresh row.
struct GateCheck {
  TrajectoryRow row;
  std::uint64_t best_ns = 0;  // historical best (0 = no history)
  double ratio = 1.0;         // row.min_ns / best_ns (1.0 when no history)
  bool regressed = false;
};

/// Compare fresh rows against `prior`. A row regresses when its min-of-N
/// exceeds the historical best by more than `threshold` (default 1.5×, the
/// noise band for min-of-N on shared CI runners) AND by at least
/// `min_abs_ns` (microsecond-scale filesystem/scheduler jitter on
/// trivially fast benches is not a regression — a real hot-path slowdown
/// moves tens of microseconds).
[[nodiscard]] std::vector<GateCheck> gate_checks(
    const Trajectory& prior, const std::vector<TrajectoryRow>& fresh,
    double threshold = 1.5, std::uint64_t min_abs_ns = 5'000);

}  // namespace varbench::metrics

// Zero-overhead metrics registry (ROADMAP item 3, in the style of
// dismec++'s stats collection).
//
// Design contract (docs/metrics.md):
//   - Metrics are registered at compile time in VARBENCH_BUILTIN_METRICS;
//     a metric's id is its index in that list, so ids are small dense
//     integers that are stable across runs and builds (append-only list).
//   - `Sink::is_enabled(id)` is an inlined lookup into a flat byte vector:
//     a disabled metric costs ~one predictable branch, no locks, no clock
//     reads, no allocation. Everything expensive — clock reads
//     (ScopedTimer), derived values (observe_lazy) — sits behind that
//     branch.
//   - Recording goes to per-thread shards of relaxed atomic u64 cells.
//     Because every cell is an integer accumulator (count / sum / log2
//     histogram bins) and integer addition commutes, `snapshot()` merges
//     shards deterministically: the same multiset of events yields the
//     same snapshot regardless of thread count or interleaving. Enabling
//     metrics therefore never perturbs result bytes — metrics are pure
//     provenance, never identity (docs/determinism.md).
//
// This header is io-free and exec-free so that ExecContext can include it.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace varbench::metrics {

using MetricId = std::uint32_t;

enum class MetricKind : std::uint8_t {
  kCounter,    // monotonic sum of deltas (count = number of increments)
  kTimer,      // nanosecond durations, histogrammed
  kHistogram,  // arbitrary non-negative integer values, histogrammed
};

[[nodiscard]] std::string_view kind_name(MetricKind kind);

struct MetricDef {
  std::string name;       // "exec.queue_wait_ns" — "<subsystem>.<metric>"
  std::string subsystem;  // "exec" | "campaign" | "io" | ...
  std::string unit;       // "ns", "count", "bytes", "indices", "threads"
  MetricKind kind = MetricKind::kCounter;
  std::string help;
};

// The compile-time metric list. Ids are indices into this list; append
// only — never reorder or remove — so ids stay stable across versions.
// X(symbol, name, subsystem, unit, kind, help)
#define VARBENCH_BUILTIN_METRICS(X)                                          \
  X(ExecRegions, "exec.parallel_regions", "exec", "count", kCounter,         \
    "parallel_for regions that actually fanned out to the pool")             \
  X(ExecTasksSubmitted, "exec.tasks_submitted", "exec", "count", kCounter,   \
    "helper tasks enqueued on the global ThreadPool")                        \
  X(ExecChunks, "exec.chunks", "exec", "count", kCounter,                    \
    "self-scheduled chunks claimed across all parallel_for regions")         \
  X(ExecChunkSize, "exec.chunk_size", "exec", "indices", kHistogram,         \
    "indices per claimed chunk (the effective grain)")                       \
  X(ExecChunkRunNs, "exec.chunk_run_ns", "exec", "ns", kTimer,               \
    "wall time spent running one chunk's body calls")                        \
  X(ExecQueueWaitNs, "exec.queue_wait_ns", "exec", "ns", kTimer,             \
    "submit-to-start latency of pool helper tasks")                          \
  X(ExecRegionThreads, "exec.region_threads", "exec", "threads", kHistogram, \
    "resolved worker count per parallel region (pool utilization)")          \
  X(CampaignClaimToStartNs, "campaign.claim_to_start_ns", "campaign", "ns",  \
    kTimer, "ticket claim to worker launch latency per task")                \
  X(CampaignTaskRetries, "campaign.task_retries", "campaign", "count",       \
    kCounter, "failed attempts that were requeued for retry")                \
  X(CampaignHeartbeatJitterNs, "campaign.heartbeat_jitter_ns", "campaign",   \
    "ns", kTimer,                                                            \
    "absolute deviation of the reap loop period from poll_interval")         \
  X(CampaignTasksLaunched, "campaign.tasks_launched", "campaign", "count",   \
    kCounter, "worker launches, including retries")                          \
  X(IoBytesMapped, "io.vbt_bytes_mapped", "io", "bytes", kCounter,           \
    "bytes of VBT1 artifacts mapped (or buffered) by MappedTable::open")     \
  X(IoTablesMapped, "io.vbt_tables_mapped", "io", "count", kCounter,         \
    "VBT1 artifacts opened")                                                 \
  X(IoMaterializeNs, "io.vbt_materialize_ns", "io", "ns", kTimer,            \
    "wall time of full VBT1-to-ResultTable materialization")                 \
  X(RngxStreamsDerived, "rngx.streams_derived", "rngx", "count", kCounter,   \
    "Rng streams created — constructions, reseeds, and tag splits")          \
  X(RngxDraws, "rngx.draws", "rngx", "count", kCounter,                      \
    "raw 64-bit draws from the xoshiro core (every distribution bottoms "    \
    "out here)")                                                             \
  X(StatsResamples, "stats.resamples", "stats", "count", kCounter,           \
    "bootstrap resamples and permutation replicates evaluated by the "       \
    "fused resampling kernels")                                              \
  X(IoStreamChunks, "io.stream_chunks", "io", "count", kCounter,             \
    "row-group chunks flushed by the streaming VBT writer")

enum : MetricId {
#define VARBENCH_METRIC_ENUM(sym, name, subsystem, unit, kind, help) k##sym,
  VARBENCH_BUILTIN_METRICS(VARBENCH_METRIC_ENUM)
#undef VARBENCH_METRIC_ENUM
      kNumBuiltinMetrics
};

/// All registered metrics, id order: the builtin list above plus any
/// runtime `register_metric` extensions. Thread-safe snapshot-by-copy is
/// not needed — registration happens at startup, reads are id-indexed.
[[nodiscard]] const std::vector<MetricDef>& metric_defs();

[[nodiscard]] std::size_t num_metrics();

/// Id for `name`; throws std::invalid_argument for unknown names.
[[nodiscard]] MetricId metric_id(std::string_view name);

/// Register an extension metric (tests, out-of-tree subsystems). The new
/// id is `num_metrics() - 1` at return. Throws std::invalid_argument on a
/// name collision with any existing metric — ids must stay unambiguous.
/// Sinks constructed before the call do not track the new metric.
MetricId register_metric(MetricDef def);

/// Histogram geometry: integer log2 bins. Bin 0 holds value 0; bin i>=1
/// holds [2^(i-1), 2^i). Integer bin edges are part of the deterministic
/// merge contract — no floating-point bucketing.
inline constexpr std::size_t kNumBins = 64;

[[nodiscard]] constexpr std::size_t bin_index(std::uint64_t value) {
  const std::size_t w = static_cast<std::size_t>(std::bit_width(value));
  return w < kNumBins ? w : kNumBins - 1;
}

/// Inclusive upper bound of bin `i` (the value reported for percentiles).
[[nodiscard]] constexpr std::uint64_t bin_upper(std::size_t i) {
  if (i == 0) return 0;
  if (i >= kNumBins - 1) return ~std::uint64_t{0};
  return (std::uint64_t{1} << i) - 1;
}

/// Deterministically merged totals for one metric.
struct MetricSnapshot {
  MetricId id = 0;
  std::uint64_t count = 0;  // events recorded
  std::uint64_t sum = 0;    // sum of recorded values / counter deltas
  std::array<std::uint64_t, kNumBins> bins{};  // timers/histograms only

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Upper bound of the bin containing the p-quantile (p in [0, 1]).
  /// Integer-exact: no interpolation, so snapshots merge/compare bytewise.
  [[nodiscard]] std::uint64_t percentile_upper(double p) const;
};

/// One enabled-metric-per-entry view of a Sink, fixed id order.
struct Snapshot {
  std::vector<MetricSnapshot> metrics;

  [[nodiscard]] const MetricSnapshot* find(MetricId id) const;
  [[nodiscard]] bool empty() const { return metrics.empty(); }
};

/// A metrics sink: the object recording code talks to. Default state is
/// all-disabled, in which every record call is a branch on a byte load.
///
/// Thread model: add/observe/record are safe from any thread (relaxed
/// atomics on per-thread-slot shards); enable/disable/reset/snapshot are
/// coordinator-side operations and must not race with recorders.
class Sink {
 public:
  Sink();
  ~Sink();
  Sink(const Sink&) = delete;
  Sink& operator=(const Sink&) = delete;

  /// Hot-path gate. Inlined: bounds check + byte load.
  [[nodiscard]] bool is_enabled(MetricId id) const {
    return id < enabled_.size() && enabled_[id] != 0;
  }

  [[nodiscard]] bool any_enabled() const { return num_enabled_ > 0; }

  void enable(MetricId id);
  void disable(MetricId id);
  void enable_all();
  void disable_all();

  /// Counter increment: sum += delta, count += 1. No-op when disabled.
  void add(MetricId id, std::uint64_t delta = 1) {
    if (!is_enabled(id)) return;
    record(id, delta);
  }

  /// Histogram/timer observation: sum += value, count += 1,
  /// bins[bin_index(value)] += 1. No-op when disabled.
  void observe(MetricId id, std::uint64_t value) {
    if (!is_enabled(id)) return;
    record(id, value);
  }

  /// Defer an expensive-to-compute value behind the enabled check: `fn`
  /// is only invoked when the metric is live.
  template <typename Fn>
  void observe_lazy(MetricId id, Fn&& fn) {
    if (!is_enabled(id)) return;
    record(id, static_cast<std::uint64_t>(std::forward<Fn>(fn)()));
  }

  /// Merge all shards, fixed id order. Only enabled metrics appear (with
  /// zero counts if nothing was recorded). Deterministic for a given
  /// multiset of recorded events, independent of thread count.
  [[nodiscard]] Snapshot snapshot() const;

  /// Zero every cell (enabled set is kept).
  void reset();

  /// Shards allocated so far — 0 until the first enabled-metric record
  /// from some thread slot. Exposed so tests can pin the disabled path's
  /// zero-allocation guarantee.
  [[nodiscard]] std::size_t allocated_shards() const;

 private:
  // Threads hash onto kShardSlots slots; two threads sharing a slot is
  // correct (atomic adds), just contended.
  static constexpr std::size_t kShardSlots = 16;
  static constexpr std::size_t kCellsPerMetric = 2 + kNumBins;  // count, sum, bins

  struct Shard {
    explicit Shard(std::size_t num_cells)
        : cells(new std::atomic<std::uint64_t>[num_cells]{}) {}
    std::unique_ptr<std::atomic<std::uint64_t>[]> cells;
  };

  void record(MetricId id, std::uint64_t value);
  [[nodiscard]] Shard& shard_for_this_thread();

  std::vector<std::uint8_t> enabled_;
  std::size_t num_enabled_ = 0;
  std::array<std::atomic<Shard*>, kShardSlots> shards_{};
};

/// The process-wide default sink (all metrics disabled until a CLI flag
/// or test enables them). ExecContext falls back to it when no explicit
/// sink is attached.
[[nodiscard]] Sink& global_sink();

/// Enable a comma-separated selection on `sink`: "all", "none", a
/// subsystem ("exec"), or a full metric name ("exec.queue_wait_ns").
/// Throws std::invalid_argument for selectors matching nothing.
void enable_selection(Sink& sink, std::string_view selection);

}  // namespace varbench::metrics

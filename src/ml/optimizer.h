// First-order optimizers: SGD with momentum / weight decay / exponential LR
// decay (the CIFAR-VGG11 recipe, paper Table 2) and Adam (the BERT recipe,
// Table 3).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/ml/mlp.h"

namespace varbench::ml {

struct OptimizerConfig {
  double learning_rate = 0.01;
  double weight_decay = 0.0;  // L2 penalty, applied to weights only
  double momentum = 0.0;      // SGD only
  double lr_gamma = 1.0;      // per-epoch exponential decay factor
  double adam_beta1 = 0.9;    // Adam only
  double adam_beta2 = 0.999;  // Adam only
};

/// Serializable optimizer state: moment/velocity buffers + schedule
/// position. Checkpointing this (plus model weights and RNG states) makes
/// training resumable bit-exactly — the paper's Appendix A requirement.
struct OptimizerState {
  std::vector<std::vector<double>> buffers;  // meaning is optimizer-specific
  double lr_scale = 1.0;
  std::size_t step_count = 0;
};

/// Abstract per-model optimizer. step() consumes one batch's gradients.
class Optimizer {
 public:
  explicit Optimizer(OptimizerConfig config) : config_{config} {}
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Apply one update to the model from gradients `g`.
  virtual void step(Mlp& model, const Gradients& g) = 0;

  [[nodiscard]] virtual OptimizerState save_state() const = 0;
  virtual void load_state(const OptimizerState& state) = 0;

  /// Called once per epoch: applies the exponential LR schedule.
  void end_epoch() { lr_scale_ *= config_.lr_gamma; }

  [[nodiscard]] double current_lr() const {
    return config_.learning_rate * lr_scale_;
  }
  [[nodiscard]] const OptimizerConfig& config() const noexcept {
    return config_;
  }

 protected:
  OptimizerConfig config_;
  double lr_scale_ = 1.0;
};

class SgdOptimizer final : public Optimizer {
 public:
  explicit SgdOptimizer(OptimizerConfig config) : Optimizer{config} {}
  void step(Mlp& model, const Gradients& g) override;
  [[nodiscard]] OptimizerState save_state() const override;
  void load_state(const OptimizerState& state) override;

 private:
  std::vector<std::vector<double>> weight_velocity_;
  std::vector<std::vector<double>> bias_velocity_;
};

class AdamOptimizer final : public Optimizer {
 public:
  explicit AdamOptimizer(OptimizerConfig config) : Optimizer{config} {}
  void step(Mlp& model, const Gradients& g) override;
  [[nodiscard]] OptimizerState save_state() const override;
  void load_state(const OptimizerState& state) override;

 private:
  std::vector<std::vector<double>> m_w_, v_w_, m_b_, v_b_;
  std::size_t t_ = 0;
};

}  // namespace varbench::ml

// Synthetic dataset generators — the stand-ins for the paper's CIFAR10 /
// Glue / PascalVOC / MHC data (see DESIGN.md §2 for the substitution map).
// A generator draws a finite dataset S ~ D^n from a known distribution D,
// so data-sampling variance can also be verified against ground truth.
#pragma once

#include "src/ml/dataset.h"
#include "src/rngx/rng.h"

namespace varbench::ml {

/// Gaussian-mixture classification: one spherical Gaussian per class with
/// means spread on a sphere of radius `class_sep`. `class_probs` may be
/// empty (balanced) or give per-class sampling weights (imbalanced tasks).
struct GaussianMixtureConfig {
  std::size_t num_classes = 2;
  std::size_t dim = 16;
  std::size_t n = 1000;
  double class_sep = 2.0;    // distance scale between class means
  double within_std = 1.0;   // within-class standard deviation
  std::vector<double> class_probs;  // empty → balanced
  // Fraction of labels flipped to a random other class — the irreducible
  // Bayes-error knob that keeps accuracies away from 100%.
  double label_noise = 0.0;
};

[[nodiscard]] Dataset make_gaussian_mixture(const GaussianMixtureConfig& config,
                                            rngx::Rng& rng);

/// Regression from a random shallow-MLP teacher, targets squashed to [0, 1]
/// via a logistic — the normalized-binding-affinity analogue (MHC task).
struct RegressionTeacherConfig {
  std::size_t dim = 24;
  std::size_t n = 2000;
  std::size_t teacher_hidden = 16;
  double noise_std = 0.05;  // additive observation noise on targets
  std::uint64_t teacher_seed = 0xABCD1234u;  // fixed: the "true" mechanism
};

[[nodiscard]] Dataset make_regression_teacher(
    const RegressionTeacherConfig& config, rngx::Rng& rng);

/// "Two informative bands" binary text-like task: sparse non-negative
/// bag-of-features counts whose class signal lives in a small subset of
/// features (SST-2/RTE analogue).
struct SparseBinaryConfig {
  std::size_t dim = 64;
  std::size_t n = 2000;
  std::size_t informative = 8;  // features carrying the class signal
  double signal = 1.0;          // mean shift of informative features
  double density = 0.25;        // probability a feature is non-zero
  double label_noise = 0.05;
};

[[nodiscard]] Dataset make_sparse_binary(const SparseBinaryConfig& config,
                                         rngx::Rng& rng);

}  // namespace varbench::ml

// Multi-layer perceptron with ReLU hidden layers, optional dropout and an
// optionally frozen first layer (the "pretrained backbone" analogue used by
// the BERT/ResNet case studies). Forward/backward are hand-rolled on the
// Matrix substrate; no autograd.
#pragma once

#include <cstddef>
#include <vector>

#include "src/math/matrix.h"
#include "src/ml/init.h"
#include "src/rngx/rng.h"

namespace varbench::ml {

struct MlpConfig {
  // input_dim/output_dim of 0 mean "derive from the dataset" (train_mlp
  // fills them in); Mlp's constructor requires both to be resolved.
  std::size_t input_dim = 0;
  std::vector<std::size_t> hidden;  // hidden layer widths (may be empty)
  std::size_t output_dim = 0;
  double dropout = 0.0;  // drop probability after each hidden activation
  InitScheme init = InitScheme::kGlorotUniform;
  double init_sigma = 0.2;  // used by InitScheme::kNormalScaled
  // When true, the first layer is a fixed random projection that receives no
  // gradient — the frozen-encoder analogue of fine-tuning only a head.
  bool freeze_first_layer = false;
};

/// Per-batch cache of forward activations needed by backward().
struct ForwardCache {
  std::vector<math::Matrix> inputs;  // input to each layer (post-activation)
  std::vector<math::Matrix> pre;     // pre-activation of each layer
  std::vector<math::Matrix> dropout_mask;  // empty when not training
};

struct Gradients {
  std::vector<math::Matrix> weights;
  std::vector<std::vector<double>> biases;
};

class Mlp {
 public:
  /// Weights are drawn from `init_rng` (the ξO weight-init stream);
  /// a frozen first layer is drawn from a fixed internal stream so it is
  /// identical across reruns, like a shared pretrained checkpoint.
  Mlp(MlpConfig config, rngx::Rng& init_rng);

  [[nodiscard]] const MlpConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t num_layers() const noexcept {
    return weights_.size();
  }
  [[nodiscard]] std::size_t num_parameters() const noexcept;

  [[nodiscard]] std::vector<math::Matrix>& weights() noexcept {
    return weights_;
  }
  [[nodiscard]] const std::vector<math::Matrix>& weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] std::vector<std::vector<double>>& biases() noexcept {
    return biases_;
  }
  [[nodiscard]] const std::vector<std::vector<double>>& biases()
      const noexcept {
    return biases_;
  }

  /// True when layer `i` receives gradient updates.
  [[nodiscard]] bool layer_trainable(std::size_t i) const {
    return !(config_.freeze_first_layer && i == 0);
  }

  /// Inference forward pass (no dropout): batch (B×in) → logits (B×out).
  [[nodiscard]] math::Matrix forward(const math::Matrix& batch) const;

  /// Training forward pass; dropout masks drawn from `dropout_rng`
  /// (the ξO dropout stream). Fills `cache` for backward().
  [[nodiscard]] math::Matrix forward_train(const math::Matrix& batch,
                                           rngx::Rng& dropout_rng,
                                           ForwardCache& cache) const;

  /// Backpropagate d(loss)/d(logits) through the cached forward pass.
  [[nodiscard]] Gradients backward(const ForwardCache& cache,
                                   const math::Matrix& grad_logits) const;

 private:
  MlpConfig config_;
  std::vector<math::Matrix> weights_;          // layer i: (out_i × in_i)
  std::vector<std::vector<double>> biases_;    // layer i: (out_i)
};

/// Softmax cross-entropy over logits (B×C) with integer labels.
/// Returns mean loss; writes d(loss)/d(logits) into `grad` (B×C).
[[nodiscard]] double softmax_cross_entropy(const math::Matrix& logits,
                                           std::span<const double> labels,
                                           math::Matrix& grad);

/// Mean squared error over predictions (B×1). Writes gradient into `grad`.
[[nodiscard]] double mse_loss(const math::Matrix& pred,
                              std::span<const double> targets,
                              math::Matrix& grad);

/// Row-wise softmax probabilities of logits.
[[nodiscard]] math::Matrix softmax(const math::Matrix& logits);

}  // namespace varbench::ml

// The training procedure Opt(S_t, λ; ξO) of the paper's §2.1: mini-batch
// gradient descent over an MLP, with every stochastic ingredient (weight
// init, data order, dropout masks, augmentation) driven by its own named
// seed stream from VariationSeeds.
#pragma once

#include "src/ml/augment.h"
#include "src/ml/dataset.h"
#include "src/ml/mlp.h"
#include "src/ml/optimizer.h"
#include "src/rngx/variation.h"

namespace varbench::ml {

enum class LossKind : int { kSoftmaxCrossEntropy, kMse };
enum class OptimizerKind : int { kSgd, kAdam };

struct TrainConfig {
  MlpConfig model;  // input_dim/output_dim of 0 are filled from the dataset
  OptimizerConfig opt;
  OptimizerKind optimizer = OptimizerKind::kSgd;
  LossKind loss = LossKind::kSoftmaxCrossEntropy;
  std::size_t epochs = 20;
  std::size_t batch_size = 32;
  AugmentConfig augment;
  // Unseeded perturbation applied to the final weights, reproducing the
  // paper's "numerical noise" case (their segmentation pipeline was not
  // perfectly reproducible; Appendix A). Driven by a process-global counter,
  // so two runs with identical seeds still differ when this is > 0.
  double numerical_noise_std = 0.0;
};

/// Train an MLP on `train` with hyperparameter-resolved `config`.
/// ξO seeds consumed: weight_init, data_order, dropout, data_augment.
[[nodiscard]] Mlp train_mlp(const Dataset& train, const TrainConfig& config,
                            const rngx::VariationSeeds& seeds);

/// Mean training loss of a model over a dataset (diagnostic).
[[nodiscard]] double mean_loss(const Mlp& model, const Dataset& data,
                               LossKind loss);

}  // namespace varbench::ml

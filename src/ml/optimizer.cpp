#include "src/ml/optimizer.h"

#include <cmath>

namespace varbench::ml {

namespace {

void ensure_state(std::vector<std::vector<double>>& state, std::size_t layers,
                  const std::vector<math::Matrix>& shapes) {
  if (state.size() == layers) return;
  state.resize(layers);
  for (std::size_t i = 0; i < layers; ++i) {
    state[i].assign(shapes[i].size(), 0.0);
  }
}

void ensure_bias_state(std::vector<std::vector<double>>& state,
                       std::size_t layers,
                       const std::vector<std::vector<double>>& shapes) {
  if (state.size() == layers) return;
  state.resize(layers);
  for (std::size_t i = 0; i < layers; ++i) {
    state[i].assign(shapes[i].size(), 0.0);
  }
}

}  // namespace

void SgdOptimizer::step(Mlp& model, const Gradients& g) {
  const std::size_t L = model.num_layers();
  ensure_state(weight_velocity_, L, model.weights());
  ensure_bias_state(bias_velocity_, L, model.biases());
  const double lr = current_lr();
  for (std::size_t i = 0; i < L; ++i) {
    if (!model.layer_trainable(i)) continue;
    auto w = model.weights()[i].data();
    const auto gw = g.weights[i].data();
    auto& vel = weight_velocity_[i];
    for (std::size_t j = 0; j < w.size(); ++j) {
      const double grad = gw[j] + config_.weight_decay * w[j];
      vel[j] = config_.momentum * vel[j] + grad;
      w[j] -= lr * vel[j];
    }
    auto& b = model.biases()[i];
    const auto& gb = g.biases[i];
    auto& bvel = bias_velocity_[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      bvel[j] = config_.momentum * bvel[j] + gb[j];
      b[j] -= lr * bvel[j];
    }
  }
}

OptimizerState SgdOptimizer::save_state() const {
  OptimizerState s;
  s.buffers = weight_velocity_;
  s.buffers.insert(s.buffers.end(), bias_velocity_.begin(),
                   bias_velocity_.end());
  s.lr_scale = lr_scale_;
  s.step_count = 0;
  return s;
}

void SgdOptimizer::load_state(const OptimizerState& state) {
  const std::size_t half = state.buffers.size() / 2;
  weight_velocity_.assign(state.buffers.begin(), state.buffers.begin() + half);
  bias_velocity_.assign(state.buffers.begin() + half, state.buffers.end());
  lr_scale_ = state.lr_scale;
}

void AdamOptimizer::step(Mlp& model, const Gradients& g) {
  const std::size_t L = model.num_layers();
  ensure_state(m_w_, L, model.weights());
  ensure_state(v_w_, L, model.weights());
  ensure_bias_state(m_b_, L, model.biases());
  ensure_bias_state(v_b_, L, model.biases());
  ++t_;
  const double lr = current_lr();
  const double b1 = config_.adam_beta1;
  const double b2 = config_.adam_beta2;
  const double bc1 = 1.0 - std::pow(b1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(b2, static_cast<double>(t_));
  constexpr double kEps = 1e-8;
  for (std::size_t i = 0; i < L; ++i) {
    if (!model.layer_trainable(i)) continue;
    auto w = model.weights()[i].data();
    const auto gw = g.weights[i].data();
    for (std::size_t j = 0; j < w.size(); ++j) {
      const double grad = gw[j] + config_.weight_decay * w[j];
      m_w_[i][j] = b1 * m_w_[i][j] + (1.0 - b1) * grad;
      v_w_[i][j] = b2 * v_w_[i][j] + (1.0 - b2) * grad * grad;
      w[j] -= lr * (m_w_[i][j] / bc1) / (std::sqrt(v_w_[i][j] / bc2) + kEps);
    }
    auto& b = model.biases()[i];
    const auto& gb = g.biases[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      m_b_[i][j] = b1 * m_b_[i][j] + (1.0 - b1) * gb[j];
      v_b_[i][j] = b2 * v_b_[i][j] + (1.0 - b2) * gb[j] * gb[j];
      b[j] -= lr * (m_b_[i][j] / bc1) / (std::sqrt(v_b_[i][j] / bc2) + kEps);
    }
  }
}

OptimizerState AdamOptimizer::save_state() const {
  OptimizerState s;
  for (const auto* bank : {&m_w_, &v_w_, &m_b_, &v_b_}) {
    s.buffers.insert(s.buffers.end(), bank->begin(), bank->end());
  }
  s.lr_scale = lr_scale_;
  s.step_count = t_;
  return s;
}

void AdamOptimizer::load_state(const OptimizerState& state) {
  const std::size_t quarter = state.buffers.size() / 4;
  auto it = state.buffers.begin();
  m_w_.assign(it, it + quarter);
  it += quarter;
  v_w_.assign(it, it + quarter);
  it += quarter;
  m_b_.assign(it, it + quarter);
  it += quarter;
  v_b_.assign(it, state.buffers.end());
  lr_scale_ = state.lr_scale;
  t_ = state.step_count;
}

}  // namespace varbench::ml

#include "src/ml/trainer.h"

#include <numeric>
#include <stdexcept>

namespace varbench::ml {

namespace {

MlpConfig resolve_model_config(const Dataset& train, MlpConfig cfg,
                               LossKind loss) {
  if (cfg.input_dim == 0) cfg.input_dim = train.dim();
  if (cfg.output_dim == 0) {
    cfg.output_dim =
        train.kind == TaskKind::kClassification ? train.num_classes : 1;
  }
  if (loss == LossKind::kSoftmaxCrossEntropy &&
      train.kind != TaskKind::kClassification) {
    throw std::invalid_argument("Trainer: CE loss needs classification data");
  }
  return cfg;
}

Mlp make_model(const Dataset& train, const TrainConfig& config,
               const rngx::VariationSeeds& seeds) {
  auto init_rng = seeds.rng_for(rngx::VariationSource::kWeightInit);
  return Mlp{resolve_model_config(train, config.model, config.loss), init_rng};
}

std::unique_ptr<Optimizer> make_optimizer(const TrainConfig& config) {
  if (config.optimizer == OptimizerKind::kSgd) {
    return std::make_unique<SgdOptimizer>(config.opt);
  }
  return std::make_unique<AdamOptimizer>(config.opt);
}

}  // namespace

Trainer::Trainer(const Dataset& train, TrainConfig config,
                 const rngx::VariationSeeds& seeds)
    : train_{train},
      config_{std::move(config)},
      model_{make_model(train, config_, seeds)},
      optimizer_{make_optimizer(config_)},
      order_rng_{seeds.rng_for(rngx::VariationSource::kDataOrder)},
      dropout_rng_{seeds.rng_for(rngx::VariationSource::kDropout)},
      augment_rng_{seeds.rng_for(rngx::VariationSource::kDataAugment)},
      order_(train.size()) {
  if (train_.empty()) throw std::invalid_argument("Trainer: empty train set");
  validate(train_);
  std::iota(order_.begin(), order_.end(), std::size_t{0});
}

void Trainer::run_epoch() {
  if (finished()) throw std::logic_error("Trainer::run_epoch: already done");
  const std::size_t n = train_.size();
  const std::size_t batch = std::max<std::size_t>(1, config_.batch_size);
  order_rng_.shuffle(order_);

  ForwardCache cache;
  math::Matrix grad_logits;
  std::vector<double> targets;
  for (std::size_t start = 0; start < n; start += batch) {
    const std::size_t end = std::min(start + batch, n);
    const std::span<const std::size_t> idx{order_.data() + start, end - start};
    math::Matrix x{idx.size(), train_.dim()};
    for (std::size_t i = 0; i < idx.size(); ++i) {
      const auto src = train_.x.row(idx[i]);
      auto dst = x.row(i);
      for (std::size_t c = 0; c < src.size(); ++c) dst[c] = src[c];
    }
    if (is_active(config_.augment)) {
      x = augment_batch(x, config_.augment, augment_rng_);
    }
    targets.resize(idx.size());
    for (std::size_t i = 0; i < idx.size(); ++i) targets[i] = train_.y[idx[i]];
    const math::Matrix logits = model_.forward_train(x, dropout_rng_, cache);
    if (config_.loss == LossKind::kSoftmaxCrossEntropy) {
      (void)softmax_cross_entropy(logits, targets, grad_logits);
    } else {
      (void)mse_loss(logits, targets, grad_logits);
    }
    optimizer_->step(model_, model_.backward(cache, grad_logits));
  }
  optimizer_->end_epoch();
  ++epoch_;
}

void Trainer::run_to_completion() {
  while (!finished()) run_epoch();
}

TrainerCheckpoint Trainer::checkpoint() const {
  TrainerCheckpoint c;
  c.epoch = epoch_;
  c.weights = model_.weights();
  c.biases = model_.biases();
  c.optimizer = optimizer_->save_state();
  c.order_rng = order_rng_.save_state();
  c.dropout_rng = dropout_rng_.save_state();
  c.augment_rng = augment_rng_.save_state();
  c.order = order_;
  return c;
}

void Trainer::restore(const TrainerCheckpoint& ckpt) {
  if (ckpt.weights.size() != model_.num_layers()) {
    throw std::invalid_argument("Trainer::restore: layer count mismatch");
  }
  if (ckpt.order.size() != order_.size()) {
    throw std::invalid_argument("Trainer::restore: dataset size mismatch");
  }
  order_ = ckpt.order;
  epoch_ = ckpt.epoch;
  model_.weights() = ckpt.weights;
  model_.biases() = ckpt.biases;
  optimizer_->load_state(ckpt.optimizer);
  order_rng_.load_state(ckpt.order_rng);
  dropout_rng_.load_state(ckpt.dropout_rng);
  augment_rng_.load_state(ckpt.augment_rng);
}

}  // namespace varbench::ml

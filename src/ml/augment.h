// Stochastic data augmentation — one of the paper's ξO variance sources.
// Feature-space analogues of the paper's random crop / horizontal flip:
// Gaussian jitter and random feature masking.
#pragma once

#include "src/math/matrix.h"
#include "src/rngx/rng.h"

namespace varbench::ml {

struct AugmentConfig {
  double jitter_std = 0.0;  // additive N(0, σ²) noise per feature
  double mask_prob = 0.0;   // probability of zeroing each feature
};

/// Augmented copy of `batch` with randomness drawn from `rng`
/// (the ξO data-augmentation stream).
[[nodiscard]] math::Matrix augment_batch(const math::Matrix& batch,
                                         const AugmentConfig& config,
                                         rngx::Rng& rng);

/// True when this configuration actually perturbs data.
[[nodiscard]] inline bool is_active(const AugmentConfig& config) {
  return config.jitter_std > 0.0 || config.mask_prob > 0.0;
}

}  // namespace varbench::ml

// In-memory supervised dataset: feature matrix + targets. The unit the
// splitters, pipelines and estimators all operate on.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/math/matrix.h"

namespace varbench::ml {

enum class TaskKind : int {
  kClassification,  // y is a class index in [0, num_classes)
  kRegression,      // y is a real value, num_classes == 0
};

struct Dataset {
  math::Matrix x;         // n × d feature matrix
  std::vector<double> y;  // n targets
  std::size_t num_classes = 0;
  TaskKind kind = TaskKind::kClassification;

  [[nodiscard]] std::size_t size() const noexcept { return y.size(); }
  [[nodiscard]] std::size_t dim() const noexcept { return x.cols(); }
  [[nodiscard]] bool empty() const noexcept { return y.empty(); }
};

/// New dataset holding rows `indices` of `d` (duplicates allowed — this is
/// how bootstrap replicates are materialized).
[[nodiscard]] Dataset subset(const Dataset& d,
                             std::span<const std::size_t> indices);

/// Class label of sample i (classification datasets only).
[[nodiscard]] std::size_t label_of(const Dataset& d, std::size_t i);

/// Per-class sample indices (classification datasets only).
[[nodiscard]] std::vector<std::vector<std::size_t>> indices_by_class(
    const Dataset& d);

/// Throws std::invalid_argument when shapes/kind/labels are inconsistent.
void validate(const Dataset& d);

}  // namespace varbench::ml

#include "src/ml/init.h"

#include <cmath>
#include <stdexcept>

namespace varbench::ml {

void initialize_weights(math::Matrix& w, InitScheme scheme, rngx::Rng& rng,
                        double sigma) {
  const auto fan_out = static_cast<double>(w.rows());
  const auto fan_in = static_cast<double>(w.cols());
  switch (scheme) {
    case InitScheme::kGlorotUniform: {
      const double limit = std::sqrt(6.0 / (fan_in + fan_out));
      for (double& v : w.data()) v = rng.uniform(-limit, limit);
      return;
    }
    case InitScheme::kGlorotNormal: {
      const double s = std::sqrt(2.0 / (fan_in + fan_out));
      for (double& v : w.data()) v = rng.normal(0.0, s);
      return;
    }
    case InitScheme::kHeNormal: {
      const double s = std::sqrt(2.0 / fan_in);
      for (double& v : w.data()) v = rng.normal(0.0, s);
      return;
    }
    case InitScheme::kNormalScaled: {
      if (!(sigma > 0.0)) {
        throw std::invalid_argument("initialize_weights: sigma <= 0");
      }
      for (double& v : w.data()) v = rng.normal(0.0, sigma);
      return;
    }
  }
  throw std::invalid_argument("initialize_weights: unknown scheme");
}

}  // namespace varbench::ml

#include "src/ml/repro_audit.h"

#include <sstream>

namespace varbench::ml {

bool models_identical(const Mlp& a, const Mlp& b) {
  if (a.num_layers() != b.num_layers()) return false;
  for (std::size_t i = 0; i < a.num_layers(); ++i) {
    if (!(a.weights()[i] == b.weights()[i])) return false;
    if (a.biases()[i] != b.biases()[i]) return false;
  }
  return true;
}

namespace {

// Whether re-seeding `source` is expected to change this configuration's
// result (e.g. the dropout stream only matters when dropout > 0).
bool source_active(const TrainConfig& config, rngx::VariationSource source) {
  switch (source) {
    case rngx::VariationSource::kDataOrder:
      return true;
    case rngx::VariationSource::kWeightInit:
      return true;
    case rngx::VariationSource::kDropout:
      return config.model.dropout > 0.0;
    case rngx::VariationSource::kDataAugment:
      return is_active(config.augment);
    default:
      return false;
  }
}

}  // namespace

ReproAuditReport audit_reproducibility(const Dataset& train,
                                       const TrainConfig& config,
                                       const ReproAuditConfig& audit) {
  ReproAuditReport report;
  rngx::Rng master{0xA0D17};

  // 1. Determinism: per seed, repeated runs must agree exactly.
  for (std::size_t s = 0; s < audit.num_seeds; ++s) {
    const auto seeds = rngx::VariationSeeds::random(master);
    const Mlp reference = train_mlp(train, config, seeds);
    for (std::size_t r = 1; r < audit.num_repeats; ++r) {
      const Mlp repeat = train_mlp(train, config, seeds);
      if (!models_identical(reference, repeat)) {
        report.deterministic = false;
        std::ostringstream msg;
        msg << "non-deterministic rerun at seed set " << s << ", repeat " << r;
        report.failures.push_back(msg.str());
        break;
      }
    }
  }

  // 2. Seed sensitivity: active sources must change the model; inactive
  //    sources must NOT.
  const rngx::VariationSeeds base;
  const Mlp base_model = train_mlp(train, config, base);
  for (const auto source : rngx::kLearningSources) {
    if (source == rngx::VariationSource::kDataSplit) {
      continue;  // the split happens outside train_mlp
    }
    const auto reseeded = base.with_randomized(source, master);
    const Mlp changed = train_mlp(train, config, reseeded);
    const bool differs = !models_identical(base_model, changed);
    const bool expected = source_active(config, source);
    if (differs) report.sensitive_sources.push_back(source);
    if (differs != expected && report.deterministic) {
      std::ostringstream msg;
      msg << "source " << rngx::to_string(source) << ": expected "
          << (expected ? "sensitivity" : "no effect") << " but observed "
          << (differs ? "a change" : "no change");
      report.failures.push_back(msg.str());
    }
  }

  // 3. Resumability: checkpoint after every epoch boundary and resume; the
  //    final model must match an uninterrupted run (Appendix A's interrupted
  //    training protocol).
  if (config.numerical_noise_std == 0.0) {
    const auto seeds = rngx::VariationSeeds::random(master);
    Trainer straight{train, config, seeds};
    straight.run_to_completion();
    for (std::size_t stop = 1; stop < config.epochs; ++stop) {
      Trainer first_half{train, config, seeds};
      for (std::size_t e = 0; e < stop; ++e) first_half.run_epoch();
      const auto ckpt = first_half.checkpoint();
      Trainer resumed{train, config, seeds};
      resumed.restore(ckpt);
      resumed.run_to_completion();
      if (!models_identical(straight.model(), resumed.model())) {
        report.resumable = false;
        std::ostringstream msg;
        msg << "resume after epoch " << stop << " diverged from straight run";
        report.failures.push_back(msg.str());
        break;
      }
    }
  }
  return report;
}

}  // namespace varbench::ml

// Weight-initialization schemes — one of the paper's probed variance sources
// (ξO: "weights init"). Glorot (Xavier) and He initializers.
#pragma once

#include "src/math/matrix.h"
#include "src/rngx/rng.h"

namespace varbench::ml {

enum class InitScheme : int {
  kGlorotUniform,  // U(±√(6/(fan_in+fan_out))) — Glorot & Bengio 2010
  kGlorotNormal,   // N(0, 2/(fan_in+fan_out))
  kHeNormal,       // N(0, 2/fan_in) — He et al. 2015b
  kNormalScaled,   // N(0, σ²) with caller-provided σ (the BERT-head case)
};

/// Fill `w` (fan_out × fan_in) in place.
void initialize_weights(math::Matrix& w, InitScheme scheme, rngx::Rng& rng,
                        double sigma = 0.2);

}  // namespace varbench::ml

// Evaluation metrics for the five case-study analogues: accuracy/error for
// classification, mean IoU for dense labeling, AUC + Pearson for the
// binding-affinity regression.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "src/math/matrix.h"
#include "src/ml/dataset.h"
#include "src/ml/mlp.h"

namespace varbench::ml {

enum class Metric : int {
  kAccuracy,  // classification accuracy in [0, 1]
  kMeanIoU,   // mean intersection-over-union over classes (PascalVOC analogue)
  kAuc,       // ROC AUC on binarized regression targets (MHC analogue)
  kPearson,   // Pearson correlation of prediction vs target
  kNegMse,    // -MSE, so that higher is better uniformly
};

[[nodiscard]] std::string_view to_string(Metric m);

/// Argmax class predictions from logits (B×C).
[[nodiscard]] std::vector<double> predict_classes(const math::Matrix& logits);

[[nodiscard]] double accuracy(std::span<const double> predicted,
                              std::span<const double> labels);

/// Mean IoU from hard predictions: IoU_c = TP_c/(TP_c+FP_c+FN_c), averaged
/// over classes present in labels or predictions.
[[nodiscard]] double mean_iou(std::span<const double> predicted,
                              std::span<const double> labels,
                              std::size_t num_classes);

/// Rank-based ROC AUC of scores for binary targets (ties handled by
/// mid-ranks). Targets must contain both classes; returns 0.5 otherwise.
[[nodiscard]] double roc_auc(std::span<const double> scores,
                             std::span<const double> binary_targets);

/// Threshold regression targets at `threshold` to produce binary labels.
[[nodiscard]] std::vector<double> binarize(std::span<const double> values,
                                           double threshold);

/// Evaluate a trained model on `test` with the given metric;
/// all metrics are oriented so that HIGHER IS BETTER.
/// `binarize_threshold` applies to Metric::kAuc only.
[[nodiscard]] double evaluate_model(const Mlp& model, const Dataset& test,
                                    Metric metric,
                                    double binarize_threshold = 0.5);

}  // namespace varbench::ml

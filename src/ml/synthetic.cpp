#include "src/ml/synthetic.h"

#include <cmath>
#include <stdexcept>

#include "src/ml/mlp.h"

namespace varbench::ml {

namespace {

std::size_t sample_class(const std::vector<double>& probs,
                         std::size_t num_classes, rngx::Rng& rng) {
  if (probs.empty()) return rng.uniform_index(num_classes);
  double u = rng.uniform();
  for (std::size_t c = 0; c < probs.size(); ++c) {
    u -= probs[c];
    if (u <= 0.0) return c;
  }
  return probs.size() - 1;
}

}  // namespace

Dataset make_gaussian_mixture(const GaussianMixtureConfig& config,
                              rngx::Rng& rng) {
  if (config.num_classes < 2) {
    throw std::invalid_argument("make_gaussian_mixture: need >= 2 classes");
  }
  if (!config.class_probs.empty() &&
      config.class_probs.size() != config.num_classes) {
    throw std::invalid_argument("make_gaussian_mixture: class_probs size");
  }
  // Class means: deterministic function of the task geometry, not of `rng`,
  // so every draw comes from the same distribution D. Means sit on signed
  // coordinate axes (±class_sep·e_j), guaranteeing pairwise distance
  // >= class_sep·√2 — random directions can land arbitrarily close in low
  // dimension, which would silently change task difficulty.
  if (config.num_classes > 2 * config.dim) {
    throw std::invalid_argument(
        "make_gaussian_mixture: need num_classes <= 2*dim");
  }
  math::Matrix means{config.num_classes, config.dim};
  for (std::size_t c = 0; c < config.num_classes; ++c) {
    const std::size_t axis = c % config.dim;
    const double sign = c < config.dim ? 1.0 : -1.0;
    means(c, axis) = sign * config.class_sep;
  }

  Dataset d;
  d.kind = TaskKind::kClassification;
  d.num_classes = config.num_classes;
  d.x = math::Matrix{config.n, config.dim};
  d.y.resize(config.n);
  for (std::size_t i = 0; i < config.n; ++i) {
    const std::size_t c = sample_class(config.class_probs, config.num_classes, rng);
    const auto mean = means.row(c);
    auto row = d.x.row(i);
    for (std::size_t j = 0; j < config.dim; ++j) {
      row[j] = mean[j] + rng.normal(0.0, config.within_std);
    }
    std::size_t label = c;
    if (config.label_noise > 0.0 && rng.bernoulli(config.label_noise)) {
      label = (c + 1 + rng.uniform_index(config.num_classes - 1)) %
              config.num_classes;
    }
    d.y[i] = static_cast<double>(label);
  }
  return d;
}

Dataset make_regression_teacher(const RegressionTeacherConfig& config,
                                rngx::Rng& rng) {
  // The teacher network is the fixed "true" input→affinity mechanism.
  MlpConfig teacher_cfg;
  teacher_cfg.input_dim = config.dim;
  teacher_cfg.hidden = {config.teacher_hidden};
  teacher_cfg.output_dim = 1;
  teacher_cfg.init = InitScheme::kGlorotNormal;
  rngx::Rng teacher_rng{config.teacher_seed};
  const Mlp teacher{teacher_cfg, teacher_rng};

  Dataset d;
  d.kind = TaskKind::kRegression;
  d.num_classes = 0;
  d.x = math::Matrix{config.n, config.dim};
  d.y.resize(config.n);
  for (std::size_t i = 0; i < config.n; ++i) {
    auto row = d.x.row(i);
    for (double& v : row) v = rng.normal();
  }
  // Standardize the teacher's raw scores before squashing so the affinity
  // distribution is centered: binarizing at 0.5 then yields balanced
  // binder/non-binder classes, keeping the AUC metric well-conditioned.
  const math::Matrix raw = teacher.forward(d.x);
  double mean_raw = 0.0;
  for (std::size_t i = 0; i < config.n; ++i) mean_raw += raw(i, 0);
  mean_raw /= static_cast<double>(config.n);
  double var_raw = 0.0;
  for (std::size_t i = 0; i < config.n; ++i) {
    var_raw += (raw(i, 0) - mean_raw) * (raw(i, 0) - mean_raw);
  }
  const double std_raw =
      std::max(std::sqrt(var_raw / static_cast<double>(config.n)), 1e-12);
  for (std::size_t i = 0; i < config.n; ++i) {
    const double z = (raw(i, 0) - mean_raw) / std_raw * 1.5;
    const double noisy = z + rng.normal(0.0, config.noise_std);
    d.y[i] = 1.0 / (1.0 + std::exp(-noisy));  // squash to (0, 1)
  }
  return d;
}

Dataset make_sparse_binary(const SparseBinaryConfig& config, rngx::Rng& rng) {
  if (config.informative > config.dim) {
    throw std::invalid_argument("make_sparse_binary: informative > dim");
  }
  Dataset d;
  d.kind = TaskKind::kClassification;
  d.num_classes = 2;
  d.x = math::Matrix{config.n, config.dim};
  d.y.resize(config.n);
  for (std::size_t i = 0; i < config.n; ++i) {
    const std::size_t c = rng.uniform_index(2);
    auto row = d.x.row(i);
    for (std::size_t j = 0; j < config.dim; ++j) {
      if (!rng.bernoulli(config.density)) continue;  // sparse count vector
      double v = std::abs(rng.normal(0.5, 0.5));
      if (j < config.informative) {
        // Class 1 shifts informative features up, class 0 down.
        v += (c == 1 ? config.signal : -config.signal * 0.5);
        v = std::max(v, 0.0);
      }
      row[j] = v;
    }
    std::size_t label = c;
    if (config.label_noise > 0.0 && rng.bernoulli(config.label_noise)) {
      label = 1 - c;
    }
    d.y[i] = static_cast<double>(label);
  }
  return d;
}

}  // namespace varbench::ml

#include "src/ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace varbench::ml {

namespace {
// Seed of the shared "pretrained checkpoint" stream for frozen first layers.
constexpr std::uint64_t kFrozenBackboneSeed = 0xFEEDFACECAFEBEEFULL;
}  // namespace

Mlp::Mlp(MlpConfig config, rngx::Rng& init_rng) : config_{std::move(config)} {
  if (config_.input_dim == 0 || config_.output_dim == 0) {
    throw std::invalid_argument("Mlp: zero input or output dim");
  }
  if (!(config_.dropout >= 0.0 && config_.dropout < 1.0)) {
    throw std::invalid_argument("Mlp: dropout must be in [0, 1)");
  }
  std::vector<std::size_t> dims;
  dims.push_back(config_.input_dim);
  dims.insert(dims.end(), config_.hidden.begin(), config_.hidden.end());
  dims.push_back(config_.output_dim);

  rngx::Rng frozen_rng{kFrozenBackboneSeed};
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    math::Matrix w{dims[i + 1], dims[i]};
    rngx::Rng& rng = layer_trainable(i) ? init_rng : frozen_rng;
    initialize_weights(w, config_.init, rng, config_.init_sigma);
    weights_.push_back(std::move(w));
    biases_.emplace_back(dims[i + 1], 0.0);
  }
}

std::size_t Mlp::num_parameters() const noexcept {
  std::size_t n = 0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    n += weights_[i].size() + biases_[i].size();
  }
  return n;
}

namespace {

math::Matrix affine(const math::Matrix& input, const math::Matrix& w,
                    const std::vector<double>& b) {
  // input (B×in) · wᵀ (in×out) + b → (B×out)
  math::Matrix out = math::matmul_nt(input, w);
  for (std::size_t r = 0; r < out.rows(); ++r) {
    auto row = out.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) row[c] += b[c];
  }
  return out;
}

void relu_inplace(math::Matrix& m) {
  for (double& v : m.data()) v = std::max(v, 0.0);
}

}  // namespace

math::Matrix Mlp::forward(const math::Matrix& batch) const {
  math::Matrix h = batch;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    h = affine(h, weights_[i], biases_[i]);
    if (i + 1 < weights_.size()) relu_inplace(h);
  }
  return h;
}

math::Matrix Mlp::forward_train(const math::Matrix& batch,
                                rngx::Rng& dropout_rng,
                                ForwardCache& cache) const {
  const std::size_t L = weights_.size();
  cache.inputs.assign(L, {});
  cache.pre.assign(L, {});
  cache.dropout_mask.assign(L, {});
  math::Matrix h = batch;
  for (std::size_t i = 0; i < L; ++i) {
    cache.inputs[i] = h;
    h = affine(h, weights_[i], biases_[i]);
    cache.pre[i] = h;
    if (i + 1 < L) {
      relu_inplace(h);
      if (config_.dropout > 0.0) {
        // Inverted dropout: scale at train time so inference needs no change.
        math::Matrix mask{h.rows(), h.cols()};
        const double keep = 1.0 - config_.dropout;
        for (std::size_t j = 0; j < mask.size(); ++j) {
          mask.data()[j] = dropout_rng.bernoulli(keep) ? 1.0 / keep : 0.0;
        }
        for (std::size_t j = 0; j < h.size(); ++j) {
          h.data()[j] *= mask.data()[j];
        }
        cache.dropout_mask[i] = std::move(mask);
      }
    }
  }
  return h;
}

Gradients Mlp::backward(const ForwardCache& cache,
                        const math::Matrix& grad_logits) const {
  const std::size_t L = weights_.size();
  Gradients g;
  g.weights.resize(L);
  g.biases.resize(L);
  math::Matrix delta = grad_logits;  // d(loss)/d(pre-activation of layer L-1)
  for (std::size_t ii = L; ii-- > 0;) {
    // Weight/bias gradients for layer ii.
    if (layer_trainable(ii)) {
      g.weights[ii] = math::matmul_tn(delta, cache.inputs[ii]);
      g.biases[ii].assign(biases_[ii].size(), 0.0);
      for (std::size_t r = 0; r < delta.rows(); ++r) {
        const auto row = delta.row(r);
        for (std::size_t c = 0; c < row.size(); ++c) g.biases[ii][c] += row[c];
      }
    } else {
      g.weights[ii] = math::Matrix{weights_[ii].rows(), weights_[ii].cols()};
      g.biases[ii].assign(biases_[ii].size(), 0.0);
    }
    if (ii == 0) break;
    // Propagate to previous layer: delta ← (delta · W_ii) ⊙ relu'(pre_{ii-1})
    // with the dropout mask of layer ii-1 applied.
    math::Matrix prev = math::matmul(delta, weights_[ii]);
    const math::Matrix& pre_prev = cache.pre[ii - 1];
    for (std::size_t j = 0; j < prev.size(); ++j) {
      if (pre_prev.data()[j] <= 0.0) prev.data()[j] = 0.0;
    }
    const math::Matrix& mask = cache.dropout_mask[ii - 1];
    if (!mask.empty()) {
      for (std::size_t j = 0; j < prev.size(); ++j) {
        prev.data()[j] *= mask.data()[j];
      }
    }
    delta = std::move(prev);
  }
  return g;
}

math::Matrix softmax(const math::Matrix& logits) {
  math::Matrix p{logits.rows(), logits.cols()};
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const auto in = logits.row(r);
    auto out = p.row(r);
    const double mx = *std::max_element(in.begin(), in.end());
    double sum = 0.0;
    for (std::size_t c = 0; c < in.size(); ++c) {
      out[c] = std::exp(in[c] - mx);
      sum += out[c];
    }
    for (double& v : out) v /= sum;
  }
  return p;
}

double softmax_cross_entropy(const math::Matrix& logits,
                             std::span<const double> labels,
                             math::Matrix& grad) {
  const std::size_t batch = logits.rows();
  if (labels.size() != batch) {
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
  }
  grad = softmax(logits);
  double loss = 0.0;
  const double inv_b = 1.0 / static_cast<double>(batch);
  for (std::size_t r = 0; r < batch; ++r) {
    const auto label = static_cast<std::size_t>(labels[r]);
    if (label >= logits.cols()) {
      throw std::invalid_argument("softmax_cross_entropy: label out of range");
    }
    auto grow = grad.row(r);
    loss -= std::log(std::max(grow[label], 1e-300));
    grow[label] -= 1.0;
    for (double& v : grow) v *= inv_b;
  }
  return loss * inv_b;
}

double mse_loss(const math::Matrix& pred, std::span<const double> targets,
                math::Matrix& grad) {
  const std::size_t batch = pred.rows();
  if (pred.cols() != 1 || targets.size() != batch) {
    throw std::invalid_argument("mse_loss: shape mismatch");
  }
  grad = math::Matrix{batch, 1};
  double loss = 0.0;
  const double inv_b = 1.0 / static_cast<double>(batch);
  for (std::size_t r = 0; r < batch; ++r) {
    const double diff = pred(r, 0) - targets[r];
    loss += diff * diff;
    grad(r, 0) = 2.0 * diff * inv_b;
  }
  return loss * inv_b;
}

}  // namespace varbench::ml

#include "src/ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/stats/descriptive.h"

namespace varbench::ml {

std::string_view to_string(Metric m) {
  switch (m) {
    case Metric::kAccuracy:
      return "accuracy";
    case Metric::kMeanIoU:
      return "mean_iou";
    case Metric::kAuc:
      return "auc";
    case Metric::kPearson:
      return "pearson";
    case Metric::kNegMse:
      return "neg_mse";
  }
  return "unknown";
}

std::vector<double> predict_classes(const math::Matrix& logits) {
  std::vector<double> out(logits.rows(), 0.0);
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const auto row = logits.row(r);
    const auto it = std::max_element(row.begin(), row.end());
    out[r] = static_cast<double>(std::distance(row.begin(), it));
  }
  return out;
}

double accuracy(std::span<const double> predicted,
                std::span<const double> labels) {
  if (predicted.size() != labels.size() || predicted.empty()) {
    throw std::invalid_argument("accuracy: bad inputs");
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predicted.size());
}

double mean_iou(std::span<const double> predicted,
                std::span<const double> labels, std::size_t num_classes) {
  if (predicted.size() != labels.size() || predicted.empty()) {
    throw std::invalid_argument("mean_iou: bad inputs");
  }
  std::vector<double> tp(num_classes, 0.0);
  std::vector<double> fp(num_classes, 0.0);
  std::vector<double> fn(num_classes, 0.0);
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const auto p = static_cast<std::size_t>(predicted[i]);
    const auto l = static_cast<std::size_t>(labels[i]);
    if (p >= num_classes || l >= num_classes) {
      throw std::invalid_argument("mean_iou: class index out of range");
    }
    if (p == l) {
      tp[p] += 1.0;
    } else {
      fp[p] += 1.0;
      fn[l] += 1.0;
    }
  }
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t c = 0; c < num_classes; ++c) {
    const double denom = tp[c] + fp[c] + fn[c];
    if (denom == 0.0) continue;  // class absent from both: skip
    sum += tp[c] / denom;
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

double roc_auc(std::span<const double> scores,
               std::span<const double> binary_targets) {
  if (scores.size() != binary_targets.size() || scores.empty()) {
    throw std::invalid_argument("roc_auc: bad inputs");
  }
  double n_pos = 0.0;
  for (const double t : binary_targets) {
    if (t != 0.0 && t != 1.0) {
      throw std::invalid_argument("roc_auc: targets must be 0/1");
    }
    n_pos += t;
  }
  const double n_neg = static_cast<double>(binary_targets.size()) - n_pos;
  if (n_pos == 0.0 || n_neg == 0.0) return 0.5;
  const auto r = stats::ranks(scores);
  double rank_sum_pos = 0.0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (binary_targets[i] == 1.0) rank_sum_pos += r[i];
  }
  // AUC = (R⁺ − n⁺(n⁺+1)/2) / (n⁺·n⁻)  (Mann–Whitney identity)
  return (rank_sum_pos - n_pos * (n_pos + 1.0) / 2.0) / (n_pos * n_neg);
}

std::vector<double> binarize(std::span<const double> values, double threshold) {
  std::vector<double> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = values[i] > threshold ? 1.0 : 0.0;
  }
  return out;
}

double evaluate_model(const Mlp& model, const Dataset& test, Metric metric,
                      double binarize_threshold) {
  if (test.empty()) throw std::invalid_argument("evaluate_model: empty test");
  const math::Matrix logits = model.forward(test.x);
  switch (metric) {
    case Metric::kAccuracy:
      return accuracy(predict_classes(logits), test.y);
    case Metric::kMeanIoU:
      return mean_iou(predict_classes(logits), test.y, test.num_classes);
    case Metric::kAuc: {
      std::vector<double> scores(logits.rows());
      for (std::size_t r = 0; r < logits.rows(); ++r) scores[r] = logits(r, 0);
      return roc_auc(scores, binarize(test.y, binarize_threshold));
    }
    case Metric::kPearson: {
      std::vector<double> scores(logits.rows());
      for (std::size_t r = 0; r < logits.rows(); ++r) scores[r] = logits(r, 0);
      return stats::pearson(scores, test.y);
    }
    case Metric::kNegMse: {
      double mse = 0.0;
      for (std::size_t r = 0; r < logits.rows(); ++r) {
        const double d = logits(r, 0) - test.y[r];
        mse += d * d;
      }
      return -mse / static_cast<double>(logits.rows());
    }
  }
  throw std::invalid_argument("evaluate_model: unknown metric");
}

}  // namespace varbench::ml

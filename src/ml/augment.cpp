#include "src/ml/augment.h"

#include <stdexcept>

namespace varbench::ml {

math::Matrix augment_batch(const math::Matrix& batch,
                           const AugmentConfig& config, rngx::Rng& rng) {
  if (config.jitter_std < 0.0 || config.mask_prob < 0.0 ||
      config.mask_prob >= 1.0) {
    throw std::invalid_argument("augment_batch: bad config");
  }
  math::Matrix out = batch;
  if (config.jitter_std > 0.0) {
    for (double& v : out.data()) v += rng.normal(0.0, config.jitter_std);
  }
  if (config.mask_prob > 0.0) {
    for (double& v : out.data()) {
      if (rng.bernoulli(config.mask_prob)) v = 0.0;
    }
  }
  return out;
}

}  // namespace varbench::ml

#include "src/ml/train.h"

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>

namespace varbench::ml {

namespace {

// Process-global counter driving the (deliberately) unseeded numerical-noise
// stream. See TrainConfig::numerical_noise_std.
std::atomic<std::uint64_t> g_numerical_noise_counter{0x517CC1B727220A95ULL};

math::Matrix gather_rows(const Dataset& d, std::span<const std::size_t> idx) {
  math::Matrix out{idx.size(), d.dim()};
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const auto src = d.x.row(idx[i]);
    auto dst = out.row(i);
    for (std::size_t c = 0; c < src.size(); ++c) dst[c] = src[c];
  }
  return out;
}

}  // namespace

Mlp train_mlp(const Dataset& train, const TrainConfig& config,
              const rngx::VariationSeeds& seeds) {
  if (train.empty()) throw std::invalid_argument("train_mlp: empty train set");
  validate(train);

  MlpConfig model_cfg = config.model;
  if (model_cfg.input_dim == 0) model_cfg.input_dim = train.dim();
  if (model_cfg.output_dim == 0) {
    model_cfg.output_dim =
        train.kind == TaskKind::kClassification ? train.num_classes : 1;
  }
  if (config.loss == LossKind::kSoftmaxCrossEntropy &&
      train.kind != TaskKind::kClassification) {
    throw std::invalid_argument("train_mlp: CE loss needs classification data");
  }

  auto init_rng = seeds.rng_for(rngx::VariationSource::kWeightInit);
  auto order_rng = seeds.rng_for(rngx::VariationSource::kDataOrder);
  auto dropout_rng = seeds.rng_for(rngx::VariationSource::kDropout);
  auto augment_rng = seeds.rng_for(rngx::VariationSource::kDataAugment);

  Mlp model{model_cfg, init_rng};

  std::unique_ptr<Optimizer> opt;
  if (config.optimizer == OptimizerKind::kSgd) {
    opt = std::make_unique<SgdOptimizer>(config.opt);
  } else {
    opt = std::make_unique<AdamOptimizer>(config.opt);
  }

  const std::size_t n = train.size();
  const std::size_t batch = std::max<std::size_t>(1, config.batch_size);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  ForwardCache cache;
  math::Matrix grad_logits;
  std::vector<double> batch_targets;

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    order_rng.shuffle(order);
    for (std::size_t start = 0; start < n; start += batch) {
      const std::size_t end = std::min(start + batch, n);
      const std::span<const std::size_t> idx{order.data() + start, end - start};
      math::Matrix x = gather_rows(train, idx);
      if (is_active(config.augment)) {
        x = augment_batch(x, config.augment, augment_rng);
      }
      batch_targets.resize(idx.size());
      for (std::size_t i = 0; i < idx.size(); ++i) {
        batch_targets[i] = train.y[idx[i]];
      }
      const math::Matrix logits = model.forward_train(x, dropout_rng, cache);
      if (config.loss == LossKind::kSoftmaxCrossEntropy) {
        (void)softmax_cross_entropy(logits, batch_targets, grad_logits);
      } else {
        (void)mse_loss(logits, batch_targets, grad_logits);
      }
      opt->step(model, model.backward(cache, grad_logits));
    }
    opt->end_epoch();
  }

  if (config.numerical_noise_std > 0.0) {
    rngx::Rng noise_rng{
        g_numerical_noise_counter.fetch_add(1, std::memory_order_relaxed)};
    for (auto& w : model.weights()) {
      for (double& v : w.data()) {
        v += noise_rng.normal(0.0, config.numerical_noise_std);
      }
    }
  }
  return model;
}

double mean_loss(const Mlp& model, const Dataset& data, LossKind loss) {
  const math::Matrix logits = model.forward(data.x);
  math::Matrix grad;
  if (loss == LossKind::kSoftmaxCrossEntropy) {
    return softmax_cross_entropy(logits, data.y, grad);
  }
  return mse_loss(logits, data.y, grad);
}

}  // namespace varbench::ml

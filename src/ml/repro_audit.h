// Appendix A's reproducibility testing procedure, as an automated audit:
// before trusting a variance study, verify that the pipeline is
//   1. deterministic  — identical seeds → bit-identical models (× repeats),
//   2. seed-sensitive — each variation source actually changes the result
//      when (and only when) its mechanism is active,
//   3. resumable      — interrupting after any epoch and resuming gives a
//      model bit-identical to an uninterrupted run.
// The paper reports that exactly this protocol "uncovered many bugs and
// typical reproducibility issues".
#pragma once

#include <string>
#include <vector>

#include "src/ml/trainer.h"

namespace varbench::ml {

struct ReproAuditConfig {
  std::size_t num_seeds = 3;    // paper: 5 seeds per source
  std::size_t num_repeats = 3;  // paper: 5 executions per seed
};

struct ReproAuditReport {
  bool deterministic = true;
  bool resumable = true;
  // Sources that changed the trained model when re-seeded.
  std::vector<rngx::VariationSource> sensitive_sources;
  // Human-readable findings (empty when everything passes).
  std::vector<std::string> failures;

  [[nodiscard]] bool passed() const {
    return deterministic && resumable && failures.empty();
  }
};

/// True when two models have bit-identical parameters.
[[nodiscard]] bool models_identical(const Mlp& a, const Mlp& b);

/// Run the full audit of a training configuration on a dataset.
/// NOTE: configs with numerical_noise_std > 0 are *expected* to fail the
/// determinism check — that is the paper's irreproducible-pipeline case.
[[nodiscard]] ReproAuditReport audit_reproducibility(
    const Dataset& train, const TrainConfig& config,
    const ReproAuditConfig& audit = {});

}  // namespace varbench::ml

// Resumable epoch-level trainer. The paper's Appendix A insists that a
// reproducible study must be able to interrupt a training after any epoch
// and resume it later with bit-identical results — which requires
// checkpointing model weights, optimizer buffers AND every RNG stream.
// Trainer packages that protocol; train_mlp() remains the one-shot path.
#pragma once

#include <memory>

#include "src/ml/train.h"

namespace varbench::ml {

/// Complete serializable training state at an epoch boundary.
struct TrainerCheckpoint {
  std::size_t epoch = 0;
  std::vector<math::Matrix> weights;
  std::vector<std::vector<double>> biases;
  OptimizerState optimizer;
  rngx::RngState order_rng;
  rngx::RngState dropout_rng;
  rngx::RngState augment_rng;
  // The visit-order permutation is shuffled in place each epoch, so the
  // current arrangement is training state too — omitting it was exactly the
  // kind of resumption bug Appendix A's protocol is designed to catch.
  std::vector<std::size_t> order;
};

class Trainer {
 public:
  /// Initializes the model from the ξO weight-init stream, exactly as
  /// train_mlp() does.
  Trainer(const Dataset& train, TrainConfig config,
          const rngx::VariationSeeds& seeds);

  /// Run one epoch (shuffle → mini-batch steps → LR schedule tick).
  void run_epoch();

  /// Run until config.epochs have completed.
  void run_to_completion();

  [[nodiscard]] std::size_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] bool finished() const noexcept {
    return epoch_ >= config_.epochs;
  }
  [[nodiscard]] const Mlp& model() const noexcept { return model_; }
  [[nodiscard]] const TrainConfig& config() const noexcept { return config_; }

  /// Snapshot everything needed to resume bit-exactly.
  [[nodiscard]] TrainerCheckpoint checkpoint() const;

  /// Restore a snapshot taken from a Trainer constructed with the same
  /// dataset, config and seeds.
  void restore(const TrainerCheckpoint& ckpt);

 private:
  const Dataset& train_;  // not owned; must outlive the Trainer
  TrainConfig config_;
  Mlp model_;
  std::unique_ptr<Optimizer> optimizer_;
  rngx::Rng order_rng_;
  rngx::Rng dropout_rng_;
  rngx::Rng augment_rng_;
  std::vector<std::size_t> order_;
  std::size_t epoch_ = 0;
};

}  // namespace varbench::ml

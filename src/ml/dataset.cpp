#include "src/ml/dataset.h"

#include <cmath>
#include <stdexcept>

namespace varbench::ml {

Dataset subset(const Dataset& d, std::span<const std::size_t> indices) {
  Dataset out;
  out.num_classes = d.num_classes;
  out.kind = d.kind;
  out.x = math::Matrix{indices.size(), d.dim()};
  out.y.resize(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t src = indices[i];
    if (src >= d.size()) throw std::out_of_range("subset: index out of range");
    const auto row = d.x.row(src);
    auto dst = out.x.row(i);
    for (std::size_t c = 0; c < row.size(); ++c) dst[c] = row[c];
    out.y[i] = d.y[src];
  }
  return out;
}

std::size_t label_of(const Dataset& d, std::size_t i) {
  if (d.kind != TaskKind::kClassification) {
    throw std::invalid_argument("label_of: not a classification dataset");
  }
  return static_cast<std::size_t>(d.y.at(i));
}

std::vector<std::vector<std::size_t>> indices_by_class(const Dataset& d) {
  if (d.kind != TaskKind::kClassification) {
    throw std::invalid_argument("indices_by_class: not classification");
  }
  std::vector<std::vector<std::size_t>> out(d.num_classes);
  for (std::size_t i = 0; i < d.size(); ++i) {
    out.at(label_of(d, i)).push_back(i);
  }
  return out;
}

void validate(const Dataset& d) {
  if (d.x.rows() != d.y.size()) {
    throw std::invalid_argument("Dataset: x rows != y size");
  }
  if (d.kind == TaskKind::kClassification) {
    if (d.num_classes < 2) {
      throw std::invalid_argument("Dataset: classification needs >= 2 classes");
    }
    for (const double v : d.y) {
      if (v < 0.0 || v >= static_cast<double>(d.num_classes) ||
          v != std::floor(v)) {
        throw std::invalid_argument("Dataset: label not an in-range integer");
      }
    }
  } else if (d.num_classes != 0) {
    throw std::invalid_argument("Dataset: regression must have num_classes 0");
  }
}

}  // namespace varbench::ml

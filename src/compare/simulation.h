// The §4.2 simulation of algorithm performances. Given the variance
// statistics measured on a case study, realizations of the ideal and biased
// estimators are sampled analytically:
//   ideal:  R̂e ~ N(µ, σ²)
//   biased: Bias ~ N(0, Var(µ̃(k)|ξ)), then R̂e ~ N(µ + Bias, Var(R̂e|ξ))
// This mirrors exactly the paper's two-stage sampling process.
#pragma once

#include <string>
#include <vector>

#include "src/rngx/rng.h"

namespace varbench::compare {

/// Variance statistics of one case study, as measured in §3.3 (or taken from
/// the paper). All values are standard deviations in metric units.
struct TaskVarianceProfile {
  std::string task;
  double mu = 0.0;            // mean performance of the reference algorithm
  double sigma_ideal = 0.0;   // std of R̂e under the ideal estimator
  double sigma_bias = 0.0;    // std of the biased estimator's bias term
  double sigma_within = 0.0;  // std of R̂e conditional on ξ (within-HOpt)

  /// Std of a single biased measurement, marginal over the bias term.
  [[nodiscard]] double sigma_biased_total() const;
};

enum class EstimatorKind : int { kIdeal, kBiased };

/// Sample k paired performance measures of one algorithm with mean offset
/// `mu_offset` relative to the profile's µ.
[[nodiscard]] std::vector<double> simulate_measures(
    const TaskVarianceProfile& profile, EstimatorKind kind, double mu_offset,
    std::size_t k, rngx::Rng& rng);

/// Mean offset Δµ that makes the true P(A>B) equal `p` when the difference
/// of single measurements is N(Δµ, 2σ²): Δµ = √2·σ·Φ⁻¹(p).
[[nodiscard]] double mean_offset_for_probability(double p, double sigma);

/// Inverse: true P(A>B) implied by a mean offset.
[[nodiscard]] double probability_for_mean_offset(double delta, double sigma);

}  // namespace varbench::compare

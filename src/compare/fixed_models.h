// §6, "Comparing models instead of procedures": when the models are given
// and not retrainable (bought via API, competition submissions), the only
// source of variation left is the data used to test them. The comparison
// then bootstraps the TEST SET: P(A>B) across test-set resamples, with the
// per-example predictions fixed.
#pragma once

#include <span>
#include <vector>

#include "src/rngx/rng.h"
#include "src/stats/prob_outperform.h"

namespace varbench::compare {

/// Per-example correctness/score of one fixed model on a shared test set
/// (e.g. 1.0/0.0 per-example accuracy, or per-example loss negated).
using PerExampleScores = std::vector<double>;

struct FixedModelComparison {
  double mean_a = 0.0;           // test-set performance of A
  double mean_b = 0.0;
  double p_a_greater_b = 0.5;    // across test-set bootstrap resamples
  stats::ConfidenceInterval ci;  // CI of the mean difference A − B
  stats::ComparisonConclusion conclusion =
      stats::ComparisonConclusion::kNotSignificant;
};

/// Bootstrap the test examples (jointly for A and B — the models are
/// evaluated on the SAME resampled set) and measure how often A's mean
/// beats B's. Decision logic mirrors the pipeline-level P(A>B) test:
/// significant when the CI of P excludes 0.5, meaningful vs gamma.
[[nodiscard]] FixedModelComparison compare_fixed_models(
    std::span<const double> per_example_a, std::span<const double> per_example_b,
    rngx::Rng& rng, double gamma = stats::kDefaultGamma,
    std::size_t num_resamples = 1000, double alpha = 0.05);

}  // namespace varbench::compare

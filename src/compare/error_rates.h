// Detection-rate characterization of comparison criteria (Fig. 6, Fig. I.6):
// sweep the true P(A>B), simulate estimator realizations, and measure how
// often each criterion concludes "A outperforms B".
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/compare/criteria.h"
#include "src/compare/simulation.h"
#include "src/exec/exec_context.h"
#include "src/exec/parallel_replicate.h"

namespace varbench::compare {

struct DetectionRateConfig {
  std::size_t k = 50;             // measurements per algorithm per simulation
  std::size_t simulations = 100;  // simulation rounds per grid point
  double gamma = 0.75;            // the H1 threshold
  std::vector<double> p_grid;     // true P(A>B) values; empty → 0.4..1.0
  // Each (grid point, simulation round) pair runs on its own RNG stream;
  // curves are bit-identical for every num_threads.
  exec::ExecContext exec;
};

struct DetectionCurves {
  std::vector<double> p_grid;
  // criterion name → detection rate (in [0,1]) at each grid point.
  std::map<std::string, std::vector<double>> rates;
};

/// The default Fig. 6 x-axis: true P(A>B) from 0.4 to 1.0 in steps of 0.05,
/// plus 0.99 to probe near-certain improvements.
[[nodiscard]] std::vector<double> default_p_grid();

/// Raw detection outcomes, one row per simulation round. Round index
/// `gi * simulations + si` simulates grid point `gi`, round `si`; the value
/// is one 0/1 flag per criterion (same order as `criteria`). `range`
/// restricts execution to a contiguous slice of the round index space —
/// rounds are keyed by their global index, so any slice is bit-identical to
/// the corresponding slice of the full run (shard execution). Exactly one
/// u64 is drawn from `rng` regardless of range and thread count.
[[nodiscard]] std::vector<std::vector<std::uint8_t>> detection_rounds(
    const TaskVarianceProfile& profile, EstimatorKind estimator,
    std::span<const std::unique_ptr<ComparisonCriterion>> criteria,
    const DetectionRateConfig& config, exec::IndexRange range, rngx::Rng& rng);

/// Run the Fig. 6 experiment for one task profile and one estimator kind.
/// Criteria are evaluated on THE SAME simulated samples at each round, so
/// curves are directly comparable.
[[nodiscard]] DetectionCurves characterize_detection_rates(
    const TaskVarianceProfile& profile, EstimatorKind estimator,
    std::span<const std::unique_ptr<ComparisonCriterion>> criteria,
    const DetectionRateConfig& config, rngx::Rng& rng);

/// The three x-axis regions of Fig. 6 for a true probability p.
enum class TruthRegion : int { kH0, kIntermediate, kH1 };
[[nodiscard]] TruthRegion classify_region(double p, double gamma);

/// δ calibrated to published improvements: δ = coeff·σ with the paper's
/// regression coefficient 1.9952 (§4.2).
inline constexpr double kPublishedImprovementCoeff = 1.9952;
[[nodiscard]] double published_improvement_delta(double sigma);

}  // namespace varbench::compare

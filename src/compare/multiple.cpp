#include "src/compare/multiple.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <stdexcept>

#include "src/exec/parallel_replicate.h"
#include "src/stats/descriptive.h"
#include "src/stats/tests.h"

namespace varbench::compare {

namespace {

void check_scores(const ContestantScores& scores) {
  if (scores.size() < 2) {
    throw std::invalid_argument("multiple: need >= 2 contestants");
  }
  const std::size_t k = scores.front().size();
  if (k == 0) throw std::invalid_argument("multiple: empty measurements");
  for (const auto& s : scores) {
    if (s.size() != k) {
      throw std::invalid_argument("multiple: unequal measurement counts");
    }
  }
}

}  // namespace

math::Matrix pairwise_pab_matrix(const ContestantScores& scores) {
  check_scores(scores);
  const std::size_t n = scores.size();
  math::Matrix m{n, n, 0.5};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double pij =
          stats::probability_of_outperforming(scores[i], scores[j]);
      m(i, j) = pij;
      m(j, i) = 1.0 - pij;
    }
  }
  return m;
}

TopGroupResult significance_top_group(const ContestantScores& scores,
                                      rngx::Rng& rng, double gamma,
                                      double alpha, std::size_t num_resamples,
                                      const exec::ExecContext& exec) {
  check_scores(scores);
  TopGroupResult result;
  const std::size_t n = scores.size();
  // Best by mean performance.
  double best_mean = stats::mean(scores[0]);
  for (std::size_t a = 1; a < n; ++a) {
    const double m = stats::mean(scores[a]);
    if (m > best_mean) {
      best_mean = m;
      result.best = a;
    }
  }
  result.adjusted_alpha = stats::bonferroni_alpha(alpha, n - 1);
  // best vs a, one independent comparison per contestant: if NOT
  // (significant and meaningful), a stays in the group.
  const auto in_group = exec::parallel_replicate<std::uint8_t>(
      exec, n, rng, "top_group",
      [&](std::size_t a, rngx::Rng& comparison_rng) -> std::uint8_t {
        if (a == result.best) return 1;
        const auto r = stats::test_probability_of_outperforming(
            scores[result.best], scores[a], comparison_rng, gamma,
            num_resamples, result.adjusted_alpha);
        return r.conclusion !=
                       stats::ComparisonConclusion::kSignificantAndMeaningful
                   ? 1
                   : 0;
      });
  for (std::size_t a = 0; a < n; ++a) {
    if (in_group[a] != 0) result.group.push_back(a);
  }
  return result;
}

RankingStability ranking_stability(const ContestantScores& scores,
                                   rngx::Rng& rng, std::size_t num_resamples,
                                   const exec::ExecContext& exec) {
  check_scores(scores);
  const std::size_t n = scores.size();
  const std::size_t k = scores.front().size();
  RankingStability result;
  result.rank_probability = math::Matrix{n, n};
  result.prob_first.assign(n, 0.0);

  // Each resample reports its ranking; counts accumulate serially in
  // resample order afterwards.
  const auto orders = exec::parallel_replicate<std::vector<std::size_t>>(
      exec, num_resamples, rng, "ranking_stability",
      [&](std::size_t, rngx::Rng& resample_rng) {
        std::vector<std::size_t> idx(k, 0);
        for (auto& v : idx) {
          v = resample_rng.uniform_index(k);  // resample splits, paired
        }
        std::vector<double> means(n, 0.0);
        for (std::size_t a = 0; a < n; ++a) {
          double s = 0.0;
          for (const std::size_t i : idx) s += scores[a][i];
          means[a] = s / static_cast<double>(k);
        }
        std::vector<std::size_t> order(n);
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::sort(order.begin(), order.end(),
                  [&](std::size_t x, std::size_t y) {
                    return means[x] > means[y];
                  });
        return order;
      });
  for (const auto& order : orders) {
    for (std::size_t r = 0; r < n; ++r) {
      result.rank_probability(order[r], r) += 1.0;
    }
  }
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t r = 0; r < n; ++r) {
      result.rank_probability(a, r) /= static_cast<double>(num_resamples);
    }
    result.prob_first[a] = result.rank_probability(a, 0);
  }
  return result;
}

}  // namespace varbench::compare

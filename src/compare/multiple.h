// Benchmarks with many contestants (paper §6): pairwise P(A>B) matrices,
// Bonferroni-adjusted decisions, the paper's §5 recommendation to report
// the whole top group rather than a single winner, and bootstrap analysis
// of ranking stability ("a different choice of test sets might have led to
// a slightly modified ranking").
#pragma once

#include <string>
#include <vector>

#include "src/exec/exec_context.h"
#include "src/math/matrix.h"
#include "src/rngx/rng.h"
#include "src/stats/prob_outperform.h"

namespace varbench::compare {

/// Paired measurements of several contestants: scores[a] is contestant a's
/// performance on each of the shared k splits/seeds.
using ContestantScores = std::vector<std::vector<double>>;

/// P(i>j) for every ordered pair, from paired win rates (Eq. 9).
/// Diagonal entries are 0.5.
[[nodiscard]] math::Matrix pairwise_pab_matrix(const ContestantScores& scores);

struct TopGroupResult {
  std::size_t best = 0;                // argmax of mean performance
  std::vector<std::size_t> group;      // best + all not significantly worse
  double adjusted_alpha = 0.05;        // after Bonferroni over comparisons
};

/// The §5 recommendation: highlight the best performer AND every contestant
/// whose comparison against it is not both significant and meaningful, at a
/// Bonferroni-corrected level over the m = n-1 comparisons. Each comparison
/// runs on its own derived RNG stream, so the group is bit-identical for
/// every `exec.num_threads`.
[[nodiscard]] TopGroupResult significance_top_group(
    const ContestantScores& scores, rngx::Rng& rng,
    double gamma = stats::kDefaultGamma, double alpha = 0.05,
    std::size_t num_resamples = 500,
    const exec::ExecContext& exec = exec::ExecContext::serial());

struct RankingStability {
  // rank_probability(a, r): probability contestant a lands at rank r
  // (0 = first) under bootstrap resampling of the splits.
  math::Matrix rank_probability;
  std::vector<double> prob_first;  // per contestant
};

/// Bootstrap the k paired splits and recompute the ranking each time.
/// Each resample runs on its own derived RNG stream (thread-count invariant).
[[nodiscard]] RankingStability ranking_stability(
    const ContestantScores& scores, rngx::Rng& rng,
    std::size_t num_resamples = 1000,
    const exec::ExecContext& exec = exec::ExecContext::serial());

}  // namespace varbench::compare

#include "src/compare/error_rates.h"

#include <cstdint>
#include <stdexcept>

#include "src/exec/parallel_replicate.h"

namespace varbench::compare {

std::vector<double> default_p_grid() {
  std::vector<double> grid;
  for (double p = 0.4; p <= 1.0 - 1e-9; p += 0.05) grid.push_back(p);
  grid.push_back(0.99);  // probe near-certain improvements too
  return grid;
}

std::vector<std::vector<std::uint8_t>> detection_rounds(
    const TaskVarianceProfile& profile, EstimatorKind estimator,
    std::span<const std::unique_ptr<ComparisonCriterion>> criteria,
    const DetectionRateConfig& config, exec::IndexRange range,
    rngx::Rng& rng) {
  if (criteria.empty()) {
    throw std::invalid_argument("detection_rounds: no criteria");
  }
  const std::vector<double> p_grid =
      config.p_grid.empty() ? default_p_grid() : config.p_grid;
  const std::size_t rounds = p_grid.size() * config.simulations;
  if (range.begin > range.end || range.end > rounds) {
    throw std::invalid_argument("detection_rounds: range outside [0, " +
                                std::to_string(rounds) + ")");
  }

  const double sigma_single = estimator == EstimatorKind::kIdeal
                                  ? profile.sigma_ideal
                                  : profile.sigma_biased_total();
  std::vector<double> offsets(p_grid.size(), 0.0);
  for (std::size_t gi = 0; gi < p_grid.size(); ++gi) {
    offsets[gi] = mean_offset_for_probability(p_grid[gi], sigma_single);
  }

  // One task per (grid point, simulation round) pair, each on its own RNG
  // stream; every criterion sees the same simulated samples within a round.
  return exec::parallel_replicate_range<std::vector<std::uint8_t>>(
      config.exec, range, rng, "detection_rates",
      [&](std::size_t round, rngx::Rng& round_rng) {
        const std::size_t gi = round / config.simulations;
        const auto a = simulate_measures(profile, estimator, offsets[gi],
                                         config.k, round_rng);
        const auto b =
            simulate_measures(profile, estimator, 0.0, config.k, round_rng);
        std::vector<std::uint8_t> detected(criteria.size(), 0);
        for (std::size_t ci = 0; ci < criteria.size(); ++ci) {
          detected[ci] = criteria[ci]->detects(a, b, round_rng) ? 1 : 0;
        }
        return detected;
      });
}

DetectionCurves characterize_detection_rates(
    const TaskVarianceProfile& profile, EstimatorKind estimator,
    std::span<const std::unique_ptr<ComparisonCriterion>> criteria,
    const DetectionRateConfig& config, rngx::Rng& rng) {
  if (criteria.empty()) {
    throw std::invalid_argument("characterize_detection_rates: no criteria");
  }
  DetectionCurves curves;
  curves.p_grid = config.p_grid.empty() ? default_p_grid() : config.p_grid;
  for (const auto& c : criteria) {
    curves.rates[std::string{c->name()}] =
        std::vector<double>(curves.p_grid.size(), 0.0);
  }

  const std::size_t rounds = curves.p_grid.size() * config.simulations;
  const auto hits = detection_rounds(profile, estimator, criteria, config,
                                     exec::IndexRange{0, rounds}, rng);
  for (std::size_t round = 0; round < rounds; ++round) {
    const std::size_t gi = round / config.simulations;
    for (std::size_t ci = 0; ci < criteria.size(); ++ci) {
      if (hits[round][ci] != 0) {
        curves.rates[std::string{criteria[ci]->name()}][gi] += 1.0;
      }
    }
  }
  for (auto& [name, rate] : curves.rates) {
    (void)name;
    for (double& r : rate) r /= static_cast<double>(config.simulations);
  }
  return curves;
}

TruthRegion classify_region(double p, double gamma) {
  if (p <= 0.5) return TruthRegion::kH0;
  if (p <= gamma) return TruthRegion::kIntermediate;
  return TruthRegion::kH1;
}

double published_improvement_delta(double sigma) {
  return kPublishedImprovementCoeff * sigma;
}

}  // namespace varbench::compare

#include "src/compare/error_rates.h"

#include <stdexcept>

namespace varbench::compare {

DetectionCurves characterize_detection_rates(
    const TaskVarianceProfile& profile, EstimatorKind estimator,
    std::span<const std::unique_ptr<ComparisonCriterion>> criteria,
    const DetectionRateConfig& config, rngx::Rng& rng) {
  if (criteria.empty()) {
    throw std::invalid_argument("characterize_detection_rates: no criteria");
  }
  DetectionCurves curves;
  curves.p_grid = config.p_grid;
  if (curves.p_grid.empty()) {
    for (double p = 0.4; p <= 1.0 - 1e-9; p += 0.05) curves.p_grid.push_back(p);
    curves.p_grid.push_back(0.99);  // probe near-certain improvements too
  }
  for (const auto& c : criteria) {
    curves.rates[std::string{c->name()}] =
        std::vector<double>(curves.p_grid.size(), 0.0);
  }

  const double sigma_single = estimator == EstimatorKind::kIdeal
                                  ? profile.sigma_ideal
                                  : profile.sigma_biased_total();
  for (std::size_t gi = 0; gi < curves.p_grid.size(); ++gi) {
    const double p_true = curves.p_grid[gi];
    const double offset = mean_offset_for_probability(p_true, sigma_single);
    for (std::size_t s = 0; s < config.simulations; ++s) {
      const auto a =
          simulate_measures(profile, estimator, offset, config.k, rng);
      const auto b = simulate_measures(profile, estimator, 0.0, config.k, rng);
      for (const auto& c : criteria) {
        if (c->detects(a, b, rng)) {
          curves.rates[std::string{c->name()}][gi] += 1.0;
        }
      }
    }
  }
  for (auto& [name, rate] : curves.rates) {
    (void)name;
    for (double& r : rate) r /= static_cast<double>(config.simulations);
  }
  return curves;
}

TruthRegion classify_region(double p, double gamma) {
  if (p <= 0.5) return TruthRegion::kH0;
  if (p <= gamma) return TruthRegion::kIntermediate;
  return TruthRegion::kH1;
}

double published_improvement_delta(double sigma) {
  return kPublishedImprovementCoeff * sigma;
}

}  // namespace varbench::compare

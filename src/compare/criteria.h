// The comparison criteria studied in §4: single-point comparison, average
// comparison thresholded at δ, and the paper's recommended probability-of-
// outperforming test — plus the oracle upper bound used in Fig. 6.
#pragma once

#include <memory>
#include <span>
#include <string_view>

#include "src/rngx/rng.h"
#include "src/stats/prob_outperform.h"

namespace varbench::compare {

/// A decision rule: given paired performance measurements of A and B,
/// does the benchmark conclude "A outperforms B"?
class ComparisonCriterion {
 public:
  virtual ~ComparisonCriterion() = default;
  ComparisonCriterion() = default;
  ComparisonCriterion(const ComparisonCriterion&) = delete;
  ComparisonCriterion& operator=(const ComparisonCriterion&) = delete;

  /// `a`, `b` are paired measurements (same split/seed per index).
  /// `rng` feeds any internal resampling (bootstrap CIs).
  [[nodiscard]] virtual bool detects(std::span<const double> a,
                                     std::span<const double> b,
                                     rngx::Rng& rng) const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// One run of each pipeline; A wins when a₁ − b₁ > δ. The weakest criterion
/// of Fig. 6 (high false positives AND high false negatives).
class SinglePointComparison final : public ComparisonCriterion {
 public:
  explicit SinglePointComparison(double delta) : delta_{delta} {}
  [[nodiscard]] bool detects(std::span<const double> a,
                             std::span<const double> b,
                             rngx::Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override {
    return "single_point";
  }

 private:
  double delta_;
};

/// The prevalent practice: mean over k runs, A wins when the average
/// difference exceeds δ (δ typically calibrated to published improvements).
class AverageComparison final : public ComparisonCriterion {
 public:
  explicit AverageComparison(double delta) : delta_{delta} {}
  [[nodiscard]] bool detects(std::span<const double> a,
                             std::span<const double> b,
                             rngx::Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override { return "average"; }

 private:
  double delta_;
};

/// The paper's recommendation: detect when P(A>B) is both statistically
/// significant (CI_min > 0.5) and meaningful (CI_max > γ).
class ProbOutperformCriterion final : public ComparisonCriterion {
 public:
  explicit ProbOutperformCriterion(double gamma = stats::kDefaultGamma,
                                   std::size_t resamples = 200,
                                   double alpha = 0.05)
      : gamma_{gamma}, resamples_{resamples}, alpha_{alpha} {}
  [[nodiscard]] bool detects(std::span<const double> a,
                             std::span<const double> b,
                             rngx::Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override {
    return "prob_outperforming";
  }

 private:
  double gamma_;
  std::size_t resamples_;
  double alpha_;
};

/// Upper bound: a one-sided z-test on the mean difference with the TRUE
/// per-measurement variance known (perfect knowledge of the noise) — the
/// "optimal oracle" curve of Fig. 6.
class OracleComparison final : public ComparisonCriterion {
 public:
  OracleComparison(double true_sigma, double alpha = 0.05)
      : sigma_{true_sigma}, alpha_{alpha} {}
  [[nodiscard]] bool detects(std::span<const double> a,
                             std::span<const double> b,
                             rngx::Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override { return "oracle"; }

 private:
  double sigma_;
  double alpha_;
};

}  // namespace varbench::compare

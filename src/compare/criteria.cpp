#include "src/compare/criteria.h"

#include <cmath>
#include <stdexcept>

#include "src/stats/descriptive.h"
#include "src/stats/distributions.h"

namespace varbench::compare {

bool SinglePointComparison::detects(std::span<const double> a,
                                    std::span<const double> b,
                                    rngx::Rng& rng) const {
  (void)rng;
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("SinglePointComparison: empty input");
  }
  return a[0] - b[0] > delta_;
}

bool AverageComparison::detects(std::span<const double> a,
                                std::span<const double> b,
                                rngx::Rng& rng) const {
  (void)rng;
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("AverageComparison: empty input");
  }
  return stats::mean(a) - stats::mean(b) > delta_;
}

bool ProbOutperformCriterion::detects(std::span<const double> a,
                                      std::span<const double> b,
                                      rngx::Rng& rng) const {
  const auto result = stats::test_probability_of_outperforming(
      a, b, rng, gamma_, resamples_, alpha_);
  return result.conclusion ==
         stats::ComparisonConclusion::kSignificantAndMeaningful;
}

bool OracleComparison::detects(std::span<const double> a,
                               std::span<const double> b,
                               rngx::Rng& rng) const {
  (void)rng;
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("OracleComparison: bad inputs");
  }
  // One-sided z-test on the mean of paired differences with known variance
  // 2σ² per difference.
  const auto k = static_cast<double>(a.size());
  double diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) diff += a[i] - b[i];
  diff /= k;
  const double se = std::sqrt(2.0 * sigma_ * sigma_ / k);
  if (se == 0.0) return diff > 0.0;
  return diff / se > stats::normal_quantile(1.0 - alpha_);
}

}  // namespace varbench::compare

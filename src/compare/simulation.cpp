#include "src/compare/simulation.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "src/stats/distributions.h"

namespace varbench::compare {

double TaskVarianceProfile::sigma_biased_total() const {
  return std::sqrt(sigma_bias * sigma_bias + sigma_within * sigma_within);
}

std::vector<double> simulate_measures(const TaskVarianceProfile& profile,
                                      EstimatorKind kind, double mu_offset,
                                      std::size_t k, rngx::Rng& rng) {
  if (k == 0) throw std::invalid_argument("simulate_measures: k == 0");
  std::vector<double> out(k, 0.0);
  if (kind == EstimatorKind::kIdeal) {
    for (double& v : out) {
      v = rng.normal(profile.mu + mu_offset, profile.sigma_ideal);
    }
  } else {
    const double bias = rng.normal(0.0, profile.sigma_bias);
    for (double& v : out) {
      v = rng.normal(profile.mu + mu_offset + bias, profile.sigma_within);
    }
  }
  return out;
}

double mean_offset_for_probability(double p, double sigma) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("mean_offset_for_probability: p outside (0,1)");
  }
  return std::numbers::sqrt2 * sigma * stats::normal_quantile(p);
}

double probability_for_mean_offset(double delta, double sigma) {
  if (!(sigma > 0.0)) {
    throw std::invalid_argument("probability_for_mean_offset: sigma <= 0");
  }
  return stats::normal_cdf(delta / (std::numbers::sqrt2 * sigma));
}

}  // namespace varbench::compare

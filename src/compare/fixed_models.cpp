#include "src/compare/fixed_models.h"

#include <stdexcept>

#include "src/stats/descriptive.h"

namespace varbench::compare {

FixedModelComparison compare_fixed_models(std::span<const double> per_example_a,
                                          std::span<const double> per_example_b,
                                          rngx::Rng& rng, double gamma,
                                          std::size_t num_resamples,
                                          double alpha) {
  if (per_example_a.size() != per_example_b.size() || per_example_a.empty()) {
    throw std::invalid_argument("compare_fixed_models: bad inputs");
  }
  FixedModelComparison result;
  result.mean_a = stats::mean(per_example_a);
  result.mean_b = stats::mean(per_example_b);

  const std::size_t n = per_example_a.size();
  std::vector<double> mean_a_boot;
  std::vector<double> mean_b_boot;
  mean_a_boot.reserve(num_resamples);
  mean_b_boot.reserve(num_resamples);
  double wins = 0.0;
  std::vector<double> diffs;
  diffs.reserve(num_resamples);
  for (std::size_t r = 0; r < num_resamples; ++r) {
    double sa = 0.0;
    double sb = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t idx = rng.uniform_index(n);
      sa += per_example_a[idx];
      sb += per_example_b[idx];
    }
    const double ma = sa / static_cast<double>(n);
    const double mb = sb / static_cast<double>(n);
    if (ma > mb) {
      wins += 1.0;
    } else if (ma == mb) {
      wins += 0.5;
    }
    diffs.push_back(ma - mb);
  }
  result.p_a_greater_b = wins / static_cast<double>(num_resamples);
  result.ci = {stats::quantile(diffs, alpha / 2.0),
               stats::quantile(diffs, 1.0 - alpha / 2.0), 1.0 - alpha};

  const bool significant = result.ci.lower > 0.0;
  const bool meaningful = result.p_a_greater_b >= gamma;
  if (!significant) {
    result.conclusion = stats::ComparisonConclusion::kNotSignificant;
  } else if (!meaningful) {
    result.conclusion = stats::ComparisonConclusion::kNotMeaningful;
  } else {
    result.conclusion =
        stats::ComparisonConclusion::kSignificantAndMeaningful;
  }
  return result;
}

}  // namespace varbench::compare

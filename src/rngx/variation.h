// The paper's ξ: the set of all random variation sources in a learning
// pipeline, ξ = ξO ∪ ξH (§2.1). Each source has its own named seed so that
// experiments can randomize any subset while holding the rest fixed — the
// exact protocol of the paper's §2.2 variance study and §3 estimators.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "src/rngx/rng.h"

namespace varbench::rngx {

/// Every source of uncontrolled variation the paper probes (Fig. 1).
enum class VariationSource : std::uint8_t {
  kDataSplit,    // ξO: bootstrap / train-test split of the data
  kDataOrder,    // ξO: visit order in SGD
  kDataAugment,  // ξO: stochastic data augmentation
  kWeightInit,   // ξO: parameter initialization
  kDropout,      // ξO: dropout masks
  kHpo,          // ξH: hyperparameter-optimization stochasticity
  kNumerical,    // residual numerical noise (all seeds fixed)
};

inline constexpr std::array<VariationSource, 7> kAllVariationSources{
    VariationSource::kDataSplit,   VariationSource::kDataOrder,
    VariationSource::kDataAugment, VariationSource::kWeightInit,
    VariationSource::kDropout,     VariationSource::kHpo,
    VariationSource::kNumerical,
};

/// ξO only (the learning-procedure sources, excluding HOpt and the
/// numerical-noise pseudo-source).
inline constexpr std::array<VariationSource, 5> kLearningSources{
    VariationSource::kDataSplit,   VariationSource::kDataOrder,
    VariationSource::kDataAugment, VariationSource::kWeightInit,
    VariationSource::kDropout,
};

[[nodiscard]] std::string_view to_string(VariationSource source);

/// One concrete assignment of seeds to every variation source — a sampled ξ.
/// Value type: copying a VariationSeeds freezes the randomness of a run.
struct VariationSeeds {
  std::uint64_t data_split = 1;
  std::uint64_t data_order = 2;
  std::uint64_t data_augment = 3;
  std::uint64_t weight_init = 4;
  std::uint64_t dropout = 5;
  std::uint64_t hpo = 6;

  friend bool operator==(const VariationSeeds&, const VariationSeeds&) = default;

  [[nodiscard]] std::uint64_t seed_for(VariationSource source) const;
  void set_seed(VariationSource source, std::uint64_t seed);

  /// Independent generator for one source, as used inside the pipeline.
  [[nodiscard]] Rng rng_for(VariationSource source) const;

  /// All seeds drawn fresh from `master` — the paper's "ξ ∼ RNG()".
  [[nodiscard]] static VariationSeeds random(Rng& master);

  /// Copy of *this with only `source` re-randomized (variance probing:
  /// "randomize the seeds 200 times while keeping all other sources fixed").
  [[nodiscard]] VariationSeeds with_randomized(VariationSource source,
                                               Rng& master) const;

  /// Copy of *this with every source in `sources` re-randomized.
  template <typename Range>
  [[nodiscard]] VariationSeeds with_randomized_set(const Range& sources,
                                                   Rng& master) const {
    VariationSeeds out = *this;
    for (const VariationSource s : sources) {
      out = out.with_randomized(s, master);
    }
    return out;
  }
};

}  // namespace varbench::rngx

#include "src/rngx/variation.h"

#include <stdexcept>

namespace varbench::rngx {

std::string_view to_string(VariationSource source) {
  switch (source) {
    case VariationSource::kDataSplit:
      return "data_split";
    case VariationSource::kDataOrder:
      return "data_order";
    case VariationSource::kDataAugment:
      return "data_augment";
    case VariationSource::kWeightInit:
      return "weight_init";
    case VariationSource::kDropout:
      return "dropout";
    case VariationSource::kHpo:
      return "hpo";
    case VariationSource::kNumerical:
      return "numerical_noise";
  }
  return "unknown";
}

std::uint64_t VariationSeeds::seed_for(VariationSource source) const {
  switch (source) {
    case VariationSource::kDataSplit:
      return data_split;
    case VariationSource::kDataOrder:
      return data_order;
    case VariationSource::kDataAugment:
      return data_augment;
    case VariationSource::kWeightInit:
      return weight_init;
    case VariationSource::kDropout:
      return dropout;
    case VariationSource::kHpo:
      return hpo;
    case VariationSource::kNumerical:
      // Numerical noise has no seed: it is what remains when all seeds are
      // fixed. Callers probing it simply re-run with identical seeds.
      return 0;
  }
  throw std::invalid_argument("seed_for: unknown source");
}

void VariationSeeds::set_seed(VariationSource source, std::uint64_t seed) {
  switch (source) {
    case VariationSource::kDataSplit:
      data_split = seed;
      return;
    case VariationSource::kDataOrder:
      data_order = seed;
      return;
    case VariationSource::kDataAugment:
      data_augment = seed;
      return;
    case VariationSource::kWeightInit:
      weight_init = seed;
      return;
    case VariationSource::kDropout:
      dropout = seed;
      return;
    case VariationSource::kHpo:
      hpo = seed;
      return;
    case VariationSource::kNumerical:
      return;  // no seed to set; see seed_for()
  }
  throw std::invalid_argument("set_seed: unknown source");
}

Rng VariationSeeds::rng_for(VariationSource source) const {
  // Mix the per-source seed with the source tag so identical numeric seeds on
  // different sources still give independent streams.
  return Rng{derive_seed(seed_for(source), to_string(source))};
}

VariationSeeds VariationSeeds::random(Rng& master) {
  VariationSeeds s;
  s.data_split = master.next_u64();
  s.data_order = master.next_u64();
  s.data_augment = master.next_u64();
  s.weight_init = master.next_u64();
  s.dropout = master.next_u64();
  s.hpo = master.next_u64();
  return s;
}

VariationSeeds VariationSeeds::with_randomized(VariationSource source,
                                               Rng& master) const {
  VariationSeeds out = *this;
  if (source != VariationSource::kNumerical) {
    out.set_seed(source, master.next_u64());
  }
  return out;
}

}  // namespace varbench::rngx

// Deterministic, platform-independent random number generation.
//
// varbench reproduces experiments about *sources of randomness*, so the RNG
// layer must be bit-reproducible across platforms and standard libraries.
// std::mt19937 is portable but the std::*_distribution adaptors are not;
// here both the engine (xoshiro256++) and the distributions are our own.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace varbench::rngx {

/// SplitMix64: used to expand a 64-bit seed into engine state and to derive
/// independent stream seeds from (master seed, tag) pairs.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// FNV-1a hash of a string tag, for deriving named sub-streams.
[[nodiscard]] constexpr std::uint64_t hash_tag(std::string_view tag) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : tag) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Derive an independent stream seed from a master seed and a tag. Two
/// different tags give statistically independent streams; the same pair is
/// always the same stream.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t master,
                                                  std::string_view tag) {
  std::uint64_t s = master ^ hash_tag(tag);
  return splitmix64(s);
}

/// Full serializable state of an Rng — checkpointing RNG streams is what
/// makes interrupted-and-resumed trainings bit-identical to uninterrupted
/// ones (the paper's Appendix A reproducibility protocol).
struct RngState {
  std::array<std::uint64_t, 4> engine{};
  double cached_normal = 0.0;
  bool has_cached_normal = false;

  friend bool operator==(const RngState&, const RngState&) = default;
};

/// xoshiro256++ engine (Blackman & Vigna). Fast, 256-bit state, passes BigCrush.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  [[nodiscard]] RngState save_state() const {
    return {state_, cached_normal_, has_cached_normal_};
  }
  void load_state(const RngState& s) {
    state_ = s.engine;
    cached_normal_ = s.cached_normal;
    has_cached_normal_ = s.has_cached_normal;
  }

  [[nodiscard]] std::uint64_t next_u64();
  std::uint64_t operator()() { return next_u64(); }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform();
  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);
  /// Log-uniform double in [lo, hi), lo > 0.
  [[nodiscard]] double log_uniform(double lo, double hi);
  /// Uniform integer in [0, n). Unbiased (rejection sampling).
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box–Muller (deterministic cache of the pair).
  [[nodiscard]] double normal();
  [[nodiscard]] double normal(double mean, double stddev);
  /// Bernoulli draw.
  [[nodiscard]] bool bernoulli(double p);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = uniform_index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// n indices drawn uniformly with replacement from [0, pool) — the bootstrap
  /// resampling primitive.
  [[nodiscard]] std::vector<std::size_t> sample_with_replacement(
      std::size_t pool, std::size_t n);

  /// A derived, independent child generator (for nested procedures that must
  /// not perturb the parent's stream).
  [[nodiscard]] Rng split(std::string_view tag);

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace varbench::rngx

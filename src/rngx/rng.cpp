#include "src/rngx/rng.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "src/metrics/metrics.h"

namespace varbench::rngx {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// next_u64 is the hottest function in the tree, so go through a cached
// reference: add() inlines to the one-branch is_enabled gate with no
// global_sink() call per draw. Totals stay thread-count-invariant because
// the multiset of derivations/draws is fixed by the determinism contract
// (pinned by tests/test_metrics.cpp).
metrics::Sink& g_sink = metrics::global_sink();
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  g_sink.add(metrics::kRngxStreamsDerived);
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  g_sink.add(metrics::kRngxDraws);
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits → double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  if (!(lo <= hi)) throw std::invalid_argument("uniform: lo > hi");
  return lo + (hi - lo) * uniform();
}

double Rng::log_uniform(double lo, double hi) {
  if (!(lo > 0.0 && hi >= lo)) {
    throw std::invalid_argument("log_uniform: need 0 < lo <= hi");
  }
  return std::exp(uniform(std::log(lo), std::log(hi)));
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("uniform_index: n == 0");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  const auto range =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi-lo fits: caller's contract
  return lo + static_cast<std::int64_t>(uniform_index(range));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<std::size_t> Rng::sample_with_replacement(std::size_t pool,
                                                      std::size_t n) {
  std::vector<std::size_t> out(n);
  for (auto& idx : out) idx = uniform_index(pool);
  return out;
}

Rng Rng::split(std::string_view tag) {
  const std::uint64_t child_seed = next_u64() ^ hash_tag(tag);
  return Rng{child_seed};
}

}  // namespace varbench::rngx

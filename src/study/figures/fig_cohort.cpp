// The §6 / appendix cohort studies: many-contestant competitions, multi-
// dataset comparisons, the MHC model-design tables, and the App. B
// splitter ablation. Each repetition (one shared ξ draw measured under
// every contestant/variant/design) runs on its own stream, so the paired
// structure survives sharding exactly.
#include <array>
#include <cmath>
#include <span>
#include <string>
#include <vector>

#include "src/casestudies/registry.h"
#include "src/compare/multiple.h"
#include "src/core/pipeline.h"
#include "src/core/splitter.h"
#include "src/math/matrix.h"
#include "src/ml/dataset.h"
#include "src/ml/metrics.h"
#include "src/ml/synthetic.h"
#include "src/ml/train.h"
#include "src/rngx/variation.h"
#include "src/stats/descriptive.h"
#include "src/stats/multi_dataset.h"
#include "src/stats/tests.h"
#include "src/study/figures/figures_common.h"

namespace varbench::study::figures {

// ----------------------------------------------------- multi_contestants

namespace {

struct Contestant {
  std::string name;
  hpo::ParamPoint params;
};

/// Six contestants: the default recipe plus variations of decreasing
/// quality, two nearly tied at the top (the bench's §6 cast). Parameters
/// absent from a task's search space are simply ignored by the pipeline.
std::vector<Contestant> contestant_entries(
    const core::LearningPipeline& pipeline) {
  std::vector<Contestant> entries;
  const auto defaults = pipeline.default_params();
  auto tuned_a = defaults;
  tuned_a["weight_decay"] = 0.008;  // the best recipe at this scale...
  entries.push_back({"tuned-A", tuned_a});
  auto tuned_b = tuned_a;
  tuned_b["lr_gamma"] = 0.9705;  // ...and a statistically-tied twin
  entries.push_back({"tuned-B", tuned_b});
  entries.push_back({"default", defaults});
  auto slow = defaults;
  slow["learning_rate"] = 0.004;
  entries.push_back({"slow-lr", slow});
  auto fast = defaults;
  fast["learning_rate"] = 0.25;
  fast["momentum"] = 0.98;
  entries.push_back({"hot-lr", fast});
  auto crippled = defaults;
  crippled["learning_rate"] = 0.0012;
  entries.push_back({"crippled", crippled});
  return entries;
}

/// Rebuild the per-contestant paired score series from a cohort-style
/// table (value column `column`, grouped by `label_col` appearance order).
std::pair<std::vector<std::string>, compare::ContestantScores>
scores_by_label(const ResultTable& t, std::string_view label_col,
                std::string_view column) {
  const std::size_t lc = t.column_index(label_col);
  const std::size_t vc = t.column_index(column);
  std::vector<std::string> labels;
  compare::ContestantScores scores;
  for (const Row& row : t.rows) {
    const std::string& label = row[lc].as_string();
    std::size_t i = labels.size();
    for (std::size_t j = 0; j < labels.size(); ++j) {
      if (labels[j] == label) i = j;
    }
    if (i == labels.size()) {
      labels.push_back(label);
      scores.emplace_back();
    }
    scores[i].push_back(row[vc].as_double());
  }
  return {std::move(labels), std::move(scores)};
}

}  // namespace

ResultTable run_multi_contestants(const StudySpec& spec) {
  ResultTable t;
  t.columns = {"seq", "contestant", "rep", "measure"};
  const auto cs = casestudies::make_case_study(spec.case_study, spec.scale);
  const auto entries = contestant_entries(*cs.pipeline);
  const auto slice = slice_of(spec, spec.repetitions);
  // Paired design: every contestant sees the same per-rep ξ draw.
  const auto measures =
      exec::parallel_replicate_range<std::vector<double>>(
          exec_of(spec), slice, rngx::derive_seed(spec.seed, "contestants"),
          "multi_contestants_rep", [&](std::size_t, rngx::Rng& rng) {
            const auto seeds = rngx::VariationSeeds::random(rng);
            std::vector<double> out;
            out.reserve(entries.size());
            for (const auto& entry : entries) {
              out.push_back(core::measure_with_params(
                  *cs.pipeline, *cs.pool, *cs.splitter, entry.params, seeds));
            }
            return out;
          });
  GroupSeq gs;
  const std::size_t start = gs.enter(spec.repetitions, entries.size());
  for (std::size_t j = 0; j < measures.size(); ++j) {
    const std::size_t rep = slice.begin + j;
    for (std::size_t c = 0; c < entries.size(); ++c) {
      t.add_row({Cell{gs.seq(start, rep, c)}, Cell{entries[c].name},
                 Cell{rep}, Cell{measures[j][c]}});
    }
  }
  return t;
}

void summarize_multi_contestants(const ResultTable& t, std::FILE* out) {
  const StudySpec& spec = t.spec.value();
  const auto [names, scores] = scores_by_label(t, "contestant", "measure");

  std::fprintf(out, "mean performance per contestant\n");
  for (std::size_t c = 0; c < names.size(); ++c) {
    std::fprintf(out, "  %-12s %.4f ± %.4f\n", names[c].c_str(),
                 stats::mean(scores[c]), stats::stddev(scores[c]));
  }

  std::fprintf(out, "\npairwise P(row > column)\n  %-12s", "");
  for (const auto& n : names) {
    std::fprintf(out, " %10s", n.substr(0, 10).c_str());
  }
  std::fprintf(out, "\n");
  const auto pab = compare::pairwise_pab_matrix(scores);
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::fprintf(out, "  %-12s", names[i].c_str());
    for (std::size_t j = 0; j < names.size(); ++j) {
      std::fprintf(out, " %10.2f", pab(i, j));
    }
    std::fprintf(out, "\n");
  }

  std::fprintf(out,
               "\ntop group (best + all not significantly-and-meaningfully "
               "worse)\n");
  rngx::Rng top_rng{rngx::derive_seed(spec.seed, "top")};
  const auto top = compare::significance_top_group(
      scores, top_rng, spec.figure.gamma, 0.05, spec.figure.resamples);
  std::fprintf(out, "  best by mean: %s (Bonferroni-adjusted alpha = %.4f)\n",
               names[top.best].c_str(), top.adjusted_alpha);
  std::fprintf(out, "  report together:");
  for (const auto idx : top.group) std::fprintf(out, " %s",
                                                names[idx].c_str());
  std::fprintf(out, "\n");

  std::fprintf(out, "\nranking stability under bootstrap of the splits\n");
  rngx::Rng boot_rng{rngx::derive_seed(spec.seed, "rank")};
  const auto stability = compare::ranking_stability(
      scores, boot_rng, 4 * spec.figure.resamples);
  std::fprintf(out, "  %-12s %12s %28s\n", "contestant", "P(rank 1)",
               "rank distribution (1..n)");
  for (std::size_t c = 0; c < names.size(); ++c) {
    std::fprintf(out, "  %-12s %11.1f%%    ", names[c].c_str(),
                 100.0 * stability.prob_first[c]);
    for (std::size_t r = 0; r < names.size(); ++r) {
      std::fprintf(out, " %4.0f%%", 100.0 * stability.rank_probability(c, r));
    }
    std::fprintf(out, "\n");
  }
  std::fprintf(out,
               "\nReading: near-tied contestants split P(rank 1) — declaring "
               "a single\n'winner' is arbitrary, which is why the paper "
               "recommends reporting the\nwhole significance group.\n");
}

// -------------------------------------------------------- multi_dataset

namespace {

constexpr std::array<std::pair<std::string_view, double>, 3> kVariants{
    {{"tuned", 1.0}, {"half-lr", 0.5}, {"tenth-lr", 0.1}}};

}  // namespace

ResultTable run_multi_dataset(const StudySpec& spec) {
  ResultTable t;
  t.columns = {"seq", "dataset", "variant", "run", "measure"};
  GroupSeq gs;
  for (const auto& task : resolve_tasks(spec)) {
    const auto cs = casestudies::make_case_study(task, spec.scale);
    const auto slice = slice_of(spec, spec.repetitions);
    const auto runs =
        exec::parallel_replicate_range<std::array<double, kVariants.size()>>(
            exec_of(spec), slice, rngx::derive_seed(spec.seed, task),
            "multi_dataset_run", [&](std::size_t, rngx::Rng& rng) {
              const auto seeds = rngx::VariationSeeds::random(rng);  // paired
              std::array<double, kVariants.size()> out{};
              for (std::size_t v = 0; v < kVariants.size(); ++v) {
                auto params = cs.pipeline->default_params();
                if (params.count("learning_rate") != 0) {
                  params["learning_rate"] *= kVariants[v].second;
                }
                out[v] = core::measure_with_params(
                    *cs.pipeline, *cs.pool, *cs.splitter, params, seeds);
              }
              return out;
            });
    const std::size_t start = gs.enter(spec.repetitions, kVariants.size());
    for (std::size_t j = 0; j < runs.size(); ++j) {
      const std::size_t run = slice.begin + j;
      for (std::size_t v = 0; v < kVariants.size(); ++v) {
        t.add_row({Cell{gs.seq(start, run, v)}, Cell{task},
                   Cell{std::string{kVariants[v].first}}, Cell{run},
                   Cell{runs[j][v]}});
      }
    }
  }
  return t;
}

void summarize_multi_dataset(const ResultTable& t, std::FILE* out) {
  const std::size_t dataset_col = t.column_index("dataset");
  const std::size_t variant_col = t.column_index("variant");
  const std::size_t measure_col = t.column_index("measure");
  std::vector<std::string> datasets;
  for (const Row& row : t.rows) {
    const std::string& d = row[dataset_col].as_string();
    if (datasets.empty() || datasets.back() != d) datasets.push_back(d);
  }
  // Raw series per (dataset, variant).
  std::vector<std::array<std::vector<double>, kVariants.size()>> series(
      datasets.size());
  for (const Row& row : t.rows) {
    std::size_t d = 0;
    while (datasets[d] != row[dataset_col].as_string()) ++d;
    std::size_t v = 0;
    while (kVariants[v].first != row[variant_col].as_string()) ++v;
    series[d][v].push_back(row[measure_col].as_double());
  }

  math::Matrix mean_scores{datasets.size(), kVariants.size()};
  std::fprintf(out, "mean score per (dataset, variant)\n  %-18s", "dataset");
  for (const auto& [name, mult] : kVariants) {
    std::fprintf(out, " %10s", std::string{name}.c_str());
  }
  std::fprintf(out, "\n");
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    std::fprintf(out, "  %-18s", datasets[d].c_str());
    for (std::size_t v = 0; v < kVariants.size(); ++v) {
      mean_scores(d, v) = stats::mean(series[d][v]);
      std::fprintf(out, " %10.4f", mean_scores(d, v));
    }
    std::fprintf(out, "\n");
  }

  std::fprintf(out, "\nDemsar: Friedman test + Nemenyi critical difference\n");
  const auto fr = stats::friedman_test(mean_scores);
  std::fprintf(out, "  chi2_F = %.3f, p = %.4f (Iman-Davenport F = %.3f)\n",
               fr.chi_squared, fr.p_value, fr.iman_davenport_f);
  std::fprintf(out, "  average ranks:");
  for (std::size_t v = 0; v < kVariants.size(); ++v) {
    std::fprintf(out, " %s=%.2f", std::string{kVariants[v].first}.c_str(),
                 fr.average_ranks[v]);
  }
  std::fprintf(out, "\n  Nemenyi CD (alpha=0.05) = %.2f ranks\n",
               stats::nemenyi_critical_difference(kVariants.size(),
                                                  datasets.size()));
  const auto group = stats::nemenyi_top_group(fr, datasets.size());
  std::fprintf(out, "  indistinguishable-from-best group:");
  for (const auto v : group) {
    std::fprintf(out, " %s", std::string{kVariants[v].first}.c_str());
  }
  std::fprintf(out, "\n");

  std::fprintf(out,
               "\nDror et al.: per-dataset replicability (tuned vs "
               "tenth-lr)\n");
  std::vector<double> pvals;
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    pvals.push_back(
        stats::wilcoxon_signed_rank(series[d][0], series[d][2]).p_value);
  }
  const auto rep = stats::replicability_analysis(pvals, 0.05);
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    std::fprintf(out, "  %-18s p = %.4f  %s\n", datasets[d].c_str(),
                 pvals[d], rep.significant[d] ? "significant" : "-");
  }
  std::fprintf(out, "  significant on %zu/%zu datasets; improves-on-all: %s\n",
               rep.significant_count, rep.dataset_count,
               rep.improves_on_all ? "YES" : "no");
  std::fprintf(out,
               "\nReading: with few datasets the Friedman test's power is "
               "limited,\nwhile the per-dataset counting verdict is direct "
               "and interpretable.\n");
}

// --------------------------------------------------------------- table8

namespace {

struct ModelScore {
  double auc = 0.0;
  double pcc = 0.0;
};

ml::TrainConfig mhc_train_config(std::size_t hidden) {
  ml::TrainConfig cfg;
  cfg.model.hidden = {hidden};
  cfg.optimizer = ml::OptimizerKind::kAdam;
  cfg.loss = ml::LossKind::kMse;
  cfg.opt.learning_rate = 0.01;
  cfg.epochs = 15;
  cfg.batch_size = 64;
  return cfg;
}

ModelScore evaluate_single(const ml::Dataset& train, const ml::Dataset& test,
                           std::size_t hidden,
                           const rngx::VariationSeeds& seeds) {
  const auto m = ml::train_mlp(train, mhc_train_config(hidden), seeds);
  return {ml::evaluate_model(m, test, ml::Metric::kAuc, 0.5),
          ml::evaluate_model(m, test, ml::Metric::kPearson)};
}

/// MHCflurry-style: average the predictions of several independently
/// initialized shallow MLPs.
ModelScore evaluate_ensemble(const ml::Dataset& train, const ml::Dataset& test,
                             std::size_t members, std::size_t hidden,
                             rngx::Rng& master) {
  std::vector<double> avg(test.size(), 0.0);
  for (std::size_t e = 0; e < members; ++e) {
    rngx::VariationSeeds s;
    s.weight_init = master.next_u64();
    s.data_order = master.next_u64();
    const auto m = ml::train_mlp(train, mhc_train_config(hidden), s);
    const auto pred = m.forward(test.x);
    for (std::size_t i = 0; i < test.size(); ++i) avg[i] += pred(i, 0);
  }
  for (double& v : avg) v /= static_cast<double>(members);
  return {ml::roc_auc(avg, ml::binarize(test.y, 0.5)),
          stats::pearson(avg, test.y)};
}

constexpr std::string_view kTable8Models[] = {
    "MLP-MHC (single, h=150)", "NetMHCpan4-analogue (single, h=60)",
    "MHCflurry-analogue (8-ensemble, h=60)"};

}  // namespace

ResultTable run_table8(const StudySpec& spec) {
  ResultTable t;
  t.columns = {"seq", "model", "rep", "auc", "pcc"};
  const auto cs = casestudies::make_case_study(spec.case_study, spec.scale);
  const auto slice = slice_of(spec, spec.repetitions);
  const auto reps =
      exec::parallel_replicate_range<std::array<ModelScore, 3>>(
          exec_of(spec), slice, rngx::derive_seed(spec.seed, "table8"),
          "table8_rep", [&](std::size_t, rngx::Rng& rng) {
            const auto seeds = rngx::VariationSeeds::random(rng);
            auto split_rng =
                seeds.rng_for(rngx::VariationSource::kDataSplit);
            const auto split = cs.splitter->split(*cs.pool, split_rng);
            const auto [train, test] = core::materialize(*cs.pool, split);
            std::array<ModelScore, 3> out;
            out[0] = evaluate_single(train, test, 150, seeds);
            out[1] = evaluate_single(train, test, 60, seeds);
            auto ens_rng = rng.split("ensemble");
            out[2] = evaluate_ensemble(train, test, 8, 60, ens_rng);
            return out;
          });
  GroupSeq gs;
  const std::size_t start =
      gs.enter(spec.repetitions, std::size(kTable8Models));
  for (std::size_t j = 0; j < reps.size(); ++j) {
    const std::size_t rep = slice.begin + j;
    for (std::size_t m = 0; m < std::size(kTable8Models); ++m) {
      t.add_row({Cell{gs.seq(start, rep, m)},
                 Cell{std::string{kTable8Models[m]}}, Cell{rep},
                 Cell{reps[j][m].auc}, Cell{reps[j][m].pcc}});
    }
  }
  return t;
}

void summarize_table8(const ResultTable& t, std::FILE* out) {
  const std::size_t model_col = t.column_index("model");
  const std::size_t auc_col = t.column_index("auc");
  const std::size_t pcc_col = t.column_index("pcc");
  std::fprintf(out, "  %-40s %14s %14s\n", "model design", "AUC", "PCC");
  for (const std::string_view model : kTable8Models) {
    std::vector<double> auc;
    std::vector<double> pcc;
    for (const Row& row : t.rows) {
      if (row[model_col].as_string() != model) continue;
      auc.push_back(row[auc_col].as_double());
      pcc.push_back(row[pcc_col].as_double());
    }
    std::fprintf(out, "  %-40s %7.3f±%.3f %7.3f±%.3f\n",
                 std::string{model}.c_str(), stats::mean(auc),
                 stats::stddev(auc), stats::mean(pcc), stats::stddev(pcc));
  }
  std::fprintf(out,
               "\n  paper (Table 8, NetMHC-CVsplits): NetMHCpan4 AUC .854 "
               "PCC .620;\n  MHCflurry .964*/.671* (leakage-inflated); "
               "MLP-MHC .861/.660.\nShape check: designs within a few points "
               "of each other; the ensemble\nat least matches the equivalent "
               "single model.\n");
}

// --------------------------------------------------- ablation_splitters

namespace {

constexpr std::size_t kSplitsPerProcedure = 5;

ml::GaussianMixtureConfig splitters_generator(double scale) {
  ml::GaussianMixtureConfig gen;
  gen.num_classes = 4;
  gen.dim = 12;
  gen.n = static_cast<std::size_t>(1200 * scale) + 300;
  gen.class_sep = 2.2;
  gen.label_noise = 0.05;
  return gen;
}

ml::TrainConfig splitters_train_config() {
  ml::TrainConfig cfg;
  cfg.model.hidden = {12};
  cfg.opt.learning_rate = 0.05;
  cfg.opt.momentum = 0.9;
  cfg.epochs = 8;
  cfg.batch_size = 32;
  return cfg;
}

constexpr std::string_view kStrategies[] = {"out_of_bootstrap",
                                            "cross_validation",
                                            "fixed_holdout"};

/// One procedure (k measures) of one strategy on its own stream.
std::vector<double> run_procedure(std::string_view strategy,
                                  const ml::Dataset& pool,
                                  const ml::TrainConfig& tcfg,
                                  rngx::Rng& rng) {
  std::vector<double> out;
  if (strategy == "cross_validation") {
    auto fold_rng = rng.split("cv");
    for (const auto& fold :
         core::cross_validation_folds(pool, kSplitsPerProcedure, fold_rng)) {
      const auto seeds = rngx::VariationSeeds::random(rng);
      const auto [train, test] = core::materialize(pool, fold);
      out.push_back(ml::evaluate_model(ml::train_mlp(train, tcfg, seeds),
                                       test, ml::Metric::kAccuracy));
    }
    return out;
  }
  const core::OutOfBootstrapSplitter oob;
  const core::FixedHoldoutSplitter fixed{0.8};
  const core::Splitter& splitter =
      strategy == "fixed_holdout" ? static_cast<const core::Splitter&>(fixed)
                                  : oob;
  for (std::size_t i = 0; i < kSplitsPerProcedure; ++i) {
    const auto seeds = rngx::VariationSeeds::random(rng);
    auto split_rng = seeds.rng_for(rngx::VariationSource::kDataSplit);
    const auto split = splitter.split(pool, split_rng);
    const auto [train, test] = core::materialize(pool, split);
    out.push_back(ml::evaluate_model(ml::train_mlp(train, tcfg, seeds), test,
                                     ml::Metric::kAccuracy));
  }
  return out;
}

}  // namespace

ResultTable run_ablation_splitters(const StudySpec& spec) {
  ResultTable t;
  t.columns = {"seq", "strategy", "rep", "mean", "within_std"};
  const auto gen = splitters_generator(spec.scale);
  rngx::Rng pool_rng{rngx::derive_seed(spec.seed, "pool")};
  const auto pool = ml::make_gaussian_mixture(gen, pool_rng);
  const auto tcfg = splitters_train_config();
  GroupSeq gs;

  // Ground truth: train on the full pool, evaluate on a large fresh draw
  // from the generating distribution D — a one-row group.
  {
    const auto truth_slice = slice_of(spec, 1);
    const std::size_t start = gs.enter(1);
    if (truth_slice.size() != 0) {
      auto fresh_cfg = gen;
      fresh_cfg.n = 20000;
      rngx::Rng fresh_rng{rngx::derive_seed(spec.seed, "fresh")};
      const auto fresh = ml::make_gaussian_mixture(fresh_cfg, fresh_rng);
      const rngx::VariationSeeds base_seeds;
      const double truth = ml::evaluate_model(
          ml::train_mlp(pool, tcfg, base_seeds), fresh,
          ml::Metric::kAccuracy);
      t.add_row({Cell{gs.seq(start, 0)}, Cell{"truth"},
                 Cell{std::size_t{0}}, Cell{truth}, Cell{0.0}});
    }
  }

  for (const std::string_view strategy : kStrategies) {
    const auto slice = slice_of(spec, spec.repetitions);
    struct ProcedureStats {
      double mean = 0.0;
      double within_std = 0.0;
    };
    const auto procedures = exec::parallel_replicate_range<ProcedureStats>(
        exec_of(spec), slice,
        rngx::derive_seed(spec.seed, std::string{strategy}),
        "splitters_procedure", [&](std::size_t, rngx::Rng& rng) {
          const auto m = run_procedure(strategy, pool, tcfg, rng);
          return ProcedureStats{stats::mean(m), stats::stddev(m)};
        });
    const std::size_t start = gs.enter(spec.repetitions);
    for (std::size_t j = 0; j < procedures.size(); ++j) {
      const std::size_t rep = slice.begin + j;
      t.add_row({Cell{gs.seq(start, rep)}, Cell{std::string{strategy}},
                 Cell{rep}, Cell{procedures[j].mean},
                 Cell{procedures[j].within_std}});
    }
  }
  return t;
}

void summarize_ablation_splitters(const ResultTable& t, std::FILE* out) {
  const std::size_t strategy_col = t.column_index("strategy");
  const std::size_t mean_col = t.column_index("mean");
  const std::size_t std_col = t.column_index("within_std");
  double truth = 0.0;
  for (const Row& row : t.rows) {
    if (row[strategy_col].as_string() == "truth") {
      truth = row[mean_col].as_double();
    }
  }
  std::fprintf(out, "ground truth (fresh draws from D): accuracy = %.4f\n\n",
               truth);
  std::fprintf(out, "%zu measures per procedure, repeated\n",
               kSplitsPerProcedure);
  for (const std::string_view strategy : kStrategies) {
    std::vector<double> means;
    std::vector<double> withins;
    for (const Row& row : t.rows) {
      if (row[strategy_col].as_string() != strategy) continue;
      means.push_back(row[mean_col].as_double());
      withins.push_back(row[std_col].as_double());
    }
    const double mean = stats::mean(means);
    std::fprintf(out,
                 "  %-18s mean=%.4f  |mean-truth|=%.4f  std(mean)=%.4f  "
                 "within-std=%.4f\n",
                 std::string{strategy}.c_str(), mean, std::abs(mean - truth),
                 stats::stddev(means), stats::mean(withins));
  }
  std::fprintf(out,
               "\nReading: the fixed held-out set has the smallest "
               "*within*-procedure\nspread but its mean estimate carries the "
               "bias of that one arbitrary\nsplit — the paper's argument for "
               "out-of-bootstrap when the goal is the\nexpected performance "
               "on D. CV's folds overlap in train data,\ncorrelating its "
               "measures; OOB supports any train/test sizes.\n");
}

}  // namespace varbench::study::figures

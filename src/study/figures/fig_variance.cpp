// Fig. 1 (variance decomposition across case studies) and Fig. G.3
// (per-source normality): both drive the core variance-study engine per
// task, emitting raw per-repetition measures. Shard slices pass straight
// through to the engine's shard_index/shard_count support; the G.3
// "Altogether" group fans out on its own per-index streams.
#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/casestudies/registry.h"
#include "src/core/pipeline.h"
#include "src/core/variance_study.h"
#include "src/rngx/variation.h"
#include "src/stats/descriptive.h"
#include "src/stats/shapiro_wilk.h"
#include "src/study/figures/figures_common.h"

namespace varbench::study::figures {

namespace {

/// Group the (task, source) rows of a variance-style table in
/// first-appearance order — tables are seq-ordered, so groups are
/// contiguous in complete artifacts.
struct SourceGroup {
  std::string task;
  std::string source;
  std::vector<double> measures;
};

std::vector<SourceGroup> source_groups(const ResultTable& t) {
  const std::size_t task_col = t.column_index("task");
  const std::size_t source_col = t.column_index("source");
  const std::size_t measure_col = t.column_index("measure");
  std::vector<SourceGroup> groups;
  for (const Row& row : t.rows) {
    const std::string& task = row[task_col].as_string();
    const std::string& source = row[source_col].as_string();
    if (groups.empty() || groups.back().task != task ||
        groups.back().source != source) {
      groups.push_back(SourceGroup{task, source, {}});
    }
    groups.back().measures.push_back(row[measure_col].as_double());
  }
  return groups;
}

core::VarianceStudyConfig variance_config(const StudySpec& spec) {
  core::VarianceStudyConfig cfg;
  cfg.repetitions = spec.repetitions;
  cfg.exec = exec_of(spec);
  cfg.shard_index = spec.shard.index;
  cfg.shard_count = spec.shard.count;
  return cfg;
}

/// Emit one engine result into the table, advancing the global seq
/// bookkeeping; shard slices of each source group land at their global
/// rep indices.
void emit_variance_rows(const StudySpec& spec, const std::string& task,
                        const core::VarianceStudyResult& result,
                        std::size_t hpo_repetitions, GroupSeq& gs,
                        ResultTable& t) {
  for (const auto& row : result.rows) {
    const std::size_t group_size = row.source == rngx::VariationSource::kHpo
                                       ? hpo_repetitions
                                       : spec.repetitions;
    const auto slice = slice_of(spec, group_size);
    if (row.measures.size() != slice.size()) {
      throw std::logic_error("figure variance runner: engine returned " +
                             std::to_string(row.measures.size()) +
                             " measures for a slice of " +
                             std::to_string(slice.size()));
    }
    const std::size_t start = gs.enter(group_size);
    for (std::size_t j = 0; j < row.measures.size(); ++j) {
      const std::size_t rep = slice.begin + j;
      t.add_row({Cell{gs.seq(start, rep)}, Cell{task}, Cell{row.label},
                 Cell{rep}, Cell{row.measures[j]}});
    }
  }
}

}  // namespace

// ---------------------------------------------------------------- fig01

ResultTable run_fig01(const StudySpec& spec) {
  ResultTable t;
  t.columns = {"seq", "task", "source", "rep", "measure"};
  GroupSeq gs;
  const std::size_t hpo_reps =
      spec.figure.hpo_repetitions != 0
          ? spec.figure.hpo_repetitions
          : std::max<std::size_t>(3, spec.repetitions / 4);
  for (const auto& task : resolve_tasks(spec)) {
    const auto cs = casestudies::make_case_study(task, spec.scale);
    core::VarianceStudyConfig cfg = variance_config(spec);
    cfg.hpo_algorithms = spec.figure.hpo_algorithms;
    cfg.hpo_repetitions = hpo_reps;
    cfg.hpo_budget = spec.figure.hpo_budget;
    cfg.include_numerical_noise = true;
    rngx::Rng master{rngx::derive_seed(spec.seed, task)};
    const auto result = core::run_variance_study(*cs.pipeline, *cs.pool,
                                                 *cs.splitter, cfg, master);
    emit_variance_rows(spec, task, result, hpo_reps, gs, t);
  }
  return t;
}

void summarize_fig01(const ResultTable& t, std::FILE* out) {
  const auto groups = source_groups(t);
  std::string task;
  double boot = 0.0;
  for (const auto& g : groups) {
    if (g.task != task) {
      task = g.task;
      boot = 0.0;
      for (const auto& other : groups) {
        if (other.task == task && other.source == "Data (bootstrap)") {
          boot = stats::stddev(other.measures);
        }
      }
      std::fprintf(out, "\n%s\n", task.c_str());
      std::fprintf(out, "  %-22s %10s %10s %14s\n", "source", "mean", "std",
                   "std/bootstrap");
    }
    const double stddev = stats::stddev(g.measures);
    std::fprintf(out, "  %-22s %10.4f %10.4f %14.2f\n", g.source.c_str(),
                 stats::mean(g.measures), stddev,
                 boot > 0.0 ? stddev / boot : 0.0);
  }
  std::fprintf(out,
               "\nShape check vs paper: bootstrap row should have the largest "
               "std in\nmost tasks, and the HPO rows should be comparable to "
               "the weight-init\nrow (Fig. 1's center-of-mass).\n");
}

// ---------------------------------------------------------------- figG3

ResultTable run_figG3(const StudySpec& spec) {
  ResultTable t;
  t.columns = {"seq", "task", "source", "rep", "measure"};
  GroupSeq gs;
  for (const auto& task : resolve_tasks(spec)) {
    const auto cs = casestudies::make_case_study(task, spec.scale);
    core::VarianceStudyConfig cfg = variance_config(spec);
    cfg.include_numerical_noise = false;  // the figure's source set
    rngx::Rng master{rngx::derive_seed(spec.seed, task)};
    const auto result = core::run_variance_study(*cs.pipeline, *cs.pool,
                                                 *cs.splitter, cfg, master);
    emit_variance_rows(spec, task, result, /*hpo_repetitions=*/0, gs, t);

    // "Altogether": every learning ξO source randomized jointly, as in the
    // figure's last row, on per-index streams.
    const auto defaults = cs.pipeline->default_params();
    const auto slice = slice_of(spec, spec.repetitions);
    const auto measures = exec::parallel_replicate_range<double>(
        exec_of(spec), slice,
        rngx::derive_seed(spec.seed, task + ":altogether"),
        "figG3_altogether", [&](std::size_t, rngx::Rng& rng) {
          const rngx::VariationSeeds base;
          const auto seeds =
              base.with_randomized_set(rngx::kLearningSources, rng);
          return core::measure_with_params(*cs.pipeline, *cs.pool,
                                           *cs.splitter, defaults, seeds);
        });
    const std::size_t start = gs.enter(spec.repetitions);
    for (std::size_t j = 0; j < measures.size(); ++j) {
      const std::size_t rep = slice.begin + j;
      t.add_row({Cell{gs.seq(start, rep)}, Cell{task}, Cell{"Altogether"},
                 Cell{rep}, Cell{measures[j]}});
    }
  }
  return t;
}

void summarize_figG3(const ResultTable& t, std::FILE* out) {
  std::fprintf(out, "  %-18s %-22s %8s %8s\n", "task", "source", "W",
               "p-value");
  for (const auto& g : source_groups(t)) {
    if (stats::min_value(g.measures) == stats::max_value(g.measures)) {
      std::fprintf(out, "  %-18s %-22s %8s %8s (constant)\n", g.task.c_str(),
                   g.source.c_str(), "-", "-");
      continue;
    }
    const auto sw = stats::shapiro_wilk(g.measures);
    std::fprintf(out, "  %-18s %-22s %8.4f %8.4f%s\n", g.task.c_str(),
                 g.source.c_str(), sw.w_statistic, sw.p_value,
                 sw.p_value < 0.05 ? "  *non-normal" : "");
  }
  std::fprintf(out,
               "\nShape check vs paper: most (task, source) cells accept "
               "normality at\np>0.05; small-test-set tasks may reject due to "
               "discretized accuracies.\n");
}

}  // namespace varbench::study::figures

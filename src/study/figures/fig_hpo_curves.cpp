// Fig. F.2 — HPO optimization curves: best-so-far validation and test risk
// per independent ξH seed, for each (task, algorithm) pair. The shardable
// unit is the seed; each seed emits exactly `budget` rows (padded with
// nulls if an algorithm stops early) so `seq` stays a dense enumeration.
#include <algorithm>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/casestudies/registry.h"
#include "src/core/pipeline.h"
#include "src/hpo/hpo.h"
#include "src/ml/dataset.h"
#include "src/rngx/variation.h"
#include "src/stats/descriptive.h"
#include "src/study/figures/figures_common.h"

namespace varbench::study::figures {

namespace {

struct SeedCurves {
  std::vector<double> valid;
  std::vector<double> test;
};

/// One independent ξH seed's best-so-far curves, on its own RNG stream.
SeedCurves run_one_seed(const casestudies::CaseStudy& cs,
                        const hpo::HpoAlgorithm& algo, std::size_t budget,
                        rngx::Rng& seed_rng) {
  const rngx::VariationSeeds base;  // ξO fixed: variance is ξH-only
  const auto seeds =
      base.with_randomized(rngx::VariationSource::kHpo, seed_rng);
  auto split_rng = seeds.rng_for(rngx::VariationSource::kDataSplit);
  const auto split = cs.splitter->split(*cs.pool, split_rng);
  const auto [trainvalid, test] = core::materialize(*cs.pool, split);
  // Inner split for the HPO objective.
  auto hpo_rng = seeds.rng_for(rngx::VariationSource::kHpo);
  std::vector<std::size_t> order(trainvalid.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  hpo_rng.shuffle(order);
  const std::size_t n_valid = order.size() / 4;
  const auto inner_valid = ml::subset(
      trainvalid, std::span<const std::size_t>{order.data(), n_valid});
  const auto inner_train = ml::subset(
      trainvalid, std::span<const std::size_t>{order.data() + n_valid,
                                               order.size() - n_valid});
  SeedCurves out;
  double best_valid = 1e9;
  double test_at_best = 1e9;
  const hpo::Objective objective = [&](const hpo::ParamPoint& lambda) {
    const double valid_risk =
        1.0 - cs.pipeline->train_and_evaluate(inner_train, inner_valid,
                                              lambda, seeds);
    if (valid_risk < best_valid) {
      best_valid = valid_risk;
      test_at_best = 1.0 - cs.pipeline->train_and_evaluate(trainvalid, test,
                                                           lambda, seeds);
    }
    out.valid.push_back(best_valid);
    out.test.push_back(test_at_best);
    return valid_risk;
  };
  (void)algo.optimize(cs.pipeline->search_space(), objective, budget,
                      hpo_rng);
  return out;
}

}  // namespace

ResultTable run_figF2(const StudySpec& spec) {
  ResultTable t;
  t.columns = {"seq", "task", "algo", "seed", "iter", "valid", "test"};
  const std::size_t budget = spec.figure.budget;
  GroupSeq gs;
  for (const auto& task : resolve_tasks(spec)) {
    const auto cs = casestudies::make_case_study(task, spec.scale);
    for (const auto& algo_name : spec.figure.hpo_algorithms) {
      const auto algo = hpo::make_hpo_algorithm(algo_name);
      const auto slice = slice_of(spec, spec.repetitions);
      const auto per_seed = exec::parallel_replicate_range<SeedCurves>(
          exec_of(spec), slice,
          rngx::derive_seed(spec.seed, task + "/" + algo_name), "figF2_seed",
          [&](std::size_t, rngx::Rng& seed_rng) {
            return run_one_seed(cs, *algo, budget, seed_rng);
          });
      const std::size_t start = gs.enter(spec.repetitions, budget);
      for (std::size_t j = 0; j < per_seed.size(); ++j) {
        const std::size_t seed_index = slice.begin + j;
        const SeedCurves& curves = per_seed[j];
        for (std::size_t iter = 0; iter < budget; ++iter) {
          // Algorithms that stop before exhausting the budget pad with
          // nulls so every seed contributes exactly `budget` rows.
          Row row{Cell{gs.seq(start, seed_index, iter)}, Cell{task},
                  Cell{algo_name}, Cell{seed_index}, Cell{iter}};
          if (iter < curves.valid.size()) {
            row.push_back(Cell{curves.valid[iter]});
            row.push_back(Cell{curves.test[iter]});
          } else {
            row.push_back(Cell{});
            row.push_back(Cell{});
          }
          t.add_row(std::move(row));
        }
      }
    }
  }
  return t;
}

void summarize_figF2(const ResultTable& t, std::FILE* out) {
  const std::size_t budget = t.spec.value().figure.budget;
  std::vector<std::size_t> checkpoints{1, std::max<std::size_t>(1, budget / 4),
                                       std::max<std::size_t>(1, budget / 2),
                                       std::max<std::size_t>(1, 3 * budget / 4),
                                       budget};
  checkpoints.erase(std::unique(checkpoints.begin(), checkpoints.end()),
                    checkpoints.end());
  const std::size_t task_col = t.column_index("task");
  const std::size_t algo_col = t.column_index("algo");
  const std::size_t iter_col = t.column_index("iter");
  const std::size_t valid_col = t.column_index("valid");
  const std::size_t test_col = t.column_index("test");
  // (task, algo) groups in first-appearance order.
  std::vector<std::pair<std::string, std::string>> groups;
  for (const Row& row : t.rows) {
    std::pair<std::string, std::string> key{row[task_col].as_string(),
                                            row[algo_col].as_string()};
    if (groups.empty() || groups.back() != key) groups.push_back(key);
  }
  std::string task;
  for (const auto& [group_task, algo] : groups) {
    if (group_task != task) {
      task = group_task;
      std::fprintf(out, "\n%s (risk = 1 - metric)\n", task.c_str());
      std::fprintf(out, "  %-22s", "algorithm");
      for (const std::size_t c : checkpoints) {
        std::fprintf(out, "      iter %3zu", c);
      }
      std::fprintf(out, "\n");
    }
    for (const auto* which : {"valid", "test"}) {
      const std::size_t value_col =
          std::string_view{which} == "valid" ? valid_col : test_col;
      std::fprintf(out, "  %-22s",
                   (algo + " [" + which + "]").c_str());
      for (const std::size_t c : checkpoints) {
        std::vector<double> at;
        for (const Row& row : t.rows) {
          if (row[task_col].as_string() != task ||
              row[algo_col].as_string() != algo ||
              row[iter_col].as_uint64() != c - 1 ||
              row[value_col].is_null()) {
            continue;
          }
          at.push_back(row[value_col].as_double());
        }
        if (at.empty()) {
          std::fprintf(out, " %13s", "-");
        } else {
          std::fprintf(out, " %6.3f±%.3f", stats::mean(at),
                       stats::stddev(at));
        }
      }
      std::fprintf(out, "\n");
    }
  }
  std::fprintf(out,
               "\nShape check vs paper: all algorithms reach similar final "
               "valid risk;\nthe across-seed std (the ±) does not keep "
               "shrinking with more\niterations — HPO variance would not "
               "vanish with larger budgets.\n");
}

}  // namespace varbench::study::figures

// The decision-criteria figures: Fig. 6 (detection-rate curves over every
// calibration and both estimators), Fig. I.6 (robustness vs sample size
// and γ), and the App. C.2 paired-vs-unpaired ablation. Raw rows are one
// simulation round each (0/1 detection flags per criterion) on per-round
// streams; the rate curves are averages derived at summary time.
#include <array>
#include <memory>
#include <stdexcept>
#include <string>

#include "src/casestudies/calibration.h"
#include "src/compare/criteria.h"
#include "src/compare/error_rates.h"
#include "src/compare/simulation.h"
#include "src/stats/prob_outperform.h"
#include "src/study/figures/figures_common.h"

namespace varbench::study::figures {

namespace {

constexpr std::string_view kFig06Criteria[] = {
    "oracle", "single_point", "average", "prob_outperforming"};

std::vector<std::unique_ptr<compare::ComparisonCriterion>> fig06_criteria(
    const casestudies::TaskCalibration& calib, const StudySpec& spec) {
  const double delta = compare::published_improvement_delta(calib.sigma_ideal);
  std::vector<std::unique_ptr<compare::ComparisonCriterion>> criteria;
  criteria.push_back(
      std::make_unique<compare::OracleComparison>(calib.sigma_ideal));
  criteria.push_back(std::make_unique<compare::SinglePointComparison>(delta));
  criteria.push_back(std::make_unique<compare::AverageComparison>(delta));
  criteria.push_back(std::make_unique<compare::ProbOutperformCriterion>(
      spec.figure.gamma, spec.figure.resamples));
  return criteria;
}

const char* region_label(double p, double gamma) {
  const auto region = compare::classify_region(p, gamma);
  return region == compare::TruthRegion::kH0   ? "H0"
         : region == compare::TruthRegion::kH1 ? "H1"
                                               : "H0H1";
}

}  // namespace

// ---------------------------------------------------------------- fig06

ResultTable run_fig06(const StudySpec& spec) {
  ResultTable t;
  t.columns = {"seq", "estimator", "task", "p", "sim"};
  for (const auto& name : kFig06Criteria) {
    t.columns.push_back(std::string{name});
  }
  const std::vector<double> p_grid = spec.figure.p_grid.empty()
                                         ? compare::default_p_grid()
                                         : spec.figure.p_grid;
  GroupSeq gs;
  for (const std::string_view est : {"ideal", "fix_all"}) {
    const bool ideal = est == "ideal";
    for (const auto& task : resolve_tasks(spec)) {
      const auto& calib = casestudies::calibration_for(task);
      const auto profile = ideal
                               ? calib.ideal_profile()
                               : calib.profile(core::RandomizeSubset::kAll);
      const auto criteria = fig06_criteria(calib, spec);
      compare::DetectionRateConfig cfg;
      cfg.k = spec.figure.k;
      cfg.simulations = spec.repetitions;
      cfg.gamma = spec.figure.gamma;
      cfg.p_grid = p_grid;
      cfg.exec = exec_of(spec);
      const std::size_t rounds = p_grid.size() * cfg.simulations;
      const auto slice = slice_of(spec, rounds);
      rngx::Rng rng{
          rngx::derive_seed(spec.seed, std::string{est} + ":" + task)};
      const auto hits = compare::detection_rounds(
          profile,
          ideal ? compare::EstimatorKind::kIdeal
                : compare::EstimatorKind::kBiased,
          criteria, cfg, slice, rng);
      const std::size_t start = gs.enter(rounds);
      for (std::size_t j = 0; j < hits.size(); ++j) {
        const std::size_t round = slice.begin + j;
        const std::size_t gi = round / cfg.simulations;
        const std::size_t si = round % cfg.simulations;
        Row row{Cell{gs.seq(start, round)}, Cell{std::string{est}},
                Cell{task}, Cell{p_grid[gi]}, Cell{si}};
        for (const std::uint8_t h : hits[j]) {
          row.push_back(Cell{static_cast<std::size_t>(h)});
        }
        t.add_row(std::move(row));
      }
    }
  }
  return t;
}

void summarize_fig06(const ResultTable& t, std::FILE* out) {
  const double gamma = t.spec.value().figure.gamma;
  const std::size_t est_col = t.column_index("estimator");
  const std::size_t p_col = t.column_index("p");
  std::vector<std::size_t> criterion_cols;
  for (const auto& name : kFig06Criteria) {
    criterion_cols.push_back(t.column_index(std::string{name}));
  }
  for (const std::string_view est : {"ideal", "fix_all"}) {
    std::fprintf(out, "\n%s estimator (%s)\n", std::string{est}.c_str(),
                 est == "ideal" ? "solid lines"
                                : "FixHOptEst(k, All), dashed lines");
    std::fprintf(out, "  %-6s %-8s %8s %13s %9s %11s\n", "P(A>B)", "region",
                 "oracle", "single_point", "average", "prob_outp.");
    // Grid points in first-appearance order, averaged over every task.
    std::vector<double> p_grid;
    std::vector<std::array<double, 4>> sums;
    std::vector<double> counts;
    for (const Row& row : t.rows) {
      if (row[est_col].as_string() != est) continue;
      const double p = row[p_col].as_double();
      std::size_t gi = p_grid.size();
      for (std::size_t i = 0; i < p_grid.size(); ++i) {
        if (p_grid[i] == p) gi = i;
      }
      if (gi == p_grid.size()) {
        p_grid.push_back(p);
        sums.push_back({});
        counts.push_back(0.0);
      }
      counts[gi] += 1.0;
      for (std::size_t ci = 0; ci < criterion_cols.size(); ++ci) {
        sums[gi][ci] += row[criterion_cols[ci]].as_double();
      }
    }
    for (std::size_t gi = 0; gi < p_grid.size(); ++gi) {
      std::fprintf(out, "  %-6.2f %-8s %7.0f%% %12.0f%% %8.0f%% %10.0f%%\n",
                   p_grid[gi], region_label(p_grid[gi], gamma),
                   100.0 * sums[gi][0] / counts[gi],
                   100.0 * sums[gi][1] / counts[gi],
                   100.0 * sums[gi][2] / counts[gi],
                   100.0 * sums[gi][3] / counts[gi]);
    }
  }
  std::fprintf(out,
               "\nShape check vs paper: at P=0.5 single_point has the "
               "highest FP rate;\nin the H1 region average has the highest FN "
               "rate and prob_outperforming\ntracks the oracle most closely; "
               "the biased estimator degrades\nprob_outperforming only "
               "mildly.\n");
}

// ---------------------------------------------------------------- figI6

namespace {

struct I6Hits {
  std::uint8_t average = 0;
  std::uint8_t prob = 0;
  std::uint8_t t_test = 0;
};

}  // namespace

ResultTable run_figI6(const StudySpec& spec) {
  ResultTable t;
  t.columns = {"seq", "axis",    "p",
               "x",   "sim",     "average",
               "prob_outperforming", "t_test"};
  const auto& calib = casestudies::calibration_for(spec.case_study);
  const auto profile = calib.ideal_profile();
  const double sigma = calib.sigma_ideal;
  const double delta_pub = compare::published_improvement_delta(sigma);
  GroupSeq gs;

  const auto run_group = [&](const std::string& axis, double p, double x,
                             std::size_t k, double gamma, double delta,
                             std::size_t pi, std::size_t xi) {
    const compare::AverageComparison avg{delta};
    const compare::ProbOutperformCriterion pab{gamma, spec.figure.resamples};
    const compare::OracleComparison ttest{sigma, 0.05};
    const double offset = compare::mean_offset_for_probability(p, sigma);
    const auto slice = slice_of(spec, spec.repetitions);
    const auto hits = exec::parallel_replicate_range<I6Hits>(
        exec_of(spec), slice,
        rngx::derive_seed(spec.seed, "figI6/" + axis + "/" +
                                         std::to_string(pi) + "/" +
                                         std::to_string(xi)),
        "figI6_sim", [&](std::size_t, rngx::Rng& rng) {
          const auto a = compare::simulate_measures(
              profile, compare::EstimatorKind::kIdeal, offset, k, rng);
          const auto b = compare::simulate_measures(
              profile, compare::EstimatorKind::kIdeal, 0.0, k, rng);
          I6Hits h;
          h.average = avg.detects(a, b, rng) ? 1 : 0;
          h.prob = pab.detects(a, b, rng) ? 1 : 0;
          h.t_test = ttest.detects(a, b, rng) ? 1 : 0;
          return h;
        });
    const std::size_t start = gs.enter(spec.repetitions);
    for (std::size_t j = 0; j < hits.size(); ++j) {
      const std::size_t sim = slice.begin + j;
      t.add_row({Cell{gs.seq(start, sim)}, Cell{axis}, Cell{p}, Cell{x},
                 Cell{sim}, Cell{static_cast<std::size_t>(hits[j].average)},
                 Cell{static_cast<std::size_t>(hits[j].prob)},
                 Cell{static_cast<std::size_t>(hits[j].t_test)}});
    }
  };

  for (std::size_t pi = 0; pi < spec.figure.p_grid.size(); ++pi) {
    for (std::size_t ki = 0; ki < spec.figure.k_grid.size(); ++ki) {
      const std::size_t k = spec.figure.k_grid[ki];
      run_group("k", spec.figure.p_grid[pi], static_cast<double>(k), k,
                spec.figure.gamma, delta_pub, pi, ki);
    }
  }
  for (std::size_t pi = 0; pi < spec.figure.p_grid.size(); ++pi) {
    for (std::size_t gi = 0; gi < spec.figure.gamma_grid.size(); ++gi) {
      const double gamma = spec.figure.gamma_grid[gi];
      // Appendix I: for the average criterion γ converts into the
      // equivalent difference δ = √2·σ·Φ⁻¹(γ).
      run_group("gamma", spec.figure.p_grid[pi], gamma, spec.figure.k, gamma,
                compare::mean_offset_for_probability(gamma, sigma), pi, gi);
    }
  }
  return t;
}

void summarize_figI6(const ResultTable& t, std::FILE* out) {
  const std::size_t axis_col = t.column_index("axis");
  const std::size_t p_col = t.column_index("p");
  const std::size_t x_col = t.column_index("x");
  const std::size_t avg_col = t.column_index("average");
  const std::size_t pab_col = t.column_index("prob_outperforming");
  const std::size_t tt_col = t.column_index("t_test");
  for (const std::string_view axis : {"k", "gamma"}) {
    std::fprintf(out, "\ndetection rate vs %s\n",
                 axis == "k" ? "sample size (at the spec gamma)"
                             : "gamma (at the spec k)");
    std::fprintf(out, "  %-8s %-10s %9s %9s %9s\n", "P(A>B)",
                 axis == "k" ? "k" : "gamma", "average", "prob_outp",
                 "t-test");
    double p = -1.0;
    double x = -1.0;
    double n = 0.0;
    std::array<double, 3> sums{};
    const auto flush = [&] {
      if (n == 0.0) return;
      if (axis == "k") {
        std::fprintf(out, "  %-8.2f %-10.0f %8.0f%% %8.0f%% %8.0f%%\n", p, x,
                     100.0 * sums[0] / n, 100.0 * sums[1] / n,
                     100.0 * sums[2] / n);
      } else {
        std::fprintf(out, "  %-8.2f %-10.2f %8.0f%% %8.0f%% %8.0f%%\n", p, x,
                     100.0 * sums[0] / n, 100.0 * sums[1] / n,
                     100.0 * sums[2] / n);
      }
      n = 0.0;
      sums = {};
    };
    for (const Row& row : t.rows) {
      if (row[axis_col].as_string() != axis) continue;
      if (row[p_col].as_double() != p || row[x_col].as_double() != x) {
        flush();
        p = row[p_col].as_double();
        x = row[x_col].as_double();
      }
      n += 1.0;
      sums[0] += row[avg_col].as_double();
      sums[1] += row[pab_col].as_double();
      sums[2] += row[tt_col].as_double();
    }
    flush();
  }
  std::fprintf(out,
               "\nShape check vs paper: at P=0.5 all methods stay near/below "
               "~5-10%%\nregardless of k; for P>=0.7 the P(A>B) test's rate "
               "grows with k while\nthe fixed-delta average barely moves; "
               "raising gamma lowers detection\nrates for both methods.\n");
}

// ----------------------------------------------------- ablation_pairing

namespace {

/// Simulated paired measurements: both algorithms share a per-run split
/// effect (the dominant ξO component); A has a true mean edge.
constexpr double kSharedStd = 0.02;  // split-driven component
constexpr double kIndepStd = 0.005;  // seed-driven component

void simulate_pair(double edge, std::size_t k, rngx::Rng& rng,
                   std::vector<double>& a, std::vector<double>& b,
                   bool paired) {
  a.resize(k);
  b.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    const double shared_a = rng.normal(0.0, kSharedStd);
    const double shared_b = paired ? shared_a : rng.normal(0.0, kSharedStd);
    a[i] = 0.8 + edge + shared_a + rng.normal(0.0, kIndepStd);
    b[i] = 0.8 + shared_b + rng.normal(0.0, kIndepStd);
  }
}

}  // namespace

ResultTable run_ablation_pairing(const StudySpec& spec) {
  ResultTable t;
  t.columns = {"seq", "edge", "sim", "paired", "unpaired"};
  GroupSeq gs;
  for (std::size_t ei = 0; ei < spec.figure.edges.size(); ++ei) {
    const double edge = spec.figure.edges[ei];
    struct Hits {
      std::uint8_t paired = 0;
      std::uint8_t unpaired = 0;
    };
    const auto slice = slice_of(spec, spec.repetitions);
    const auto hits = exec::parallel_replicate_range<Hits>(
        exec_of(spec), slice,
        rngx::derive_seed(spec.seed, "pairing/" + std::to_string(ei)),
        "pairing_sim", [&](std::size_t, rngx::Rng& rng) {
          std::vector<double> a;
          std::vector<double> b;
          Hits h;
          simulate_pair(edge, spec.figure.k, rng, a, b, true);
          const auto r1 = stats::test_probability_of_outperforming(
              a, b, rng, spec.figure.gamma, spec.figure.resamples);
          h.paired = r1.conclusion ==
                             stats::ComparisonConclusion::
                                 kSignificantAndMeaningful
                         ? 1
                         : 0;
          simulate_pair(edge, spec.figure.k, rng, a, b, false);
          const auto r2 = stats::test_probability_of_outperforming(
              a, b, rng, spec.figure.gamma, spec.figure.resamples);
          h.unpaired = r2.conclusion ==
                               stats::ComparisonConclusion::
                                   kSignificantAndMeaningful
                           ? 1
                           : 0;
          return h;
        });
    const std::size_t start = gs.enter(spec.repetitions);
    for (std::size_t j = 0; j < hits.size(); ++j) {
      const std::size_t sim = slice.begin + j;
      t.add_row({Cell{gs.seq(start, sim)}, Cell{edge}, Cell{sim},
                 Cell{static_cast<std::size_t>(hits[j].paired)},
                 Cell{static_cast<std::size_t>(hits[j].unpaired)}});
    }
  }
  return t;
}

void summarize_ablation_pairing(const ResultTable& t, std::FILE* out) {
  const std::size_t edge_col = t.column_index("edge");
  const std::size_t paired_col = t.column_index("paired");
  const std::size_t unpaired_col = t.column_index("unpaired");
  std::fprintf(out, "\n  %-12s %18s %18s\n", "true edge", "paired detection",
               "unpaired detection");
  double edge = -1.0;
  double n = 0.0;
  double paired = 0.0;
  double unpaired = 0.0;
  const auto flush = [&] {
    if (n == 0.0) return;
    std::fprintf(out, "  %-12.3f %17.0f%% %17.0f%%\n", edge,
                 100.0 * paired / n, 100.0 * unpaired / n);
    n = paired = unpaired = 0.0;
  };
  for (const Row& row : t.rows) {
    if (row[edge_col].as_double() != edge) {
      flush();
      edge = row[edge_col].as_double();
    }
    n += 1.0;
    paired += row[paired_col].as_double();
    unpaired += row[unpaired_col].as_double();
  }
  flush();
  std::fprintf(out,
               "\nReading: at edge=0 both stay near the nominal "
               "false-positive rate;\nfor small true edges (below the "
               "shared-noise scale %.3f) the paired\ndesign detects far more "
               "often — pairing removes the shared split\neffect from "
               "Var(A-B).\n",
               kSharedStd);
}

}  // namespace varbench::study::figures

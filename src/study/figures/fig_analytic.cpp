// The analytic figure kinds — no Monte-Carlo loop, a fixed enumeration of
// grid rows computed exactly: Fig. 3 (published SOTA increments), Fig. 4
// (estimator fit-count costs), Fig. C.1 (Noether sample sizes), and the
// Appendix D search-space tables. `repetitions` is pinned to 1; the row
// enumeration itself shards (every row is a pure function of its index).
#include <cmath>

#include "src/casestudies/calibration.h"
#include "src/casestudies/registry.h"
#include "src/compare/error_rates.h"
#include "src/core/estimators.h"
#include "src/hpo/space.h"
#include "src/stats/distributions.h"
#include "src/stats/sample_size.h"
#include "src/study/figures/figures_common.h"

namespace varbench::study::figures {

// ---------------------------------------------------------------- fig03

ResultTable run_fig03(const StudySpec& spec) {
  ResultTable t;
  t.columns = {"seq",         "task",  "year",      "accuracy",
               "improvement", "sigma", "threshold", "significant"};
  const double z = stats::normal_quantile(0.95);
  // Build the full enumeration (cheap: static series), emit the slice.
  std::vector<Row> rows;
  for (const auto& series : casestudies::sota_series()) {
    const double threshold = z * std::sqrt(2.0) * series.benchmark_sigma;
    for (std::size_t i = 0; i < series.points.size(); ++i) {
      const auto& pt = series.points[i];
      Row row{Cell{rows.size()}, Cell{series.task}, Cell{pt.year},
              Cell{pt.accuracy}};
      if (i == 0) {
        row.push_back(Cell{});  // baseline: no increment
        row.push_back(Cell{series.benchmark_sigma});
        row.push_back(Cell{threshold});
        row.push_back(Cell{});
      } else {
        const double improvement =
            pt.accuracy - series.points[i - 1].accuracy;
        row.push_back(Cell{improvement});
        row.push_back(Cell{series.benchmark_sigma});
        row.push_back(Cell{threshold});
        row.push_back(Cell{
            static_cast<std::size_t>(improvement > threshold ? 1 : 0)});
      }
      rows.push_back(std::move(row));
    }
  }
  const auto slice = slice_of(spec, rows.size());
  for (std::size_t i = slice.begin; i < slice.end; ++i) {
    t.add_row(std::move(rows[i]));
  }
  return t;
}

void summarize_fig03(const ResultTable& t, std::FILE* out) {
  const std::size_t task_col = t.column_index("task");
  const std::size_t year_col = t.column_index("year");
  const std::size_t acc_col = t.column_index("accuracy");
  const std::size_t imp_col = t.column_index("improvement");
  const std::size_t sigma_col = t.column_index("sigma");
  const std::size_t thr_col = t.column_index("threshold");
  double sum_improvement = 0.0;
  double sum_sigma = 0.0;
  std::string task;
  for (const Row& row : t.rows) {
    if (row[task_col].as_string() != task) {
      task = row[task_col].as_string();
      std::fprintf(out, "\n%s\n", task.c_str());
      std::fprintf(out,
                   "  benchmark sigma = %.3f%%   significance threshold = "
                   "%.3f%%\n",
                   100.0 * row[sigma_col].as_double(),
                   100.0 * row[thr_col].as_double());
      std::fprintf(out, "  %-6s %10s %12s %s\n", "year", "accuracy",
                   "improvement", "verdict");
    }
    const auto year = static_cast<int>(row[year_col].as_int64());
    if (row[imp_col].is_null()) {
      std::fprintf(out, "  %-6d %9.2f%% %12s (baseline)\n", year,
                   100.0 * row[acc_col].as_double(), "-");
      continue;
    }
    const double improvement = row[imp_col].as_double();
    const bool significant = improvement > row[thr_col].as_double();
    std::fprintf(out, "  %-6d %9.2f%% %11.2f%% %s\n", year,
                 100.0 * row[acc_col].as_double(), 100.0 * improvement,
                 significant ? "significant" : "NON-significant (x)");
    sum_improvement += improvement;
    sum_sigma += row[sigma_col].as_double();
  }
  std::fprintf(out,
               "\ndelta calibration (Section 4.2)\n"
               "  mean improvement / sigma across tasks = %.2f\n"
               "  paper's regression coefficient        = %.4f\n"
               "  (delta = 1.9952*sigma is the average-comparison threshold "
               "of Fig. 6)\n",
               sum_sigma > 0.0 ? sum_improvement / sum_sigma : 0.0,
               compare::kPublishedImprovementCoeff);
}

// ---------------------------------------------------------------- fig04

ResultTable run_fig04(const StudySpec& spec) {
  ResultTable t;
  t.columns = {"seq", "k", "T", "ideal_fits", "fixhopt_fits", "ratio"};
  const std::size_t n = spec.figure.k_grid.size() * spec.figure.t_grid.size();
  const auto slice = slice_of(spec, n);
  for (std::size_t i = slice.begin; i < slice.end; ++i) {
    const std::size_t k = spec.figure.k_grid[i / spec.figure.t_grid.size()];
    const std::size_t budget =
        spec.figure.t_grid[i % spec.figure.t_grid.size()];
    const std::size_t ideal = core::ideal_estimator_cost(k, budget);
    const std::size_t biased = core::fix_hopt_estimator_cost(k, budget);
    t.add_row({Cell{i}, Cell{k}, Cell{budget}, Cell{ideal}, Cell{biased},
               Cell{static_cast<double>(ideal) /
                    static_cast<double>(biased)}});
  }
  return t;
}

void summarize_fig04(const ResultTable& t, std::FILE* out) {
  std::fprintf(out, "  %-8s %-8s %14s %16s %8s\n", "k", "T", "IdealEst fits",
               "FixHOptEst fits", "ratio");
  for (const Row& row : t.rows) {
    std::fprintf(out, "  %-8llu %-8llu %14llu %16llu %7.1fx\n",
                 static_cast<unsigned long long>(
                     row[t.column_index("k")].as_uint64()),
                 static_cast<unsigned long long>(
                     row[t.column_index("T")].as_uint64()),
                 static_cast<unsigned long long>(
                     row[t.column_index("ideal_fits")].as_uint64()),
                 static_cast<unsigned long long>(
                     row[t.column_index("fixhopt_fits")].as_uint64()),
                 row[t.column_index("ratio")].as_double());
  }
  std::fprintf(out,
               "\n  paper's wall-clock: IdealEst(k=100) = 1070 h, FixHOptEst "
               "= 21 h => 51x.\n  Our fit-count ratio at (k=100, T=200) = "
               "%.1fx; wall-clock ratios sit\n  slightly below the fit ratio "
               "because HPO trials train on the smaller\n  inner split.\n",
               static_cast<double>(core::ideal_estimator_cost(100, 200)) /
                   static_cast<double>(core::fix_hopt_estimator_cost(100,
                                                                     200)));
}

// ---------------------------------------------------------------- figC1

ResultTable run_figC1(const StudySpec& spec) {
  ResultTable t;
  t.columns = {"seq", "gamma", "beta", "n_required"};
  const std::size_t n =
      spec.figure.gamma_grid.size() * spec.figure.beta_grid.size();
  const auto slice = slice_of(spec, n);
  for (std::size_t i = slice.begin; i < slice.end; ++i) {
    const double gamma =
        spec.figure.gamma_grid[i / spec.figure.beta_grid.size()];
    const double beta = spec.figure.beta_grid[i % spec.figure.beta_grid.size()];
    t.add_row({Cell{i}, Cell{gamma}, Cell{beta},
               Cell{stats::noether_sample_size(gamma, 0.05, beta)}});
  }
  return t;
}

void summarize_figC1(const ResultTable& t, std::FILE* out) {
  const std::size_t gamma_col = t.column_index("gamma");
  const std::size_t beta_col = t.column_index("beta");
  const std::size_t n_col = t.column_index("n_required");
  // Pivot: one line per gamma, one column per beta (first-appearance order).
  std::vector<double> betas;
  for (const Row& row : t.rows) {
    const double beta = row[beta_col].as_double();
    bool known = false;
    for (const double b : betas) known = known || b == beta;
    if (!known) betas.push_back(beta);
  }
  std::fprintf(out, "  %-8s", "gamma");
  for (const double beta : betas) std::fprintf(out, " N(beta=%.2f)", beta);
  std::fprintf(out, "\n");
  std::string line;
  double gamma = -1.0;
  const auto flush = [&] {
    if (line.empty()) return;
    if (gamma == 0.75) line += "   <-- recommended (paper: N=29)";
    std::fprintf(out, "%s\n", line.c_str());
  };
  for (const Row& row : t.rows) {
    if (row[gamma_col].as_double() != gamma) {
      flush();
      gamma = row[gamma_col].as_double();
      char buf[32];
      std::snprintf(buf, sizeof buf, "  %-8.2f", gamma);
      line = buf;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, " %12llu",
                  static_cast<unsigned long long>(row[n_col].as_uint64()));
    line += buf;
  }
  flush();

  std::fprintf(out, "\npower achieved at selected (N, gamma)\n  %-6s", "N");
  for (const double g : {0.6, 0.7, 0.75, 0.8, 0.9}) {
    std::fprintf(out, "  g=%.2f", g);
  }
  std::fprintf(out, "\n");
  for (const std::size_t n : {10u, 20u, 29u, 50u, 100u}) {
    std::fprintf(out, "  %-6zu", static_cast<std::size_t>(n));
    for (const double g : {0.6, 0.7, 0.75, 0.8, 0.9}) {
      std::fprintf(out, "  %5.1f%%", 100.0 * stats::noether_power(n, g, 0.05));
    }
    std::fprintf(out, "\n");
  }
  std::fprintf(out,
               "\nShape check vs paper: N(0.75, 0.05, 0.05) == 29 and the "
               "curve\nexplodes below gamma ~ 0.6 (>150 runs).\n");
}

// --------------------------------------------------------------- tableD

ResultTable run_tableD(const StudySpec& spec) {
  ResultTable t;
  t.columns = {"seq", "task", "param",   "scale_kind",
               "low", "high", "default", "integer"};
  const auto tasks = resolve_tasks(spec);
  const auto task_slice = slice_of(spec, tasks.size());
  GroupSeq gs;
  for (std::size_t ti = 0; ti < tasks.size(); ++ti) {
    // Every shard walks all tasks to keep the global seq offsets exact;
    // only in-slice tasks emit rows. Search spaces and defaults are
    // scale-invariant (scale only sizes data pools and epochs), so the
    // registry is queried at a minimal scale rather than materializing
    // every task's full pool on every shard.
    const auto cs = casestudies::make_case_study(tasks[ti], 0.05);
    const auto& dims = cs.pipeline->search_space().dims();
    const std::size_t start = gs.enter(dims.size());
    if (ti < task_slice.begin || ti >= task_slice.end) continue;
    const auto defaults = cs.pipeline->default_params();
    for (std::size_t d = 0; d < dims.size(); ++d) {
      const auto& dim = dims[d];
      const auto it = defaults.find(dim.name);
      t.add_row({Cell{gs.seq(start, d)}, Cell{tasks[ti]}, Cell{dim.name},
                 Cell{dim.scale == hpo::ScaleKind::kLog ? "log" : "linear"},
                 Cell{dim.lo}, Cell{dim.hi},
                 Cell{it != defaults.end() ? it->second : 0.0},
                 Cell{static_cast<std::size_t>(dim.integer ? 1 : 0)}});
    }
  }
  return t;
}

void summarize_tableD(const ResultTable& t, std::FILE* out) {
  const std::size_t task_col = t.column_index("task");
  std::string task;
  for (const Row& row : t.rows) {
    if (row[task_col].as_string() != task) {
      task = row[task_col].as_string();
      std::fprintf(out, "\n%s\n", task.c_str());
      std::fprintf(out, "  %-16s %-10s %12s %12s %10s\n", "hyperparameter",
                   "scale", "low", "high", "default");
    }
    std::fprintf(out, "  %-16s %-10s %12g %12g %10g%s\n",
                 row[t.column_index("param")].as_string().c_str(),
                 row[t.column_index("scale_kind")].as_string().c_str(),
                 row[t.column_index("low")].as_double(),
                 row[t.column_index("high")].as_double(),
                 row[t.column_index("default")].as_double(),
                 row[t.column_index("integer")].as_uint64() != 0
                     ? "  (integer)"
                     : "");
  }
}

}  // namespace varbench::study::figures

// The figure registry: kind metadata, per-kind defaults (including the
// VARBENCH_FULL paper sizes), and the declared-field serialization that
// keeps one shared FigureParams struct strict per kind.
#include "src/study/figures/figures.h"

#include <stdexcept>

namespace varbench::study::figures {

namespace {

constexpr std::string_view kDomain = "spec";

// ------------------------------------------------------- field handlers

io::Json size_array(const std::vector<std::size_t>& v) {
  io::Json out = io::Json::array();
  for (const std::size_t x : v) out.push_back(io::Json{x});
  return out;
}

std::vector<std::size_t> read_size_array(const io::Json& v,
                                         std::string_view key) {
  std::vector<std::size_t> out;
  for (const io::Json& item : v.as_array()) {
    out.push_back(io::read_size(item, kDomain, key));
  }
  return out;
}

std::vector<double> read_double_array(const io::Json& v,
                                      std::string_view key) {
  std::vector<double> out;
  for (const io::Json& item : v.as_array()) {
    out.push_back(io::read_double(item, kDomain, key));
  }
  return out;
}

/// One FigureParams field: how to emit it and how to read it back. The
/// table is the single source of truth for key names; a kind's `fields`
/// mask selects rows.
struct FieldHandler {
  unsigned mask;
  std::string_view key;
  void (*emit)(const StudySpec&, io::Json&);
  void (*read)(StudySpec&, const io::Json&);
};

const FieldHandler kFieldHandlers[] = {
    {kFieldTasks, "tasks",
     [](const StudySpec& s, io::Json& p) {
       p.set("tasks", io::string_array(s.figure.tasks));
     },
     [](StudySpec& s, const io::Json& v) {
       s.figure.tasks = io::read_string_array(v, kDomain, "tasks");
     }},
    {kFieldHpoAlgorithms, "hpo_algorithms",
     [](const StudySpec& s, io::Json& p) {
       p.set("hpo_algorithms", io::string_array(s.figure.hpo_algorithms));
     },
     [](StudySpec& s, const io::Json& v) {
       s.figure.hpo_algorithms =
           io::read_string_array(v, kDomain, "hpo_algorithms");
     }},
    {kFieldHpoRepetitions, "hpo_repetitions",
     [](const StudySpec& s, io::Json& p) {
       p.set("hpo_repetitions", io::Json{s.figure.hpo_repetitions});
     },
     [](StudySpec& s, const io::Json& v) {
       s.figure.hpo_repetitions = io::read_size(v, kDomain, "hpo_repetitions");
     }},
    {kFieldHpoBudget, "hpo_budget",
     [](const StudySpec& s, io::Json& p) {
       p.set("hpo_budget", io::Json{s.figure.hpo_budget});
     },
     [](StudySpec& s, const io::Json& v) {
       s.figure.hpo_budget = io::read_size(v, kDomain, "hpo_budget");
     }},
    {kFieldBudget, "budget",
     [](const StudySpec& s, io::Json& p) {
       p.set("budget", io::Json{s.figure.budget});
     },
     [](StudySpec& s, const io::Json& v) {
       s.figure.budget = io::read_size(v, kDomain, "budget");
     }},
    {kFieldK, "k",
     [](const StudySpec& s, io::Json& p) { p.set("k", io::Json{s.figure.k}); },
     [](StudySpec& s, const io::Json& v) {
       s.figure.k = io::read_size(v, kDomain, "k");
     }},
    {kFieldGamma, "gamma",
     [](const StudySpec& s, io::Json& p) {
       p.set("gamma", io::Json{s.figure.gamma});
     },
     [](StudySpec& s, const io::Json& v) {
       s.figure.gamma = io::read_double(v, kDomain, "gamma");
     }},
    {kFieldResamples, "resamples",
     [](const StudySpec& s, io::Json& p) {
       p.set("resamples", io::Json{s.figure.resamples});
     },
     [](StudySpec& s, const io::Json& v) {
       s.figure.resamples = io::read_size(v, kDomain, "resamples");
     }},
    {kFieldKGrid, "k_grid",
     [](const StudySpec& s, io::Json& p) {
       p.set("k_grid", size_array(s.figure.k_grid));
     },
     [](StudySpec& s, const io::Json& v) {
       s.figure.k_grid = read_size_array(v, "k_grid");
     }},
    {kFieldTGrid, "t_grid",
     [](const StudySpec& s, io::Json& p) {
       p.set("t_grid", size_array(s.figure.t_grid));
     },
     [](StudySpec& s, const io::Json& v) {
       s.figure.t_grid = read_size_array(v, "t_grid");
     }},
    {kFieldGammaGrid, "gamma_grid",
     [](const StudySpec& s, io::Json& p) {
       p.set("gamma_grid", io::double_array(s.figure.gamma_grid));
     },
     [](StudySpec& s, const io::Json& v) {
       s.figure.gamma_grid = read_double_array(v, "gamma_grid");
     }},
    {kFieldBetaGrid, "beta_grid",
     [](const StudySpec& s, io::Json& p) {
       p.set("beta_grid", io::double_array(s.figure.beta_grid));
     },
     [](StudySpec& s, const io::Json& v) {
       s.figure.beta_grid = read_double_array(v, "beta_grid");
     }},
    {kFieldPGrid, "p_grid",
     [](const StudySpec& s, io::Json& p) {
       p.set("p_grid", io::double_array(s.figure.p_grid));
     },
     [](StudySpec& s, const io::Json& v) {
       s.figure.p_grid = read_double_array(v, "p_grid");
     }},
    {kFieldEdges, "edges",
     [](const StudySpec& s, io::Json& p) {
       p.set("edges", io::double_array(s.figure.edges));
     },
     [](StudySpec& s, const io::Json& v) {
       s.figure.edges = read_double_array(v, "edges");
     }},
};

// ------------------------------------------------------- kind defaults

void defaults_fig01(StudySpec& s) {
  s.case_study = "all";
  s.repetitions = 30;
  s.figure.hpo_algorithms = {"noisy_grid_search", "random_search",
                             "bayes_opt"};
  s.figure.hpo_repetitions = 5;
  s.figure.hpo_budget = 12;
}

void full_fig01(StudySpec& s) {
  s.repetitions = 200;
  s.figure.hpo_repetitions = 20;
  s.figure.hpo_budget = 200;
}

void defaults_fig02(StudySpec& s) {
  s.case_study = "all";
  s.repetitions = 25;
  s.figure.tasks = {"glue_rte_bert", "glue_sst2_bert", "cifar10_vgg11"};
}

void full_fig02(StudySpec& s) { s.repetitions = 100; }

void defaults_fig03(StudySpec& s) {
  s.case_study = "all";
  s.repetitions = 1;
}

void defaults_fig04(StudySpec& s) {
  s.case_study = "all";
  s.repetitions = 1;
  s.figure.k_grid = {10, 50, 100};
  s.figure.t_grid = {50, 100, 200};
}

void defaults_fig05(StudySpec& s) {
  s.case_study = "all";
  s.repetitions = 60;
  s.figure.k_grid = {1, 2, 5, 10, 20, 50, 100};
}

void full_fig05(StudySpec& s) { s.repetitions = 200; }

void defaults_fig06(StudySpec& s) {
  s.case_study = "all";
  s.repetitions = 100;
  s.figure.k = 50;
  s.figure.gamma = 0.75;
  s.figure.resamples = 100;
}

void full_fig06(StudySpec& s) { s.repetitions = 500; }

void defaults_figC1(StudySpec& s) {
  s.case_study = "all";
  s.repetitions = 1;
  s.figure.gamma_grid = {0.55, 0.60, 0.65, 0.70, 0.75,
                         0.80, 0.85, 0.90, 0.95, 0.99};
  s.figure.beta_grid = {0.05, 0.10, 0.20};
}

void defaults_figF2(StudySpec& s) {
  s.case_study = "all";
  s.repetitions = 5;
  s.figure.tasks = {"glue_rte_bert", "cifar10_vgg11"};
  s.figure.hpo_algorithms = {"bayes_opt", "noisy_grid_search",
                             "random_search"};
  s.figure.budget = 24;
}

void full_figF2(StudySpec& s) {
  s.repetitions = 20;
  s.figure.budget = 200;
}

void defaults_figG3(StudySpec& s) {
  s.case_study = "all";
  s.repetitions = 24;
}

void full_figG3(StudySpec& s) { s.repetitions = 200; }

void defaults_figH5(StudySpec& s) {
  s.case_study = "all";
  s.repetitions = 300;
  s.figure.k = 100;
}

void full_figH5(StudySpec& s) { s.repetitions = 1000; }

void defaults_figI6(StudySpec& s) {
  s.case_study = "cifar10_vgg11";
  s.repetitions = 120;
  s.figure.k = 50;
  s.figure.gamma = 0.75;
  s.figure.resamples = 100;
  s.figure.k_grid = {10, 29, 50, 100};
  s.figure.gamma_grid = {0.6, 0.7, 0.75, 0.8, 0.9};
  s.figure.p_grid = {0.5, 0.6, 0.7, 0.8};
}

void full_figI6(StudySpec& s) { s.repetitions = 500; }

void defaults_ablation_pairing(StudySpec& s) {
  s.case_study = "synthetic";
  s.repetitions = 150;
  s.figure.edges = {0.0, 0.005, 0.01, 0.02, 0.04};
  s.figure.k = 29;
  s.figure.gamma = 0.75;
  s.figure.resamples = 200;
}

void full_ablation_pairing(StudySpec& s) { s.repetitions = 500; }

void defaults_ablation_splitters(StudySpec& s) {
  s.case_study = "synthetic";
  s.repetitions = 12;
}

void full_ablation_splitters(StudySpec& s) { s.repetitions = 50; }

void defaults_multi_contestants(StudySpec& s) {
  s.case_study = "cifar10_vgg11";
  s.repetitions = 16;
  s.figure.gamma = 0.75;
  s.figure.resamples = 500;
}

void full_multi_contestants(StudySpec& s) { s.repetitions = 50; }

void defaults_multi_dataset(StudySpec& s) {
  s.case_study = "all";
  s.repetitions = 10;
}

void full_multi_dataset(StudySpec& s) { s.repetitions = 30; }

void defaults_table8(StudySpec& s) {
  s.case_study = "mhc_mlp";
  s.scale = 0.5;
  s.repetitions = 5;
}

void full_table8(StudySpec& s) { s.repetitions = 20; }

void defaults_tableD(StudySpec& s) {
  s.case_study = "all";
  s.repetitions = 1;
}

// ------------------------------------------------------------ registry

const std::vector<FigureDef>& defs() {
  static const std::vector<FigureDef> kDefs = {
      {StudyKind::kFig01VarianceSources, "fig01_variance_sources",
       "Fig. 1: variance decomposition per source, across case studies",
       "data bootstrap dominates; HPO variance is on par with weight init; "
       "numerical noise is negligible except for the VOC pipeline",
       kFieldTasks | kFieldHpoAlgorithms | kFieldHpoRepetitions |
           kFieldHpoBudget,
       false, defaults_fig01, full_fig01, run_fig01, summarize_fig01},
      {StudyKind::kFig02Binomial, "fig02_binomial_model",
       "Fig. 2: binomial model of test-set sampling noise",
       "std of accuracy from bootstrap replicates matches sqrt(p(1-p)/n') — "
       "the test-set size limits the measurable precision",
       kFieldTasks, false, defaults_fig02, full_fig02, run_fig02,
       summarize_fig02},
      {StudyKind::kFig03Sota, "fig03_published_improvements",
       "Fig. 3: published SOTA increments vs benchmark variance",
       "many year-over-year 'SOTA' improvements fall inside the benchmark's "
       "noise band and are not statistically significant",
       0, true, defaults_fig03, nullptr, run_fig03, summarize_fig03},
      {StudyKind::kFig04EstimatorCost, "fig04_estimator_cost",
       "Fig. 4 / §3.3: estimator compute cost (counted fits)",
       "IdealEst(k=100) costs ~51x more than FixHOptEst(k=100) at T=200",
       kFieldKGrid | kFieldTGrid, true, defaults_fig04, nullptr, run_fig04,
       summarize_fig04},
      {StudyKind::kFig05EstimatorStderr, "fig05_estimator_stderr",
       "Fig. 5 / H.4: standard error of estimators vs number of samples k",
       "FixHOptEst(k,All) approaches IdealEst(k) at no extra cost; "
       "FixHOptEst(k,Init) plateaus around the equivalent of IdealEst(k=2)",
       kFieldTasks | kFieldKGrid, false, defaults_fig05, full_fig05,
       run_fig05, summarize_fig05},
      {StudyKind::kFig06DetectionRates, "fig06_detection_rates",
       "Fig. 6: detection rates of comparison criteria vs true P(A>B)",
       "single-point: ~10% FP and ~75% FN; average: <5% FP but ~90% FN; "
       "P(A>B) test: ~5% FP and ~30% FN, close to the oracle",
       kFieldTasks | kFieldK | kFieldGamma | kFieldResamples | kFieldPGrid,
       false, defaults_fig06, full_fig06, run_fig06, summarize_fig06},
      {StudyKind::kFigC1SampleSize, "figC1_sample_size",
       "Fig. C.1: Noether minimum sample size vs threshold gamma",
       "N=29 at the recommended gamma=0.75 (alpha=beta=0.05); detection "
       "below gamma=0.6 requires impractically many runs",
       kFieldGammaGrid | kFieldBetaGrid, true, defaults_figC1, nullptr,
       run_figC1, summarize_figC1},
      {StudyKind::kFigF2HpoCurves, "figF2_hpo_curves",
       "Fig. F.2: HPO optimization curves (best-so-far risk over xi_H seeds)",
       "typical search spaces are well optimized by all three algorithms "
       "and the across-seed std stabilizes early",
       kFieldTasks | kFieldHpoAlgorithms | kFieldBudget, false,
       defaults_figF2, full_figF2, run_figF2, summarize_figF2},
      {StudyKind::kFigG3Normality, "figG3_normality",
       "Fig. G.3: Shapiro-Wilk normality of per-source distributions",
       "performance distributions are close to normal for most "
       "tasks/sources (tiny test sets discretize accuracies)",
       kFieldTasks, false, defaults_figG3, full_figG3, run_figG3,
       summarize_figG3},
      {StudyKind::kFigH5MseDecomposition, "figH5_mse_decomposition",
       "Fig. H.5: MSE decomposition of the estimators (bias, Var, rho, MSE)",
       "biased estimators share a similar bias; their MSE differences come "
       "from variance, which drops as more sources are randomized",
       kFieldTasks | kFieldK, false, defaults_figH5, full_figH5, run_figH5,
       summarize_figH5},
      {StudyKind::kFigI6Robustness, "figI6_robustness",
       "Fig. I.6: robustness of comparison methods vs sample size and gamma",
       "the P(A>B) test's detection rate converges with sample size and "
       "degrades gracefully as gamma moves; averages stay conservative",
       kFieldK | kFieldGamma | kFieldResamples | kFieldKGrid |
           kFieldGammaGrid | kFieldPGrid,
       false, defaults_figI6, full_figI6, run_figI6, summarize_figI6},
      {StudyKind::kAblationPairing, "ablation_pairing",
       "Ablation (App. C.2): paired vs unpaired comparisons",
       "pairing marginalizes shared variance, so smaller differences become "
       "detectable at the same N",
       kFieldEdges | kFieldK | kFieldGamma | kFieldResamples, false,
       defaults_ablation_pairing, full_ablation_pairing, run_ablation_pairing,
       summarize_ablation_pairing},
      {StudyKind::kAblationSplitters, "ablation_splitters",
       "Ablation (App. B): out-of-bootstrap vs cross-validation vs fixed "
       "split",
       "bootstrap-based splitting gives flexible sample sizes and avoids "
       "the correlation-driven variance underestimation of cross-validation",
       0, false, defaults_ablation_splitters, full_ablation_splitters,
       run_ablation_splitters, summarize_ablation_splitters},
      {StudyKind::kMultiContestants, "multi_contestants",
       "§6: competitions with many contestants",
       "several methods are statistically indistinguishable and rankings "
       "flip under test-set resampling",
       kFieldGamma | kFieldResamples, false, defaults_multi_contestants,
       full_multi_contestants, run_multi_contestants,
       summarize_multi_contestants},
      {StudyKind::kMultiDataset, "multi_dataset",
       "§6: comparing algorithms across multiple datasets",
       "Friedman/Nemenyi have little power on 3-5 datasets; Dror et al.'s "
       "per-dataset counting works at small N",
       kFieldTasks, false, defaults_multi_dataset, full_multi_dataset,
       run_multi_dataset, summarize_multi_dataset},
      {StudyKind::kTable8MhcModels, "table8_mhc_models",
       "Tables 8/9: model-design comparison on the MHC binding task",
       "the three designs perform comparably; ensembling helps modestly",
       0, false, defaults_table8, full_table8, run_table8, summarize_table8},
      {StudyKind::kTableDSearchSpaces, "tableD_search_spaces",
       "Tables 2/3/5/6: hyperparameter search spaces and defaults",
       "search spaces cover the optimal values reported by the original "
       "studies while remaining wide enough to include suboptimal ones",
       kFieldTasks, true, defaults_tableD, nullptr, run_tableD,
       summarize_tableD},
  };
  return kDefs;
}

}  // namespace

const std::vector<FigureDef>& all_figures() { return defs(); }

bool is_figure_kind(StudyKind kind) { return find_figure(kind) != nullptr; }

const FigureDef* find_figure(StudyKind kind) {
  for (const FigureDef& def : defs()) {
    if (def.kind == kind) return &def;
  }
  return nullptr;
}

StudySpec default_figure_spec(StudyKind kind) {
  const FigureDef* def = find_figure(kind);
  if (def == nullptr) {
    throw std::invalid_argument("default_figure_spec: '" +
                                std::string{to_string(kind)} +
                                "' is not a figure kind");
  }
  StudySpec spec;
  spec.kind = kind;
  def->defaults(spec);
  return spec;
}

void apply_figure_defaults(StudySpec& spec) {
  if (const FigureDef* def = find_figure(spec.kind)) def->defaults(spec);
}

void figure_params_to_json(const StudySpec& spec, io::Json& params) {
  const FigureDef* def = find_figure(spec.kind);
  if (def == nullptr) return;
  for (const FieldHandler& f : kFieldHandlers) {
    if ((def->fields & f.mask) != 0) f.emit(spec, params);
  }
}

void figure_params_from_json(StudySpec& spec, io::ObjectReader& r) {
  const FigureDef* def = find_figure(spec.kind);
  if (def == nullptr) return;
  for (const FieldHandler& f : kFieldHandlers) {
    if ((def->fields & f.mask) == 0) continue;
    if (const io::Json* v = r.find(f.key)) f.read(spec, *v);
  }
}

}  // namespace varbench::study::figures

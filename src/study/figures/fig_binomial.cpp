// Fig. 2 — error due to data sampling: bootstrap-measured accuracy spread
// per task vs the binomial model √(p(1−p)/n'). Raw rows are one bootstrap
// replicate each (per-index streams → shardable); the analytic theory
// table is derived at summary time.
#include "src/casestudies/calibration.h"
#include "src/casestudies/registry.h"
#include "src/core/pipeline.h"
#include "src/rngx/variation.h"
#include "src/stats/descriptive.h"
#include "src/stats/distributions.h"
#include "src/study/figures/figures_common.h"

namespace varbench::study::figures {

ResultTable run_fig02(const StudySpec& spec) {
  ResultTable t;
  t.columns = {"seq", "task", "rep", "test_size", "measure"};
  GroupSeq gs;
  for (const auto& task : resolve_tasks(spec)) {
    const auto cs = casestudies::make_case_study(task, spec.scale);
    const auto defaults = cs.pipeline->default_params();
    struct Point {
      std::size_t test_size = 0;
      double measure = 0.0;
    };
    const auto slice = slice_of(spec, spec.repetitions);
    const auto points = exec::parallel_replicate_range<Point>(
        exec_of(spec), slice, rngx::derive_seed(spec.seed, task), "fig02_rep",
        [&](std::size_t, rngx::Rng& rng) {
          const rngx::VariationSeeds base;
          const auto seeds =
              base.with_randomized(rngx::VariationSource::kDataSplit, rng);
          auto split_rng = seeds.rng_for(rngx::VariationSource::kDataSplit);
          const auto split = cs.splitter->split(*cs.pool, split_rng);
          const auto [train, test] = core::materialize(*cs.pool, split);
          return Point{split.test.size(),
                       cs.pipeline->train_and_evaluate(train, test, defaults,
                                                       seeds)};
        });
    const std::size_t start = gs.enter(spec.repetitions);
    for (std::size_t j = 0; j < points.size(); ++j) {
      const std::size_t rep = slice.begin + j;
      t.add_row({Cell{gs.seq(start, rep)}, Cell{task}, Cell{rep},
                 Cell{points[j].test_size}, Cell{points[j].measure}});
    }
  }
  return t;
}

void summarize_fig02(const ResultTable& t, std::FILE* out) {
  std::fprintf(out, "theory: binomial std vs test-set size\n");
  std::fprintf(out, "  %-10s", "n'");
  for (const double acc : {0.66, 0.91, 0.95}) {
    std::fprintf(out, "  Binom(n,%.2f)", acc);
  }
  std::fprintf(out, "\n");
  for (const double n : {1e2, 1e3, 1e4, 1e5, 1e6}) {
    std::fprintf(out, "  %-10.0f", n);
    for (const double acc : {0.66, 0.91, 0.95}) {
      std::fprintf(out, "  %11.4f%%",
                   100.0 * stats::binomial_accuracy_std(acc, n));
    }
    std::fprintf(out, "\n");
  }

  std::fprintf(out, "\npractice: bootstrap-measured std on the case studies\n");
  std::fprintf(out, "  %-18s %8s %10s %16s %16s\n", "task", "n'", "measure",
               "empirical std", "binomial model");
  const std::size_t task_col = t.column_index("task");
  const std::size_t size_col = t.column_index("test_size");
  const std::size_t measure_col = t.column_index("measure");
  std::vector<std::string> tasks;
  for (const Row& row : t.rows) {
    const std::string& task = row[task_col].as_string();
    if (tasks.empty() || tasks.back() != task) tasks.push_back(task);
  }
  for (const auto& task : tasks) {
    std::vector<double> measures;
    double test_size = 0.0;
    std::size_t n = 0;
    for (const Row& row : t.rows) {
      if (row[task_col].as_string() != task) continue;
      measures.push_back(row[measure_col].as_double());
      test_size += row[size_col].as_double();
      ++n;
    }
    test_size /= static_cast<double>(n);
    const double acc = stats::mean(measures);
    std::fprintf(out, "  %-18s %8.0f %9.2f%% %15.3f%% %15.3f%%\n",
                 task.c_str(), test_size, 100.0 * acc,
                 100.0 * stats::stddev(measures),
                 100.0 * stats::binomial_accuracy_std(acc, test_size));
  }

  std::fprintf(out,
               "\npaper reference points (test sizes of the original tasks)\n");
  for (const auto& c : casestudies::paper_calibrations()) {
    if (c.metric != "accuracy") continue;
    std::fprintf(out, "  %-18s n'=%-6zu binomial std = %.3f%%\n",
                 c.paper_task.c_str(), c.paper_test_size,
                 100.0 * stats::binomial_accuracy_std(
                             c.mu, static_cast<double>(c.paper_test_size)));
  }
  std::fprintf(out,
               "\nShape check vs paper: empirical bootstrap std should be "
               "within ~2x\nof the binomial prediction for every task.\n");
}

}  // namespace varbench::study::figures

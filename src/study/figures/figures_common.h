// Internal helpers shared by the figure runners: execution-context and
// shard-slice plumbing, task-set resolution, and the grouped row-emission
// bookkeeping every multi-group figure table needs to keep `seq` a global
// enumeration (the merge contract, docs/study_api.md).
#pragma once

#include <string>
#include <vector>

#include "src/casestudies/registry.h"
#include "src/exec/exec_context.h"
#include "src/exec/parallel_replicate.h"
#include "src/study/figures/figures.h"
#include "src/study/study_spec.h"

namespace varbench::study::figures {

inline exec::ExecContext exec_of(const StudySpec& spec) {
  return exec::ExecContext{spec.threads};
}

inline exec::IndexRange slice_of(const StudySpec& spec, std::size_t n) {
  return exec::shard_subrange(n, spec.shard.index, spec.shard.count);
}

/// The case studies / calibrations a figure spans. A non-"all"
/// case_study always narrows to that one task — it must win over
/// figure.tasks because several kinds (fig02, figF2) pre-populate a
/// default task subset that would otherwise silently override the user's
/// explicit narrowing. With case_study "all", figure.tasks selects the
/// set (empty → every registered task).
inline std::vector<std::string> resolve_tasks(const StudySpec& spec) {
  if (spec.case_study != "all") return {spec.case_study};
  if (!spec.figure.tasks.empty()) return spec.figure.tasks;
  return casestudies::case_study_ids();
}

/// Tracks the seq offset of the current group within the FULL (unsharded)
/// enumeration while a shard emits only its slice of each group.
class GroupSeq {
 public:
  /// Enter a group of `group_size` global units (each unit emitting
  /// `rows_per_unit` rows) and return the seq of the group's first row.
  std::size_t enter(std::size_t group_size, std::size_t rows_per_unit = 1) {
    const std::size_t start = offset_;
    rows_per_unit_ = rows_per_unit;
    offset_ += group_size * rows_per_unit;
    return start;
  }
  /// seq of row `row` (< rows_per_unit) of global unit `unit` in the group
  /// most recently entered.
  [[nodiscard]] std::size_t seq(std::size_t group_start, std::size_t unit,
                                std::size_t row = 0) const {
    return group_start + unit * rows_per_unit_ + row;
  }

 private:
  std::size_t offset_ = 0;
  std::size_t rows_per_unit_ = 1;
};

}  // namespace varbench::study::figures

// The figure-study registry: every headline artifact of the paper (its
// figures and tables) is a registered StudyKind whose runner produces a
// canonical raw-measure ResultTable through the same shard/merge contract
// as the original five study kinds. The bench/ binaries are thin
// spec-builders over this registry (bench/bench_util.h), and `varbench
// run/campaign/report` treat figure artifacts like any other study.
//
// A FigureDef bundles everything the spec layer, the runner registry, the
// summary printer, and the bench front-end need: kind defaults (including
// the VARBENCH_FULL paper-faithful sizes), the declared FigureParams field
// subset (strict JSON round-trip), the runner, and the summarizer.
#pragma once

#include <cstdio>
#include <string_view>
#include <vector>

#include "src/io/spec_reader.h"
#include "src/study/result_table.h"
#include "src/study/study_spec.h"

namespace varbench::study::figures {

/// Bitmask of the FigureParams fields a figure kind declares. Serialization
/// emits exactly the declared fields and parsing accepts exactly those, so
/// round-trip strictness holds per kind with one shared params struct.
enum FigField : unsigned {
  kFieldTasks = 1u << 0,
  kFieldHpoAlgorithms = 1u << 1,
  kFieldHpoRepetitions = 1u << 2,
  kFieldHpoBudget = 1u << 3,
  kFieldBudget = 1u << 4,
  kFieldK = 1u << 5,
  kFieldGamma = 1u << 6,
  kFieldResamples = 1u << 7,
  kFieldKGrid = 1u << 8,
  kFieldTGrid = 1u << 9,
  kFieldGammaGrid = 1u << 10,
  kFieldBetaGrid = 1u << 11,
  kFieldPGrid = 1u << 12,
  kFieldEdges = 1u << 13,
};

struct FigureDef {
  StudyKind kind;
  std::string_view name;   // the spec "kind" string (== to_string(kind))
  std::string_view title;  // one-line description for `varbench list`
  std::string_view claim;  // the paper claim the figure checks
  unsigned fields = 0;     // declared FigureParams subset (FigField mask)
  /// Analytic kinds enumerate a fixed grid; their `repetitions` must stay
  /// 1 (run_study enforces it) while the grid itself still shards.
  bool fixed_repetitions = false;
  /// Kind defaults: case_study, repetitions, and the declared figure
  /// fields. Applied by StudySpec::from_json before reading the document
  /// and by default_figure_spec() for programmatic builders.
  void (*defaults)(StudySpec&) = nullptr;
  /// Paper-faithful sizes for VARBENCH_FULL=1 bench runs (optional).
  void (*full)(StudySpec&) = nullptr;
  ResultTable (*run)(const StudySpec&) = nullptr;
  void (*summarize)(const ResultTable&, std::FILE*) = nullptr;
};

[[nodiscard]] const std::vector<FigureDef>& all_figures();
[[nodiscard]] bool is_figure_kind(StudyKind kind);
/// nullptr for non-figure kinds.
[[nodiscard]] const FigureDef* find_figure(StudyKind kind);

/// A spec pre-filled with the kind's defaults — the starting point for
/// bench front-ends and tests. Round-trips strictly through JSON.
[[nodiscard]] StudySpec default_figure_spec(StudyKind kind);

/// Apply the kind defaults in place (case_study, repetitions, figure
/// fields). Called by StudySpec::from_json after reading `kind`.
void apply_figure_defaults(StudySpec& spec);

/// Serialize / parse the declared FigureParams subset of spec.kind.
/// `figure_params_from_json` reads through `r` so the caller's unknown-key
/// rejection covers undeclared fields.
void figure_params_to_json(const StudySpec& spec, io::Json& params);
void figure_params_from_json(StudySpec& spec, io::ObjectReader& r);

// --------------------------------------------------------------- runners
// One entry point per source file under src/study/figures/; registered
// into the study-runner registry by study_runner.cpp via all_figures().

// fig_variance.cpp
[[nodiscard]] ResultTable run_fig01(const StudySpec&);
void summarize_fig01(const ResultTable&, std::FILE*);
[[nodiscard]] ResultTable run_figG3(const StudySpec&);
void summarize_figG3(const ResultTable&, std::FILE*);

// fig_binomial.cpp
[[nodiscard]] ResultTable run_fig02(const StudySpec&);
void summarize_fig02(const ResultTable&, std::FILE*);

// fig_analytic.cpp
[[nodiscard]] ResultTable run_fig03(const StudySpec&);
void summarize_fig03(const ResultTable&, std::FILE*);
[[nodiscard]] ResultTable run_fig04(const StudySpec&);
void summarize_fig04(const ResultTable&, std::FILE*);
[[nodiscard]] ResultTable run_figC1(const StudySpec&);
void summarize_figC1(const ResultTable&, std::FILE*);
[[nodiscard]] ResultTable run_tableD(const StudySpec&);
void summarize_tableD(const ResultTable&, std::FILE*);

// fig_model.cpp
[[nodiscard]] ResultTable run_fig05(const StudySpec&);
void summarize_fig05(const ResultTable&, std::FILE*);
[[nodiscard]] ResultTable run_figH5(const StudySpec&);
void summarize_figH5(const ResultTable&, std::FILE*);

// fig_detection.cpp
[[nodiscard]] ResultTable run_fig06(const StudySpec&);
void summarize_fig06(const ResultTable&, std::FILE*);
[[nodiscard]] ResultTable run_figI6(const StudySpec&);
void summarize_figI6(const ResultTable&, std::FILE*);
[[nodiscard]] ResultTable run_ablation_pairing(const StudySpec&);
void summarize_ablation_pairing(const ResultTable&, std::FILE*);

// fig_hpo_curves.cpp
[[nodiscard]] ResultTable run_figF2(const StudySpec&);
void summarize_figF2(const ResultTable&, std::FILE*);

// fig_cohort.cpp
[[nodiscard]] ResultTable run_multi_contestants(const StudySpec&);
void summarize_multi_contestants(const ResultTable&, std::FILE*);
[[nodiscard]] ResultTable run_multi_dataset(const StudySpec&);
void summarize_multi_dataset(const ResultTable&, std::FILE*);
[[nodiscard]] ResultTable run_table8(const StudySpec&);
void summarize_table8(const ResultTable&, std::FILE*);
[[nodiscard]] ResultTable run_ablation_splitters(const StudySpec&);
void summarize_ablation_splitters(const ResultTable&, std::FILE*);

}  // namespace varbench::study::figures

// The calibrated-model figures: Fig. 5 / H.4 (estimator standard error vs
// k) and Fig. H.5 (MSE decomposition). Both sample the §4.2 two-stage
// simulator on per-realization streams; rows are raw realization-level
// sufficient statistics, so the artifacts shard and every aggregate
// (stderr curves, bias/Var/ρ/MSE) is derived at summary time.
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/casestudies/calibration.h"
#include "src/compare/simulation.h"
#include "src/core/estimators.h"
#include "src/stats/descriptive.h"
#include "src/study/figures/figures_common.h"

namespace varbench::study::figures {

namespace {

struct SubsetName {
  std::string_view label;
  core::RandomizeSubset subset;
};

constexpr SubsetName kSubsets[] = {
    {"fix_init", core::RandomizeSubset::kInit},
    {"fix_data", core::RandomizeSubset::kData},
    {"fix_all", core::RandomizeSubset::kAll},
};

}  // namespace

// ---------------------------------------------------------------- fig05

ResultTable run_fig05(const StudySpec& spec) {
  ResultTable t;
  t.columns = {"seq", "task", "estimator", "k", "realization", "mean_measure"};
  GroupSeq gs;
  for (const auto& task : resolve_tasks(spec)) {
    const auto& calib = casestudies::calibration_for(task);
    for (const auto& [label, subset] : kSubsets) {
      const auto profile = calib.profile(subset);
      for (const std::size_t k : spec.figure.k_grid) {
        const auto slice = slice_of(spec, spec.repetitions);
        const auto means = exec::parallel_replicate_range<double>(
            exec_of(spec), slice,
            rngx::derive_seed(spec.seed, task + "/" + std::string{label} +
                                             "/k" + std::to_string(k)),
            "fig05_realization", [&](std::size_t, rngx::Rng& rng) {
              return stats::mean(compare::simulate_measures(
                  profile, compare::EstimatorKind::kBiased, 0.0, k, rng));
            });
        const std::size_t start = gs.enter(spec.repetitions);
        for (std::size_t j = 0; j < means.size(); ++j) {
          const std::size_t r = slice.begin + j;
          t.add_row({Cell{gs.seq(start, r)}, Cell{task},
                     Cell{std::string{label}}, Cell{k}, Cell{r},
                     Cell{means[j]}});
        }
      }
    }
  }
  return t;
}

void summarize_fig05(const ResultTable& t, std::FILE* out) {
  const std::size_t task_col = t.column_index("task");
  const std::size_t est_col = t.column_index("estimator");
  const std::size_t k_col = t.column_index("k");
  const std::size_t mean_col = t.column_index("mean_measure");
  std::vector<std::string> tasks;
  for (const Row& row : t.rows) {
    const std::string& task = row[task_col].as_string();
    if (tasks.empty() || tasks.back() != task) tasks.push_back(task);
  }
  for (const auto& task : tasks) {
    const auto& calib = casestudies::calibration_for(task);
    // k values in first-appearance order for this task.
    std::vector<std::size_t> ks;
    for (const Row& row : t.rows) {
      if (row[task_col].as_string() != task) continue;
      const auto k = static_cast<std::size_t>(row[k_col].as_uint64());
      bool known = false;
      for (const std::size_t x : ks) known = known || x == k;
      if (!known) ks.push_back(k);
    }
    std::fprintf(out, "\n%-18s (sigma_ideal=%.4f %s)\n",
                 calib.paper_task.c_str(), calib.sigma_ideal,
                 calib.metric.c_str());
    std::fprintf(out, "  %-4s %12s %14s %14s %14s\n", "k", "IdealEst",
                 "Fix(k,Init)", "Fix(k,Data)", "Fix(k,All)");
    for (const std::size_t k : ks) {
      std::fprintf(out, "  %-4zu %12.5f", k,
                   calib.sigma_ideal / std::sqrt(static_cast<double>(k)));
      for (const auto& [label, subset] : kSubsets) {
        std::vector<double> means;
        for (const Row& row : t.rows) {
          if (row[task_col].as_string() == task &&
              row[est_col].as_string() == label &&
              static_cast<std::size_t>(row[k_col].as_uint64()) == k) {
            means.push_back(row[mean_col].as_double());
          }
        }
        const double analytic = std::sqrt(core::biased_estimator_variance(
            calib.sigma_ideal * calib.sigma_ideal, calib.rho_for(subset), k));
        std::fprintf(out, " %7.5f/%.5f", analytic, stats::stddev(means));
      }
      std::fprintf(out, "\n");
    }
    std::fprintf(out,
                 "  plateau equivalents: Init ~ IdealEst(k=%.1f), Data ~ "
                 "IdealEst(k=%.1f), All ~ IdealEst(k=%.1f)\n",
                 1.0 / calib.rho_init, 1.0 / calib.rho_data,
                 1.0 / calib.rho_all);
  }
  std::fprintf(out,
               "\nShape check vs paper: column order Ideal <= Fix(All) <= "
               "Fix(Data)\n<= Fix(Init) at every k>1, with Fix(Init) "
               "flattening earliest\n(analytic/simulated pairs agree within "
               "Monte-Carlo noise).\n");
}

// ---------------------------------------------------------------- figH5

namespace {

struct H5Variant {
  std::string_view label;
  compare::EstimatorKind kind;
  bool ideal_profile;
  core::RandomizeSubset subset;  // ignored for ideal profiles
  bool unit_k;                   // true → k = 1 (the IdealEst(1) row)
};

constexpr H5Variant kH5Variants[] = {
    {"ideal", compare::EstimatorKind::kIdeal, true,
     core::RandomizeSubset::kAll, false},
    {"fix_all", compare::EstimatorKind::kBiased, false,
     core::RandomizeSubset::kAll, false},
    {"fix_data", compare::EstimatorKind::kBiased, false,
     core::RandomizeSubset::kData, false},
    {"fix_init", compare::EstimatorKind::kBiased, false,
     core::RandomizeSubset::kInit, false},
    {"ideal1", compare::EstimatorKind::kIdeal, true,
     core::RandomizeSubset::kAll, true},
};

std::size_t h5_k(const StudySpec& spec, const H5Variant& v) {
  return v.unit_k ? 1 : spec.figure.k;
}

const H5Variant& h5_variant(const std::string& label) {
  for (const auto& v : kH5Variants) {
    if (v.label == label) return v;
  }
  throw std::invalid_argument("figH5: unknown estimator label '" + label +
                              "'");
}

}  // namespace

ResultTable run_figH5(const StudySpec& spec) {
  ResultTable t;
  // Sufficient statistics per realization: the mean of its k draws and the
  // within-realization sum of squared deviations (m2). Bias, Var(µ̃(k)),
  // the pooled single-measure variance, ρ, and MSE all derive from these.
  t.columns = {"seq", "task", "estimator", "realization", "mean", "m2"};
  GroupSeq gs;
  for (const auto& task : resolve_tasks(spec)) {
    const auto& calib = casestudies::calibration_for(task);
    for (const auto& v : kH5Variants) {
      const auto profile =
          v.ideal_profile ? calib.ideal_profile() : calib.profile(v.subset);
      const std::size_t k = h5_k(spec, v);
      struct Moments {
        double mean = 0.0;
        double m2 = 0.0;
      };
      const auto slice = slice_of(spec, spec.repetitions);
      const auto draws = exec::parallel_replicate_range<Moments>(
          exec_of(spec), slice,
          rngx::derive_seed(spec.seed, task + "/" + std::string{v.label}),
          "figH5_realization", [&](std::size_t, rngx::Rng& rng) {
            const auto x =
                compare::simulate_measures(profile, v.kind, 0.0, k, rng);
            Moments m;
            m.mean = stats::mean(x);
            for (const double xi : x) {
              m.m2 += (xi - m.mean) * (xi - m.mean);
            }
            return m;
          });
      const std::size_t start = gs.enter(spec.repetitions);
      for (std::size_t j = 0; j < draws.size(); ++j) {
        const std::size_t r = slice.begin + j;
        t.add_row({Cell{gs.seq(start, r)}, Cell{task},
                   Cell{std::string{v.label}}, Cell{r}, Cell{draws[j].mean},
                   Cell{draws[j].m2}});
      }
    }
  }
  return t;
}

void summarize_figH5(const ResultTable& t, std::FILE* out) {
  const StudySpec& spec = t.spec.value();
  const std::size_t task_col = t.column_index("task");
  const std::size_t est_col = t.column_index("estimator");
  const std::size_t mean_col = t.column_index("mean");
  const std::size_t m2_col = t.column_index("m2");
  std::string task;
  std::string est;
  std::vector<double> means;
  double m2_sum = 0.0;
  const auto flush = [&] {
    if (means.empty()) return;
    const auto& v = h5_variant(est);
    const std::size_t k = h5_k(spec, v);
    const double mu = casestudies::calibration_for(task).mu;
    const double n = static_cast<double>(means.size());
    const double grand = stats::mean(means);
    const double var_means = stats::variance(means);
    // Pooled variance of all n·k single draws via the law of total
    // variance: Σᵢ m2ᵢ + k·Σᵢ(meanᵢ − grand)², over n·k − 1.
    double between = 0.0;
    for (const double m : means) between += (m - grand) * (m - grand);
    const double var_singles =
        n * static_cast<double>(k) > 1.0
            ? (m2_sum + static_cast<double>(k) * between) /
                  (n * static_cast<double>(k) - 1.0)
            : 0.0;
    double mse = 0.0;
    for (const double m : means) mse += (m - mu) * (m - mu);
    mse /= n;
    char label[32];
    if (v.ideal_profile) {
      std::snprintf(label, sizeof label, "IdealEst(%zu)", k);
    } else {
      std::snprintf(label, sizeof label, "FixHOptEst(%zu, %s)", k,
                    std::string{core::to_string(v.subset)}.c_str());
    }
    std::fprintf(out, "  %-24s %10.5f %12.3e %8.3f %12.3e\n", label,
                 std::abs(grand - mu), var_means,
                 stats::implied_correlation(var_means, var_singles, k), mse);
    means.clear();
    m2_sum = 0.0;
  };
  for (const Row& row : t.rows) {
    if (row[task_col].as_string() != task ||
        row[est_col].as_string() != est) {
      flush();
      if (row[task_col].as_string() != task) {
        task = row[task_col].as_string();
        const auto& calib = casestudies::calibration_for(task);
        std::fprintf(out, "\n%-18s (metric=%s)\n", calib.paper_task.c_str(),
                     calib.metric.c_str());
        std::fprintf(out, "  %-24s %10s %12s %8s %12s\n", "estimator", "bias",
                     "Var(mu_k)", "rho", "MSE");
      }
      est = row[est_col].as_string();
    }
    means.push_back(row[mean_col].as_double());
    m2_sum += row[m2_col].as_double();
  }
  flush();
  std::fprintf(out,
               "\nShape check vs paper: IdealEst(k) has the smallest MSE by "
               "far;\namong the biased estimators MSE improves in the order "
               "Init -> Data ->\nAll, driven by the drop in rho, not by "
               "bias.\n");
}

}  // namespace varbench::study::figures

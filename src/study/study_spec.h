// Experiments-as-data: a StudySpec is the complete, serializable
// description of one of the paper's workflows — which study to run, on
// which case study, at what scale/seed/size — with kind-specific knobs in
// a typed params block. Specs round-trip losslessly through JSON
// (`parse(serialize(spec)) == spec`), can be built from the legacy CLI
// flags, shipped to other processes, and carry an optional `shard i/N`
// that partitions the repetition index range for multi-process fan-out
// (docs/study_api.md).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/io/json.h"

namespace varbench::study {

/// The workflows reachable through run_study(). One enumerator per paper
/// experiment family; `varbench run` dispatches on this, and `varbench
/// list` enumerates the registry.
enum class StudyKind : int {
  kVariance,   // §2.2 variance-source decomposition (Fig. 1)
  kCompare,    // §4/App. C paired comparison with the P(A>B) test
  kHpo,        // one HOpt run (tuning showcase; sequential)
  kEstimator,  // §3.2 IdealEst / FixHOptEst sweep (Fig. 5 empirical)
  kDetection,  // §4.2 detection-rate simulation (Fig. 6)

  // Figure/table study kinds (src/study/figures/): each reproduces one of
  // the paper's headline artifacts as a raw-measure ResultTable, shardable
  // through the same `--shard i/N` + merge contract as the kinds above.
  // The bench/ binaries are thin spec-builders over these.
  kFig01VarianceSources,   // Fig. 1 across every case study
  kFig02Binomial,          // Fig. 2 binomial model of test-set noise
  kFig03Sota,              // Fig. 3 published SOTA increments vs σ
  kFig04EstimatorCost,     // Fig. 4 / §3.3 fit-count cost accounting
  kFig05EstimatorStderr,   // Fig. 5 / H.4 estimator stderr vs k
  kFig06DetectionRates,    // Fig. 6 detection-rate curves, all tasks
  kFigC1SampleSize,        // Fig. C.1 Noether minimum sample size
  kFigF2HpoCurves,         // Fig. F.2 HPO optimization curves
  kFigG3Normality,         // Fig. G.3 per-source normality
  kFigH5MseDecomposition,  // Fig. H.5 estimator MSE decomposition
  kFigI6Robustness,        // Fig. I.6 robustness vs k and γ
  kAblationPairing,        // App. C.2 paired-vs-unpaired ablation
  kAblationSplitters,      // App. B splitter-strategy ablation
  kMultiContestants,       // §6 many-contestant competition
  kMultiDataset,           // §6 comparison across datasets
  kTable8MhcModels,        // Tables 8/9 MHC model-design comparison
  kTableDSearchSpaces,     // Tables 2/3/5/6 search-space dump
};

[[nodiscard]] std::string_view to_string(StudyKind kind);
/// Throws io::JsonError listing the valid kinds on unknown input.
[[nodiscard]] StudyKind study_kind_from_string(std::string_view name);

/// The original (non-figure) study kinds, in registry order — backed by
/// the same table to_string/study_kind_from_string resolve through, so
/// enumerating consumers (`varbench list`) cannot drift from the parser.
/// Figure kinds are enumerated by figures::all_figures().
[[nodiscard]] std::vector<StudyKind> base_study_kinds();

/// A contiguous slice i of N of every repetition index range in the study.
/// {0, 1} is the unsharded run. Because repetition RNG streams are keyed by
/// the global repetition index, shard artifacts merge into the exact
/// unsharded result (docs/study_api.md).
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;

  [[nodiscard]] bool is_unsharded() const { return count == 1; }
  [[nodiscard]] std::string label() const {
    return std::to_string(index) + "/" + std::to_string(count);
  }
  /// Parse "i/N"; throws io::JsonError on malformed input or i >= N.
  [[nodiscard]] static ShardSpec parse(std::string_view text);

  friend bool operator==(const ShardSpec&, const ShardSpec&) = default;
};

struct VarianceParams {
  std::vector<std::string> hpo_algorithms{"random_search"};
  std::size_t hpo_repetitions = 0;  // 0 → max(3, repetitions / 4)
  std::size_t hpo_budget = 10;
  bool include_numerical_noise = true;

  friend bool operator==(const VarianceParams&,
                         const VarianceParams&) = default;
};

struct CompareParams {
  double lr_mult = 0.2;    // algorithm B = defaults with learning rate × this
  double gamma = 0.75;     // meaningfulness threshold of the P(A>B) test
  std::size_t num_resamples = 1000;  // bootstrap resamples for the CI

  friend bool operator==(const CompareParams&, const CompareParams&) = default;
};

struct HpoParams {
  std::string algo = "bayes_opt";
  std::size_t budget = 20;  // T: number of HOpt trials

  friend bool operator==(const HpoParams&, const HpoParams&) = default;
};

struct EstimatorParams {
  // Run order; valid names: "ideal", "fix_init", "fix_data", "fix_all".
  std::vector<std::string> estimators{"ideal", "fix_init", "fix_data",
                                      "fix_all"};
  std::string hpo_algo = "random_search";
  std::size_t hpo_budget = 10;  // T per HOpt run

  friend bool operator==(const EstimatorParams&,
                         const EstimatorParams&) = default;
};

struct DetectionParams {
  std::string estimator = "biased";  // "ideal" | "biased" (FixHOptEst(k,All))
  std::size_t k = 50;                // measurements per algorithm per round
  double gamma = 0.75;
  std::size_t resamples = 100;  // bootstrap resamples of the P(A>B) criterion
  std::vector<double> p_grid;   // empty → compare::default_p_grid()

  friend bool operator==(const DetectionParams&,
                         const DetectionParams&) = default;
};

/// The shared knob pool of the figure study kinds. Each figure kind uses
/// (serializes, parses, and kind-defaults) a declared subset of these
/// fields — see the field table in src/study/figures/figures.cpp — so a
/// spec stays strict: keys a kind does not declare are unknown keys.
struct FigureParams {
  /// Case studies / calibrations the figure spans; empty → the kind's full
  /// default set (all registered tasks for most kinds).
  std::vector<std::string> tasks;
  std::vector<std::string> hpo_algorithms;  // fig01, figF2
  std::size_t hpo_repetitions = 0;  // fig01; 0 → max(3, repetitions / 4)
  std::size_t hpo_budget = 12;      // fig01: T per HOpt probe
  std::size_t budget = 24;          // figF2: trials per HOpt run
  std::size_t k = 50;     // measures per side / per realization (fig06, H5, …)
  double gamma = 0.75;    // H1 threshold of the P(A>B) criteria
  std::size_t resamples = 100;     // bootstrap resamples inside criteria
  std::vector<std::size_t> k_grid;   // fig04, fig05, figI6 x-axes
  std::vector<std::size_t> t_grid;   // fig04 HOpt budgets
  std::vector<double> gamma_grid;    // figC1, figI6
  std::vector<double> beta_grid;     // figC1 power targets
  std::vector<double> p_grid;        // fig06, figI6 true-P(A>B) grids
  std::vector<double> edges;         // ablation_pairing true mean edges

  friend bool operator==(const FigureParams&, const FigureParams&) = default;
};

/// The experiment description. Common fields first; exactly one params
/// block is active, selected by `kind` (the others stay at their defaults
/// and are neither serialized nor parsed).
struct StudySpec {
  StudyKind kind = StudyKind::kVariance;
  /// Registry id, e.g. "cifar10_vgg11". Figure kinds that span several
  /// tasks default it to "all" (the actual set lives in figure.tasks);
  /// setting a concrete id narrows a multi-task figure to that one task,
  /// overriding figure.tasks. Purely synthetic figures use "synthetic".
  /// Required for the original five kinds, defaulted per kind for figure
  /// kinds.
  std::string case_study;
  double scale = 0.25;     // data-pool / epoch scale in (0, 1]
  std::uint64_t seed = 42;
  /// The shardable repetition count; per-kind meaning: variance →
  /// repetitions per source, compare → paired runs, hpo → must be 1,
  /// estimator → k measurements per estimator, detection → simulation
  /// rounds per grid point.
  std::size_t repetitions = 20;
  std::size_t threads = 1;  // 0 = all hardware threads; results invariant
  ShardSpec shard;

  VarianceParams variance;
  CompareParams compare;
  HpoParams hpo;
  EstimatorParams estimator;
  DetectionParams detection;
  FigureParams figure;  // active for the figure kinds

  friend bool operator==(const StudySpec&, const StudySpec&) = default;

  [[nodiscard]] std::size_t resolved_hpo_repetitions() const {
    return variance.hpo_repetitions != 0
               ? variance.hpo_repetitions
               : std::max<std::size_t>(3, repetitions / 4);
  }

  /// Serialize; `shard` is emitted only when sharded, so the unsharded
  /// normal form is canonical.
  [[nodiscard]] io::Json to_json() const;
  [[nodiscard]] std::string to_json_text() const;  // pretty, '\n'-terminated

  /// Parse + validate. Throws io::JsonError with an actionable message on
  /// missing/unknown keys, unknown kinds, out-of-range values.
  [[nodiscard]] static StudySpec from_json(const io::Json& doc);
  [[nodiscard]] static StudySpec from_json_text(std::string_view text);
};

/// Apply a `--set key=value` override to a raw spec document before typed
/// parsing. `key` is a dotted path ("seed", "params.gamma"); `value` is
/// parsed as JSON when possible (numbers, bools, arrays), else taken as a
/// string. Intermediate objects are created as needed.
void apply_override(io::Json& doc, std::string_view key,
                    std::string_view value);
/// Split "key=value" and apply; throws io::JsonError when '=' is missing.
void apply_override(io::Json& doc, std::string_view assignment);

}  // namespace varbench::study

#include "src/study/study_spec.h"

#include <charconv>
#include <cmath>

#include "src/io/spec_reader.h"
#include "src/study/figures/figures.h"

namespace varbench::study {

namespace {

constexpr std::string_view kSpecSchema = "varbench.study_spec.v1";

struct KindName {
  StudyKind kind;
  std::string_view name;
};

// The original five kinds; figure kinds resolve through the figure
// registry (src/study/figures/), which owns their names.
constexpr KindName kKindNames[] = {
    {StudyKind::kVariance, "variance"}, {StudyKind::kCompare, "compare"},
    {StudyKind::kHpo, "hpo"},           {StudyKind::kEstimator, "estimator"},
    {StudyKind::kDetection, "detection"},
};

std::string known_kinds() {
  std::string out;
  for (const auto& [kind, name] : kKindNames) {
    if (!out.empty()) out += ", ";
    out += "'" + std::string{name} + "'";
  }
  for (const auto& def : figures::all_figures()) {
    out += ", '" + std::string{def.name} + "'";
  }
  return out;
}

/// Thin shims over the shared strict reader (src/io/spec_reader.h) binding
/// this file's error domain.
constexpr std::string_view kDomain = "spec";

using io::double_array;
using io::string_array;

std::size_t read_size(const io::Json& v, std::string_view key) {
  return io::read_size(v, kDomain, key);
}

double read_double(const io::Json& v, std::string_view key) {
  return io::read_double(v, kDomain, key);
}

std::string read_string(const io::Json& v, std::string_view key) {
  return io::read_string(v, kDomain, key);
}

std::vector<std::string> read_string_array(const io::Json& v,
                                           std::string_view key) {
  return io::read_string_array(v, kDomain, key);
}

io::Json params_to_json(const StudySpec& spec) {
  io::Json p = io::Json::object();
  if (figures::is_figure_kind(spec.kind)) {
    figures::figure_params_to_json(spec, p);
    return p;
  }
  switch (spec.kind) {
    case StudyKind::kVariance:
      p.set("hpo_algorithms", string_array(spec.variance.hpo_algorithms));
      p.set("hpo_repetitions", io::Json{spec.variance.hpo_repetitions});
      p.set("hpo_budget", io::Json{spec.variance.hpo_budget});
      p.set("include_numerical_noise",
            io::Json{spec.variance.include_numerical_noise});
      break;
    case StudyKind::kCompare:
      p.set("lr_mult", io::Json{spec.compare.lr_mult});
      p.set("gamma", io::Json{spec.compare.gamma});
      p.set("num_resamples", io::Json{spec.compare.num_resamples});
      break;
    case StudyKind::kHpo:
      p.set("algo", io::Json{spec.hpo.algo});
      p.set("budget", io::Json{spec.hpo.budget});
      break;
    case StudyKind::kEstimator:
      p.set("estimators", string_array(spec.estimator.estimators));
      p.set("hpo_algo", io::Json{spec.estimator.hpo_algo});
      p.set("hpo_budget", io::Json{spec.estimator.hpo_budget});
      break;
    case StudyKind::kDetection:
      p.set("estimator", io::Json{spec.detection.estimator});
      p.set("k", io::Json{spec.detection.k});
      p.set("gamma", io::Json{spec.detection.gamma});
      p.set("resamples", io::Json{spec.detection.resamples});
      p.set("p_grid", double_array(spec.detection.p_grid));
      break;
    default:
      break;  // figure kinds returned above
  }
  return p;
}

void params_from_json(StudySpec& spec, const io::Json& p) {
  io::ObjectReader r{p, kDomain, "'params'"};
  if (figures::is_figure_kind(spec.kind)) {
    figures::figure_params_from_json(spec, r);
    r.reject_unknown_keys();
    return;
  }
  switch (spec.kind) {
    case StudyKind::kVariance:
      if (const auto* v = r.find("hpo_algorithms")) {
        spec.variance.hpo_algorithms = read_string_array(*v, "hpo_algorithms");
      }
      if (const auto* v = r.find("hpo_repetitions")) {
        spec.variance.hpo_repetitions = read_size(*v, "hpo_repetitions");
      }
      if (const auto* v = r.find("hpo_budget")) {
        spec.variance.hpo_budget = read_size(*v, "hpo_budget");
      }
      if (const auto* v = r.find("include_numerical_noise")) {
        spec.variance.include_numerical_noise = v->as_bool();
      }
      break;
    case StudyKind::kCompare:
      if (const auto* v = r.find("lr_mult")) {
        spec.compare.lr_mult = read_double(*v, "lr_mult");
      }
      if (const auto* v = r.find("gamma")) {
        spec.compare.gamma = read_double(*v, "gamma");
      }
      if (const auto* v = r.find("num_resamples")) {
        spec.compare.num_resamples = read_size(*v, "num_resamples");
      }
      break;
    case StudyKind::kHpo:
      if (const auto* v = r.find("algo")) spec.hpo.algo = read_string(*v, "algo");
      if (const auto* v = r.find("budget")) {
        spec.hpo.budget = read_size(*v, "budget");
      }
      break;
    case StudyKind::kEstimator:
      if (const auto* v = r.find("estimators")) {
        spec.estimator.estimators = read_string_array(*v, "estimators");
      }
      if (const auto* v = r.find("hpo_algo")) {
        spec.estimator.hpo_algo = read_string(*v, "hpo_algo");
      }
      if (const auto* v = r.find("hpo_budget")) {
        spec.estimator.hpo_budget = read_size(*v, "hpo_budget");
      }
      break;
    case StudyKind::kDetection:
      if (const auto* v = r.find("estimator")) {
        spec.detection.estimator = read_string(*v, "estimator");
      }
      if (const auto* v = r.find("k")) spec.detection.k = read_size(*v, "k");
      if (const auto* v = r.find("gamma")) {
        spec.detection.gamma = read_double(*v, "gamma");
      }
      if (const auto* v = r.find("resamples")) {
        spec.detection.resamples = read_size(*v, "resamples");
      }
      if (const auto* v = r.find("p_grid")) {
        spec.detection.p_grid.clear();
        for (const io::Json& item : v->as_array()) {
          spec.detection.p_grid.push_back(read_double(item, "p_grid"));
        }
      }
      break;
    default:
      break;  // figure kinds returned above
  }
  r.reject_unknown_keys();
}

void validate_common(const StudySpec& spec) {
  if (spec.case_study.empty()) {
    throw io::JsonError("spec: 'case_study' must not be empty");
  }
  if (!(spec.scale > 0.0) || spec.scale > 1.0) {
    throw io::JsonError("spec: 'scale' must be in (0, 1], got " +
                        std::to_string(spec.scale));
  }
  if (spec.repetitions == 0) {
    throw io::JsonError("spec: 'repetitions' must be >= 1");
  }
  if (spec.shard.count == 0 || spec.shard.index >= spec.shard.count) {
    throw io::JsonError("spec: shard " + spec.shard.label() +
                        " invalid (need index < count, count >= 1)");
  }
}

}  // namespace

std::string_view to_string(StudyKind kind) {
  for (const auto& [k, name] : kKindNames) {
    if (k == kind) return name;
  }
  if (const auto* def = figures::find_figure(kind)) return def->name;
  return "unknown";
}

std::vector<StudyKind> base_study_kinds() {
  std::vector<StudyKind> out;
  for (const auto& [kind, name] : kKindNames) out.push_back(kind);
  return out;
}

StudyKind study_kind_from_string(std::string_view name) {
  for (const auto& [kind, n] : kKindNames) {
    if (n == name) return kind;
  }
  for (const auto& def : figures::all_figures()) {
    if (def.name == name) return def.kind;
  }
  throw io::JsonError("spec: unknown study kind '" + std::string{name} +
                      "' (known kinds: " + known_kinds() + ")");
}

ShardSpec ShardSpec::parse(std::string_view text) {
  const std::size_t slash = text.find('/');
  const auto parse_part = [&](std::string_view part,
                              std::string_view what) -> std::size_t {
    std::size_t value = 0;
    const auto [p, ec] =
        std::from_chars(part.data(), part.data() + part.size(), value);
    if (ec != std::errc{} || p != part.data() + part.size() || part.empty()) {
      throw io::JsonError("shard: " + std::string{what} + " '" +
                          std::string{part} + "' is not a non-negative " +
                          "integer (expected i/N, e.g. 0/2)");
    }
    return value;
  };
  if (slash == std::string_view::npos) {
    throw io::JsonError("shard: '" + std::string{text} +
                        "' is not of the form i/N (e.g. 0/2)");
  }
  ShardSpec shard;
  shard.index = parse_part(text.substr(0, slash), "index");
  shard.count = parse_part(text.substr(slash + 1), "count");
  if (shard.count == 0 || shard.index >= shard.count) {
    throw io::JsonError("shard: " + shard.label() +
                        " invalid (need index < count, count >= 1)");
  }
  return shard;
}

io::Json StudySpec::to_json() const {
  io::Json doc = io::Json::object();
  doc.set("schema", io::Json{kSpecSchema});
  doc.set("kind", io::Json{to_string(kind)});
  doc.set("case_study", io::Json{case_study});
  doc.set("scale", io::Json{scale});
  doc.set("seed", io::Json{seed});
  doc.set("repetitions", io::Json{repetitions});
  doc.set("threads", io::Json{threads});
  if (!shard.is_unsharded()) {
    io::Json s = io::Json::object();
    s.set("index", io::Json{shard.index});
    s.set("count", io::Json{shard.count});
    doc.set("shard", std::move(s));
  }
  doc.set("params", params_to_json(*this));
  return doc;
}

std::string StudySpec::to_json_text() const { return to_json().dump(2) + "\n"; }

StudySpec StudySpec::from_json(const io::Json& doc) {
  if (!doc.is_object()) {
    throw io::JsonError("spec: document must be a JSON object, got " +
                        std::string{io::to_string(doc.type())});
  }
  io::ObjectReader r{doc, kDomain, "the spec"};
  if (const auto* schema = r.find("schema")) {
    const std::string& s = read_string(*schema, "schema");
    if (s != kSpecSchema) {
      throw io::JsonError("spec: unsupported schema '" + s + "' (this build " +
                          "reads '" + std::string{kSpecSchema} + "')");
    }
  }
  StudySpec spec;
  spec.kind = study_kind_from_string(read_string(r.at("kind"), "kind"));
  // The shared default (20) is wrong for the one-run hpo kind; a spec that
  // omits 'repetitions' should be valid for every kind. Figure kinds get
  // their whole default block (case_study, repetitions, figure params).
  if (spec.kind == StudyKind::kHpo) spec.repetitions = 1;
  figures::apply_figure_defaults(spec);
  if (const auto* v = r.find("case_study")) {
    spec.case_study = read_string(*v, "case_study");
  } else if (spec.case_study.empty()) {
    // The original five kinds have no default — keep the standard
    // missing-key error.
    spec.case_study = read_string(r.at("case_study"), "case_study");
  }
  if (const auto* v = r.find("scale")) spec.scale = read_double(*v, "scale");
  if (const auto* v = r.find("seed")) {
    spec.seed = read_size(*v, "seed");  // u64 == size_t on this platform
  }
  if (const auto* v = r.find("repetitions")) {
    spec.repetitions = read_size(*v, "repetitions");
  }
  if (const auto* v = r.find("threads")) {
    spec.threads = read_size(*v, "threads");
  }
  if (const auto* v = r.find("shard")) {
    io::ObjectReader s{*v, kDomain, "'shard'"};
    spec.shard.index = read_size(s.at("index"), "shard.index");
    spec.shard.count = read_size(s.at("count"), "shard.count");
    s.reject_unknown_keys();
  }
  if (const auto* v = r.find("params")) params_from_json(spec, *v);
  r.reject_unknown_keys();
  validate_common(spec);
  return spec;
}

StudySpec StudySpec::from_json_text(std::string_view text) {
  return from_json(io::Json::parse(text));
}

void apply_override(io::Json& doc, std::string_view key,
                    std::string_view value) {
  if (key.empty()) throw io::JsonError("--set: empty key");
  // Parse the value as JSON when it is one (numbers, bools, arrays, quoted
  // strings); otherwise treat it as a bare string, which is what users mean
  // by e.g. --set case_study=mhc_mlp.
  io::Json parsed;
  try {
    parsed = io::Json::parse(value);
  } catch (const io::JsonError&) {
    parsed = io::Json{std::string{value}};
  }
  io::Json* node = &doc;
  std::string_view rest = key;
  while (true) {
    const std::size_t dot = rest.find('.');
    const std::string part{rest.substr(0, dot)};
    if (part.empty()) {
      throw io::JsonError("--set: malformed key '" + std::string{key} + "'");
    }
    if (dot == std::string_view::npos) {
      node->set(part, std::move(parsed));
      return;
    }
    if (node->find(part) == nullptr) node->set(part, io::Json::object());
    node = node->find(part);
    rest = rest.substr(dot + 1);
  }
}

void apply_override(io::Json& doc, std::string_view assignment) {
  const std::size_t eq = assignment.find('=');
  if (eq == std::string_view::npos) {
    throw io::JsonError("--set expects key=value, got '" +
                        std::string{assignment} + "'");
  }
  apply_override(doc, assignment.substr(0, eq), assignment.substr(eq + 1));
}

}  // namespace varbench::study

// The canonical result artifact: one named-column table of raw,
// per-repetition values plus the metadata needed to reproduce and merge it
// (spec, seed, shard, threads, wall time). Tables hold raw measures — not
// aggregates — so that merging shard tables reconstructs the unsharded
// result exactly and every summary statistic is derivable downstream.
//
// Identity vs provenance: columns, rows, spec, seed, and shard define WHAT
// was computed and are bit-stable under the determinism contract; threads
// and wall time describe HOW it was computed and can never be (wall time is
// wall time). `to_json(false)` / `canonical_text()` serialize identity
// only — that is the form the shard/merge equality check and the CI diff
// operate on (docs/study_api.md).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/io/json.h"
#include "src/study/study_spec.h"

namespace varbench::io::columnar {
class MappedTable;
}  // namespace varbench::io::columnar

namespace varbench::study {

/// On-disk artifact encodings. kJson is the human-readable interchange and
/// debug format; kBinary is the VBT1 columnar format (src/io/columnar/,
/// docs/artifacts.md) — lossless in both directions. kAuto resolves from
/// the file name: a ".vbt" extension (also behind a trailing ".part")
/// means binary, anything else JSON.
enum class ArtifactFormat { kAuto, kJson, kBinary };

/// The kAuto resolution rule, shared by save(), the CLI, and the campaign
/// launchers. Never returns kAuto.
[[nodiscard]] ArtifactFormat infer_artifact_format(std::string_view path);

/// Cells are scalar JSON values (numbers keep their kind, strings stay
/// strings), so serialization is exact in both directions.
using Cell = io::Json;
using Row = std::vector<Cell>;

class ResultTable {
 public:
  /// Artifact name, e.g. "variance:cifar10_vgg11" or a bench figure id.
  std::string name;
  /// The producing spec, in execution-normal form: shard cleared (the
  /// artifact's own slice lives in `shard`) and threads reset to 1 — both
  /// are execution details results are invariant to; `provenance` records
  /// the actual values. Absent for tables emitted by bench harnesses that
  /// are not spec-driven.
  std::optional<StudySpec> spec;
  ShardSpec shard;             // which slice of the study this table holds
  std::uint64_t seed = 0;      // identity metadata (== spec->seed when set)
  std::size_t threads = 1;     // provenance
  double wall_time_ms = 0.0;   // provenance

  std::vector<std::string> columns;
  std::vector<Row> rows;

  /// When this table was materialized from a VBT1 binary artifact, the
  /// live mapping it was decoded from. column_span/column_values read
  /// column payloads straight off it instead of unpacking io::Json cells.
  /// Not part of the table's value (operator== ignores it) and dropped by
  /// merge; spans into it are valid only while `rows` is unmodified since
  /// materialization (column_span re-checks the row count).
  std::shared_ptr<const io::columnar::MappedTable> backing;

  /// Append with arity check; the first column is conventionally "seq", the
  /// row's global position in the unsharded enumeration (merge sorts on it).
  void add_row(Row row);

  [[nodiscard]] std::size_t column_index(std::string_view column) const;
  [[nodiscard]] bool has_column(std::string_view column) const;

  /// All values of one column as doubles (throws on non-numeric cells).
  /// Columnar-backed f64 columns copy contiguously from the mapping.
  [[nodiscard]] std::vector<double> column_values(
      std::string_view column) const;

  /// Zero-copy view of an f64 column when this table is columnar-backed
  /// and the column is stored as contiguous doubles; std::nullopt
  /// otherwise (callers fall back to column_values). The span points into
  /// the backing mapping — keep the table (or its `backing`) alive.
  [[nodiscard]] std::optional<std::span<const double>> column_span(
      std::string_view column) const;

  [[nodiscard]] bool is_complete() const { return shard.is_unsharded(); }

  /// Value equality over identity + provenance fields; the columnar
  /// backing is a load-path detail and is deliberately not compared.
  friend bool operator==(const ResultTable& a, const ResultTable& b) {
    return a.name == b.name && a.spec == b.spec && a.shard == b.shard &&
           a.seed == b.seed && a.threads == b.threads &&
           a.wall_time_ms == b.wall_time_ms && a.columns == b.columns &&
           a.rows == b.rows;
  }

  [[nodiscard]] io::Json to_json(bool include_provenance = true) const;
  /// The to_json document without its "rows" — the metadata block a VBT1
  /// binary artifact embeds verbatim (src/io/columnar/).
  [[nodiscard]] io::Json meta_json(bool include_provenance = true) const;
  [[nodiscard]] std::string to_json_text(bool include_provenance = true) const;
  /// Identity-only serialization — byte-comparable across shard/merge runs
  /// and thread counts.
  [[nodiscard]] std::string canonical_text() const {
    return to_json_text(/*include_provenance=*/false);
  }

  /// RFC-4180-style CSV of the data (header + rows; metadata is JSON-only).
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] static ResultTable from_json(const io::Json& doc);
  [[nodiscard]] static ResultTable from_json_text(std::string_view text);

  /// Serialize to `path` in the given format (kAuto: see
  /// infer_artifact_format). Binary saves carry provenance unless told
  /// otherwise, same as to_json_text.
  void save(const std::string& path, ArtifactFormat format = ArtifactFormat::kAuto,
            bool include_provenance = true) const;

  /// Read + parse + validate an artifact file in one step, dispatching on
  /// content: files opening with the VBT1 magic load through the
  /// mmap-backed columnar reader (and come back columnar-backed), anything
  /// else parses as JSON — whatever the extension says. Every failure —
  /// unreadable file, malformed JSON, unknown schema, corrupt binary
  /// block, shape violation — is an io::JsonError naming the path, so
  /// batch consumers (report, merge, campaign) can say exactly which file
  /// is bad.
  [[nodiscard]] static ResultTable load(const std::string& path);
};

/// Join shard tables into the exact unsharded table: validates that all
/// shards share one spec/columns/seed and form a complete partition
/// 0..count-1, concatenates the rows, and restores canonical row order by
/// the "seq" column (which must come out as exactly 0..n-1). The merged
/// provenance is threads = 0 (mixed) and wall_time_ms = Σ shard wall times.
/// Throws io::JsonError on incompatible, missing, or overlapping shards.
[[nodiscard]] ResultTable merge_result_tables(std::vector<ResultTable> shards);

}  // namespace varbench::study

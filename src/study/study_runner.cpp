#include "src/study/study_runner.h"

#include <chrono>
#include <iterator>
#include <map>
#include <memory>
#include <stdexcept>

#include "src/casestudies/calibration.h"
#include "src/casestudies/registry.h"
#include "src/compare/criteria.h"
#include "src/compare/error_rates.h"
#include "src/core/estimators.h"
#include "src/core/variance_study.h"
#include "src/exec/parallel_replicate.h"
#include "src/io/json.h"
#include "src/rngx/rng.h"
#include "src/stats/descriptive.h"
#include "src/stats/prob_outperform.h"
#include "src/study/figures/figures.h"
#include "src/trace/stopwatch.h"
#include "src/trace/trace.h"
#include "src/version.h"

namespace varbench::study {

namespace {

exec::ExecContext exec_of(const StudySpec& spec) {
  return exec::ExecContext{spec.threads};
}

exec::IndexRange slice_of(const StudySpec& spec, std::size_t n) {
  return exec::shard_subrange(n, spec.shard.index, spec.shard.count);
}

void require_unsharded(const StudySpec& spec, std::string_view why) {
  if (!spec.shard.is_unsharded()) {
    throw std::invalid_argument(
        "study '" + std::string{to_string(spec.kind)} + "' cannot be " +
        "sharded: " + std::string{why} + " (drop --shard / the shard block)");
  }
}

// ------------------------------------------------------------- variance

ResultTable run_variance(const StudySpec& spec) {
  const auto cs = casestudies::make_case_study(spec.case_study, spec.scale);
  core::VarianceStudyConfig cfg;
  cfg.repetitions = spec.repetitions;
  cfg.hpo_algorithms = spec.variance.hpo_algorithms;
  cfg.hpo_repetitions = spec.resolved_hpo_repetitions();
  cfg.hpo_budget = spec.variance.hpo_budget;
  cfg.include_numerical_noise = spec.variance.include_numerical_noise;
  cfg.exec = exec_of(spec);
  cfg.shard_index = spec.shard.index;
  cfg.shard_count = spec.shard.count;
  rngx::Rng master{spec.seed};
  const auto result = core::run_variance_study(*cs.pipeline, *cs.pool,
                                               *cs.splitter, cfg, master);

  ResultTable t;
  t.columns = {"seq", "source", "rep", "measure"};
  std::size_t offset = 0;  // seq offset of the current group in the FULL run
  for (const auto& row : result.rows) {
    const std::size_t group_size = row.source == rngx::VariationSource::kHpo
                                       ? cfg.hpo_repetitions
                                       : cfg.repetitions;
    const auto slice = slice_of(spec, group_size);
    if (row.measures.size() != slice.size()) {
      throw std::logic_error("variance runner: engine returned " +
                             std::to_string(row.measures.size()) +
                             " measures for a slice of " +
                             std::to_string(slice.size()));
    }
    for (std::size_t j = 0; j < row.measures.size(); ++j) {
      const std::size_t rep = slice.begin + j;
      t.add_row({Cell{offset + rep}, Cell{row.label}, Cell{rep},
                 Cell{row.measures[j]}});
    }
    offset += group_size;
  }
  return t;
}

void summarize_variance(const ResultTable& t, std::FILE* out) {
  const std::size_t source_col = t.column_index("source");
  const std::size_t measure_col = t.column_index("measure");
  // Group by source label in first-appearance (engine) order.
  std::vector<std::pair<std::string, std::vector<double>>> groups;
  for (const Row& row : t.rows) {
    const std::string& label = row[source_col].as_string();
    if (groups.empty() || groups.back().first != label) {
      groups.emplace_back(label, std::vector<double>{});
    }
    groups.back().second.push_back(row[measure_col].as_double());
  }
  double boot = 0.0;
  for (const auto& [label, measures] : groups) {
    if (label == "Data (bootstrap)") boot = stats::stddev(measures);
  }
  std::fprintf(out, "%-22s %10s %10s %14s\n", "source", "mean", "std",
               "std/bootstrap");
  for (const auto& [label, measures] : groups) {
    const double mean = stats::mean(measures);
    const double stddev = stats::stddev(measures);
    std::fprintf(out, "%-22s %10.4f %10.4f %14.2f\n", label.c_str(), mean,
                 stddev, boot > 0.0 ? stddev / boot : 0.0);
  }
}

// -------------------------------------------------------------- compare

/// The paired configurations of the comparison study: A = pipeline
/// defaults, B = defaults with the learning rate scaled by lr_mult (or, for
/// spaces without a learning rate, a 100× weight-decay bump).
std::pair<hpo::ParamPoint, hpo::ParamPoint> compare_configs(
    const core::LearningPipeline& pipeline, double lr_mult) {
  auto params_a = pipeline.default_params();
  auto params_b = params_a;
  if (params_b.count("learning_rate") != 0) {
    params_b["learning_rate"] *= lr_mult;
  } else if (params_b.count("weight_decay") != 0) {
    params_b["weight_decay"] = std::min(1.0, params_b["weight_decay"] * 100.0);
  }
  return {std::move(params_a), std::move(params_b)};
}

ResultTable run_compare(const StudySpec& spec) {
  const auto cs = casestudies::make_case_study(spec.case_study, spec.scale);
  const auto [params_a, params_b] =
      compare_configs(*cs.pipeline, spec.compare.lr_mult);

  rngx::Rng master{spec.seed};
  struct PairedMeasure {
    double a = 0.0;
    double b = 0.0;
  };
  // Paired runs are independent given per-run streams; fan them out. Both
  // configurations see the same ξ within a run (App. C.2 pairing).
  const auto measures = exec::parallel_replicate_range<PairedMeasure>(
      exec_of(spec), slice_of(spec, spec.repetitions), master, "compare",
      [&](std::size_t, rngx::Rng& run_rng) {
        const auto seeds = rngx::VariationSeeds::random(run_rng);
        return PairedMeasure{
            core::measure_with_params(*cs.pipeline, *cs.pool, *cs.splitter,
                                      params_a, seeds),
            core::measure_with_params(*cs.pipeline, *cs.pool, *cs.splitter,
                                      params_b, seeds)};
      });

  ResultTable t;
  t.columns = {"seq", "rep", "perf_a", "perf_b"};
  const auto slice = slice_of(spec, spec.repetitions);
  for (std::size_t j = 0; j < measures.size(); ++j) {
    const std::size_t rep = slice.begin + j;
    t.add_row({Cell{rep}, Cell{rep}, Cell{measures[j].a}, Cell{measures[j].b}});
  }
  return t;
}

void summarize_compare(const ResultTable& t, std::FILE* out) {
  const StudySpec& spec = t.spec.value();
  const auto pa = t.column_values("perf_a");
  const auto pb = t.column_values("perf_b");
  // Reproduce the run's RNG bookkeeping from the spec alone: the runner
  // drew exactly one u64 for the replicate stream before the legacy code
  // split off the test stream — so the summary of a merged artifact is the
  // summary the unsharded process would have printed.
  rngx::Rng master{spec.seed};
  (void)master.next_u64();
  auto rng = master.split("test");
  const auto r = stats::test_probability_of_outperforming(
      pa, pb, rng, spec.compare.gamma, spec.compare.num_resamples);
  std::fprintf(out, "mean A = %.4f, mean B = %.4f\n", stats::mean(pa),
               stats::mean(pb));
  std::fprintf(out, "P(A>B) = %.3f, CI [%.3f, %.3f], gamma = %.2f\n",
               r.p_a_greater_b, r.ci.lower, r.ci.upper, spec.compare.gamma);
  std::fprintf(out, "conclusion: %s\n",
               std::string(stats::to_string(r.conclusion)).c_str());
}

// ------------------------------------------------------------------ hpo

ResultTable run_hpo_study(const StudySpec& spec) {
  require_unsharded(spec,
                    "one HOpt run is inherently sequential; use the "
                    "variance study's hpo rows for HOpt replicates");
  if (spec.repetitions != 1) {
    throw std::invalid_argument(
        "study 'hpo': repetitions must be 1 (one tuning run); for HOpt "
        "variance use kind 'variance' with params.hpo_algorithms");
  }
  const auto cs = casestudies::make_case_study(spec.case_study, spec.scale);
  const auto algo = hpo::make_hpo_algorithm(spec.hpo.algo);
  core::HpoRunConfig cfg;
  cfg.algorithm = algo.get();
  cfg.budget = spec.hpo.budget;
  cfg.exec = exec_of(spec);
  rngx::VariationSeeds seeds;
  seeds.hpo = spec.seed;
  core::FitCounter fits;
  const double perf = core::run_pipeline_once(*cs.pipeline, *cs.pool,
                                              *cs.splitter, cfg, seeds, &fits);
  ResultTable t;
  t.columns = {"seq", "rep", "algo", "metric", "measure", "fits"};
  t.add_row({Cell{std::size_t{0}}, Cell{std::size_t{0}},
             Cell{std::string{algo->name()}},
             Cell{std::string{ml::to_string(cs.pipeline->metric())}},
             Cell{perf}, Cell{fits.fits.load()}});
  return t;
}

void summarize_hpo(const ResultTable& t, std::FILE* out) {
  const Row& row = t.rows.at(0);
  std::fprintf(out, "%s on %s: final test %s = %.4f (%zu fits)\n",
               row[t.column_index("algo")].as_string().c_str(),
               t.spec.value().case_study.c_str(),
               row[t.column_index("metric")].as_string().c_str(),
               row[t.column_index("measure")].as_double(),
               static_cast<std::size_t>(
                   row[t.column_index("fits")].as_uint64()));
}

// ------------------------------------------------------------ estimator

struct EstimatorName {
  std::string_view name;
  bool ideal;
  core::RandomizeSubset subset;
};

constexpr EstimatorName kEstimatorNames[] = {
    {"ideal", true, core::RandomizeSubset::kAll},
    {"fix_init", false, core::RandomizeSubset::kInit},
    {"fix_data", false, core::RandomizeSubset::kData},
    {"fix_all", false, core::RandomizeSubset::kAll},
};

const EstimatorName& estimator_by_name(const std::string& name) {
  for (const auto& e : kEstimatorNames) {
    if (e.name == name) return e;
  }
  throw std::invalid_argument(
      "study 'estimator': unknown estimator '" + name +
      "' (known: 'ideal', 'fix_init', 'fix_data', 'fix_all')");
}

ResultTable run_estimator(const StudySpec& spec) {
  if (spec.estimator.estimators.empty()) {
    throw std::invalid_argument("study 'estimator': params.estimators empty");
  }
  const auto cs = casestudies::make_case_study(spec.case_study, spec.scale);
  const auto algo = hpo::make_hpo_algorithm(spec.estimator.hpo_algo);
  core::HpoRunConfig hpo_cfg;
  hpo_cfg.algorithm = algo.get();
  hpo_cfg.budget = spec.estimator.hpo_budget;

  ResultTable t;
  t.columns = {"seq", "estimator", "rep", "measure"};
  const std::size_t k = spec.repetitions;
  const auto slice = slice_of(spec, k);
  std::size_t offset = 0;
  for (const auto& name : spec.estimator.estimators) {
    const EstimatorName& est = estimator_by_name(name);
    // Per-estimator master stream derived from (seed, name): independent of
    // the estimator order and identical in every shard.
    rngx::Rng master{rngx::derive_seed(spec.seed, name)};
    const auto result =
        est.ideal
            ? core::ideal_estimator(exec_of(spec), *cs.pipeline, *cs.pool,
                                    *cs.splitter, hpo_cfg, k, slice, master)
            : core::fix_hopt_estimator(exec_of(spec), *cs.pipeline, *cs.pool,
                                       *cs.splitter, hpo_cfg, k, est.subset,
                                       slice, master);
    for (std::size_t j = 0; j < result.measures.size(); ++j) {
      const std::size_t rep = slice.begin + j;
      t.add_row({Cell{offset + rep}, Cell{name}, Cell{rep},
                 Cell{result.measures[j]}});
    }
    offset += k;
  }
  return t;
}

void summarize_estimator(const ResultTable& t, std::FILE* out) {
  const std::size_t est_col = t.column_index("estimator");
  const std::size_t measure_col = t.column_index("measure");
  std::vector<std::pair<std::string, std::vector<double>>> groups;
  for (const Row& row : t.rows) {
    const std::string& name = row[est_col].as_string();
    if (groups.empty() || groups.back().first != name) {
      groups.emplace_back(name, std::vector<double>{});
    }
    groups.back().second.push_back(row[measure_col].as_double());
  }
  std::fprintf(out, "%-10s %6s %10s %10s\n", "estimator", "k", "mean", "std");
  for (const auto& [name, measures] : groups) {
    std::fprintf(out, "%-10s %6zu %10.4f %10.4f\n", name.c_str(),
                 measures.size(), stats::mean(measures),
                 stats::stddev(measures));
  }
}

// ------------------------------------------------------------ detection

constexpr std::string_view kDetectionCriteria[] = {
    "oracle", "single_point", "average", "prob_outperforming"};

ResultTable run_detection(const StudySpec& spec) {
  const auto& calib = casestudies::calibration_for(spec.case_study);
  const bool ideal = spec.detection.estimator == "ideal";
  if (!ideal && spec.detection.estimator != "biased") {
    throw std::invalid_argument("study 'detection': params.estimator must be "
                                "'ideal' or 'biased', got '" +
                                spec.detection.estimator + "'");
  }
  const auto profile = ideal
                           ? calib.ideal_profile()
                           : calib.profile(core::RandomizeSubset::kAll);
  const double delta = compare::published_improvement_delta(calib.sigma_ideal);
  std::vector<std::unique_ptr<compare::ComparisonCriterion>> criteria;
  criteria.push_back(
      std::make_unique<compare::OracleComparison>(calib.sigma_ideal));
  criteria.push_back(std::make_unique<compare::SinglePointComparison>(delta));
  criteria.push_back(std::make_unique<compare::AverageComparison>(delta));
  criteria.push_back(std::make_unique<compare::ProbOutperformCriterion>(
      spec.detection.gamma, spec.detection.resamples));

  compare::DetectionRateConfig cfg;
  cfg.k = spec.detection.k;
  cfg.simulations = spec.repetitions;
  cfg.gamma = spec.detection.gamma;
  cfg.p_grid = spec.detection.p_grid.empty() ? compare::default_p_grid()
                                             : spec.detection.p_grid;
  cfg.exec = exec_of(spec);

  const std::size_t rounds = cfg.p_grid.size() * cfg.simulations;
  const auto slice = slice_of(spec, rounds);
  rngx::Rng rng{spec.seed};
  const auto hits = compare::detection_rounds(
      profile, ideal ? compare::EstimatorKind::kIdeal
                     : compare::EstimatorKind::kBiased,
      criteria, cfg, slice, rng);

  ResultTable t;
  t.columns = {"seq", "p", "sim"};
  for (const auto& name : kDetectionCriteria) {
    t.columns.push_back(std::string{name});
  }
  for (std::size_t j = 0; j < hits.size(); ++j) {
    const std::size_t round = slice.begin + j;
    const std::size_t gi = round / cfg.simulations;
    const std::size_t si = round % cfg.simulations;
    Row row{Cell{round}, Cell{cfg.p_grid[gi]}, Cell{si}};
    for (const std::uint8_t h : hits[j]) {
      row.push_back(Cell{static_cast<std::size_t>(h)});
    }
    t.add_row(std::move(row));
  }
  return t;
}

void summarize_detection(const ResultTable& t, std::FILE* out) {
  const double gamma = t.spec.value().detection.gamma;
  const std::size_t p_col = t.column_index("p");
  std::vector<std::size_t> criterion_cols;
  for (const auto& name : kDetectionCriteria) {
    criterion_cols.push_back(t.column_index(std::string{name}));
  }
  // Grid points in first-appearance order; rows are round-ordered, so each
  // p value's rounds are contiguous.
  std::vector<double> p_grid;
  std::vector<std::vector<double>> rates(std::size(kDetectionCriteria));
  std::vector<double> counts;
  for (const Row& row : t.rows) {
    const double p = row[p_col].as_double();
    if (p_grid.empty() || p_grid.back() != p) {
      p_grid.push_back(p);
      counts.push_back(0.0);
      for (auto& r : rates) r.push_back(0.0);
    }
    counts.back() += 1.0;
    for (std::size_t ci = 0; ci < rates.size(); ++ci) {
      rates[ci].back() += row[criterion_cols[ci]].as_double();
    }
  }
  std::fprintf(out, "%-6s %-8s %8s %13s %9s %11s\n", "P(A>B)", "region",
               "oracle", "single_point", "average", "prob_outp.");
  for (std::size_t gi = 0; gi < p_grid.size(); ++gi) {
    const auto region = compare::classify_region(p_grid[gi], gamma);
    const char* label = region == compare::TruthRegion::kH0 ? "H0"
                        : region == compare::TruthRegion::kH1 ? "H1"
                                                              : "H0H1";
    std::fprintf(out, "%-6.2f %-8s %7.0f%% %12.0f%% %8.0f%% %10.0f%%\n",
                 p_grid[gi], label, 100.0 * rates[0][gi] / counts[gi],
                 100.0 * rates[1][gi] / counts[gi],
                 100.0 * rates[2][gi] / counts[gi],
                 100.0 * rates[3][gi] / counts[gi]);
  }
}

// ------------------------------------------------------------- registry

std::map<StudyKind, StudyRunner>& runner_map() {
  static std::map<StudyKind, StudyRunner> runners = [] {
    std::map<StudyKind, StudyRunner> m;
    m[StudyKind::kVariance] = run_variance;
    m[StudyKind::kCompare] = run_compare;
    m[StudyKind::kHpo] = run_hpo_study;
    m[StudyKind::kEstimator] = run_estimator;
    m[StudyKind::kDetection] = run_detection;
    for (const auto& def : figures::all_figures()) {
      m[def.kind] = def.run;
    }
    return m;
  }();
  return runners;
}

void validate_case_study(const StudySpec& spec) {
  const auto ids = casestudies::case_study_ids();
  for (const auto& id : ids) {
    if (id == spec.case_study) return;
  }
  std::string known;
  for (const auto& id : ids) {
    if (!known.empty()) known += ", ";
    known += "'" + id + "'";
  }
  throw std::invalid_argument("spec: unknown case study '" + spec.case_study +
                              "' (known: " + known + ")");
}

}  // namespace

void register_study_runner(StudyKind kind, StudyRunner runner) {
  runner_map()[kind] = std::move(runner);
}

bool has_study_runner(StudyKind kind) {
  return runner_map().count(kind) != 0;
}

void validate_study_spec(const StudySpec& spec) {
  if (runner_map().count(spec.kind) == 0) {
    throw std::invalid_argument("run_study: no runner registered for kind '" +
                                std::string{to_string(spec.kind)} + "'");
  }
  if (const auto* def = figures::find_figure(spec.kind)) {
    // Figure kinds validate their own task sets ("all"/"synthetic" are
    // legal, figure.tasks names the real studies); analytic kinds
    // enumerate a fixed grid, so a repetitions override would silently
    // mean nothing — reject it instead.
    if (def->fixed_repetitions && spec.repetitions != 1) {
      throw std::invalid_argument(
          "study '" + std::string{def->name} + "' enumerates a fixed grid; " +
          "'repetitions' must stay 1 (shard the grid with --shard instead)");
    }
  } else {
    validate_case_study(spec);
  }
}

ResultTable run_study(const StudySpec& spec) {
  validate_study_spec(spec);
  const auto it = runner_map().find(spec.kind);
  trace::Tracer& tracer = trace::global_tracer();
  std::uint64_t study_ident = 0;
  if (tracer.is_enabled(trace::kStudyRun)) {
    const std::string tag =
        std::string{to_string(spec.kind)} + ":" + spec.case_study;
    study_ident = rngx::hash_tag(tag);
    tracer.set_label(study_ident, tag);
  }
  const trace::ScopedSpan study_span{tracer, trace::kStudyRun, study_ident};
  // varlint: allow(no-wallclock) -- wall_time_ms is provenance, not
  // identity: it is stripped by --canonical and never merged or compared.
  const auto start = std::chrono::steady_clock::now();
  ResultTable table = it->second(spec);
  // varlint: allow(no-wallclock) -- closes the provenance interval above.
  const auto elapsed = std::chrono::steady_clock::now() - start;

  table.name = std::string{to_string(spec.kind)} + ":" + spec.case_study;
  // The stored spec is the study's identity: shard and threads are
  // execution details (results are invariant to both), so they are
  // normalized away; provenance records the actual values.
  StudySpec normalized = spec;
  normalized.shard = ShardSpec{};
  normalized.threads = 1;
  table.spec = std::move(normalized);
  table.shard = spec.shard;
  table.seed = spec.seed;
  table.threads = spec.threads;
  table.wall_time_ms =
      std::chrono::duration<double, std::milli>(elapsed).count();
  return table;
}

std::vector<StudyKindInfo> registered_study_kinds() {
  // Titles for the original kinds; the kind enumeration itself comes from
  // base_study_kinds() (the parser's own name table), so a kind added
  // there appears here automatically — at worst with the fallback title.
  const auto base_title = [](StudyKind kind) -> std::string_view {
    switch (kind) {
      case StudyKind::kVariance:
        return "§2.2 variance-source decomposition of one case study";
      case StudyKind::kCompare:
        return "§4/App. C paired comparison with the P(A>B) test";
      case StudyKind::kHpo:
        return "one HOpt run (inherently sequential)";
      case StudyKind::kEstimator:
        return "§3.2 IdealEst / FixHOptEst sweep on one case study";
      case StudyKind::kDetection:
        return "§4.2 detection-rate simulation for one calibration";
      default:
        return "(no description registered)";
    }
  };
  std::vector<StudyKindInfo> out;
  const auto param_keys = [](const StudySpec& spec) {
    const io::Json doc = spec.to_json();
    std::vector<std::string> keys;
    for (const auto& [key, value] : doc.at("params").as_object()) {
      keys.push_back(key);
    }
    return keys;
  };
  for (const StudyKind kind : base_study_kinds()) {
    StudySpec spec;
    spec.kind = kind;
    out.push_back(StudyKindInfo{kind, std::string{to_string(kind)},
                                std::string{base_title(kind)},
                                kind != StudyKind::kHpo, param_keys(spec)});
  }
  for (const auto& def : figures::all_figures()) {
    out.push_back(StudyKindInfo{def.kind, std::string{def.name},
                                std::string{def.title}, true,
                                param_keys(figures::default_figure_spec(
                                    def.kind))});
  }
  return out;
}

std::string list_study_kinds_text() {
  std::string out = "registered study kinds (varbench run dispatches on "
                    "spec 'kind'):\n";
  for (const auto& info : registered_study_kinds()) {
    out += "  " + info.name;
    out.append(info.name.size() < 26 ? 26 - info.name.size() : 1, ' ');
    out += info.title + "\n";
    out += "    ";
    out += info.shardable ? "shardable" : "not shardable";
    if (!info.param_keys.empty()) {
      out += "; params:";
      for (const auto& key : info.param_keys) out += " " + key;
    }
    out += "\n";
  }
  return out;
}

io::Json study_kinds_json() {
  io::Json kinds = io::Json::array();
  for (const auto& info : registered_study_kinds()) {
    io::Json item = io::Json::object();
    item.set("name", info.name);
    item.set("title", info.title);
    item.set("shardable", info.shardable);
    io::Json params = io::Json::array();
    for (const auto& key : info.param_keys) params.push_back(io::Json{key});
    item.set("params", std::move(params));
    kinds.push_back(std::move(item));
  }
  return kinds;
}

std::string list_study_kinds_json() {
  io::Json doc = io::Json::object();
  doc.set("tool", "varbench");
  doc.set("version", std::string{kVersion});
  doc.set("kinds", study_kinds_json());
  return doc.dump(2) + "\n";
}

void print_summary(const ResultTable& table, std::FILE* out) {
  if (!table.is_complete()) {
    std::fprintf(out,
                 "partial artifact: shard %s of '%s' (%zu rows) — run "
                 "`varbench merge` over all %zu shard files for summaries\n",
                 table.shard.label().c_str(), table.name.c_str(),
                 table.rows.size(), table.shard.count);
    return;
  }
  if (!table.spec.has_value()) {
    std::fprintf(out, "'%s': %zu rows × %zu columns (seed %llu)\n",
                 table.name.c_str(), table.rows.size(), table.columns.size(),
                 static_cast<unsigned long long>(table.seed));
    return;
  }
  if (const auto* def = figures::find_figure(table.spec->kind)) {
    def->summarize(table, out);
    return;
  }
  switch (table.spec->kind) {
    case StudyKind::kVariance:
      summarize_variance(table, out);
      return;
    case StudyKind::kCompare:
      summarize_compare(table, out);
      return;
    case StudyKind::kHpo:
      summarize_hpo(table, out);
      return;
    case StudyKind::kEstimator:
      summarize_estimator(table, out);
      return;
    case StudyKind::kDetection:
      summarize_detection(table, out);
      return;
    default:
      return;  // figure kinds handled above
  }
}

}  // namespace varbench::study

#include "src/study/result_table.h"

#include <algorithm>
#include <cstdio>

#include "src/io/columnar/vbt.h"
#include "src/io/spec_reader.h"

namespace varbench::study {

namespace {

// Schema evolution (docs/study_api.md): writers emit v1, the lowest schema
// every deployed reader understands; readers accept v1 (as always) and the
// reserved-forward v2, whose contract is *strict tolerance* — the same
// layout, but any field this build does not know is rejected with a
// message naming the offending JSON path instead of being silently
// dropped. A v3 (or unknown) schema stays a hard "unsupported schema"
// error listing both readable versions.
constexpr std::string_view kTableSchema = "varbench.result_table.v1";
constexpr std::string_view kTableSchemaV2 = "varbench.result_table.v2";

/// v2 strictness: every key of `obj` must be known; violations name the
/// JSON path ("$.meta.frobnicate") via the shared io:: helper.
void reject_unknown_fields(const io::Json& obj, std::string_view path,
                           std::initializer_list<std::string_view> known) {
  io::reject_unknown_fields(obj, "result table", kTableSchemaV2, path,
                            known);
}

void require_scalar(const Cell& cell) {
  if (cell.is_array() || cell.is_object()) {
    throw io::JsonError("result table: cells must be scalars, got " +
                        std::string{io::to_string(cell.type())});
  }
}

/// Content sniff for load(): does the file open with the VBT1 magic?
/// Unreadable files answer false so the JSON path reports the I/O error.
bool file_has_vbt_magic(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  unsigned char buf[8];
  const std::size_t n = std::fread(buf, 1, sizeof buf, f);
  std::fclose(f);
  return io::columnar::has_vbt_magic({buf, n});
}

}  // namespace

ArtifactFormat infer_artifact_format(std::string_view path) {
  if (path.ends_with(".part")) path.remove_suffix(5);
  return path.ends_with(".vbt") ? ArtifactFormat::kBinary
                                : ArtifactFormat::kJson;
}

void ResultTable::add_row(Row row) {
  if (row.size() != columns.size()) {
    throw io::JsonError("result table '" + name + "': row arity " +
                        std::to_string(row.size()) + " != " +
                        std::to_string(columns.size()) + " columns");
  }
  for (const Cell& cell : row) require_scalar(cell);
  rows.push_back(std::move(row));
}

std::size_t ResultTable::column_index(std::string_view column) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == column) return i;
  }
  std::string have;
  for (const auto& c : columns) {
    if (!have.empty()) have += ", ";
    have += "'" + c + "'";
  }
  throw io::JsonError("result table '" + name + "': no column '" +
                      std::string{column} + "' (columns: " + have + ")");
}

bool ResultTable::has_column(std::string_view column) const {
  return std::find(columns.begin(), columns.end(), column) != columns.end();
}

std::vector<double> ResultTable::column_values(std::string_view column) const {
  if (const auto span = column_span(column)) {
    return {span->begin(), span->end()};
  }
  const std::size_t ci = column_index(column);
  std::vector<double> out;
  out.reserve(rows.size());
  for (const Row& row : rows) out.push_back(row[ci].as_double());
  return out;
}

std::optional<std::span<const double>> ResultTable::column_span(
    std::string_view column) const {
  if (backing == nullptr || backing->num_rows() != rows.size()) {
    return std::nullopt;
  }
  const std::size_t ci = column_index(column);
  if (backing->column_type(ci) != io::columnar::ColumnType::kF64) {
    return std::nullopt;
  }
  return backing->f64_column(ci);
}

io::Json ResultTable::to_json(bool include_provenance) const {
  // Composed from meta_json so the JSON and binary artifacts share one
  // metadata rendering; "rows" is re-inserted before "provenance" to keep
  // the historical key order (canonical_text bytes must not move).
  io::Json doc = meta_json(/*include_provenance=*/false);
  io::Json data = io::Json::array();
  for (const Row& row : rows) {
    io::Json r = io::Json::array();
    for (const Cell& cell : row) r.push_back(cell);
    data.push_back(std::move(r));
  }
  doc.set("rows", std::move(data));
  if (include_provenance) {
    io::Json prov = io::Json::object();
    prov.set("threads", io::Json{threads});
    prov.set("wall_time_ms", io::Json{wall_time_ms});
    doc.set("provenance", std::move(prov));
  }
  return doc;
}

io::Json ResultTable::meta_json(bool include_provenance) const {
  io::Json doc = io::Json::object();
  doc.set("schema", io::Json{kTableSchema});
  doc.set("name", io::Json{name});
  if (spec.has_value()) doc.set("spec", spec->to_json());
  io::Json meta = io::Json::object();
  meta.set("seed", io::Json{seed});
  io::Json s = io::Json::object();
  s.set("index", io::Json{shard.index});
  s.set("count", io::Json{shard.count});
  meta.set("shard", std::move(s));
  doc.set("meta", std::move(meta));
  io::Json cols = io::Json::array();
  for (const auto& c : columns) cols.push_back(io::Json{c});
  doc.set("columns", std::move(cols));
  if (include_provenance) {
    io::Json prov = io::Json::object();
    prov.set("threads", io::Json{threads});
    prov.set("wall_time_ms", io::Json{wall_time_ms});
    doc.set("provenance", std::move(prov));
  }
  return doc;
}

std::string ResultTable::to_json_text(bool include_provenance) const {
  return to_json(include_provenance).dump(2) + "\n";
}

std::string ResultTable::to_csv() const {
  const auto field = [](const Cell& cell) -> std::string {
    if (cell.is_null()) return "";  // RFC-4180 convention for missing data
    std::string raw = cell.is_string() ? cell.as_string() : cell.dump();
    if (raw.find_first_of(",\"\n") == std::string::npos) return raw;
    std::string quoted = "\"";
    for (const char c : raw) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  std::string out;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ',';
    out += field(Cell{columns[i]});
  }
  out += '\n';
  for (const Row& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += field(row[i]);
    }
    out += '\n';
  }
  return out;
}

ResultTable ResultTable::from_json(const io::Json& doc) {
  if (!doc.is_object()) {
    throw io::JsonError("result table: document must be a JSON object");
  }
  const std::string& schema = doc.at("schema").as_string();
  if (schema != kTableSchema && schema != kTableSchemaV2) {
    throw io::JsonError("result table: unsupported schema '" + schema +
                        "' (this build reads '" + std::string{kTableSchema} +
                        "' and '" + std::string{kTableSchemaV2} + "')");
  }
  if (schema == kTableSchemaV2) {
    reject_unknown_fields(
        doc, "$", {"schema", "name", "spec", "meta", "columns", "rows",
                   "provenance"});
    reject_unknown_fields(doc.at("meta"), "$.meta", {"seed", "shard"});
    reject_unknown_fields(doc.at("meta").at("shard"), "$.meta.shard",
                          {"index", "count"});
    if (const io::Json* prov = doc.find("provenance")) {
      reject_unknown_fields(*prov, "$.provenance",
                            {"threads", "wall_time_ms"});
    }
  }
  ResultTable t;
  t.name = doc.at("name").as_string();
  if (const io::Json* spec = doc.find("spec")) {
    t.spec = StudySpec::from_json(*spec);
  }
  const io::Json& meta = doc.at("meta");
  t.seed = meta.at("seed").as_uint64();
  const io::Json& shard = meta.at("shard");
  t.shard.index = static_cast<std::size_t>(shard.at("index").as_uint64());
  t.shard.count = static_cast<std::size_t>(shard.at("count").as_uint64());
  if (t.shard.count == 0 || t.shard.index >= t.shard.count) {
    throw io::JsonError("result table: invalid shard " + t.shard.label());
  }
  for (const io::Json& c : doc.at("columns").as_array()) {
    t.columns.push_back(c.as_string());
  }
  if (t.columns.empty()) {
    throw io::JsonError("result table: no columns");
  }
  for (const io::Json& row : doc.at("rows").as_array()) {
    Row r;
    for (const io::Json& cell : row.as_array()) r.push_back(cell);
    t.add_row(std::move(r));
  }
  if (const io::Json* prov = doc.find("provenance")) {
    if (const io::Json* v = prov->find("threads")) {
      t.threads = static_cast<std::size_t>(v->as_uint64());
    }
    if (const io::Json* v = prov->find("wall_time_ms")) {
      t.wall_time_ms = v->as_double();
    }
  }
  return t;
}

ResultTable ResultTable::from_json_text(std::string_view text) {
  return from_json(io::Json::parse(text));
}

void ResultTable::save(const std::string& path, ArtifactFormat format,
                       bool include_provenance) const {
  if (format == ArtifactFormat::kAuto) format = infer_artifact_format(path);
  if (format == ArtifactFormat::kBinary) {
    io::columnar::write_vbt(path, *this, include_provenance);
  } else {
    io::write_file(path, to_json_text(include_provenance));
  }
}

ResultTable ResultTable::load(const std::string& path) {
  if (file_has_vbt_magic(path)) {
    // The columnar layer's own errors already name the path and offset.
    return io::columnar::materialize(io::columnar::MappedTable::open(path));
  }
  const std::string text = io::read_file(path);  // names the path itself
  try {
    return from_json_text(text);
  } catch (const io::JsonError& e) {
    throw io::JsonError("artifact '" + path + "': " + e.what());
  }
}

ResultTable merge_result_tables(std::vector<ResultTable> shards) {
  if (shards.empty()) {
    throw io::JsonError("merge: no shard tables given");
  }
  const std::size_t count = shards.front().shard.count;
  if (shards.size() != count) {
    throw io::JsonError("merge: got " + std::to_string(shards.size()) +
                        " tables for a " + std::to_string(count) +
                        "-shard study (need every shard exactly once)");
  }
  std::sort(shards.begin(), shards.end(),
            [](const ResultTable& a, const ResultTable& b) {
              return a.shard.index < b.shard.index;
            });
  const ResultTable& first = shards.front();
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ResultTable& t = shards[i];
    if (t.shard.count != count) {
      throw io::JsonError("merge: shard counts disagree (" + t.shard.label() +
                          " vs ../" + std::to_string(count) + ")");
    }
    if (t.shard.index != i) {
      throw io::JsonError(
          "merge: shard " + std::to_string(i) + " is " +
          (t.shard.index < i ? "duplicated" : "missing") +
          " (have shard " + t.shard.label() + " instead)");
    }
    if (t.name != first.name || t.spec != first.spec ||
        t.seed != first.seed || t.columns != first.columns) {
      throw io::JsonError("merge: table " + std::to_string(i) +
                          " ('" + t.name + "', seed " +
                          std::to_string(t.seed) +
                          ") does not belong to the same study as shard 0 ('" +
                          first.name + "', seed " +
                          std::to_string(first.seed) +
                          ") — name, spec, seed, and columns must all match");
    }
  }

  ResultTable merged;
  merged.name = first.name;
  merged.spec = first.spec;
  merged.seed = first.seed;
  merged.shard = ShardSpec{};  // unsharded normal form
  merged.threads = 0;          // mixed; provenance only
  merged.columns = first.columns;
  const std::size_t seq_col = merged.column_index("seq");
  std::size_t total = 0;
  bool all_sorted = true;
  for (ResultTable& t : shards) {
    merged.wall_time_ms += t.wall_time_ms;
    total += t.rows.size();
    for (std::size_t r = 0; r + 1 < t.rows.size() && all_sorted; ++r) {
      all_sorted = t.rows[r][seq_col].as_uint64() <=
                   t.rows[r + 1][seq_col].as_uint64();
    }
  }
  merged.rows.reserve(total);
  // Restore the canonical (unsharded) row order: ascending "seq". Study
  // runners emit each shard seq-sorted, so the common case is a k-way
  // merge that touches every row exactly once; arbitrarily ordered rows
  // (hand-assembled artifacts) take the sort path instead.
  if (all_sorted) {
    std::vector<std::size_t> head(shards.size(), 0);
    while (merged.rows.size() < total) {
      std::size_t best = shards.size();
      std::uint64_t best_seq = 0;
      for (std::size_t s = 0; s < shards.size(); ++s) {
        if (head[s] >= shards[s].rows.size()) continue;
        const std::uint64_t seq =
            shards[s].rows[head[s]][seq_col].as_uint64();
        if (best == shards.size() || seq < best_seq) {
          best = s;
          best_seq = seq;
        }
      }
      merged.rows.push_back(std::move(shards[best].rows[head[best]++]));
    }
  } else {
    for (ResultTable& t : shards) {
      for (Row& row : t.rows) merged.rows.push_back(std::move(row));
    }
    std::stable_sort(merged.rows.begin(), merged.rows.end(),
                     [seq_col](const Row& a, const Row& b) {
                       return a[seq_col].as_uint64() < b[seq_col].as_uint64();
                     });
  }
  for (std::size_t i = 0; i < merged.rows.size(); ++i) {
    const std::uint64_t seq = merged.rows[i][seq_col].as_uint64();
    if (seq != i) {
      throw io::JsonError(
          "merge: row sequence broken at position " + std::to_string(i) +
          " (seq " + std::to_string(seq) + ") — a shard is missing rows or " +
          "two shards overlap");
    }
  }
  return merged;
}

}  // namespace varbench::study

#include "src/study/result_table.h"

#include <algorithm>

#include "src/io/spec_reader.h"

namespace varbench::study {

namespace {

// Schema evolution (docs/study_api.md): writers emit v1, the lowest schema
// every deployed reader understands; readers accept v1 (as always) and the
// reserved-forward v2, whose contract is *strict tolerance* — the same
// layout, but any field this build does not know is rejected with a
// message naming the offending JSON path instead of being silently
// dropped. A v3 (or unknown) schema stays a hard "unsupported schema"
// error listing both readable versions.
constexpr std::string_view kTableSchema = "varbench.result_table.v1";
constexpr std::string_view kTableSchemaV2 = "varbench.result_table.v2";

/// v2 strictness: every key of `obj` must be known; violations name the
/// JSON path ("$.meta.frobnicate") via the shared io:: helper.
void reject_unknown_fields(const io::Json& obj, std::string_view path,
                           std::initializer_list<std::string_view> known) {
  io::reject_unknown_fields(obj, "result table", kTableSchemaV2, path,
                            known);
}

void require_scalar(const Cell& cell) {
  if (cell.is_array() || cell.is_object()) {
    throw io::JsonError("result table: cells must be scalars, got " +
                        std::string{io::to_string(cell.type())});
  }
}

}  // namespace

void ResultTable::add_row(Row row) {
  if (row.size() != columns.size()) {
    throw io::JsonError("result table '" + name + "': row arity " +
                        std::to_string(row.size()) + " != " +
                        std::to_string(columns.size()) + " columns");
  }
  for (const Cell& cell : row) require_scalar(cell);
  rows.push_back(std::move(row));
}

std::size_t ResultTable::column_index(std::string_view column) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == column) return i;
  }
  std::string have;
  for (const auto& c : columns) {
    if (!have.empty()) have += ", ";
    have += "'" + c + "'";
  }
  throw io::JsonError("result table '" + name + "': no column '" +
                      std::string{column} + "' (columns: " + have + ")");
}

bool ResultTable::has_column(std::string_view column) const {
  return std::find(columns.begin(), columns.end(), column) != columns.end();
}

std::vector<double> ResultTable::column_values(std::string_view column) const {
  const std::size_t ci = column_index(column);
  std::vector<double> out;
  out.reserve(rows.size());
  for (const Row& row : rows) out.push_back(row[ci].as_double());
  return out;
}

io::Json ResultTable::to_json(bool include_provenance) const {
  io::Json doc = io::Json::object();
  doc.set("schema", io::Json{kTableSchema});
  doc.set("name", io::Json{name});
  if (spec.has_value()) doc.set("spec", spec->to_json());
  io::Json meta = io::Json::object();
  meta.set("seed", io::Json{seed});
  io::Json s = io::Json::object();
  s.set("index", io::Json{shard.index});
  s.set("count", io::Json{shard.count});
  meta.set("shard", std::move(s));
  doc.set("meta", std::move(meta));
  io::Json cols = io::Json::array();
  for (const auto& c : columns) cols.push_back(io::Json{c});
  doc.set("columns", std::move(cols));
  io::Json data = io::Json::array();
  for (const Row& row : rows) {
    io::Json r = io::Json::array();
    for (const Cell& cell : row) r.push_back(cell);
    data.push_back(std::move(r));
  }
  doc.set("rows", std::move(data));
  if (include_provenance) {
    io::Json prov = io::Json::object();
    prov.set("threads", io::Json{threads});
    prov.set("wall_time_ms", io::Json{wall_time_ms});
    doc.set("provenance", std::move(prov));
  }
  return doc;
}

std::string ResultTable::to_json_text(bool include_provenance) const {
  return to_json(include_provenance).dump(2) + "\n";
}

std::string ResultTable::to_csv() const {
  const auto field = [](const Cell& cell) -> std::string {
    if (cell.is_null()) return "";  // RFC-4180 convention for missing data
    std::string raw = cell.is_string() ? cell.as_string() : cell.dump();
    if (raw.find_first_of(",\"\n") == std::string::npos) return raw;
    std::string quoted = "\"";
    for (const char c : raw) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  std::string out;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ',';
    out += field(Cell{columns[i]});
  }
  out += '\n';
  for (const Row& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += field(row[i]);
    }
    out += '\n';
  }
  return out;
}

ResultTable ResultTable::from_json(const io::Json& doc) {
  if (!doc.is_object()) {
    throw io::JsonError("result table: document must be a JSON object");
  }
  const std::string& schema = doc.at("schema").as_string();
  if (schema != kTableSchema && schema != kTableSchemaV2) {
    throw io::JsonError("result table: unsupported schema '" + schema +
                        "' (this build reads '" + std::string{kTableSchema} +
                        "' and '" + std::string{kTableSchemaV2} + "')");
  }
  if (schema == kTableSchemaV2) {
    reject_unknown_fields(
        doc, "$", {"schema", "name", "spec", "meta", "columns", "rows",
                   "provenance"});
    reject_unknown_fields(doc.at("meta"), "$.meta", {"seed", "shard"});
    reject_unknown_fields(doc.at("meta").at("shard"), "$.meta.shard",
                          {"index", "count"});
    if (const io::Json* prov = doc.find("provenance")) {
      reject_unknown_fields(*prov, "$.provenance",
                            {"threads", "wall_time_ms"});
    }
  }
  ResultTable t;
  t.name = doc.at("name").as_string();
  if (const io::Json* spec = doc.find("spec")) {
    t.spec = StudySpec::from_json(*spec);
  }
  const io::Json& meta = doc.at("meta");
  t.seed = meta.at("seed").as_uint64();
  const io::Json& shard = meta.at("shard");
  t.shard.index = static_cast<std::size_t>(shard.at("index").as_uint64());
  t.shard.count = static_cast<std::size_t>(shard.at("count").as_uint64());
  if (t.shard.count == 0 || t.shard.index >= t.shard.count) {
    throw io::JsonError("result table: invalid shard " + t.shard.label());
  }
  for (const io::Json& c : doc.at("columns").as_array()) {
    t.columns.push_back(c.as_string());
  }
  if (t.columns.empty()) {
    throw io::JsonError("result table: no columns");
  }
  for (const io::Json& row : doc.at("rows").as_array()) {
    Row r;
    for (const io::Json& cell : row.as_array()) r.push_back(cell);
    t.add_row(std::move(r));
  }
  if (const io::Json* prov = doc.find("provenance")) {
    if (const io::Json* v = prov->find("threads")) {
      t.threads = static_cast<std::size_t>(v->as_uint64());
    }
    if (const io::Json* v = prov->find("wall_time_ms")) {
      t.wall_time_ms = v->as_double();
    }
  }
  return t;
}

ResultTable ResultTable::from_json_text(std::string_view text) {
  return from_json(io::Json::parse(text));
}

ResultTable ResultTable::load(const std::string& path) {
  const std::string text = io::read_file(path);  // names the path itself
  try {
    return from_json_text(text);
  } catch (const io::JsonError& e) {
    throw io::JsonError("artifact '" + path + "': " + e.what());
  }
}

ResultTable merge_result_tables(std::vector<ResultTable> shards) {
  if (shards.empty()) {
    throw io::JsonError("merge: no shard tables given");
  }
  const std::size_t count = shards.front().shard.count;
  if (shards.size() != count) {
    throw io::JsonError("merge: got " + std::to_string(shards.size()) +
                        " tables for a " + std::to_string(count) +
                        "-shard study (need every shard exactly once)");
  }
  std::sort(shards.begin(), shards.end(),
            [](const ResultTable& a, const ResultTable& b) {
              return a.shard.index < b.shard.index;
            });
  const ResultTable& first = shards.front();
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ResultTable& t = shards[i];
    if (t.shard.count != count) {
      throw io::JsonError("merge: shard counts disagree (" + t.shard.label() +
                          " vs ../" + std::to_string(count) + ")");
    }
    if (t.shard.index != i) {
      throw io::JsonError(
          "merge: shard " + std::to_string(i) + " is " +
          (t.shard.index < i ? "duplicated" : "missing") +
          " (have shard " + t.shard.label() + " instead)");
    }
    if (t.name != first.name || t.spec != first.spec ||
        t.seed != first.seed || t.columns != first.columns) {
      throw io::JsonError("merge: table " + std::to_string(i) +
                          " ('" + t.name + "', seed " +
                          std::to_string(t.seed) +
                          ") does not belong to the same study as shard 0 ('" +
                          first.name + "', seed " +
                          std::to_string(first.seed) +
                          ") — name, spec, seed, and columns must all match");
    }
  }

  ResultTable merged;
  merged.name = first.name;
  merged.spec = first.spec;
  merged.seed = first.seed;
  merged.shard = ShardSpec{};  // unsharded normal form
  merged.threads = 0;          // mixed; provenance only
  merged.columns = first.columns;
  for (ResultTable& t : shards) {
    merged.wall_time_ms += t.wall_time_ms;
    for (Row& row : t.rows) merged.rows.push_back(std::move(row));
  }
  // Restore the canonical (unsharded) row order: ascending "seq". Each
  // shard's rows are already seq-sorted, so a stable sort just interleaves.
  const std::size_t seq_col = merged.column_index("seq");
  std::stable_sort(merged.rows.begin(), merged.rows.end(),
                   [seq_col](const Row& a, const Row& b) {
                     return a[seq_col].as_uint64() < b[seq_col].as_uint64();
                   });
  for (std::size_t i = 0; i < merged.rows.size(); ++i) {
    const std::uint64_t seq = merged.rows[i][seq_col].as_uint64();
    if (seq != i) {
      throw io::JsonError(
          "merge: row sequence broken at position " + std::to_string(i) +
          " (seq " + std::to_string(seq) + ") — a shard is missing rows or " +
          "two shards overlap");
    }
  }
  return merged;
}

}  // namespace varbench::study

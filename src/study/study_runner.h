// run_study(spec): the single entry point that dispatches a StudySpec onto
// the core/, compare/, and stats/ engines and returns the canonical
// ResultTable artifact. Runners are looked up in a registry keyed by
// StudyKind, so embedders can add study kinds without touching the CLI.
//
// Every built-in runner honours the spec's shard slice: it computes only
// the global repetition indices of shard_subrange(n, i, N) per repetition
// loop, on per-index RNG streams, so merge_result_tables() over all N
// shard artifacts is bit-identical to the unsharded artifact
// (docs/study_api.md).
#pragma once

#include <cstdio>
#include <functional>
#include <vector>

#include "src/study/result_table.h"
#include "src/study/study_spec.h"

namespace varbench::study {

/// Produces the table body (columns + rows). run_study() fills in the
/// artifact metadata (name, spec, shard, seed, threads, wall time).
using StudyRunner = std::function<ResultTable(const StudySpec&)>;

/// Register or replace the runner for a kind. Built-in runners for every
/// StudyKind are installed on first use of the registry.
void register_study_runner(StudyKind kind, StudyRunner runner);

[[nodiscard]] bool has_study_runner(StudyKind kind);

/// Validate the spec (known case study, kind-specific constraints), run
/// the registered runner, and stamp the artifact metadata. Throws
/// io::JsonError / std::invalid_argument with actionable messages.
[[nodiscard]] ResultTable run_study(const StudySpec& spec);

/// Human-readable summary of a *complete* table (shard 1/1), computed from
/// the raw rows: per-source statistics for variance studies, the P(A>B)
/// decision for comparisons, detection-rate curves, etc. Spec-driven
/// tables print the same numbers the legacy subcommands printed. For a
/// partial (shard) table, prints a note pointing at `varbench merge`.
void print_summary(const ResultTable& table, std::FILE* out);

}  // namespace varbench::study

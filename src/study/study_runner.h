// run_study(spec): the single entry point that dispatches a StudySpec onto
// the core/, compare/, and stats/ engines and returns the canonical
// ResultTable artifact. Runners are looked up in a registry keyed by
// StudyKind, so embedders can add study kinds without touching the CLI.
//
// Every built-in runner honours the spec's shard slice: it computes only
// the global repetition indices of shard_subrange(n, i, N) per repetition
// loop, on per-index RNG streams, so merge_result_tables() over all N
// shard artifacts is bit-identical to the unsharded artifact
// (docs/study_api.md).
#pragma once

#include <cstdio>
#include <functional>
#include <vector>

#include "src/study/result_table.h"
#include "src/study/study_spec.h"

namespace varbench::study {

/// Produces the table body (columns + rows). run_study() fills in the
/// artifact metadata (name, spec, shard, seed, threads, wall time).
using StudyRunner = std::function<ResultTable(const StudySpec&)>;

/// Register or replace the runner for a kind. Built-in runners for every
/// StudyKind are installed on first use of the registry.
void register_study_runner(StudyKind kind, StudyRunner runner);

[[nodiscard]] bool has_study_runner(StudyKind kind);

/// The pre-run checks of run_study without running anything: a runner is
/// registered, the case study exists (original kinds), and analytic
/// figure kinds keep repetitions == 1. Used by `varbench campaign
/// --plan-only` so a plan-clean campaign cannot fail these checks at
/// worker time. Throws std::invalid_argument with actionable messages.
void validate_study_spec(const StudySpec& spec);

/// Validate the spec (validate_study_spec), run the registered runner,
/// and stamp the artifact metadata. Throws io::JsonError /
/// std::invalid_argument with actionable messages.
[[nodiscard]] ResultTable run_study(const StudySpec& spec);

/// Human-readable summary of a *complete* table (shard 1/1), computed from
/// the raw rows: per-source statistics for variance studies, the P(A>B)
/// decision for comparisons, detection-rate curves, etc. Spec-driven
/// tables print the same numbers the legacy subcommands printed. For a
/// partial (shard) table, prints a note pointing at `varbench merge`.
void print_summary(const ResultTable& table, std::FILE* out);

/// One row of `varbench list`: everything a user needs to write a spec for
/// the kind — its name, what it reproduces, whether `--shard` applies, and
/// the `--set params.<key>` knobs it accepts.
struct StudyKindInfo {
  StudyKind kind = StudyKind::kVariance;
  std::string name;
  std::string title;
  bool shardable = true;
  std::vector<std::string> param_keys;
};

/// Every registered study kind (the original five plus the figure
/// registry), in registry order. The param keys are derived from the
/// kind's own serialization, so they cannot drift from the parser.
[[nodiscard]] std::vector<StudyKindInfo> registered_study_kinds();

/// The `varbench list` rendering of registered_study_kinds().
[[nodiscard]] std::string list_study_kinds_text();

/// registered_study_kinds() as a JSON array ([{name, title, shardable,
/// params}]) — the payload the CLI wraps in its shared {"tool",
/// "version"} introspection envelope (tools/varbench_cli.cpp), alongside
/// `varbench metrics --list --json`'s registry payload.
[[nodiscard]] io::Json study_kinds_json();

/// The `varbench list --json` rendering: a deterministic document
/// ({"tool", "version", "kinds": [{name, title, shardable, params}]})
/// for tooling — same introspection convention as `varlint --list-rules
/// --json`.
[[nodiscard]] std::string list_study_kinds_json();

}  // namespace varbench::study

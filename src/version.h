// Single source of truth for the toolchain version string, so `varbench
// --version`, `varlint --version`, and the JSON introspection surfaces
// (`varbench list --json`, `varlint --list-rules --json`) all report the
// same value and tooling can key on it.
#pragma once

#include <string_view>

namespace varbench {

inline constexpr std::string_view kVersion = "0.10.0";

}  // namespace varbench

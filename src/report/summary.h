// The column-wise summary engine: every statistic the paper derives from
// raw per-repetition measures — mean/std/min/max/median, percentile or BCa
// bootstrap CIs of the mean, Shapiro–Wilk normality flags, and (for two
// groups or two artifacts) P(A>B) with its bootstrap CI and a permutation
// test — computed from any complete ResultTable with no producing spec
// required. All resampling fans out through exec::parallel_replicate on
// per-index streams, so a report is bit-identical at every thread count
// and across sharded-vs-unsharded inputs (docs/reporting.md).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/exec/exec_context.h"
#include "src/report/artifact.h"
#include "src/report/report_spec.h"
#include "src/stats/bootstrap.h"
#include "src/stats/shapiro_wilk.h"

namespace varbench::report {

struct ColumnSummary {
  std::string group;   // group-by value; "" when the table is one group
  std::string column;
  std::size_t n = 0;        // numeric cells summarized
  std::size_t missing = 0;  // null cells skipped
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  /// Bootstrap CI of the mean (method/level from the spec); absent when
  /// "ci" is not a selected estimator or n < 3.
  std::optional<stats::ConfidenceInterval> ci_mean;
  /// Shapiro–Wilk normality test; absent when "normality" is not selected
  /// or the sample is outside the test's domain (n < 3, n > 5000,
  /// constant).
  std::optional<stats::ShapiroWilkResult> normality;
};

struct ComparisonSummary {
  std::string column;
  std::string label_a;
  std::string label_b;
  std::size_t n_a = 0;
  std::size_t n_b = 0;
  /// Equal sample sizes are compared paired by row order (the artifact
  /// convention for paired designs, App. C.2); unequal sizes fall back to
  /// the Mann–Whitney estimate of P(A>B) and an unpaired permutation test.
  bool paired = false;
  double mean_a = 0.0;
  double mean_b = 0.0;
  double p_a_greater_b = 0.5;
  /// Paired bootstrap CI of P(A>B); absent for unpaired comparisons.
  std::optional<stats::ConfidenceInterval> ci;
  /// The paper's three-zone decision at the spec's gamma; "" when unpaired
  /// (no CI to decide with).
  std::string conclusion;
  /// Two-sided permutation-test p-value for mean(A) == mean(B) (sign-flip
  /// when paired, label reshuffle when not).
  double permutation_p = 1.0;
};

/// Everything rendered derives from artifact *identity* (name, seed, rows,
/// spec) — never from file paths or execution provenance — so the same
/// study reports byte-identically whether it was loaded from the unsharded
/// artifact, a merged shard set, or a campaign output. The one exception
/// is the explicit campaign provenance block, which only a directory
/// report carries.
struct Report {
  std::string title;
  std::uint64_t seed = 0;   // the artifact's identity seed
  std::size_t rows = 0;
  ReportSpec spec;          // the resolved spec the report was computed with
  std::vector<ColumnSummary> columns;
  std::vector<ComparisonSummary> comparisons;
  std::optional<CampaignProvenance> provenance;
};

/// The columns the spec selects for `table`: spec.columns when given
/// (validated to exist and be numeric), else every numeric column minus
/// the index columns ("seq", "rep", "sim") and the group-by key. Throws
/// io::JsonError when the selection is empty or names a missing column.
[[nodiscard]] std::vector<std::string> resolve_columns(
    const study::ResultTable& table, const ReportSpec& spec);

/// Summarize one complete artifact: per-(group, column) summaries, plus
/// the P(A>B)/permutation comparison when group_by yields exactly two
/// groups. Throws std::invalid_argument on a partial (shard) table and
/// io::JsonError on bad column selections.
[[nodiscard]] Report summarize(const exec::ExecContext& ctx,
                               const LoadedArtifact& artifact,
                               const ReportSpec& spec);

/// Summarize two artifacts side by side (groups "A" and "B") and compare
/// every selected column the tables share. group_by is ignored here — the
/// artifacts themselves are the two groups.
[[nodiscard]] Report summarize_compare(const exec::ExecContext& ctx,
                                       const LoadedArtifact& a,
                                       const LoadedArtifact& b,
                                       const ReportSpec& spec);

}  // namespace varbench::report

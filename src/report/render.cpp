#include "src/report/render.h"

#include <algorithm>
#include <charconv>

#include "src/io/json.h"

namespace varbench::report {

namespace {

constexpr std::string_view kReportSchema = "varbench.report.v1";

/// Locale-independent "%.6g"-style rendering (std::to_chars is always
/// "C"-locale) — a host application's setlocale() must not change report
/// bytes or break the CSV column structure with comma decimals.
std::string fmt(double v) {
  char buf[64];
  const auto [end, ec] =
      std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::general, 6);
  return std::string(buf, ec == std::errc{} ? end : buf);
}

/// Locale-independent "%.1f"-style rendering for wall-time milliseconds.
std::string fmt_ms(double v) {
  char buf[64];
  const auto [end, ec] =
      std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::fixed, 1);
  return std::string(buf, ec == std::errc{} ? end : buf);
}

std::string ci_label(const ReportSpec& spec) {
  return fmt(spec.confidence * 100.0);
}

/// One rendered table: header + string cells. Columns before `left_columns`
/// are left-aligned (labels); the rest right-aligned (numbers).
struct Grid {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
  std::size_t left_columns = 2;
};

Grid summary_grid(const Report& report) {
  const ReportSpec& spec = report.spec;
  const bool grouped =
      std::any_of(report.columns.begin(), report.columns.end(),
                  [](const ColumnSummary& s) { return !s.group.empty(); });
  const bool any_missing =
      std::any_of(report.columns.begin(), report.columns.end(),
                  [](const ColumnSummary& s) { return s.missing > 0; });
  Grid g;
  g.left_columns = grouped ? 2 : 1;
  if (grouped) g.header.push_back("group");
  g.header.push_back("column");
  g.header.push_back("n");
  if (any_missing) g.header.push_back("missing");
  for (const auto& est : spec.estimators) {
    if (est == "ci") {
      g.header.push_back("ci" + ci_label(spec) + ".lo");
      g.header.push_back("ci" + ci_label(spec) + ".hi");
    } else if (est == "normality") {
      g.header.push_back("sw_w");
      g.header.push_back("sw_p");
    } else {
      g.header.push_back(est);
    }
  }
  for (const ColumnSummary& s : report.columns) {
    std::vector<std::string> row;
    if (grouped) row.push_back(s.group.empty() ? "(all)" : s.group);
    row.push_back(s.column);
    row.push_back(std::to_string(s.n));
    if (any_missing) row.push_back(std::to_string(s.missing));
    for (const auto& est : spec.estimators) {
      if (est == "mean") {
        row.push_back(fmt(s.mean));
      } else if (est == "std") {
        row.push_back(fmt(s.stddev));
      } else if (est == "min") {
        row.push_back(fmt(s.min));
      } else if (est == "max") {
        row.push_back(fmt(s.max));
      } else if (est == "median") {
        row.push_back(fmt(s.median));
      } else if (est == "ci") {
        row.push_back(s.ci_mean ? fmt(s.ci_mean->lower) : "-");
        row.push_back(s.ci_mean ? fmt(s.ci_mean->upper) : "-");
      } else if (est == "normality") {
        row.push_back(s.normality ? fmt(s.normality->w_statistic) : "-");
        row.push_back(s.normality ? fmt(s.normality->p_value) : "-");
      }
    }
    g.rows.push_back(std::move(row));
  }
  return g;
}

Grid comparison_grid(const Report& report) {
  Grid g;
  g.left_columns = 3;
  g.header = {"column", "A",       "B",        "n_A",      "n_B",
              "mean_A", "mean_B",  "P(A>B)",   "ci.lo",    "ci.hi",
              "perm_p", "pairing", "conclusion"};
  for (const ComparisonSummary& c : report.comparisons) {
    g.rows.push_back({c.column, c.label_a, c.label_b, std::to_string(c.n_a),
                      std::to_string(c.n_b), fmt(c.mean_a), fmt(c.mean_b),
                      fmt(c.p_a_greater_b), c.ci ? fmt(c.ci->lower) : "-",
                      c.ci ? fmt(c.ci->upper) : "-", fmt(c.permutation_p),
                      c.paired ? "paired" : "unpaired",
                      c.conclusion.empty() ? "-" : c.conclusion});
  }
  return g;
}

Grid provenance_grid(const CampaignProvenance& prov) {
  Grid g;
  g.left_columns = 1;
  g.header = {"study", "wall_time_ms"};
  for (const auto& [label, ms] : prov.study_wall_ms) {
    g.rows.push_back({label, fmt_ms(ms)});
  }
  g.rows.push_back({"total", fmt_ms(prov.total_wall_ms)});
  return g;
}

std::string provenance_note(const CampaignProvenance& prov) {
  return "campaign wall time: " + fmt_ms(prov.total_wall_ms) + " ms over " +
         std::to_string(prov.tasks_with_wall_time) + "/" +
         std::to_string(prov.tasks) + " task(s) with provenance";
}

std::string settings_line(const ReportSpec& spec) {
  return "ci = " + spec.ci_method + " @ " + ci_label(spec) + "% (" +
         std::to_string(spec.resamples) + " resamples); permutations = " +
         std::to_string(spec.permutations) +
         "; gamma = " + fmt(spec.gamma);
}

// ------------------------------------------------------------------ text

void grid_text(const Grid& g, std::string& out) {
  std::vector<std::size_t> width(g.header.size());
  for (std::size_t i = 0; i < g.header.size(); ++i) {
    width[i] = g.header[i].size();
  }
  for (const auto& row : g.rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& row) {
    out += " ";
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += "  ";
      const std::string pad(width[i] - row[i].size(), ' ');
      out += i < g.left_columns ? row[i] + pad : pad + row[i];
    }
    // The left-aligned last column may have trailing padding — drop it.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  emit(g.header);
  for (const auto& row : g.rows) emit(row);
}

std::string render_text(const Report& report) {
  std::string out = "report: " + report.title + "\n";
  out += "  seed " + std::to_string(report.seed) + ", " +
         std::to_string(report.rows) + " rows; " +
         settings_line(report.spec) + "\n\n";
  grid_text(summary_grid(report), out);
  if (!report.comparisons.empty()) {
    out += "\n";
    grid_text(comparison_grid(report), out);
  }
  if (report.provenance.has_value()) {
    out += "\n" + provenance_note(*report.provenance) + "\n";
    grid_text(provenance_grid(*report.provenance), out);
  }
  return out;
}

// -------------------------------------------------------------- markdown

void grid_markdown(const Grid& g, std::string& out) {
  const auto emit = [&](const std::vector<std::string>& row) {
    out += "|";
    for (const auto& cell : row) {
      out += " " + cell + " |";
    }
    out += '\n';
  };
  emit(g.header);
  out += "|";
  for (std::size_t i = 0; i < g.header.size(); ++i) {
    out += i < g.left_columns ? " --- |" : " ---: |";
  }
  out += '\n';
  for (const auto& row : g.rows) emit(row);
}

std::string render_markdown(const Report& report) {
  std::string out = "# report: " + report.title + "\n\n";
  out += "- seed " + std::to_string(report.seed) + ", " +
         std::to_string(report.rows) + " rows\n";
  out += "- " + settings_line(report.spec) + "\n\n## summaries\n\n";
  grid_markdown(summary_grid(report), out);
  if (!report.comparisons.empty()) {
    out += "\n## comparisons\n\n";
    grid_markdown(comparison_grid(report), out);
  }
  if (report.provenance.has_value()) {
    out += "\n## " + provenance_note(*report.provenance) + "\n\n";
    grid_markdown(provenance_grid(*report.provenance), out);
  }
  return out;
}

// ------------------------------------------------------------------- csv

std::string csv_field(const std::string& raw) {
  if (raw.find_first_of(",\"\n") == std::string::npos) return raw;
  std::string quoted = "\"";
  for (const char c : raw) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void grid_csv(const Grid& g, std::string& out) {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += csv_field(row[i]);
    }
    out += '\n';
  };
  emit(g.header);
  for (const auto& row : g.rows) emit(row);
}

std::string render_csv(const Report& report) {
  // Blocks (summaries, comparisons, provenance) are separated by one blank
  // line and carry their own header row.
  std::string out;
  grid_csv(summary_grid(report), out);
  if (!report.comparisons.empty()) {
    out += '\n';
    grid_csv(comparison_grid(report), out);
  }
  if (report.provenance.has_value()) {
    out += '\n';
    grid_csv(provenance_grid(*report.provenance), out);
  }
  return out;
}

// ------------------------------------------------------------------ json

io::Json ci_to_json(const stats::ConfidenceInterval& ci) {
  io::Json j = io::Json::object();
  j.set("lower", io::Json{ci.lower});
  j.set("upper", io::Json{ci.upper});
  j.set("level", io::Json{ci.level});
  return j;
}

io::Json report_to_json(const Report& report) {
  io::Json doc = io::Json::object();
  doc.set("schema", io::Json{kReportSchema});
  doc.set("title", io::Json{report.title});
  doc.set("seed", io::Json{report.seed});
  doc.set("rows", io::Json{report.rows});
  doc.set("spec", report.spec.to_json());

  io::Json summaries = io::Json::array();
  for (const ColumnSummary& s : report.columns) {
    io::Json j = io::Json::object();
    if (!s.group.empty()) j.set("group", io::Json{s.group});
    j.set("column", io::Json{s.column});
    j.set("n", io::Json{s.n});
    if (s.missing > 0) j.set("missing", io::Json{s.missing});
    j.set("mean", io::Json{s.mean});
    j.set("std", io::Json{s.stddev});
    j.set("min", io::Json{s.min});
    j.set("max", io::Json{s.max});
    j.set("median", io::Json{s.median});
    if (s.ci_mean.has_value()) j.set("ci_mean", ci_to_json(*s.ci_mean));
    if (s.normality.has_value()) {
      io::Json sw = io::Json::object();
      sw.set("w", io::Json{s.normality->w_statistic});
      sw.set("p", io::Json{s.normality->p_value});
      j.set("shapiro_wilk", std::move(sw));
    }
    summaries.push_back(std::move(j));
  }
  doc.set("summaries", std::move(summaries));

  if (!report.comparisons.empty()) {
    io::Json comparisons = io::Json::array();
    for (const ComparisonSummary& c : report.comparisons) {
      io::Json j = io::Json::object();
      j.set("column", io::Json{c.column});
      j.set("a", io::Json{c.label_a});
      j.set("b", io::Json{c.label_b});
      j.set("n_a", io::Json{c.n_a});
      j.set("n_b", io::Json{c.n_b});
      j.set("paired", io::Json{c.paired});
      j.set("mean_a", io::Json{c.mean_a});
      j.set("mean_b", io::Json{c.mean_b});
      j.set("p_a_greater_b", io::Json{c.p_a_greater_b});
      if (c.ci.has_value()) j.set("ci", ci_to_json(*c.ci));
      if (!c.conclusion.empty()) j.set("conclusion", io::Json{c.conclusion});
      j.set("permutation_p", io::Json{c.permutation_p});
      comparisons.push_back(std::move(j));
    }
    doc.set("comparisons", std::move(comparisons));
  }

  if (report.provenance.has_value()) {
    const CampaignProvenance& prov = *report.provenance;
    io::Json j = io::Json::object();
    j.set("tasks", io::Json{prov.tasks});
    j.set("tasks_with_wall_time", io::Json{prov.tasks_with_wall_time});
    j.set("total_wall_ms", io::Json{prov.total_wall_ms});
    io::Json studies = io::Json::array();
    for (const auto& [label, ms] : prov.study_wall_ms) {
      io::Json entry = io::Json::object();
      entry.set("study", io::Json{label});
      entry.set("wall_ms", io::Json{ms});
      studies.push_back(std::move(entry));
    }
    j.set("studies", std::move(studies));
    doc.set("campaign", std::move(j));
  }
  return doc;
}

}  // namespace

Format format_from_string(std::string_view name) {
  if (name == "text") return Format::kText;
  if (name == "markdown" || name == "md") return Format::kMarkdown;
  if (name == "csv") return Format::kCsv;
  if (name == "json") return Format::kJson;
  throw io::JsonError("report: unknown format '" + std::string{name} +
                      "' (known: 'text', 'markdown', 'csv', 'json')");
}

std::string_view to_string(Format format) {
  switch (format) {
    case Format::kText:
      return "text";
    case Format::kMarkdown:
      return "markdown";
    case Format::kCsv:
      return "csv";
    case Format::kJson:
      return "json";
  }
  return "text";
}

std::string render(const Report& report, Format format) {
  switch (format) {
    case Format::kText:
      return render_text(report);
    case Format::kMarkdown:
      return render_markdown(report);
    case Format::kCsv:
      return render_csv(report);
    case Format::kJson:
      return report_to_json(report).dump(2) + "\n";
  }
  return render_text(report);
}

std::string render_all(const std::vector<Report>& reports, Format format) {
  if (format == Format::kJson) {
    io::Json arr = io::Json::array();
    for (const Report& r : reports) arr.push_back(report_to_json(r));
    return arr.dump(2) + "\n";
  }
  std::string out;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i > 0) out += "\n";
    out += render(reports[i], format);
  }
  return out;
}

}  // namespace varbench::report

// Report rendering backends. Every format is a deterministic function of
// the Report value — fixed float formatting (shortest-round-trip doubles in
// JSON, %.6g elsewhere), no timestamps, no locale — so rendered reports are
// byte-comparable across thread counts, shard splits, and machines, and CI
// can diff them (docs/reporting.md).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/report/summary.h"

namespace varbench::report {

enum class Format : int { kText, kMarkdown, kCsv, kJson };

/// Accepts "text", "markdown" (alias "md"), "csv", "json"; throws
/// io::JsonError listing the valid names otherwise.
[[nodiscard]] Format format_from_string(std::string_view name);
[[nodiscard]] std::string_view to_string(Format format);

/// Render one report. The estimator list of the report's spec selects and
/// orders the statistic columns; absent optional values render as "-"
/// (null in JSON).
[[nodiscard]] std::string render(const Report& report, Format format);

/// Render several reports as one document: a JSON array for kJson, the
/// individual renderings joined by a blank line otherwise. Used for
/// directory reports (one report per study).
[[nodiscard]] std::string render_all(const std::vector<Report>& reports,
                                     Format format);

}  // namespace varbench::report

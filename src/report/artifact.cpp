#include "src/report/artifact.h"

#include <algorithm>
#include <filesystem>

#include "src/io/json.h"
#include "src/io/spec_reader.h"

namespace varbench::report {

namespace fs = std::filesystem;

namespace {

// Same evolution contract as ResultTable (docs/study_api.md): v1 manifests
// read as always, v2 manifests read strictly — unknown fields are rejected
// with the offending JSON path — and anything else is unsupported.
constexpr std::string_view kCampaignSchema = "varbench.campaign.v1";
constexpr std::string_view kCampaignSchemaV2 = "varbench.campaign.v2";

void reject_unknown_manifest_fields(
    const io::Json& obj, std::string_view path,
    std::initializer_list<std::string_view> known) {
  io::reject_unknown_fields(obj, "report", kCampaignSchemaV2, path, known);
}

/// Artifact files in `dir`: JSON and binary columnar, freely mixed —
/// ResultTable::load dispatches on content. campaign.json is a manifest,
/// not an artifact.
std::vector<std::string> artifact_files_in(const fs::path& dir) {
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator{dir}) {
    const fs::path& p = entry.path();
    if (!entry.is_regular_file() ||
        (p.extension() != ".json" && p.extension() != ".vbt")) {
      continue;
    }
    if (p.filename() == "campaign.json") continue;
    files.push_back(p.string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// The shard-invariant identity of a table: everything merge requires to
/// match, rendered to one comparable string.
std::string study_identity(const study::ResultTable& t) {
  std::string key = t.name + '\n' + std::to_string(t.seed) + '\n';
  for (const auto& c : t.columns) key += c + ',';
  key += '\n';
  if (t.spec.has_value()) key += t.spec->to_json().dump();
  return key;
}

CampaignProvenance read_campaign_provenance(const std::string& path) {
  const io::Json doc = io::Json::parse(io::read_file(path));
  const std::string& schema = doc.at("schema").as_string();
  if (schema != kCampaignSchema && schema != kCampaignSchemaV2) {
    throw io::JsonError("report: unsupported campaign manifest schema '" +
                        schema + "' in '" + path + "' (this build reads '" +
                        std::string{kCampaignSchema} + "' and '" +
                        std::string{kCampaignSchemaV2} + "')");
  }
  if (schema == kCampaignSchemaV2) {
    // "metrics" is the coordinator's provenance block (docs/metrics.md) —
    // known to this reader, ignored for reporting (it describes the run,
    // not the results).
    reject_unknown_manifest_fields(
        doc, "$",
        {"schema", "shards", "max_retries", "studies", "tasks", "metrics"});
    for (const io::Json& task : doc.at("tasks").as_array()) {
      reject_unknown_manifest_fields(
          task, "$.tasks[]",
          {"id", "study", "shard", "status", "attempts", "wall_time_ms"});
    }
  }
  CampaignProvenance prov;
  const auto& studies = doc.at("studies").as_array();
  prov.study_wall_ms.reserve(studies.size());
  for (std::size_t k = 0; k < studies.size(); ++k) {
    // Label from the raw spec document (kind + case_study are required spec
    // keys); the spec is not re-validated — provenance must stay readable
    // even when this build cannot run the study.
    const std::string label = "s" + std::to_string(k) + " " +
                              studies[k].at("kind").as_string() + ":" +
                              studies[k].at("case_study").as_string();
    prov.study_wall_ms.emplace_back(label, 0.0);
  }
  // A report over a partial campaign would silently look complete (only
  // the finished studies reach merged/) — refuse instead of under-reporting.
  std::vector<std::string> unfinished;
  for (const io::Json& task : doc.at("tasks").as_array()) {
    if (task.at("status").as_string() != "done") {
      unfinished.push_back(task.at("id").as_string());
    }
  }
  if (!unfinished.empty()) {
    std::string list;
    for (const auto& id : unfinished) {
      if (!list.empty()) list += ", ";
      list += id;
    }
    throw io::JsonError(
        "report: campaign at '" + path + "' is incomplete — " +
        std::to_string(unfinished.size()) + " task(s) not done (" + list +
        "); finish it (varbench campaign --resume) or report a merged "
        "artifact directly");
  }
  for (const io::Json& task : doc.at("tasks").as_array()) {
    ++prov.tasks;
    const io::Json* wall = task.find("wall_time_ms");
    if (wall == nullptr || !wall->is_number()) continue;
    const double ms = wall->as_double();
    if (ms <= 0.0) continue;  // never ran (or a pre-provenance manifest)
    ++prov.tasks_with_wall_time;
    prov.total_wall_ms += ms;
    const auto k = static_cast<std::size_t>(task.at("study").as_uint64());
    if (k < prov.study_wall_ms.size()) prov.study_wall_ms[k].second += ms;
  }
  return prov;
}

}  // namespace

LoadedArtifact load_artifact(const std::string& path) {
  if (fs::is_directory(path)) {
    throw io::JsonError("report: '" + path +
                        "' is a directory — load_artifact_dir handles those");
  }
  return LoadedArtifact{path, study::ResultTable::load(path)};
}

DirArtifacts load_artifact_dir(const std::string& dir) {
  if (!fs::is_directory(dir)) {
    throw io::JsonError("report: '" + dir + "' is not a directory");
  }
  DirArtifacts out;
  const fs::path manifest = fs::path{dir} / "campaign.json";
  if (fs::is_regular_file(manifest)) {
    out.provenance = read_campaign_provenance(manifest.string());
  }

  // A campaign state dir prefers its merged/ outputs (already complete and
  // canonical); otherwise its artifacts/ shards; otherwise the directory's
  // own *.json files.
  fs::path scan{dir};
  if (fs::is_directory(fs::path{dir} / "merged") &&
      !artifact_files_in(fs::path{dir} / "merged").empty()) {
    scan = fs::path{dir} / "merged";
  } else if (fs::is_directory(fs::path{dir} / "artifacts")) {
    scan = fs::path{dir} / "artifacts";
  }
  const auto files = artifact_files_in(scan);
  if (files.empty()) {
    throw io::JsonError("report: no artifacts (*.json, *.vbt) in '" +
                        scan.string() + "'");
  }

  // Group the files by study identity (first-appearance order over the
  // sorted paths), then merge each group into its complete table.
  std::vector<std::string> keys;
  std::vector<std::vector<std::string>> group_paths;
  std::vector<std::vector<study::ResultTable>> group_tables;
  for (const auto& path : files) {
    study::ResultTable table = study::ResultTable::load(path);
    const std::string key = study_identity(table);
    const auto it = std::find(keys.begin(), keys.end(), key);
    const std::size_t gi = static_cast<std::size_t>(it - keys.begin());
    if (it == keys.end()) {
      keys.push_back(key);
      group_paths.emplace_back();
      group_tables.emplace_back();
    }
    group_paths[gi].push_back(path);
    group_tables[gi].push_back(std::move(table));
  }
  for (std::size_t gi = 0; gi < keys.size(); ++gi) {
    auto& tables = group_tables[gi];
    if (tables.size() == 1 && tables.front().is_complete()) {
      out.studies.push_back(
          LoadedArtifact{group_paths[gi].front(), std::move(tables.front())});
      continue;
    }
    const std::string name = tables.front().name;
    try {
      study::ResultTable merged = study::merge_result_tables(std::move(tables));
      out.studies.push_back(LoadedArtifact{
          scan.string() + " (" + std::to_string(group_paths[gi].size()) +
              " shards of '" + name + "')",
          std::move(merged)});
    } catch (const io::JsonError& e) {
      throw io::JsonError("report: study '" + name + "' in '" +
                          scan.string() + "': " + e.what());
    }
  }
  return out;
}

}  // namespace varbench::report

// Analysis-as-data: a ReportSpec is the complete, serializable description
// of one report over a ResultTable artifact — which columns to summarize,
// how to group rows, which estimators to render, and how to compute the
// uncertainty (CI method / level / resamples). Specs round-trip losslessly
// through JSON in the same style as StudySpec (unknown keys rejected, every
// field optional with documented defaults), so a report is reproducible
// from the artifact plus the spec alone (docs/reporting.md).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/io/json.h"

namespace varbench::report {

struct ReportSpec {
  /// Data columns to summarize. Empty → every numeric column of the table
  /// except the index columns ("seq", "rep", "sim") and the group-by key.
  std::vector<std::string> columns;
  /// Column whose values partition the rows into groups (e.g. "source" of
  /// a variance table, "estimator" of an estimator sweep). Empty → the
  /// whole table is one group. Exactly two groups additionally get the
  /// P(A>B) / permutation-test comparison per summarized column.
  std::string group_by;
  /// Which statistics to render, in this order. Known names: "mean",
  /// "std", "min", "max", "median", "ci" (bootstrap CI of the mean),
  /// "normality" (Shapiro–Wilk W and p).
  std::vector<std::string> estimators{"mean",   "std", "min",      "max",
                                      "median", "ci",  "normality"};
  std::string ci_method = "bca";  // "bca" | "percentile"
  double confidence = 0.95;       // CI level (1 - alpha)
  std::size_t resamples = 1000;   // bootstrap resamples per CI
  std::size_t permutations = 10000;  // permutation-test reshuffles
  double gamma = 0.75;  // P(A>B) meaningfulness threshold (paper §5)
  /// Master seed of the report's own randomness (bootstrap + permutation
  /// streams). 0 → derive from the artifact's seed, so the same artifact
  /// always yields the same report bytes with no spec at all.
  std::uint64_t seed = 0;
  std::string format = "text";  // "text" | "markdown" | "csv" | "json"

  friend bool operator==(const ReportSpec&, const ReportSpec&) = default;

  [[nodiscard]] io::Json to_json() const;
  [[nodiscard]] std::string to_json_text() const;  // pretty, '\n'-terminated

  /// Parse + validate. Throws io::JsonError with an actionable message on
  /// unknown keys, unknown estimator/method/format names, or out-of-range
  /// values. An empty object {} is a valid spec (all defaults).
  [[nodiscard]] static ReportSpec from_json(const io::Json& doc);
  [[nodiscard]] static ReportSpec from_json_text(std::string_view text);
};

}  // namespace varbench::report
